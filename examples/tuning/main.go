// Tuning: the Section 4.5 chunk-size profiling step, run standalone. For
// a set of large images, pipelined GPU execution is simulated for chunk
// sizes from the full image height down to a single MCU row; each
// image's best size is kept, and the final choice is the largest size on
// the best list (small chunks starve the device).
package main

import (
	"fmt"
	"log"

	"hetjpeg"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/perfmodel"
)

func main() {
	log.SetFlags(0)

	spec := hetjpeg.PlatformByName("GTX 560")
	sizes := [][2]int{{2048, 1536}, {2560, 1920}, {3200, 2400}}
	items, err := imagegen.SizeSweep(jfif.Sub422, 0.6, sizes, 11)
	if err != nil {
		log.Fatal(err)
	}

	candidates := []int{1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 192}
	fmt.Printf("chunk-size sweep on %s (pipelined GPU, virtual time)\n\n", spec)
	fmt.Printf("%-16s", "image")
	for _, c := range candidates {
		fmt.Printf("%8d", c)
	}
	fmt.Println("   best")

	var profiles []*perfmodel.ItemProfile
	for _, it := range items {
		p, err := perfmodel.SummarizeItem(it)
		if err != nil {
			log.Fatal(err)
		}
		profiles = append(profiles, p)
		fmt.Printf("%-16s", fmt.Sprintf("%dx%d", it.W, it.H))
		bestNs, bestC := 0.0, 0
		row := make([]float64, len(candidates))
		for i, c := range candidates {
			if c > p.MCURows {
				row[i] = -1
				continue
			}
			res, err := hetjpeg.Decode(it.Data, hetjpeg.Options{
				Mode: hetjpeg.ModePipelinedGPU, Spec: spec, ChunkRows: c, VirtualOnly: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			row[i] = res.TotalNs
			if bestC == 0 || res.TotalNs < bestNs {
				bestNs, bestC = res.TotalNs, c
			}
			// The sweep only keeps the virtual time; recycle the pooled
			// buffers so a long candidate list stays allocation-flat.
			res.Release()
		}
		for _, ns := range row {
			if ns < 0 {
				fmt.Printf("%8s", "-")
			} else {
				fmt.Printf("%8.1f", ns/1e6)
			}
		}
		fmt.Printf("   %d rows\n", bestC)
	}

	final := perfmodel.SelectChunkRows(spec, profiles, candidates)
	fmt.Printf("\nselected chunk size (largest of the per-image bests): %d MCU rows\n", final)
}
