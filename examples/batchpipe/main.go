// Batchpipe: decoding a photo stream with cross-image pipelining. The
// paper overlaps Huffman decoding with device work *within* one image
// (Figure 5b); a gallery or browser decodes many images back to back, so
// the same overlap can continue across image boundaries: while the
// device finishes image k's kernels, the CPU already entropy-decodes
// image k+1. On the host the same idea runs in real time: the band
// scheduler entropy-decodes several images in flight while a shared
// work-stealing pool executes MCU-band back-phase tasks from all of
// them. This example measures the virtual cross-image overlap and the
// wall-clock shape of three engines: a serial loop, the whole-image
// worker pool, and the pipelined band scheduler.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"hetjpeg"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
)

func main() {
	log.SetFlags(0)
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "decode workers")
	count := flag.Int("n", 12, "stream length")
	flag.Parse()

	// A stream of mixed photos.
	var stream [][]byte
	sizes := [][2]int{{640, 480}, {1024, 768}, {1600, 1200}}
	for i := 0; i < *count; i++ {
		wh := sizes[i%len(sizes)]
		items, err := imagegen.SizeSweep(jfif.Sub422, 0.3+0.05*float64(i%8), [][2]int{wh}, int64(900+i))
		if err != nil {
			log.Fatal(err)
		}
		stream = append(stream, items[0].Data)
	}

	spec := hetjpeg.PlatformByName("GTX 560")
	model, err := hetjpeg.Train(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Serial wall-clock reference: one whole-image worker.
	t0 := time.Now()
	serial, err := hetjpeg.DecodeBatch(stream, hetjpeg.BatchOptions{
		Spec: spec, Model: model, Workers: 1, Scheduler: hetjpeg.SchedulerPerImage,
	})
	if err != nil {
		log.Fatal(err)
	}
	serialWall := time.Since(t0)
	for _, ir := range serial.Images {
		if ir.Err == nil {
			ir.Res.Release()
		}
	}

	// The whole-image worker pool at full width.
	t0 = time.Now()
	pool, err := hetjpeg.DecodeBatch(stream, hetjpeg.BatchOptions{
		Spec: spec, Model: model, Workers: *workers, Scheduler: hetjpeg.SchedulerPerImage,
	})
	if err != nil {
		log.Fatal(err)
	}
	poolWall := time.Since(t0)
	for _, ir := range pool.Images {
		if ir.Err == nil {
			ir.Res.Release()
		}
	}

	// The pipelined band scheduler through the streaming interface, as a
	// long-running service would consume it.
	ex, err := hetjpeg.NewBatchExecutor(hetjpeg.BatchOptions{Spec: spec, Model: model, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	go func() {
		for i, data := range stream {
			if err := ex.Submit(context.Background(), i, data); err != nil {
				log.Fatal(err)
			}
		}
		ex.Close()
	}()
	images := make([]hetjpeg.BatchImageResult, len(stream))
	for ir := range ex.Results() {
		images[ir.Index] = ir
	}
	bandWall := time.Since(t0)

	fmt.Printf("decoded %d images on %s (per-image PPS)\n\n", len(images), spec)
	for _, ir := range images {
		if ir.Err != nil {
			fmt.Printf("  image %2d: FAILED: %v\n", ir.Index, ir.Err)
			continue
		}
		st := ir.Res.Stats
		fmt.Printf("  image %2d: %4dx%-4d  %6.2f ms  (gpu %d / cpu %d rows)\n",
			ir.Index, ir.Res.Image.W, ir.Res.Image.H, ir.Res.TotalNs/1e6,
			st.GPUMCURows, st.CPUMCURows)
		// The per-image report is done; recycle the pooled buffers like
		// the two per-image-pool runs above do.
		ir.Res.Release()
	}

	fmt.Printf("\nvirtual timeline (the paper's metric):\n")
	fmt.Printf("  serial sum:          %8.2f ms\n", serial.SerialNs/1e6)
	fmt.Printf("  cross-image overlap: %8.2f ms\n", serial.PipelinedNs/1e6)
	fmt.Printf("  batch pipelining gain: %.3fx\n", serial.Gain())

	fmt.Printf("\nwall clock (this host):\n")
	fmt.Printf("  serial (1 worker):          %8.2f ms\n", float64(serialWall.Microseconds())/1000)
	fmt.Printf("  per-image pool (%d workers): %8.2f ms  (%.2fx)\n",
		*workers, float64(poolWall.Microseconds())/1000, float64(serialWall)/float64(poolWall))
	fmt.Printf("  band scheduler (%d workers): %8.2f ms  (%.2fx)\n",
		*workers, float64(bandWall.Microseconds())/1000, float64(serialWall)/float64(bandWall))
}
