// Batchpipe: decoding a photo stream with cross-image pipelining. The
// paper overlaps Huffman decoding with device work *within* one image
// (Figure 5b); a gallery or browser decodes many images back to back, so
// the same overlap can continue across image boundaries: while the
// device finishes image k's kernels, the CPU already entropy-decodes
// image k+1. This example measures that gain.
package main

import (
	"fmt"
	"log"

	"hetjpeg"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
)

func main() {
	log.SetFlags(0)

	// A stream of 12 mixed photos.
	var stream [][]byte
	sizes := [][2]int{{640, 480}, {1024, 768}, {1600, 1200}}
	for i := 0; i < 12; i++ {
		wh := sizes[i%len(sizes)]
		items, err := imagegen.SizeSweep(jfif.Sub422, 0.3+0.05*float64(i%8), [][2]int{wh}, int64(900+i))
		if err != nil {
			log.Fatal(err)
		}
		stream = append(stream, items[0].Data)
	}

	spec := hetjpeg.PlatformByName("GTX 560")
	model, err := hetjpeg.Train(spec)
	if err != nil {
		log.Fatal(err)
	}

	res, err := hetjpeg.DecodeBatch(stream, hetjpeg.BatchOptions{Spec: spec, Model: model})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("decoded %d images on %s (per-image PPS)\n\n", len(res.Images), spec)
	for _, ir := range res.Images {
		st := ir.Res.Stats
		fmt.Printf("  image %2d: %4dx%-4d  %6.2f ms  (gpu %d / cpu %d rows)\n",
			ir.Index, ir.Res.Image.W, ir.Res.Image.H, ir.Res.TotalNs/1e6,
			st.GPUMCURows, st.CPUMCURows)
	}
	fmt.Printf("\nserial sum:          %8.2f ms\n", res.SerialNs/1e6)
	fmt.Printf("cross-image overlap: %8.2f ms\n", res.PipelinedNs/1e6)
	fmt.Printf("batch pipelining gain: %.3fx\n", res.Gain())
}
