// Gallery: a browser-like workload. A page shows a mixed gallery of
// photos (different sizes, subsamplings and texture levels); we decode
// the whole gallery under each execution mode on each machine and
// compare the total virtual decode time — the end-to-end number a photo
// site cares about.
package main

import (
	"fmt"
	"log"
	"time"

	"hetjpeg"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
)

func main() {
	log.SetFlags(0)

	// The gallery: thumbnails through hero images.
	var gallery []imagegen.Item
	specs := []struct {
		w, h   int
		sub    jfif.Subsampling
		detail float64
	}{
		{240, 180, jfif.Sub420, 0.4}, {240, 180, jfif.Sub420, 0.8},
		{640, 480, jfif.Sub422, 0.3}, {640, 480, jfif.Sub422, 0.9},
		{1280, 850, jfif.Sub422, 0.5}, {1280, 850, jfif.Sub444, 0.5},
		{1920, 1280, jfif.Sub422, 0.6}, {2560, 1700, jfif.Sub422, 0.7},
	}
	for i, s := range specs {
		items, err := imagegen.SizeSweep(s.sub, s.detail, [][2]int{{s.w, s.h}}, int64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		gallery = append(gallery, items[0])
	}
	var totalBytes, totalPix int
	for _, it := range gallery {
		totalBytes += len(it.Data)
		totalPix += it.W * it.H
	}
	fmt.Printf("gallery: %d images, %.1f MP, %.1f MB compressed\n\n",
		len(gallery), float64(totalPix)/1e6, float64(totalBytes)/1e6)

	for _, name := range []string{"GT 430", "GTX 560", "GTX 680"} {
		spec := hetjpeg.PlatformByName(name)
		model, err := hetjpeg.Train(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", spec)
		var simdTotal float64
		for _, mode := range hetjpeg.AllModes() {
			wall := time.Now()
			var virtual float64
			for _, it := range gallery {
				res, err := hetjpeg.Decode(it.Data, hetjpeg.Options{Mode: mode, Spec: spec, Model: model})
				if err != nil {
					log.Fatalf("%v on %s: %v", mode, it.Name, err)
				}
				virtual += res.TotalNs
				// Recycle the pooled buffers: a gallery page decodes
				// dozens of images, and releasing keeps the whole sweep
				// allocation-flat.
				res.Release()
			}
			if mode == hetjpeg.ModeSIMD {
				simdTotal = virtual
			}
			speedup := "  baseline"
			if simdTotal > 0 && mode != hetjpeg.ModeSIMD {
				speedup = fmt.Sprintf("%7.2fx vs SIMD", simdTotal/virtual)
			}
			fmt.Printf("  %-10s %9.1f ms virtual  %s  (host wall %v)\n",
				mode, virtual/1e6, speedup, time.Since(wall).Round(time.Millisecond))
		}
		fmt.Println()
	}
}
