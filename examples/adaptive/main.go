// Adaptive: demonstrates PPS re-partitioning (Equations 16-17). The
// input photo's detail — and therefore entropy density — ramps from a
// smooth sky at the top to dense foliage at the bottom. The initial
// split assumes uniform density; once the scheduler has seen the actual
// Huffman times of the early (cheap) rows, it knows the remainder is
// denser than average and moves work between CPU and GPU before the last
// chunk is dispatched.
package main

import (
	"fmt"
	"log"

	"hetjpeg"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jpegcodec"
)

func main() {
	log.SetFlags(0)

	img := imagegen.GenerateGradientDetail(7, 1600, 1600, 0.0, 1.0)
	data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{Quality: 88})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skewed-entropy image: 1600x1600, %.3f B/px average density\n",
		float64(len(data))/float64(1600*1600))

	spec := hetjpeg.PlatformByName("GTX 560")
	model, err := hetjpeg.Train(spec)
	if err != nil {
		log.Fatal(err)
	}

	sps, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: hetjpeg.ModeSPS, Spec: spec, Model: model})
	if err != nil {
		log.Fatal(err)
	}
	defer sps.Release()
	pps, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: hetjpeg.ModePPS, Spec: spec, Model: model})
	if err != nil {
		log.Fatal(err)
	}
	defer pps.Release()

	fmt.Printf("\nSPS  (no correction):   GPU %3d rows / CPU %3d rows   %.2f ms\n",
		sps.Stats.GPUMCURows, sps.Stats.CPUMCURows, sps.TotalNs/1e6)
	fmt.Printf("PPS  (re-partitioned):  GPU %3d rows / CPU %3d rows   %.2f ms\n",
		pps.Stats.GPUMCURows, pps.Stats.CPUMCURows, pps.TotalNs/1e6)
	if pps.Stats.Repartitioned {
		fmt.Printf("PPS moved %+d MCU rows at the Equation (16) correction point\n",
			pps.Stats.RepartitionDeltaRows)
	} else {
		fmt.Println("PPS kept its initial split (model already accurate)")
	}
	fmt.Printf("\nPPS speedup over SPS on this image: %.2fx\n", sps.TotalNs/pps.TotalNs)
}
