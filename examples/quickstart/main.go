// Quickstart: encode a synthetic photo, then decode it with the
// heterogeneous PPS scheduler and print what the scheduler did.
package main

import (
	"fmt"
	"log"

	"hetjpeg"
)

func main() {
	log.SetFlags(0)

	// Build a 1280x960 test photo and compress it as 4:2:2 JPEG.
	img := hetjpeg.NewImage(1280, 960)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			img.Set(x, y, byte(x*255/img.W), byte(y*255/img.H), byte((x+y)%256))
		}
	}
	data, err := hetjpeg.Encode(img, hetjpeg.EncodeOptions{Quality: 88, Subsampling: hetjpeg.Sub422})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %dx%d to %d bytes (%.3f B/px)\n",
		img.W, img.H, len(data), float64(len(data))/float64(img.W*img.H))

	// Pick a machine, run the one-time offline profiling, decode.
	spec := hetjpeg.PlatformByName("GTX 560")
	model, err := hetjpeg.Train(spec)
	if err != nil {
		log.Fatal(err)
	}
	res, err := hetjpeg.Decode(data, hetjpeg.Options{
		Mode:  hetjpeg.ModePPS,
		Spec:  spec,
		Model: model,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("decoded with PPS on %s\n", spec)
	fmt.Printf("  virtual time   %.2f ms (Huffman %.2f ms)\n", res.TotalNs/1e6, res.HuffNs/1e6)
	fmt.Printf("  GPU share      %d of %d MCU rows in %d chunks\n",
		res.Stats.GPUMCURows, res.Stats.MCURows, res.Stats.Chunks)
	fmt.Printf("  CPU share      %d MCU rows\n", res.Stats.CPUMCURows)

	// Compare with the SIMD baseline.
	simd, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: hetjpeg.ModeSIMD, Spec: spec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  speedup        %.2fx over libjpeg-turbo-style SIMD\n", simd.TotalNs/res.TotalNs)

	// Bit-exactness across modes is a library invariant.
	same := len(simd.Image.Pix) == len(res.Image.Pix)
	for i := range simd.Image.Pix {
		if simd.Image.Pix[i] != res.Image.Pix[i] {
			same = false
			break
		}
	}
	fmt.Printf("  bit-exact      %v\n", same)

	// Return the pooled decode buffers once the pixels are done with —
	// the allocation discipline a long-running service should model.
	simd.Release()
	res.Release()
}
