package main

// End-to-end check of the sentinel → HTTP status mapping: the decode
// handlers rely on errors.Is(err, hetjpeg.ErrUnsupported) surviving
// every wrap between jpegcodec and this layer. If any layer
// re-stringified the error (the bug class errwrapcheck guards), the
// 12-bit upload below would come back 422 instead of 415.

import (
	"bytes"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"testing"

	"hetjpeg"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	spec := hetjpeg.PlatformByName("GTX 560")
	if spec == nil {
		t.Fatal("platform GTX 560 missing")
	}
	// No trained model: the tests pass ?mode=pipeline explicitly, which
	// does not consult one.
	s := &server{spec: spec, model: nil, workers: 2}
	mux := http.NewServeMux()
	mux.HandleFunc("/decode", s.decode)
	mux.HandleFunc("/batch", s.batch)
	mux.HandleFunc("/platforms", s.platforms)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func encodeJPEG(t *testing.T, w, h int) []byte {
	t.Helper()
	img := hetjpeg.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.Set(x, y, byte(x), byte(y), byte(x+y))
		}
	}
	data, err := hetjpeg.Encode(img, hetjpeg.EncodeOptions{Quality: 85, Subsampling: hetjpeg.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// unsupportedJPEG flips the SOF0 precision byte to 12 bits: valid
// JPEG, out-of-scope feature, the ErrUnsupported class.
func unsupportedJPEG(t *testing.T) []byte {
	t.Helper()
	data := encodeJPEG(t, 64, 48)
	i := bytes.Index(data, []byte{0xFF, 0xC0})
	if i < 0 {
		t.Fatal("no SOF0 marker")
	}
	data[i+4] = 12
	return data
}

func postDecode(t *testing.T, ts *httptest.Server, query string, body []byte) (int, decodeReply) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/decode?"+query, "image/jpeg", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var reply decodeReply
	if resp.Header.Get("Content-Type") == "application/json" {
		if err := json.Unmarshal(raw, &reply); err != nil {
			t.Fatalf("bad JSON reply: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, reply
}

func TestDecodeEndpointOK(t *testing.T) {
	ts := testServer(t)
	status, reply := postDecode(t, ts, "mode=pipeline&scale=1/2", encodeJPEG(t, 64, 48))
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (error: %s)", status, reply.Error)
	}
	if reply.Width != 32 || reply.Height != 24 {
		t.Errorf("scaled decode %dx%d, want 32x24", reply.Width, reply.Height)
	}
}

func TestDecodeEndpointUnsupportedIs415(t *testing.T) {
	ts := testServer(t)
	status, reply := postDecode(t, ts, "mode=pipeline", unsupportedJPEG(t))
	if status != http.StatusUnsupportedMediaType {
		t.Fatalf("status = %d, want 415; reply %+v", status, reply)
	}
	if !reply.Unsupported {
		t.Error("reply.Unsupported = false: errors.Is lost the sentinel between jpegcodec and the handler")
	}
}

func TestDecodeEndpointCorruptIs422(t *testing.T) {
	ts := testServer(t)
	// Real SOI magic, then a truncated stream: corruption, not a wrong
	// file type.
	data := encodeJPEG(t, 64, 48)
	status, reply := postDecode(t, ts, "mode=pipeline", data[:len(data)/2])
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; reply %+v", status, reply)
	}
	if reply.Unsupported {
		t.Error("corruption misclassified as unsupported feature")
	}
}

// TestDecodeEndpointNonJPEGIs415 posts bodies that are not JPEG at all:
// the handler must refuse them from the first two bytes with a JSON 415
// — it must not buffer megabytes of PNG first.
func TestDecodeEndpointNonJPEGIs415(t *testing.T) {
	ts := testServer(t)
	for name, body := range map[string][]byte{
		"png":   []byte("\x89PNG\r\n\x1a\nxxxxxxxx"),
		"text":  []byte("not a jpeg at all"),
		"empty": nil,
	} {
		status, reply := postDecode(t, ts, "mode=pipeline", body)
		if status != http.StatusUnsupportedMediaType {
			t.Errorf("%s body: status = %d, want 415", name, status)
		}
		if reply.Error == "" {
			t.Errorf("%s body: 415 reply has no JSON error", name)
		}
	}
}

// TestDecodeEndpointOversizedIs413JSON drops the body cap to 1 KiB and
// posts a larger JPEG: the MaxBytesReader trip must surface as 413 with
// the JSON error contract, not a bare-text 400.
func TestDecodeEndpointOversizedIs413JSON(t *testing.T) {
	spec := hetjpeg.PlatformByName("GTX 560")
	if spec == nil {
		t.Fatal("platform GTX 560 missing")
	}
	s := &server{spec: spec, workers: 2, maxBody: 1 << 10}
	mux := http.NewServeMux()
	mux.HandleFunc("/decode", s.decode)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	status, reply := postDecode(t, ts, "mode=pipeline", encodeJPEG(t, 256, 256))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; reply %+v", status, reply)
	}
	if reply.Error == "" {
		t.Error("413 reply has no JSON error body")
	}
}

func TestDecodeEndpointBadScaleIs400(t *testing.T) {
	ts := testServer(t)
	status, _ := postDecode(t, ts, "mode=pipeline&scale=1/3", encodeJPEG(t, 64, 48))
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
}

func TestBatchEndpointIsolatesUnsupportedImage(t *testing.T) {
	ts := testServer(t)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i, data := range [][]byte{encodeJPEG(t, 64, 48), unsupportedJPEG(t)} {
		fw, err := mw.CreateFormFile("img", []string{"good.jpg", "bad.jpg"}[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()

	resp, err := http.Post(ts.URL+"/batch?mode=pipeline", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 200\n%s", resp.StatusCode, raw)
	}
	var reply batchReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Failed != 1 || len(reply.Images) != 2 {
		t.Fatalf("failed=%d images=%d, want 1 failure of 2", reply.Failed, len(reply.Images))
	}
	if reply.Images[0].Error != "" {
		t.Errorf("good image failed: %s", reply.Images[0].Error)
	}
	if !reply.Images[1].Unsupported {
		t.Error("images[1].Unsupported = false: the sentinel did not survive the batch layer")
	}
}

// salvageableJPEG truncates a restart-marker stream inside its entropy
// data: strict decoding fails, salvage recovers a partial image.
func salvageableJPEG(t *testing.T) []byte {
	t.Helper()
	img := hetjpeg.NewImage(160, 128)
	for y := 0; y < 128; y++ {
		for x := 0; x < 160; x++ {
			img.Set(x, y, byte(x*2), byte(y*2), byte(x+y))
		}
	}
	data, err := hetjpeg.Encode(img, hetjpeg.EncodeOptions{
		Quality: 85, Subsampling: hetjpeg.Sub420, RestartInterval: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data[:len(data)*3/4]
}

// TestDecodeEndpointSalvageIs200 checks the salvage status mapping:
// without ?salvage the corrupt upload is 422; with it the same bytes
// come back 200 with the X-Hetjpeg-Salvaged header and the salvage
// accounting in the body.
func TestDecodeEndpointSalvageIs200(t *testing.T) {
	ts := testServer(t)
	data := salvageableJPEG(t)

	status, reply := postDecode(t, ts, "mode=pipeline", data)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("strict status = %d, want 422; reply %+v", status, reply)
	}
	if reply.Salvaged {
		t.Error("strict reply claims salvage")
	}

	resp, err := http.Post(ts.URL+"/decode?mode=pipeline&salvage=1", "image/jpeg", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("salvage status = %d, want 200\n%s", resp.StatusCode, raw)
	}
	if resp.Header.Get("X-Hetjpeg-Salvaged") != "true" {
		t.Error("X-Hetjpeg-Salvaged header missing on a salvaged decode")
	}
	var sreply decodeReply
	if err := json.NewDecoder(resp.Body).Decode(&sreply); err != nil {
		t.Fatal(err)
	}
	if !sreply.Salvaged || sreply.SalvageError == "" {
		t.Fatalf("salvage reply %+v: want Salvaged with SalvageError", sreply)
	}
	if sreply.Width != 160 || sreply.Height != 128 {
		t.Errorf("salvaged dimensions %dx%d, want 160x128", sreply.Width, sreply.Height)
	}
	if sreply.RecoveredMCUs <= 0 || sreply.RecoveredMCUs >= sreply.TotalMCUs {
		t.Errorf("recovered %d of %d MCUs, want a strict partial recovery",
			sreply.RecoveredMCUs, sreply.TotalMCUs)
	}
}

// TestBatchEndpointSalvage mixes a clean and a salvageable image
// through /batch?salvage=1 and checks the per-image salvage fields.
func TestBatchEndpointSalvage(t *testing.T) {
	ts := testServer(t)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i, data := range [][]byte{encodeJPEG(t, 64, 48), salvageableJPEG(t)} {
		fw, err := mw.CreateFormFile("img", []string{"good.jpg", "hurt.jpg"}[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()

	resp, err := http.Post(ts.URL+"/batch?mode=pipeline&salvage=1", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 200\n%s", resp.StatusCode, raw)
	}
	if resp.Header.Get("X-Hetjpeg-Salvaged") != "true" {
		t.Error("X-Hetjpeg-Salvaged header missing on a salvaged batch")
	}
	var reply batchReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Failed != 0 || reply.Salvaged != 1 || len(reply.Images) != 2 {
		t.Fatalf("failed=%d salvaged=%d images=%d, want 0/1/2", reply.Failed, reply.Salvaged, len(reply.Images))
	}
	if reply.Images[0].Salvaged || reply.Images[0].Error != "" {
		t.Errorf("clean image misreported: %+v", reply.Images[0])
	}
	hurt := reply.Images[1]
	if !hurt.Salvaged || hurt.SalvageError == "" || hurt.Width != 160 {
		t.Errorf("salvaged image misreported: %+v", hurt)
	}
	if hurt.RecoveredMCUs <= 0 || hurt.RecoveredMCUs >= hurt.TotalMCUs {
		t.Errorf("recovered %d of %d MCUs, want a strict partial recovery", hurt.RecoveredMCUs, hurt.TotalMCUs)
	}
}
