// Webserver: the browser-side story of the paper's introduction, turned
// inside out — an image service that decodes uploaded JPEGs with the
// heterogeneous decoder and reports its scheduling decisions. POST a
// JPEG to /decode to get the decoded dimensions, the CPU/GPU split and
// the virtual schedule; GET /platforms lists the simulated machines.
//
//	go run ./examples/webserver -addr :8080 &
//	curl -s --data-binary @photo.jpg localhost:8080/decode?mode=pps | jq
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"hetjpeg"
	"hetjpeg/internal/core"
)

type server struct {
	spec  *hetjpeg.Platform
	model *hetjpeg.Model
}

type decodeReply struct {
	Width         int     `json:"width,omitempty"`
	Height        int     `json:"height,omitempty"`
	Mode          string  `json:"mode"`
	Platform      string  `json:"platform"`
	VirtualMs     float64 `json:"virtualMs"`
	HuffmanMs     float64 `json:"huffmanMs"`
	GPUMCURows    int     `json:"gpuMcuRows"`
	CPUMCURows    int     `json:"cpuMcuRows"`
	Chunks        int     `json:"chunks"`
	Repartitioned bool    `json:"repartitioned"`
	WallMs        float64 `json:"wallMs"`
	Error         string  `json:"error,omitempty"`
}

func (s *server) decode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JPEG body", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	mode := hetjpeg.ModePPS
	if q := r.URL.Query().Get("mode"); q != "" {
		found := false
		for _, m := range hetjpeg.AllModes() {
			if m.String() == q {
				mode, found = m, true
			}
		}
		if !found {
			http.Error(w, fmt.Sprintf("unknown mode %q", q), http.StatusBadRequest)
			return
		}
	}
	start := time.Now()
	res, err := hetjpeg.Decode(body, hetjpeg.Options{Mode: mode, Spec: s.spec, Model: s.model})
	reply := decodeReply{Mode: mode.String(), Platform: s.spec.Name}
	if err != nil {
		reply.Error = err.Error()
		w.WriteHeader(http.StatusUnprocessableEntity)
	} else {
		reply.Width, reply.Height = res.Image.W, res.Image.H
		reply.VirtualMs = res.TotalNs / 1e6
		reply.HuffmanMs = res.HuffNs / 1e6
		reply.GPUMCURows = res.Stats.GPUMCURows
		reply.CPUMCURows = res.Stats.CPUMCURows
		reply.Chunks = res.Stats.Chunks
		reply.Repartitioned = res.Stats.Repartitioned
	}
	reply.WallMs = float64(time.Since(start).Microseconds()) / 1000
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply)
}

func (s *server) platforms(w http.ResponseWriter, _ *http.Request) {
	type p struct {
		Name, CPU, GPU string
		Modes          []string
	}
	var out []p
	var modes []string
	for _, m := range core.AllModes() {
		modes = append(modes, m.String())
	}
	for _, spec := range hetjpeg.Platforms() {
		out = append(out, p{Name: spec.Name, CPU: spec.CPUModel, GPU: spec.GPUModel, Modes: modes})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8080", "listen address")
	platformName := flag.String("platform", "GTX 560", "simulated machine")
	flag.Parse()

	spec := hetjpeg.PlatformByName(*platformName)
	if spec == nil {
		log.Fatalf("unknown platform %q", *platformName)
	}
	log.Printf("training performance model for %s...", spec.Name)
	model, err := hetjpeg.Train(spec)
	if err != nil {
		log.Fatal(err)
	}
	s := &server{spec: spec, model: model}
	mux := http.NewServeMux()
	mux.HandleFunc("/decode", s.decode)
	mux.HandleFunc("/platforms", s.platforms)
	log.Printf("decoding as %s on %s", spec, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
