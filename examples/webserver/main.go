// Webserver: the browser-side story of the paper's introduction, turned
// inside out — an image service that decodes uploaded JPEGs with the
// heterogeneous decoder and reports its scheduling decisions. POST a
// JPEG to /decode to get the decoded dimensions, the CPU/GPU split and
// the virtual schedule (?scale=1/2, 1/4 or 1/8 decodes to a thumbnail
// through the scaled IDCT); POST a multipart form of JPEGs to /batch to
// decode them concurrently (the pipelined band scheduler by default;
// ?scheduler=perimage selects the whole-image pool) and get the
// cross-image pipelining gain; GET /platforms lists the simulated
// machines.
//
//	go run ./examples/webserver -addr :8080 &
//	curl -s --data-binary @photo.jpg localhost:8080/decode?mode=pps | jq
//	curl -s -F img=@a.jpg -F img=@b.jpg -F img=@c.jpg localhost:8080/batch | jq
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"time"

	"hetjpeg"
	"hetjpeg/internal/core"
)

type server struct {
	spec    *hetjpeg.Platform
	model   *hetjpeg.Model
	workers int
	// maxBody caps a single-image upload (0 = 64 MiB); over it the
	// handler answers 413 with a JSON error.
	maxBody int64
}

func (s *server) bodyLimit() int64 {
	if s.maxBody > 0 {
		return s.maxBody
	}
	return 64 << 20
}

type decodeReply struct {
	Width    int    `json:"width,omitempty"`
	Height   int    `json:"height,omitempty"`
	Mode     string `json:"mode"`
	Platform string `json:"platform"`
	// Scale is the decode scale that ran ("1", "1/2", "1/4", "1/8").
	Scale         string  `json:"scale"`
	VirtualMs     float64 `json:"virtualMs"`
	HuffmanMs     float64 `json:"huffmanMs"`
	GPUMCURows    int     `json:"gpuMcuRows"`
	CPUMCURows    int     `json:"cpuMcuRows"`
	Chunks        int     `json:"chunks"`
	Repartitioned bool    `json:"repartitioned"`
	// EntropyScans is 1 for baseline, the scan count for progressive.
	EntropyScans int     `json:"entropyScans,omitempty"`
	WallMs       float64 `json:"wallMs"`
	Error        string  `json:"error,omitempty"`
	// Unsupported distinguishes "valid JPEG, feature out of scope"
	// (HTTP 415) from corruption (HTTP 422).
	Unsupported bool `json:"unsupported,omitempty"`
	// Salvaged reports a partial recovery (?salvage=1): the decode
	// succeeded (HTTP 200, X-Hetjpeg-Salvaged: true) but some MCUs were
	// lost; SalvageError carries the absorbed error.
	Salvaged      bool   `json:"salvaged,omitempty"`
	RecoveredMCUs int    `json:"recoveredMcus,omitempty"`
	TotalMCUs     int    `json:"totalMcus,omitempty"`
	SalvageError  string `json:"salvageError,omitempty"`
}

// writeJSONError keeps rejected uploads on the same JSON contract as
// decode replies (http.Error would answer text/plain).
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(decodeReply{Error: msg})
}

// salvageFromQuery enables partial-image recovery: with ?salvage=1 a
// corrupt-but-recoverable upload returns HTTP 200 with the decoded
// (partially gray) metadata and salvage accounting instead of 422.
func salvageFromQuery(r *http.Request) bool {
	switch r.URL.Query().Get("salvage") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func (s *server) modeFromQuery(r *http.Request) (core.Mode, error) {
	q := r.URL.Query().Get("mode")
	if q == "" {
		return hetjpeg.ModePPS, nil
	}
	mode, ok := hetjpeg.ParseMode(q)
	if !ok {
		return 0, fmt.Errorf("unknown mode %q", q)
	}
	return mode, nil
}

// schedulerFromQuery selects the /batch wall-clock engine: the
// pipelined band scheduler by default, ?scheduler=perimage for the
// whole-image pool (identical pixels, different wall-clock shape).
func schedulerFromQuery(r *http.Request) (hetjpeg.BatchScheduler, error) {
	q := r.URL.Query().Get("scheduler")
	sched, ok := hetjpeg.ParseScheduler(q)
	if !ok {
		return 0, fmt.Errorf("unknown scheduler %q", q)
	}
	return sched, nil
}

// scaleFromQuery selects decode-to-scale: ?scale=1/2, 1/4 or 1/8
// reconstructs directly at the reduced resolution (the decode-to-fit
// path a thumbnailer or gallery wants). An unknown value is a request
// error (HTTP 400), reported before any decoding starts.
func scaleFromQuery(r *http.Request) (hetjpeg.Scale, error) {
	q := r.URL.Query().Get("scale")
	scale, ok := hetjpeg.ParseScale(q)
	if !ok {
		return 0, fmt.Errorf("unknown scale %q (want 1, 1/2, 1/4 or 1/8)", q)
	}
	return scale, nil
}

func (s *server) decode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JPEG body", http.StatusMethodNotAllowed)
		return
	}
	// Check the JPEG magic from the first two bytes before buffering
	// anything substantial: a 64 MiB PNG should be refused after 2
	// bytes, not read to completion first.
	limited := http.MaxBytesReader(w, r.Body, s.bodyLimit())
	magic := make([]byte, 2)
	if _, err := io.ReadFull(limited, magic); err != nil || magic[0] != 0xFF || magic[1] != 0xD8 {
		writeJSONError(w, http.StatusUnsupportedMediaType, "not a JPEG (missing FF D8 SOI magic)")
		return
	}
	rest, err := io.ReadAll(limited)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSONError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", mbe.Limit))
			return
		}
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	body := append(magic, rest...)
	mode, err := s.modeFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	scale, err := scaleFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	salvage := salvageFromQuery(r)
	start := time.Now()
	// Resolve ModeAuto up front so the reply reports the mode that
	// actually ran, not the sentinel.
	mode = mode.Resolve(s.model)
	res, err := hetjpeg.Decode(body, hetjpeg.Options{Mode: mode, Spec: s.spec, Model: s.model, Scale: scale, Salvage: salvage})
	reply := decodeReply{Mode: mode.String(), Platform: s.spec.Name, Scale: scale.String()}
	// Headers must be set before the first WriteHeader call; the error
	// replies below are JSON too.
	w.Header().Set("Content-Type", "application/json")
	if err != nil && res != nil {
		// Salvaged decode: a usable (partially gray) image plus an
		// ErrPartialData error. That is a success to an image service —
		// 200 with the damage accounted, flagged in a header so caches
		// and clients can tell degraded from pristine.
		reply.Salvaged = true
		reply.SalvageError = err.Error()
		if rep := res.Salvage; rep != nil {
			reply.RecoveredMCUs = rep.RecoveredMCUs
			reply.TotalMCUs = rep.TotalMCUs
		}
		w.Header().Set("X-Hetjpeg-Salvaged", "true")
		err = nil
	}
	if err != nil {
		reply.Error = err.Error()
		if errors.Is(err, hetjpeg.ErrUnsupported) {
			// Valid JPEG, unsupported coding feature: the client should
			// not retry, but also should not treat the file as corrupt.
			reply.Unsupported = true
			w.WriteHeader(http.StatusUnsupportedMediaType)
		} else {
			w.WriteHeader(http.StatusUnprocessableEntity)
		}
	} else {
		reply.Width, reply.Height = res.Image.W, res.Image.H
		reply.VirtualMs = res.TotalNs / 1e6
		reply.HuffmanMs = res.HuffNs / 1e6
		reply.GPUMCURows = res.Stats.GPUMCURows
		reply.CPUMCURows = res.Stats.CPUMCURows
		reply.Chunks = res.Stats.Chunks
		reply.Repartitioned = res.Stats.Repartitioned
		reply.EntropyScans = res.Stats.EntropyScans
		// The reply carries only metadata; hand the pixel and coefficient
		// slabs back to the pool so concurrent request load stays
		// allocation-flat.
		res.Release()
	}
	reply.WallMs = float64(time.Since(start).Microseconds()) / 1000
	_ = json.NewEncoder(w).Encode(reply)
}

type batchImageReply struct {
	Index        int     `json:"index"`
	Width        int     `json:"width,omitempty"`
	Height       int     `json:"height,omitempty"`
	VirtualMs    float64 `json:"virtualMs,omitempty"`
	GPUMCURows   int     `json:"gpuMcuRows,omitempty"`
	CPUMCURows   int     `json:"cpuMcuRows,omitempty"`
	EntropyScans int     `json:"entropyScans,omitempty"`
	Error        string  `json:"error,omitempty"`
	Unsupported  bool    `json:"unsupported,omitempty"`
	// Salvaged marks a partial recovery (?salvage=1): dimensions and
	// stats are present, SalvageError carries the absorbed error.
	Salvaged      bool   `json:"salvaged,omitempty"`
	RecoveredMCUs int    `json:"recoveredMcus,omitempty"`
	TotalMCUs     int    `json:"totalMcus,omitempty"`
	SalvageError  string `json:"salvageError,omitempty"`
}

type batchReply struct {
	Mode        string            `json:"mode"`
	Scale       string            `json:"scale"`
	Platform    string            `json:"platform"`
	Workers     int               `json:"workers"`
	Images      []batchImageReply `json:"images"`
	Failed      int               `json:"failed"`
	Salvaged    int               `json:"salvaged,omitempty"`
	SerialMs    float64           `json:"serialMs"`
	PipelinedMs float64           `json:"pipelinedMs"`
	Gain        float64           `json:"gain"`
	WallMs      float64           `json:"wallMs"`
}

// batch decodes every part of a multipart upload concurrently. One
// corrupt image does not fail the request: its slot carries the error.
func (s *server) batch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a multipart form of JPEGs", http.StatusMethodNotAllowed)
		return
	}
	mode, err := s.modeFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sched, err := schedulerFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	scale, err := scaleFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	const (
		maxImages    = 256
		maxImageSize = 64 << 20
		maxBatchSize = 512 << 20
	)
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchSize)
	mr, err := r.MultipartReader()
	if err != nil {
		http.Error(w, "expected multipart/form-data: "+err.Error(), http.StatusBadRequest)
		return
	}
	var datas [][]byte
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(datas) == maxImages {
			part.Close()
			http.Error(w, fmt.Sprintf("too many images (max %d)", maxImages), http.StatusRequestEntityTooLarge)
			return
		}
		// Read one byte past the cap so an at-limit part is detected as
		// oversized rather than silently truncated.
		data, err := io.ReadAll(io.LimitReader(part, maxImageSize+1))
		part.Close()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(data) > maxImageSize {
			http.Error(w, fmt.Sprintf("image %d exceeds %d bytes", len(datas), maxImageSize), http.StatusRequestEntityTooLarge)
			return
		}
		datas = append(datas, data)
	}
	if len(datas) == 0 {
		http.Error(w, "no images in form", http.StatusBadRequest)
		return
	}

	salvage := salvageFromQuery(r)
	start := time.Now()
	mode = mode.Resolve(s.model) // report the mode that actually runs
	res, err := hetjpeg.DecodeBatchContext(r.Context(), datas, hetjpeg.BatchOptions{
		Spec: s.spec, Model: s.model, Mode: mode, Scheduler: sched, Workers: s.workers, Scale: scale,
		Salvage: salvage,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	reply := batchReply{
		Mode:        mode.String(),
		Scale:       scale.String(),
		Platform:    s.spec.Name,
		Workers:     s.workers,
		Failed:      res.Failed,
		Salvaged:    res.Salvaged,
		SerialMs:    res.SerialNs / 1e6,
		PipelinedMs: res.PipelinedNs / 1e6,
		Gain:        res.Gain(),
	}
	for _, ir := range res.Images {
		img := batchImageReply{Index: ir.Index}
		if ir.Res == nil {
			img.Error = ir.Err.Error()
			img.Unsupported = errors.Is(ir.Err, hetjpeg.ErrUnsupported)
		} else {
			if ir.Err != nil {
				// Salvaged: usable pixels plus an ErrPartialData error.
				img.Salvaged = true
				img.SalvageError = ir.Err.Error()
				if rep := ir.Res.Salvage; rep != nil {
					img.RecoveredMCUs = rep.RecoveredMCUs
					img.TotalMCUs = rep.TotalMCUs
				}
			}
			img.Width, img.Height = ir.Res.Image.W, ir.Res.Image.H
			img.VirtualMs = ir.Res.TotalNs / 1e6
			img.GPUMCURows = ir.Res.Stats.GPUMCURows
			img.CPUMCURows = ir.Res.Stats.CPUMCURows
			img.EntropyScans = ir.Res.Stats.EntropyScans
			ir.Res.Release()
		}
		reply.Images = append(reply.Images, img)
	}
	if res.Salvaged > 0 {
		w.Header().Set("X-Hetjpeg-Salvaged", "true")
	}
	reply.WallMs = float64(time.Since(start).Microseconds()) / 1000
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply)
}

func (s *server) platforms(w http.ResponseWriter, _ *http.Request) {
	type p struct {
		Name, CPU, GPU string
		Modes          []string
	}
	var out []p
	var modes []string
	for _, m := range core.AllModes() {
		modes = append(modes, m.String())
	}
	for _, spec := range hetjpeg.Platforms() {
		out = append(out, p{Name: spec.Name, CPU: spec.CPUModel, GPU: spec.GPUModel, Modes: modes})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8080", "listen address")
	platformName := flag.String("platform", "GTX 560", "simulated machine")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent decodes per /batch request")
	flag.Parse()

	spec := hetjpeg.PlatformByName(*platformName)
	if spec == nil {
		log.Fatalf("unknown platform %q", *platformName)
	}
	log.Printf("training performance model for %s...", spec.Name)
	model, err := hetjpeg.Train(spec)
	if err != nil {
		log.Fatal(err)
	}
	s := &server{spec: spec, model: model, workers: *workers}
	mux := http.NewServeMux()
	mux.HandleFunc("/decode", s.decode)
	mux.HandleFunc("/batch", s.batch)
	mux.HandleFunc("/platforms", s.platforms)
	log.Printf("decoding as %s on %s (%d batch workers)", spec, *addr, *workers)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
