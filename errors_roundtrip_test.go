package hetjpeg_test

// The typed-sentinel contract errwrapcheck enforces, verified end to
// end: ErrUnsupported, ErrUnsupportedScale and ErrPartialData must
// survive errors.Is through every layer wrap (jpegcodec → core →
// batch), because the webserver maps them to HTTP statuses and batch
// callers use them to distinguish "out of scope" and "degraded but
// displayable" from "corrupt".

import (
	"bytes"
	"errors"
	"testing"

	"hetjpeg"
)

// unsupportedJPEG flips the SOF0 sample-precision byte to 12 bits: a
// structurally valid stream using a feature outside the decoder's
// scope, the exact class ErrUnsupported marks.
func unsupportedJPEG(t testing.TB) []byte {
	t.Helper()
	data := testJPEG(t, 64, 48)
	i := bytes.Index(data, []byte{0xFF, 0xC0})
	if i < 0 {
		t.Fatal("no SOF0 marker in encoded stream")
	}
	data[i+4] = 12
	return data
}

func TestErrUnsupportedSurvivesDecode(t *testing.T) {
	spec := hetjpeg.PlatformByName("GTX 560")
	_, err := hetjpeg.Decode(unsupportedJPEG(t), hetjpeg.Options{Mode: hetjpeg.ModeSequential, Spec: spec})
	if err == nil {
		t.Fatal("12-bit stream decoded without error")
	}
	if !errors.Is(err, hetjpeg.ErrUnsupported) {
		t.Fatalf("errors.Is(err, ErrUnsupported) = false; err = %v", err)
	}
}

func TestErrUnsupportedSurvivesBatch(t *testing.T) {
	spec := hetjpeg.PlatformByName("GTX 560")
	res, err := hetjpeg.DecodeBatch([][]byte{testJPEG(t, 64, 48), unsupportedJPEG(t)},
		hetjpeg.BatchOptions{Spec: spec, Mode: hetjpeg.ModeSequential, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", res.Failed)
	}
	for _, ir := range res.Images {
		switch ir.Index {
		case 0:
			if ir.Err != nil {
				t.Fatalf("good image failed: %v", ir.Err)
			}
			ir.Res.Release()
		case 1:
			if ir.Err == nil {
				t.Fatal("12-bit stream decoded without error in batch")
			}
			if !errors.Is(ir.Err, hetjpeg.ErrUnsupported) {
				t.Fatalf("errors.Is(ir.Err, ErrUnsupported) = false through the batch layer; err = %v", ir.Err)
			}
		}
	}
}

// salvageableJPEG encodes with restart markers and truncates inside the
// entropy data: corrupt enough that strict decoding fails, recoverable
// enough that salvage produces a partial image.
func salvageableJPEG(t testing.TB) []byte {
	t.Helper()
	img := hetjpeg.NewImage(160, 128)
	for y := 0; y < 128; y++ {
		for x := 0; x < 160; x++ {
			img.Set(x, y, byte(x*2), byte(y*2), byte(x+y))
		}
	}
	data, err := hetjpeg.Encode(img, hetjpeg.EncodeOptions{
		Quality: 85, Subsampling: hetjpeg.Sub420, RestartInterval: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data[:len(data)*3/4]
}

func TestErrPartialDataSurvivesDecode(t *testing.T) {
	spec := hetjpeg.PlatformByName("GTX 560")
	data := salvageableJPEG(t)

	// Strict: a corrupt stream fails outright, no partial sentinel.
	if _, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: hetjpeg.ModeSequential, Spec: spec}); err == nil {
		t.Fatal("strict decode of a truncated stream succeeded")
	} else if errors.Is(err, hetjpeg.ErrPartialData) {
		t.Fatalf("strict decode reported ErrPartialData: %v", err)
	}

	res, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: hetjpeg.ModeSequential, Spec: spec, Salvage: true})
	if err == nil {
		t.Fatal("salvage decode of a truncated stream reported no error")
	}
	if !errors.Is(err, hetjpeg.ErrPartialData) {
		t.Fatalf("errors.Is(err, ErrPartialData) = false; err = %v", err)
	}
	if res == nil || res.Image == nil {
		t.Fatal("salvage decode returned no usable result alongside ErrPartialData")
	}
	if res.Salvage == nil || !res.Salvage.Impaired() {
		t.Fatalf("Result.Salvage = %+v, want an impaired report", res.Salvage)
	}
	if res.Salvage.RecoveredMCUs <= 0 || res.Salvage.RecoveredMCUs >= res.Salvage.TotalMCUs {
		t.Fatalf("recovered %d of %d MCUs, want a strict partial recovery",
			res.Salvage.RecoveredMCUs, res.Salvage.TotalMCUs)
	}
	res.Release()
}

func TestErrPartialDataSurvivesBatch(t *testing.T) {
	spec := hetjpeg.PlatformByName("GTX 560")
	res, err := hetjpeg.DecodeBatch([][]byte{testJPEG(t, 64, 48), salvageableJPEG(t)},
		hetjpeg.BatchOptions{Spec: spec, Mode: hetjpeg.ModeSequential, Workers: 2, Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Salvaged != 1 {
		t.Fatalf("Failed = %d, Salvaged = %d; want 0, 1", res.Failed, res.Salvaged)
	}
	for _, ir := range res.Images {
		switch ir.Index {
		case 0:
			if ir.Err != nil {
				t.Fatalf("good image failed: %v", ir.Err)
			}
			ir.Res.Release()
		case 1:
			if ir.Res == nil {
				t.Fatalf("salvaged image delivered no result: %v", ir.Err)
			}
			if !errors.Is(ir.Err, hetjpeg.ErrPartialData) {
				t.Fatalf("errors.Is(ir.Err, ErrPartialData) = false through the batch layer; err = %v", ir.Err)
			}
			ir.Res.Release()
		}
	}
}

func TestErrUnsupportedScaleSurvivesDecode(t *testing.T) {
	spec := hetjpeg.PlatformByName("GTX 560")
	_, err := hetjpeg.Decode(testJPEG(t, 64, 48),
		hetjpeg.Options{Mode: hetjpeg.ModeSequential, Spec: spec, Scale: hetjpeg.Scale(3)})
	if err == nil {
		t.Fatal("scale 1/3 decoded without error")
	}
	if !errors.Is(err, hetjpeg.ErrUnsupportedScale) {
		t.Fatalf("errors.Is(err, ErrUnsupportedScale) = false; err = %v", err)
	}
}

func TestErrUnsupportedScaleSurvivesBatch(t *testing.T) {
	spec := hetjpeg.PlatformByName("GTX 560")
	_, err := hetjpeg.DecodeBatch([][]byte{testJPEG(t, 64, 48)},
		hetjpeg.BatchOptions{Spec: spec, Mode: hetjpeg.ModeSequential, Scale: hetjpeg.Scale(3)})
	if err == nil {
		t.Fatal("scale 1/3 batch started without error")
	}
	if !errors.Is(err, hetjpeg.ErrUnsupportedScale) {
		t.Fatalf("errors.Is(err, ErrUnsupportedScale) = false through the batch layer; err = %v", err)
	}
}
