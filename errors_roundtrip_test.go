package hetjpeg_test

// The typed-sentinel contract errwrapcheck enforces, verified end to
// end: ErrUnsupported and ErrUnsupportedScale must survive errors.Is
// through every layer wrap (jpegcodec → core → batch), because the
// webserver maps them to HTTP statuses and batch callers use them to
// distinguish "out of scope" from "corrupt".

import (
	"bytes"
	"errors"
	"testing"

	"hetjpeg"
)

// unsupportedJPEG flips the SOF0 sample-precision byte to 12 bits: a
// structurally valid stream using a feature outside the decoder's
// scope, the exact class ErrUnsupported marks.
func unsupportedJPEG(t testing.TB) []byte {
	t.Helper()
	data := testJPEG(t, 64, 48)
	i := bytes.Index(data, []byte{0xFF, 0xC0})
	if i < 0 {
		t.Fatal("no SOF0 marker in encoded stream")
	}
	data[i+4] = 12
	return data
}

func TestErrUnsupportedSurvivesDecode(t *testing.T) {
	spec := hetjpeg.PlatformByName("GTX 560")
	_, err := hetjpeg.Decode(unsupportedJPEG(t), hetjpeg.Options{Mode: hetjpeg.ModeSequential, Spec: spec})
	if err == nil {
		t.Fatal("12-bit stream decoded without error")
	}
	if !errors.Is(err, hetjpeg.ErrUnsupported) {
		t.Fatalf("errors.Is(err, ErrUnsupported) = false; err = %v", err)
	}
}

func TestErrUnsupportedSurvivesBatch(t *testing.T) {
	spec := hetjpeg.PlatformByName("GTX 560")
	res, err := hetjpeg.DecodeBatch([][]byte{testJPEG(t, 64, 48), unsupportedJPEG(t)},
		hetjpeg.BatchOptions{Spec: spec, Mode: hetjpeg.ModeSequential, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", res.Failed)
	}
	for _, ir := range res.Images {
		switch ir.Index {
		case 0:
			if ir.Err != nil {
				t.Fatalf("good image failed: %v", ir.Err)
			}
			ir.Res.Release()
		case 1:
			if ir.Err == nil {
				t.Fatal("12-bit stream decoded without error in batch")
			}
			if !errors.Is(ir.Err, hetjpeg.ErrUnsupported) {
				t.Fatalf("errors.Is(ir.Err, ErrUnsupported) = false through the batch layer; err = %v", ir.Err)
			}
		}
	}
}

func TestErrUnsupportedScaleSurvivesDecode(t *testing.T) {
	spec := hetjpeg.PlatformByName("GTX 560")
	_, err := hetjpeg.Decode(testJPEG(t, 64, 48),
		hetjpeg.Options{Mode: hetjpeg.ModeSequential, Spec: spec, Scale: hetjpeg.Scale(3)})
	if err == nil {
		t.Fatal("scale 1/3 decoded without error")
	}
	if !errors.Is(err, hetjpeg.ErrUnsupportedScale) {
		t.Fatalf("errors.Is(err, ErrUnsupportedScale) = false; err = %v", err)
	}
}

func TestErrUnsupportedScaleSurvivesBatch(t *testing.T) {
	spec := hetjpeg.PlatformByName("GTX 560")
	_, err := hetjpeg.DecodeBatch([][]byte{testJPEG(t, 64, 48)},
		hetjpeg.BatchOptions{Spec: spec, Mode: hetjpeg.ModeSequential, Scale: hetjpeg.Scale(3)})
	if err == nil {
		t.Fatal("scale 1/3 batch started without error")
	}
	if !errors.Is(err, hetjpeg.ErrUnsupportedScale) {
		t.Fatalf("errors.Is(err, ErrUnsupportedScale) = false through the batch layer; err = %v", err)
	}
}
