// Package hetjpeg is a heterogeneous JPEG decoder: a from-scratch
// reproduction of "Dynamic Partitioning-based JPEG Decompression on
// Heterogeneous Multicore Architectures" (Sodsong et al., PMAM/PPoPP
// 2014) in pure Go.
//
// The library contains a complete baseline JPEG codec (encoder and
// decoder, 4:4:4 / 4:2:2 / 4:2:0 / grayscale), a simulated
// OpenCL-programmable GPU with the paper's kernels, an offline-profiled
// performance model (multivariate polynomial regression over image
// width, height and entropy density), and the paper's dynamic
// partitioning schemes (SPS and PPS) that split each image between a CPU
// and the device so both finish together.
//
// Quick start:
//
//	spec := hetjpeg.PlatformByName("GTX 560")
//	model, _ := hetjpeg.Train(spec) // once per platform (offline step)
//	res, _ := hetjpeg.Decode(jpegBytes, hetjpeg.Options{
//		Mode:  hetjpeg.ModePPS,
//		Spec:  spec,
//		Model: model,
//	})
//	img := res.Image // interleaved RGB
//
// Every mode produces bit-identical pixels; modes differ only in
// scheduling, which the returned virtual timeline records. See DESIGN.md
// for the substitution of a simulated device for physical GPUs.
package hetjpeg

import (
	"context"
	"image"

	"hetjpeg/internal/batch"
	"hetjpeg/internal/core"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
	"hetjpeg/internal/transcode"
)

// Mode selects the execution strategy.
type Mode = core.Mode

// The six decoder modes of the paper's evaluation, plus ModeAuto (the
// zero value), which resolves to ModePPS when a model is available and
// ModePipelinedGPU otherwise.
const (
	ModeAuto         = core.ModeAuto
	ModeSequential   = core.ModeSequential
	ModeSIMD         = core.ModeSIMD
	ModeGPU          = core.ModeGPU
	ModePipelinedGPU = core.ModePipelinedGPU
	ModeSPS          = core.ModeSPS
	ModePPS          = core.ModePPS
)

// AllModes lists the modes in the paper's order.
func AllModes() []Mode { return core.AllModes() }

// ParseMode maps a mode name ("auto", "sequential", "simd", "gpu",
// "pipeline", "sps", "pps") to its Mode; ok is false for unknown names.
// Frontends should parse with this so the name set has one
// authoritative site.
func ParseMode(name string) (Mode, bool) {
	if name == ModeAuto.String() {
		return ModeAuto, true
	}
	for _, m := range AllModes() {
		if m.String() == name {
			return m, true
		}
	}
	return ModeAuto, false
}

// ParseScheduler maps a batch scheduler name ("bands", "perimage") to
// its BatchScheduler; ok is false for unknown names. The empty string
// parses as the default (SchedulerBands).
func ParseScheduler(name string) (BatchScheduler, bool) {
	switch name {
	case "", "bands":
		return SchedulerBands, true
	case "perimage":
		return SchedulerPerImage, true
	}
	return SchedulerBands, false
}

// Platform describes one simulated CPU-GPU machine (Table 1).
type Platform = platform.Spec

// Platforms returns the three machines of the paper's evaluation.
func Platforms() []*Platform { return platform.All() }

// PlatformByName returns a machine by its Table 1 name ("GT 430",
// "GTX 560", "GTX 680"), or nil.
func PlatformByName(name string) *Platform { return platform.ByName(name) }

// Model is a fitted per-platform performance model.
type Model = perfmodel.Model

// Train runs the offline profiling step for a platform: it generates the
// training corpus, profiles every image, fits the regression model and
// selects the pipelining chunk size. Results are cached per platform
// within the process.
func Train(spec *Platform) (*Model, error) { return perfmodel.Default(spec) }

// LoadModel reads a model previously saved with Model.Save.
func LoadModel(path string) (*Model, error) { return perfmodel.Load(path) }

// Options configures a decode. Spec is required; Model is required for
// ModeSPS and ModePPS.
type Options = core.Options

// Result is a finished decode: the RGB image, scheduling statistics and
// the virtual timeline of the schedule.
type Result = core.Result

// Image is an interleaved 8-bit RGB image.
type Image = jpegcodec.RGBImage

// ErrUnsupported marks structurally valid JPEG streams that use a
// feature outside the decoder's scope (12-bit precision, arithmetic
// coding, hierarchical frames, exotic sampling layouts). Check it with
// errors.Is to answer "unsupported media" instead of "corrupt stream";
// note that progressive (SOF2) streams are fully supported and decode
// like any baseline image.
var ErrUnsupported = jfif.ErrUnsupported

// Scale selects decode-to-scale: Options.Scale (and BatchOptions.Scale)
// reconstructs the image directly at 1/2, 1/4 or 1/8 of its coded
// resolution through scaled inverse transforms — the thumbnail/fit-to-
// screen workload — never by decoding full-size and shrinking. The zero
// value decodes full size. Every mode produces byte-identical scaled
// pixels.
type Scale = jpegcodec.Scale

// The supported decode scales.
const (
	Scale1 = jpegcodec.Scale1
	Scale2 = jpegcodec.Scale2
	Scale4 = jpegcodec.Scale4
	Scale8 = jpegcodec.Scale8
)

// ErrUnsupportedScale marks a decode request whose Scale is not one of
// {1, 1/2, 1/4, 1/8}; check it with errors.Is.
var ErrUnsupportedScale = jpegcodec.ErrUnsupportedScale

// ErrPartialData marks a salvaged decode (Options.Salvage): pixels were
// produced, but part of the stream was lost to corruption or
// truncation. Decode returns it *alongside* a usable Result whose
// Salvage report describes the damage; check it with errors.Is to
// distinguish "degraded but displayable" from a total failure (Result
// nil).
var ErrPartialData = jpegcodec.ErrPartialData

// SalvageReport accounts for a salvage-mode decode: total and recovered
// MCU counts, resynchronization count, the damaged regions and every
// absorbed error. Result.Salvage carries one when the decode was
// impaired.
type SalvageReport = jpegcodec.SalvageReport

// DamagedRegion is one contiguous run of MCUs (raster order) whose
// coefficients were lost and zeroed.
type DamagedRegion = jpegcodec.DamagedRegion

// ScanError is one absorbed error with the entropy scan it occurred in
// (-1 for container-level parse errors).
type ScanError = jpegcodec.ScanError

// ParseScale maps a scale name ("1", "1/2", "1/4", "1/8", or the bare
// denominators "2", "4", "8"; "" means full size) to its Scale; ok is
// false for unknown names. Frontends should parse with this so the name
// set has one authoritative site.
func ParseScale(name string) (Scale, bool) { return jpegcodec.ParseScale(name) }

// Decode decompresses a baseline or progressive JPEG stream under the
// given mode. With Options.Salvage set, a corrupt-but-recoverable
// stream returns BOTH a usable Result (Result.Salvage describes the
// damage) and an error wrapping ErrPartialData; every mode renders a
// salvaged stream to byte-identical pixels, exactly like a clean one.
func Decode(data []byte, opts Options) (*Result, error) { return core.Decode(data, opts) }

// DecodeRGB is the convenience path: a plain single-threaded decode with
// no platform simulation.
func DecodeRGB(data []byte) (*Image, error) { return jpegcodec.DecodeScalar(data) }

// DecodeRGBScaled is DecodeRGB at a decode scale (the scalar scaled
// reference path).
func DecodeRGBScaled(data []byte, scale Scale) (*Image, error) {
	return jpegcodec.DecodeScalarScaled(data, scale)
}

// Subsampling selects the encoder's chroma layout.
type Subsampling = jfif.Subsampling

// Chroma subsampling layouts supported end to end.
const (
	Sub444 = jfif.Sub444
	Sub422 = jfif.Sub422
	Sub420 = jfif.Sub420
)

// EncodeOptions configures the encoder (baseline by default; set
// Progressive for a multi-scan SOF2 stream).
type EncodeOptions = jpegcodec.EncodeOptions

// ScanSpec describes one scan of a progressive encode script.
type ScanSpec = jpegcodec.ScanSpec

// ScriptByName resolves a named progressive scan script ("default",
// "spectral", "multiband", "deepsa"; "" means default) from the one
// authoritative table; ok is false for unknown names.
func ScriptByName(name string) ([]ScanSpec, bool) { return jpegcodec.ScriptByName(name) }

// ScriptNames returns the accepted progressive scan-script names.
func ScriptNames() []string { return jpegcodec.ScriptNames() }

// TranscodeOptions configures Transcode: decode scale, output quality,
// progressive output with a named scan script, output subsampling and
// intra-image parallelism.
type TranscodeOptions = transcode.Options

// TranscodeResult is one finished transcode: the re-encoded stream plus
// stage accounting (and whether the coefficient-domain DC-only fast
// path served the decode).
type TranscodeResult = transcode.Result

// ErrBadTranscodeOptions marks a transcode refused for invalid knobs;
// check it with errors.Is to distinguish a caller error from a corrupt
// input stream.
var ErrBadTranscodeOptions = transcode.ErrBadOptions

// Transcode re-encodes a JPEG stream: decode (optionally directly at
// 1/2, 1/4 or 1/8 scale), then encode with optimal Huffman tables under
// the given knobs. A baseline input at 1/8 runs the coefficient-domain
// fast path — DC-only storage, no pixel-domain IDCT — and still emits
// bytes identical to the general pixel path.
func Transcode(data []byte, opts TranscodeOptions) (*TranscodeResult, error) {
	return transcode.Transcode(data, opts)
}

// Encode compresses an RGB image into a JPEG stream.
func Encode(img *Image, opts EncodeOptions) ([]byte, error) { return jpegcodec.Encode(img, opts) }

// NewImage allocates a w x h RGB image.
func NewImage(w, h int) *Image { return jpegcodec.NewRGBImage(w, h) }

// ToStdImage converts an Image to the standard library's RGBA type.
func ToStdImage(im *Image) *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		src := im.Pix[y*im.W*3 : (y+1)*im.W*3]
		dst := out.Pix[y*out.Stride : y*out.Stride+im.W*4]
		for x := 0; x < im.W; x++ {
			dst[x*4], dst[x*4+1], dst[x*4+2], dst[x*4+3] = src[x*3], src[x*3+1], src[x*3+2], 255
		}
	}
	return out
}

// FromStdImage converts any standard image to an Image.
func FromStdImage(src image.Image) *Image {
	b := src.Bounds()
	out := jpegcodec.NewRGBImage(b.Dx(), b.Dy())
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			r, g, bb, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out.Set(x, y, byte(r>>8), byte(g>>8), byte(bb>>8))
		}
	}
	return out
}

// BatchOptions configures DecodeBatch. Workers bounds wall-clock
// concurrency (0 = GOMAXPROCS); Scheduler selects the wall-clock engine.
type BatchOptions = batch.Options

// BatchScheduler selects the batch wall-clock engine: the pipelined
// MCU-band work-stealing scheduler (default) or the whole-image worker
// pool. Pixels and virtual timelines are identical across schedulers.
type BatchScheduler = batch.Scheduler

// The batch wall-clock engines.
const (
	SchedulerBands    = batch.SchedulerBands
	SchedulerPerImage = batch.SchedulerPerImage
)

// BatchResult is the outcome of DecodeBatch.
type BatchResult = batch.Result

// BatchImageResult is one image of a batch. Its Err field isolates that
// image's failure: a corrupt JPEG never aborts the batch. Under
// BatchOptions.Salvage a partially recovered image carries both a
// usable Res and an Err wrapping ErrPartialData; Res == nil is the true
// failure condition.
type BatchImageResult = batch.ImageResult

// BatchExecutor is a long-lived concurrent decode service with a
// streaming Submit/Results interface. Beyond blocking Submit it offers
// the service-robustness surface cmd/imaged is built on:
// TrySubmitScaled (non-blocking admission, ErrBatchBusy when
// saturated), QueueStats (occupancy + calibrated rates for Retry-After
// arithmetic), and Stop (abandonment-safe shutdown that never leaks
// workers).
type BatchExecutor = batch.Executor

// BatchQueueStats is a point-in-time snapshot of a BatchExecutor's
// admission occupancy and calibrated ns/MCU rates.
type BatchQueueStats = batch.QueueStats

// ErrBatchClosed marks a submission to a closed BatchExecutor; check it
// with errors.Is.
var ErrBatchClosed = batch.ErrClosed

// ErrBatchBusy marks a TrySubmitScaled refused for lack of capacity —
// the executor's load-shedding signal; check it with errors.Is.
var ErrBatchBusy = batch.ErrBusy

// NewBatchExecutor starts a worker pool that decodes submitted images
// concurrently and delivers them on Results in completion order.
func NewBatchExecutor(opts BatchOptions) (*BatchExecutor, error) {
	return batch.NewExecutor(opts)
}

// DecodeBatch decodes a stream of images with the pipelined band
// scheduler (wall-clock concurrency: entropy decoding of in-flight
// images overlapped with work-stolen back-phase bands from all of
// them) while preserving the paper's virtual-time story: the
// merged timeline overlaps each image's CPU-side entropy decoding with
// the previous image's device work — the gallery/browser workload the
// paper's introduction motivates. Per-image scheduling uses PPS when a
// model is provided. Decode failures are isolated per image in
// BatchImageResult.Err; the returned error covers configuration
// problems only.
func DecodeBatch(datas [][]byte, opts BatchOptions) (*BatchResult, error) {
	return batch.Decode(datas, opts)
}

// DecodeBatchContext is DecodeBatch with cancellation: images not yet
// decoded when ctx is cancelled report ctx.Err() in their slot, while
// images that completed first are still delivered — every slot carries
// a result or an error, never neither.
func DecodeBatchContext(ctx context.Context, datas [][]byte, opts BatchOptions) (*BatchResult, error) {
	return batch.DecodeContext(ctx, datas, opts)
}
