// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6). Each benchmark runs the experiment's core
// computation under testing.B and reports the headline quantity of the
// corresponding table/figure as a custom metric (speedups, percent of
// the Amdahl bound, load imbalance, fit quality), so `go test -bench=.`
// reproduces the paper's result shapes. cmd/experiments renders the same
// experiments as full text reports.
package hetjpeg_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"hetjpeg"
	"hetjpeg/internal/core"
	"hetjpeg/internal/harness"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
)

// Shared fixtures, built once.
var (
	fixOnce   sync.Once
	fixModels map[string]*perfmodel.Model
	fixErr    error
)

func models(b testing.TB) map[string]*perfmodel.Model {
	fixOnce.Do(func() {
		// Full training corpora: the benchmark sweeps reach ~5 MP, and
		// the quick test models (trained to 0.5 MP) extrapolate poorly
		// out there — the paper's own Section 5.1 caveat.
		fixModels = map[string]*perfmodel.Model{}
		for _, spec := range platform.All() {
			m, err := perfmodel.Default(spec)
			if err != nil {
				fixErr = err
				return
			}
			fixModels[spec.Name] = m
		}
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fixModels
}

var (
	corpusOnce sync.Once
	corpusData map[string][]imagegen.Item
	corpusErr  error
)

// benchCorpus returns a compact test corpus (disjoint seeds from
// training) per subsampling.
func benchCorpus(b testing.TB, sub jfif.Subsampling) []imagegen.Item {
	corpusOnce.Do(func() {
		corpusData = map[string][]imagegen.Item{}
		for _, s := range []jfif.Subsampling{jfif.Sub422, jfif.Sub444} {
			opts := imagegen.CorpusOptions{
				Widths:   []int{320, 768, 1280},
				Heights:  []int{240, 576, 960},
				Details:  []float64{0.15, 0.55, 0.95},
				Sub:      s,
				Quality:  85,
				SeedBase: 77000,
			}
			items, err := imagegen.Build(opts)
			if err != nil {
				corpusErr = err
				return
			}
			corpusData[s.String()] = items
		}
	})
	if corpusErr != nil {
		b.Fatal(corpusErr)
	}
	return corpusData[sub.String()]
}

var sweepSizes = [][2]int{
	{512, 384}, {800, 600}, {1024, 768}, {1600, 1200}, {2048, 1536}, {2560, 1920},
}

// ---------------------------------------------------------------------
// Table 1

func BenchmarkTable1_Specs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1Text() == "" {
			b.Fatal("empty table")
		}
	}
}

// ---------------------------------------------------------------------
// Figure 6: linear scaling of the parallel phase.

func BenchmarkFigure6_ParallelPhaseScaling(b *testing.B) {
	var r *harness.Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = harness.Figure6(platform.GTX560(), sweepSizes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.R2SIMD, "R2-simd")
	b.ReportMetric(r.R2GPU, "R2-gpu")
}

// ---------------------------------------------------------------------
// Figure 7: Huffman rate vs entropy density.

func BenchmarkFigure7_HuffmanRateVsDensity(b *testing.B) {
	var r *harness.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = harness.Figure7(platform.GTX560(), jfif.Sub422)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.R2, "R2")
	b.ReportMetric(r.Slope, "ns/px-per-B/px")
}

// ---------------------------------------------------------------------
// Figure 9: breakdown on a 2048x2048 image.

func BenchmarkFigure9_Breakdown(b *testing.B) {
	var cols []harness.Fig9Column
	var err error
	for i := 0; i < b.N; i++ {
		cols, err = harness.Figure9(2048)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cols {
		if c.Mode == core.ModeGPU {
			b.ReportMetric(c.VsSIMDNorm, "gpuVsSimd-"+sanitize(c.Machine))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			continue
		}
		out = append(out, r)
	}
	return string(out)
}

// ---------------------------------------------------------------------
// Tables 2 and 3: mean speedups over SIMD.

func benchSpeedupTable(b *testing.B, sub jfif.Subsampling) {
	ms := models(b)
	corpus := benchCorpus(b, sub)
	var cells []harness.SpeedupCell
	var err error
	for i := 0; i < b.N; i++ {
		cells, err = harness.SpeedupTable(sub, corpus, ms)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		b.ReportMetric(c.Mean, fmt.Sprintf("x-%s-%s", c.Mode, sanitize(c.Machine)))
	}
}

func BenchmarkTable2_Speedups422(b *testing.B) { benchSpeedupTable(b, jfif.Sub422) }
func BenchmarkTable3_Speedups444(b *testing.B) { benchSpeedupTable(b, jfif.Sub444) }

// ---------------------------------------------------------------------
// Figure 10: speedup vs image size.

func BenchmarkFigure10_SpeedupVsSize(b *testing.B) {
	ms := models(b)
	var pts []harness.Fig10Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = harness.Figure10(jfif.Sub444, sweepSizes, ms)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the largest-size PPS speedup per machine (the curve's tail).
	best := map[string]float64{}
	maxPix := 0
	for _, p := range pts {
		if p.Pixels > maxPix {
			maxPix = p.Pixels
		}
	}
	for _, p := range pts {
		if p.Pixels == maxPix && p.Mode == core.ModePPS {
			best[p.Machine] = p.Speedup
		}
	}
	for m, v := range best {
		b.ReportMetric(v, "ppsTail-"+sanitize(m))
	}
}

// ---------------------------------------------------------------------
// Figure 11: percent of the Amdahl bound.

func BenchmarkFigure11_AmdahlShare(b *testing.B) {
	ms := models(b)
	var pts []harness.Fig11Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = harness.Figure11(platform.GTX680(), jfif.Sub444, sweepSizes, ms["GTX 680"])
		if err != nil {
			b.Fatal(err)
		}
	}
	var mean float64
	for _, p := range pts {
		mean += p.Percent
	}
	b.ReportMetric(mean/float64(len(pts)), "pct-of-bound")
}

// ---------------------------------------------------------------------
// Figure 12: CPU/GPU balance.

func BenchmarkFigure12_Balance(b *testing.B) {
	ms := models(b)
	var pts []harness.Fig12Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = harness.Figure12(jfif.Sub444, sweepSizes[:4], ms)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	n := 0
	for _, p := range pts {
		if p.CPUNs == 0 || p.GPUNs == 0 {
			continue // one-sided schedules have no balance to measure
		}
		m := p.CPUNs
		if p.GPUNs > m {
			m = p.GPUNs
		}
		d := p.CPUNs - p.GPUNs
		if d < 0 {
			d = -d
		}
		sum += d / m
		n++
	}
	if n > 0 {
		b.ReportMetric(100*sum/float64(n), "mean-imbalance-pct")
	}
}

// ---------------------------------------------------------------------
// Real (wall-clock) decodes: the simulated device actually computes
// pixels, so these measure genuine host throughput per mode.

func benchRealDecode(b *testing.B, mode core.Mode) {
	ms := models(b)
	items, err := imagegen.SizeSweep(jfif.Sub422, 0.6, [][2]int{{1024, 1024}}, 5)
	if err != nil {
		b.Fatal(err)
	}
	data := items[0].Data
	spec := platform.GTX560()
	b.SetBytes(1024 * 1024 * 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: mode, Spec: spec, Model: ms[spec.Name]}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealDecode_Sequential(b *testing.B)   { benchRealDecode(b, core.ModeSequential) }
func BenchmarkRealDecode_SIMD(b *testing.B)         { benchRealDecode(b, core.ModeSIMD) }
func BenchmarkRealDecode_GPU(b *testing.B)          { benchRealDecode(b, core.ModeGPU) }
func BenchmarkRealDecode_PipelinedGPU(b *testing.B) { benchRealDecode(b, core.ModePipelinedGPU) }
func BenchmarkRealDecode_SPS(b *testing.B)          { benchRealDecode(b, core.ModeSPS) }
func BenchmarkRealDecode_PPS(b *testing.B)          { benchRealDecode(b, core.ModePPS) }

// ---------------------------------------------------------------------
// Ablations (DESIGN.md Section 6): design choices the paper calls out.

// Merged vs split kernels (Section 4.4).
func BenchmarkAblation_MergedVsSplitKernels(b *testing.B) {
	items, err := imagegen.SizeSweep(jfif.Sub422, 0.6, [][2]int{{1600, 1200}}, 5)
	if err != nil {
		b.Fatal(err)
	}
	data := items[0].Data
	spec := platform.GTX560()
	var merged, split float64
	for i := 0; i < b.N; i++ {
		rm, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: core.ModeGPU, Spec: spec, VirtualOnly: true})
		if err != nil {
			b.Fatal(err)
		}
		rs, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: core.ModeGPU, Spec: spec, VirtualOnly: true, SplitKernels: true})
		if err != nil {
			b.Fatal(err)
		}
		merged, split = rm.TotalNs, rs.TotalNs
	}
	b.ReportMetric(split/merged, "split/merged")
}

// Chunk-size sensitivity (Section 4.5).
func BenchmarkAblation_ChunkSize(b *testing.B) {
	items, err := imagegen.SizeSweep(jfif.Sub422, 0.6, [][2]int{{2048, 2048}}, 5)
	if err != nil {
		b.Fatal(err)
	}
	data := items[0].Data
	spec := platform.GTX560()
	results := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, c := range []int{2, 8, 24, 64, 256} {
			r, err := hetjpeg.Decode(data, hetjpeg.Options{
				Mode: core.ModePipelinedGPU, Spec: spec, ChunkRows: c, VirtualOnly: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			results[c] = r.TotalNs
		}
	}
	for c, ns := range results {
		b.ReportMetric(ns/1e6, fmt.Sprintf("ms-chunk%d", c))
	}
}

// Optimized Huffman tables vs Annex K defaults (encoder substrate).
func BenchmarkAblation_OptimizedHuffman(b *testing.B) {
	img := imagegen.Generate(imagegen.Scene{Seed: 3, Detail: 0.7}, 1024, 768)
	var stdLen, optLen int
	for i := 0; i < b.N; i++ {
		std, err := hetjpeg.Encode(img, hetjpeg.EncodeOptions{Quality: 85, Subsampling: jfif.Sub422})
		if err != nil {
			b.Fatal(err)
		}
		opt, err := hetjpeg.Encode(img, hetjpeg.EncodeOptions{Quality: 85, Subsampling: jfif.Sub422, OptimizeHuffman: true})
		if err != nil {
			b.Fatal(err)
		}
		stdLen, optLen = len(std), len(opt)
	}
	b.ReportMetric(float64(optLen)/float64(stdLen), "opt/std-bytes")
}

// Work-group size sensitivity (Section 5.1 sweeps 4..32 MCUs).
func BenchmarkAblation_WorkGroupSize(b *testing.B) {
	items, err := imagegen.SizeSweep(jfif.Sub422, 0.6, [][2]int{{1600, 1200}}, 5)
	if err != nil {
		b.Fatal(err)
	}
	data := items[0].Data
	results := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, gb := range []int{4, 8, 16, 32, 64} {
			spec := *platform.GTX560()
			spec.WorkGroupBlocks = gb
			r, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: core.ModeGPU, Spec: &spec, VirtualOnly: true})
			if err != nil {
				b.Fatal(err)
			}
			results[gb] = r.TotalNs
		}
	}
	for gb, ns := range results {
		b.ReportMetric(ns/1e6, fmt.Sprintf("ms-wg%d", gb))
	}
}

// Pipelined execution vs single launch across image sizes: where does
// pipelining stop helping (small images, Section 6.2)?
func BenchmarkAblation_PipelineCrossover(b *testing.B) {
	spec := platform.GTX560()
	sizes := [][2]int{{128, 128}, {512, 512}, {2048, 2048}}
	results := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, wh := range sizes {
			items, err := imagegen.SizeSweep(jfif.Sub422, 0.6, [][2]int{wh}, 5)
			if err != nil {
				b.Fatal(err)
			}
			gpu, err := hetjpeg.Decode(items[0].Data, hetjpeg.Options{Mode: core.ModeGPU, Spec: spec, VirtualOnly: true})
			if err != nil {
				b.Fatal(err)
			}
			pipe, err := hetjpeg.Decode(items[0].Data, hetjpeg.Options{Mode: core.ModePipelinedGPU, Spec: spec, VirtualOnly: true})
			if err != nil {
				b.Fatal(err)
			}
			results[wh[0]] = gpu.TotalNs / pipe.TotalNs
		}
	}
	for size, gain := range results {
		b.ReportMetric(gain, fmt.Sprintf("pipeGain-%dpx", size))
	}
}

// What-if: the embedded (integrated GPU, zero-copy) machine from the
// paper's conclusion. The weak GPU loses on raw kernels, but cheap
// transfers keep heterogeneous decoding ahead of SIMD.
func BenchmarkExtension_EmbeddedPlatform(b *testing.B) {
	spec := platform.Embedded()
	model, err := perfmodel.TrainQuick(spec)
	if err != nil {
		b.Fatal(err)
	}
	items, err := imagegen.SizeSweep(jfif.Sub422, 0.5, [][2]int{{1024, 768}}, 5)
	if err != nil {
		b.Fatal(err)
	}
	data := items[0].Data
	var gpu, pps float64
	for i := 0; i < b.N; i++ {
		simd, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: core.ModeSIMD, Spec: spec, VirtualOnly: true})
		if err != nil {
			b.Fatal(err)
		}
		g, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: core.ModeGPU, Spec: spec, VirtualOnly: true})
		if err != nil {
			b.Fatal(err)
		}
		p, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: core.ModePPS, Spec: spec, Model: model, VirtualOnly: true})
		if err != nil {
			b.Fatal(err)
		}
		gpu, pps = simd.TotalNs/g.TotalNs, simd.TotalNs/p.TotalNs
	}
	b.ReportMetric(gpu, "gpuVsSimd")
	b.ReportMetric(pps, "ppsVsSimd")
}

// Extension: cross-image batch pipelining (internal/batch).
func BenchmarkExtension_BatchPipelining(b *testing.B) {
	ms := models(b)
	spec := platform.GTX560()
	var stream [][]byte
	for i := 0; i < 8; i++ {
		items, err := imagegen.SizeSweep(jfif.Sub422, 0.4, [][2]int{{800, 600}}, int64(700+i))
		if err != nil {
			b.Fatal(err)
		}
		stream = append(stream, items[0].Data)
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := hetjpeg.DecodeBatch(stream, hetjpeg.BatchOptions{Spec: spec, Model: ms[spec.Name]})
		if err != nil {
			b.Fatal(err)
		}
		gain = res.Gain()
	}
	b.ReportMetric(gain, "batchGain")
}

// Wall-clock batch throughput: the concurrent executor vs a serial
// one-worker loop over the same stream. Pixels are bit-identical and
// the virtual makespan is identical across worker counts (asserted by
// TestBatchDeterministicAcrossWorkers); what changes is host
// throughput, which should scale near-linearly until the core count.
func benchBatchWallClock(b *testing.B, workers int) {
	var stream [][]byte
	for i := 0; i < 16; i++ {
		items, err := imagegen.SizeSweep(jfif.Sub422, 0.5, [][2]int{{800, 600}}, int64(4200+i))
		if err != nil {
			b.Fatal(err)
		}
		stream = append(stream, items[0].Data)
	}
	spec := platform.GTX560()
	opts := hetjpeg.BatchOptions{Spec: spec, Mode: core.ModePipelinedGPU, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hetjpeg.DecodeBatch(stream, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed != 0 {
			b.Fatalf("%d images failed", res.Failed)
		}
		for _, ir := range res.Images {
			ir.Res.Release()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(stream)*b.N)/b.Elapsed().Seconds(), "imgs/s")
}

func BenchmarkBatchWallClock_Workers1(b *testing.B) { benchBatchWallClock(b, 1) }
func BenchmarkBatchWallClock_WorkersN(b *testing.B) { benchBatchWallClock(b, runtime.GOMAXPROCS(0)) }

// Mixed-size wall-clock batch: the workload the band scheduler exists
// for. The corpus spans 0.3–4.9 MP across all three subsamplings with
// one 5 MP straggler; under the per-image pool that straggler pins one
// worker while the rest drain, and every concurrent decode spins up its
// own device workers. The band scheduler overlaps entropy streams and
// shreds every image's back phase into work-stolen MCU bands. Pixels
// are byte-identical across schedulers (TestSchedulerIdentity...); the
// tracked number is wall-clock throughput, recorded in BENCH_3.json by
// `make bench-batch`.
var (
	mixedBatchOnce sync.Once
	mixedBatchData [][]byte
	mixedBatchPix  float64 // total decoded megapixels per batch
	mixedBatchErr  error
)

func mixedBatchCorpus(b *testing.B) [][]byte {
	mixedBatchOnce.Do(func() {
		shapes := []struct {
			w, h   int
			sub    jfif.Subsampling
			detail float64
		}{
			{640, 480, jfif.Sub420, 0.3},
			{800, 600, jfif.Sub422, 0.55},
			{1024, 768, jfif.Sub444, 0.4},
			{640, 480, jfif.Sub422, 0.8},
			{1280, 960, jfif.Sub420, 0.5},
			{2560, 1920, jfif.Sub420, 0.6}, // the straggler
			{800, 600, jfif.Sub444, 0.7},
			{1600, 1200, jfif.Sub422, 0.45},
		}
		for i, s := range shapes {
			items, err := imagegen.SizeSweep(s.sub, s.detail, [][2]int{{s.w, s.h}}, int64(8800+i))
			if err != nil {
				mixedBatchErr = err
				return
			}
			mixedBatchData = append(mixedBatchData, items[0].Data)
			mixedBatchPix += float64(s.w*s.h) / 1e6
		}
	})
	if mixedBatchErr != nil {
		b.Fatal(mixedBatchErr)
	}
	return mixedBatchData
}

func benchBatchMixed(b *testing.B, sched hetjpeg.BatchScheduler) {
	stream := mixedBatchCorpus(b)
	opts := hetjpeg.BatchOptions{
		Spec:      platform.GTX560(),
		Scheduler: sched,
		Workers:   runtime.GOMAXPROCS(0),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hetjpeg.DecodeBatch(stream, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed != 0 {
			b.Fatalf("%d images failed", res.Failed)
		}
		for _, ir := range res.Images {
			ir.Res.Release()
		}
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	b.ReportMetric(float64(len(stream)*b.N)/secs, "imgs/s")
	b.ReportMetric(mixedBatchPix*float64(b.N)/secs, "MPpx/s")
}

func BenchmarkBatchMixedSizes(b *testing.B) {
	b.Run("perimage", func(b *testing.B) { benchBatchMixed(b, hetjpeg.SchedulerPerImage) })
	b.Run("bands", func(b *testing.B) { benchBatchMixed(b, hetjpeg.SchedulerBands) })
}

// benchBatchMixedScaled runs the mixed-size corpus through the band
// scheduler at a decode scale — the gallery thumbnailing workload. The
// MPpx/s metric stays in *coded* megapixels so rows are comparable
// across scales (same input work, shrinking output work).
func benchBatchMixedScaled(b *testing.B, scale hetjpeg.Scale) {
	stream := mixedBatchCorpus(b)
	opts := hetjpeg.BatchOptions{
		Spec:    platform.GTX560(),
		Workers: runtime.GOMAXPROCS(0),
		Scale:   scale,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hetjpeg.DecodeBatch(stream, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed != 0 {
			b.Fatalf("%d images failed", res.Failed)
		}
		for _, ir := range res.Images {
			ir.Res.Release()
		}
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	b.ReportMetric(float64(len(stream)*b.N)/secs, "imgs/s")
	b.ReportMetric(mixedBatchPix*float64(b.N)/secs, "MPpx/s")
}

// BenchmarkBatchScaledMixedSizes tracks the scaled batch trajectory
// (BENCH_4.json): the same mixed-size corpus decoded to every scale
// through the pipelined band scheduler with per-scale calibration.
func BenchmarkBatchScaledMixedSizes(b *testing.B) {
	for _, scale := range []hetjpeg.Scale{hetjpeg.Scale1, hetjpeg.Scale2, hetjpeg.Scale4, hetjpeg.Scale8} {
		b.Run(fmt.Sprintf("div%d", scale.Denominator()), func(b *testing.B) { benchBatchMixedScaled(b, scale) })
	}
}

// Steady-state allocation: the slab pools should keep per-decode
// allocations flat when results are released back.
func BenchmarkDecodeSteadyStateAllocs(b *testing.B) {
	items, err := imagegen.SizeSweep(jfif.Sub422, 0.5, [][2]int{{1024, 768}}, 5)
	if err != nil {
		b.Fatal(err)
	}
	data := items[0].Data
	spec := platform.GTX560()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: core.ModeGPU, Spec: spec})
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
	}
}

// Extension: parallel Huffman decoding across restart intervals lifts
// the Amdahl ceiling of Figure 11. Reported: the new attainable speedup
// bound if entropy decoding parallelized across 4 cores (vs 1).
func BenchmarkExtension_RestartParallelAmdahl(b *testing.B) {
	spec := platform.GTX680()
	img := imagegen.Generate(imagegen.Scene{Seed: 88, Detail: 0.6}, 1600, 1200)
	data, err := hetjpeg.Encode(img, hetjpeg.EncodeOptions{Quality: 85, Subsampling: jfif.Sub422, RestartInterval: 16})
	if err != nil {
		b.Fatal(err)
	}
	var bound1, bound4 float64
	for i := 0; i < b.N; i++ {
		simd, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: core.ModeSIMD, Spec: spec, VirtualOnly: true})
		if err != nil {
			b.Fatal(err)
		}
		bound1 = simd.TotalNs / simd.HuffNs
		// With restart-parallel entropy decoding across the 4 CPU cores
		// (0.85 parallel efficiency), the sequential floor shrinks.
		bound4 = simd.TotalNs / (simd.HuffNs / (4 * 0.85))
	}
	b.ReportMetric(bound1, "maxSpeedup-1core")
	b.ReportMetric(bound4, "maxSpeedup-4core")
}
