module hetjpeg

go 1.24
