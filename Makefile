# Developer entry points. The repo is plain `go build ./...` /
# `go test ./...`; these targets wrap the recurring workflows.
#
# Static analysis:
#   make lint           runs the project analyzers (cmd/hetlint:
#                       poolcheck, errwrapcheck, ctxloopcheck) over the
#                       whole module, then the codegen-regression gate
#                       (cmd/hetaudit: new bounds checks or heap
#                       escapes in the hot packages vs the committed
#                       baselines in internal/lint/testdata/).
#   make lint-baseline  re-blesses the hetaudit baselines after an
#                       intentional codegen change; commit the diff.

BENCH_OUT ?= BENCH_2.json
BENCH_COUNT ?= 5
BENCH_TIME ?= 1s
# The single-image decode hot path tracked across PRs.
BENCH_PATTERN ?= BenchmarkDecodeScalar$$|BenchmarkDecodeScalarSub|BenchmarkDecodeScalarSize|BenchmarkParallelPhaseScalar|BenchmarkEntropySequential$$|BenchmarkEntropyParallelRestart$$

# The batch wall-clock trajectory: the mixed-size corpus through both
# schedulers (per-image pool vs pipelined band scheduler).
BENCH_BATCH_OUT ?= BENCH_3.json
BENCH_BATCH_PATTERN ?= BenchmarkBatchMixedSizes

# The scaled decode trajectory: decode-to-scale (1/2, 1/4, DC-only 1/8)
# per scale, plus the scaled mixed-size batch workload.
BENCH_SCALE_OUT ?= BENCH_4.json

# The HTTP service trajectory: cmd/loadgen against an in-process
# cmd/imaged stack — steady-state p50/p99 wall latency, the overload
# scenario's shed rate and degraded completions, and the hot-repeat
# scenario's cached p50/hit-rate against the steady baseline.
BENCH_HTTP_OUT ?= BENCH_6.json
BENCH_HTTP_TIME ?= 3s

# The transcode trajectory: the coefficient-domain DC-only 1/8
# thumbnail against the naive full-decode + box-downsample + encode
# route (the headline ratio), plus the pixel-path transcode per output
# flavor (half-scale, full-size requantize, progressive output).
BENCH_XCODE_OUT ?= BENCH_7.json

.PHONY: all build test race bench bench-batch bench-scale bench-http bench-http-smoke bench-transcode bench-smoke fuzz-smoke conformance conformance-faults conformance-transcode cover fmt vet lint lint-baseline

all: build

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench records the decode perf trajectory: raw `go test -bench` output
# goes to bench.txt (benchstat-compatible), the parsed summary to
# $(BENCH_OUT). Bump BENCH_OUT per PR (BENCH_2.json, BENCH_3.json, ...)
# so the history stays diffable.
bench:
	go test ./internal/jpegcodec/ -run='^$$' -bench='$(BENCH_PATTERN)' \
		-benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) | tee bench.txt
	go run ./cmd/benchjson < bench.txt > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# bench-batch records the batch scheduler's wall-clock trajectory:
# before/after of the per-image pool vs the band scheduler on the
# mixed-size corpus, parsed into $(BENCH_BATCH_OUT).
bench-batch:
	go test . -run='^$$' -bench='$(BENCH_BATCH_PATTERN)' \
		-benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) | tee bench_batch.txt
	go run ./cmd/benchjson < bench_batch.txt > $(BENCH_BATCH_OUT)
	@echo "wrote $(BENCH_BATCH_OUT)"

# bench-scale records the decode-to-scale trajectory: the single-image
# scaled decode per scale (div1 is the full-size baseline the speedup
# table in README.md is computed from) and the scaled mixed-size batch
# bench, parsed into $(BENCH_SCALE_OUT).
bench-scale:
	go test ./internal/jpegcodec/ -run='^$$' -bench='BenchmarkDecodeScaled' \
		-benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) | tee bench_scale.txt
	go test . -run='^$$' -bench='BenchmarkBatchScaledMixedSizes' \
		-benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) | tee -a bench_scale.txt
	go run ./cmd/benchjson < bench_scale.txt > $(BENCH_SCALE_OUT)
	@echo "wrote $(BENCH_SCALE_OUT)"

# bench-http records the decode service's robustness trajectory: the
# loadgen closed-loop scenarios (steady, overload, hot-repeat) against
# an in-process imaged server, summarized into $(BENCH_HTTP_OUT).
bench-http:
	go run ./cmd/loadgen -duration $(BENCH_HTTP_TIME) -out $(BENCH_HTTP_OUT)
	@echo "wrote $(BENCH_HTTP_OUT)"

# bench-http-smoke is the CI variant: a short run that exercises the
# whole imaged + loadgen stack without recording its numbers.
bench-http-smoke:
	go run ./cmd/loadgen -duration 500ms

# bench-transcode records the transcode trajectory into
# $(BENCH_XCODE_OUT): ThumbFastPath vs ThumbNaive is the committed
# fast-path ratio (must stay ≥3×).
bench-transcode:
	go test ./internal/transcode/ -run='^$$' -bench='BenchmarkTranscode' \
		-benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) | tee bench_transcode.txt
	go run ./cmd/benchjson < bench_transcode.txt > $(BENCH_XCODE_OUT)
	@echo "wrote $(BENCH_XCODE_OUT)"

# bench-smoke compiles and runs every benchmark in the repo exactly once
# (CI uses it so benchmarks can never silently rot).
bench-smoke:
	go test ./... -run='^$$' -bench=. -benchtime=1x

# fuzz-smoke runs the native fuzzers briefly (CI budget).
fuzz-smoke:
	go test ./internal/bitstream/ -fuzz=FuzzReaderMatchesReference -fuzztime=10s
	go test ./internal/bitstream/ -fuzz=FuzzWriterReaderRoundTrip -fuzztime=10s
	go test ./internal/huffman/ -fuzz=FuzzDecodeArbitraryBits -fuzztime=10s
	go test ./internal/huffman/ -fuzz=FuzzEncodeDecodeRoundTrip -fuzztime=10s
	go test ./internal/jpegcodec/ -run='^$$' -fuzz=FuzzProgressiveDecode -fuzztime=10s
	go test ./internal/jpegcodec/ -run='^$$' -fuzz=FuzzScaledDecode -fuzztime=10s
	go test ./internal/jpegcodec/ -run='^$$' -fuzz=FuzzSalvageDecode -fuzztime=10s
	go test ./internal/rescache/ -fuzz=FuzzCacheKeyIsolation -fuzztime=10s
	go test ./internal/transcode/ -run='^$$' -fuzz=FuzzTranscode -fuzztime=10s

# conformance runs the differential harness: the generated baseline +
# progressive corpus through all modes, both schedulers and worker
# counts 1-8 — at full size and at every decode scale (byte-identity
# against the scalar scaled reference) — and plane-level comparison
# against the stdlib decoder.
conformance:
	go test ./internal/conformance/ -v -run 'TestConformance'

# conformance-faults runs the fault-injection gate: systematically
# corrupted streams (truncation at every byte, entropy bit flips,
# dropped/duplicated/renumbered restart markers, corrupted marker
# lengths) must never panic, strict mode must keep failing exactly as
# before, and salvage mode must hold its committed recovery floors with
# byte-identical salvaged pixels across every mode and scheduler.
conformance-faults:
	go test ./internal/conformance/ -v -run 'TestFault'

# conformance-transcode runs the round-trip gate on the transcode
# pipeline: encoder-alone and full-transcode distortion floors per
# quality (decoded with Go's image/jpeg on the encoder side), bit-exact
# equality of the DC-only 1/8 fast path with the pixel round trip, and
# byte identity of pipelined transcodes with the one-shot path across
# schedulers × workers 1-8 × execution modes.
conformance-transcode:
	go test ./internal/conformance/ -v -run 'TestConformanceTranscode|TestConformanceEncoderRoundTrip'

# COVER_FLOOR is the combined statement-coverage floor for the decoder
# core packages (jpegcodec + jfif), measured across their own tests plus
# the conformance harness. SVC_COVER_FLOOR is the same floor for the
# service-tier packages (rescache + metrics), measured across their own
# tests plus the imaged suite that drives them over HTTP.
# XCODE_COVER_FLOOR covers the transcode pipeline from its own suite.
# Raise the floors as coverage grows; never lower them to make a PR
# pass.
COVER_FLOOR ?= 85.0
SVC_COVER_FLOOR ?= 85.0
XCODE_COVER_FLOOR ?= 85.0

cover:
	go test -coverpkg=hetjpeg/internal/jpegcodec,hetjpeg/internal/jfif \
		-coverprofile=cover.out \
		./internal/jpegcodec ./internal/jfif ./internal/conformance
	@total=$$(go tool cover -func=cover.out | awk '/^total:/ {gsub("%","",$$3); print $$3}'); \
	echo "jpegcodec+jfif coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% below floor $(COVER_FLOOR)%"; exit 1; }
	go test -coverpkg=hetjpeg/internal/rescache,hetjpeg/internal/metrics \
		-coverprofile=cover_svc.out \
		./internal/rescache ./internal/metrics ./internal/imaged
	@total=$$(go tool cover -func=cover_svc.out | awk '/^total:/ {gsub("%","",$$3); print $$3}'); \
	echo "rescache+metrics coverage: $$total% (floor $(SVC_COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(SVC_COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% below floor $(SVC_COVER_FLOOR)%"; exit 1; }
	go test -coverpkg=hetjpeg/internal/transcode \
		-coverprofile=cover_xcode.out ./internal/transcode
	@total=$$(go tool cover -func=cover_xcode.out | awk '/^total:/ {gsub("%","",$$3); print $$3}'); \
	echo "transcode coverage: $$total% (floor $(XCODE_COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(XCODE_COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% below floor $(XCODE_COVER_FLOOR)%"; exit 1; }

fmt:
	gofmt -l -w .

vet:
	go vet ./...

# lint runs the project-specific analyzers and the codegen-regression
# gate. Both exit non-zero on findings; `make lint` green is a merge
# requirement. Raw hetaudit compiler output lands in hetaudit_*.txt
# (gitignored) for inspection.
lint:
	go run ./cmd/hetlint ./...
	go run ./cmd/hetaudit

# lint-baseline re-blesses the hetaudit codegen baselines from the
# current tree. Run it only after verifying an intentional change (a
# new kernel, a rewritten loop) and commit the baseline diff with it.
lint-baseline:
	go run ./cmd/hetaudit -bless
