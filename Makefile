# Developer entry points. The repo is plain `go build ./...` /
# `go test ./...`; these targets wrap the recurring workflows.

BENCH_OUT ?= BENCH_2.json
BENCH_COUNT ?= 5
BENCH_TIME ?= 1s
# The single-image decode hot path tracked across PRs.
BENCH_PATTERN ?= BenchmarkDecodeScalar$$|BenchmarkDecodeScalarSub|BenchmarkDecodeScalarSize|BenchmarkParallelPhaseScalar|BenchmarkEntropySequential$$|BenchmarkEntropyParallelRestart$$

.PHONY: all build test race bench bench-smoke fuzz-smoke fmt vet

all: build

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench records the decode perf trajectory: raw `go test -bench` output
# goes to bench.txt (benchstat-compatible), the parsed summary to
# $(BENCH_OUT). Bump BENCH_OUT per PR (BENCH_2.json, BENCH_3.json, ...)
# so the history stays diffable.
bench:
	go test ./internal/jpegcodec/ -run='^$$' -bench='$(BENCH_PATTERN)' \
		-benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) | tee bench.txt
	go run ./cmd/benchjson < bench.txt > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# bench-smoke compiles and runs every benchmark in the repo exactly once
# (CI uses it so benchmarks can never silently rot).
bench-smoke:
	go test ./... -run='^$$' -bench=. -benchtime=1x

# fuzz-smoke runs the native fuzzers briefly (CI budget).
fuzz-smoke:
	go test ./internal/bitstream/ -fuzz=FuzzReaderMatchesReference -fuzztime=10s
	go test ./internal/bitstream/ -fuzz=FuzzWriterReaderRoundTrip -fuzztime=10s
	go test ./internal/huffman/ -fuzz=FuzzDecodeArbitraryBits -fuzztime=10s
	go test ./internal/huffman/ -fuzz=FuzzEncodeDecodeRoundTrip -fuzztime=10s

fmt:
	gofmt -l -w .

vet:
	go vet ./...
