package hetjpeg_test

import (
	"bytes"
	"image"
	stdjpeg "image/jpeg"
	"testing"

	"hetjpeg"
)

func testJPEG(t testing.TB, w, h int) []byte {
	t.Helper()
	img := hetjpeg.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.Set(x, y, byte(x), byte(y), byte(x+y))
		}
	}
	data, err := hetjpeg.Encode(img, hetjpeg.EncodeOptions{Quality: 85, Subsampling: hetjpeg.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPublicAPIRoundTrip(t *testing.T) {
	data := testJPEG(t, 200, 150)
	img, err := hetjpeg.DecodeRGB(data)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 200 || img.H != 150 {
		t.Fatalf("decoded %dx%d", img.W, img.H)
	}
	// Stdlib agrees the stream is valid.
	if _, err := stdjpeg.Decode(bytes.NewReader(data)); err != nil {
		t.Fatalf("stdlib rejects our stream: %v", err)
	}
}

func TestPublicDecodeAllModes(t *testing.T) {
	data := testJPEG(t, 256, 192)
	spec := hetjpeg.PlatformByName("GTX 680")
	model := models(t)[spec.Name]
	ref, err := hetjpeg.DecodeRGB(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range hetjpeg.AllModes() {
		res, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: mode, Spec: spec, Model: model})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !bytes.Equal(res.Image.Pix, ref.Pix) {
			t.Errorf("%v: pixels differ from DecodeRGB", mode)
		}
		if res.TotalNs <= 0 {
			t.Errorf("%v: empty schedule", mode)
		}
	}
}

func TestPlatformsComplete(t *testing.T) {
	if len(hetjpeg.Platforms()) != 3 {
		t.Fatal("expected the paper's three machines")
	}
	if hetjpeg.PlatformByName("GT 430") == nil {
		t.Fatal("GT 430 missing")
	}
	if hetjpeg.PlatformByName("RTX 4090") != nil {
		t.Fatal("anachronistic hardware resolved")
	}
}

func TestStdImageConversions(t *testing.T) {
	img := hetjpeg.NewImage(10, 7)
	img.Set(3, 2, 10, 20, 30)
	std := hetjpeg.ToStdImage(img)
	if std.Bounds().Dx() != 10 || std.Bounds().Dy() != 7 {
		t.Fatal("bounds wrong")
	}
	r, g, b, a := std.At(3, 2).RGBA()
	if r>>8 != 10 || g>>8 != 20 || b>>8 != 30 || a>>8 != 255 {
		t.Fatalf("pixel (%d,%d,%d,%d)", r>>8, g>>8, b>>8, a>>8)
	}
	back := hetjpeg.FromStdImage(std)
	if !bytes.Equal(back.Pix, img.Pix) {
		t.Fatal("conversion round trip broken")
	}
	// From a non-RGBA source too.
	gray := image.NewGray(image.Rect(0, 0, 4, 4))
	gray.Pix[5] = 200
	g2 := hetjpeg.FromStdImage(gray)
	if r, _, _ := g2.At(1, 1); r != 200 {
		t.Fatalf("gray conversion got %d", r)
	}
}

func TestModelSaveLoadViaPublicAPI(t *testing.T) {
	spec := hetjpeg.PlatformByName("GTX 560")
	model := models(t)[spec.Name]
	path := t.TempDir() + "/m.json"
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := hetjpeg.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	data := testJPEG(t, 320, 240)
	res, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: hetjpeg.ModePPS, Spec: spec, Model: loaded})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := hetjpeg.Decode(data, hetjpeg.Options{Mode: hetjpeg.ModePPS, Spec: spec, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != res2.Stats {
		t.Fatalf("loaded model schedules differently: %+v vs %+v", res.Stats, res2.Stats)
	}
}
