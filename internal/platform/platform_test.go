package platform

import "testing"

func TestTable1Fields(t *testing.T) {
	specs := All()
	if len(specs) != 3 {
		t.Fatalf("%d machines want 3", len(specs))
	}
	// Table 1 of the paper.
	want := []struct {
		name     string
		cpu      string
		gpuCores int
		memMB    int
		cc       string
	}{
		{"GT 430", "Intel i7-2600k", 96, 1024, "2.1"},
		{"GTX 560", "Intel i7-2600k", 384, 1024, "2.1"},
		{"GTX 680", "Intel i7-3770k", 1536, 2048, "3.0"},
	}
	for i, w := range want {
		s := specs[i]
		if s.Name != w.name || s.CPUModel != w.cpu || s.GPUCores != w.gpuCores ||
			s.GPUMemMB != w.memMB || s.ComputeCap != w.cc {
			t.Errorf("machine %d: %+v does not match Table 1 entry %+v", i, s, w)
		}
		if s.CPUCores != 4 {
			t.Errorf("%s: CPU cores %d want 4", s.Name, s.CPUCores)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("GTX 560") == nil {
		t.Fatal("GTX 560 not found")
	}
	if ByName("Voodoo 2") != nil {
		t.Fatal("unknown machine resolved")
	}
}

func TestCostMonotonicity(t *testing.T) {
	for _, s := range All() {
		if s.HuffmanNs(2000, 10) <= s.HuffmanNs(1000, 10) {
			t.Errorf("%s: Huffman cost not increasing in bits", s.Name)
		}
		if s.TransferNs(1<<20) <= s.TransferNs(1<<10) {
			t.Errorf("%s: transfer cost not increasing in bytes", s.Name)
		}
		if s.TransferNs(0) <= 0 {
			t.Errorf("%s: transfer latency missing", s.Name)
		}
		if s.DispatchNs(1<<20) <= s.DispatchNs(0) {
			t.Errorf("%s: dispatch cost not increasing", s.Name)
		}
		simd := s.CPUParallelNs(true, 1000, 64000, 100, true)
		scalar := s.CPUParallelNs(false, 1000, 64000, 100, true)
		if scalar <= simd {
			t.Errorf("%s: scalar (%f) should cost more than SIMD (%f)", s.Name, scalar, simd)
		}
		noUps := s.CPUParallelNs(true, 1000, 64000, 100, false)
		if noUps >= simd {
			t.Errorf("%s: removing upsampling should reduce cost", s.Name)
		}
	}
}

func TestGPURanking(t *testing.T) {
	// Effective device throughput must rank GT 430 < GTX 560 < GTX 680,
	// matching the hardware tiers.
	gt, g5, g6 := GT430(), GTX560(), GTX680()
	if !(gt.GPU.EffOpsPerNs < g5.GPU.EffOpsPerNs && g5.GPU.EffOpsPerNs < g6.GPU.EffOpsPerNs) {
		t.Fatal("device compute ranking violated")
	}
	if !(gt.GPU.MemBWBytesNs < g5.GPU.MemBWBytesNs && g5.GPU.MemBWBytesNs < g6.GPU.MemBWBytesNs) {
		t.Fatal("device bandwidth ranking violated")
	}
}

func TestStringer(t *testing.T) {
	s := GTX560()
	if got := s.String(); got != "GTX 560 (Intel i7-2600k + NVIDIA GTX 560Ti)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestEmbeddedWhatIf(t *testing.T) {
	e := Embedded()
	// The integrated GPU is weaker than every discrete GPU...
	if e.GPU.EffOpsPerNs >= GT430().GPU.EffOpsPerNs {
		t.Error("embedded GPU should be weaker than the GT 430")
	}
	// ...but its zero-copy handoff beats PCIe decisively.
	if e.TransferNs(1<<20) >= GT430().TransferNs(1<<20) {
		t.Error("shared-memory handoff should beat PCIe DMA")
	}
	// The embedded machine is deliberately outside the paper's Table 1.
	if ByName("Embedded") != nil {
		t.Error("Embedded must not appear in the paper's machine list")
	}
}
