// Package platform describes the three CPU-GPU machines of the paper's
// Table 1 together with the calibrated virtual-time cost constants used by
// the simulated devices. The constants were fitted against the measured
// anchors the paper reports (Section 6.1): SIMD decodes ~2x faster than
// the sequential decoder; on a 2048x2048 4:2:2 image the GTX 560 runs the
// kernels ~10x faster than the SIMD parallel phase (2.6x including
// transfers), the GTX 680 13.7x (4.3x), and the GT 430's GPU mode is ~23%
// slower than SIMD overall.
package platform

import "fmt"

// StageCosts models the CPU cost of the parallel phase per unit of work.
type StageCosts struct {
	IDCTNsPerBlock    float64 // dequantize + inverse DCT, one 8x8 block
	UpsampleNsPerPix  float64 // chroma upsampling per output pixel
	ColorNsPerPix     float64 // color conversion per output pixel
	StoreNsPerPix     float64 // writing interleaved RGB per pixel
	RowOverheadNsPerY float64 // loop/buffer overhead per image row
}

// HuffCosts models sequential entropy decoding on the CPU.
type HuffCosts struct {
	NsPerBit   float64 // cost per entropy-coded bit
	NsPerBlock float64 // per-block bookkeeping (DC predictor, EOB, ...)
}

// GPUCost models the simulated device's execution rates.
type GPUCost struct {
	EffOpsPerNs  float64 // sustained arithmetic throughput (ops per ns)
	MemBWBytesNs float64 // sustained global-memory bandwidth (bytes per ns)
	LaunchNs     float64 // fixed cost per kernel launch
	// GroupSchedNs is the per-work-group scheduling overhead: very small
	// work-groups multiply it (the reason the Section 5.1 sweep rejects
	// tiny groups).
	GroupSchedNs float64
	// MaxLocalInt32 is the occupancy knee: work-groups whose local
	// memory exceeds it reduce the number of concurrently active groups
	// per multiprocessor, modeled as a throughput penalty (the reason
	// Section 4.4 stops short of merging all three kernels — "the number
	// of available registers constrains the number of active
	// work-groups").
	MaxLocalInt32 int
}

// PCIeCost models host-device transfers (pinned buffers).
type PCIeCost struct {
	LatencyNs  float64 // fixed per-transfer cost
	BytesPerNs float64 // sustained bandwidth
}

// DispatchCost models the CPU-side expense of enqueueing OpenCL work
// (the paper's T_disp).
type DispatchCost struct {
	NsPerCall float64
	NsPerKB   float64
}

// Spec is one CPU-GPU machine: the Table 1 hardware description plus the
// calibrated cost model.
type Spec struct {
	Name string

	// Table 1 fields.
	CPUModel   string
	CPUFreqGHz float64
	CPUCores   int
	GPUModel   string
	GPUCoreMHz int
	GPUCores   int
	GPUMemMB   int
	ComputeCap string

	Huff      HuffCosts
	CPUScalar StageCosts
	CPUSIMD   StageCosts
	GPU       GPUCost
	PCIe      PCIeCost
	Dispatch  DispatchCost

	// DefaultChunkRows is the pipelined-execution chunk size in MCU rows,
	// as determined by the Section 4.5 offline profiling for this device.
	DefaultChunkRows int
	// WorkGroupBlocks is the profiled optimal work-group size expressed
	// in 8x8 blocks per work-group (the paper sweeps 4..32 MCUs).
	WorkGroupBlocks int
}

// String implements fmt.Stringer.
func (s *Spec) String() string {
	return fmt.Sprintf("%s (%s + %s)", s.Name, s.CPUModel, s.GPUModel)
}

// Machines. CPU constants were calibrated for the i7-2600k and scaled by
// clock ratio for the i7-3770k (which also has a newer core).
func i7_2600k() (HuffCosts, StageCosts, StageCosts) {
	huff := HuffCosts{NsPerBit: 1.55, NsPerBlock: 20}
	scalar := StageCosts{
		IDCTNsPerBlock:    210,
		UpsampleNsPerPix:  1.1,
		ColorNsPerPix:     2.6,
		StoreNsPerPix:     0.8,
		RowOverheadNsPerY: 90,
	}
	simd := StageCosts{
		IDCTNsPerBlock:    68,
		UpsampleNsPerPix:  0.35,
		ColorNsPerPix:     0.85,
		StoreNsPerPix:     0.30,
		RowOverheadNsPerY: 60,
	}
	return huff, scalar, simd
}

func i7_3770k() (HuffCosts, StageCosts, StageCosts) {
	huff, scalar, simd := i7_2600k()
	const f = 0.93 // ~7% faster per clock+frequency
	huff.NsPerBit *= f
	huff.NsPerBlock *= f
	for _, sc := range []*StageCosts{&scalar, &simd} {
		sc.IDCTNsPerBlock *= f
		sc.UpsampleNsPerPix *= f
		sc.ColorNsPerPix *= f
		sc.StoreNsPerPix *= f
		sc.RowOverheadNsPerY *= f
	}
	return huff, scalar, simd
}

// GT430 is the low-end machine: the GPU alone cannot beat the CPU's SIMD
// path, which is what makes dynamic partitioning worthwhile there.
func GT430() *Spec {
	huff, scalar, simd := i7_2600k()
	return &Spec{
		Name:       "GT 430",
		CPUModel:   "Intel i7-2600k",
		CPUFreqGHz: 3.4,
		CPUCores:   4,
		GPUModel:   "NVIDIA GT 430",
		GPUCoreMHz: 700,
		GPUCores:   96,
		GPUMemMB:   1024,
		ComputeCap: "2.1",
		Huff:       huff,
		CPUScalar:  scalar,
		CPUSIMD:    simd,
		GPU: GPUCost{
			EffOpsPerNs:   8.5,
			MemBWBytesNs:  20,
			LaunchNs:      9000,
			GroupSchedNs:  50,
			MaxLocalInt32: 1024, // 8 blocks of column-pass workspace
		},
		PCIe:             PCIeCost{LatencyNs: 16000, BytesPerNs: 5.2},
		Dispatch:         DispatchCost{NsPerCall: 3500, NsPerKB: 1.2},
		DefaultChunkRows: 16,
		WorkGroupBlocks:  8,
	}
}

// GTX560 is the mid-range machine.
func GTX560() *Spec {
	huff, scalar, simd := i7_2600k()
	return &Spec{
		Name:       "GTX 560",
		CPUModel:   "Intel i7-2600k",
		CPUFreqGHz: 3.4,
		CPUCores:   4,
		GPUModel:   "NVIDIA GTX 560Ti",
		GPUCoreMHz: 822,
		GPUCores:   384,
		GPUMemMB:   1024,
		ComputeCap: "2.1",
		Huff:       huff,
		CPUScalar:  scalar,
		CPUSIMD:    simd,
		GPU: GPUCost{
			EffOpsPerNs:   130,
			MemBWBytesNs:  100,
			LaunchNs:      8000,
			GroupSchedNs:  20,
			MaxLocalInt32: 2048, // 16 blocks (the profiled optimum)
		},
		PCIe:             PCIeCost{LatencyNs: 15000, BytesPerNs: 6.0},
		Dispatch:         DispatchCost{NsPerCall: 3200, NsPerKB: 1.0},
		DefaultChunkRows: 24,
		WorkGroupBlocks:  16,
	}
}

// GTX680 is the high-end machine.
func GTX680() *Spec {
	huff, scalar, simd := i7_3770k()
	return &Spec{
		Name:       "GTX 680",
		CPUModel:   "Intel i7-3770k",
		CPUFreqGHz: 3.5,
		CPUCores:   4,
		GPUModel:   "NVIDIA GTX 680",
		GPUCoreMHz: 1006,
		GPUCores:   1536,
		GPUMemMB:   2048,
		ComputeCap: "3.0",
		Huff:       huff,
		CPUScalar:  scalar,
		CPUSIMD:    simd,
		GPU: GPUCost{
			EffOpsPerNs:   170,
			MemBWBytesNs:  180,
			LaunchNs:      6000,
			GroupSchedNs:  12,
			MaxLocalInt32: 2048,
		},
		PCIe:             PCIeCost{LatencyNs: 13000, BytesPerNs: 10.0},
		Dispatch:         DispatchCost{NsPerCall: 3000, NsPerKB: 1.0},
		DefaultChunkRows: 32,
		WorkGroupBlocks:  16,
	}
}

// All returns the three machines in the paper's order.
func All() []*Spec {
	return []*Spec{GT430(), GTX560(), GTX680()}
}

// ByName returns the machine with the given name, or nil.
func ByName(name string) *Spec {
	for _, s := range All() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// HuffmanNs returns the virtual cost of entropy-decoding `bits` bits
// spanning `blocks` coefficient blocks.
func (s *Spec) HuffmanNs(bits int64, blocks int) float64 {
	return float64(bits)*s.Huff.NsPerBit + float64(blocks)*s.Huff.NsPerBlock
}

// DispatchNs returns the CPU-side cost of enqueueing `bytes` of device
// work (the paper's T_disp).
func (s *Spec) DispatchNs(bytes int) float64 {
	return s.Dispatch.NsPerCall + s.Dispatch.NsPerKB*float64(bytes)/1024
}

// TransferNs returns the virtual cost of moving `bytes` across PCIe in
// one direction.
func (s *Spec) TransferNs(bytes int) float64 {
	return s.PCIe.LatencyNs + float64(bytes)/s.PCIe.BytesPerNs
}

// KernelCostNs is the single source of truth for device kernel timing,
// shared by the executing simulator (gpusim) and the analytic cost plans
// (kernels.CostPlan): launch overhead, per-group scheduling, compute and
// memory components (summed, so merged kernels model their saved global
// traffic), an occupancy penalty for local-memory-heavy groups, and a
// branch-divergence multiplier.
func (s *Spec) KernelCostNs(ops, globalBytes float64, groups, localInt32PerGroup int, divergentFrac float64) float64 {
	g := s.GPU
	eff := g.EffOpsPerNs
	if g.MaxLocalInt32 > 0 && localInt32PerGroup > g.MaxLocalInt32 {
		// Fewer resident groups per multiprocessor: throughput scales
		// down with the local-memory oversubscription.
		eff *= float64(g.MaxLocalInt32) / float64(localInt32PerGroup)
	}
	t := g.LaunchNs + float64(groups)*g.GroupSchedNs
	t += ops * (1 + divergentFrac) / eff
	t += globalBytes / g.MemBWBytesNs
	return t
}

// CPUParallelNs returns the virtual cost of the CPU parallel phase
// (dequant+IDCT, upsample, color, store) over `blocks` coefficient blocks
// producing `pixels` output pixels across `rows` image rows, with or
// without the SIMD fast path, including upsampling work when needed.
func (s *Spec) CPUParallelNs(simd bool, blocks int, pixels int, rows int, upsampled bool) float64 {
	c := s.CPUScalar
	if simd {
		c = s.CPUSIMD
	}
	t := float64(blocks)*c.IDCTNsPerBlock +
		float64(pixels)*(c.ColorNsPerPix+c.StoreNsPerPix) +
		float64(rows)*c.RowOverheadNsPerY
	if upsampled {
		t += float64(pixels) * c.UpsampleNsPerPix
	}
	return t
}
