package platform

// Embedded is a what-if machine beyond the paper's Table 1: the
// tablet/smartphone class its conclusion points to ("with the
// availability of GPU accelerators on desktops and embedded devices such
// as tablets and smartphones..."). An integrated GPU shares the memory
// controller with a weaker CPU, so host-device "transfers" are cheap
// cache-coherent handoffs rather than PCIe DMA — which moves the
// CPU-vs-GPU crossover substantially toward the GPU even though the GPU
// itself is small. It is exercised by the ablation benchmarks, not by
// the paper-reproduction experiments.
func Embedded() *Spec {
	// A ~2012 big.LITTLE-class CPU: slower clocks and narrower SIMD than
	// the desktop i7s.
	huff := HuffCosts{NsPerBit: 3.4, NsPerBlock: 45}
	scalar := StageCosts{
		IDCTNsPerBlock:    520,
		UpsampleNsPerPix:  2.6,
		ColorNsPerPix:     6.0,
		StoreNsPerPix:     1.9,
		RowOverheadNsPerY: 210,
	}
	simd := StageCosts{
		IDCTNsPerBlock:    190,
		UpsampleNsPerPix:  0.9,
		ColorNsPerPix:     2.2,
		StoreNsPerPix:     0.8,
		RowOverheadNsPerY: 140,
	}
	return &Spec{
		Name:       "Embedded",
		CPUModel:   "ARM Cortex-A15 class",
		CPUFreqGHz: 1.7,
		CPUCores:   4,
		GPUModel:   "integrated GPU (shared memory)",
		GPUCoreMHz: 533,
		GPUCores:   32,
		GPUMemMB:   0, // shares system memory
		ComputeCap: "embedded",
		Huff:       huff,
		CPUScalar:  scalar,
		CPUSIMD:    simd,
		GPU: GPUCost{
			EffOpsPerNs:   5.5,
			MemBWBytesNs:  10,
			LaunchNs:      4000,
			GroupSchedNs:  60,
			MaxLocalInt32: 1024,
		},
		// Zero-copy handoff: a cache flush, not a bus transfer.
		PCIe:             PCIeCost{LatencyNs: 2500, BytesPerNs: 24},
		Dispatch:         DispatchCost{NsPerCall: 2200, NsPerKB: 0.6},
		DefaultChunkRows: 16,
		WorkGroupBlocks:  8,
	}
}
