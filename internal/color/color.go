// Package color implements JPEG color-space conversion (Algorithm 2 of the
// paper, in libjpeg's fixed-point arithmetic so all execution paths are
// bit-exact), chroma downsampling for the encoder, and the "fancy"
// triangle-filter upsampling of Algorithm 1 for the decoder.
package color

const (
	scaleBits = 16
	half      = 1 << (scaleBits - 1)
)

func fix(x float64) int32 { return int32(x*(1<<scaleBits) + 0.5) }

var (
	fix1_40200 = fix(1.40200)
	fix1_77200 = fix(1.77200)
	fix0_71414 = fix(0.71414)
	fix0_34414 = fix(0.34414)

	fix0_29900 = fix(0.29900)
	fix0_58700 = fix(0.58700)
	fix0_11400 = fix(0.11400)
	fix0_16874 = fix(0.16874)
	fix0_33126 = fix(0.33126)
	fix0_50000 = fix(0.50000)
	fix0_41869 = fix(0.41869)
	fix0_08131 = fix(0.08131)
)

func clamp(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// YCbCrToRGB converts one pixel using the JPEG (JFIF) full-range matrix:
//
//	R = Y + 1.402  (Cr-128)
//	G = Y - 0.34414(Cb-128) - 0.71414(Cr-128)
//	B = Y + 1.772  (Cb-128)
//
// Fixed-point arithmetic matches across every decoder mode in this
// repository, so outputs are bit-identical regardless of where the
// conversion runs.
func YCbCrToRGB(y, cb, cr int32) (r, g, b byte) {
	cb -= 128
	cr -= 128
	r = clamp(y + (fix1_40200*cr+half)>>scaleBits)
	g = clamp(y - (fix0_34414*cb+fix0_71414*cr+half)>>scaleBits)
	b = clamp(y + (fix1_77200*cb+half)>>scaleBits)
	return
}

// RGBToYCbCr converts one pixel to JFIF full-range YCbCr.
func RGBToYCbCr(r, g, b byte) (y, cb, cr byte) {
	ri, gi, bi := int32(r), int32(g), int32(b)
	y = clamp((fix0_29900*ri + fix0_58700*gi + fix0_11400*bi + half) >> scaleBits)
	cb = clamp(((-fix0_16874*ri - fix0_33126*gi + fix0_50000*bi + half) >> scaleBits) + 128)
	cr = clamp(((fix0_50000*ri - fix0_41869*gi - fix0_08131*bi + half) >> scaleBits) + 128)
	return
}

// UpsampleRowH2V1Fancy implements Algorithm 1 of the paper for an entire
// row: it doubles the horizontal resolution of in (length n) into out
// (length 2n) using the libjpeg triangle filter. End pixels replicate.
func UpsampleRowH2V1Fancy(in []byte, out []byte) {
	n := len(in)
	if n == 0 {
		return
	}
	if len(out) < 2*n {
		panic("color: output row too short")
	}
	if n == 1 {
		out[0], out[1] = in[0], in[0]
		return
	}
	// All operands are sums of bytes (non-negative), so /4 is >>2.
	out[0] = in[0]
	out[1] = byte((int(in[0])*3 + int(in[1]) + 2) >> 2)
	for i := 1; i < n-1; i++ {
		c := int(in[i]) * 3
		out[2*i] = byte((c + int(in[i-1]) + 1) >> 2)
		out[2*i+1] = byte((c + int(in[i+1]) + 2) >> 2)
	}
	out[2*n-2] = byte((int(in[n-1])*3 + int(in[n-2]) + 1) >> 2)
	out[2*n-1] = in[n-1]
}

// UpsampleRowH2V1Simple doubles a row by pixel replication (libjpeg's
// non-fancy mode); used as an ablation baseline.
func UpsampleRowH2V1Simple(in []byte, out []byte) {
	for i, v := range in {
		out[2*i] = v
		out[2*i+1] = v
	}
}

// DownsampleRowsH2V1 averages horizontal pairs of one row (encoder side of
// 4:2:2). in has length 2n, out length n.
func DownsampleRowsH2V1(in []byte, out []byte) {
	n := len(out)
	for i := 0; i < n; i++ {
		// libjpeg adds an alternating bias (1,2) to avoid systematic
		// rounding drift; plain +1 rounding is used here for simplicity
		// and is matched by the decoder tests' tolerance.
		out[i] = byte((int(in[2*i]) + int(in[2*i+1]) + 1) >> 1)
	}
}

// DownsampleH2V2 averages 2x2 pixel quads. in is a w*h plane (w,h even),
// out is (w/2)*(h/2).
func DownsampleH2V2(in []byte, w, h int, out []byte) {
	ow := w / 2
	for y := 0; y < h/2; y++ {
		r0 := in[2*y*w:]
		r1 := in[(2*y+1)*w:]
		o := out[y*ow:]
		for x := 0; x < ow; x++ {
			o[x] = byte((int(r0[2*x]) + int(r0[2*x+1]) + int(r1[2*x]) + int(r1[2*x+1]) + 2) >> 2)
		}
	}
}

// UpsampleH2V2Fancy doubles both dimensions of the in plane (w×h) into out
// (2w×2h) with the libjpeg fancy (triangle) filter.
func UpsampleH2V2Fancy(in []byte, w, h int, out []byte) {
	if w == 0 || h == 0 {
		return
	}
	ow := 2 * w
	// Vertical interpolation weights are 3:1 between the two nearest
	// input rows; horizontal 3:1 between nearest columns, matching
	// libjpeg's h2v2 fancy upsampler.
	for oy := 0; oy < 2*h; oy++ {
		near := oy / 2
		var far int
		if oy%2 == 0 {
			far = near - 1
		} else {
			far = near + 1
		}
		if far < 0 {
			far = 0
		}
		if far >= h {
			far = h - 1
		}
		rn := in[near*w : near*w+w]
		rf := in[far*w : far*w+w]
		o := out[oy*ow : oy*ow+ow]
		// First column.
		v0 := 3*int(rn[0]) + int(rf[0])
		o[0] = byte((4*v0 + 8) / 16)
		if w == 1 {
			o[1] = o[0]
			continue
		}
		o[1] = byte((3*v0 + (3*int(rn[1]) + int(rf[1])) + 7) / 16)
		for x := 1; x < w-1; x++ {
			c := 3*int(rn[x]) + int(rf[x])
			l := 3*int(rn[x-1]) + int(rf[x-1])
			r := 3*int(rn[x+1]) + int(rf[x+1])
			o[2*x] = byte((3*c + l + 8) / 16)
			o[2*x+1] = byte((3*c + r + 7) / 16)
		}
		c := 3*int(rn[w-1]) + int(rf[w-1])
		l := 3*int(rn[w-2]) + int(rf[w-2])
		o[ow-2] = byte((3*c + l + 8) / 16)
		o[ow-1] = byte((4*c + 8) / 16)
	}
}
