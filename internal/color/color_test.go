package color

import (
	stdcolor "image/color"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestYCbCrToRGBMatchesMatrix(t *testing.T) {
	// Spot values from Algorithm 2 computed by hand.
	cases := []struct {
		y, cb, cr int32
		r, g, b   byte
	}{
		{128, 128, 128, 128, 128, 128}, // neutral gray
		{255, 128, 128, 255, 255, 255}, // white
		{0, 128, 128, 0, 0, 0},         // black
		{76, 85, 255, 254, 0, 0},       // near-red
	}
	for _, c := range cases {
		r, g, b := YCbCrToRGB(c.y, c.cb, c.cr)
		if absDiff(r, c.r) > 2 || absDiff(g, c.g) > 2 || absDiff(b, c.b) > 2 {
			t.Errorf("YCbCr(%d,%d,%d) = (%d,%d,%d), want ≈(%d,%d,%d)",
				c.y, c.cb, c.cr, r, g, b, c.r, c.g, c.b)
		}
	}
}

func absDiff(a, b byte) int {
	d := int(a) - int(b)
	if d < 0 {
		return -d
	}
	return d
}

func TestAgainstStdlibYCbCr(t *testing.T) {
	// The stdlib uses the same JFIF matrix; allow ±1 for rounding
	// differences.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		y := byte(rng.Intn(256))
		cb := byte(rng.Intn(256))
		cr := byte(rng.Intn(256))
		r0, g0, b0 := stdcolor.YCbCrToRGB(y, cb, cr)
		r1, g1, b1 := YCbCrToRGB(int32(y), int32(cb), int32(cr))
		if absDiff(r0, r1) > 1 || absDiff(g0, g1) > 1 || absDiff(b0, b1) > 1 {
			t.Fatalf("YCbCr(%d,%d,%d): std (%d,%d,%d) vs ours (%d,%d,%d)",
				y, cb, cr, r0, g0, b0, r1, g1, b1)
		}
	}
}

func TestRGBYCbCrRoundTrip(t *testing.T) {
	f := func(r, g, b byte) bool {
		y, cb, cr := RGBToYCbCr(r, g, b)
		r2, g2, b2 := YCbCrToRGB(int32(y), int32(cb), int32(cr))
		// Chroma rounding permits small drift.
		return absDiff(r, r2) <= 3 && absDiff(g, g2) <= 3 && absDiff(b, b2) <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestUpsampleH2V1FancyMatchesAlgorithm1(t *testing.T) {
	// The paper's Algorithm 1 written literally for one 8-sample row.
	in := []byte{10, 20, 30, 40, 50, 60, 70, 80}
	want := make([]byte, 16)
	want[0] = in[0]
	want[1] = byte((int(in[0])*3 + int(in[1]) + 2) / 4)
	want[2] = byte((int(in[1])*3 + int(in[0]) + 1) / 4)
	want[3] = byte((int(in[1])*3 + int(in[2]) + 2) / 4)
	want[4] = byte((int(in[2])*3 + int(in[1]) + 1) / 4)
	want[5] = byte((int(in[2])*3 + int(in[3]) + 2) / 4)
	want[6] = byte((int(in[3])*3 + int(in[2]) + 1) / 4)
	want[7] = byte((int(in[3])*3 + int(in[4]) + 2) / 4)
	want[8] = byte((int(in[4])*3 + int(in[3]) + 1) / 4)
	want[9] = byte((int(in[4])*3 + int(in[5]) + 2) / 4)
	want[10] = byte((int(in[5])*3 + int(in[4]) + 1) / 4)
	want[11] = byte((int(in[5])*3 + int(in[6]) + 2) / 4)
	want[12] = byte((int(in[6])*3 + int(in[5]) + 1) / 4)
	want[13] = byte((int(in[6])*3 + int(in[7]) + 2) / 4)
	want[14] = byte((int(in[7])*3 + int(in[6]) + 1) / 4)
	want[15] = in[7]

	got := make([]byte, 16)
	UpsampleRowH2V1Fancy(in, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestUpsampleConstantRowStaysConstant(t *testing.T) {
	f := func(v byte, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		in := make([]byte, n)
		for i := range in {
			in[i] = v
		}
		out := make([]byte, 2*n)
		UpsampleRowH2V1Fancy(in, out)
		for _, o := range out {
			if o != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUpsampleBoundsPreserved(t *testing.T) {
	// Interpolated values never exceed the range of the inputs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(64)
		in := make([]byte, n)
		lo, hi := byte(255), byte(0)
		for i := range in {
			in[i] = byte(rng.Intn(256))
			if in[i] < lo {
				lo = in[i]
			}
			if in[i] > hi {
				hi = in[i]
			}
		}
		out := make([]byte, 2*n)
		UpsampleRowH2V1Fancy(in, out)
		for _, o := range out {
			if o < lo || o > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUpsampleSimple(t *testing.T) {
	in := []byte{1, 2, 3}
	out := make([]byte, 6)
	UpsampleRowH2V1Simple(in, out)
	want := []byte{1, 1, 2, 2, 3, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("sample %d: got %d want %d", i, out[i], want[i])
		}
	}
}

func TestDownsampleH2V1(t *testing.T) {
	in := []byte{10, 20, 30, 31}
	out := make([]byte, 2)
	DownsampleRowsH2V1(in, out)
	if out[0] != 15 || out[1] != 31 {
		t.Fatalf("got %v want [15 31]", out)
	}
}

func TestDownsampleH2V2(t *testing.T) {
	in := []byte{
		10, 20, 100, 100,
		30, 40, 100, 104,
	}
	out := make([]byte, 2)
	DownsampleH2V2(in, 4, 2, out)
	if out[0] != 25 {
		t.Fatalf("quad0: got %d want 25", out[0])
	}
	if out[1] != 101 {
		t.Fatalf("quad1: got %d want 101", out[1])
	}
}

func TestUpsampleH2V2FancyConstant(t *testing.T) {
	w, h := 5, 3
	in := make([]byte, w*h)
	for i := range in {
		in[i] = 77
	}
	out := make([]byte, 4*w*h)
	UpsampleH2V2Fancy(in, w, h, out)
	for i, o := range out {
		if o != 77 {
			t.Fatalf("sample %d: %d want 77", i, o)
		}
	}
}

func TestUpsampleH2V2FancyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		w := 2 + rng.Intn(16)
		h := 2 + rng.Intn(16)
		in := make([]byte, w*h)
		lo, hi := byte(255), byte(0)
		for i := range in {
			in[i] = byte(rng.Intn(256))
			if in[i] < lo {
				lo = in[i]
			}
			if in[i] > hi {
				hi = in[i]
			}
		}
		out := make([]byte, 4*w*h)
		UpsampleH2V2Fancy(in, w, h, out)
		for i, o := range out {
			if o < lo || o > hi {
				t.Fatalf("trial %d sample %d: %d outside [%d,%d]", trial, i, o, lo, hi)
			}
		}
	}
}

func BenchmarkYCbCrToRGBRow(b *testing.B) {
	const n = 4096
	y := make([]byte, n)
	cb := make([]byte, n)
	cr := make([]byte, n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		y[i], cb[i], cr[i] = byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
	}
	out := make([]byte, 3*n)
	b.SetBytes(n * 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			r, g, bb := YCbCrToRGB(int32(y[j]), int32(cb[j]), int32(cr[j]))
			out[j*3], out[j*3+1], out[j*3+2] = r, g, bb
		}
	}
}

func TestPointwiseMatchesRowH2V1(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		cw := 1 + rng.Intn(40)
		row := make([]byte, cw)
		for i := range row {
			row[i] = byte(rng.Intn(256))
		}
		want := make([]byte, 2*cw)
		UpsampleRowH2V1Fancy(row, want)
		for x := 0; x < 2*cw; x++ {
			if got := UpsampleH2V1At(row, cw, x); got != want[x] {
				t.Fatalf("trial %d cw=%d x=%d: pointwise %d row %d", trial, cw, x, got, want[x])
			}
		}
	}
}

func TestPointwiseMatchesRowH2V2(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 60; trial++ {
		cw := 1 + rng.Intn(24)
		ch := 1 + rng.Intn(24)
		plane := make([]byte, cw*ch)
		for i := range plane {
			plane[i] = byte(rng.Intn(256))
		}
		want := make([]byte, 4*cw*ch)
		UpsampleH2V2Fancy(plane, cw, ch, want)
		for y := 0; y < 2*ch; y++ {
			for x := 0; x < 2*cw; x++ {
				if got := UpsampleH2V2At(plane, cw, ch, x, y); got != want[y*2*cw+x] {
					t.Fatalf("trial %d cw=%d ch=%d (%d,%d): pointwise %d plane %d",
						trial, cw, ch, x, y, got, want[y*2*cw+x])
				}
			}
		}
	}
}
