package color

// Table-driven row color conversion: the per-pixel arithmetic of
// YCbCrToRGB with the chroma terms precomputed per 8-bit value, as in
// libjpeg's build_ycc_rgb_table. Each table entry equals the
// corresponding subexpression of YCbCrToRGB exactly, so ConvertRow is
// bit-identical to calling YCbCrToRGB per pixel (asserted by tests);
// the clamp becomes an offset table lookup instead of two branches.

var (
	crToR [256]int32 // (fix1_40200*(cr-128) + half) >> scaleBits
	cbToB [256]int32 // (fix1_77200*(cb-128) + half) >> scaleBits
	crToG [256]int32 // fix0_71414*(cr-128) + half
	cbToG [256]int32 // fix0_34414*(cb-128)

	// clampTab[v+clampOff] = clamp(v) for every value the converter can
	// produce: y in [0,255] plus chroma terms bounded by the tables.
	clampTab [768]byte
)

const clampOff = 256

func init() {
	for v := 0; v < 256; v++ {
		c := int32(v) - 128
		crToR[v] = (fix1_40200*c + half) >> scaleBits
		cbToB[v] = (fix1_77200*c + half) >> scaleBits
		crToG[v] = fix0_71414*c + half
		cbToG[v] = fix0_34414 * c
	}
	for i := range clampTab {
		clampTab[i] = clamp(int32(i - clampOff))
	}
}

// ConvertRow converts w pixels of full-resolution Y/Cb/Cr rows into
// interleaved RGB, bit-identical to per-pixel YCbCrToRGB.
func ConvertRow(yr, cbr, crr []byte, dst []byte, w int) {
	yr = yr[:w:w]
	cbr = cbr[:w:w]
	crr = crr[:w:w]
	dst = dst[: 3*w : 3*w]
	for x := 0; x < w; x++ {
		y := int32(yr[x])
		cb := cbr[x]
		cr := crr[x]
		d := dst[x*3 : x*3+3 : x*3+3]
		d[0] = clampTab[y+crToR[cr]+clampOff]
		d[1] = clampTab[y-((cbToG[cb]+crToG[cr])>>scaleBits)+clampOff]
		d[2] = clampTab[y+cbToB[cb]+clampOff]
	}
}
