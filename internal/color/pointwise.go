package color

// Point-wise upsampling accessors used by the simulated GPU kernels: a
// work-item computes individual output samples, so it needs the value of
// the triangle filter at one position. These must remain bit-exact with
// the row-oriented functions (enforced by tests).

// UpsampleH2V1At returns output sample x (0 <= x < 2*cw) of the fancy
// h2v1 upsampling of row (length cw).
func UpsampleH2V1At(row []byte, cw, x int) byte {
	if cw == 1 {
		return row[0]
	}
	i := x / 2
	if x%2 == 0 {
		if i == 0 {
			return row[0]
		}
		return byte((int(row[i])*3 + int(row[i-1]) + 1) / 4)
	}
	if i == cw-1 {
		return row[cw-1]
	}
	return byte((int(row[i])*3 + int(row[i+1]) + 2) / 4)
}

// UpsampleH2V2At returns the output chroma sample at full-resolution
// coordinates (x, y) of the fancy h2v2 upsampling of a cpw-wide, ch-tall
// plane (plane stride = cpw). Matches upsampling of whole rows by the
// decoder's h2v2 path.
func UpsampleH2V2At(plane []byte, cpw, ch, x, y int) byte {
	near := y / 2
	var far int
	if y%2 == 0 {
		far = near - 1
	} else {
		far = near + 1
	}
	if far < 0 {
		far = 0
	}
	if far >= ch {
		far = ch - 1
	}
	blend := func(i int) int {
		return 3*int(plane[near*cpw+i]) + int(plane[far*cpw+i])
	}
	i := x / 2
	if cpw == 1 {
		return byte((4*blend(0) + 8) >> 4)
	}
	if x%2 == 0 {
		if i == 0 {
			return byte((4*blend(0) + 8) >> 4)
		}
		return byte((3*blend(i) + blend(i-1) + 8) >> 4)
	}
	if i == cpw-1 {
		return byte((4*blend(cpw-1) + 8) >> 4)
	}
	return byte((3*blend(i) + blend(i+1) + 7) >> 4)
}
