package kernels

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"hetjpeg/internal/gpusim"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/platform"
)

// preparedScaled decodes a generated fixture at the given scale and
// returns the frame plus the scalar scaled reference pixels.
func preparedScaled(t testing.TB, w, h int, sub jfif.Subsampling, scale jpegcodec.Scale) (*jpegcodec.Frame, *jpegcodec.RGBImage) {
	t.Helper()
	items, err := imagegen.SizeSweep(sub, 0.7, [][2]int{{w, h}}, 19)
	if err != nil {
		t.Fatal(err)
	}
	f, ed, err := jpegcodec.PrepareDecodeScaled(items[0].Data, scale)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	ref := jpegcodec.NewRGBImage(f.OutW, f.OutH)
	jpegcodec.ParallelPhaseScalar(f, 0, f.MCURows, ref)
	return f, ref
}

// TestEngineScaledMatchesScalar asserts the device kernels reproduce the
// scalar scaled reference byte for byte at every scale, subsampling and
// kernel-merging mode, whole-image and chunked.
func TestEngineScaledMatchesScalar(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		for _, scale := range []jpegcodec.Scale{jpegcodec.Scale2, jpegcodec.Scale4, jpegcodec.Scale8} {
			for _, merged := range []bool{true, false} {
				name := fmt.Sprintf("%v-scale%v-merged%v", sub, scale, merged)
				f, ref := preparedScaled(t, 220, 164, sub, scale)
				dev := gpusim.New(platform.GTX560())
				eng := NewEngine(dev, f, merged)
				out := jpegcodec.NewRGBImage(f.OutW, f.OutH)
				eng.DecodeChunk(0, f.MCURows, -1, -1, out)
				if !bytes.Equal(ref.Pix, out.Pix) {
					t.Errorf("%s: whole-image device output differs from scalar scaled reference", name)
				}

				// Chunked with 4:2:0-aware bounds at scaled geometry.
				eng2 := NewEngine(gpusim.New(platform.GTX680()), f, merged)
				out2 := jpegcodec.NewRGBImage(f.OutW, f.OutH)
				prevY := 0
				for m0 := 0; m0 < f.MCURows; m0 += 3 {
					m1 := m0 + 3
					if m1 > f.MCURows {
						m1 = f.MCURows
					}
					var y1 int
					if m1 == f.MCURows {
						y1 = f.OutH
					} else {
						y1 = m1 * f.MCUOutH
						if sub == jfif.Sub420 {
							y1--
						}
					}
					eng2.DecodeChunk(m0, m1, prevY, y1, out2)
					prevY = y1
				}
				if !bytes.Equal(ref.Pix, out2.Pix) {
					t.Errorf("%s: chunked device output differs from scalar scaled reference", name)
				}
				eng.Release()
				eng2.Release()
			}
		}
	}
}

// TestCostPlanMatchesExecutionScaled pins the analytic plan to the
// executed records at every scale (the virtual timelines of scaled
// decodes depend on it).
func TestCostPlanMatchesExecutionScaled(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub420} {
		for _, scale := range []jpegcodec.Scale{jpegcodec.Scale2, jpegcodec.Scale4, jpegcodec.Scale8} {
			for _, merged := range []bool{true, false} {
				f, _ := preparedScaled(t, 200, 120, sub, scale)
				spec := platform.GT430()
				eng := NewEngine(gpusim.New(spec), f, merged)
				out := jpegcodec.NewRGBImage(f.OutW, f.OutH)
				for _, chunk := range [][2]int{{0, f.MCURows}, {1, f.MCURows - 1}} {
					if chunk[0] >= chunk[1] {
						continue
					}
					got := eng.DecodeChunk(chunk[0], chunk[1], -1, -1, out)
					want := CostPlan(spec, f, chunk[0], chunk[1], -1, -1, merged)
					if len(got) != len(want) {
						t.Fatalf("%v scale %v merged=%v: %d records vs %d", sub, scale, merged, len(got), len(want))
					}
					for i := range got {
						if got[i].Kind != want[i].Kind || got[i].Label != want[i].Label {
							t.Errorf("%v scale %v merged=%v rec %d: %v %q vs %v %q",
								sub, scale, merged, i, got[i].Kind, got[i].Label, want[i].Kind, want[i].Label)
						}
						if math.Abs(got[i].Ns-want[i].Ns) > 1e-6*(1+want[i].Ns) {
							t.Errorf("%v scale %v merged=%v rec %d (%s): %.3f vs %.3f ns",
								sub, scale, merged, i, got[i].Label, got[i].Ns, want[i].Ns)
						}
					}
				}
				eng.Release()
			}
		}
	}
}
