package kernels

import (
	"fmt"

	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/platform"
	"hetjpeg/internal/sim"
)

// CostPlan returns the virtual cost records DecodeChunk would produce for
// MCU rows [m0, m1) with color-converted pixel rows [y0, y1) (pass -1 for
// the chunk's natural rows), without executing any pixel work. The
// performance model's offline profiler uses it to sweep thousands of
// training images cheaply; a test asserts it stays identical to the
// executed costs.
func CostPlan(spec *platform.Spec, f *jpegcodec.Frame, m0, m1, y0, y1 int, merged bool) []CostRecord {
	dev := dryDevice{spec}
	var recs []CostRecord
	r0, r1 := f.PixelRows(m0, m1)
	if y0 < 0 {
		y0 = r0
	}
	if y1 < 0 {
		y1 = r1
	}

	recs = append(recs, CostRecord{sim.KindHostToDevice, fmt.Sprintf("h2d[%d,%d)", m0, m1), spec.TransferNs(f.CoeffBytes(m0, m1))})

	switch {
	case f.Sub == jfif.SubGray:
		recs = append(recs, dev.idctCost(f, m0, m1))
		recs = append(recs, dev.grayCost(f, y0, y1))
	case f.Sub == jfif.Sub444 && merged:
		recs = append(recs, dev.merged444Cost(f, m0, m1))
	case f.Sub == jfif.Sub444:
		recs = append(recs, dev.idctCost(f, m0, m1))
		recs = append(recs, dev.color444Cost(f, y0, y1))
	case merged:
		recs = append(recs, dev.idctCost(f, m0, m1))
		recs = append(recs, dev.upsampleColorCost(f, y0, y1))
	default:
		recs = append(recs, dev.idctCost(f, m0, m1))
		recs = append(recs, dev.upsampleCost(f, y0, y1))
		recs = append(recs, dev.colorUpsCost(f, y0, y1))
	}

	ow, _ := f.OutDims()
	n := (y1 - y0) * ow * 3
	if n < 0 {
		n = 0
	}
	recs = append(recs, CostRecord{sim.KindDeviceToHost, fmt.Sprintf("d2h[%d,%d)", y0, y1), spec.TransferNs(n)})
	return recs
}

// dryDevice wraps cost-only versions of the kernel geometry math so that
// CostPlan and the executing Engine share formulas via costOf.
type dryDevice struct{ spec *platform.Spec }

func (d dryDevice) costOf(ops, bytes float64, groups, localInt32 int) float64 {
	return d.spec.KernelCostNs(ops, bytes, groups, localInt32, 0)
}

func (d dryDevice) idctCost(f *jpegcodec.Frame, m0, m1 int) CostRecord {
	nBlocks := 0
	for _, p := range f.Planes {
		nBlocks += (m1 - m0) * p.V * p.BlocksPerRow
	}
	gb := d.spec.WorkGroupBlocks
	groups := (nBlocks + gb - 1) / gb
	if bp := f.BlockPixels(); bp < 8 {
		stride := f.CoeffPerBlock()
		ops := float64(nBlocks)*opsIDCTScaledPerBlock(bp) + float64(groups*gb)*opsAddressPerItem
		bytes := float64(nBlocks) * float64(stride*2+bp*bp)
		return CostRecord{sim.KindIDCT, fmt.Sprintf("idct/%d[%d,%d)x%d", 8/bp, m0, m1, nBlocks), d.costOf(ops, bytes, groups, 0)}
	}
	ops := float64(nBlocks)*opsIDCTPerBlock + float64(groups*gb*8)*opsAddressPerItem
	bytes := float64(nBlocks) * (128 + 64)
	return CostRecord{sim.KindIDCT, fmt.Sprintf("idct[%d,%d)x%d", m0, m1, nBlocks), d.costOf(ops, bytes, groups, gb*64)}
}

func (d dryDevice) merged444Cost(f *jpegcodec.Frame, m0, m1 int) CostRecord {
	p := f.Planes[0]
	nBlocks := (m1 - m0) * p.V * p.BlocksPerRow
	gb := d.spec.WorkGroupBlocks
	groups := (nBlocks + gb - 1) / gb
	if bp := f.BlockPixels(); bp < 8 {
		stride := f.CoeffPerBlock()
		pixels := (m1 - m0) * p.V * bp * p.PlaneW()
		ops := float64(nBlocks)*3*opsIDCTScaledPerBlock(bp) + float64(pixels)*opsColorPerPix + float64(groups*gb)*opsAddressPerItem
		bytes := float64(nBlocks)*3*float64(stride*2) + float64(pixels)*3
		return CostRecord{sim.KindMergedKernel, fmt.Sprintf("merged444/%d[%d,%d)", 8/bp, m0, m1), d.costOf(ops, bytes, groups, 0)}
	}
	pixels := (m1 - m0) * p.V * 8 * p.PlaneW()
	ops := float64(nBlocks)*3*opsIDCTPerBlock + float64(pixels)*opsColorPerPix + float64(groups*gb*8)*opsAddressPerItem
	bytes := float64(nBlocks)*3*128 + float64(pixels)*3
	return CostRecord{sim.KindMergedKernel, fmt.Sprintf("merged444[%d,%d)", m0, m1), d.costOf(ops, bytes, groups, gb*192)}
}

func (d dryDevice) upsampleColorCost(f *jpegcodec.Frame, r0, r1 int) CostRecord {
	rows := r1 - r0
	if rows <= 0 {
		return CostRecord{sim.KindMergedKernel, "upsample_color(empty)", d.spec.GPU.LaunchNs}
	}
	w, _ := f.OutDims()
	segsPerRow := (w + 7) / 8
	items := rows * segsPerRow
	groups := (items + 127) / 128
	upsOps := opsUps422PerPix
	if f.Sub == jfif.Sub420 {
		upsOps = opsUps420PerPix
	}
	pixels := rows * w
	ops := float64(pixels)*(upsOps+opsColorPerPix) + float64(groups*128)*opsAddressPerItem
	bytes := float64(pixels) * 5
	return CostRecord{sim.KindMergedKernel, fmt.Sprintf("upsample_color[%d,%d)", r0, r1), d.costOf(ops, bytes, groups, 0)}
}

func (d dryDevice) color444Cost(f *jpegcodec.Frame, r0, r1 int) CostRecord {
	rows := r1 - r0
	if rows <= 0 {
		return CostRecord{sim.KindColor, "color(empty)", d.spec.GPU.LaunchNs}
	}
	w, _ := f.OutDims()
	items := rows * ((w + 3) / 4)
	groups := (items + 127) / 128
	pixels := rows * w
	ops := float64(pixels)*opsColorPerPix + float64(groups*128)*opsAddressPerItem
	return CostRecord{sim.KindColor, fmt.Sprintf("color444[%d,%d)", r0, r1), d.costOf(ops, float64(pixels)*6, groups, 0)}
}

func (d dryDevice) upsampleCost(f *jpegcodec.Frame, r0, r1 int) CostRecord {
	rows := r1 - r0
	if rows <= 0 {
		return CostRecord{sim.KindUpsample, "upsample(empty)", d.spec.GPU.LaunchNs}
	}
	ypw := f.Planes[0].PlaneW()
	segsPerRow := (ypw + 7) / 8
	items := rows * segsPerRow * 2
	groups := (items + 127) / 128
	upsOps := opsUps422PerPix
	if f.Sub == jfif.Sub420 {
		upsOps = opsUps420PerPix
	}
	outSamples := rows * ypw * 2
	ops := float64(outSamples)*upsOps + float64(groups*128)*opsAddressPerItem
	return CostRecord{sim.KindUpsample, fmt.Sprintf("upsample[%d,%d)", r0, r1), d.costOf(ops, float64(outSamples)*1.5, groups, 0)}
}

func (d dryDevice) colorUpsCost(f *jpegcodec.Frame, r0, r1 int) CostRecord {
	rows := r1 - r0
	if rows <= 0 {
		return CostRecord{sim.KindColor, "color(empty)", d.spec.GPU.LaunchNs}
	}
	w, _ := f.OutDims()
	items := rows * ((w + 3) / 4)
	groups := (items + 127) / 128
	pixels := rows * w
	ops := float64(pixels)*opsColorPerPix + float64(groups*128)*opsAddressPerItem
	return CostRecord{sim.KindColor, fmt.Sprintf("color_ups[%d,%d)", r0, r1), d.costOf(ops, float64(pixels)*6, groups, 0)}
}

func (d dryDevice) grayCost(f *jpegcodec.Frame, r0, r1 int) CostRecord {
	rows := r1 - r0
	if rows <= 0 {
		return CostRecord{sim.KindColor, "gray(empty)", d.spec.GPU.LaunchNs}
	}
	w, _ := f.OutDims()
	items := rows * ((w + 7) / 8)
	groups := (items + 127) / 128
	pixels := rows * w
	ops := float64(pixels)*2 + float64(groups*128)*opsAddressPerItem
	return CostRecord{sim.KindColor, fmt.Sprintf("gray[%d,%d)", r0, r1), d.costOf(ops, float64(pixels)*4, groups, 0)}
}
