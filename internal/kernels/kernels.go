// Package kernels implements the paper's OpenCL kernels (Section 4) on
// the simulated device: the IDCT kernel (8 work-items per block, column
// pass into registers, row pass through local memory), the 4:2:2
// upsampling kernel, the color-conversion kernel, and the merged kernels
// of Section 4.4 (IDCT+color for 4:4:4, upsampling+color for 4:2:2 and
// the 4:2:0 extension). An Engine owns the device-resident buffers for
// one frame and decodes chunks of MCU rows, returning the virtual cost of
// every operation.
package kernels

import (
	"fmt"

	"hetjpeg/internal/color"
	"hetjpeg/internal/dct"
	"hetjpeg/internal/gpusim"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/sim"
)

// Operation cost constants (arithmetic ops per unit of work), used by the
// device cost model.
const (
	opsIDCTPerBlock   = 640.0 // 16 1-D passes + dequantization + stores
	opsColorPerPix    = 12.0
	opsUps422PerPix   = 5.0
	opsUps420PerPix   = 8.0
	opsAddressPerItem = 6.0
)

// opsIDCTScaledPerBlock returns the per-block cost of the scaled IDCT
// kernel for a reconstruction of blockPix x blockPix samples, scaling
// the full-size kernel cost by the arithmetic ratio of the scaled
// transforms (shared with the CPU-side virtual cost model).
func opsIDCTScaledPerBlock(blockPix int) float64 {
	if blockPix >= 8 {
		return opsIDCTPerBlock
	}
	return opsIDCTPerBlock * dct.ScaledOpsPerBlock(blockPix) / dct.ScaledOpsPerBlock(8)
}

// CostRecord reports one device-side operation's virtual time.
type CostRecord struct {
	Kind  sim.Kind
	Label string
	Ns    float64
}

// Engine drives the GPU parallel phase for one frame. Device buffers are
// whole-image sized (the Section 3 re-engineering) so chunked transfers
// land at their final offsets and later chunks may read earlier chunks'
// samples (needed by the 4:2:0 vertical filter).
type Engine struct {
	Dev *gpusim.Device
	F   *jpegcodec.Frame
	// Merged selects the Section 4.4 merged kernels (the paper's
	// configuration); false runs the split kernels for ablation.
	Merged bool

	coef    []*gpusim.CoefBuffer
	samples []*gpusim.ByteBuffer
	upsCb   *gpusim.ByteBuffer // split mode only: full-res upsampled chroma
	upsCr   *gpusim.ByteBuffer
	rgb     *gpusim.ByteBuffer
	quant   [][64]int32
	stride  int // coefficient slots per block (64, or 1 for DC-only)
}

// NewEngine allocates device state for frame f. Buffer geometry follows
// the frame's decode scale: sample planes and the RGB buffer shrink
// with it, and DC-only frames carry one coefficient slot per block.
func NewEngine(dev *gpusim.Device, f *jpegcodec.Frame, merged bool) *Engine {
	e := &Engine{Dev: dev, F: f, Merged: merged, stride: f.CoeffPerBlock()}
	e.coef = make([]*gpusim.CoefBuffer, len(f.Planes))
	e.samples = make([]*gpusim.ByteBuffer, len(f.Planes))
	e.quant = make([][64]int32, len(f.Planes))
	for c, p := range f.Planes {
		e.coef[c] = dev.NewCoefBuffer(p.Blocks() * e.stride)
		e.samples[c] = dev.NewByteBuffer(p.PlaneW() * p.PlaneH())
		q := f.Img.Quant[f.Img.Components[c].QuantSel]
		for i, v := range q {
			e.quant[c][i] = int32(v)
		}
	}
	w, h := f.OutDims()
	e.rgb = dev.NewByteBuffer(w * h * 3)
	if !merged && len(f.Planes) == 3 && f.Sub != jfif.Sub444 {
		yp := f.Planes[0]
		e.upsCb = dev.NewByteBuffer(yp.PlaneW() * yp.PlaneH())
		e.upsCr = dev.NewByteBuffer(yp.PlaneW() * yp.PlaneH())
	}
	return e
}

// Release returns the engine's device buffers to the device allocator's
// slab pools. The engine must not decode afterwards; releasing is
// optional (an unreleased engine is garbage-collected).
func (e *Engine) Release() {
	for _, b := range e.coef {
		b.Free()
	}
	for _, b := range e.samples {
		b.Free()
	}
	e.rgb.Free()
	e.upsCb.Free()
	e.upsCr.Free()
}

// DecodeChunk runs the full GPU parallel phase for MCU rows [m0, m1):
// host-to-device transfer of the chunk's coefficients, the kernel plan
// for the frame's subsampling, and the device-to-host readback of the
// finished RGB rows into out (the whole-image output buffer).
//
// y0 and y1 bound the pixel rows that are color-converted and read back;
// pass -1 for the chunk's natural rows. Schedulers shift these bounds at
// 4:2:0 chunk boundaries, where the vertical triangle filter of an output
// row needs chroma samples from the next chunk's first block row: the
// boundary output row is deferred to the later chunk (or to the CPU
// partition), which by then has all its inputs resident.
func (e *Engine) DecodeChunk(m0, m1, y0, y1 int, out *jpegcodec.RGBImage) []CostRecord {
	f := e.F
	var recs []CostRecord
	r0, r1 := f.PixelRows(m0, m1)
	if y0 < 0 {
		y0 = r0
	}
	if y1 < 0 {
		y1 = r1
	}

	// Host -> device: one logical transfer for the chunk's coefficient
	// data across all components (the Y|Cb|Cr buffer layout of Section 4).
	bytes := 0
	for c, p := range f.Planes {
		src := f.CoeffRows(c, m0, m1)
		off := m0 * p.V * p.BlocksPerRow * e.stride
		e.Dev.CopyInAt(e.coef[c], off, src)
		bytes += len(src) * 2
	}
	recs = append(recs, CostRecord{sim.KindHostToDevice, fmt.Sprintf("h2d[%d,%d)", m0, m1), e.Dev.Spec.TransferNs(bytes)})

	// Kernel plan.
	switch {
	case f.Sub == jfif.SubGray:
		recs = append(recs, e.runIDCT(m0, m1))
		recs = append(recs, e.runGrayColor(y0, y1))
	case f.Sub == jfif.Sub444 && e.Merged:
		recs = append(recs, e.runMerged444(m0, m1))
	case f.Sub == jfif.Sub444:
		recs = append(recs, e.runIDCT(m0, m1))
		recs = append(recs, e.runColor444(y0, y1))
	case e.Merged:
		recs = append(recs, e.runIDCT(m0, m1))
		recs = append(recs, e.runUpsampleColor(y0, y1))
	default:
		recs = append(recs, e.runIDCT(m0, m1))
		recs = append(recs, e.runUpsample(y0, y1))
		recs = append(recs, e.runColorFromUpsampled(y0, y1))
	}

	// Device -> host readback of finished rows (output-scale geometry).
	w, _ := f.OutDims()
	n := (y1 - y0) * w * 3
	if n < 0 {
		n = 0
	}
	ns := e.Dev.CopyOutAt(out.Pix, y0*w*3, e.rgb, n)
	recs = append(recs, CostRecord{sim.KindDeviceToHost, fmt.Sprintf("d2h[%d,%d)", y0, y1), ns})
	return recs
}

// blockRef locates one block inside the per-component device buffers.
type blockRef struct {
	comp int
	bx   int
	by   int
}

// blockIndex maps a flat launch index to a blockRef (Y|Cb|Cr buffer
// order over MCU rows [m0, m1)) arithmetically, so a launch does not
// materialize a per-block slice on every chunk.
type blockIndex struct {
	f   *jpegcodec.Frame
	m0  int
	cum [4]int // cumulative block counts per component
	n   int
}

func newBlockIndex(f *jpegcodec.Frame, m0, m1 int) blockIndex {
	ix := blockIndex{f: f, m0: m0}
	for c, p := range f.Planes {
		ix.cum[c+1] = ix.cum[c] + (m1-m0)*p.V*p.BlocksPerRow
	}
	ix.n = ix.cum[len(f.Planes)]
	return ix
}

func (ix *blockIndex) at(bi int) blockRef {
	c := 0
	for bi >= ix.cum[c+1] {
		c++
	}
	p := ix.f.Planes[c]
	rel := bi - ix.cum[c]
	return blockRef{c, rel % p.BlocksPerRow, ix.m0*p.V + rel/p.BlocksPerRow}
}

// runIDCT launches the Section 4.1 IDCT kernel over every block of every
// component in MCU rows [m0, m1) (single launch, Y|Cb|Cr buffer order).
// Scaled decodes dispatch the reduced-resolution kernel instead.
func (e *Engine) runIDCT(m0, m1 int) CostRecord {
	f := e.F
	if f.BlockPixels() < 8 {
		return e.runIDCTScaled(m0, m1)
	}
	ix := newBlockIndex(f, m0, m1)
	nBlocks := ix.n
	groupBlocks := e.Dev.Spec.WorkGroupBlocks
	groups := (nBlocks + groupBlocks - 1) / groupBlocks

	colPass := func(g *gpusim.Group, item int) {
		bi := g.ID*groupBlocks + item/8
		if bi >= nBlocks {
			return
		}
		r := ix.at(bi)
		p := f.Planes[r.comp]
		c := item % 8
		base := (r.by*p.BlocksPerRow + r.bx) * 64
		cb := e.coef[r.comp].Data[base : base+64 : base+64]
		q := &e.quant[r.comp]
		var col [8]int32
		for k := 0; k < 8; k++ {
			col[k] = int32(cb[c+8*k]) * q[c+8*k]
		}
		local := g.Local[(item/8)*64 : (item/8)*64+64]
		dct.InverseIntColumn(&col, local, c)
	}
	rowPass := func(g *gpusim.Group, item int) {
		bi := g.ID*groupBlocks + item/8
		if bi >= nBlocks {
			return
		}
		r := ix.at(bi)
		p := f.Planes[r.comp]
		row := item % 8
		local := g.Local[(item/8)*64 : (item/8)*64+64]
		pw := p.PlaneW()
		base := (r.by*8+row)*pw + r.bx*8
		// Row pass stores clamped bytes straight into the sample buffer
		// (the Section 4.1 vectorized store), same arithmetic as the CPU
		// fast path so every mode stays byte-identical.
		dct.InverseIntRowBytes(local, row, e.samples[r.comp].Data[base:base+8:base+8])
	}

	k := &gpusim.Kernel{
		Name:          "idct",
		Groups:        groups,
		ItemsPerGroup: groupBlocks * 8,
		LocalInt32:    groupBlocks * 64,
		Phases:        []gpusim.PhaseFunc{colPass, rowPass},
		Ops:           float64(nBlocks)*opsIDCTPerBlock + float64(groups*groupBlocks*8)*opsAddressPerItem,
		GlobalBytes:   float64(nBlocks) * (128 + 64), // coef in (int16), samples out
	}
	ns := e.Dev.Run(k)
	return CostRecord{sim.KindIDCT, fmt.Sprintf("idct[%d,%d)x%d", m0, m1, nBlocks), ns}
}

// runIDCTScaled is the decode-to-scale IDCT kernel: a scaled block is
// too small to split eight ways, so one work-item reconstructs one
// whole block (the thread-per-scaled-block mapping real implementations
// use), writing BlockPix x BlockPix clamped samples through the same
// dct scaled kernels as the CPU path — output stays byte-identical. No
// local memory or phase barrier is needed.
func (e *Engine) runIDCTScaled(m0, m1 int) CostRecord {
	f := e.F
	ix := newBlockIndex(f, m0, m1)
	nBlocks := ix.n
	groupBlocks := e.Dev.Spec.WorkGroupBlocks
	groups := (nBlocks + groupBlocks - 1) / groupBlocks
	bp := f.BlockPixels()
	stride := e.stride

	phase := func(g *gpusim.Group, item int) {
		bi := g.ID*groupBlocks + item
		if bi >= nBlocks {
			return
		}
		r := ix.at(bi)
		p := f.Planes[r.comp]
		base := (r.by*p.BlocksPerRow + r.bx) * stride
		cb := e.coef[r.comp].Data[base : base+stride : base+stride]
		q := &e.quant[r.comp]
		pw := p.PlaneW()
		dst := e.samples[r.comp].Data[r.by*bp*pw+r.bx*bp:]
		if bp == 1 {
			// 1/8 scale reads only the DC term, whether the frame stores
			// one slot per block (baseline) or all 64 (progressive) —
			// skip the coefficient widening entirely.
			dct.InverseIntScaled1x1Bytes(int32(cb[0])*q[0], dst[:1:1])
			return
		}
		var blk [64]int32
		for i, v := range cb {
			blk[i] = int32(v)
		}
		if bp == 4 {
			dct.InverseIntScaled4x4DequantBytes(blk[:], q, dst, pw)
		} else {
			dct.InverseIntScaled2x2DequantBytes(blk[:], q, dst, pw)
		}
	}

	k := &gpusim.Kernel{
		Name:          "idct_scaled",
		Groups:        groups,
		ItemsPerGroup: groupBlocks,
		Phases:        []gpusim.PhaseFunc{phase},
		Ops:           float64(nBlocks)*opsIDCTScaledPerBlock(bp) + float64(groups*groupBlocks)*opsAddressPerItem,
		GlobalBytes:   float64(nBlocks) * float64(stride*2+bp*bp),
	}
	ns := e.Dev.Run(k)
	return CostRecord{sim.KindIDCT, fmt.Sprintf("idct/%d[%d,%d)x%d", 8/bp, m0, m1, nBlocks), ns}
}

// runMerged444 is the Section 4.4 merged IDCT + color-conversion kernel
// for 4:4:4 frames: three column passes (Y, Cb, Cr) into local memory,
// then a row pass that converts and stores interleaved RGB directly.
// Scaled decodes dispatch the reduced-resolution merged kernel instead.
func (e *Engine) runMerged444(m0, m1 int) CostRecord {
	f := e.F
	if f.BlockPixels() < 8 {
		return e.runMerged444Scaled(m0, m1)
	}
	p := f.Planes[0]
	b0, b1 := m0*p.V, m1*p.V
	nBlocks := (b1 - b0) * p.BlocksPerRow
	groupBlocks := e.Dev.Spec.WorkGroupBlocks
	groups := (nBlocks + groupBlocks - 1) / groupBlocks
	w, h := f.Img.Width, f.Img.Height

	locate := func(g *gpusim.Group, item int) (bx, by int, ok bool) {
		bi := g.ID*groupBlocks + item/8
		if bi >= nBlocks {
			return 0, 0, false
		}
		bi += b0 * p.BlocksPerRow
		return bi % p.BlocksPerRow, bi / p.BlocksPerRow, true
	}

	colPassFor := func(comp int) gpusim.PhaseFunc {
		return func(g *gpusim.Group, item int) {
			bx, by, ok := locate(g, item)
			if !ok {
				return
			}
			c := item % 8
			base := (by*p.BlocksPerRow + bx) * 64
			cb := e.coef[comp].Data[base : base+64 : base+64]
			q := &e.quant[comp]
			var col [8]int32
			for k := 0; k < 8; k++ {
				col[k] = int32(cb[c+8*k]) * q[c+8*k]
			}
			local := g.Local[(item/8)*192+comp*64 : (item/8)*192+comp*64+64]
			dct.InverseIntColumn(&col, local, c)
		}
	}
	rowPass := func(g *gpusim.Group, item int) {
		bx, by, ok := locate(g, item)
		if !ok {
			return
		}
		row := item % 8
		base := (item / 8) * 192
		var yv, cbv, crv [8]int32
		dct.InverseIntRow(g.Local[base:base+64], row, &yv)
		dct.InverseIntRow(g.Local[base+64:base+128], row, &cbv)
		dct.InverseIntRow(g.Local[base+128:base+192], row, &crv)
		py := by*8 + row
		if py >= h {
			return
		}
		for x := 0; x < 8; x++ {
			px := bx*8 + x
			if px >= w {
				continue
			}
			r, gg, b := color.YCbCrToRGB(yv[x], cbv[x], crv[x])
			i := (py*w + px) * 3
			e.rgb.Data[i], e.rgb.Data[i+1], e.rgb.Data[i+2] = r, gg, b
		}
	}

	pixels := (b1 - b0) * 8 * p.PlaneW()
	k := &gpusim.Kernel{
		Name:          "merged_idct_color_444",
		Groups:        groups,
		ItemsPerGroup: groupBlocks * 8,
		LocalInt32:    groupBlocks * 192,
		Phases:        []gpusim.PhaseFunc{colPassFor(0), colPassFor(1), colPassFor(2), rowPass},
		Ops:           float64(nBlocks)*3*opsIDCTPerBlock + float64(pixels)*opsColorPerPix + float64(groups*groupBlocks*8)*opsAddressPerItem,
		GlobalBytes:   float64(nBlocks)*3*128 + float64(pixels)*3, // coef in x3, RGB out; no intermediate traffic
	}
	ns := e.Dev.Run(k)
	return CostRecord{sim.KindMergedKernel, fmt.Sprintf("merged444[%d,%d)", m0, m1), ns}
}

// runMerged444Scaled is the merged IDCT + color kernel at reduced
// resolution: one work-item reconstructs the three co-sited scaled
// blocks (4:4:4 planes are congruent) into private byte buffers through
// the same dct scaled kernels as the CPU path, then converts and stores
// the BlockPix x BlockPix RGB pixels. Roundtripping through clamped
// bytes keeps the output byte-identical to the scalar pipeline.
func (e *Engine) runMerged444Scaled(m0, m1 int) CostRecord {
	f := e.F
	p := f.Planes[0]
	bp := f.BlockPixels()
	stride := e.stride
	b0, b1 := m0*p.V, m1*p.V
	nBlocks := (b1 - b0) * p.BlocksPerRow
	groupBlocks := e.Dev.Spec.WorkGroupBlocks
	groups := (nBlocks + groupBlocks - 1) / groupBlocks
	w, h := f.OutDims()

	phase := func(g *gpusim.Group, item int) {
		bi := g.ID*groupBlocks + item
		if bi >= nBlocks {
			return
		}
		bi += b0 * p.BlocksPerRow
		bx, by := bi%p.BlocksPerRow, bi/p.BlocksPerRow
		var sam [3][16]byte // bp <= 4: at most 16 samples per block
		for comp := 0; comp < 3; comp++ {
			base := (by*p.BlocksPerRow + bx) * stride
			cb := e.coef[comp].Data[base : base+stride : base+stride]
			q := &e.quant[comp]
			dst := sam[comp][:]
			if bp == 1 {
				// DC term only, at either coefficient stride.
				dct.InverseIntScaled1x1Bytes(int32(cb[0])*q[0], dst)
				continue
			}
			var blk [64]int32
			for i, v := range cb {
				blk[i] = int32(v)
			}
			if bp == 4 {
				dct.InverseIntScaled4x4DequantBytes(blk[:], q, dst, bp)
			} else {
				dct.InverseIntScaled2x2DequantBytes(blk[:], q, dst, bp)
			}
		}
		for y := 0; y < bp; y++ {
			py := by*bp + y
			if py >= h {
				break
			}
			for x := 0; x < bp; x++ {
				px := bx*bp + x
				if px >= w {
					continue
				}
				r, gg, b := color.YCbCrToRGB(int32(sam[0][y*bp+x]), int32(sam[1][y*bp+x]), int32(sam[2][y*bp+x]))
				i := (py*w + px) * 3
				e.rgb.Data[i], e.rgb.Data[i+1], e.rgb.Data[i+2] = r, gg, b
			}
		}
	}

	pixels := (b1 - b0) * bp * p.PlaneW()
	k := &gpusim.Kernel{
		Name:          "merged_idct_color_444_scaled",
		Groups:        groups,
		ItemsPerGroup: groupBlocks,
		Phases:        []gpusim.PhaseFunc{phase},
		Ops:           float64(nBlocks)*3*opsIDCTScaledPerBlock(bp) + float64(pixels)*opsColorPerPix + float64(groups*groupBlocks)*opsAddressPerItem,
		GlobalBytes:   float64(nBlocks)*3*float64(stride*2) + float64(pixels)*3,
	}
	ns := e.Dev.Run(k)
	return CostRecord{sim.KindMergedKernel, fmt.Sprintf("merged444/%d[%d,%d)", 8/bp, m0, m1), ns}
}

// runUpsampleColor is the Section 4.4 merged upsampling + color kernel
// for 4:2:2 (and the 4:2:0 extension): each work-item upsamples the
// chroma for one 8-pixel output segment in registers, loads the matching
// luma row, converts and stores RGB. Work-group shape keeps all 16 items
// of a block on the same branch (no divergence, Section 4.2).
func (e *Engine) runUpsampleColor(r0, r1 int) CostRecord {
	f := e.F
	w, h := f.OutDims()
	yp := f.Planes[0]
	cp := f.Planes[1]
	ypw, cpw := yp.PlaneW(), cp.PlaneW()
	cph := cp.PlaneH()
	ySam := e.samples[0].Data
	cbSam := e.samples[1].Data
	crSam := e.samples[2].Data

	rows := r1 - r0
	if rows <= 0 {
		return CostRecord{sim.KindMergedKernel, "upsample_color(empty)", e.Dev.Spec.GPU.LaunchNs}
	}
	// One item produces one 8-pixel output segment.
	segsPerRow := (w + 7) / 8
	items := rows * segsPerRow
	groupItems := 128 // the paper's merged work-group: 128 items
	groups := (items + groupItems - 1) / groupItems

	is420 := f.Sub == jfif.Sub420

	phase := func(g *gpusim.Group, item int) {
		gi := g.ID*groupItems + item
		if gi >= items {
			return
		}
		py := r0 + gi/segsPerRow
		x0 := (gi % segsPerRow) * 8
		// Upsample 8 chroma samples into "registers".
		var cbv, crv [8]int32
		if is420 {
			for x := 0; x < 8 && x0+x < w; x++ {
				cbv[x] = int32(color.UpsampleH2V2At(cbSam, cpw, cph, x0+x, py))
				crv[x] = int32(color.UpsampleH2V2At(crSam, cpw, cph, x0+x, py))
			}
		} else {
			cRow := cbSam[py*cpw : py*cpw+cpw]
			rRow := crSam[py*cpw : py*cpw+cpw]
			for x := 0; x < 8 && x0+x < w; x++ {
				cbv[x] = int32(color.UpsampleH2V1At(cRow, cpw, x0+x))
				crv[x] = int32(color.UpsampleH2V1At(rRow, cpw, x0+x))
			}
		}
		// Load the luma row and convert.
		yRow := ySam[py*ypw:]
		for x := 0; x < 8; x++ {
			px := x0 + x
			if px >= w || py >= h {
				continue
			}
			r, gg, b := color.YCbCrToRGB(int32(yRow[px]), cbv[x], crv[x])
			i := (py*w + px) * 3
			e.rgb.Data[i], e.rgb.Data[i+1], e.rgb.Data[i+2] = r, gg, b
		}
	}

	upsOps := opsUps422PerPix
	if is420 {
		upsOps = opsUps420PerPix
	}
	pixels := rows * w
	k := &gpusim.Kernel{
		Name:          "merged_upsample_color",
		Groups:        groups,
		ItemsPerGroup: groupItems,
		Phases:        []gpusim.PhaseFunc{phase},
		Ops:           float64(pixels)*(upsOps+opsColorPerPix) + float64(groups*groupItems)*opsAddressPerItem,
		GlobalBytes:   float64(pixels) * (1 + 1 + 3), // luma in, chroma in (2 half-res planes), RGB out
	}
	ns := e.Dev.Run(k)
	return CostRecord{sim.KindMergedKernel, fmt.Sprintf("upsample_color[%d,%d)", r0, r1), ns}
}

// runColor444 is the standalone color-conversion kernel (Section 4.3),
// used in split (non-merged) mode for 4:4:4 frames.
func (e *Engine) runColor444(r0, r1 int) CostRecord {
	f := e.F
	w, h := f.OutDims()
	pw := f.Planes[0].PlaneW()
	rows := r1 - r0
	if rows <= 0 {
		return CostRecord{sim.KindColor, "color(empty)", e.Dev.Spec.GPU.LaunchNs}
	}
	segsPerRow := (w + 3) / 4 // one item converts 4 pixels (vectorized, Fig. 4)
	items := rows * segsPerRow
	groupItems := 128
	groups := (items + groupItems - 1) / groupItems
	ySam, cbSam, crSam := e.samples[0].Data, e.samples[1].Data, e.samples[2].Data

	phase := func(g *gpusim.Group, item int) {
		gi := g.ID*groupItems + item
		if gi >= items {
			return
		}
		py := r0 + gi/segsPerRow
		x0 := (gi % segsPerRow) * 4
		if py >= h {
			return
		}
		for x := x0; x < x0+4 && x < w; x++ {
			r, gg, b := color.YCbCrToRGB(int32(ySam[py*pw+x]), int32(cbSam[py*pw+x]), int32(crSam[py*pw+x]))
			i := (py*w + x) * 3
			e.rgb.Data[i], e.rgb.Data[i+1], e.rgb.Data[i+2] = r, gg, b
		}
	}
	pixels := rows * w
	k := &gpusim.Kernel{
		Name:          "color_444",
		Groups:        groups,
		ItemsPerGroup: groupItems,
		Phases:        []gpusim.PhaseFunc{phase},
		Ops:           float64(pixels)*opsColorPerPix + float64(groups*groupItems)*opsAddressPerItem,
		GlobalBytes:   float64(pixels) * (3 + 3), // Y,Cb,Cr in; RGB out
	}
	ns := e.Dev.Run(k)
	return CostRecord{sim.KindColor, fmt.Sprintf("color444[%d,%d)", r0, r1), ns}
}

// runUpsample is the standalone Section 4.2 upsampling kernel (split
// mode): expands the chroma planes to full resolution into dedicated
// device buffers. The odd/even work-item split follows Algorithm 1; the
// end-pixel if-statement is charged as branch divergence when the
// work-group shape does not isolate it (the paper avoids it by shape).
func (e *Engine) runUpsample(r0, r1 int) CostRecord {
	f := e.F
	yp := f.Planes[0]
	cp := f.Planes[1]
	ypw, cpw := yp.PlaneW(), cp.PlaneW()
	cph := cp.PlaneH()
	rows := r1 - r0
	if rows <= 0 {
		return CostRecord{sim.KindUpsample, "upsample(empty)", e.Dev.Spec.GPU.LaunchNs}
	}
	// Two items per (component, output row, chroma block): each produces
	// an 8-pixel half of the 16-pixel output row (Section 4.2).
	segsPerRow := (ypw + 7) / 8
	items := rows * segsPerRow * 2 // two chroma components
	groupItems := 128
	groups := (items + groupItems - 1) / groupItems
	is420 := f.Sub == jfif.Sub420
	cbSam, crSam := e.samples[1].Data, e.samples[2].Data

	phase := func(g *gpusim.Group, item int) {
		gi := g.ID*groupItems + item
		if gi >= items {
			return
		}
		comp := gi % 2
		gi /= 2
		py := r0 + gi/segsPerRow
		x0 := (gi % segsPerRow) * 8
		src, dst := cbSam, e.upsCb.Data
		if comp == 1 {
			src, dst = crSam, e.upsCr.Data
		}
		if is420 {
			for x := x0; x < x0+8 && x < ypw; x++ {
				dst[py*ypw+x] = color.UpsampleH2V2At(src, cpw, cph, x, py)
			}
		} else {
			row := src[py*cpw : py*cpw+cpw]
			for x := x0; x < x0+8 && x < ypw; x++ {
				dst[py*ypw+x] = color.UpsampleH2V1At(row, cpw, x)
			}
		}
	}
	upsOps := opsUps422PerPix
	if is420 {
		upsOps = opsUps420PerPix
	}
	outSamples := rows * ypw * 2
	k := &gpusim.Kernel{
		Name:          "upsample",
		Groups:        groups,
		ItemsPerGroup: groupItems,
		Phases:        []gpusim.PhaseFunc{phase},
		Ops:           float64(outSamples)*upsOps + float64(groups*groupItems)*opsAddressPerItem,
		GlobalBytes:   float64(outSamples) * (0.5 + 1), // half-res in, full-res out
	}
	ns := e.Dev.Run(k)
	return CostRecord{sim.KindUpsample, fmt.Sprintf("upsample[%d,%d)", r0, r1), ns}
}

// runColorFromUpsampled converts using the full-resolution chroma planes
// produced by runUpsample (split mode tail).
func (e *Engine) runColorFromUpsampled(r0, r1 int) CostRecord {
	f := e.F
	w, h := f.OutDims()
	pw := f.Planes[0].PlaneW()
	rows := r1 - r0
	if rows <= 0 {
		return CostRecord{sim.KindColor, "color(empty)", e.Dev.Spec.GPU.LaunchNs}
	}
	segsPerRow := (w + 3) / 4
	items := rows * segsPerRow
	groupItems := 128
	groups := (items + groupItems - 1) / groupItems
	ySam := e.samples[0].Data

	phase := func(g *gpusim.Group, item int) {
		gi := g.ID*groupItems + item
		if gi >= items {
			return
		}
		py := r0 + gi/segsPerRow
		x0 := (gi % segsPerRow) * 4
		if py >= h {
			return
		}
		for x := x0; x < x0+4 && x < w; x++ {
			r, gg, b := color.YCbCrToRGB(int32(ySam[py*pw+x]), int32(e.upsCb.Data[py*pw+x]), int32(e.upsCr.Data[py*pw+x]))
			i := (py*w + x) * 3
			e.rgb.Data[i], e.rgb.Data[i+1], e.rgb.Data[i+2] = r, gg, b
		}
	}
	pixels := rows * w
	k := &gpusim.Kernel{
		Name:          "color_upsampled",
		Groups:        groups,
		ItemsPerGroup: groupItems,
		Phases:        []gpusim.PhaseFunc{phase},
		Ops:           float64(pixels)*opsColorPerPix + float64(groups*groupItems)*opsAddressPerItem,
		GlobalBytes:   float64(pixels) * (3 + 3),
	}
	ns := e.Dev.Run(k)
	return CostRecord{sim.KindColor, fmt.Sprintf("color_ups[%d,%d)", r0, r1), ns}
}

// runGrayColor replicates the luma plane into RGB for grayscale frames.
func (e *Engine) runGrayColor(r0, r1 int) CostRecord {
	f := e.F
	w, h := f.OutDims()
	pw := f.Planes[0].PlaneW()
	rows := r1 - r0
	if rows <= 0 {
		return CostRecord{sim.KindColor, "gray(empty)", e.Dev.Spec.GPU.LaunchNs}
	}
	segsPerRow := (w + 7) / 8
	items := rows * segsPerRow
	groupItems := 128
	groups := (items + groupItems - 1) / groupItems
	ySam := e.samples[0].Data

	phase := func(g *gpusim.Group, item int) {
		gi := g.ID*groupItems + item
		if gi >= items {
			return
		}
		py := r0 + gi/segsPerRow
		x0 := (gi % segsPerRow) * 8
		if py >= h {
			return
		}
		for x := x0; x < x0+8 && x < w; x++ {
			v := ySam[py*pw+x]
			i := (py*w + x) * 3
			e.rgb.Data[i], e.rgb.Data[i+1], e.rgb.Data[i+2] = v, v, v
		}
	}
	pixels := rows * w
	k := &gpusim.Kernel{
		Name:          "gray_rgb",
		Groups:        groups,
		ItemsPerGroup: groupItems,
		Phases:        []gpusim.PhaseFunc{phase},
		Ops:           float64(pixels)*2 + float64(groups*groupItems)*opsAddressPerItem,
		GlobalBytes:   float64(pixels) * 4,
	}
	ns := e.Dev.Run(k)
	return CostRecord{sim.KindColor, fmt.Sprintf("gray[%d,%d)", r0, r1), ns}
}

// TotalNs sums a cost-record list.
func TotalNs(recs []CostRecord) float64 {
	var s float64
	for _, r := range recs {
		s += r.Ns
	}
	return s
}

// KernelNs sums only kernel (non-transfer) records.
func KernelNs(recs []CostRecord) float64 {
	var s float64
	for _, r := range recs {
		if r.Kind != sim.KindHostToDevice && r.Kind != sim.KindDeviceToHost {
			s += r.Ns
		}
	}
	return s
}
