package kernels

import (
	"bytes"
	"math"
	"testing"

	"hetjpeg/internal/gpusim"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/platform"
)

func prepared(t testing.TB, w, h int, sub jfif.Subsampling) (*jpegcodec.Frame, *jpegcodec.RGBImage) {
	t.Helper()
	items, err := imagegen.SizeSweep(sub, 0.7, [][2]int{{w, h}}, 17)
	if err != nil {
		t.Fatal(err)
	}
	f, ed, err := jpegcodec.PrepareDecode(items[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	ref := jpegcodec.NewRGBImage(f.Img.Width, f.Img.Height)
	jpegcodec.ParallelPhaseScalar(f, 0, f.MCURows, ref)
	return f, ref
}

func TestEngineMatchesScalarWholeImage(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		for _, merged := range []bool{true, false} {
			f, ref := prepared(t, 220, 164, sub)
			dev := gpusim.New(platform.GTX560())
			eng := NewEngine(dev, f, merged)
			out := jpegcodec.NewRGBImage(f.Img.Width, f.Img.Height)
			eng.DecodeChunk(0, f.MCURows, -1, -1, out)
			if !bytes.Equal(ref.Pix, out.Pix) {
				t.Errorf("%v merged=%v: device output differs from scalar", sub, merged)
			}
		}
	}
}

func TestEngineChunkedMatchesWhole(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		f, ref := prepared(t, 160, 240, sub)
		dev := gpusim.New(platform.GTX680())
		eng := NewEngine(dev, f, true)
		out := jpegcodec.NewRGBImage(f.Img.Width, f.Img.Height)
		// Decode in chunks of 3 MCU rows with 4:2:0-aware row bounds.
		prevY := 0
		for m0 := 0; m0 < f.MCURows; m0 += 3 {
			m1 := m0 + 3
			if m1 > f.MCURows {
				m1 = f.MCURows
			}
			var y1 int
			if m1 == f.MCURows {
				y1 = f.Img.Height
			} else {
				y1 = m1 * f.MCUHeight
				if sub == jfif.Sub420 {
					y1--
				}
			}
			eng.DecodeChunk(m0, m1, prevY, y1, out)
			prevY = y1
		}
		if !bytes.Equal(ref.Pix, out.Pix) {
			diff := 0
			for i := range ref.Pix {
				if ref.Pix[i] != out.Pix[i] {
					diff++
				}
			}
			t.Errorf("%v: chunked device output differs from scalar (%d bytes)", sub, diff)
		}
	}
}

func TestCostPlanMatchesExecution(t *testing.T) {
	// The analytic plan must agree with the executed records exactly —
	// the performance model and the VirtualOnly decode path depend on it.
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		for _, merged := range []bool{true, false} {
			f, _ := prepared(t, 200, 120, sub)
			spec := platform.GT430()
			dev := gpusim.New(spec)
			eng := NewEngine(dev, f, merged)
			out := jpegcodec.NewRGBImage(f.Img.Width, f.Img.Height)
			for _, chunk := range [][2]int{{0, f.MCURows}, {1, f.MCURows - 1}} {
				if chunk[0] >= chunk[1] {
					continue
				}
				got := eng.DecodeChunk(chunk[0], chunk[1], -1, -1, out)
				want := CostPlan(spec, f, chunk[0], chunk[1], -1, -1, merged)
				if len(got) != len(want) {
					t.Fatalf("%v merged=%v: %d records vs %d", sub, merged, len(got), len(want))
				}
				for i := range got {
					if got[i].Kind != want[i].Kind || got[i].Label != want[i].Label {
						t.Errorf("%v merged=%v rec %d: %v %q vs %v %q",
							sub, merged, i, got[i].Kind, got[i].Label, want[i].Kind, want[i].Label)
					}
					if math.Abs(got[i].Ns-want[i].Ns) > 1e-6*(1+want[i].Ns) {
						t.Errorf("%v merged=%v rec %d (%s): %.3f vs %.3f ns",
							sub, merged, i, got[i].Label, got[i].Ns, want[i].Ns)
					}
				}
			}
		}
	}
}

func TestMergedKernelsCheaperThanSplit(t *testing.T) {
	f, _ := prepared(t, 512, 512, jfif.Sub422)
	spec := platform.GTX560()
	merged := TotalNs(CostPlan(spec, f, 0, f.MCURows, -1, -1, true))
	split := TotalNs(CostPlan(spec, f, 0, f.MCURows, -1, -1, false))
	if split <= merged {
		t.Errorf("split kernels (%.0f ns) should cost more than merged (%.0f ns)", split, merged)
	}
}

func TestKernelAndTotalHelpers(t *testing.T) {
	f, _ := prepared(t, 64, 64, jfif.Sub444)
	spec := platform.GTX560()
	recs := CostPlan(spec, f, 0, f.MCURows, -1, -1, true)
	total := TotalNs(recs)
	kern := KernelNs(recs)
	if !(kern > 0 && kern < total) {
		t.Fatalf("kernel %.0f of total %.0f", kern, total)
	}
}

func BenchmarkEngineDecode422_1MP(b *testing.B) {
	f, _ := prepared(b, 1024, 1024, jfif.Sub422)
	dev := gpusim.New(platform.GTX560())
	eng := NewEngine(dev, f, true)
	out := jpegcodec.NewRGBImage(f.Img.Width, f.Img.Height)
	b.SetBytes(int64(len(out.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.DecodeChunk(0, f.MCURows, -1, -1, out)
	}
}

func TestWorkGroupSizesBitExact(t *testing.T) {
	// Section 5.1 sweeps work-group sizes 4..32 MCUs during profiling;
	// every size must yield identical pixels.
	f, ref := prepared(t, 180, 140, jfif.Sub422)
	for _, gb := range []int{4, 8, 16, 32, 64} {
		spec := *platform.GTX560()
		spec.WorkGroupBlocks = gb
		dev := gpusim.New(&spec)
		eng := NewEngine(dev, f, true)
		out := jpegcodec.NewRGBImage(f.Img.Width, f.Img.Height)
		eng.DecodeChunk(0, f.MCURows, -1, -1, out)
		if !bytes.Equal(ref.Pix, out.Pix) {
			t.Errorf("work-group size %d blocks: pixels differ", gb)
		}
	}
}

func TestDecodeChunkRowWindow(t *testing.T) {
	// Explicit y-bounds restrict conversion and readback to a window.
	f, ref := prepared(t, 96, 128, jfif.Sub444)
	dev := gpusim.New(platform.GTX560())
	eng := NewEngine(dev, f, false) // split kernels honor y bounds
	out := jpegcodec.NewRGBImage(f.Img.Width, f.Img.Height)
	y0, y1 := 24, 72
	eng.DecodeChunk(0, f.MCURows, y0, y1, out)
	w := f.Img.Width
	for y := y0; y < y1; y++ {
		for x := 0; x < w; x++ {
			i := (y*w + x) * 3
			if out.Pix[i] != ref.Pix[i] || out.Pix[i+1] != ref.Pix[i+1] || out.Pix[i+2] != ref.Pix[i+2] {
				t.Fatalf("window pixel (%d,%d) wrong", x, y)
			}
		}
	}
	// Rows outside the window must be untouched (still zero).
	for _, y := range []int{0, y0 - 1, y1, f.Img.Height - 1} {
		i := y * w * 3
		if out.Pix[i] != 0 || out.Pix[i+1] != 0 || out.Pix[i+2] != 0 {
			t.Fatalf("row %d outside window was written", y)
		}
	}
}
