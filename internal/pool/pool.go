// Package pool provides bucketed slab pools for the decoder's large
// per-decode buffers (whole-image coefficients, sample planes, RGB
// pixels, and the simulated device's resident buffers). A batch service
// decodes millions of images per process; recycling these slabs keeps
// steady-state allocation flat instead of churning hundreds of MB/s
// through the GC.
//
// Slabs are bucketed by power-of-two capacity class so a small chroma
// slab never evicts a reusable luma slab: Get(n) rounds n up to its
// class, so any slab found in that class is big enough.
package pool

import (
	"math/bits"
	"sync"
)

// Slab is a size-class-bucketed pool of []T slabs. The zero value is
// ready to use and safe for concurrent use.
type Slab[T byte | int16 | int32] struct {
	classes [bits.UintSize]sync.Pool // class c holds slabs with cap >= 1<<c
}

// class returns the smallest c with 1<<c >= n.
func class(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a zeroed slice of length n, reusing a pooled slab when one
// of sufficient capacity is available.
func (p *Slab[T]) Get(n int) []T {
	if n == 0 {
		return nil
	}
	c := class(n)
	if v := p.classes[c].Get(); v != nil {
		s := (*v.(*[]T))[:n]
		clear(s)
		return s
	}
	return make([]T, n, 1<<c)
}

// Put files the slab for reuse. The caller must not touch s afterwards.
func (p *Slab[T]) Put(s []T) {
	if cap(s) == 0 {
		return
	}
	// File by the capacity's floor class, so every slab in class c has
	// cap >= 1<<c whatever its exact capacity.
	c := bits.Len(uint(cap(s))) - 1
	s = s[:0]
	p.classes[c].Put(&s)
}
