package pool

import "testing"

func TestClassRounding(t *testing.T) {
	cases := []struct{ n, c int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, tc := range cases {
		if got := class(tc.n); got != tc.c {
			t.Errorf("class(%d) = %d, want %d", tc.n, got, tc.c)
		}
	}
}

func TestGetPutReuse(t *testing.T) {
	var p Slab[int32]
	s := p.Get(1000)
	if len(s) != 1000 || cap(s) != 1024 {
		t.Fatalf("len %d cap %d", len(s), cap(s))
	}
	for i := range s {
		s[i] = int32(i)
	}
	p.Put(s)
	// A same-class request must reuse the slab and see it zeroed.
	r := p.Get(600)
	if len(r) != 600 {
		t.Fatalf("len %d", len(r))
	}
	if &r[0] != &s[0] {
		t.Error("slab not reused within its class")
	}
	for i, v := range r {
		if v != 0 {
			t.Fatalf("recycled slab dirty at %d", i)
		}
	}
}

func TestNoUndersizedReuse(t *testing.T) {
	var p Slab[byte]
	small := p.Get(100)
	p.Put(small)
	big := p.Get(5000)
	if len(big) != 5000 {
		t.Fatalf("len %d", len(big))
	}
	// The small slab stays in its own class for the next small request.
	again := p.Get(90)
	if &again[0] != &small[0] {
		t.Error("small slab lost")
	}
}

func TestZeroLength(t *testing.T) {
	var p Slab[int16]
	if s := p.Get(0); s != nil {
		t.Error("Get(0) should be nil")
	}
	p.Put(nil) // must not panic
}
