package imaged

// Endpoint contract of POST /transcode: a 200 is the re-encoded JPEG
// stream itself (decodable, correctly scaled, fast-path and cache
// outcomes in headers), every knob violation is a typed 400 before any
// work is admitted, and the error paths reuse /decode's status map.
// The pure Retry-After arithmetic behind its 429s is pinned in
// admission_test.go; the pipeline/byte-identity guarantees live in
// internal/transcode and internal/conformance.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"hetjpeg"
)

func postTranscode(t *testing.T, h http.Handler, query string, body []byte) (*httptest.ResponseRecorder, decodeReply) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/transcode?"+query, bytes.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var reply decodeReply
	if rr.Header().Get("Content-Type") == "application/json" {
		if err := json.Unmarshal(rr.Body.Bytes(), &reply); err != nil {
			t.Fatalf("bad JSON reply: %v\n%s", err, rr.Body.String())
		}
	}
	return rr, reply
}

func getStatz(t *testing.T, h http.Handler) statzReply {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/statz", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("/statz status %d", rr.Code)
	}
	var st statzReply
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad statz JSON: %v", err)
	}
	return st
}

// TestTranscodeOK covers the happy path end to end: a baseline input
// transcoded to a 1/8 thumbnail rides the coefficient-domain fast path,
// the body is a decodable JPEG at the scaled geometry, and a repeat
// request serves the decode from cache (same bytes, no second decode)
// while still running its own encode.
func TestTranscodeOK(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()
	data := encodeJPEG(t, 64, 48, false)

	rr, reply := postTranscode(t, h, "scale=1/8&quality=80", data)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 (error: %s)", rr.Code, reply.Error)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "image/jpeg" {
		t.Fatalf("Content-Type %q, want image/jpeg", ct)
	}
	if got := rr.Header().Get("Content-Length"); got != strconv.Itoa(rr.Body.Len()) {
		t.Errorf("Content-Length %q does not match body length %d", got, rr.Body.Len())
	}
	if rr.Header().Get("X-Hetjpeg-Cache") != "miss" {
		t.Errorf("first transcode cache outcome %q, want miss", rr.Header().Get("X-Hetjpeg-Cache"))
	}
	if rr.Header().Get("X-Hetjpeg-Fastpath") != "true" {
		t.Error("baseline 1/8 transcode did not report the DC-only fast path")
	}
	first := append([]byte(nil), rr.Body.Bytes()...)
	out, err := hetjpeg.DecodeRGB(first)
	if err != nil {
		t.Fatalf("transcoded output does not decode: %v", err)
	}
	if out.W != 8 || out.H != 6 {
		t.Errorf("output %dx%d, want 8x6", out.W, out.H)
	}

	// Repeat: decode stage resident, encode re-runs deterministically.
	rr, _ = postTranscode(t, h, "scale=1/8&quality=80", data)
	if rr.Code != http.StatusOK || rr.Header().Get("X-Hetjpeg-Cache") != "hit" {
		t.Fatalf("repeat transcode: status %d cache %q, want 200 hit", rr.Code, rr.Header().Get("X-Hetjpeg-Cache"))
	}
	if !bytes.Equal(first, rr.Body.Bytes()) {
		t.Error("cached-decode transcode produced different bytes than the first")
	}
	if st := s.cache.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("cache stats %+v, want exactly one decode and one hit", st)
	}

	st := getStatz(t, h)
	if st.Transcodes != 2 || st.FastpathTranscodes != 2 {
		t.Errorf("statz transcodes=%d fastpath=%d, want 2 and 2", st.Transcodes, st.FastpathTranscodes)
	}
	if st.TranscodeBytes != 0 {
		t.Errorf("statz transcodeBytes=%d after requests finished, want 0", st.TranscodeBytes)
	}
}

// TestTranscodeFullAndProgressive: full-scale output skips the fast
// path, and a progressive script knob produces a decodable SOF2 stream.
func TestTranscodeFullAndProgressive(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()
	data := encodeJPEG(t, 64, 48, false)

	rr, reply := postTranscode(t, h, "scale=1&quality=90", data)
	if rr.Code != http.StatusOK {
		t.Fatalf("full-scale transcode: status %d (error: %s)", rr.Code, reply.Error)
	}
	if rr.Header().Get("X-Hetjpeg-Fastpath") != "" {
		t.Error("full-scale transcode claimed the DC-only fast path")
	}
	out, err := hetjpeg.DecodeRGB(rr.Body.Bytes())
	if err != nil || out.W != 64 || out.H != 48 {
		t.Fatalf("full-scale output decode: %v (%dx%d, want 64x48)", err, out.W, out.H)
	}

	rr, reply = postTranscode(t, h, "scale=1/2&progressive=true&script=spectral", data)
	if rr.Code != http.StatusOK {
		t.Fatalf("progressive transcode: status %d (error: %s)", rr.Code, reply.Error)
	}
	out, err = hetjpeg.DecodeRGB(rr.Body.Bytes())
	if err != nil || out.W != 32 || out.H != 24 {
		t.Fatalf("progressive output decode: %v (%dx%d, want 32x24)", err, out.W, out.H)
	}
	if !bytes.Contains(rr.Body.Bytes(), []byte{0xFF, 0xC2}) {
		t.Error("progressive=true output has no SOF2 marker")
	}
}

// TestTranscodeBypassSkipsCache: ?cache=bypass transcodes must neither
// probe nor populate the decoded-output cache.
func TestTranscodeBypassSkipsCache(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()
	data := encodeJPEG(t, 32, 32, false)

	for i := 0; i < 2; i++ {
		rr, reply := postTranscode(t, h, "scale=1/2&cache=bypass", data)
		if rr.Code != http.StatusOK || rr.Header().Get("X-Hetjpeg-Cache") != "bypass" {
			t.Fatalf("bypass transcode %d: status %d cache %q (error: %s)",
				i, rr.Code, rr.Header().Get("X-Hetjpeg-Cache"), reply.Error)
		}
	}
	if st := s.cache.Stats(); st.Bypasses != 2 || st.Entries != 0 {
		t.Errorf("after bypass transcodes: %+v, want 2 bypasses and nothing resident", st)
	}
}

// TestTranscodeBadKnobs is the 400 validation table: every malformed
// knob is refused with a JSON error before the body is decoded, and the
// refusal names the offending parameter.
func TestTranscodeBadKnobs(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()
	data := encodeJPEG(t, 32, 32, false)

	cases := []struct {
		name   string
		query  string
		wantIn string
	}{
		{"unknown scale", "scale=1/3", "scale"},
		{"non-integer quality", "scale=1&quality=high", "quality"},
		{"quality above range", "scale=1&quality=101", "quality"},
		{"quality below range", "scale=1&quality=-1", "quality"},
		{"non-boolean progressive", "scale=1&progressive=maybe", "progressive"},
		{"unknown script", "scale=1&progressive=true&script=nope", "script"},
		{"script without progressive", "scale=1&script=spectral", "progressive"},
		{"bad timeout", "scale=1&timeout=fast", "timeout"},
		{"bad cache mode", "scale=1&cache=sometimes", "cache"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr, reply := postTranscode(t, h, tc.query, data)
			if rr.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (reply %+v)", rr.Code, reply)
			}
			if !strings.Contains(reply.Error, tc.wantIn) {
				t.Errorf("error %q does not mention %q", reply.Error, tc.wantIn)
			}
		})
	}
	if n := getStatz(t, h).Transcodes; n != 0 {
		t.Errorf("knob refusals counted %d transcodes, want 0", n)
	}
}

// TestTranscodeErrorPaths reuses /decode's status map: 405 bad method,
// 413 oversized, 415 not a JPEG, 422 corrupt, 503 draining.
func TestTranscodeErrorPaths(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBody = 1 << 10
	s := newTestServer(t, cfg)
	h := s.Handler()
	data := encodeJPEG(t, 64, 48, false)

	req := httptest.NewRequest(http.MethodGet, "/transcode", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /transcode: status %d, want 405", rr.Code)
	}

	oversized := append([]byte{0xFF, 0xD8}, make([]byte, 2<<10)...)
	if rr, _ := postTranscode(t, h, "scale=1", oversized); rr.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", rr.Code)
	}
	if rr, _ := postTranscode(t, h, "scale=1", []byte("not a jpeg at all")); rr.Code != http.StatusUnsupportedMediaType {
		t.Errorf("non-JPEG body: status %d, want 415", rr.Code)
	}
	if rr, _ := postTranscode(t, h, "scale=1", data[:len(data)/2]); rr.Code != http.StatusUnprocessableEntity {
		t.Errorf("truncated JPEG: status %d, want 422", rr.Code)
	}

	s.StartDrain()
	rr2, reply := postTranscode(t, h, "scale=1", data)
	if rr2.Code != http.StatusServiceUnavailable || !reply.Draining {
		t.Errorf("draining transcode: status %d draining=%v, want 503 true", rr2.Code, reply.Draining)
	}
	if rr2.Header().Get("Retry-After") == "" {
		t.Error("draining transcode missing Retry-After")
	}
}

// TestTranscodeShedsWithMixedRetryAfter fills the admission gate and
// verifies /transcode sheds with a 429 whose Retry-After is present —
// the encode-aware pricing itself is pinned in admission_test.go.
func TestTranscodeShedsWithMixedRetryAfter(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxQueue = 1
	s := newTestServer(t, cfg)
	h := s.Handler()
	data := encodeJPEG(t, 32, 32, false)

	if !s.gate.admit(1) {
		t.Fatal("setup admit refused")
	}
	defer s.gate.release(1)

	rr, reply := postTranscode(t, h, "scale=1/2", data)
	if rr.Code != http.StatusTooManyRequests || !reply.Shed {
		t.Fatalf("transcode through a full gate: status %d shed=%v, want 429 true", rr.Code, reply.Shed)
	}
	if reply.RetryAfterSec < 1 || rr.Header().Get("Retry-After") == "" {
		t.Errorf("shed transcode Retry-After %d / header %q, want >=1s both",
			reply.RetryAfterSec, rr.Header().Get("Retry-After"))
	}
	if n := getStatz(t, h).Transcodes; n != 0 {
		t.Errorf("shed request counted %d transcodes, want 0", n)
	}
}

// TestDegradedDecodePopulatesOwnKey covers the degrade × cache
// interaction on /decode: a degraded (forced 1/8) decode is cached
// under the scale that actually ran, so it seeds later explicit 1/8
// requests and never poisons the full-scale key.
func TestDegradedDecodePopulatesOwnKey(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxQueue = 4
	s := newTestServer(t, cfg)
	h := s.Handler()
	data := encodeJPEG(t, 128, 64, false)

	for i := 0; i < 2; i++ {
		if !s.gate.admit(1) {
			t.Fatal("setup admit refused")
		}
		defer s.gate.release(1)
	}
	if !s.gate.pastWatermark() {
		t.Fatal("gate not past watermark after setup")
	}

	rr, reply := postDecode(t, h, "degrade=allow", data)
	if rr.Code != http.StatusOK || !reply.Degraded || reply.Cache != "miss" {
		t.Fatalf("degraded decode: status %d degraded=%v cache=%q, want 200 true miss", rr.Code, reply.Degraded, reply.Cache)
	}

	// The degraded result lives under the 1/8 key: an explicit 1/8
	// request hits without a second decode...
	rr, reply = postDecode(t, h, "scale=1/8", data)
	if rr.Code != http.StatusOK || reply.Cache != "hit" || reply.Width != 16 {
		t.Errorf("explicit 1/8 after degrade: status %d cache=%q width=%d, want 200 hit 16", rr.Code, reply.Cache, reply.Width)
	}
	// ...and the full-scale key is untouched: a full request decodes
	// fresh at full fidelity (no longer degraded — it doesn't opt in).
	rr, reply = postDecode(t, h, "", data)
	if rr.Code != http.StatusOK || reply.Cache != "miss" || reply.Width != 128 || reply.Degraded {
		t.Errorf("full decode after degrade: status %d cache=%q width=%d degraded=%v, want 200 miss 128 false",
			rr.Code, reply.Cache, reply.Width, reply.Degraded)
	}
	if st := s.cache.Stats(); st.Misses != 2 {
		t.Errorf("cache ran %d decodes, want 2 (degraded 1/8 + full)", st.Misses)
	}
}

// TestBatchMalformedPartHeaders sends multipart bodies whose framing is
// intact enough to reach the part reader but whose part headers or
// termination are broken: the whole batch must be refused with 400, not
// partially processed or hung.
func TestBatchMalformedPartHeaders(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()

	post := func(body, boundary string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body))
		req.Header.Set("Content-Type", "multipart/form-data; boundary="+boundary)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	// A part header line with no colon is not a MIME header.
	rr := post("--B\r\nThis Is Not A Header Line\r\n\r\ndata\r\n--B--\r\n", "B")
	if rr.Code != http.StatusBadRequest {
		t.Errorf("colonless part header: status %d, want 400", rr.Code)
	}

	// Body framed with a different boundary than the Content-Type
	// declares: no parts are ever found.
	rr = post("--OTHER\r\nContent-Disposition: form-data; name=\"a\"\r\n\r\ndata\r\n--OTHER--\r\n", "B")
	if rr.Code != http.StatusBadRequest {
		t.Errorf("mismatched boundary: status %d, want 400", rr.Code)
	}

	// Valid opening part but the stream ends mid-part with no closing
	// boundary.
	rr = post("--B\r\nContent-Disposition: form-data; name=\"a\"\r\n\r\n\xFF\xD8truncat", "B")
	if rr.Code != http.StatusBadRequest {
		t.Errorf("unterminated part: status %d, want 400", rr.Code)
	}

	// Content-Type header present but empty boundary parameter.
	req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader("--\r\n"))
	req.Header.Set("Content-Type", "multipart/form-data; boundary=")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("empty boundary: status %d, want 400", rr.Code)
	}
}
