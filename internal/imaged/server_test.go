package imaged

// Robustness contract of the imaged service, request by request: shed
// with honest Retry-After at the admission budget, degrade opted-in
// requests past the watermark, abort timed-out decodes mid-stream,
// survive handler panics, and report readiness truthfully while
// draining or overloaded. The drain test (real listener, zero dropped
// responses) lives in drain_test.go.

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"hetjpeg"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	spec := hetjpeg.PlatformByName("GTX 560")
	if spec == nil {
		t.Fatal("platform GTX 560 missing")
	}
	return Config{
		Spec:    spec,
		Mode:    hetjpeg.ModePipelinedGPU,
		Workers: 2,
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Log == nil {
		cfg.Log = discardLogger()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// encodeJPEG builds a decodable fixture; detail raises the coded bit
// count (and so decode time) without changing dimensions.
func encodeJPEG(t *testing.T, w, h int, detail bool) []byte {
	t.Helper()
	img := hetjpeg.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if detail {
				v := byte((x*2654435761 + y*40503) >> 3)
				img.Set(x, y, v, v^0x5A, byte(x*y))
			} else {
				img.Set(x, y, byte(x), byte(y), byte(x+y))
			}
		}
	}
	data, err := hetjpeg.Encode(img, hetjpeg.EncodeOptions{Quality: 90, Subsampling: hetjpeg.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postDecode(t *testing.T, h http.Handler, query string, body []byte) (*httptest.ResponseRecorder, decodeReply) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/decode?"+query, bytes.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var reply decodeReply
	if rr.Header().Get("Content-Type") == "application/json" {
		if err := json.Unmarshal(rr.Body.Bytes(), &reply); err != nil {
			t.Fatalf("bad JSON reply: %v\n%s", err, rr.Body.String())
		}
	}
	return rr, reply
}

func TestDecodeOK(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()
	rr, reply := postDecode(t, h, "scale=1/2", encodeJPEG(t, 64, 48, false))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (error: %s)", rr.Code, reply.Error)
	}
	if reply.Width != 32 || reply.Height != 24 {
		t.Errorf("scaled decode %dx%d, want 32x24", reply.Width, reply.Height)
	}
	if reply.Scale != "1/2" || reply.Degraded {
		t.Errorf("reply scale %q degraded %v, want 1/2, false", reply.Scale, reply.Degraded)
	}
}

func TestRejectsNonJPEGMagic(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()
	for name, body := range map[string][]byte{
		"png":   []byte("\x89PNG\r\n\x1a\nxxxxxxxx"),
		"text":  []byte("hello, not an image"),
		"empty": nil,
		"one":   {0xFF},
	} {
		rr, reply := postDecode(t, h, "", body)
		if rr.Code != http.StatusUnsupportedMediaType {
			t.Errorf("%s body: status = %d, want 415", name, rr.Code)
		}
		if reply.Error == "" {
			t.Errorf("%s body: 415 without a JSON error", name)
		}
	}
}

func TestOversizedBodyIs413JSON(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBody = 1 << 10
	s := newTestServer(t, cfg)
	rr, reply := postDecode(t, s.Handler(), "", encodeJPEG(t, 256, 256, true))
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rr.Code)
	}
	if reply.Error == "" {
		t.Error("413 without a JSON error body")
	}
}

func TestBadParamsAre400(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()
	data := encodeJPEG(t, 32, 32, false)
	for _, q := range []string{"scale=1/3", "timeout=fast", "timeout=-2s"} {
		if rr, _ := postDecode(t, h, q, data); rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", q, rr.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/decode", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /decode: status = %d, want 405", rr.Code)
	}
}

func TestUnsupportedIs415CorruptIs422(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()
	data := encodeJPEG(t, 64, 48, false)
	i := bytes.Index(data, []byte{0xFF, 0xC0})
	if i < 0 {
		t.Fatal("no SOF0 marker")
	}
	twelveBit := append([]byte(nil), data...)
	twelveBit[i+4] = 12
	rr, reply := postDecode(t, h, "", twelveBit)
	if rr.Code != http.StatusUnsupportedMediaType || !reply.Unsupported {
		t.Errorf("12-bit JPEG: status %d unsupported %v, want 415 true", rr.Code, reply.Unsupported)
	}
	rr, reply = postDecode(t, h, "", data[:len(data)/2])
	if rr.Code != http.StatusUnprocessableEntity {
		t.Errorf("truncated JPEG: status = %d, want 422 (reply %+v)", rr.Code, reply)
	}
}

// TestOverloadSheds floods a 2-slot admission gate: every request gets a
// complete response, the overflow gets 429 with a Retry-After of at
// least a second, and nothing deadlocks.
func TestOverloadSheds(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxQueue = 2
	s := newTestServer(t, cfg)
	h := s.Handler()
	data := encodeJPEG(t, 512, 512, true)

	const clients = 16
	codes := make([]int, clients)
	retryAfter := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Identical bodies would collapse into cache hits served
			// ahead of admission; shedding is what's under test here.
			rr, _ := postDecode(t, h, "cache=bypass", data)
			codes[i] = rr.Code
			retryAfter[i] = rr.Header().Get("Retry-After")
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			sec, err := strconv.Atoi(retryAfter[i])
			if err != nil || sec < 1 || sec > 60 {
				t.Errorf("shed request %d: Retry-After %q, want integer in [1,60]", i, retryAfter[i])
			}
		default:
			t.Errorf("request %d: status %d, want 200 or 429", i, c)
		}
	}
	if ok == 0 {
		t.Error("no request succeeded under overload")
	}
	if shed == 0 {
		t.Error("16 clients through a 2-slot gate and nothing was shed")
	}
	if snap := s.gate.snapshot(); snap.Pending != 0 || snap.PendingBytes != 0 {
		t.Errorf("gate not drained after load: %+v", snap)
	}
}

// TestDegradedUnderPressure pins the gate past its watermark and checks
// an opted-in request completes at 1/8 scale with the degraded header,
// while a non-opted request still decodes at full fidelity.
func TestDegradedUnderPressure(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxQueue = 4
	s := newTestServer(t, cfg)
	h := s.Handler()
	data := encodeJPEG(t, 128, 64, false)
	// Every request bypasses the cache: a resident full-fidelity result
	// would be served ahead of admission and short-circuit the very
	// degradation under test.
	rr, reply := postDecode(t, h, "degrade=allow&cache=bypass", data)
	// Idle server: a lone opted-in request must NOT count its own
	// admission as queue pressure and degrade itself.
	if rr.Code != http.StatusOK || reply.Degraded || reply.Width != 128 {
		t.Fatalf("idle degrade=allow: status %d degraded=%v width=%d, want full-fidelity 200", rr.Code, reply.Degraded, reply.Width)
	}
	// Occupy half the gate directly: pastWatermark (default 0.5) flips.
	for i := 0; i < 2; i++ {
		if !s.gate.admit(1) {
			t.Fatal("setup admit refused")
		}
		defer s.gate.release(1)
	}
	if !s.gate.pastWatermark() {
		t.Fatal("gate not past watermark after setup")
	}

	rr, reply = postDecode(t, h, "degrade=allow&cache=bypass", data)
	if rr.Code != http.StatusOK {
		t.Fatalf("degraded request: status %d (error: %s)", rr.Code, reply.Error)
	}
	if rr.Header().Get("X-Hetjpeg-Degraded") != "true" || !reply.Degraded {
		t.Error("degraded request missing X-Hetjpeg-Degraded marker")
	}
	if reply.Scale != "1/8" || reply.Width != 16 || reply.Height != 8 {
		t.Errorf("degraded decode scale %q %dx%d, want 1/8 16x8", reply.Scale, reply.Width, reply.Height)
	}

	rr, reply = postDecode(t, h, "cache=bypass", data)
	if rr.Code != http.StatusOK || reply.Degraded || reply.Width != 128 {
		t.Errorf("non-opted request got %d degraded=%v width=%d, want full-fidelity 200", rr.Code, reply.Degraded, reply.Width)
	}
}

// TestDeadlineAborts decodes a large detailed image under a deadline it
// cannot meet: the response must be a typed 503 timeout, and the decode
// machinery must have been cancelled (not left running to completion).
func TestDeadlineAborts(t *testing.T) {
	cfg := testConfig(t)
	cfg.RequestTimeout = time.Millisecond
	s := newTestServer(t, cfg)
	h := s.Handler()
	data := encodeJPEG(t, 2048, 2048, true)

	rr, reply := postDecode(t, h, "", data)
	if rr.Code != http.StatusServiceUnavailable || !reply.Timeout {
		t.Fatalf("status %d timeout %v, want 503 true (reply %+v)", rr.Code, reply.Timeout, reply)
	}
	if s.timeouts.Load() == 0 {
		t.Error("timeout counter not incremented")
	}
	// Per-request override: a generous ?timeout= on the same image
	// succeeds, proving the 503 above came from the deadline.
	rr, reply = postDecode(t, h, "timeout=30s", data)
	if rr.Code != http.StatusOK {
		t.Fatalf("override timeout: status %d (error: %s)", rr.Code, reply.Error)
	}
}

// TestTimeoutOverrideCapped proves a client cannot outbid the server's
// MaxTimeout: a huge ?timeout= is clamped and the decode still dies.
func TestTimeoutOverrideCapped(t *testing.T) {
	cfg := testConfig(t)
	cfg.RequestTimeout = time.Millisecond
	cfg.MaxTimeout = 2 * time.Millisecond
	s := newTestServer(t, cfg)
	rr, reply := postDecode(t, s.Handler(), "timeout=10m", encodeJPEG(t, 2048, 2048, true))
	if rr.Code != http.StatusServiceUnavailable || !reply.Timeout {
		t.Fatalf("capped timeout: status %d timeout %v, want 503 true", rr.Code, reply.Timeout)
	}
	if reply.TimeoutMs > 3 {
		t.Errorf("effective deadline %.1fms, want capped at 2ms", reply.TimeoutMs)
	}
}

func TestSalvagedDecode(t *testing.T) {
	cfg := testConfig(t)
	cfg.Salvage = true
	s := newTestServer(t, cfg)
	// Encode with restart markers so a mid-stream corruption is
	// recoverable, then flip bits in the middle of the entropy data.
	img := hetjpeg.NewImage(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			img.Set(x, y, byte(x*7+y*13), byte(x^y), byte(x+y))
		}
	}
	data, err := hetjpeg.Encode(img, hetjpeg.EncodeOptions{Quality: 85, Subsampling: hetjpeg.Sub422, RestartInterval: 4})
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte{0xFF, 0xDA})
	if i < 0 {
		t.Fatal("no SOS marker")
	}
	corrupt := append([]byte(nil), data...)
	mid := i + (len(data)-i)/2
	for j := 0; j < 8; j++ {
		corrupt[mid+j] = 0x00
	}
	rr, reply := postDecode(t, s.Handler(), "", corrupt)
	if rr.Code == http.StatusOK && rr.Header().Get("X-Hetjpeg-Salvaged") == "true" {
		if reply.TotalMCUs == 0 || reply.RecoveredMCUs >= reply.TotalMCUs {
			t.Errorf("salvage accounting %d/%d MCUs implausible", reply.RecoveredMCUs, reply.TotalMCUs)
		}
	} else if rr.Code != http.StatusUnprocessableEntity && rr.Code != http.StatusOK {
		// Corruption at an arbitrary offset may or may not be
		// salvageable; both 200-salvaged and 422 are contract-clean.
		t.Errorf("corrupt restart-interval stream: status %d, want 200-salvaged or 422", rr.Code)
	}
}

func TestHealthzReadyzStatz(t *testing.T) {
	cfg := testConfig(t)
	cfg.OverloadAfter = time.Millisecond
	s := newTestServer(t, cfg)
	h := s.Handler()

	get := func(path string) (*httptest.ResponseRecorder, map[string]any) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		var m map[string]any
		_ = json.Unmarshal(rr.Body.Bytes(), &m)
		return rr, m
	}

	if rr, m := get("/healthz"); rr.Code != http.StatusOK || m["ok"] != true {
		t.Errorf("healthz: %d %v", rr.Code, m)
	}
	if rr, m := get("/readyz"); rr.Code != http.StatusOK || m["ready"] != true {
		t.Errorf("fresh readyz: %d %v", rr.Code, m)
	}

	// Sustained overload: fill the gate, shed once, wait out the window.
	for i := 0; i < s.cfg.MaxQueue; i++ {
		if !s.gate.admit(1) {
			t.Fatal("setup admit refused")
		}
	}
	if s.gate.admit(1) {
		t.Fatal("gate admitted past its budget")
	}
	time.Sleep(5 * time.Millisecond)
	if rr, m := get("/readyz"); rr.Code != http.StatusServiceUnavailable || m["reason"] != "overloaded" {
		t.Errorf("overloaded readyz: %d %v, want 503 overloaded", rr.Code, m)
	}
	// Recovery: release and admit again — readiness returns.
	for i := 0; i < s.cfg.MaxQueue; i++ {
		s.gate.release(1)
	}
	if !s.gate.admit(1) {
		t.Fatal("recovered gate refused")
	}
	s.gate.release(1)
	if rr, _ := get("/readyz"); rr.Code != http.StatusOK {
		t.Errorf("recovered readyz: %d, want 200", rr.Code)
	}

	if rr, m := get("/statz"); rr.Code != http.StatusOK || m["gate"] == nil || m["queue"] == nil {
		t.Errorf("statz: %d %v", rr.Code, m)
	}

	s.StartDrain()
	if rr, m := get("/readyz"); rr.Code != http.StatusServiceUnavailable || m["reason"] != "draining" {
		t.Errorf("draining readyz: %d %v, want 503 draining", rr.Code, m)
	}
	if rr, reply := postDecode(t, h, "", encodeJPEG(t, 32, 32, false)); rr.Code != http.StatusServiceUnavailable || !reply.Draining {
		t.Errorf("decode while draining: %d draining=%v, want 503 true", rr.Code, reply.Draining)
	}
}

// TestPanicRecovery proves one poisoned request cannot take the process
// down: the middleware answers 500, logs, counts — and net/http's own
// ErrAbortHandler sentinel passes through untouched.
func TestPanicRecovery(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	boom := s.middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("decoder bug")
	}))
	rr := httptest.NewRecorder()
	boom.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/decode", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Errorf("panicking handler: status %d, want 500", rr.Code)
	}
	var reply decodeReply
	if err := json.Unmarshal(rr.Body.Bytes(), &reply); err != nil || reply.Error == "" {
		t.Errorf("500 body not a JSON error: %q", rr.Body.String())
	}
	if s.panics.Load() != 1 {
		t.Errorf("panic counter = %d, want 1", s.panics.Load())
	}

	abort := s.middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	recovered := func() (v any) {
		defer func() { v = recover() }()
		abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
		return nil
	}()
	if !errors.Is(recovered.(error), http.ErrAbortHandler) {
		t.Errorf("ErrAbortHandler was swallowed: %v", recovered)
	}
	if s.panics.Load() != 1 {
		t.Errorf("ErrAbortHandler counted as a service panic (count %d)", s.panics.Load())
	}
}

func TestRetryAfterFromCalibratedRates(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	// Cold server: no observations yet, the fallback is 1 second.
	if sec := s.retryAfterSec(); sec != 1 {
		t.Errorf("cold retryAfterSec = %d, want 1", sec)
	}
	// Warm the calibrator with a real decode, then price a deep queue.
	if rr, reply := postDecode(t, s.Handler(), "", encodeJPEG(t, 256, 256, true)); rr.Code != http.StatusOK {
		t.Fatalf("warmup decode: %d (%s)", rr.Code, reply.Error)
	}
	st := s.ex.QueueStats()
	if st.BytesPerMCU <= 0 || st.EntropyNsPerMCU <= 0 {
		t.Fatalf("calibrator not seeded after a decode: %+v", st)
	}
	s.gate.admit(1 << 30) // a pretend gigabyte of queued JPEG bytes
	defer s.gate.release(1 << 30)
	sec := s.retryAfterSec()
	if sec < 1 || sec > 60 {
		t.Errorf("warm retryAfterSec = %d, want within [1,60]", sec)
	}
}

func discardLogger() *log.Logger { return log.New(io.Discard, "", 0) }
