package imaged

import (
	"time"

	"hetjpeg"
	"hetjpeg/internal/metrics"
	"hetjpeg/internal/perfmodel"
)

// buildMetrics registers the service's Prometheus catalog. Counters the
// service already keeps as atomics (gate, cache, executor calibration)
// are exposed through func-backed collectors read at scrape time, so
// /metrics adds no bookkeeping to the request path; the only metric the
// handlers feed directly is the per-scale decode latency histogram.
//
// The catalog — names, types and label sets — is pinned by the golden
// test in metrics_golden_test.go; extend it there when extending it
// here.
func (s *Server) buildMetrics() {
	reg := metrics.NewRegistry()
	s.reg = reg

	// Decode latency by the scale that actually ran (a degraded request
	// observes under "1/8"). Pre-created for every scale so the catalog
	// is complete before traffic arrives.
	s.mDecodeDur = reg.NewHistogramVec("hetjpeg_decode_duration_seconds",
		"Wall-clock decode latency by decode scale, successful decodes only.",
		metrics.DurationBuckets, "scale")
	for _, sc := range []hetjpeg.Scale{hetjpeg.Scale1, hetjpeg.Scale2, hetjpeg.Scale4, hetjpeg.Scale8} {
		s.mDecodeDur.With(sc.String())
	}

	// Transcode: re-encode latency by encode rate class, totals, and the
	// learned per-class ns/MCU rates behind the Retry-After encode term.
	s.mEncodeDur = reg.NewHistogramVec("hetjpeg_encode_duration_seconds",
		"Wall-clock re-encode latency of /transcode by encode rate class.",
		metrics.DurationBuckets, "class")
	encRate := reg.NewGaugeFuncVec("hetjpeg_encode_ns_per_mcu",
		"Learned re-encode cost per output MCU by encode rate class.", "class")
	for _, c := range perfmodel.EncodeClasses() {
		c := c
		s.mEncodeDur.With(c.String())
		encRate.Bind(func() float64 { return s.encRates.Value(c) }, c.String())
	}
	reg.NewCounterFunc("hetjpeg_transcode_total",
		"Successful /transcode responses.",
		func() uint64 { return s.transcodes.Load() })
	reg.NewCounterFunc("hetjpeg_transcode_fastpath_total",
		"Transcodes whose decode ran the coefficient-domain DC-only path.",
		func() uint64 { return s.fastpathTranscodes.Load() })
	reg.NewGaugeFunc("hetjpeg_transcode_pending_bytes",
		"Admitted transcode bytes still owing their re-encode pass.",
		func() float64 { return float64(s.transBytes.Load()) })

	// Decoded-output cache. Outcome mirrors the X-Hetjpeg-Cache header.
	cacheReq := reg.NewCounterFuncVec("hetjpeg_cache_requests_total",
		"Requests by how they met the decoded-output cache.", "outcome")
	cacheReq.Bind(func() uint64 { return s.cache.Stats().Hits }, "hit")
	cacheReq.Bind(func() uint64 { return s.cache.Stats().Misses }, "miss")
	cacheReq.Bind(func() uint64 { return s.cache.Stats().Waits }, "wait")
	cacheReq.Bind(func() uint64 { return s.cache.Stats().Bypasses }, "bypass")
	reg.NewCounterFunc("hetjpeg_cache_evictions_total",
		"Entries evicted from the decoded-output cache.",
		func() uint64 { return s.cache.Stats().Evictions })
	reg.NewGaugeFunc("hetjpeg_cache_resident_bytes",
		"Bytes of decoded results currently resident in the cache.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	reg.NewGaugeFunc("hetjpeg_cache_capacity_bytes",
		"Decoded-output cache byte budget (0 when caching is disabled).",
		func() float64 { return float64(s.cache.Stats().Capacity) })
	reg.NewGaugeFunc("hetjpeg_cache_entries",
		"Decoded results currently resident in the cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })

	// Admission gate.
	reg.NewCounterFunc("hetjpeg_admission_admitted_total",
		"Requests admitted past the queue/byte budgets.",
		func() uint64 { return s.gate.snapshot().Admitted })
	reg.NewCounterFunc("hetjpeg_admission_shed_total",
		"Requests shed with 429 because a budget was full.",
		func() uint64 { return s.gate.snapshot().Shed })
	reg.NewCounterFunc("hetjpeg_admission_degraded_total",
		"Opted-in requests served at 1/8 scale past the overload watermark.",
		func() uint64 { return s.gate.snapshot().Degraded })
	reg.NewGaugeFunc("hetjpeg_admission_pending_requests",
		"Admitted requests currently holding a queue slot.",
		func() float64 { return float64(s.gate.snapshot().Pending) })
	reg.NewGaugeFunc("hetjpeg_admission_pending_bytes",
		"Body bytes currently held by admitted requests.",
		func() float64 { return float64(s.gate.snapshot().PendingBytes) })

	// Service counters.
	reg.NewCounterFunc("hetjpeg_decode_timeouts_total",
		"Requests that exceeded their decode deadline (503).",
		func() uint64 { return s.timeouts.Load() })
	reg.NewCounterFunc("hetjpeg_panics_total",
		"Handler panics contained by the recovery middleware.",
		func() uint64 { return s.panics.Load() })
	reg.NewGaugeFunc("hetjpeg_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })

	// Band-scheduler calibration and occupancy: the rates behind the
	// Retry-After arithmetic, zero until calibrated.
	reg.NewGaugeFunc("hetjpeg_calibrator_entropy_ns_per_mcu",
		"Calibrated entropy-stage cost per MCU.",
		func() float64 { return s.ex.QueueStats().EntropyNsPerMCU })
	reg.NewGaugeFunc("hetjpeg_calibrator_back_ns_per_mcu",
		"Calibrated back-phase cost per MCU.",
		func() float64 { return s.ex.QueueStats().BackNsPerMCU })
	reg.NewGaugeFunc("hetjpeg_calibrator_bytes_per_mcu",
		"Calibrated input bytes per MCU.",
		func() float64 { return s.ex.QueueStats().BytesPerMCU })
	reg.NewGaugeFunc("hetjpeg_queue_in_flight",
		"Images between scheduler admission and result delivery.",
		func() float64 { return float64(s.ex.QueueStats().InFlight) })
	reg.NewGaugeFunc("hetjpeg_queue_target",
		"Calibrated in-flight budget of the band scheduler.",
		func() float64 { return float64(s.ex.QueueStats().Target) })
	reg.NewGaugeFunc("hetjpeg_queue_queued",
		"Admitted images waiting for their entropy stage.",
		func() float64 { return float64(s.ex.QueueStats().Queued) })
}
