package imaged

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"hetjpeg"
	"hetjpeg/internal/rescache"
	"hetjpeg/internal/transcode"
)

// POST /transcode: decode → scale → re-encode as a service endpoint.
// The decode stage rides the same executor, admission gate, deadline
// machinery and decoded-output cache as /decode (a cached decode skips
// straight to the encoder); the encode stage runs on the handler
// goroutine with optimal Huffman output and feeds the learned ns/MCU
// encode rates that price Retry-After for the transcode backlog.
//
// Success is the JPEG stream itself (Content-Type: image/jpeg) with
// the X-Hetjpeg-Cache / X-Hetjpeg-Fastpath / X-Hetjpeg-Salvaged
// headers; failures keep /decode's JSON error shape and status map,
// plus 400 for invalid transcode knobs.

// transcodeParams parses and validates the /transcode query knobs.
// Returned errors are client errors (400).
func (s *Server) transcodeParams(q url.Values) (transcode.Options, time.Duration, bool, error) {
	var opts transcode.Options
	scale, ok := hetjpeg.ParseScale(q.Get("scale"))
	if !ok {
		return opts, 0, false, fmt.Errorf("unknown scale %q (want 1, 1/2, 1/4 or 1/8)", q.Get("scale"))
	}
	opts.Scale = scale
	if v := q.Get("quality"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return opts, 0, false, fmt.Errorf("bad quality %q: not an integer", v)
		}
		opts.Quality = n
	}
	if v := q.Get("progressive"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return opts, 0, false, fmt.Errorf("bad progressive %q: want a boolean", v)
		}
		opts.Progressive = b
	}
	opts.Script = q.Get("script")
	opts.Workers = s.cfg.Workers
	if err := opts.Validate(); err != nil {
		return opts, 0, false, err
	}
	timeout, err := s.timeoutFromQuery(q.Get("timeout"))
	if err != nil {
		return opts, 0, false, err
	}
	bypass, err := cacheModeFromQuery(q.Get("cache"))
	if err != nil {
		return opts, 0, false, err
	}
	return opts, timeout, bypass, nil
}

// handleTranscode is the transcode path. Status map: 200 transcoded
// JPEG body, 400 bad knobs, 405 bad method, 413 body over MaxBody, 415
// not a JPEG or unsupported coding feature, 422 corrupt stream, 429
// shed (Retry-After includes the encode backlog), 503 deadline
// exceeded or draining.
func (s *Server) handleTranscode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JPEG body")
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, decodeReply{Error: "server is draining", Draining: true})
		return
	}
	topts, timeout, bypass, err := s.transcodeParams(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	data, status, msg := readJPEGBody(w, r, s.cfg.MaxBody)
	if status != 0 {
		writeError(w, status, msg)
		return
	}

	// Probe the decoded-output cache before admission: a resident decode
	// skips the whole decode stage. Unlike /decode, a hit still passes
	// admission — the re-encode is real work the gate must budget.
	bypass = bypass || s.cache == nil
	key := rescache.KeyFor(data, topts.Scale, s.cfg.Salvage)
	outcome := "bypass"
	var ent *rescache.Entry
	if bypass {
		s.cache.NoteBypass()
	} else if ent = s.cache.Get(key); ent != nil {
		outcome = "hit"
	}

	n := int64(len(data))
	if !s.gate.admit(n) {
		if ent != nil {
			ent.Release()
		}
		sec := s.retryAfterSec()
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		writeJSON(w, http.StatusTooManyRequests, decodeReply{
			Error:         "admission queue full",
			Shed:          true,
			RetryAfterSec: sec,
		})
		return
	}
	defer s.gate.release(n)
	// The transcode backlog is priced separately in Retry-After: these
	// bytes owe an encode pass on top of the decode everyone owes.
	s.transBytes.Add(n)
	defer s.transBytes.Add(-n)

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var (
		res       *hetjpeg.Result
		decodeErr error
	)
	t0 := time.Now()
	switch {
	case ent != nil:
		res, decodeErr = ent.Result(), ent.Err()
		defer ent.Release()
	case bypass:
		res, decodeErr = s.decodeOnce(ctx, data, topts.Scale)
		if res != nil {
			defer res.Release()
		}
	default:
		e, st, err := s.cache.Do(ctx, key, func() (*hetjpeg.Result, error) {
			return s.decodeOnce(ctx, data, topts.Scale)
		})
		decodeErr = err
		outcome = st.String()
		if e != nil {
			res = e.Result()
			defer e.Release()
		}
	}
	decNs := time.Since(t0).Nanoseconds()

	if res == nil {
		reply, code := s.replyFor(nil, decodeErr, outcome, topts.Scale, false, timeout)
		s.writeDecodeReply(w, code, reply)
		return
	}

	tr, err := transcode.EncodeImage(res.Image, topts, res.Frame.DCOnly(), decNs)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.encRates.ObserveResult(tr)
	s.mEncodeDur.With(tr.Class.String()).Observe(float64(tr.EncodeNs) / 1e9)
	s.transcodes.Add(1)
	if tr.FastPath {
		s.fastpathTranscodes.Add(1)
	}

	w.Header().Set("X-Hetjpeg-Cache", outcome)
	if tr.FastPath {
		w.Header().Set("X-Hetjpeg-Fastpath", "true")
	}
	if decodeErr != nil {
		// Salvaged decode: usable pixels re-encoded, flagged like /decode.
		w.Header().Set("X-Hetjpeg-Salvaged", "true")
	}
	w.Header().Set("Content-Type", "image/jpeg")
	w.Header().Set("Content-Length", strconv.Itoa(len(tr.Data)))
	_, _ = w.Write(tr.Data)
}

// retryAfterSecondsMixed extends retryAfterSeconds with the transcode
// backlog: every pending byte owes a decode, and the transcode subset
// additionally owes a re-encode at the learned encode ns/MCU (both
// backlogs mapped through the same input bytes/MCU calibration — the
// output MCU count is unknown until each decode runs, so the input
// geometry stands in for it). Same [1s, 60s] clamp; cold servers
// answer 1s.
func retryAfterSecondsMixed(pendingBytes, transcodeBytes int64, st hetjpeg.BatchQueueStats, workers int, encNsPerMCU float64) int {
	if st.BytesPerMCU <= 0 {
		return 1
	}
	var ns float64
	if perMCU := st.EntropyNsPerMCU + st.BackNsPerMCU; perMCU > 0 {
		ns += float64(pendingBytes) / st.BytesPerMCU * perMCU / float64(workers)
	}
	if encNsPerMCU > 0 && transcodeBytes > 0 {
		ns += float64(transcodeBytes) / st.BytesPerMCU * encNsPerMCU / float64(workers)
	}
	if ns <= 0 {
		return 1
	}
	sec := int(math.Ceil(ns / 1e9))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}
