// Package imaged is the production image-decode edge service the
// paper's gallery workload motivates (ROADMAP item 2): the
// band-scheduler batch executor wrapped in the process-level robustness
// an internet-facing decode tier needs. Where examples/webserver feeds
// requests straight into the decoder, imaged adds:
//
//   - admission control and backpressure: a bounded budget of pending
//     requests AND pending body bytes; past it, requests are shed with
//     429 and a Retry-After computed from the scheduler's calibrated
//     ns/MCU rates instead of queueing without bound;
//   - deadline propagation: every request decodes under a context
//     deadline (server default, per-request override below a server
//     cap) that reaches the entropy stage's MCU-row polling and every
//     back-phase band, so a timed-out decode stops burning CPU and the
//     client gets 503 with a typed timeout body;
//   - graceful degradation: past a queue-depth watermark, requests that
//     opted in (?degrade=allow) are served 1/8-scale DC-only thumbnails
//     (X-Hetjpeg-Degraded: true) — reduced fidelity instead of shed;
//   - lifecycle: panic recovery (500 + logged stack, process survives),
//     /healthz liveness, /readyz readiness (false while draining or
//     under sustained overload), and graceful drain (StartDrain stops
//     intake, admitted requests finish, Close drains the executor);
//   - a decoded-output cache: finished results keyed on (content hash,
//     scale, salvage flag) in a byte-budgeted LRU with singleflight
//     collapse of concurrent identical decodes (internal/rescache). A
//     cache hit is served BEFORE admission — it burns no queue budget
//     and cannot be shed — and every /decode response carries
//     X-Hetjpeg-Cache: hit|miss|wait|bypass (?cache=bypass opts out);
//   - observability: /statz stays the JSON snapshot; /metrics exposes
//     the Prometheus text format (internal/metrics) — per-scale decode
//     latency histograms, cache hit/miss/wait/eviction counters, bytes
//     resident, admission shed/degrade/timeout counters and the
//     calibrator's ns/MCU gauges.
//
// cmd/imaged is the binary; cmd/loadgen drives it and records the
// p50/p99/shed-rate trajectory (BENCH_5.json) plus the hot-repeat
// cache scenario (BENCH_6.json).
package imaged

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"hetjpeg"
	"hetjpeg/internal/metrics"
	"hetjpeg/internal/rescache"
	"hetjpeg/internal/transcode"
)

// Config configures a Server. Spec is required; everything else has a
// serviceable default.
type Config struct {
	// Spec is the simulated platform decodes run against (required).
	Spec *hetjpeg.Platform
	// Model is the fitted performance model (nil is allowed: ModeAuto
	// then resolves to the pipelined mode and the scheduler calibrates
	// purely online).
	Model *hetjpeg.Model
	// Mode is the per-image execution mode (default ModeAuto).
	Mode hetjpeg.Mode
	// Workers bounds decode parallelism (0 = GOMAXPROCS).
	Workers int
	// MaxInFlight caps the band scheduler's in-flight images.
	MaxInFlight int
	// Salvage enables error-resilient decoding: corrupt-but-recoverable
	// uploads return 200 with X-Hetjpeg-Salvaged instead of 422.
	Salvage bool
	// Scale is the default decode scale (?scale= overrides per request).
	Scale hetjpeg.Scale

	// MaxBody caps one request body (default 64 MiB). Oversized bodies
	// get 413 with a JSON error.
	MaxBody int64
	// MaxQueue caps admitted-but-unfinished requests (default
	// 4×Workers, minimum 8).
	MaxQueue int
	// MaxQueueBytes is the admission byte budget: the sum of admitted
	// request bodies (default 256 MiB). This, plus the executor's
	// in-flight decode buffers, bounds the service's input-driven RSS.
	MaxQueueBytes int64
	// CacheBytes budgets the decoded-output cache (default 256 MiB,
	// negative disables caching). Finished results are kept keyed on
	// (content hash, scale, salvage flag); a hit is served before
	// admission and concurrent identical decodes collapse to one.
	CacheBytes int64
	// RequestTimeout is the default per-request decode deadline
	// (default 15s); ?timeout= overrides it per request up to
	// MaxTimeout (default 60s).
	RequestTimeout time.Duration
	MaxTimeout     time.Duration
	// DegradeWatermark is the gate-occupancy fraction past which
	// ?degrade=allow requests are served at 1/8 scale (default 0.5).
	DegradeWatermark float64
	// OverloadAfter is how long continuous shedding must last before
	// /readyz flips not-ready (default 5s).
	OverloadAfter time.Duration
	// Log receives request and panic logs (default log.Default()).
	Log *log.Logger
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Spec == nil {
		return out, errors.New("imaged: Config.Spec is required")
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.MaxBody <= 0 {
		out.MaxBody = 64 << 20
	}
	if out.MaxQueue <= 0 {
		out.MaxQueue = 4 * out.Workers
		if out.MaxQueue < 8 {
			out.MaxQueue = 8
		}
	}
	if out.MaxQueueBytes <= 0 {
		out.MaxQueueBytes = 256 << 20
	}
	if out.CacheBytes == 0 {
		out.CacheBytes = 256 << 20
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = 15 * time.Second
	}
	if out.MaxTimeout <= 0 {
		out.MaxTimeout = 60 * time.Second
	}
	if out.RequestTimeout > out.MaxTimeout {
		out.RequestTimeout = out.MaxTimeout
	}
	if out.DegradeWatermark <= 0 || out.DegradeWatermark > 1 {
		out.DegradeWatermark = 0.5
	}
	if out.OverloadAfter <= 0 {
		out.OverloadAfter = 5 * time.Second
	}
	if out.Log == nil {
		out.Log = log.Default()
	}
	return out, nil
}

// Server is the imaged HTTP service: Handler() is its routing tree,
// StartDrain/Close its shutdown sequence.
type Server struct {
	cfg   Config
	ex    *hetjpeg.BatchExecutor
	gate  *gate
	disp  *dispatcher
	cache *rescache.Cache // nil when CacheBytes < 0: every request decodes
	log   *log.Logger

	reg        *metrics.Registry
	mDecodeDur *metrics.HistogramVec
	mEncodeDur *metrics.HistogramVec

	// Transcode accounting: the learned per-class encode rates, the
	// admitted-but-unfinished transcode bytes (the subset of the gate's
	// pending bytes that still owes an encode pass), and totals.
	encRates           transcode.Rates
	transBytes         atomic.Int64
	transcodes         atomic.Uint64
	fastpathTranscodes atomic.Uint64

	draining atomic.Bool
	panics   atomic.Uint64
	timeouts atomic.Uint64
	started  time.Time
}

// New builds a Server and starts its decode executor.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ex, err := hetjpeg.NewBatchExecutor(hetjpeg.BatchOptions{
		Spec:        cfg.Spec,
		Model:       cfg.Model,
		Mode:        cfg.Mode,
		Workers:     cfg.Workers,
		MaxInFlight: cfg.MaxInFlight,
		Scale:       cfg.Scale,
		Salvage:     cfg.Salvage,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		ex:      ex,
		gate:    newGate(cfg.MaxQueue, cfg.MaxQueueBytes, cfg.DegradeWatermark, cfg.OverloadAfter),
		disp:    newDispatcher(ex),
		cache:   rescache.New(cfg.CacheBytes),
		log:     cfg.Log,
		started: time.Now(),
	}
	s.buildMetrics()
	// Seed the encode rate classes with a calibration encode so the
	// first 429 already prices the transcode backlog defensibly; live
	// traffic corrects the seeds through the EWMA.
	s.encRates.Calibrate()
	return s, nil
}

// StartDrain flips the server into drain mode: /readyz goes not-ready
// and new decode requests are refused with 503, while requests already
// admitted keep decoding to completion. Call it on SIGTERM, then shut
// the HTTP server down (which waits for the in-flight handlers), then
// Close.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close shuts the decode executor down and waits for its pipeline to
// drain. Call it after the HTTP server's Shutdown returned, so no
// handler can still submit.
func (s *Server) Close() { s.disp.close() }

// Handler returns the service's routing tree wrapped in the recovery +
// request-log middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/decode", s.handleDecode)
	mux.HandleFunc("/transcode", s.handleTranscode)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.Handle("/metrics", s.reg.Handler())
	return s.middleware(mux)
}

// decodeReply is the JSON body of every /decode response, success or
// error — clients always get a machine-readable reason.
type decodeReply struct {
	Width    int    `json:"width,omitempty"`
	Height   int    `json:"height,omitempty"`
	Mode     string `json:"mode,omitempty"`
	Platform string `json:"platform,omitempty"`
	// Scale is the decode scale that actually ran — "1/8" when the
	// request was degraded under overload.
	Scale        string  `json:"scale,omitempty"`
	VirtualMs    float64 `json:"virtualMs,omitempty"`
	EntropyScans int     `json:"entropyScans,omitempty"`
	WallMs       float64 `json:"wallMs,omitempty"`
	// Degraded mirrors the X-Hetjpeg-Degraded header: the service was
	// past its overload watermark and this request opted in.
	Degraded bool `json:"degraded,omitempty"`
	// Cache mirrors the X-Hetjpeg-Cache header: how the request met the
	// decoded-output cache — hit, miss, wait (an identical decode was in
	// flight and shared) or bypass (?cache=bypass, or caching disabled).
	Cache string `json:"cache,omitempty"`

	Error string `json:"error,omitempty"`
	// Unsupported distinguishes "valid JPEG, out-of-scope feature"
	// (415) from corruption (422).
	Unsupported bool `json:"unsupported,omitempty"`
	// Timeout marks a 503 caused by the request's decode deadline; the
	// effective deadline is echoed in TimeoutMs.
	Timeout   bool    `json:"timeout,omitempty"`
	TimeoutMs float64 `json:"timeoutMs,omitempty"`
	// Shed marks a 429: the admission queue was full. RetryAfterSec
	// echoes the Retry-After header.
	Shed          bool `json:"shed,omitempty"`
	RetryAfterSec int  `json:"retryAfterSec,omitempty"`
	// Draining marks a 503 from a server in shutdown drain.
	Draining bool `json:"draining,omitempty"`

	Salvaged      bool   `json:"salvaged,omitempty"`
	RecoveredMCUs int    `json:"recoveredMcus,omitempty"`
	TotalMCUs     int    `json:"totalMcus,omitempty"`
	SalvageError  string `json:"salvageError,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, reply decodeReply) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(reply)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, decodeReply{Error: msg})
}

// handleDecode is the robust single-image decode path. Status map:
// 200 decoded (possibly degraded/salvaged, see headers), 400 bad
// parameters, 405 bad method, 413 body over MaxBody, 415 not a JPEG or
// unsupported coding feature, 422 corrupt stream, 429 shed (admission
// queue full, Retry-After set), 503 deadline exceeded or draining.
func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JPEG body")
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, decodeReply{Error: "server is draining", Draining: true})
		return
	}
	q := r.URL.Query()
	scale, ok := hetjpeg.ParseScale(q.Get("scale"))
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown scale %q (want 1, 1/2, 1/4 or 1/8)", q.Get("scale")))
		return
	}
	timeout, err := s.timeoutFromQuery(q.Get("timeout"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	degradeOK := q.Get("degrade") == "allow"
	bypass, err := cacheModeFromQuery(q.Get("cache"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	data, status, msg := readJPEGBody(w, r, s.cfg.MaxBody)
	if status != 0 {
		writeError(w, status, msg)
		return
	}

	// Cache probe BEFORE admission: a resident result burns no queue
	// budget and cannot be shed — repeat traffic stays fast even while
	// the gate is rejecting fresh decode work.
	bypass = bypass || s.cache == nil
	key := rescache.KeyFor(data, scale, s.cfg.Salvage)
	if bypass {
		s.cache.NoteBypass()
	} else if ent := s.cache.Get(key); ent != nil {
		defer ent.Release()
		reply, code := s.replyFor(ent.Result(), ent.Err(), "hit", scale, false, timeout)
		reply.WallMs = float64(time.Since(start).Microseconds()) / 1000
		s.writeDecodeReply(w, code, reply)
		return
	}

	// Admission: reserve queue + byte budget for the request's whole
	// lifetime, or shed with an honest Retry-After.
	n := int64(len(data))
	if !s.gate.admit(n) {
		sec := s.retryAfterSec()
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		writeJSON(w, http.StatusTooManyRequests, decodeReply{
			Error:         "admission queue full",
			Shed:          true,
			RetryAfterSec: sec,
		})
		return
	}
	defer s.gate.release(n)

	// Graceful degradation: past the watermark, an opted-in request
	// trades resolution for latency via the DC-only 1/8 fast path. The
	// cache key follows the scale that actually runs.
	degraded := false
	if degradeOK && scale != hetjpeg.Scale8 && s.gate.pastWatermarkExcluding(n) {
		scale = hetjpeg.Scale8
		degraded = true
		s.gate.noteDegraded()
		key = rescache.KeyFor(data, scale, s.cfg.Salvage)
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var (
		res       *hetjpeg.Result
		decodeErr error
		outcome   string
	)
	if bypass {
		res, decodeErr = s.decodeOnce(ctx, data, scale)
		if res != nil {
			// Metadata only leaves the process; the pixel and coefficient
			// slabs go back to the pool so sustained load stays
			// allocation-flat.
			defer res.Release()
		}
		outcome = "bypass"
	} else {
		ent, st, err := s.cache.Do(ctx, key, func() (*hetjpeg.Result, error) {
			return s.decodeOnce(ctx, data, scale)
		})
		decodeErr = err
		outcome = st.String()
		if ent != nil {
			res = ent.Result()
			defer ent.Release()
		}
	}

	reply, code := s.replyFor(res, decodeErr, outcome, scale, degraded, timeout)
	reply.WallMs = float64(time.Since(start).Microseconds()) / 1000
	s.writeDecodeReply(w, code, reply)
}

// cacheModeFromQuery parses ?cache=: empty or "use" keeps the cache in
// the path, "bypass" opts this request out of probe and insert both.
func cacheModeFromQuery(v string) (bypass bool, err error) {
	switch v {
	case "", "use":
		return false, nil
	case "bypass":
		return true, nil
	}
	return false, fmt.Errorf("unknown cache mode %q (want bypass)", v)
}

// decodeOnce runs one decode through the dispatcher and, when pixels
// came back, the per-scale latency histogram. The contract mirrors the
// batch API: result and error may BOTH be set (salvage); a nil result
// is a true failure classified by the error.
func (s *Server) decodeOnce(ctx context.Context, data []byte, scale hetjpeg.Scale) (*hetjpeg.Result, error) {
	t0 := time.Now()
	ir, err := s.disp.decode(ctx, data, scale)
	if err != nil {
		// Submission never happened: deadline hit while queued for
		// admission into the scheduler, or the executor closed under us.
		return nil, err
	}
	if ir.Res != nil {
		s.mDecodeDur.With(scale.String()).Observe(time.Since(t0).Seconds())
	}
	return ir.Res, ir.Err
}

// replyFor converts one decode outcome — fresh, cached or failed — into
// the shared reply shape and its HTTP status.
func (s *Server) replyFor(res *hetjpeg.Result, decodeErr error, outcome string, scale hetjpeg.Scale, degraded bool, timeout time.Duration) (decodeReply, int) {
	reply := decodeReply{
		Mode:     s.cfg.Mode.Resolve(s.cfg.Model).String(),
		Platform: s.cfg.Spec.Name,
		Scale:    scale.String(),
		Degraded: degraded,
		Cache:    outcome,
	}
	if res == nil {
		switch {
		case errors.Is(decodeErr, context.DeadlineExceeded) || errors.Is(decodeErr, context.Canceled):
			// The deadline fired while queued or mid-decode; the entropy
			// stage or a band task aborted within its polling bound.
			s.timeouts.Add(1)
			return decodeReply{
				Error:     fmt.Sprintf("decode exceeded the %v deadline", timeout),
				Timeout:   true,
				TimeoutMs: float64(timeout.Microseconds()) / 1000,
			}, http.StatusServiceUnavailable
		case errors.Is(decodeErr, hetjpeg.ErrBatchClosed):
			return decodeReply{Error: "server is draining", Draining: true}, http.StatusServiceUnavailable
		case errors.Is(decodeErr, hetjpeg.ErrUnsupported):
			reply.Error = decodeErr.Error()
			reply.Unsupported = true
			return reply, http.StatusUnsupportedMediaType
		default:
			reply.Error = decodeErr.Error()
			return reply, http.StatusUnprocessableEntity
		}
	}
	if decodeErr != nil {
		// Salvaged: usable (partially gray) pixels plus ErrPartialData.
		// An image service serves that as a success, flagged for caches;
		// a cached salvage replays the same report on every hit.
		reply.Salvaged = true
		reply.SalvageError = decodeErr.Error()
		if rep := res.Salvage; rep != nil {
			reply.RecoveredMCUs = rep.RecoveredMCUs
			reply.TotalMCUs = rep.TotalMCUs
		}
	}
	reply.Width, reply.Height = res.Image.W, res.Image.H
	reply.VirtualMs = res.TotalNs / 1e6
	reply.EntropyScans = res.Stats.EntropyScans
	return reply, http.StatusOK
}

// writeDecodeReply sets the headers the reply's fields mirror, then
// writes the JSON body.
func (s *Server) writeDecodeReply(w http.ResponseWriter, status int, reply decodeReply) {
	if reply.Cache != "" {
		w.Header().Set("X-Hetjpeg-Cache", reply.Cache)
	}
	if reply.Degraded {
		w.Header().Set("X-Hetjpeg-Degraded", "true")
	}
	if reply.Salvaged {
		w.Header().Set("X-Hetjpeg-Salvaged", "true")
	}
	if reply.Draining {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, reply)
}

// timeoutFromQuery resolves the request's decode deadline: the server
// default, overridable per request (?timeout=500ms) but never above the
// server cap — a client cannot pin a worker longer than MaxTimeout.
func (s *Server) timeoutFromQuery(v string) (time.Duration, error) {
	if v == "" {
		return s.cfg.RequestTimeout, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("bad timeout %q: %w", v, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("bad timeout %q: must be positive", v)
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// readJPEGBody reads the request body under the MaxBody cap, rejecting
// non-JPEG uploads from their first two bytes (no point buffering 64
// MiB of something that is not a JPEG) and mapping an overrun to 413.
// status is 0 on success.
func readJPEGBody(w http.ResponseWriter, r *http.Request, maxBody int64) (data []byte, status int, msg string) {
	body := http.MaxBytesReader(w, r.Body, maxBody)
	magic := make([]byte, 2)
	if _, err := io.ReadFull(body, magic); err != nil {
		return nil, http.StatusUnsupportedMediaType, "not a JPEG (no SOI marker in the first bytes)"
	}
	if magic[0] != 0xFF || magic[1] != 0xD8 {
		return nil, http.StatusUnsupportedMediaType, "not a JPEG (missing FF D8 SOI magic)"
	}
	rest, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", mbe.Limit)
		}
		return nil, http.StatusBadRequest, err.Error()
	}
	return append(magic, rest...), 0, ""
}

func (s *Server) retryAfterSec() int {
	return retryAfterSecondsMixed(s.gate.pendingByteCount(), s.transBytes.Load(),
		s.ex.QueueStats(), s.cfg.Workers, s.encRates.Max())
}

// retryAfterSeconds prices a 429's Retry-After from the scheduler's
// calibrated rates: pending admitted bytes → MCUs (bytes/MCU EWMA) →
// nanoseconds (entropy + back-phase ns/MCU, spread across the workers),
// rounded up to whole seconds and clamped to [1s, 60s]. Uncalibrated
// (cold) servers answer 1s.
func retryAfterSeconds(pendingBytes int64, st hetjpeg.BatchQueueStats, workers int) int {
	perMCU := st.EntropyNsPerMCU + st.BackNsPerMCU
	if st.BytesPerMCU <= 0 || perMCU <= 0 {
		return 1
	}
	mcus := float64(pendingBytes) / st.BytesPerMCU
	ns := mcus * perMCU / float64(workers)
	sec := int(math.Ceil(ns / 1e9))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Liveness: the process serves HTTP. Decoder health is /readyz's
	// job — a panicking decode must not get the process killed when the
	// recovery middleware already contained it.
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte("{\"ok\":true}\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("{\"ready\":false,\"reason\":\"draining\"}\n"))
	case s.gate.overloaded(time.Now()):
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("{\"ready\":false,\"reason\":\"overloaded\"}\n"))
	default:
		_, _ = w.Write([]byte("{\"ready\":true}\n"))
	}
}

// statzReply is the /statz introspection document: the admission gate,
// the executor's queue/calibration snapshot, and service counters.
type statzReply struct {
	Gate     gateSnapshot            `json:"gate"`
	Queue    hetjpeg.BatchQueueStats `json:"queue"`
	Panics   uint64                  `json:"panics"`
	Timeouts uint64                  `json:"timeouts"`
	Draining bool                    `json:"draining"`
	UptimeMs float64                 `json:"uptimeMs"`
	Workers  int                     `json:"workers"`
	// Transcode accounting: total /transcode successes, how many rode
	// the DC-only fast path, and the encode backlog's pending bytes.
	Transcodes         uint64 `json:"transcodes"`
	FastpathTranscodes uint64 `json:"fastpathTranscodes"`
	TranscodeBytes     int64  `json:"transcodeBytes"`
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(statzReply{
		Gate:     s.gate.snapshot(),
		Queue:    s.ex.QueueStats(),
		Panics:   s.panics.Load(),
		Timeouts: s.timeouts.Load(),
		Draining: s.draining.Load(),
		UptimeMs: float64(time.Since(s.started).Microseconds()) / 1000,
		Workers:  s.cfg.Workers,

		Transcodes:         s.transcodes.Load(),
		FastpathTranscodes: s.fastpathTranscodes.Load(),
		TranscodeBytes:     s.transBytes.Load(),
	})
}

// statusWriter records the status code and whether a header was
// written, so the middleware can log outcomes and the panic recovery
// knows whether a 500 can still be sent.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if !sw.wrote {
		sw.code = http.StatusOK
		sw.wrote = true
	}
	return sw.ResponseWriter.Write(p)
}

// middleware wraps every handler in panic recovery and a structured
// request log line. A decoder panic becomes a 500 with the stack in the
// process log — one poisoned request must not take the service down
// with it.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// net/http's own sentinel for "abort this
					// connection"; suppressing it would break that.
					panic(p)
				}
				s.panics.Add(1)
				s.log.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal error")
				}
			}
			s.log.Printf("%s %s %d %.1fms", r.Method, r.URL.RequestURI(), sw.code, float64(time.Since(start).Microseconds())/1000)
		}()
		next.ServeHTTP(sw, r)
	})
}
