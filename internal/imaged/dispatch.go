package imaged

import (
	"context"
	"sync"

	"hetjpeg"
)

// dispatcher multiplexes the executor's completion-order Results stream
// back to per-request handler goroutines: each decode registers a
// buffered reply channel under a fresh index before submitting, and one
// routing goroutine fans results out by index. The executor's delivery
// contract — every successfully submitted index is answered exactly
// once, even through cancellation and Close — is what makes the waiter
// map leak-free.
type dispatcher struct {
	ex *hetjpeg.BatchExecutor

	mu      sync.Mutex
	next    int
	waiters map[int]chan hetjpeg.BatchImageResult

	done chan struct{} // closed when the routing loop drains
}

func newDispatcher(ex *hetjpeg.BatchExecutor) *dispatcher {
	d := &dispatcher{
		ex:      ex,
		waiters: make(map[int]chan hetjpeg.BatchImageResult),
		done:    make(chan struct{}),
	}
	go d.route()
	return d
}

// route delivers every executor result to its waiting request. A result
// without a waiter can only be one whose submission error already made
// the handler give up (it unregistered first), so its buffers are
// released rather than leaked.
func (d *dispatcher) route() {
	defer close(d.done)
	for ir := range d.ex.Results() {
		d.mu.Lock()
		ch := d.waiters[ir.Index]
		delete(d.waiters, ir.Index)
		d.mu.Unlock()
		if ch == nil {
			if ir.Res != nil {
				ir.Res.Release()
			}
			continue
		}
		ch <- ir // buffered: the routing loop never blocks on a handler
	}
}

// decode submits one image and waits for its result. The wait itself is
// unbounded on purpose: ctx flows into the decode (the entropy stage
// polls it every 32 MCU rows, every back-phase band checks it), so a
// deadline aborts the decode machinery and the result — carrying ctx's
// error — arrives promptly rather than the handler abandoning a decode
// that keeps burning CPU.
func (d *dispatcher) decode(ctx context.Context, data []byte, scale hetjpeg.Scale) (hetjpeg.BatchImageResult, error) {
	ch := make(chan hetjpeg.BatchImageResult, 1)
	d.mu.Lock()
	idx := d.next
	d.next++
	d.waiters[idx] = ch
	d.mu.Unlock()
	if err := d.ex.SubmitScaled(ctx, idx, data, scale); err != nil {
		d.mu.Lock()
		delete(d.waiters, idx)
		d.mu.Unlock()
		return hetjpeg.BatchImageResult{}, err
	}
	return <-ch, nil
}

// close shuts the executor down and waits for the routing loop to
// deliver everything in flight. Call only once no handler can submit
// (after the HTTP server finished draining).
func (d *dispatcher) close() {
	d.ex.Close()
	<-d.done
}
