package imaged

// Table tests for the Retry-After pricing: the pure arithmetic behind
// every 429 — pending admitted bytes converted through the calibrator's
// bytes/MCU into MCUs, priced at the entropy + back-phase ns/MCU rates,
// spread across the workers, rounded up to whole seconds and clamped to
// [1s, 60s]. A cold (uncalibrated) server must answer 1s rather than
// divide by zero or promise the moon.

import (
	"testing"

	"hetjpeg"
)

func TestRetryAfterSeconds(t *testing.T) {
	calibrated := hetjpeg.BatchQueueStats{
		EntropyNsPerMCU: 300_000,
		BackNsPerMCU:    200_000,
		BytesPerMCU:     100,
	}
	cases := []struct {
		name    string
		pending int64
		st      hetjpeg.BatchQueueStats
		workers int
		want    int
	}{
		{
			// No calibration at all: the scheduler has not seen an image
			// yet, so there is no honest estimate — fall back to 1s.
			name:    "cold server answers 1s",
			pending: 10 << 20,
			st:      hetjpeg.BatchQueueStats{},
			workers: 4,
			want:    1,
		},
		{
			// Rates without a bytes→MCU conversion are unusable.
			name:    "missing bytes-per-mcu answers 1s",
			pending: 10 << 20,
			st:      hetjpeg.BatchQueueStats{EntropyNsPerMCU: 1e6, BackNsPerMCU: 1e6},
			workers: 4,
			want:    1,
		},
		{
			name:    "missing ns rates answers 1s",
			pending: 10 << 20,
			st:      hetjpeg.BatchQueueStats{BytesPerMCU: 100},
			workers: 4,
			want:    1,
		},
		{
			// 2 MB / 100 B/MCU = 20000 MCUs x 500us = 10s of work over 4
			// workers = 2.5s -> ceil 3s.
			name:    "bytes to MCUs to seconds",
			pending: 2_000_000,
			st:      calibrated,
			workers: 4,
			want:    3,
		},
		{
			// 1500 B -> 1500 MCUs x 1ms = 1.5s on one worker: rounds UP
			// to 2, never down — an optimistic Retry-After just bounces
			// the client off the gate again.
			name:    "rounds up",
			pending: 1500,
			st:      hetjpeg.BatchQueueStats{EntropyNsPerMCU: 500_000, BackNsPerMCU: 500_000, BytesPerMCU: 1},
			workers: 1,
			want:    2,
		},
		{
			// Sub-second drain estimates still answer the 1s floor.
			name:    "clamps at 1s",
			pending: 100,
			st:      calibrated,
			workers: 4,
			want:    1,
		},
		{
			name:    "zero pending clamps at 1s",
			pending: 0,
			st:      calibrated,
			workers: 4,
			want:    1,
		},
		{
			// A queue that prices out to hours still answers 60s: past
			// that the client should be re-resolving, not sleeping.
			name:    "clamps at 60s",
			pending: 1 << 30,
			st:      hetjpeg.BatchQueueStats{EntropyNsPerMCU: 500_000, BackNsPerMCU: 500_000, BytesPerMCU: 1},
			workers: 1,
			want:    60,
		},
		{
			// More workers drain the same queue proportionally faster.
			name:    "workers divide the estimate",
			pending: 2_000_000,
			st:      calibrated,
			workers: 1,
			want:    10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := retryAfterSeconds(tc.pending, tc.st, tc.workers); got != tc.want {
				t.Errorf("retryAfterSeconds(%d, %+v, %d) = %d, want %d",
					tc.pending, tc.st, tc.workers, got, tc.want)
			}
		})
	}
}

// TestRetryAfterSecondsMixed pins the transcode-aware pricing: the
// decode term is unchanged from retryAfterSeconds, and bytes admitted
// for /transcode additionally owe an encode pass at the learned encode
// ns/MCU. With no transcode backlog (or a cold encode rate) the mixed
// estimate must equal the decode-only one.
func TestRetryAfterSecondsMixed(t *testing.T) {
	calibrated := hetjpeg.BatchQueueStats{
		EntropyNsPerMCU: 300_000,
		BackNsPerMCU:    200_000,
		BytesPerMCU:     100,
	}
	cases := []struct {
		name      string
		pending   int64
		transcode int64
		st        hetjpeg.BatchQueueStats
		workers   int
		encNs     float64
		want      int
	}{
		{
			// No bytes→MCU conversion means no honest estimate, even when
			// the encode rate alone is known.
			name:      "cold calibration answers 1s",
			pending:   10 << 20,
			transcode: 10 << 20,
			st:        hetjpeg.BatchQueueStats{},
			workers:   4,
			encNs:     500_000,
			want:      1,
		},
		{
			// Zero transcode backlog: identical to retryAfterSeconds
			// ("bytes to MCUs to seconds" case above answers 3s).
			name:      "no transcode backlog matches decode-only pricing",
			pending:   2_000_000,
			transcode: 0,
			st:        calibrated,
			workers:   4,
			encNs:     500_000,
			want:      3,
		},
		{
			// Unlearned encode rate: the transcode bytes still owe their
			// decode (they are part of pending) but the encode term drops
			// out rather than pricing from garbage.
			name:      "cold encode rate degenerates to decode-only",
			pending:   2_000_000,
			transcode: 2_000_000,
			st:        calibrated,
			workers:   4,
			encNs:     0,
			want:      3,
		},
		{
			// Decode: 20000 MCUs x 500us / 4 = 2.5s. Encode: 20000 MCUs x
			// 500us / 4 = 2.5s. Total 5s.
			name:      "encode term adds to the decode term",
			pending:   2_000_000,
			transcode: 2_000_000,
			st:        calibrated,
			workers:   4,
			encNs:     500_000,
			want:      5,
		},
		{
			// Decode rates missing but encode rate learned: the transcode
			// backlog still prices (2e6 B / 100 B/MCU x 500us / 1 = 10s).
			name:      "encode-only backlog still priced",
			pending:   2_000_000,
			transcode: 2_000_000,
			st:        hetjpeg.BatchQueueStats{BytesPerMCU: 100},
			workers:   1,
			encNs:     500_000,
			want:      10,
		},
		{
			name:      "mixed estimate clamps at 60s",
			pending:   1 << 30,
			transcode: 1 << 30,
			st:        hetjpeg.BatchQueueStats{EntropyNsPerMCU: 500_000, BackNsPerMCU: 500_000, BytesPerMCU: 1},
			workers:   1,
			encNs:     1_000_000,
			want:      60,
		},
		{
			name:      "all-zero backlog clamps at 1s",
			pending:   0,
			transcode: 0,
			st:        calibrated,
			workers:   4,
			encNs:     500_000,
			want:      1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := retryAfterSecondsMixed(tc.pending, tc.transcode, tc.st, tc.workers, tc.encNs)
			if got != tc.want {
				t.Errorf("retryAfterSecondsMixed(%d, %d, %+v, %d, %g) = %d, want %d",
					tc.pending, tc.transcode, tc.st, tc.workers, tc.encNs, got, tc.want)
			}
		})
	}
	// Agreement property: for any decode-only backlog the two pricers
	// must answer identically — /decode and /transcode 429s stay
	// consistent when no encode work is queued.
	for _, pending := range []int64{0, 100, 1500, 2_000_000, 1 << 30} {
		a := retryAfterSeconds(pending, calibrated, 2)
		b := retryAfterSecondsMixed(pending, 0, calibrated, 2, 700_000)
		if a != b {
			t.Errorf("pending=%d: retryAfterSeconds=%d but mixed=%d with zero transcode backlog", pending, a, b)
		}
	}
}
