package imaged

// Golden test for the /metrics catalog: the exposition must parse as
// Prometheus text format 0.0.4, and its shape — every family's name,
// type and each sample's label signature, values normalized away — is
// pinned byte-for-byte against testdata/metrics.golden. Renaming a
// metric, dropping a label or changing histogram buckets breaks
// downstream dashboards and alerts; this test makes such a change an
// explicit diff instead of a silent one. Regenerate with:
//
//	go test ./internal/imaged -run TestMetricsGolden -update

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetjpeg/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestMetricsGolden(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()

	// Exercise every counter source once so the scrape carries live
	// values (which then normalize away): a miss, a hit, a bypass, a
	// shed... the catalog itself must already be complete without any
	// traffic, so none of this adds series.
	data := encodeJPEG(t, 32, 32, false)
	postDecode(t, h, "", data)
	postDecode(t, h, "", data)
	postDecode(t, h, "cache=bypass", data)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type %q, want text format 0.0.4", ct)
	}
	fams, err := metrics.ParseText(bytes.NewReader(rr.Body.Bytes()))
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text format: %v\n%s", err, rr.Body.String())
	}

	got := normalizeFamilies(fams)
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("metrics catalog drifted from %s (regenerate with -update if intended):\n%s",
			golden, diffLines(string(want), got))
	}
}

// normalizeFamilies renders the shape of a scrape: family name + type,
// then each distinct sample name with its canonical label signature.
// Values are dropped — the catalog is the contract, the numbers are the
// payload.
func normalizeFamilies(fams []metrics.Family) string {
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "%s %s\n", f.Name, f.Type)
		for _, smp := range f.Samples {
			line := "  " + smp.Name
			if sig := smp.LabelSignature(); sig != "" {
				line += "{" + sig + "}"
			}
			fmt.Fprintln(&b, line)
		}
	}
	return b.String()
}

// diffLines is a minimal line diff: everything only in want as "-",
// only in got as "+", in input order.
func diffLines(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	if b.Len() == 0 {
		return "(lines reordered)"
	}
	return b.String()
}
