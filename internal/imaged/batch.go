package imaged

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"hetjpeg"
	"hetjpeg/internal/rescache"
)

// maxBatchParts caps one /batch request: enough for a gallery page,
// small enough that a single request cannot monopolize the executor.
const maxBatchParts = 256

// batchItemReply is one part's outcome inside a /batch response: the
// same shape as a /decode body plus the part's identity and its
// per-item HTTP-equivalent status (a batch response is always 200; the
// per-item codes carry the /decode status map).
type batchItemReply struct {
	Index  int    `json:"index"`
	Name   string `json:"name,omitempty"`
	Status int    `json:"status"`
	decodeReply
}

// batchReply is the /batch response envelope.
type batchReply struct {
	Count    int              `json:"count"`
	OK       int              `json:"ok"`
	Salvaged int              `json:"salvaged"`
	Shed     int              `json:"shed"`
	Errors   int              `json:"errors"`
	WallMs   float64          `json:"wallMs"`
	Items    []batchItemReply `json:"items"`
}

// handleBatch decodes a multipart batch of JPEGs in one request — the
// gallery-page shape the paper's workload is built around. Each part
// goes through the same cache discipline as /decode: resident parts are
// served before admission (they cannot be shed), the remaining parts
// are admitted as one reservation covering their summed bytes, and
// identical parts in one batch collapse to a single decode through the
// cache's singleflight. Per-part outcomes carry /decode's status map in
// items[i].status; the batch response itself is 200 unless the request
// as a whole is malformed. ?scale=, ?timeout= and ?cache=bypass apply
// to every part; ?degrade= is not supported on this path.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a multipart/form-data batch of JPEGs")
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, decodeReply{Error: "server is draining", Draining: true})
		return
	}
	q := r.URL.Query()
	scale, ok := hetjpeg.ParseScale(q.Get("scale"))
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown scale %q (want 1, 1/2, 1/4 or 1/8)", q.Get("scale")))
		return
	}
	timeout, err := s.timeoutFromQuery(q.Get("timeout"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	bypass, err := cacheModeFromQuery(q.Get("cache"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	parts, status, msg := readBatchParts(r, s.cfg.MaxBody)
	if status != 0 {
		writeError(w, status, msg)
		return
	}

	bypass = bypass || s.cache == nil
	items := make([]batchItemReply, len(parts))
	type job struct {
		idx int
		key rescache.Key
	}
	var jobs []job
	var missBytes int64
	for i := range parts {
		pt := &parts[i]
		items[i].Index = i
		items[i].Name = pt.name
		if pt.errStatus != 0 {
			items[i].Status = pt.errStatus
			items[i].Error = pt.errMsg
			continue
		}
		key := rescache.KeyFor(pt.data, scale, s.cfg.Salvage)
		if !bypass {
			if ent := s.cache.Get(key); ent != nil {
				// Resident: served ahead of admission, can't be shed.
				items[i].decodeReply, items[i].Status = s.replyFor(ent.Result(), ent.Err(), "hit", scale, false, timeout)
				ent.Release()
				continue
			}
		} else {
			s.cache.NoteBypass()
		}
		jobs = append(jobs, job{i, key})
		missBytes += int64(len(pt.data))
	}

	// One reservation covers every part that actually needs a decode;
	// when the gate refuses it, only those parts are shed — the hits
	// above already have their replies.
	if len(jobs) > 0 {
		if s.gate.admit(missBytes) {
			defer s.gate.release(missBytes)
		} else {
			sec := s.retryAfterSec()
			w.Header().Set("Retry-After", strconv.Itoa(sec))
			for _, j := range jobs {
				items[j.idx].Status = http.StatusTooManyRequests
				items[j.idx].Error = "admission queue full"
				items[j.idx].Shed = true
				items[j.idx].RetryAfterSec = sec
			}
			jobs = nil
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			// A panic here is outside the middleware's stack; contain it
			// to the one part, mirroring what the middleware would log.
			defer func() {
				if p := recover(); p != nil {
					s.panics.Add(1)
					s.log.Printf("panic decoding batch part %d: %v\n%s", j.idx, p, debug.Stack())
					items[j.idx].Status = http.StatusInternalServerError
					items[j.idx].decodeReply = decodeReply{Error: "internal error"}
				}
			}()
			data := parts[j.idx].data
			var (
				res       *hetjpeg.Result
				decodeErr error
				outcome   string
			)
			if bypass {
				res, decodeErr = s.decodeOnce(ctx, data, scale)
				if res != nil {
					defer res.Release()
				}
				outcome = "bypass"
			} else {
				ent, st, err := s.cache.Do(ctx, j.key, func() (*hetjpeg.Result, error) {
					return s.decodeOnce(ctx, data, scale)
				})
				decodeErr, outcome = err, st.String()
				if ent != nil {
					res = ent.Result()
					defer ent.Release()
				}
			}
			items[j.idx].decodeReply, items[j.idx].Status = s.replyFor(res, decodeErr, outcome, scale, false, timeout)
		}(j)
	}
	wg.Wait()

	reply := batchReply{Count: len(items), Items: items}
	for i := range items {
		switch {
		case items[i].Status == http.StatusOK:
			reply.OK++
			if items[i].Salvaged {
				reply.Salvaged++
			}
		case items[i].Shed:
			reply.Shed++
		default:
			reply.Errors++
		}
	}
	reply.WallMs = float64(time.Since(start).Microseconds()) / 1000
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(reply)
}

// batchPart is one multipart part, buffered; errStatus != 0 marks a
// part rejected before decoding (not a JPEG).
type batchPart struct {
	name      string
	data      []byte
	errMsg    string
	errStatus int
}

// readBatchParts buffers every multipart part under the request-wide
// maxBody budget. status is 0 on success; a non-zero status rejects the
// whole batch (malformed multipart, over budget, too many parts) — a
// merely non-JPEG part only fails itself via errStatus.
func readBatchParts(r *http.Request, maxBody int64) (parts []batchPart, status int, msg string) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Sprintf("multipart/form-data required: %v", err)
	}
	var total int64
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Sprintf("malformed multipart body: %v", err)
		}
		if len(parts) >= maxBatchParts {
			return nil, http.StatusBadRequest, fmt.Sprintf("too many parts (max %d)", maxBatchParts)
		}
		data, err := io.ReadAll(io.LimitReader(p, maxBody-total+1))
		_ = p.Close()
		if err != nil {
			return nil, http.StatusBadRequest, err.Error()
		}
		total += int64(len(data))
		if total > maxBody {
			return nil, http.StatusRequestEntityTooLarge, fmt.Sprintf("batch exceeds %d bytes", maxBody)
		}
		pt := batchPart{name: p.FileName(), data: data}
		if pt.name == "" {
			pt.name = p.FormName()
		}
		if len(data) < 2 || data[0] != 0xFF || data[1] != 0xD8 {
			pt.errMsg = "not a JPEG (missing FF D8 SOI magic)"
			pt.errStatus = http.StatusUnsupportedMediaType
		}
		parts = append(parts, pt)
	}
	if len(parts) == 0 {
		return nil, http.StatusBadRequest, "empty batch: send each JPEG as one multipart part"
	}
	return parts, 0, ""
}
