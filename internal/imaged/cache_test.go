package imaged

// Service-level contract of the decoded-output cache: hits are served
// ahead of admission (a full gate cannot shed them), every response
// names its cache outcome in X-Hetjpeg-Cache, ?cache=bypass opts out,
// and the /batch path applies the same discipline per part with
// intra-batch singleflight.

import (
	"bytes"
	"encoding/json"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"testing"
)

type namedPart struct {
	name string
	data []byte
}

func postBatch(t *testing.T, h http.Handler, query string, parts []namedPart) (*httptest.ResponseRecorder, batchReply) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, p := range parts {
		fw, err := mw.CreateFormFile(p.name, p.name+".jpg")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(p.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/batch?"+query, &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var reply batchReply
	if rr.Code == http.StatusOK {
		if err := json.Unmarshal(rr.Body.Bytes(), &reply); err != nil {
			t.Fatalf("bad batch JSON: %v\n%s", err, rr.Body.String())
		}
	}
	return rr, reply
}

func TestCacheHitHeaderAndReplay(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()
	data := encodeJPEG(t, 64, 48, false)

	rr, first := postDecode(t, h, "scale=1/2", data)
	if rr.Code != http.StatusOK || rr.Header().Get("X-Hetjpeg-Cache") != "miss" {
		t.Fatalf("first request: status %d cache %q, want 200 miss", rr.Code, rr.Header().Get("X-Hetjpeg-Cache"))
	}
	rr, second := postDecode(t, h, "scale=1/2", data)
	if rr.Code != http.StatusOK || rr.Header().Get("X-Hetjpeg-Cache") != "hit" {
		t.Fatalf("repeat request: status %d cache %q, want 200 hit", rr.Code, rr.Header().Get("X-Hetjpeg-Cache"))
	}
	if second.Cache != "hit" || first.Cache != "miss" {
		t.Errorf("reply cache fields %q/%q, want miss/hit", first.Cache, second.Cache)
	}
	if second.Width != first.Width || second.Height != first.Height {
		t.Errorf("hit replayed %dx%d, want %dx%d", second.Width, second.Height, first.Width, first.Height)
	}
	// A different scale of the same bytes is a different resource.
	rr, _ = postDecode(t, h, "scale=1/4", data)
	if rr.Header().Get("X-Hetjpeg-Cache") != "miss" {
		t.Errorf("different scale served %q, want miss", rr.Header().Get("X-Hetjpeg-Cache"))
	}
	if st := s.cache.Stats(); st.Hits != 1 || st.Misses != 2 {
		t.Errorf("cache stats %+v, want 1 hit / 2 misses", st)
	}
}

func TestCacheHitSkipsAdmission(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxQueue = 2
	s := newTestServer(t, cfg)
	h := s.Handler()
	hot := encodeJPEG(t, 64, 48, false)
	cold := encodeJPEG(t, 48, 64, false)

	if rr, _ := postDecode(t, h, "", hot); rr.Code != http.StatusOK {
		t.Fatalf("warm-up decode: status %d", rr.Code)
	}
	// Fill the gate completely: every slot taken, nothing admissible.
	for i := 0; i < cfg.MaxQueue; i++ {
		if !s.gate.admit(1) {
			t.Fatal("setup admit refused")
		}
		defer s.gate.release(1)
	}
	// Fresh work is shed...
	rr, reply := postDecode(t, h, "", cold)
	if rr.Code != http.StatusTooManyRequests || !reply.Shed {
		t.Fatalf("cold request through a full gate: status %d, want 429", rr.Code)
	}
	admittedBefore := s.gate.snapshot().Admitted
	// ...but the resident result is served without touching the gate.
	rr, reply = postDecode(t, h, "", hot)
	if rr.Code != http.StatusOK || rr.Header().Get("X-Hetjpeg-Cache") != "hit" {
		t.Fatalf("hot request through a full gate: status %d cache %q, want 200 hit", rr.Code, rr.Header().Get("X-Hetjpeg-Cache"))
	}
	if reply.Shed {
		t.Error("cache hit marked shed")
	}
	if snap := s.gate.snapshot(); snap.Admitted != admittedBefore {
		t.Errorf("cache hit consumed an admission slot (admitted %d -> %d)", admittedBefore, snap.Admitted)
	}
}

func TestCacheBypassAndDisabled(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()
	data := encodeJPEG(t, 32, 32, false)

	for i := 0; i < 2; i++ {
		rr, _ := postDecode(t, h, "cache=bypass", data)
		if rr.Code != http.StatusOK || rr.Header().Get("X-Hetjpeg-Cache") != "bypass" {
			t.Fatalf("bypass request %d: status %d cache %q", i, rr.Code, rr.Header().Get("X-Hetjpeg-Cache"))
		}
	}
	if st := s.cache.Stats(); st.Bypasses != 2 || st.Entries != 0 {
		t.Errorf("after bypasses: %+v, want 2 bypasses and nothing resident", st)
	}
	// A bypassed decode must not have populated the cache.
	if rr, _ := postDecode(t, h, "", data); rr.Header().Get("X-Hetjpeg-Cache") != "miss" {
		t.Error("bypass populated the cache")
	}

	rr, reply := postDecode(t, h, "cache=nope", data)
	if rr.Code != http.StatusBadRequest || reply.Error == "" {
		t.Errorf("cache=nope: status %d, want 400 with error", rr.Code)
	}

	// CacheBytes < 0 disables caching outright: every request reports
	// bypass and repeats decode again.
	cfg := testConfig(t)
	cfg.CacheBytes = -1
	s2 := newTestServer(t, cfg)
	h2 := s2.Handler()
	for i := 0; i < 2; i++ {
		rr, _ := postDecode(t, h2, "", data)
		if rr.Code != http.StatusOK || rr.Header().Get("X-Hetjpeg-Cache") != "bypass" {
			t.Fatalf("disabled cache request %d: status %d cache %q, want 200 bypass", i, rr.Code, rr.Header().Get("X-Hetjpeg-Cache"))
		}
	}
}

func TestBatchDecodesAndCollapsesDuplicates(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()
	a := encodeJPEG(t, 64, 48, false)
	b := encodeJPEG(t, 48, 64, false)

	rr, reply := postBatch(t, h, "scale=1/2", []namedPart{
		{"a1", a}, {"a2", a}, {"b", b}, {"junk", []byte("not a jpeg")},
	})
	if rr.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rr.Code, rr.Body.String())
	}
	if reply.Count != 4 || reply.OK != 3 || reply.Errors != 1 || reply.Shed != 0 {
		t.Fatalf("batch summary %+v, want count=4 ok=3 errors=1", reply)
	}
	if reply.Items[3].Status != http.StatusUnsupportedMediaType {
		t.Errorf("non-JPEG part status %d, want 415", reply.Items[3].Status)
	}
	for i := 0; i < 2; i++ {
		it := reply.Items[i]
		if it.Status != http.StatusOK || it.Width != 32 || it.Height != 24 {
			t.Errorf("part %d: status %d %dx%d, want 200 32x24", i, it.Status, it.Width, it.Height)
		}
	}
	if reply.Items[2].Width != 24 || reply.Items[2].Height != 32 {
		t.Errorf("part b decoded %dx%d, want 24x32", reply.Items[2].Width, reply.Items[2].Height)
	}
	// The identical parts collapsed: exactly one of them led the decode,
	// the other shared it (wait while in flight, hit if it landed after).
	outcomes := map[string]int{reply.Items[0].Cache: 1}
	outcomes[reply.Items[1].Cache]++
	if outcomes["miss"] != 1 || outcomes["wait"]+outcomes["hit"] != 1 {
		t.Errorf("duplicate parts reported %v, want one miss plus one wait/hit", outcomes)
	}
	if st := s.cache.Stats(); st.Misses != 2 {
		t.Errorf("cache ran %d decodes for the batch, want 2 (a once, b once)", st.Misses)
	}

	// Same batch again: everything resident, zero new decodes.
	_, reply = postBatch(t, h, "scale=1/2", []namedPart{{"a1", a}, {"a2", a}, {"b", b}})
	for i, it := range reply.Items {
		if it.Cache != "hit" {
			t.Errorf("repeat batch part %d outcome %q, want hit", i, it.Cache)
		}
	}
	if st := s.cache.Stats(); st.Misses != 2 {
		t.Errorf("repeat batch re-decoded: %d misses, want still 2", st.Misses)
	}
}

func TestBatchShedSparesResidentParts(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxQueue = 2
	s := newTestServer(t, cfg)
	h := s.Handler()
	hot := encodeJPEG(t, 64, 48, false)
	cold := encodeJPEG(t, 48, 64, false)

	if rr, _ := postDecode(t, h, "", hot); rr.Code != http.StatusOK {
		t.Fatalf("warm-up decode: status %d", rr.Code)
	}
	for i := 0; i < cfg.MaxQueue; i++ {
		if !s.gate.admit(1) {
			t.Fatal("setup admit refused")
		}
		defer s.gate.release(1)
	}

	rr, reply := postBatch(t, h, "", []namedPart{{"hot", hot}, {"cold", cold}})
	if rr.Code != http.StatusOK {
		t.Fatalf("batch status %d", rr.Code)
	}
	if reply.OK != 1 || reply.Shed != 1 {
		t.Fatalf("batch through a full gate: %+v, want the resident part served and the fresh one shed", reply)
	}
	if it := reply.Items[0]; it.Status != http.StatusOK || it.Cache != "hit" {
		t.Errorf("resident part: status %d cache %q, want 200 hit", it.Status, it.Cache)
	}
	if it := reply.Items[1]; it.Status != http.StatusTooManyRequests || !it.Shed || it.RetryAfterSec < 1 {
		t.Errorf("fresh part: %+v, want 429 shed with Retry-After", it)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("shed batch missing Retry-After header")
	}
}

func TestBatchRejectsMalformed(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	h := s.Handler()

	// Not multipart at all.
	req := httptest.NewRequest(http.MethodPost, "/batch", bytes.NewReader(encodeJPEG(t, 16, 16, false)))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("raw body to /batch: status %d, want 400", rr.Code)
	}

	// Empty batch.
	rr, _ = postBatch(t, h, "", nil)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", rr.Code)
	}

	// Wrong method.
	req = httptest.NewRequest(http.MethodGet, "/batch", nil)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /batch: status %d, want 405", rr.Code)
	}
}
