package imaged

import (
	"sync"
	"time"
)

// gate is the admission controller in front of the decode executor: a
// bounded budget of pending requests and pending body bytes. A request
// holds its reservation from admission until its response is written,
// so the service's memory for buffered JPEG input is bounded by
// maxBytes no matter how hard clients push — requests beyond either
// budget are shed immediately (HTTP 429 upstream) instead of queueing
// without bound.
//
// The gate also derives the two softer overload signals: the degrade
// watermark (occupancy past which opted-in requests are served
// 1/8-scale thumbnails) and sustained overload (shedding with no
// admission for overloadAfter, which flips /readyz not-ready so a load
// balancer stops routing here).
type gate struct {
	maxRequests   int
	maxBytes      int64
	watermarkFrac float64
	overloadAfter time.Duration

	mu           sync.Mutex
	pending      int
	pendingBytes int64
	// shedStreak is when continuous shedding began (zero while the gate
	// is admitting): an admission resets it, a shed only starts it.
	shedStreak time.Time

	admitted uint64
	shed     uint64
	degraded uint64
}

func newGate(maxRequests int, maxBytes int64, watermarkFrac float64, overloadAfter time.Duration) *gate {
	return &gate{
		maxRequests:   maxRequests,
		maxBytes:      maxBytes,
		watermarkFrac: watermarkFrac,
		overloadAfter: overloadAfter,
	}
}

// admit reserves one request slot and n body bytes; false means shed.
func (g *gate) admit(n int64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.pending+1 > g.maxRequests || g.pendingBytes+n > g.maxBytes {
		g.shed++
		if g.shedStreak.IsZero() {
			g.shedStreak = time.Now()
		}
		return false
	}
	g.pending++
	g.pendingBytes += n
	g.admitted++
	g.shedStreak = time.Time{}
	return true
}

// release returns a reservation taken by admit.
func (g *gate) release(n int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pending--
	g.pendingBytes -= n
}

// pendingByteCount reports the bytes currently held by admitted
// requests — the queue the Retry-After estimate prices out.
func (g *gate) pendingByteCount() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pendingBytes
}

// pastWatermark reports whether occupancy (requests or bytes) crossed
// the degrade watermark fraction of its budget.
func (g *gate) pastWatermark() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return float64(g.pending) >= g.watermarkFrac*float64(g.maxRequests) ||
		float64(g.pendingBytes) >= g.watermarkFrac*float64(g.maxBytes)
}

// pastWatermarkExcluding is pastWatermark as seen by an admitted
// request deciding whether to degrade itself: its own reservation (one
// slot, n bytes) is excluded, so a lone request on an idle server never
// counts itself as queue pressure.
func (g *gate) pastWatermarkExcluding(n int64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return float64(g.pending-1) >= g.watermarkFrac*float64(g.maxRequests) ||
		float64(g.pendingBytes-n) >= g.watermarkFrac*float64(g.maxBytes)
}

// noteDegraded counts one request served at 1/8 scale under overload.
func (g *gate) noteDegraded() {
	g.mu.Lock()
	g.degraded++
	g.mu.Unlock()
}

// overloaded reports sustained overload: the gate has been shedding
// with no successful admission for at least overloadAfter.
func (g *gate) overloaded(now time.Time) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return !g.shedStreak.IsZero() && now.Sub(g.shedStreak) >= g.overloadAfter
}

// gateSnapshot is the /statz view of the gate.
type gateSnapshot struct {
	Pending       int    `json:"pending"`
	PendingBytes  int64  `json:"pendingBytes"`
	MaxRequests   int    `json:"maxRequests"`
	MaxQueueBytes int64  `json:"maxQueueBytes"`
	Admitted      uint64 `json:"admitted"`
	Shed          uint64 `json:"shed"`
	Degraded      uint64 `json:"degraded"`
}

func (g *gate) snapshot() gateSnapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	return gateSnapshot{
		Pending:       g.pending,
		PendingBytes:  g.pendingBytes,
		MaxRequests:   g.maxRequests,
		MaxQueueBytes: g.maxBytes,
		Admitted:      g.admitted,
		Shed:          g.shed,
		Degraded:      g.degraded,
	}
}
