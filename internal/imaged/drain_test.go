package imaged

// Graceful-drain contract on a real TCP listener: a SIGTERM-style
// shutdown (StartDrain → http.Server.Shutdown → Server.Close) while
// requests are mid-decode must complete every admitted request — zero
// dropped responses — and refuse late arrivals with a typed 503.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDrainZeroDroppedResponses(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 4
	s := newTestServer(t, cfg)

	// Count handler entries so the shutdown provably lands while every
	// client is in flight, not before or after.
	var entered atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered.Add(1)
		s.Handler().ServeHTTP(w, r)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	url := "http://" + ln.Addr().String() + "/decode"

	data := encodeJPEG(t, 1024, 1024, true)
	const clients = 6
	type outcome struct {
		status   int
		draining bool
		err      error
	}
	outcomes := make([]outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(url, "image/jpeg", bytes.NewReader(data))
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			defer resp.Body.Close()
			var reply decodeReply
			raw, _ := io.ReadAll(resp.Body)
			_ = json.Unmarshal(raw, &reply)
			outcomes[i] = outcome{status: resp.StatusCode, draining: reply.Draining}
		}(i)
	}

	// Wait until every client's request reached a handler, then pull the
	// plug mid-decode.
	deadline := time.Now().Add(10 * time.Second)
	for entered.Load() < clients && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if entered.Load() < clients {
		t.Fatalf("only %d/%d requests entered handlers", entered.Load(), clients)
	}
	s.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	s.Close()
	wg.Wait()

	completed, refused := 0, 0
	for i, o := range outcomes {
		switch {
		case o.err != nil:
			t.Errorf("client %d: dropped response: %v", i, o.err)
		case o.status == http.StatusOK:
			completed++
		case o.status == http.StatusServiceUnavailable && o.draining:
			refused++
		default:
			t.Errorf("client %d: status %d draining=%v, want 200 or 503-draining", i, o.status, o.draining)
		}
	}
	if completed+refused != clients {
		t.Errorf("%d completed + %d refused != %d clients", completed, refused, clients)
	}
	if completed == 0 {
		t.Error("drain completed zero in-flight requests — everything was refused")
	}

	// A request after the drain finished must be refused at the TCP or
	// HTTP layer, never half-answered.
	if resp, err := http.Post(url, "image/jpeg", bytes.NewReader(data)); err == nil {
		resp.Body.Close()
		t.Error("listener still accepting after Shutdown returned")
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
}
