// Package rescache is a content-addressed cache of finished decode
// results for the gallery/web workload the paper motivates: the same
// hot images requested over and over at a handful of scales. Entries
// are keyed on (SHA-256 of the JPEG bytes, decode scale, salvage flag)
// — a salvaged partial result can never be served to a strict request,
// and a thumbnail never stands in for a full decode — and bounded by a
// byte budget with LRU eviction.
//
// Two properties make it safe in front of the pooled decoder:
//
//   - Entries are refcounted. The cache holds one reference while the
//     entry is resident; every Get/Do hands the caller another. The
//     underlying Result's pooled slabs go back to internal/pool only
//     when the LAST reference is released, so eviction can never free
//     pixels a response is still reading.
//
//   - Concurrent identical misses are collapsed (singleflight): the
//     first caller decodes, the other N-1 wait on the flight and share
//     the freshly inserted entry. N requests cost one decode.
//
// The cache stores only the image and its decode metadata: the leader's
// Result has its Frame slabs (coefficients, sample planes) returned to
// the pool at insert time, so a resident entry costs its RGB pixels,
// not 3-4x that.
package rescache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"errors"
	"sync"

	"hetjpeg/internal/core"
	"hetjpeg/internal/jpegcodec"
)

// Key addresses one cacheable decode outcome. Scale is normalized
// (the zero value and Scale1 are the same key) and Salvage records
// whether the decode ran in salvage mode — strict and salvage results
// are never interchangeable even for identical bytes.
type Key struct {
	Hash    [sha256.Size]byte
	Scale   jpegcodec.Scale
	Salvage bool
}

// KeyFor builds the canonical key for a request: content hash of the
// exact JPEG bytes, the normalized decode scale, and the salvage flag.
func KeyFor(data []byte, scale jpegcodec.Scale, salvage bool) Key {
	if scale == 0 {
		scale = jpegcodec.Scale1
	}
	return Key{Hash: sha256.Sum256(data), Scale: scale, Salvage: salvage}
}

// Status classifies how a request met the cache.
type Status int

const (
	// Hit: the entry was resident; no decode, no wait.
	Hit Status = iota
	// Miss: this caller was the flight leader and ran the decode.
	Miss
	// Wait: an identical decode was already in flight; this caller
	// waited for the leader and shares its entry.
	Wait
)

// String names the status the way the X-Hetjpeg-Cache header spells it.
func (s Status) String() string {
	switch s {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Wait:
		return "wait"
	}
	return "unknown"
}

// Entry is one resident decode result plus the caller's reference to
// it. Result() stays valid — pixels resident, never returned to the
// slab pools — until Release(); releasing twice panics, as does
// touching the cache's accounting after it.
type Entry struct {
	c   *Cache
	key Key
	res *core.Result
	// err is nil or the decode's ErrPartialData-wrapping salvage error:
	// the cached result replays exactly what the original decode
	// returned, degraded-pixels disclaimer included.
	err  error
	size int64

	// Guarded by c.mu: the reference count (cache residency counts as
	// one) and the LRU list element (nil once evicted).
	refs int
	elem *list.Element
}

// Result returns the cached decode. The pointer is shared between all
// current reference holders; treat it as read-only.
func (e *Entry) Result() *core.Result { return e.res }

// Err returns the error the original decode carried alongside its
// result (nil, or a salvage error wrapping ErrPartialData).
func (e *Entry) Err() error { return e.err }

// Size is the entry's accounted resident bytes.
func (e *Entry) Size() int64 { return e.size }

// Release drops the caller's reference. When the last reference goes —
// the caller's, a waiter's, or the cache's own on eviction — the
// result's pooled slabs are returned. Releasing more than once panics:
// it would hand the same slab to the pool twice.
func (e *Entry) Release() {
	e.c.mu.Lock()
	if e.refs <= 0 {
		e.c.mu.Unlock()
		panic("rescache: Entry released after its last reference")
	}
	e.refs--
	free := e.refs == 0
	e.c.mu.Unlock()
	if free {
		// No reference can resurrect the entry (it left the LRU map
		// before its cache reference was dropped), so this is the one
		// true release of the pooled buffers.
		e.res.Release()
	}
}

// flight is one in-progress decode other callers can latch onto.
type flight struct {
	done    chan struct{}
	waiters int
	// Set before done is closed; ent carries one pre-granted reference
	// per waiter registered at completion time.
	ent *Entry
	err error
}

// Stats is a point-in-time snapshot of the cache's counters, the basis
// of the /metrics cache family.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Waits     uint64
	Bypasses  uint64
	Evictions uint64
	// Entries and Bytes describe current residency; Capacity the budget.
	Entries  int
	Bytes    int64
	Capacity int64
}

// Cache is the byte-budgeted LRU over finished decode results. The
// zero value is not usable; construct with New.
type Cache struct {
	max int64

	mu      sync.Mutex
	ll      *list.List // front = most recently used; values are *Entry
	entries map[Key]*Entry
	flights map[Key]*flight
	bytes   int64

	hits      uint64
	misses    uint64
	waits     uint64
	bypasses  uint64
	evictions uint64
}

// New builds a cache with the given byte budget. A non-positive budget
// returns nil; a nil *Cache is a valid always-miss, never-store cache,
// so callers can wire the knob straight through.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{
		max:     maxBytes,
		ll:      list.New(),
		entries: make(map[Key]*Entry),
		flights: make(map[Key]*flight),
	}
}

// Get is the hit-only probe: it returns a retained entry when resident
// (the caller must Release it) and nil on a miss, counting nothing for
// misses so a front end can probe before paying for admission and still
// let Do classify the request's true outcome.
func (c *Cache) Get(k Key) *Entry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ent := c.entries[k]
	if ent == nil {
		return nil
	}
	c.hits++
	ent.refs++
	c.ll.MoveToFront(ent.elem)
	return ent
}

// Do resolves one request through the cache: a resident entry is a Hit,
// joining an in-flight identical decode is a Wait, and otherwise this
// caller leads the flight (Miss), runs decode, and publishes the result
// to the cache and every waiter. On success the returned entry is
// retained for the caller (Release when done) and err replays the
// decode's salvage error if any. A failed decode (nil result) is not
// cached; the leader's error is shared with all waiters.
//
// A waiter whose ctx expires before the leader finishes gets ctx's
// error; the flight itself is never cancelled by a waiter.
func (c *Cache) Do(ctx context.Context, k Key, decode func() (*core.Result, error)) (*Entry, Status, error) {
	if c == nil {
		res, err := decode()
		if res == nil {
			return nil, Miss, err
		}
		// Cacheless operation still needs a refcounted handle so the
		// caller's release path is uniform; the "cache" reference that
		// normally pins residency simply doesn't exist.
		ent := &Entry{c: disabledCache, res: res, err: err, size: resultBytes(res), refs: 1}
		return ent, Miss, err
	}

	c.mu.Lock()
	if ent := c.entries[k]; ent != nil {
		c.hits++
		ent.refs++
		c.ll.MoveToFront(ent.elem)
		c.mu.Unlock()
		return ent, Hit, ent.err
	}
	if f := c.flights[k]; f != nil {
		f.waiters++
		c.waits++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.ent, Wait, f.firstError()
		case <-ctx.Done():
			c.mu.Lock()
			if c.flights[k] != f {
				// The flight completed before we could deregister, so
				// a reference was already granted in our name at
				// completion — take the result rather than leak it.
				c.mu.Unlock()
				<-f.done
				return f.ent, Wait, f.firstError()
			}
			f.waiters--
			c.mu.Unlock()
			return nil, Wait, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.misses++
	c.mu.Unlock()

	res, err := c.lead(k, f, decode)

	c.mu.Lock()
	delete(c.flights, k)
	if res == nil {
		f.err = err
		c.mu.Unlock()
		close(f.done)
		return nil, Miss, err
	}
	// Shed the entropy-side slabs before accounting: a resident entry
	// costs its pixels and metadata, not the whole decode working set.
	if res.Frame != nil {
		res.Frame.Release()
	}
	ent := &Entry{
		c:    c,
		key:  k,
		res:  res,
		err:  err,
		size: resultBytes(res),
		// cache residency + the leader + every waiter registered before
		// the flight closed, each of whom owns a pre-granted reference.
		refs: 2 + f.waiters,
	}
	ent.elem = c.ll.PushFront(ent)
	c.entries[k] = ent
	c.bytes += ent.size
	f.ent = ent
	evicted := c.evictOverBudgetLocked(ent)
	c.mu.Unlock()
	close(f.done)
	// Bounded pool-return sweep, not decode work: it must run even (and
	// especially) when ctx is already cancelled, or evictees leak.
	for _, old := range evicted { //hetlint:nopoll
		old.res.Release()
	}
	return ent, Miss, err
}

// lead runs the leader's decode with flight cleanup on panic: the
// flight is failed and removed so waiters get an error instead of
// blocking on a decode that no longer exists, then the panic continues
// to the caller's recovery middleware.
func (c *Cache) lead(k Key, f *flight, decode func() (*core.Result, error)) (res *core.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			c.mu.Lock()
			delete(c.flights, k)
			f.err = errors.New("rescache: decode panicked")
			c.mu.Unlock()
			close(f.done)
			panic(p)
		}
	}()
	return decode()
}

// NoteBypass counts a request that declined the cache (?cache=bypass).
func (c *Cache) NoteBypass() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.bypasses++
	c.mu.Unlock()
}

// firstError returns the error shared by a finished flight.
func (f *flight) firstError() error { return f.err }

// evictOverBudgetLocked evicts least-recently-used entries until the
// budget holds, never evicting keep (the entry just inserted: a result
// larger than the whole budget must still serve its own requesters).
// Entries whose refcount drops to zero are returned for release outside
// the lock — Result.Release walks slab pools and needs no cache state.
func (c *Cache) evictOverBudgetLocked(keep *Entry) []*Entry {
	var free []*Entry
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*Entry)
		if ent == keep {
			// keep is by construction at the front; reaching it means
			// it is the only entry left.
			break
		}
		c.ll.Remove(back)
		ent.elem = nil
		delete(c.entries, ent.key)
		c.bytes -= ent.size
		c.evictions++
		ent.refs--
		if ent.refs == 0 {
			free = append(free, ent)
		}
	}
	return free
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Waits:     c.waits,
		Bypasses:  c.bypasses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Capacity:  c.max,
	}
}

// resultBytes is the accounted size of a cached result: its pixels plus
// a fixed overhead for the structs and salvage report.
func resultBytes(res *core.Result) int64 {
	const overhead = 512
	n := int64(overhead)
	if res.Image != nil {
		n += int64(len(res.Image.Pix))
	}
	return n
}

// disabledCache backs entries handed out by a nil cache: a real lock
// for the refcount, no residency, no budget.
var disabledCache = &Cache{}
