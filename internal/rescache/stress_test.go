package rescache

// The -race stress suite for the cache's two load-bearing promises:
//
//   - singleflight: N concurrent identical requests cost exactly one
//     underlying decode — never two leaders for the same key while a
//     flight or a resident entry exists;
//   - refcount safety: eviction under churn never frees pixels a
//     holder is still reading (the race detector sees the pool's
//     clear() collide with the reader if it ever does), and the
//     release accounting never goes negative.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hetjpeg/internal/core"
	"hetjpeg/internal/jpegcodec"
)

// TestSingleflightOneDecodePerKey fires 8 goroutines at one cold key:
// exactly one decode may run, the other seven must share it as waiters
// or hits, and every returned entry reads valid pixels.
func TestSingleflightOneDecodePerKey(t *testing.T) {
	c := New(1 << 20)
	k := keyN(0, jpegcodec.Scale1, false)

	var decodes, inFlight atomic.Int32
	release := make(chan struct{})
	decode := func() (*core.Result, error) {
		if inFlight.Add(1) != 1 {
			t.Error("two decodes in flight for one key")
		}
		decodes.Add(1)
		<-release // hold the flight open so every goroutine piles up
		inFlight.Add(-1)
		return fakeResult(32, 32), nil
	}

	const goroutines = 8
	var started, wg sync.WaitGroup
	started.Add(goroutines)
	statuses := make([]Status, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			ent, st, err := c.Do(context.Background(), k, decode)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			statuses[i] = st
			if px := ent.Result().Image.Pix; len(px) != 32*32*3 {
				t.Errorf("goroutine %d: bad pixels (%d bytes)", i, len(px))
			}
			ent.Release()
		}(i)
	}
	started.Wait()
	close(release)
	wg.Wait()

	if n := decodes.Load(); n != 1 {
		t.Errorf("%d decodes for 8 concurrent identical requests, want 1", n)
	}
	misses := 0
	for _, st := range statuses {
		if st == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d flight leaders, want exactly 1 (statuses %v)", misses, statuses)
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits+st.Waits != goroutines-1 {
		t.Errorf("stats %+v, want 1 miss and %d shared outcomes", st, goroutines-1)
	}
}

// TestStressMixedOpsColludingKeys is the full -race churn: 8 goroutines
// x mixed hit/miss/bypass/evict traffic over a colliding key space and
// a budget small enough to force constant eviction. Per (hash, scale)
// generation — the life of one resident entry or flight — at most one
// decode may run; every reader touches its pixels so a premature pool
// release is a detected race; the final drain asserts the accounting
// closed clean.
func TestStressMixedOpsColludingKeys(t *testing.T) {
	entrySize := resultBytes(fakeResult(24, 24))
	c := New(3 * entrySize) // 8 keys through a 3-entry budget: constant eviction

	type keyState struct {
		inFlight atomic.Int32 // decodes running now: must never exceed 1
		decodes  atomic.Int32
	}
	const (
		goroutines = 8
		keys       = 8
		opsPerG    = 400
	)
	states := make([]*keyState, keys)
	ks := make([]Key, keys)
	for i := range states {
		states[i] = &keyState{}
		// Two hashes x two scales x salvage on/off: collisions on every
		// axis of the key.
		ks[i] = KeyFor(
			[]byte(fmt.Sprintf("hot-image-%d", i%2)),
			[]jpegcodec.Scale{jpegcodec.Scale1, jpegcodec.Scale8}[(i/2)%2],
			i >= 4,
		)
	}
	// Dedup aliased keys so per-key accounting is per *distinct* key.
	index := map[Key]int{}
	for i, k := range ks {
		if j, ok := index[k]; ok {
			states[i] = states[j]
		} else {
			index[k] = i
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 9176))
			for op := 0; op < opsPerG; op++ {
				i := rng.Intn(keys)
				st := states[i]
				switch rng.Intn(10) {
				case 0: // bypass: decode outside the cache entirely
					c.NoteBypass()
					res := fakeResult(24, 24)
					_ = res.Image.Pix[0]
					res.Release()
				case 1: // probe: hit-or-nothing
					if ent := c.Get(ks[i]); ent != nil {
						_ = ent.Result().Image.Pix[0]
						ent.Release()
					}
				default: // the common path: Do with a guarded decode
					ent, _, err := c.Do(context.Background(), ks[i], func() (*core.Result, error) {
						if st.inFlight.Add(1) != 1 {
							t.Errorf("key %d: concurrent decodes in one generation", i)
						}
						st.decodes.Add(1)
						res := fakeResult(24, 24)
						st.inFlight.Add(-1)
						return res, nil
					})
					if err != nil {
						t.Errorf("Do: %v", err)
						continue
					}
					// Read through the reference: if eviction freed the
					// slab early, the pool's clear() races this read.
					px := ent.Result().Image.Pix
					_ = px[0] + px[len(px)-1]
					ent.Release()
				}
			}
		}(g)
	}
	wg.Wait()

	stats := c.Stats()
	var totalDecodes int32
	for k, i := range index {
		n := states[i].decodes.Load()
		totalDecodes += n
		if n == 0 {
			t.Errorf("key %v never decoded", k.Scale)
		}
	}
	if uint64(totalDecodes) != stats.Misses {
		t.Errorf("decode count %d != miss count %d: a miss ran no decode or a decode ran twice", totalDecodes, stats.Misses)
	}
	if stats.Bytes > 3*entrySize || stats.Entries > 3 {
		t.Errorf("budget violated after churn: %+v", stats)
	}
	if stats.Evictions == 0 {
		t.Error("stress never evicted; budget too loose to test anything")
	}
	// Drain: every resident entry must still release cleanly to zero.
	for k := range index {
		if ent := c.Get(k); ent != nil {
			ent.Release()
		}
	}
}
