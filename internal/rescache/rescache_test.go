package rescache

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"hetjpeg/internal/core"
	"hetjpeg/internal/jpegcodec"
)

// fakeResult builds a Result shaped like a finished decode: a pooled
// pixel buffer whose Release path is the real one.
func fakeResult(w, h int) *core.Result {
	return &core.Result{Image: jpegcodec.NewRGBImage(w, h)}
}

func keyN(n int, scale jpegcodec.Scale, salvage bool) Key {
	return KeyFor([]byte(fmt.Sprintf("image-%d", n)), scale, salvage)
}

func mustDo(t *testing.T, c *Cache, k Key, w, h int) (*Entry, Status) {
	t.Helper()
	ent, st, err := c.Do(context.Background(), k, func() (*core.Result, error) {
		return fakeResult(w, h), nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if ent == nil {
		t.Fatal("Do returned nil entry without error")
	}
	return ent, st
}

func TestKeyForIsolatesScaleAndSalvage(t *testing.T) {
	data := []byte("the same jpeg bytes")
	base := KeyFor(data, jpegcodec.Scale1, false)
	if KeyFor(data, jpegcodec.Scale1, false) != base {
		t.Error("KeyFor not deterministic")
	}
	if KeyFor(data, 0, false) != base {
		t.Error("zero scale not normalized to Scale1")
	}
	if KeyFor(data, jpegcodec.Scale1, true) == base {
		t.Error("salvage flag not part of the key: a salvaged partial result could serve a strict request")
	}
	for _, s := range []jpegcodec.Scale{jpegcodec.Scale2, jpegcodec.Scale4, jpegcodec.Scale8} {
		if KeyFor(data, s, false) == base {
			t.Errorf("scale %v not part of the key", s)
		}
	}
	if KeyFor([]byte("other bytes"), jpegcodec.Scale1, false) == base {
		t.Error("content not part of the key")
	}
}

func TestHitMissAndStats(t *testing.T) {
	c := New(1 << 20)
	k := keyN(1, jpegcodec.Scale1, false)

	if ent := c.Get(k); ent != nil {
		t.Fatal("Get on empty cache returned an entry")
	}
	ent, st := mustDo(t, c, k, 16, 16)
	if st != Miss {
		t.Fatalf("first Do status = %v, want Miss", st)
	}
	ent.Release()

	ent2 := c.Get(k)
	if ent2 == nil {
		t.Fatal("Get after Do missed")
	}
	if ent2.Result().Image.W != 16 {
		t.Errorf("cached width %d, want 16", ent2.Result().Image.W)
	}
	ent3, st := mustDo(t, c, k, 16, 16)
	if st != Hit {
		t.Fatalf("second Do status = %v, want Hit", st)
	}
	ent2.Release()
	ent3.Release()
	c.NoteBypass()

	stats := c.Stats()
	if stats.Hits != 2 || stats.Misses != 1 || stats.Bypasses != 1 || stats.Entries != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss / 1 bypass / 1 entry", stats)
	}
	if stats.Bytes <= 0 || stats.Bytes > stats.Capacity {
		t.Errorf("resident bytes %d out of range (capacity %d)", stats.Bytes, stats.Capacity)
	}
}

func TestLRUEvictionByByteBudget(t *testing.T) {
	// Each 32x32 entry costs 3072 + overhead bytes; budget fits two.
	entrySize := resultBytes(fakeResult(32, 32))
	c := New(2 * entrySize)

	for i := 0; i < 2; i++ {
		ent, _ := mustDo(t, c, keyN(i, jpegcodec.Scale1, false), 32, 32)
		ent.Release()
	}
	// Touch entry 0 so entry 1 is the LRU victim.
	if ent := c.Get(keyN(0, jpegcodec.Scale1, false)); ent == nil {
		t.Fatal("entry 0 missing")
	} else {
		ent.Release()
	}
	ent, _ := mustDo(t, c, keyN(2, jpegcodec.Scale1, false), 32, 32)
	ent.Release()

	if c.Get(keyN(1, jpegcodec.Scale1, false)) != nil {
		t.Error("LRU entry 1 survived eviction")
	}
	for _, want := range []int{0, 2} {
		ent := c.Get(keyN(want, jpegcodec.Scale1, false))
		if ent == nil {
			t.Errorf("entry %d evicted, want resident", want)
			continue
		}
		ent.Release()
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction / 2 entries", st)
	}
}

// TestEvictionSparesHeldReferences pins the refcount contract: evicting
// an entry a reader still holds must not free its pixels; the pixels go
// back to the pool only at the reader's Release.
func TestEvictionSparesHeldReferences(t *testing.T) {
	entrySize := resultBytes(fakeResult(32, 32))
	c := New(entrySize) // budget of exactly one entry

	held, _ := mustDo(t, c, keyN(0, jpegcodec.Scale1, false), 32, 32)
	// Insert a second entry: the first is evicted while still held.
	ent, _ := mustDo(t, c, keyN(1, jpegcodec.Scale1, false), 32, 32)
	ent.Release()

	if c.Get(keyN(0, jpegcodec.Scale1, false)) != nil {
		t.Fatal("evicted entry still resident")
	}
	if held.Result().Image.Pix == nil {
		t.Fatal("eviction freed pixels a reference was still reading")
	}
	held.Release()
	if held.Result().Image.Pix != nil {
		t.Error("last Release did not return the pixel slab")
	}
}

// TestReleaseAfterFreePanics pins the use-after-release guard: once the
// last reference is gone and the slabs went back to the pool, another
// Release must panic instead of double-freeing. (While an entry is
// still cache-resident, one holder's double release is indistinguishable
// from another holder's legitimate one — the guard is at zero.)
func TestReleaseAfterFreePanics(t *testing.T) {
	var c *Cache // disabled cache: the single reference is the caller's
	ent, _, err := c.Do(context.Background(), keyN(0, jpegcodec.Scale1, false), func() (*core.Result, error) {
		return fakeResult(8, 8), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ent.Release()
	defer func() {
		if recover() == nil {
			t.Error("Release after free did not panic")
		}
	}()
	ent.Release()
}

func TestFailedDecodeIsNotCached(t *testing.T) {
	c := New(1 << 20)
	k := keyN(0, jpegcodec.Scale1, false)
	boom := errors.New("corrupt stream")
	ent, st, err := c.Do(context.Background(), k, func() (*core.Result, error) {
		return nil, boom
	})
	if ent != nil || st != Miss || !errors.Is(err, boom) {
		t.Fatalf("failed Do = (%v, %v, %v), want (nil, Miss, boom)", ent, st, err)
	}
	if c.Get(k) != nil {
		t.Error("failed decode was cached")
	}
	// The key is retryable: the next Do runs a fresh decode.
	ent2, st2 := mustDo(t, c, k, 8, 8)
	if st2 != Miss {
		t.Errorf("retry after failure status = %v, want Miss", st2)
	}
	ent2.Release()
}

// TestSalvagedErrorReplayed pins that a cached salvage-mode result
// replays its ErrPartialData-wrapping error to every hit, so the
// degraded-pixels disclaimer is never lost to caching.
func TestSalvagedErrorReplayed(t *testing.T) {
	c := New(1 << 20)
	k := keyN(0, jpegcodec.Scale1, true)
	partial := fmt.Errorf("salvaged: %w", jpegcodec.ErrPartialData)
	ent, st, err := c.Do(context.Background(), k, func() (*core.Result, error) {
		return fakeResult(8, 8), partial
	})
	if st != Miss || !errors.Is(err, jpegcodec.ErrPartialData) {
		t.Fatalf("salvaged Do = (%v, %v), want Miss + ErrPartialData", st, err)
	}
	ent.Release()
	ent2, st2, err2 := c.Do(context.Background(), k, func() (*core.Result, error) {
		t.Fatal("hit ran a decode")
		return nil, nil
	})
	if st2 != Hit || !errors.Is(err2, jpegcodec.ErrPartialData) {
		t.Errorf("salvaged hit = (%v, %v), want Hit + ErrPartialData", st2, err2)
	}
	if ent2.Err() == nil {
		t.Error("entry lost its salvage error")
	}
	ent2.Release()
}

func TestNilCacheIsBypass(t *testing.T) {
	var c *Cache // New(0) returns nil: caching disabled
	if New(0) != nil {
		t.Fatal("New(0) should disable the cache")
	}
	if c.Get(keyN(0, jpegcodec.Scale1, false)) != nil {
		t.Error("nil cache Get returned an entry")
	}
	c.NoteBypass()
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v, want zero", st)
	}
	decodes := 0
	for i := 0; i < 2; i++ {
		ent, st, err := c.Do(context.Background(), keyN(0, jpegcodec.Scale1, false), func() (*core.Result, error) {
			decodes++
			return fakeResult(8, 8), nil
		})
		if err != nil || st != Miss {
			t.Fatalf("nil cache Do = (%v, %v)", st, err)
		}
		if ent.Result().Image.Pix == nil {
			t.Fatal("nil cache entry unusable")
		}
		ent.Release()
		if ent.Result().Image.Pix != nil {
			t.Fatal("nil cache Release did not free the result")
		}
	}
	if decodes != 2 {
		t.Errorf("nil cache ran %d decodes, want 2 (no residency)", decodes)
	}
}

// TestOversizedEntryStillServes pins the keep-guard: a result larger
// than the whole budget is still handed to its requesters (and evicted
// as soon as the next insert needs room).
func TestOversizedEntryStillServes(t *testing.T) {
	c := New(64) // smaller than any real entry
	ent, st := mustDo(t, c, keyN(0, jpegcodec.Scale1, false), 64, 64)
	if st != Miss || ent.Result().Image.Pix == nil {
		t.Fatalf("oversized insert unusable (status %v)", st)
	}
	ent.Release()
	ent2, _ := mustDo(t, c, keyN(1, jpegcodec.Scale1, false), 64, 64)
	ent2.Release()
	if c.Get(keyN(0, jpegcodec.Scale1, false)) != nil {
		t.Error("oversized entry survived the next insert")
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{Hit: "hit", Miss: "miss", Wait: "wait", Status(99): "unknown"} {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}
