package rescache

// FuzzCacheKeyIsolation is the gate on the cache's safety-critical
// keying property: the key must separate every axis that changes what a
// response means — the exact JPEG bytes (a corrupt variant of a clean
// image is a different resource), the decode scale (a thumbnail must
// never stand in for a full decode) and the salvage flag (a salvaged
// partial result must never be served to a strict request, nor a strict
// result short-circuit a salvage request's report).

import (
	"bytes"
	"testing"

	"hetjpeg/internal/jpegcodec"
)

var fuzzScales = []jpegcodec.Scale{jpegcodec.Scale1, jpegcodec.Scale2, jpegcodec.Scale4, jpegcodec.Scale8}

func FuzzCacheKeyIsolation(f *testing.F) {
	// Seeds: clean/corrupt byte pairs in the shapes the service sees —
	// a JPEG-ish prefix, a truncation, a single flipped byte, and the
	// degenerate tiny inputs.
	f.Add([]byte{0xFF, 0xD8, 0xFF, 0xE0, 0x00, 0x10, 'J', 'F', 'I', 'F'}, uint16(4), uint8(1))
	f.Add([]byte{0xFF, 0xD8, 0xFF, 0xD9}, uint16(2), uint8(0))
	f.Add([]byte("not a jpeg at all"), uint16(0), uint8(3))
	f.Add([]byte{}, uint16(0), uint8(0))
	f.Add(bytes.Repeat([]byte{0xA5}, 64), uint16(63), uint8(2))

	f.Fuzz(func(t *testing.T, clean []byte, pos uint16, scaleSel uint8) {
		// Derive the corrupt twin: one byte flipped (or one byte
		// appended when empty), guaranteeing clean != corrupt.
		corrupt := append([]byte(nil), clean...)
		if len(corrupt) == 0 {
			corrupt = []byte{0x00}
		} else {
			corrupt[int(pos)%len(corrupt)] ^= 0xFF
		}
		scale := fuzzScales[int(scaleSel)%len(fuzzScales)]

		for _, salvage := range []bool{false, true} {
			ck := KeyFor(clean, scale, salvage)
			// Determinism: same inputs, same key.
			if KeyFor(clean, scale, salvage) != ck {
				t.Fatal("KeyFor not deterministic")
			}
			// Content isolation: the corrupt twin gets its own key, so
			// a salvaged decode of it can never answer for the clean
			// bytes (and vice versa).
			if KeyFor(corrupt, scale, salvage) == ck {
				t.Fatalf("clean and corrupt bytes share a key (len %d, salvage %v)", len(clean), salvage)
			}
			// Salvage isolation: the same bytes decoded strictly and in
			// salvage mode are different resources.
			if KeyFor(clean, scale, !salvage) == ck {
				t.Fatal("salvage flag not isolated in the key")
			}
			// Scale isolation: every other scale keys differently, and
			// the zero value aliases Scale1 only.
			for _, other := range fuzzScales {
				same := other == scale
				if (KeyFor(clean, other, salvage) == ck) != same {
					t.Fatalf("scale isolation broken: %v vs %v", other, scale)
				}
			}
			if (KeyFor(clean, 0, salvage) == ck) != (scale == jpegcodec.Scale1) {
				t.Fatal("zero scale must alias Scale1 and nothing else")
			}
		}
	})
}
