// Package gpusim implements the simulated OpenCL-programmable GPU that
// substitutes for the paper's physical devices (no GPU API is available
// from pure Go). The simulation is split in two concerns:
//
//   - Correctness: kernels execute for real. An ND-range is decomposed
//     into work-groups; a work-group's work-items run in lock-step phases
//     with an implicit barrier between phases (the SIMT model), sharing a
//     local-memory array. Work-groups execute concurrently on a host
//     goroutine pool. Every decoder mode therefore produces bit-exact
//     pixels.
//
//   - Timing: each kernel and transfer reports a virtual-time cost
//     derived from the calibrated platform model (arithmetic throughput,
//     global-memory bandwidth, launch overhead, PCIe latency/bandwidth).
//     Schedulers consume only these costs, reproducing the paper's
//     performance landscape deterministically.
package gpusim

import (
	"fmt"
	"runtime"
	"sync"

	"hetjpeg/internal/platform"
	"hetjpeg/internal/pool"
)

// WarpSize is the SIMT issue width (NVIDIA terminology, Section 4.1).
const WarpSize = 32

// Device is one simulated GPU.
type Device struct {
	Spec    *platform.Spec
	workers int
}

// New creates a device simulated with up to GOMAXPROCS host workers.
func New(spec *platform.Spec) *Device {
	return NewWithWorkers(spec, 0)
}

// NewWithWorkers creates a device simulated with up to n host workers
// (n <= 0 means GOMAXPROCS). Schedulers running several decodes
// concurrently pass a per-decode share of a host-wide budget, so N
// in-flight images do not contend on N×GOMAXPROCS device goroutines.
// The worker count affects host wall-clock only; kernel results and
// virtual costs are identical for any n.
func NewWithWorkers(spec *platform.Spec, n int) *Device {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Device{Spec: spec, workers: n}
}

// Device buffers are the other large per-decode allocation besides the
// host-side whole-image buffers; they recycle through the same kind of
// slab pool (a real device would likewise reuse cl_mem allocations
// across decodes rather than re-allocate device memory per image).
var (
	coefSlabs pool.Slab[int16]
	byteSlabs pool.Slab[byte]
)

// CoefBuffer is a device-resident buffer of DCT coefficients (int16 on
// the wire, as in the paper's `short` buffers).
type CoefBuffer struct{ Data []int16 }

// ByteBuffer is a device-resident buffer of samples or RGB bytes.
type ByteBuffer struct{ Data []byte }

// NewCoefBuffer allocates a device coefficient buffer (zeroed).
//
//hetlint:transfer ownership moves to the CoefBuffer; Free puts it back
func (d *Device) NewCoefBuffer(n int) *CoefBuffer { return &CoefBuffer{Data: coefSlabs.Get(n)} }

// NewByteBuffer allocates a device byte buffer (zeroed).
//
//hetlint:transfer ownership moves to the ByteBuffer; Free puts it back
func (d *Device) NewByteBuffer(n int) *ByteBuffer { return &ByteBuffer{Data: byteSlabs.Get(n)} }

// Free returns the buffer's backing slab to the device allocator. The
// buffer must not be used afterwards; freeing is optional.
func (b *CoefBuffer) Free() {
	if b != nil && b.Data != nil {
		coefSlabs.Put(b.Data)
		b.Data = nil
	}
}

// Free returns the buffer's backing slab to the device allocator. The
// buffer must not be used afterwards; freeing is optional.
func (b *ByteBuffer) Free() {
	if b != nil && b.Data != nil {
		byteSlabs.Put(b.Data)
		b.Data = nil
	}
}

// CopyInAt moves host coefficients (int32 in the whole-image buffer) into
// a device buffer at element offset off, narrowing to int16 (the paper's
// `short` device buffers). Transfer cost is accounted by the caller so
// that multiple component copies of one chunk form a single logical
// transfer.
func (d *Device) CopyInAt(dst *CoefBuffer, off int, src []int32) {
	if off+len(src) > len(dst.Data) {
		panic(fmt.Sprintf("gpusim: CopyInAt overflow (%d+%d into %d)", off, len(src), len(dst.Data)))
	}
	out := dst.Data[off : off+len(src)]
	for i, v := range src {
		out[i] = int16(v)
	}
}

// CopyOutAt moves n device bytes starting at offset off back into the
// host buffer at the same offset (device and host share the whole-image
// layout) and returns the virtual transfer cost.
func (d *Device) CopyOutAt(dst []byte, off int, src *ByteBuffer, n int) float64 {
	copy(dst[off:off+n], src.Data[off:off+n])
	return d.Spec.TransferNs(n)
}

// Group is the per-work-group execution context passed to kernel phases.
type Group struct {
	ID    int
	Items int
	Local []int32 // local (shared) memory, zeroed per group
}

// PhaseFunc runs one work-item of one lock-step phase. Implicit barriers
// separate phases, matching OpenCL barrier(CLK_LOCAL_MEM_FENCE) usage.
type PhaseFunc func(g *Group, item int)

// Kernel is a compiled ND-range launch: the work decomposition, the
// lock-step phases, and the cost accounting the device charges for it.
type Kernel struct {
	Name          string
	Groups        int
	ItemsPerGroup int
	LocalInt32    int // local memory words per group

	Phases []PhaseFunc

	// Cost accounting, filled by the kernel author from the actual work:
	Ops         float64 // total arithmetic operations
	GlobalBytes float64 // total global memory traffic in bytes
	// DivergentFraction is the fraction of warps suffering branch
	// divergence (both sides executed); their op cost doubles.
	DivergentFraction float64
}

// CostNs returns the virtual execution time of k on d, delegating to the
// platform's shared kernel cost formula (also used by the analytic cost
// plans, so executed and planned costs agree exactly).
func (d *Device) CostNs(k *Kernel) float64 {
	return d.Spec.KernelCostNs(k.Ops, k.GlobalBytes, k.Groups, k.LocalInt32, k.DivergentFraction)
}

// Run executes the kernel's work-groups concurrently and returns the
// virtual cost. Execution is synchronous from the caller's perspective;
// virtual-time asynchrony is modeled by the scheduler's timeline.
func (d *Device) Run(k *Kernel) float64 {
	if k.Groups <= 0 || k.ItemsPerGroup <= 0 {
		return d.Spec.GPU.LaunchNs
	}
	nw := d.workers
	if nw > k.Groups {
		nw = k.Groups
	}
	if nw <= 1 {
		g := &Group{Local: make([]int32, k.LocalInt32), Items: k.ItemsPerGroup}
		for gid := 0; gid < k.Groups; gid++ {
			g.ID = gid
			for i := range g.Local {
				g.Local[i] = 0
			}
			runGroup(k, g)
		}
		return d.CostNs(k)
	}
	var wg sync.WaitGroup
	next := make(chan int, nw)
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			g := &Group{Local: make([]int32, k.LocalInt32), Items: k.ItemsPerGroup}
			for gid := range next {
				g.ID = gid
				for i := range g.Local {
					g.Local[i] = 0
				}
				runGroup(k, g)
			}
		}()
	}
	for gid := 0; gid < k.Groups; gid++ {
		next <- gid
	}
	close(next)
	wg.Wait()
	return d.CostNs(k)
}

func runGroup(k *Kernel, g *Group) {
	for _, phase := range k.Phases {
		for item := 0; item < k.ItemsPerGroup; item++ {
			phase(g, item)
		}
	}
}

// Warps returns the number of warps an ND-range occupies.
func Warps(groups, itemsPerGroup int) int {
	perGroup := (itemsPerGroup + WarpSize - 1) / WarpSize
	return groups * perGroup
}
