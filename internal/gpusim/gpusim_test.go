package gpusim

import (
	"sync/atomic"
	"testing"

	"hetjpeg/internal/platform"
)

func dev() *Device { return New(platform.GTX560()) }

func TestRunExecutesAllItems(t *testing.T) {
	d := dev()
	var count int64
	k := &Kernel{
		Name:          "count",
		Groups:        13,
		ItemsPerGroup: 7,
		Phases: []PhaseFunc{func(g *Group, item int) {
			atomic.AddInt64(&count, 1)
		}},
		Ops: 1,
	}
	d.Run(k)
	if count != 13*7 {
		t.Fatalf("executed %d items, want %d", count, 13*7)
	}
}

func TestPhasesAreBarriered(t *testing.T) {
	// Phase 2 must observe every phase-1 write of its own group (the
	// local-memory barrier semantics the IDCT kernel relies on).
	d := dev()
	const items = 16
	bad := int64(0)
	k := &Kernel{
		Name:          "barrier",
		Groups:        50,
		ItemsPerGroup: items,
		LocalInt32:    items,
		Phases: []PhaseFunc{
			func(g *Group, item int) { g.Local[item] = int32(g.ID + item) },
			func(g *Group, item int) {
				// Read a different item's slot.
				peer := (item + 5) % items
				if g.Local[peer] != int32(g.ID+peer) {
					atomic.AddInt64(&bad, 1)
				}
			},
		},
		Ops: 1,
	}
	d.Run(k)
	if bad != 0 {
		t.Fatalf("%d cross-item reads missed phase-1 writes", bad)
	}
}

func TestLocalMemoryZeroedPerGroup(t *testing.T) {
	d := dev()
	bad := int64(0)
	k := &Kernel{
		Name:          "zeroed",
		Groups:        64,
		ItemsPerGroup: 1,
		LocalInt32:    4,
		Phases: []PhaseFunc{func(g *Group, item int) {
			for _, v := range g.Local {
				if v != 0 {
					atomic.AddInt64(&bad, 1)
				}
			}
			g.Local[0] = 42 // pollute for the next group on this worker
		}},
		Ops: 1,
	}
	d.Run(k)
	if bad != 0 {
		t.Fatalf("%d groups saw dirty local memory", bad)
	}
}

func TestCostModelComponents(t *testing.T) {
	d := dev()
	g := d.Spec.GPU
	k := &Kernel{Ops: 1e6, GlobalBytes: 1e6, Groups: 10, LocalInt32: 64}
	want := g.LaunchNs + 10*g.GroupSchedNs + 1e6/g.EffOpsPerNs + 1e6/g.MemBWBytesNs
	if got := d.CostNs(k); got != want {
		t.Fatalf("cost %v want %v", got, want)
	}
	// Divergence doubles the affected fraction's op cost.
	k2 := &Kernel{Ops: 1e6, DivergentFraction: 1}
	if got := d.CostNs(k2); got != g.LaunchNs+2e6/g.EffOpsPerNs {
		t.Fatalf("divergent cost %v", got)
	}
	// Local memory beyond the occupancy knee slows compute.
	k3 := &Kernel{Ops: 1e6, Groups: 1, LocalInt32: 2 * g.MaxLocalInt32}
	plain := &Kernel{Ops: 1e6, Groups: 1, LocalInt32: g.MaxLocalInt32}
	if d.CostNs(k3) <= d.CostNs(plain) {
		t.Fatal("occupancy penalty missing")
	}
}

func TestCopyInNarrowsAndCopyOut(t *testing.T) {
	d := dev()
	buf := d.NewCoefBuffer(8)
	d.CopyInAt(buf, 2, []int32{1, -2, 300})
	if buf.Data[2] != 1 || buf.Data[3] != -2 || buf.Data[4] != 300 {
		t.Fatalf("CopyInAt wrote %v", buf.Data)
	}
	bb := d.NewByteBuffer(10)
	for i := range bb.Data {
		bb.Data[i] = byte(i)
	}
	host := make([]byte, 10)
	ns := d.CopyOutAt(host, 3, bb, 5)
	if ns <= 0 {
		t.Fatal("transfer cost must be positive")
	}
	for i := 3; i < 8; i++ {
		if host[i] != byte(i) {
			t.Fatalf("host[%d]=%d", i, host[i])
		}
	}
	if host[0] != 0 || host[9] != 0 {
		t.Fatal("CopyOutAt touched bytes outside its range")
	}
}

func TestEmptyKernelChargesLaunchOnly(t *testing.T) {
	d := dev()
	if got := d.Run(&Kernel{}); got != d.Spec.GPU.LaunchNs {
		t.Fatalf("empty kernel cost %v want launch %v", got, d.Spec.GPU.LaunchNs)
	}
}

func TestWarps(t *testing.T) {
	if w := Warps(4, 64); w != 8 {
		t.Fatalf("Warps(4,64)=%d want 8", w)
	}
	if w := Warps(3, 33); w != 6 {
		t.Fatalf("Warps(3,33)=%d want 6 (round up)", w)
	}
}
