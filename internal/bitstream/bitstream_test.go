package bitstream

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter()
	vals := []struct {
		v uint32
		n uint
	}{
		{0x1, 1}, {0x0, 1}, {0x3, 2}, {0xFF, 8}, {0x155, 9},
		{0xFFFFFF, 24}, {0, 24}, {0xABC, 12}, {0x1, 3},
	}
	for _, x := range vals {
		w.WriteBits(x.v, x.n)
	}
	r := NewReader(w.Flush())
	for i, x := range vals {
		got, err := r.ReadBits(x.n)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != x.v {
			t.Fatalf("read %d: got %#x want %#x", i, got, x.v)
		}
	}
}

func TestByteStuffing(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFF, 8)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0x12, 8)
	out := w.Flush()
	want := []byte{0xFF, 0x00, 0xFF, 0x00, 0x12}
	if len(out) != len(want) {
		t.Fatalf("len=%d want %d (%x)", len(out), len(want), out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, out[i], want[i])
		}
	}
	r := NewReader(out)
	for i := 0; i < 2; i++ {
		v, err := r.ReadBits(8)
		if err != nil || v != 0xFF {
			t.Fatalf("destuff read %d: v=%#x err=%v", i, v, err)
		}
	}
	v, err := r.ReadBits(8)
	if err != nil || v != 0x12 {
		t.Fatalf("final read: v=%#x err=%v", v, err)
	}
}

func TestMarkerStopsStream(t *testing.T) {
	// One data byte then an EOI marker: reads past the end must return
	// zero bits and record the marker.
	data := []byte{0xA5, 0xFF, 0xD9}
	r := NewReader(data)
	v, err := r.ReadBits(8)
	if err != nil || v != 0xA5 {
		t.Fatalf("first byte: v=%#x err=%v", v, err)
	}
	v, err = r.ReadBits(8)
	if err != nil {
		t.Fatalf("post-marker read should zero-fill, got err=%v", err)
	}
	if v != 0 {
		t.Fatalf("post-marker bits should be zero, got %#x", v)
	}
	if r.Marker() != 0xD9 {
		t.Fatalf("marker=%#x want 0xD9", r.Marker())
	}
}

func TestUnexpectedEOF(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if _, err := r.ReadBits(16); !errors.Is(err, ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestRestartMarkerSkip(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0x5, 3)
	w.WriteRestartMarker(2)
	w.WriteBits(0xA7, 8)
	data := w.Flush()

	r := NewReader(data)
	if v, _ := r.ReadBits(3); v != 0x5 {
		t.Fatalf("pre-restart bits wrong: %#x", v)
	}
	m, err := r.SkipRestartMarker()
	if err != nil {
		t.Fatalf("SkipRestartMarker: %v", err)
	}
	if m != 0xD2 {
		t.Fatalf("marker=%#x want 0xD2", m)
	}
	if v, _ := r.ReadBits(8); v != 0xA7 {
		t.Fatalf("post-restart byte wrong: %#x", v)
	}
}

func TestQuickRandomRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		type rec struct {
			v uint32
			n uint
		}
		recs := make([]rec, n)
		w := NewWriter()
		for i := range recs {
			bits := uint(1 + rng.Intn(24))
			v := rng.Uint32() & ((1 << bits) - 1)
			recs[i] = rec{v, bits}
			w.WriteBits(v, bits)
		}
		r := NewReader(w.Flush())
		for _, rc := range recs {
			v, err := r.ReadBits(rc.n)
			if err != nil || v != rc.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekConsume(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1011001110001111, 16)
	r := NewReader(w.Flush())
	v, err := r.Peek(5)
	if err != nil || v != 0b10110 {
		t.Fatalf("peek: v=%#b err=%v", v, err)
	}
	// Peek must not consume.
	v2, _ := r.Peek(5)
	if v2 != v {
		t.Fatalf("second peek differs: %#b vs %#b", v2, v)
	}
	r.Consume(5)
	v3, _ := r.ReadBits(11)
	if v3 != 0b01110001111 {
		t.Fatalf("after consume: %#b", v3)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xAB, 8)
	w.Flush()
	w.Reset()
	w.WriteBits(0xCD, 8)
	out := w.Flush()
	if len(out) != 1 || out[0] != 0xCD {
		t.Fatalf("after reset: %x", out)
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter()
	w.WriteBits(1, 3)
	if w.BitLen() != 3 {
		t.Fatalf("BitLen=%d want 3", w.BitLen())
	}
	w.WriteBits(0, 13)
	if w.BitLen() != 16 {
		t.Fatalf("BitLen=%d want 16", w.BitLen())
	}
}
