// Package bitstream provides MSB-first bit readers and writers with the
// byte-stuffing convention of the JPEG entropy-coded segment: an 0xFF data
// byte is followed by a stuffed 0x00 on the wire, and any 0xFF followed by
// a non-zero byte terminates the segment (a marker).
package bitstream

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when the entropy-coded segment ends before
// the requested bits are available.
var ErrUnexpectedEOF = errors.New("bitstream: unexpected end of entropy data")

// ErrMarker is returned by Reader methods when a marker (0xFF followed by a
// non-zero, non-stuffing byte) interrupts the entropy-coded segment.
type ErrMarker struct {
	Marker byte // the marker code, e.g. 0xD9 for EOI
}

func (e ErrMarker) Error() string {
	return fmt.Sprintf("bitstream: hit marker 0xFF%02X inside entropy data", e.Marker)
}

// Reader reads bits MSB-first from a JPEG entropy-coded segment, removing
// byte stuffing. It keeps the position of the last consumed byte so callers
// can account for entropy-coded data size per region.
type Reader struct {
	data   []byte
	pos    int    // next byte index in data
	acc    uint64 // bit accumulator, MSB-aligned in the low `bits` bits
	bits   uint   // number of valid bits in acc
	marker byte   // pending marker code (0 if none)
}

// NewReader returns a Reader over the entropy-coded bytes data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Reset re-initializes the reader over new data, retaining no state.
func (r *Reader) Reset(data []byte) {
	r.data = data
	r.pos = 0
	r.acc = 0
	r.bits = 0
	r.marker = 0
}

// BytePos returns the number of input bytes consumed so far, including
// stuffed bytes. Bits buffered in the accumulator count as consumed.
func (r *Reader) BytePos() int { return r.pos }

// BitsBuffered returns the number of bits currently buffered (useful for
// precise entropy-size accounting: consumed bits = 8*BytePos - BitsBuffered,
// approximately, ignoring stuffing).
func (r *Reader) BitsBuffered() uint { return r.bits }

// fill loads bytes into the accumulator until at least n bits are buffered
// or input is exhausted/interrupted by a marker.
func (r *Reader) fill(n uint) error {
	for r.bits < n {
		if r.marker != 0 {
			// After a marker, JPEG decoders see an endless stream of
			// zero bits (the spec's handling of truncated data).
			r.acc = r.acc << 8
			r.bits += 8
			continue
		}
		if r.pos >= len(r.data) {
			return ErrUnexpectedEOF
		}
		b := r.data[r.pos]
		r.pos++
		if b == 0xFF {
			if r.pos >= len(r.data) {
				return ErrUnexpectedEOF
			}
			nxt := r.data[r.pos]
			if nxt == 0x00 {
				r.pos++ // stuffed byte
			} else {
				// Marker: stop consuming, remember it, and pad with zeros.
				r.marker = nxt
				r.pos-- // leave 0xFF unconsumed for the caller's accounting
				r.acc = r.acc << 8
				r.bits += 8
				continue
			}
		}
		r.acc = r.acc<<8 | uint64(b)
		r.bits += 8
	}
	return nil
}

// Peek returns the next n bits (1..24) without consuming them. Missing bits
// past a marker read as zero, matching JPEG decoder convention.
func (r *Reader) Peek(n uint) (uint32, error) {
	if err := r.fill(n); err != nil {
		return 0, err
	}
	return uint32(r.acc>>(r.bits-n)) & ((1 << n) - 1), nil
}

// Consume discards n buffered bits. It must follow a successful Peek of at
// least n bits.
func (r *Reader) Consume(n uint) {
	r.bits -= n
	r.acc &= (1 << r.bits) - 1
}

// ReadBits reads and consumes n bits (0..24), MSB first.
func (r *Reader) ReadBits(n uint) (uint32, error) {
	if n == 0 {
		return 0, nil
	}
	v, err := r.Peek(n)
	if err != nil {
		return 0, err
	}
	r.Consume(n)
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint32, error) { return r.ReadBits(1) }

// Marker reports the marker code that interrupted the stream, or 0.
func (r *Reader) Marker() byte { return r.marker }

// AlignToByte discards buffered bits so the next read starts at a byte
// boundary (used before restart markers).
func (r *Reader) AlignToByte() {
	drop := r.bits % 8
	r.Consume(drop)
}

// SkipRestartMarker consumes an RSTn marker at the current (byte-aligned)
// position and resets marker state. Returns the marker code consumed.
func (r *Reader) SkipRestartMarker() (byte, error) {
	r.AlignToByte()
	// Drop whole buffered bytes; they belong before the marker.
	for r.bits >= 8 {
		r.Consume(8)
	}
	if r.marker != 0 {
		m := r.marker
		if m < 0xD0 || m > 0xD7 {
			return 0, ErrMarker{Marker: m}
		}
		r.marker = 0
		r.pos += 2 // consume FF and marker byte
		return m, nil
	}
	if r.pos+1 >= len(r.data) || r.data[r.pos] != 0xFF {
		return 0, ErrUnexpectedEOF
	}
	m := r.data[r.pos+1]
	if m < 0xD0 || m > 0xD7 {
		return 0, ErrMarker{Marker: m}
	}
	r.pos += 2
	return m, nil
}

// Writer writes bits MSB-first, inserting JPEG byte stuffing after each
// 0xFF data byte.
type Writer struct {
	buf  []byte
	acc  uint32
	bits uint
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBits appends the low n bits of v (n ≤ 24), MSB first.
func (w *Writer) WriteBits(v uint32, n uint) {
	if n == 0 {
		return
	}
	w.acc = w.acc<<n | (v & ((1 << n) - 1))
	w.bits += n
	for w.bits >= 8 {
		b := byte(w.acc >> (w.bits - 8))
		w.buf = append(w.buf, b)
		if b == 0xFF {
			w.buf = append(w.buf, 0x00)
		}
		w.bits -= 8
		w.acc &= (1 << w.bits) - 1
	}
}

// Flush pads the final partial byte with 1-bits (JPEG convention) and
// returns the encoded segment. The Writer remains usable.
func (w *Writer) Flush() []byte {
	if w.bits > 0 {
		pad := 8 - w.bits
		w.WriteBits((1<<pad)-1, pad)
	}
	return w.buf
}

// WriteRestartMarker pads the current byte with 1-bits and appends the
// RSTn marker (n in 0..7) unstuffed, as required between restart
// intervals.
func (w *Writer) WriteRestartMarker(n int) {
	if w.bits > 0 {
		pad := 8 - w.bits
		w.WriteBits((1<<pad)-1, pad)
	}
	w.buf = append(w.buf, 0xFF, 0xD0+byte(n&7))
}

// Len returns the number of bytes emitted so far (excluding buffered bits).
func (w *Writer) Len() int { return len(w.buf) }

// BitLen returns the total number of payload bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.bits) }

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.bits = 0
}
