// Package bitstream provides MSB-first bit readers and writers with the
// byte-stuffing convention of the JPEG entropy-coded segment: an 0xFF data
// byte is followed by a stuffed 0x00 on the wire, and any 0xFF followed by
// a non-zero byte terminates the segment (a marker).
package bitstream

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when the entropy-coded segment ends before
// the requested bits are available.
var ErrUnexpectedEOF = errors.New("bitstream: unexpected end of entropy data")

// ErrMarker is returned by Reader methods when a marker (0xFF followed by a
// non-zero, non-stuffing byte) interrupts the entropy-coded segment.
type ErrMarker struct {
	Marker byte // the marker code, e.g. 0xD9 for EOI
}

func (e ErrMarker) Error() string {
	return fmt.Sprintf("bitstream: hit marker 0xFF%02X inside entropy data", e.Marker)
}

// Reader reads bits MSB-first from a JPEG entropy-coded segment, removing
// byte stuffing. It keeps the position of the last consumed byte so callers
// can account for entropy-coded data size per region.
//
// The accumulator is refilled eagerly, up to 8 bytes at a time: a SWAR
// scan finds the next 0xFF so runs of stuffing-free bytes load as whole
// 64-bit words instead of one byte per conditional. A Huffman
// lookup-decode plus its appended magnitude bits (at most 16+16+11 bits
// between refills) always fits in the >= 56 bits a refill guarantees
// while input lasts.
type Reader struct {
	data   []byte
	pos    int    // next byte index in data
	acc    uint64 // bit accumulator, MSB-aligned in the low `bits` bits
	bits   uint   // number of valid bits in acc, including pad zeros
	pad    uint   // low-order synthetic zero bits appended past a marker
	marker byte   // pending marker code (0 if none)
}

// NewReader returns a Reader over the entropy-coded bytes data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Reset re-initializes the reader over new data, retaining no state.
func (r *Reader) Reset(data []byte) {
	r.data = data
	r.pos = 0
	r.acc = 0
	r.bits = 0
	r.pad = 0
	r.marker = 0
}

// BytePos returns the number of input bytes consumed so far, including
// stuffed bytes. Bits buffered in the accumulator count as consumed.
func (r *Reader) BytePos() int { return r.pos }

// BitsBuffered returns the number of input bits currently buffered
// (synthetic zero padding past a marker excluded), so consumed bits =
// 8*BytePos - BitsBuffered exactly, up to stuffing.
func (r *Reader) BitsBuffered() uint { return r.bits - r.pad }

// hasFF reports whether any byte of v equals 0xFF (SWAR zero-byte scan of
// the complement).
func hasFF(v uint64) bool {
	x := ^v
	return (x-0x0101010101010101)&^x&0x8080808080808080 != 0
}

// refill tops the accumulator up toward 64 bits. It never pads: on a
// marker it records the code and stops with the 0xFF unconsumed; at end
// of input it simply stops. fill decides whether the shortfall is a
// marker (zero padding) or ErrUnexpectedEOF.
func (r *Reader) refill() {
	if r.marker != 0 {
		return
	}
	d, p := r.data, r.pos
	// Fast path: load stuffing-free 8-byte words whole.
	for r.bits <= 56 && p+8 <= len(d) {
		v := binary.BigEndian.Uint64(d[p:])
		if hasFF(v) {
			break
		}
		k := (64 - r.bits) >> 3 // whole bytes that fit, 1..8
		r.acc = r.acc<<(8*k) | v>>(64-8*k)
		r.bits += 8 * k
		p += int(k)
	}
	// Slow path: byte at a time with stuffing and marker classification.
	for r.bits <= 56 && p < len(d) {
		b := d[p]
		if b == 0xFF {
			if p+1 >= len(d) {
				// A trailing 0xFF cannot be classified; treat as end of
				// input (matching the byte-at-a-time reader).
				break
			}
			if d[p+1] != 0x00 {
				// Marker: remember it, leave the 0xFF unconsumed for the
				// caller's accounting.
				r.marker = d[p+1]
				break
			}
			p++ // stuffed byte
		}
		p++
		r.acc = r.acc<<8 | uint64(b)
		r.bits += 8
	}
	r.pos = p
}

// fillSlow ensures at least n bits are buffered, refilling eagerly and
// zero-padding past a marker (the spec's handling of truncated entropy
// data). Callers guard on r.bits >= n first so the common case inlines.
func (r *Reader) fillSlow(n uint) error {
	r.refill()
	if r.bits >= n {
		return nil
	}
	if r.marker == 0 {
		return ErrUnexpectedEOF
	}
	k := (n - r.bits + 7) &^ 7 // pad whole bytes of zeros
	r.acc <<= k
	r.bits += k
	r.pad += k
	return nil
}

// Peek returns the next n bits (1..32) without consuming them. Missing
// bits past a marker read as zero, matching JPEG decoder convention.
// The buffered-bits guard keeps the common case inlinable.
func (r *Reader) Peek(n uint) (uint32, error) {
	if r.bits >= n {
		return uint32(r.acc>>(r.bits-n)) & uint32(1<<n-1), nil
	}
	return r.peekSlow(n)
}

func (r *Reader) peekSlow(n uint) (uint32, error) {
	if err := r.fillSlow(n); err != nil {
		return 0, err
	}
	return uint32(r.acc>>(r.bits-n)) & uint32(1<<n-1), nil
}

// Consume discards n buffered bits. It must follow a successful Peek of at
// least n bits.
func (r *Reader) Consume(n uint) {
	r.bits -= n
	if r.pad > r.bits {
		r.pad = r.bits
	}
	r.acc &= 1<<r.bits - 1
}

// ReadBits reads and consumes n bits (0..32), MSB first.
func (r *Reader) ReadBits(n uint) (uint32, error) {
	if n == 0 {
		return 0, nil
	}
	v, err := r.Peek(n)
	if err != nil {
		return 0, err
	}
	r.Consume(n)
	return v, nil
}

// MustPeek returns the next n bits without consuming them, assuming a
// prior fill guaranteed availability (callers pair it with Bits()).
func (r *Reader) MustPeek(n uint) uint32 {
	return uint32(r.acc>>(r.bits-n)) & uint32(1<<n-1)
}

// Bits returns the number of bits currently buffered, including zero
// padding past a marker. The Huffman fast path uses it with Fill32 to
// decide when unchecked peeks are safe.
func (r *Reader) Bits() uint { return r.bits }

// Fill32 tries to buffer at least 32 bits (enough for one Huffman code
// plus its appended magnitude bits) and reports whether it succeeded.
// Unlike Peek it allocates no error on the truncated-input path.
func (r *Reader) Fill32() bool {
	if r.bits >= 32 {
		return true
	}
	return r.fillSlow(32) == nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint32, error) { return r.ReadBits(1) }

// Marker reports the marker code that interrupted the stream, or 0.
func (r *Reader) Marker() byte { return r.marker }

// AlignToByte discards buffered bits so the next read starts at a byte
// boundary (used before restart markers).
func (r *Reader) AlignToByte() {
	drop := r.bits % 8
	r.Consume(drop)
}

// SkipRestartMarker consumes an RSTn marker at the current (byte-aligned)
// position and resets marker state. Returns the marker code consumed.
func (r *Reader) SkipRestartMarker() (byte, error) {
	r.AlignToByte()
	// Drop whole buffered bytes; they belong before the marker. With the
	// eager refill these may include real look-ahead bytes only when the
	// stream is corrupt (a restart marker must directly follow the bits
	// consumed so far); pad bytes past the marker always drop here.
	for r.bits >= 8 {
		r.Consume(8)
	}
	if r.marker != 0 {
		m := r.marker
		if m < 0xD0 || m > 0xD7 {
			return 0, ErrMarker{Marker: m}
		}
		r.marker = 0
		r.pos += 2 // consume FF and marker byte
		return m, nil
	}
	if r.pos+1 >= len(r.data) || r.data[r.pos] != 0xFF {
		return 0, ErrUnexpectedEOF
	}
	m := r.data[r.pos+1]
	if m < 0xD0 || m > 0xD7 {
		return 0, ErrMarker{Marker: m}
	}
	r.pos += 2
	return m, nil
}

// Writer writes bits MSB-first, inserting JPEG byte stuffing after each
// 0xFF data byte.
type Writer struct {
	buf  []byte
	acc  uint32
	bits uint
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// NewWriterBuf returns an empty Writer that appends into buf's backing
// array (reset to length 0). The encoder seeds writers with pooled
// slabs so steady-state entropy emission stays allocation-flat; Flush
// returns the possibly-regrown buffer for the caller to recycle.
func NewWriterBuf(buf []byte) *Writer { return &Writer{buf: buf[:0]} }

// WriteBits appends the low n bits of v (n ≤ 24), MSB first.
func (w *Writer) WriteBits(v uint32, n uint) {
	if n == 0 {
		return
	}
	w.acc = w.acc<<n | (v & ((1 << n) - 1))
	w.bits += n
	for w.bits >= 8 {
		b := byte(w.acc >> (w.bits - 8))
		w.buf = append(w.buf, b)
		if b == 0xFF {
			w.buf = append(w.buf, 0x00)
		}
		w.bits -= 8
		w.acc &= (1 << w.bits) - 1
	}
}

// Flush pads the final partial byte with 1-bits (JPEG convention) and
// returns the encoded segment. The Writer remains usable.
func (w *Writer) Flush() []byte {
	if w.bits > 0 {
		pad := 8 - w.bits
		w.WriteBits((1<<pad)-1, pad)
	}
	return w.buf
}

// WriteRestartMarker pads the current byte with 1-bits and appends the
// RSTn marker (n in 0..7) unstuffed, as required between restart
// intervals.
func (w *Writer) WriteRestartMarker(n int) {
	if w.bits > 0 {
		pad := 8 - w.bits
		w.WriteBits((1<<pad)-1, pad)
	}
	w.buf = append(w.buf, 0xFF, 0xD0+byte(n&7))
}

// Len returns the number of bytes emitted so far (excluding buffered bits).
func (w *Writer) Len() int { return len(w.buf) }

// BitLen returns the total number of payload bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.bits) }

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.bits = 0
}
