package bitstream

import (
	"bytes"
	"errors"
	"testing"
)

// refReader is the byte-at-a-time reference reader (the pre-64-bit
// implementation): the differential oracle for the eager SWAR refill.
// It must return exactly the same bit values and error classes.
type refReader struct {
	data   []byte
	pos    int
	acc    uint64
	bits   uint
	marker byte
}

func (r *refReader) fill(n uint) error {
	for r.bits < n {
		if r.marker != 0 {
			r.acc <<= 8
			r.bits += 8
			continue
		}
		if r.pos >= len(r.data) {
			return ErrUnexpectedEOF
		}
		b := r.data[r.pos]
		r.pos++
		if b == 0xFF {
			if r.pos >= len(r.data) {
				return ErrUnexpectedEOF
			}
			nxt := r.data[r.pos]
			if nxt == 0x00 {
				r.pos++
			} else {
				r.marker = nxt
				r.pos--
				r.acc <<= 8
				r.bits += 8
				continue
			}
		}
		r.acc = r.acc<<8 | uint64(b)
		r.bits += 8
	}
	return nil
}

func (r *refReader) readBits(n uint) (uint32, error) {
	if n == 0 {
		return 0, nil
	}
	if err := r.fill(n); err != nil {
		return 0, err
	}
	v := uint32(r.acc>>(r.bits-n)) & (1<<n - 1)
	r.bits -= n
	r.acc &= 1<<r.bits - 1
	return v, nil
}

// FuzzReaderMatchesReference drives both readers with the same read-size
// schedule (derived from the input) and requires identical values,
// identical error classes and identical marker codes.
func FuzzReaderMatchesReference(f *testing.F) {
	f.Add([]byte{0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF1, 0x10, 0x42}, []byte{8, 4, 1})
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00, 0x01, 0x02}, []byte{16, 3})
	f.Add([]byte{0xAA, 0xFF, 0xD9, 0x55}, []byte{7, 9, 2})           // EOI marker mid-stream
	f.Add([]byte{0xFF}, []byte{1})                                   // lone trailing 0xFF
	f.Add(bytes.Repeat([]byte{0xFF, 0x00}, 20), []byte{24, 24, 24})  // all stuffing
	f.Add(bytes.Repeat([]byte{0x5C}, 64), []byte{32, 1, 31, 17, 23}) // stuffing-free fast path
	f.Fuzz(func(t *testing.T, data []byte, sizes []byte) {
		if len(sizes) == 0 || len(sizes) > 256 {
			return
		}
		fast := NewReader(data)
		ref := &refReader{data: data}
		for step := 0; step < 512; step++ {
			n := uint(sizes[step%len(sizes)]) % 33
			gv, gerr := fast.ReadBits(n)
			wv, werr := ref.readBits(n)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("step %d n=%d: err %v vs reference %v", step, n, gerr, werr)
			}
			if gerr != nil {
				if !errors.Is(gerr, ErrUnexpectedEOF) || !errors.Is(werr, ErrUnexpectedEOF) {
					t.Fatalf("step %d: unexpected error class %v vs %v", step, gerr, werr)
				}
				return
			}
			if gv != wv {
				t.Fatalf("step %d n=%d: value %#x vs reference %#x", step, n, gv, wv)
			}
			// The eager reader may discover a marker earlier than the lazy
			// reference, but once the reference has seen it they must agree.
			if ref.marker != 0 && fast.Marker() != ref.marker {
				t.Fatalf("step %d: marker %#x vs reference %#x", step, fast.Marker(), ref.marker)
			}
		}
	})
}

// FuzzWriterReaderRoundTrip writes the input as bit chunks and reads it
// back through the stuffing-aware reader.
func FuzzWriterReaderRoundTrip(f *testing.F) {
	f.Add([]byte{0xFF, 0x01, 0x80, 0x7F})
	f.Add([]byte{0x00})
	f.Add(bytes.Repeat([]byte{0xFF}, 9))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) == 0 || len(payload) > 1024 {
			return
		}
		w := NewWriter()
		for _, b := range payload {
			w.WriteBits(uint32(b), 8)
		}
		r := NewReader(w.Flush())
		for i, want := range payload {
			got, err := r.ReadBits(8)
			if err != nil {
				t.Fatalf("byte %d: %v", i, err)
			}
			if byte(got) != want {
				t.Fatalf("byte %d: %#x != %#x", i, got, want)
			}
		}
	})
}
