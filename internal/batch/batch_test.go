package batch

import (
	"testing"

	"hetjpeg/internal/core"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
)

func corpus(t testing.TB, n int) [][]byte {
	t.Helper()
	sizes := [][2]int{{320, 240}, {512, 384}, {640, 480}, {800, 600}}
	var out [][]byte
	for i := 0; i < n; i++ {
		wh := sizes[i%len(sizes)]
		items, err := imagegen.SizeSweep(jfif.Sub422, 0.3+0.1*float64(i%5), [][2]int{wh}, int64(300+i))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, items[0].Data)
	}
	return out
}

func TestBatchOverlapBeatsSerial(t *testing.T) {
	spec := platform.GTX560()
	model, err := perfmodel.TrainQuick(spec)
	if err != nil {
		t.Fatal(err)
	}
	datas := corpus(t, 6)
	res, err := Decode(datas, Options{Spec: spec, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Images) != 6 {
		t.Fatalf("%d results", len(res.Images))
	}
	if err := res.Timeline.Validate(); err != nil {
		t.Fatalf("merged timeline invalid: %v", err)
	}
	gain := res.Gain()
	t.Logf("serial %.2f ms, pipelined %.2f ms, gain %.3fx", res.SerialNs/1e6, res.PipelinedNs/1e6, gain)
	if gain < 1.0 {
		t.Errorf("batch pipelining made things slower: %.3f", gain)
	}
	if res.PipelinedNs > res.SerialNs {
		t.Error("merged makespan exceeds serial sum")
	}
}

func TestBatchPixelCorrectness(t *testing.T) {
	spec := platform.GTX680()
	datas := corpus(t, 3)
	res, err := Decode(datas, Options{Spec: spec, Mode: core.ModePipelinedGPU, ModeSet: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, ir := range res.Images {
		ref, err := core.Decode(datas[i], core.Options{Mode: core.ModeSequential, Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		if len(ir.Res.Image.Pix) != len(ref.Image.Pix) {
			t.Fatalf("image %d: size mismatch", i)
		}
		for j := range ref.Image.Pix {
			if ir.Res.Image.Pix[j] != ref.Image.Pix[j] {
				t.Fatalf("image %d differs at byte %d", i, j)
			}
		}
	}
}

func TestBatchErrors(t *testing.T) {
	if _, err := Decode(nil, Options{}); err == nil {
		t.Fatal("missing spec accepted")
	}
	spec := platform.GT430()
	bad := [][]byte{{0x00, 0x01}}
	if _, err := Decode(bad, Options{Spec: spec, Mode: core.ModeGPU, ModeSet: true}); err == nil {
		t.Fatal("garbage image accepted")
	}
}

func TestBatchGainGrowsWithCount(t *testing.T) {
	// More images amortize the non-overlapped head and tail.
	spec := platform.GTX560()
	two, err := Decode(corpus(t, 2), Options{Spec: spec, Mode: core.ModePipelinedGPU, ModeSet: true})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Decode(corpus(t, 8), Options{Spec: spec, Mode: core.ModePipelinedGPU, ModeSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if eight.Gain() < two.Gain()-0.02 {
		t.Errorf("gain should not shrink with batch size: 2->%.3f, 8->%.3f", two.Gain(), eight.Gain())
	}
}
