package batch

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"hetjpeg/internal/core"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
	"hetjpeg/internal/sim"
)

func corpus(t testing.TB, n int) [][]byte {
	t.Helper()
	sizes := [][2]int{{320, 240}, {512, 384}, {640, 480}, {800, 600}}
	var out [][]byte
	for i := 0; i < n; i++ {
		wh := sizes[i%len(sizes)]
		items, err := imagegen.SizeSweep(jfif.Sub422, 0.3+0.1*float64(i%5), [][2]int{wh}, int64(300+i))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, items[0].Data)
	}
	return out
}

func TestBatchOverlapBeatsSerial(t *testing.T) {
	spec := platform.GTX560()
	model, err := perfmodel.TrainQuick(spec)
	if err != nil {
		t.Fatal(err)
	}
	datas := corpus(t, 6)
	res, err := Decode(datas, Options{Spec: spec, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Images) != 6 {
		t.Fatalf("%d results", len(res.Images))
	}
	if res.Failed != 0 {
		t.Fatalf("%d images failed", res.Failed)
	}
	if err := res.Timeline.Validate(); err != nil {
		t.Fatalf("merged timeline invalid: %v", err)
	}
	gain := res.Gain()
	t.Logf("serial %.2f ms, pipelined %.2f ms, gain %.3fx", res.SerialNs/1e6, res.PipelinedNs/1e6, gain)
	if gain < 1.0 {
		t.Errorf("batch pipelining made things slower: %.3f", gain)
	}
	if res.PipelinedNs > res.SerialNs {
		t.Error("merged makespan exceeds serial sum")
	}
}

func TestBatchPixelCorrectness(t *testing.T) {
	spec := platform.GTX680()
	datas := corpus(t, 3)
	res, err := Decode(datas, Options{Spec: spec, Mode: core.ModePipelinedGPU})
	if err != nil {
		t.Fatal(err)
	}
	for i, ir := range res.Images {
		if ir.Err != nil {
			t.Fatalf("image %d: %v", i, ir.Err)
		}
		ref, err := core.Decode(datas[i], core.Options{Mode: core.ModeSequential, Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		if len(ir.Res.Image.Pix) != len(ref.Image.Pix) {
			t.Fatalf("image %d: size mismatch", i)
		}
		for j := range ref.Image.Pix {
			if ir.Res.Image.Pix[j] != ref.Image.Pix[j] {
				t.Fatalf("image %d differs at byte %d", i, j)
			}
		}
	}
}

func TestBatchConfigError(t *testing.T) {
	if _, err := Decode(nil, Options{}); err == nil {
		t.Fatal("missing spec accepted")
	}
	if _, err := NewExecutor(Options{}); err == nil {
		t.Fatal("executor without spec accepted")
	}
}

// A corrupt image must not abort the batch: its slot carries the error,
// every other image decodes normally, and the merged timeline skips it.
func TestBatchFailureIsolation(t *testing.T) {
	spec := platform.GT430()
	datas := corpus(t, 4)
	datas[1] = []byte{0x00, 0x01} // not a JPEG
	res, err := Decode(datas, Options{Spec: spec, Mode: core.ModeGPU})
	if err != nil {
		t.Fatalf("batch aborted on one bad image: %v", err)
	}
	if res.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", res.Failed)
	}
	for i, ir := range res.Images {
		if i == 1 {
			if ir.Err == nil || ir.Res != nil {
				t.Fatalf("bad image: err=%v res=%v", ir.Err, ir.Res)
			}
			continue
		}
		if ir.Err != nil {
			t.Fatalf("good image %d failed: %v", i, ir.Err)
		}
	}
	if err := res.Timeline.Validate(); err != nil {
		t.Fatalf("merged timeline invalid: %v", err)
	}
	// The merged schedule covers exactly the three good images.
	want := 0
	for i, ir := range res.Images {
		if i != 1 {
			want += len(ir.Res.Timeline.Tasks())
		}
	}
	if got := len(res.Timeline.Tasks()); got != want {
		t.Fatalf("merged tasks = %d, want %d", got, want)
	}
}

func TestBatchGainGrowsWithCount(t *testing.T) {
	// More images amortize the non-overlapped head and tail.
	spec := platform.GTX560()
	two, err := Decode(corpus(t, 2), Options{Spec: spec, Mode: core.ModePipelinedGPU})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Decode(corpus(t, 8), Options{Spec: spec, Mode: core.ModePipelinedGPU})
	if err != nil {
		t.Fatal(err)
	}
	if eight.Gain() < two.Gain()-0.02 {
		t.Errorf("gain should not shrink with batch size: 2->%.3f, 8->%.3f", two.Gain(), eight.Gain())
	}
}

// The virtual batch timeline must not depend on the worker count: the
// merge is deterministic in submission order, whatever the wall-clock
// completion order was. Pixels must be bit-identical too.
func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	spec := platform.GTX560()
	datas := corpus(t, 8)
	one, err := Decode(datas, Options{Spec: spec, Mode: core.ModePipelinedGPU, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Decode(datas, Options{Spec: spec, Mode: core.ModePipelinedGPU, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if one.PipelinedNs != many.PipelinedNs || one.SerialNs != many.SerialNs {
		t.Fatalf("virtual times depend on workers: 1 -> (%.1f, %.1f), 8 -> (%.1f, %.1f)",
			one.SerialNs, one.PipelinedNs, many.SerialNs, many.PipelinedNs)
	}
	for i := range datas {
		if !bytes.Equal(one.Images[i].Res.Image.Pix, many.Images[i].Res.Image.Pix) {
			t.Fatalf("image %d pixels differ between worker counts", i)
		}
	}
}

// lastCPUIDQuadratic is the pre-fix O(n²) rescan, kept here as the
// reference the one-pass dispatch map must reproduce exactly.
func lastCPUIDQuadratic(tl *sim.Timeline, t *sim.Task) int {
	last := -1
	for _, u := range tl.Tasks() {
		if u.ID >= t.ID {
			break
		}
		if u.Resource == sim.ResCPU {
			last = u.ID
		}
	}
	return last
}

func mergeQuadratic(images []ImageResult) *sim.Timeline {
	out := sim.New()
	var gpuPrev *sim.Task
	for _, ir := range images {
		if ir.Err != nil || ir.Res == nil {
			continue
		}
		idMap := make(map[int]*sim.Task)
		for _, t := range ir.Res.Timeline.Tasks() {
			var deps []*sim.Task
			if t.Resource == sim.ResGPU {
				if last := idMap[lastCPUIDQuadratic(ir.Res.Timeline, t)]; last != nil {
					deps = append(deps, last)
				}
				if gpuPrev != nil {
					deps = append(deps, gpuPrev)
				}
			}
			nt := out.Add(t.Resource, t.Kind, t.Label, t.Cost, deps...)
			idMap[t.ID] = nt
			if t.Resource == sim.ResGPU {
				gpuPrev = nt
			}
		}
	}
	return out
}

// The one-pass dispatch map must produce a merged schedule identical to
// the old quadratic rescan: same makespan, same per-task times.
func TestMergeMatchesQuadraticReference(t *testing.T) {
	spec := platform.GTX560()
	model, err := perfmodel.TrainQuick(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []core.Mode{core.ModePipelinedGPU, core.ModePPS, core.ModeSIMD} {
		res, err := Decode(corpus(t, 5), Options{Spec: spec, Model: model, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		fast := MergeTimelines(res.Images)
		ref := mergeQuadratic(res.Images)
		if fast.Makespan() != ref.Makespan() {
			t.Fatalf("%v: makespan %.3f != reference %.3f", mode, fast.Makespan(), ref.Makespan())
		}
		ft, rt := fast.Tasks(), ref.Tasks()
		if len(ft) != len(rt) {
			t.Fatalf("%v: %d tasks != reference %d", mode, len(ft), len(rt))
		}
		for i := range ft {
			if ft[i].Start != rt[i].Start || ft[i].End != rt[i].End {
				t.Fatalf("%v: task %d scheduled [%.1f,%.1f], reference [%.1f,%.1f]",
					mode, i, ft[i].Start, ft[i].End, rt[i].Start, rt[i].End)
			}
		}
	}
}

// Streaming submission: results arrive on the channel as they finish
// and the channel closes after Close drains the pool.
func TestExecutorStreaming(t *testing.T) {
	spec := platform.GTX680()
	datas := corpus(t, 5)
	ex, err := NewExecutor(Options{Spec: spec, Mode: core.ModePipelinedGPU, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	go func() {
		for i, d := range datas {
			if err := ex.Submit(ctx, i, d); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}
		ex.Close()
	}()
	seen := make(map[int]bool)
	for ir := range ex.Results() {
		if ir.Err != nil {
			t.Fatalf("image %d: %v", ir.Index, ir.Err)
		}
		if seen[ir.Index] {
			t.Fatalf("image %d delivered twice", ir.Index)
		}
		seen[ir.Index] = true
	}
	if len(seen) != len(datas) {
		t.Fatalf("%d results, want %d", len(seen), len(datas))
	}
}

// Cancellation: a cancelled context stops the batch promptly; images
// that never ran report ctx.Err() in their slot.
func TestBatchCancellation(t *testing.T) {
	spec := platform.GTX560()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before anything runs
	res, err := DecodeContext(ctx, corpus(t, 4), Options{Spec: spec, Mode: core.ModeSIMD, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 4 {
		t.Fatalf("Failed = %d, want 4", res.Failed)
	}
	for i, ir := range res.Images {
		if !errors.Is(ir.Err, context.Canceled) {
			t.Fatalf("image %d: err = %v, want context.Canceled", i, ir.Err)
		}
	}
}
