package batch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"hetjpeg/internal/faultgen"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/platform"
)

// salvageCorpusImage returns one clean encoded stream plus a
// truncated (salvageable) variant of it.
func salvageCorpusImage(t testing.TB, seed int64, ri int) (clean, hurt []byte) {
	t.Helper()
	img := imagegen.Generate(imagegen.Scene{Seed: seed, Detail: 0.5}, 160, 128)
	defer img.Release()
	data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{
		Quality: 85, Subsampling: jfif.Sub420, RestartInterval: ri,
	})
	if err != nil {
		t.Fatal(err)
	}
	spans := faultgen.EntropySpans(data)
	if len(spans) != 1 {
		t.Fatalf("got %d entropy spans, want 1", len(spans))
	}
	cut := spans[0].Start + (spans[0].End-spans[0].Start)*3/5
	return data, data[:cut]
}

// TestBatchSalvageDelivery mixes clean, salvageable and fatally corrupt
// images through both schedulers and asserts the delivery contract:
// salvaged images carry BOTH a usable Res (pixels identical to the
// scalar salvage reference) and an Err wrapping ErrPartialData; fatal
// images carry only Err; Result.Failed counts only the fatal ones.
func TestBatchSalvageDelivery(t *testing.T) {
	spec := platform.GTX560()
	clean, hurt := salvageCorpusImage(t, 61, 4)
	ref, refRep, refErr := jpegcodec.DecodeScalarSalvage(hurt)
	if refErr == nil || !errors.Is(refErr, jpegcodec.ErrPartialData) {
		t.Fatalf("reference salvage: err = %v, want ErrPartialData", refErr)
	}
	defer ref.Release()
	fatal := []byte("not a jpeg at all")
	datas := [][]byte{clean, hurt, fatal, hurt, clean}

	for _, sched := range []Scheduler{SchedulerBands, SchedulerPerImage} {
		t.Run(fmt.Sprintf("sched%d", sched), func(t *testing.T) {
			res, err := Decode(datas, Options{Spec: spec, Scheduler: sched, Salvage: true, Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed != 1 || res.Salvaged != 2 {
				t.Fatalf("Failed = %d, Salvaged = %d; want 1, 2", res.Failed, res.Salvaged)
			}
			for i, ir := range res.Images {
				switch i {
				case 2: // fatal
					if ir.Res != nil || ir.Err == nil {
						t.Fatalf("fatal image: Res = %v, Err = %v", ir.Res, ir.Err)
					}
				case 1, 3: // salvaged
					if ir.Res == nil || ir.Err == nil {
						t.Fatalf("salvaged image %d: Res = %v, Err = %v", i, ir.Res, ir.Err)
					}
					if !errors.Is(ir.Err, jpegcodec.ErrPartialData) {
						t.Fatalf("salvaged image %d: err %v does not wrap ErrPartialData", i, ir.Err)
					}
					rep := ir.Res.Salvage
					if rep == nil || rep.RecoveredMCUs != refRep.RecoveredMCUs || rep.Resyncs != refRep.Resyncs {
						t.Fatalf("salvaged image %d: report %+v differs from reference %+v", i, rep, refRep)
					}
					if !bytes.Equal(ir.Res.Image.Pix, ref.Pix) {
						t.Fatalf("salvaged image %d: pixels differ from scalar salvage reference", i)
					}
					ir.Res.Release()
				default: // clean
					if ir.Err != nil || ir.Res == nil {
						t.Fatalf("clean image %d: Res = %v, Err = %v", i, ir.Res, ir.Err)
					}
					if ir.Res.Salvage != nil {
						t.Fatalf("clean image %d carries a salvage report", i)
					}
					ir.Res.Release()
				}
			}
			if res.Timeline == nil || res.Timeline.Makespan() <= 0 {
				t.Fatal("salvaged batch produced no merged timeline")
			}
		})
	}
}

// TestBatchSalvageOffUnchanged asserts that without Options.Salvage a
// corrupt image still fails outright: Res nil, no partial delivery.
func TestBatchSalvageOffUnchanged(t *testing.T) {
	spec := platform.GTX560()
	_, hurt := salvageCorpusImage(t, 62, 4)
	res, err := Decode([][]byte{hurt}, Options{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Salvaged != 0 {
		t.Fatalf("Failed = %d, Salvaged = %d; want 1, 0", res.Failed, res.Salvaged)
	}
	if res.Images[0].Res != nil {
		t.Fatal("strict batch delivered a result for a corrupt image")
	}
}

// TestBatchMidCancellationDeliversCompleted cancels a streaming batch
// after the first result arrives and asserts that every submitted image
// still gets exactly one ImageResult — completed decodes are delivered,
// cancelled ones report an error, and no slot is left with neither.
func TestBatchMidCancellationDeliversCompleted(t *testing.T) {
	spec := platform.GTX560()
	clean, hurt := salvageCorpusImage(t, 63, 4)
	const n = 12
	for _, sched := range []Scheduler{SchedulerBands, SchedulerPerImage} {
		t.Run(fmt.Sprintf("sched%d", sched), func(t *testing.T) {
			ex, err := NewExecutor(Options{Spec: spec, Scheduler: sched, Salvage: true, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			submitted := 0
			go func() {
				defer ex.Close()
				for i := 0; i < n; i++ {
					data := clean
					if i%3 == 1 {
						data = hurt
					}
					if ex.Submit(ctx, i, data) != nil {
						return
					}
					submitted++
				}
			}()
			seen := make(map[int]bool)
			completed := 0
			first := true
			for ir := range ex.Results() {
				if first {
					cancel() // mid-flight: some images done, some not started
					first = false
				}
				if seen[ir.Index] {
					t.Fatalf("image %d delivered twice", ir.Index)
				}
				seen[ir.Index] = true
				if ir.Res == nil && ir.Err == nil {
					t.Fatalf("image %d: empty ImageResult {nil, nil}", ir.Index)
				}
				if ir.Res != nil {
					completed++
					ir.Res.Release()
				} else if !errors.Is(ir.Err, context.Canceled) && !errors.Is(ir.Err, jpegcodec.ErrPartialData) {
					t.Fatalf("image %d: unexpected error %v", ir.Index, ir.Err)
				}
			}
			if len(seen) != submitted {
				t.Fatalf("submitted %d images, got %d results", submitted, len(seen))
			}
			if completed == 0 {
				t.Fatal("cancellation swallowed every completed image")
			}
			t.Logf("sched%d: %d submitted, %d completed before cancellation took hold", sched, submitted, completed)
		})
	}
}

// TestBatchSalvageStress is the -race gate: many goroutines pushing a
// mix of salvageable, fatal and clean images through both schedulers
// with a mid-flight cancellation, checking only the delivery invariants
// (every submission answered once, salvaged implies both fields, no
// {nil,nil}) — any data race in the salvage bookkeeping shows up under
// the race detector.
func TestBatchSalvageStress(t *testing.T) {
	spec := platform.GTX560()
	clean, hurt := salvageCorpusImage(t, 64, 4)
	fatal := bytes.Repeat([]byte{0xFF, 0xD8, 0x00}, 4)
	n := 48
	if testing.Short() {
		n = 16
	}
	for _, sched := range []Scheduler{SchedulerBands, SchedulerPerImage} {
		ex, err := NewExecutor(Options{Spec: spec, Scheduler: sched, Salvage: true, Workers: 4, MaxInFlight: 6})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		var mu sync.Mutex
		submitted := make(map[int]bool)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g * n; i < (g+1)*n; i++ {
					var data []byte
					switch i % 3 {
					case 0:
						data = clean
					case 1:
						data = hurt
					default:
						data = fatal
					}
					if ex.Submit(ctx, i, data) == nil {
						mu.Lock()
						submitted[i] = true
						mu.Unlock()
					}
				}
			}(g)
		}
		go func() {
			wg.Wait()
			ex.Close()
		}()
		got := 0
		for ir := range ex.Results() {
			got++
			if ir.Res == nil && ir.Err == nil {
				t.Fatalf("sched%d: empty ImageResult for image %d", sched, ir.Index)
			}
			if ir.Res != nil && ir.Err != nil && !errors.Is(ir.Err, jpegcodec.ErrPartialData) {
				t.Fatalf("sched%d image %d: both fields set but err is %v", sched, ir.Index, ir.Err)
			}
			if got == n { // partway through: yank the context
				cancel()
			}
			if ir.Res != nil {
				ir.Res.Release()
			}
		}
		cancel()
		if got != len(submitted) {
			t.Fatalf("sched%d: %d submissions, %d results", sched, len(submitted), got)
		}
	}
}
