package batch

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hetjpeg/internal/core"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/perfmodel"
)

// This file implements the wall-clock band scheduler: the paper's
// pipelined execution and dynamic partitioning ideas applied to real
// host time across a whole batch. Decoding splits at the pipeline
// boundary into two stages:
//
//   - Stage 1 (entropy): strictly sequential Huffman decoding, one
//     stream per image, but several images in flight at once.
//   - Stage 2 (back phase): the fused dequant+IDCT / upsample / color
//     pipeline, decomposed into MCU-row-band tasks.
//
// One pool of workers runs both stages. Band tasks from *all* in-flight
// images share per-worker work-stealing deques (owner pops newest —
// cache-hot after its entropy pass — thieves steal oldest from the
// longest deque), so a multi-megapixel straggler's back phase is
// shredded across every idle worker instead of pinning one, and a
// worker with no bands left pulls the next image's entropy stream —
// entropy work naturally overlaps back-phase work across images. Real
// pixels come from the fused scalar band pipeline (byte-identical to
// every other execution path); each image's virtual timeline and stats
// are built by core.Prepared.FinishVirtual exactly as the per-image
// executor would, so the paper's virtual-time story (per-image PPS,
// deterministic merge) is unchanged.
//
// Two knobs adapt online instead of being tuned offline:
//
//   - Band size: bands aim at a fixed wall-clock cost (bandTargetNs),
//     derived from an EWMA of measured back-phase ns/MCU, so scheduling
//     overhead stays negligible while stragglers still split finely.
//   - Images in flight: enough concurrent entropy streams to keep the
//     band pool fed — derived from the EWMA ratio of entropy to
//     back-phase time — bounded by MaxInFlight (whole-image buffers are
//     the memory cost of an in-flight image).
//
// When a performance model is present, the EWMAs are seeded from its
// predictions for the first image and then corrected by measurement —
// the same predict-then-correct feedback loop as partition.Repartition,
// but against the host clock instead of virtual time.

const (
	// bandTargetNs is the wall-clock cost one band task aims for:
	// large enough that deque traffic is noise, small enough that a
	// straggler's tail spreads across the pool.
	bandTargetNs = 200e3
	// minInflight keeps at least one image's entropy overlapping
	// another's back phase — the cross-image pipeline of the package
	// doc, in wall-clock time.
	minInflight = 2
)

// calibrator is the online performance model: EWMA-corrected ns/MCU of
// each stage, optionally seeded from the offline perfmodel fit.
//
// Entropy keeps three rates: a progressive image traverses its
// coefficient grid once per scan, so its entropy cost per MCU is a
// multiple of the baseline rate, while a DC-only (baseline 1/8-scale)
// stream skips AC stores and runs cheaper than baseline. Folding the
// classes into one EWMA would make a burst of one class skew band
// sizing and in-flight depth for the others; separate rates keep the
// calibration honest under mixed traffic. The back phase learns one
// rate per decode scale (perfmodel.ScaledRates): a DC-only band is
// orders of magnitude cheaper per MCU than a full-size band.
type calibrator struct {
	entPerMCU     perfmodel.OnlineRate  // stage 1: baseline entropy ns per MCU
	entPerMCUProg perfmodel.OnlineRate  // stage 1: progressive (multi-scan) entropy ns per MCU
	entPerMCUDC   perfmodel.OnlineRate  // stage 1: DC-only (baseline 1/8 scale) entropy ns per MCU
	backPerMCU    perfmodel.ScaledRates // stage 2: back-phase ns per MCU, per decode scale
	// bytesPerMCU converts input bytes into estimated MCU counts — the
	// bridge a service needs to turn "this many bytes are pending" into
	// "this long until the queue drains" (Retry-After) using the ns/MCU
	// rates above. Observed per intact image at entropy completion.
	bytesPerMCU perfmodel.OnlineRate
	seeded      bool
}

// entropyRate returns the EWMA matching the image class.
func (c *calibrator) entropyRate(progressive, dcOnly bool) *perfmodel.OnlineRate {
	if progressive {
		return &c.entPerMCUProg
	}
	if dcOnly {
		return &c.entPerMCUDC
	}
	return &c.entPerMCU
}

// seedFromModel primes the EWMAs from the fitted model's predictions.
// The fit predicts the *simulated* platform, not this host, so only the
// magnitude and entropy:back ratio are borrowed for the first
// scheduling decisions; measurements correct them immediately (the
// Repartition-style feedback step). Entropy classes seed once from the
// first image; each decode scale's back-phase rate seeds from the first
// image seen at that scale, evaluating the fitted parallel-phase
// polynomial at the scaled output geometry (Seed is a no-op once a
// value exists).
func (c *calibrator) seedFromModel(model *perfmodel.Model, f *jpegcodec.Frame, d float64) {
	if model == nil {
		return
	}
	sub := f.Sub
	if sub == jfif.SubGray {
		sub = jfif.Sub444
	}
	sm := model.ForSub(sub)
	if sm == nil {
		return
	}
	mcus := float64(f.MCURows * f.MCUsPerRow)
	w, h := float64(f.Img.Width), float64(f.Img.Height)
	if !c.seeded {
		c.seeded = true
		c.entPerMCU.Seed(sm.THuff(w, h, d) / mcus)
		// The fit was trained on single-scan baseline images; a progressive
		// image pays roughly one baseline-shaped pass per scan, and the
		// DC-only entropy pass is the baseline pass minus its stores.
		if f.Img.Progressive {
			c.entPerMCUProg.Seed(c.entPerMCU.Value() * float64(len(f.Img.Scans)))
		}
		c.entPerMCUDC.Seed(c.entPerMCU.Value())
	}
	s := float64(f.Scale)
	if s < 1 {
		s = 1
	}
	c.backPerMCU.At(f.Scale).Seed(sm.PCPUScalar.Eval(w/s, h/s) / mcus)
}

// entropyEstimate is the effective entropy rate for in-flight sizing:
// the maximum over the classes seen so far, so a mix of baseline,
// progressive and DC-only traffic keeps enough entropy streams open to
// feed the band pool even when the slower class dominates.
func (c *calibrator) entropyEstimate() float64 {
	e := c.entPerMCU.Value()
	if p := c.entPerMCUProg.Value(); p > e {
		e = p
	}
	if dc := c.entPerMCUDC.Value(); dc > e {
		e = dc
	}
	return e
}

// bandRows sizes one image's band tasks from the calibrated back-phase
// rate of its decode scale: aim for bandTargetNs per band, but never
// coarser than one band per worker (a lone straggler must still shred
// across the pool).
func (c *calibrator) bandRows(f *jpegcodec.Frame, workers int) int {
	rows := f.MCURows
	br := 1
	if per := c.backPerMCU.At(f.Scale).Value(); per > 0 {
		br = int(bandTargetNs/(per*float64(f.MCUsPerRow)) + 0.5)
	} else if workers > 0 {
		// Cold start: a few bands per worker.
		br = rows / (4 * workers)
	}
	if br < 1 {
		br = 1
	}
	if workers > 1 {
		if lim := (rows + workers - 1) / workers; br > lim {
			br = lim
		}
	}
	if br > rows {
		br = rows
	}
	return br
}

// inflightTarget chooses how many images may be in flight: the share of
// workers the entropy stage needs to keep the band pool fed (the
// entropy fraction of per-MCU work), plus minInflight of pipeline
// slack, clamped to the memory bound.
func (c *calibrator) inflightTarget(workers, maxInflight int) int {
	t := minInflight + workers/2 // cold start
	e, b := c.entropyEstimate(), c.backPerMCU.Max()
	if e > 0 && b > 0 {
		t = int(float64(workers)*e/(e+b)+0.5) + minInflight
	}
	if t < minInflight {
		t = minInflight
	}
	if t > maxInflight {
		t = maxInflight
	}
	return t
}

// flightImage is one image between entropy start and result delivery.
type flightImage struct {
	ctx   context.Context
	index int
	prep  *core.Prepared
	plan  *jpegcodec.BandPlan
	res   *core.Result
	// remaining and err are guarded by bandScheduler.mu.
	remaining int
	err       error
}

// bandTask is one schedulable unit of stage 2.
type bandTask struct {
	img  *flightImage
	band int
}

// bandScheduler is the two-stage pipelined engine behind Executor when
// Options.Scheduler is SchedulerBands.
type bandScheduler struct {
	opts        Options
	workers     int
	maxInflight int
	results     chan<- ImageResult
	// stopc mirrors Executor.stopc: once closed, deliveries to an
	// abandoned Results reader are discarded instead of blocking.
	stopc <-chan struct{}

	mu         sync.Mutex
	cond       *sync.Cond
	entropyQ   []job        // accepted images awaiting stage 1
	deques     [][]bandTask // per-worker band deques
	inflight   int          // images between acceptance and delivery
	target     int          // calibrated in-flight budget
	intakeDone bool
	cal        calibrator
}

func newBandScheduler(opts Options, workers int, results chan<- ImageResult, stopc <-chan struct{}) *bandScheduler {
	s := &bandScheduler{
		opts:        opts,
		workers:     workers,
		maxInflight: opts.maxInflight(),
		results:     results,
		stopc:       stopc,
		deques:      make([][]bandTask, workers),
	}
	s.cond = sync.NewCond(&s.mu)
	s.target = s.cal.inflightTarget(workers, s.maxInflight)
	return s
}

// tryAccept admits one job iff the in-flight budget has room right now,
// bypassing the intake goroutine's blocking wait — the non-blocking
// admission behind Executor.TrySubmitScaled. The Executor's senders
// gate guarantees no tryAccept runs after intakeDone is set, so the
// workers' exit condition (intakeDone && inflight == 0) stays sound.
func (s *bandScheduler) tryAccept(j job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight >= s.target {
		return false
	}
	s.inflight++
	s.entropyQ = append(s.entropyQ, j)
	s.cond.Broadcast()
	return true
}

// queueStats snapshots occupancy and calibration under the scheduling
// lock.
func (s *bandScheduler) queueStats() QueueStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return QueueStats{
		InFlight:        s.inflight,
		Target:          s.target,
		Queued:          len(s.entropyQ),
		EntropyNsPerMCU: s.cal.entropyEstimate(),
		BackNsPerMCU:    s.cal.backPerMCU.Max(),
		BytesPerMCU:     s.cal.bytesPerMCU.Value(),
	}
}

// intake accepts submitted jobs into the pipeline, blocking while the
// in-flight budget is spent — the backpressure Submit callers feel.
func (s *bandScheduler) intake(jobs <-chan job, wg *sync.WaitGroup) {
	defer wg.Done()
	for j := range jobs {
		s.mu.Lock()
		for s.inflight >= s.target {
			s.cond.Wait()
		}
		s.inflight++
		s.entropyQ = append(s.entropyQ, j)
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.intakeDone = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// worker is one pool goroutine. Band tasks come first (own deque, then
// stealing); with no bands runnable it starts the next image's entropy
// stream; with nothing at all it sleeps until the state changes.
func (s *bandScheduler) worker(id int, wg *sync.WaitGroup) {
	defer wg.Done()
	scratch := &jpegcodec.ConvertScratch{}
	s.mu.Lock()
	for {
		if t, ok := s.take(id); ok {
			s.runBand(t, scratch)
			continue
		}
		if len(s.entropyQ) > 0 {
			j := s.entropyQ[0]
			s.entropyQ = s.entropyQ[1:]
			s.runEntropy(id, j)
			continue
		}
		if s.intakeDone && s.inflight == 0 {
			break
		}
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// take pops a band task: newest from the worker's own deque (cache-hot
// LIFO), else the oldest from the longest other deque (steal FIFO).
// Caller holds mu.
func (s *bandScheduler) take(id int) (bandTask, bool) {
	if d := s.deques[id]; len(d) > 0 {
		t := d[len(d)-1]
		s.deques[id] = d[:len(d)-1]
		return t, true
	}
	victim, best := -1, 0
	for i, d := range s.deques {
		if i != id && len(d) > best {
			victim, best = i, len(d)
		}
	}
	if victim < 0 {
		return bandTask{}, false
	}
	d := s.deques[victim]
	t := d[0]
	s.deques[victim] = d[1:]
	return t, true
}

// runEntropy executes stage 1 for one image and, on success, plans its
// bands onto the worker's own deque. Called and returns with mu held.
func (s *bandScheduler) runEntropy(id int, j job) {
	s.mu.Unlock()
	img, entNs, ir := s.entropyStage(j)
	s.mu.Lock()
	if img == nil {
		s.deliver(ir)
		return
	}
	f := img.prep.Frame()
	mcus := f.MCURows * f.MCUsPerRow
	s.cal.seedFromModel(s.opts.Model, f, f.Img.EntropyDensity())
	if img.res.Salvage == nil {
		// A salvaged stream lost entropy bytes: its measured rate would
		// drag the EWMA below the cost of intact traffic.
		s.cal.entropyRate(f.Img.Progressive, f.DCOnly()).Observe(entNs / float64(mcus))
		s.cal.bytesPerMCU.Observe(float64(len(j.data)) / float64(mcus))
	}
	s.target = s.cal.inflightTarget(s.workers, s.maxInflight)
	img.plan = jpegcodec.PlanBands(f, 0, f.MCURows, s.cal.bandRows(f, s.workers))
	img.remaining = img.plan.Bands()
	// Push in reverse so the owner's LIFO pop executes band 0 first.
	for i := img.plan.Bands() - 1; i >= 0; i-- {
		s.deques[id] = append(s.deques[id], bandTask{img: img, band: i})
	}
	s.cond.Broadcast()
}

// entropyStage parses and entropy-decodes one image (no lock held) and
// builds its virtual-time result. On failure the returned flightImage
// is nil and the ImageResult carries the error.
func (s *bandScheduler) entropyStage(j job) (*flightImage, float64, ImageResult) {
	fail := func(err error) (*flightImage, float64, ImageResult) {
		if j.ctx.Err() == nil {
			err = fmt.Errorf("batch: image %d: %w", j.index, err)
		}
		return nil, 0, ImageResult{Index: j.index, Err: err}
	}
	if err := j.ctx.Err(); err != nil {
		return fail(err)
	}
	prep, err := core.Prepare(j.data, core.Options{
		Mode:    s.opts.Mode,
		Spec:    s.opts.Spec,
		Model:   s.opts.Model,
		Scale:   j.scale,
		Salvage: s.opts.Salvage,
	})
	if err != nil {
		return fail(err)
	}
	t0 := time.Now()
	if err := prep.EntropyDecode(j.ctx); err != nil {
		prep.Release()
		return fail(err)
	}
	entNs := float64(time.Since(t0))
	res, err := prep.FinishVirtual()
	if err != nil {
		prep.Release()
		return fail(err)
	}
	return &flightImage{ctx: j.ctx, index: j.index, prep: prep, res: res}, entNs, ImageResult{}
}

// runBand executes one band task and accounts for the image's
// completion. Called and returns with mu held.
func (s *bandScheduler) runBand(t bandTask, scratch *jpegcodec.ConvertScratch) {
	img := t.img
	skip := img.err != nil
	s.mu.Unlock()
	var bandNs float64
	var bandErr error
	if !skip {
		if err := img.ctx.Err(); err != nil {
			bandErr = err
		} else {
			t0 := time.Now()
			img.plan.ExecBand(t.band, img.prep.Output(), scratch)
			bandNs = float64(time.Since(t0))
		}
	}
	s.mu.Lock()
	if bandErr != nil && img.err == nil {
		img.err = bandErr
	}
	if bandNs > 0 && img.res.Salvage == nil {
		// Salvaged bands render zeroed MCUs through the DC-flat fast
		// path — cheaper per MCU than intact pixel work, so they would
		// skew the back-phase EWMA downward.
		f := img.prep.Frame()
		mcus := img.plan.BandMCURows(t.band) * f.MCUsPerRow
		s.cal.backPerMCU.At(f.Scale).Observe(bandNs / float64(mcus))
	}
	img.remaining--
	if img.remaining == 0 {
		s.complete(img, scratch)
	}
}

// complete finishes an image whose last band ran: seam rows, then
// delivery (or buffer release on failure). A salvaged image delivers
// with BOTH Res and Err set, matching decodeOne's contract. Called and
// returns with mu held.
func (s *bandScheduler) complete(img *flightImage, scratch *jpegcodec.ConvertScratch) {
	err := img.err
	s.mu.Unlock()
	ir := ImageResult{Index: img.index}
	if err != nil {
		img.prep.Release()
		ir.Err = err
	} else {
		img.plan.FinishSeams(img.prep.Output(), scratch)
		ir.Res = img.res
		if serr := img.res.Salvage.Err(); serr != nil {
			ir.Err = fmt.Errorf("batch: image %d: %w", img.index, serr)
		}
	}
	s.mu.Lock()
	s.deliver(ir)
}

// deliver sends one result and retires its in-flight slot. Called and
// returns with mu held (the send itself is unlocked). After Stop the
// Results reader may be gone: the result is discarded and its buffers
// released so the pipeline always drains.
func (s *bandScheduler) deliver(ir ImageResult) {
	s.mu.Unlock()
	select {
	case s.results <- ir:
	case <-s.stopc:
		if ir.Res != nil {
			ir.Res.Release()
		}
	}
	s.mu.Lock()
	s.inflight--
	s.cond.Broadcast()
}
