// Package batch extends the paper's single-image pipeline to streams of
// images — the workload its introduction motivates (billions of photos
// viewed through browsers and galleries). A batch decode keeps the
// paper's invariant that entropy decoding is sequential per image, but
// overlaps image k's CPU-side Huffman work with image k-1's device-side
// parallel phase, so the device never drains between images. Each image
// still uses the per-image dynamic partitioning (PPS) internally when a
// model is available.
package batch

import (
	"fmt"

	"hetjpeg/internal/core"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
	"hetjpeg/internal/sim"
)

// Options configures a batch decode.
type Options struct {
	Spec  *platform.Spec
	Model *perfmodel.Model
	// Mode is the per-image execution mode (default ModePPS when a
	// model is present, ModePipelinedGPU otherwise).
	Mode core.Mode
	// hasMode distinguishes the zero value from an explicit Sequential.
	ModeSet bool
}

// ImageResult is one decoded image of the batch.
type ImageResult struct {
	Index int
	Res   *core.Result
	Err   error
}

// Result summarizes a batch decode.
type Result struct {
	Images []ImageResult
	// SerialNs is the sum of per-image virtual makespans (what a naive
	// loop would cost).
	SerialNs float64
	// PipelinedNs is the virtual makespan when consecutive images
	// overlap: image k's CPU work runs behind image k-1's device tail.
	PipelinedNs float64
	// Timeline is the merged batch schedule.
	Timeline *sim.Timeline
}

// Decode decodes the images in order, producing per-image results plus
// the overlapped batch timeline.
func Decode(datas [][]byte, opts Options) (*Result, error) {
	if opts.Spec == nil {
		return nil, fmt.Errorf("batch: Spec is required")
	}
	mode := opts.Mode
	if !opts.ModeSet {
		if opts.Model != nil {
			mode = core.ModePPS
		} else {
			mode = core.ModePipelinedGPU
		}
	}

	out := &Result{Timeline: sim.New()}
	// The merged timeline re-plays every image's tasks in order. The CPU
	// lane is strictly serial across images (one control thread); the
	// device lane is an in-order queue, so image k's kernels queue after
	// image k-1's. Overlap emerges exactly as in the paper's Figure 5b,
	// but across image boundaries.
	var gpuPrev *sim.Task
	for i, data := range datas {
		res, err := core.Decode(data, core.Options{
			Mode:  mode,
			Spec:  opts.Spec,
			Model: opts.Model,
		})
		out.Images = append(out.Images, ImageResult{Index: i, Res: res, Err: err})
		if err != nil {
			return out, fmt.Errorf("batch: image %d: %w", i, err)
		}
		out.SerialNs += res.TotalNs

		// Replay this image's tasks onto the merged timeline, keeping
		// per-image dependency structure: CPU tasks serialize on the
		// shared CPU lane; the first GPU task of the image additionally
		// waits for its dispatch (tracked via task order).
		idMap := make(map[int]*sim.Task)
		for _, t := range res.Timeline.Tasks() {
			var deps []*sim.Task
			if t.Resource == sim.ResGPU {
				// Preserve the dispatch dependency: the original task
				// started no earlier than its CPU-side predecessor; the
				// simplest faithful mapping is to depend on the latest
				// replayed CPU task.
				if last := idMap[lastCPUID(res.Timeline, t)]; last != nil {
					deps = append(deps, last)
				}
				if gpuPrev != nil {
					deps = append(deps, gpuPrev)
				}
			}
			nt := out.Timeline.Add(t.Resource, t.Kind, fmt.Sprintf("img%d:%s", i, t.Label), t.Cost, deps...)
			idMap[t.ID] = nt
			if t.Resource == sim.ResGPU {
				gpuPrev = nt
			}
		}
	}
	out.PipelinedNs = out.Timeline.Makespan()
	return out, nil
}

// lastCPUID finds the ID of the most recent CPU-lane task submitted
// before t in tl (its effective dispatch).
func lastCPUID(tl *sim.Timeline, t *sim.Task) int {
	last := -1
	for _, u := range tl.Tasks() {
		if u.ID >= t.ID {
			break
		}
		if u.Resource == sim.ResCPU {
			last = u.ID
		}
	}
	return last
}

// Gain reports the batch-pipelining benefit: serial time over overlapped
// time.
func (r *Result) Gain() float64 {
	if r.PipelinedNs == 0 {
		return 0
	}
	return r.SerialNs / r.PipelinedNs
}
