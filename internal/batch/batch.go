// Package batch extends the paper's single-image pipeline to streams of
// images — the workload its introduction motivates (billions of photos
// viewed through browsers and galleries). It is two schedulers in one:
//
// In wall-clock time, a two-stage pipelined band scheduler (the
// default, see scheduler.go) overlaps sequential entropy decoding of
// several in-flight images with a shared work-stealing pool executing
// MCU-row-band back-phase tasks from all of them, with band size and
// in-flight depth chosen by an online-calibrated performance model. The
// PR 1 whole-image worker pool remains available as
// SchedulerPerImage for comparison. Submit/Results give a streaming
// interface for services; Decode is the slice-based convenience
// wrapper. Both schedulers produce byte-identical pixels and identical
// virtual timelines.
//
// In virtual time, the paper's semantics are preserved exactly: each
// image's timeline keeps the invariant that entropy decoding is
// sequential per image, and the per-image timelines are merged
// deterministically (in submission order) into a single batch schedule
// in which image k's CPU-side Huffman work overlaps image k-1's
// device-side parallel phase, so the device never drains between
// images. Each image still uses the per-image dynamic partitioning
// (PPS) internally when a model is available.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"hetjpeg/internal/core"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
	"hetjpeg/internal/sim"
)

// ErrClosed reports a submission attempted after Close (or Stop). It is
// a caller lifecycle error, not a per-image decode failure: nothing was
// accepted and no ImageResult will be delivered for it. Check it with
// errors.Is.
var ErrClosed = errors.New("batch: executor closed")

// ErrBusy reports a TrySubmitScaled refused because the executor has no
// admission capacity right now. The image was not accepted; a service
// front end translates this into load shedding (HTTP 429) instead of
// queueing without bound. Check it with errors.Is.
var ErrBusy = errors.New("batch: executor at capacity")

// Scheduler selects the wall-clock execution engine of a batch decode.
// Pixels and virtual timelines are identical across schedulers; only
// host wall-clock behavior differs.
type Scheduler int

const (
	// SchedulerBands, the default, is the two-stage pipelined engine:
	// entropy decoding of several images in flight overlapped with a
	// shared work-stealing pool of MCU-row-band back-phase tasks.
	SchedulerBands Scheduler = iota
	// SchedulerPerImage is the whole-image worker pool: each worker
	// decodes one image end to end. Kept for comparison (a mixed-size
	// corpus leaves workers idle behind a large straggler).
	SchedulerPerImage
)

// Options configures a batch decode.
type Options struct {
	Spec  *platform.Spec
	Model *perfmodel.Model
	// Mode is the per-image execution mode. The zero value
	// (core.ModeAuto) resolves to ModePPS when a model is present and
	// ModePipelinedGPU otherwise.
	Mode core.Mode
	// Workers bounds the wall-clock decode parallelism (band workers,
	// or whole-image workers under SchedulerPerImage). Zero means
	// runtime.GOMAXPROCS(0). The virtual batch timeline is independent
	// of Workers.
	Workers int
	// Scheduler selects the wall-clock engine (default SchedulerBands).
	Scheduler Scheduler
	// MaxInFlight caps how many images the band scheduler holds open
	// at once (each costs whole-image coefficient + sample + RGB
	// buffers). Zero means Workers+2. The online model chooses the
	// actual depth within [2, MaxInFlight]. The intake additionally
	// holds at most one submitted-but-unadmitted image's input bytes,
	// so peak input retention is MaxInFlight+1 images.
	MaxInFlight int
	// Scale selects decode-to-scale for the batch's images (the
	// gallery/thumbnailer workload); Executor.SubmitScaled overrides it
	// per image. The zero value decodes full size. The band scheduler's
	// calibrator learns a separate back-phase rate per scale, so
	// mixed-scale executors stay accurately sized.
	Scale jpegcodec.Scale
	// Salvage enables error-resilient decoding per image: a corrupt
	// stream that can be partially recovered delivers an ImageResult
	// with BOTH Res and Err set — Err wraps jpegcodec.ErrPartialData and
	// Res.Salvage describes the damage. Unsalvageable images still fail
	// as usual (Res nil).
	Salvage bool
}

func (o Options) mode() core.Mode { return o.Mode.Resolve(o.Model) }

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) maxInflight() int {
	if o.MaxInFlight > 0 {
		return o.MaxInFlight
	}
	return o.workers() + 2
}

// ImageResult is one decoded image of the batch.
//
// Err records that image's failure in isolation: a corrupt JPEG never
// aborts the batch. The other images decode normally and the failed
// one contributes nothing to the merged timeline. With Options.Salvage
// a partially recovered image carries BOTH a usable Res and an Err
// wrapping jpegcodec.ErrPartialData; without it (and for images beyond
// salvage) Err non-nil implies Res nil. Callers iterating a batch must
// therefore check Err per image and treat Res == nil as the true
// failure condition.
type ImageResult struct {
	Index int
	Res   *core.Result
	Err   error
}

// Result summarizes a batch decode.
type Result struct {
	Images []ImageResult
	// Failed counts images that produced no pixels (Res is nil).
	Failed int
	// Salvaged counts images that decoded impaired under
	// Options.Salvage: Res and Err are both set. Salvaged images count
	// toward SerialNs and the merged timeline, not toward Failed.
	Salvaged int
	// SerialNs is the sum of per-image virtual makespans (what a naive
	// loop would cost).
	SerialNs float64
	// PipelinedNs is the virtual makespan when consecutive images
	// overlap: image k's CPU work runs behind image k-1's device tail.
	PipelinedNs float64
	// Timeline is the merged batch schedule.
	Timeline *sim.Timeline
}

// Gain reports the batch-pipelining benefit: serial time over overlapped
// time.
func (r *Result) Gain() float64 {
	if r.PipelinedNs == 0 {
		return 0
	}
	return r.SerialNs / r.PipelinedNs
}

// job is one submitted image.
type job struct {
	ctx   context.Context
	index int
	data  []byte
	// scale is the decode scale for this image (already validated).
	scale jpegcodec.Scale
}

// Executor is a concurrent batch-decode service: submitted images are
// decoded by the configured wall-clock scheduler and delivered on
// Results in completion order. A long-running process creates one
// Executor and feeds it requests; one-shot batches can use Decode
// instead.
type Executor struct {
	opts    Options
	jobs    chan job
	results chan ImageResult
	wg      sync.WaitGroup
	once    sync.Once
	// mu guards closed; senders counts submissions in progress so Close
	// can close the jobs channel only once no Submit can be mid-send —
	// Submit racing Close returns ErrClosed instead of panicking.
	mu      sync.Mutex
	closed  bool
	senders sync.WaitGroup
	// stopc is closed by Stop: undelivered results are discarded (their
	// buffers released) instead of blocking on an absent Results reader,
	// so abandoning Results cannot leak the worker goroutines.
	stopc    chan struct{}
	stopOnce sync.Once
	// bands is the band scheduler when Options.Scheduler is
	// SchedulerBands (nil under SchedulerPerImage); TrySubmitScaled and
	// QueueStats consult its admission state directly.
	bands *bandScheduler
	// devWorkers is each decode's share of the host's device-simulation
	// budget (SchedulerPerImage only): GOMAXPROCS split evenly across
	// the pool width, so N concurrent decodes are hard-bounded at
	// GOMAXPROCS device goroutines total instead of N×GOMAXPROCS. The
	// static split is deterministic (a decode's wall-clock does not
	// depend on what else was momentarily in flight); size Workers to
	// the expected concurrency — a lone image on a wide pool pays a
	// 1/Workers share.
	devWorkers int
}

// NewExecutor starts the scheduler's worker goroutines.
func NewExecutor(opts Options) (*Executor, error) {
	if opts.Spec == nil {
		return nil, fmt.Errorf("batch: Spec is required")
	}
	if err := opts.Scale.Validate(); err != nil {
		// A bad scale is a configuration problem like a missing Spec:
		// fail the batch up front instead of reporting it as N
		// per-image decode failures.
		return nil, fmt.Errorf("batch: %w", err)
	}
	n := opts.workers()
	e := &Executor{
		opts:    opts,
		jobs:    make(chan job),
		results: make(chan ImageResult, n),
		stopc:   make(chan struct{}),
	}
	switch opts.Scheduler {
	case SchedulerPerImage:
		e.devWorkers = runtime.GOMAXPROCS(0) / n
		if e.devWorkers < 1 {
			e.devWorkers = 1
		}
		e.wg.Add(n)
		for i := 0; i < n; i++ {
			go e.worker()
		}
	case SchedulerBands:
		s := newBandScheduler(opts, n, e.results, e.stopc)
		e.bands = s
		e.wg.Add(n + 1)
		go s.intake(e.jobs, &e.wg)
		for i := 0; i < n; i++ {
			go s.worker(i, &e.wg)
		}
	default:
		return nil, fmt.Errorf("batch: unknown scheduler %d", opts.Scheduler)
	}
	return e, nil
}

func (e *Executor) worker() {
	defer e.wg.Done()
	for j := range e.jobs {
		ir := e.decodeOne(j)
		select {
		case e.results <- ir:
		case <-e.stopc:
			// Stop: the Results reader is gone; hand the pixel and
			// coefficient slabs back instead of blocking forever.
			if ir.Res != nil {
				ir.Res.Release()
			}
		}
	}
}

func (e *Executor) decodeOne(j job) ImageResult {
	if err := j.ctx.Err(); err != nil {
		return ImageResult{Index: j.index, Err: err}
	}
	res, err := core.Decode(j.data, core.Options{
		Mode:          e.opts.mode(),
		Spec:          e.opts.Spec,
		Model:         e.opts.Model,
		DeviceWorkers: e.devWorkers,
		Scale:         j.scale,
		Salvage:       e.opts.Salvage,
	})
	if err != nil {
		// A salvaged decode returns both a usable result and an error
		// wrapping jpegcodec.ErrPartialData; pass both through.
		return ImageResult{Index: j.index, Res: res, Err: fmt.Errorf("batch: image %d: %w", j.index, err)}
	}
	return ImageResult{Index: j.index, Res: res}
}

// Submit enqueues one image at the executor's configured scale. It
// blocks while the scheduler's intake is full — the band scheduler's
// calibrated in-flight image budget (at most Options.MaxInFlight), or,
// under SchedulerPerImage, all workers busy with the result buffer full
// — and returns ctx.Err() if ctx is cancelled first. Index is echoed in
// the corresponding ImageResult.
//
// Submit after Close (or racing it) returns ErrClosed; it never panics.
// A Submit already blocked in the intake when Close lands completes
// normally — its image counts as admitted and is decoded and delivered
// before Results closes.
func (e *Executor) Submit(ctx context.Context, index int, data []byte) error {
	return e.SubmitScaled(ctx, index, data, e.opts.Scale)
}

// SubmitScaled is Submit with a per-image decode scale, overriding the
// executor's Options.Scale for this image only — a long-lived service
// decodes thumbnail and full-size requests through one executor, and
// the band scheduler's calibrator keeps a separate back-phase rate per
// scale so mixed traffic stays accurately sized. An invalid scale fails
// immediately with ErrUnsupportedScale.
func (e *Executor) SubmitScaled(ctx context.Context, index int, data []byte, scale jpegcodec.Scale) error {
	if err := scale.Validate(); err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	if !e.beginSubmit() {
		return ErrClosed
	}
	defer e.senders.Done()
	select {
	case e.jobs <- job{ctx: ctx, index: index, data: data, scale: scale}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-e.stopc:
		return ErrClosed
	}
}

// TrySubmitScaled is the non-blocking admission path: the image is
// accepted only if the scheduler has capacity for it right now —
// under SchedulerBands, a free slot in the calibrated in-flight budget;
// under SchedulerPerImage, an idle worker — and otherwise the call
// returns ErrBusy immediately without queueing. A service puts this (or
// a bounded queue draining into Submit) in front of its request intake
// so overload becomes explicit load shedding instead of unbounded
// buffering. ctx is the decode's cancellation context (it is not waited
// on here); a successful TrySubmitScaled delivers exactly one
// ImageResult, like Submit.
func (e *Executor) TrySubmitScaled(ctx context.Context, index int, data []byte, scale jpegcodec.Scale) error {
	if err := scale.Validate(); err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	if !e.beginSubmit() {
		return ErrClosed
	}
	defer e.senders.Done()
	j := job{ctx: ctx, index: index, data: data, scale: scale}
	if e.bands != nil {
		if !e.bands.tryAccept(j) {
			return ErrBusy
		}
		return nil
	}
	select {
	case e.jobs <- j:
		return nil
	default:
		return ErrBusy
	}
}

// beginSubmit registers a submission in progress unless the executor is
// closed. The senders gate orders every in-flight submission before
// Close's close(e.jobs): a Submit that got in completes its send (the
// intake is still draining), one that lost the race sees closed first.
func (e *Executor) beginSubmit() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.senders.Add(1)
	return true
}

// QueueStats is a point-in-time snapshot of the band scheduler's
// occupancy and calibrated rates — what a service front end needs to
// compute honest backpressure signals (a Retry-After from the fitted
// ns/MCU rates, an overload watermark from InFlight vs Target). Under
// SchedulerPerImage all fields are zero.
type QueueStats struct {
	// InFlight counts images between admission and result delivery.
	InFlight int `json:"inFlight"`
	// Target is the calibrated in-flight budget: admission blocks (and
	// TrySubmitScaled sheds) while InFlight >= Target.
	Target int `json:"target"`
	// Queued counts admitted images still waiting for their entropy
	// stage to start.
	Queued int `json:"queued"`
	// EntropyNsPerMCU and BackNsPerMCU are the calibrator's current
	// ns/MCU estimates (the maximum across entropy classes and decode
	// scales — the conservative drain-time basis); zero until seeded or
	// observed.
	EntropyNsPerMCU float64 `json:"entropyNsPerMcu"`
	BackNsPerMCU    float64 `json:"backNsPerMcu"`
	// BytesPerMCU converts pending input bytes into estimated MCUs
	// (zero until the first image completes its entropy stage).
	BytesPerMCU float64 `json:"bytesPerMcu"`
}

// QueueStats snapshots the scheduler's admission state. The snapshot is
// advisory: it is stale the moment it returns, which is fine for load
// shedding and Retry-After hints.
func (e *Executor) QueueStats() QueueStats {
	if e.bands == nil {
		return QueueStats{}
	}
	return e.bands.queueStats()
}

// Results returns the channel on which decoded images arrive, in
// completion order (not submission order). It is closed after Close
// once all in-flight decodes have drained. Callers must drain Results
// until it closes (or call Stop): the scheduler's workers block
// delivering to an absent reader.
func (e *Executor) Results() <-chan ImageResult { return e.results }

// Close stops accepting submissions and, once the in-flight decodes
// drain, closes the Results channel. It does not block. Submissions
// racing Close either complete (their images are decoded and delivered
// before Results closes) or return ErrClosed; the jobs channel is
// closed only after no submission can be mid-send, so the race never
// panics.
func (e *Executor) Close() {
	e.once.Do(func() {
		e.mu.Lock()
		e.closed = true
		e.mu.Unlock()
		go func() {
			e.senders.Wait()
			close(e.jobs)
			e.wg.Wait()
			close(e.results)
		}()
	})
}

// Stop is the abandonment-safe shutdown: Close plus discarding. A
// caller that walked away from Results mid-stream calls Stop instead of
// Close; undelivered results are released back to the slab pools
// instead of blocking the workers on a send nobody receives, blocked
// Submit calls return ErrClosed, and every worker goroutine exits (the
// no-leak guarantee). Results still closes once the pipeline drains, so
// a racing reader sees a clean end of stream rather than a hang.
func (e *Executor) Stop() {
	e.stopOnce.Do(func() { close(e.stopc) })
	e.Close()
}

// Decode decodes the images concurrently (bounded by Options.Workers),
// producing per-image results plus the overlapped batch timeline. It
// returns an error only for configuration problems (a missing Spec);
// per-image decode failures are isolated in ImageResult.Err and counted
// in Result.Failed.
func Decode(datas [][]byte, opts Options) (*Result, error) {
	return DecodeContext(context.Background(), datas, opts)
}

// DecodeContext is Decode with cancellation: when ctx is cancelled,
// images not yet decoded report ctx.Err() in their ImageResult.Err and
// the call returns promptly with whatever finished. Images that
// completed before the cancellation are still delivered in full —
// every slot of Result.Images is populated with either a result or an
// error (or, salvaged, both); cancellation never yields an empty slot.
func DecodeContext(ctx context.Context, datas [][]byte, opts Options) (*Result, error) {
	ex, err := NewExecutor(opts)
	if err != nil {
		return nil, err
	}
	out := &Result{Images: make([]ImageResult, len(datas))}

	// The producer writes only the indices it fails to submit; the
	// collector below writes only submitted indices — disjoint slots.
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer ex.Close()
		for i, data := range datas {
			if err := ex.Submit(ctx, i, data); err != nil {
				for j := i; j < len(datas); j++ {
					out.Images[j] = ImageResult{Index: j, Err: err}
				}
				return
			}
		}
	}()
	for ir := range ex.Results() {
		out.Images[ir.Index] = ir
	}
	<-done

	for _, ir := range out.Images {
		if ir.Res == nil {
			out.Failed++
			continue
		}
		if ir.Err != nil {
			out.Salvaged++
		}
		out.SerialNs += ir.Res.TotalNs
	}
	out.Timeline = MergeTimelines(out.Images)
	out.PipelinedNs = out.Timeline.Makespan()
	return out, nil
}

// MergeTimelines replays the per-image timelines onto one merged batch
// schedule, in Images order (deterministic regardless of which worker
// finished first), keeping per-image dependency structure: CPU tasks
// serialize on the shared CPU lane (one control thread); the device
// lane is an in-order queue, so image k's kernels queue after image
// k-1's, and each GPU task additionally waits for its dispatch. Overlap
// emerges exactly as in the paper's Figure 5b, but across image
// boundaries. Failed images (no Res) are skipped; salvaged images
// (Res and Err both set) contribute like clean ones.
func MergeTimelines(images []ImageResult) *sim.Timeline {
	out := sim.New()
	var gpuPrev *sim.Task
	for _, ir := range images {
		if ir.Res == nil {
			continue
		}
		dispatch := dispatchMap(ir.Res.Timeline)
		idMap := make(map[int]*sim.Task, len(ir.Res.Timeline.Tasks()))
		for _, t := range ir.Res.Timeline.Tasks() {
			var deps []*sim.Task
			if t.Resource == sim.ResGPU {
				// Preserve the dispatch dependency: the original task
				// started no earlier than its CPU-side predecessor.
				if last := idMap[dispatch[t.ID]]; last != nil {
					deps = append(deps, last)
				}
				if gpuPrev != nil {
					deps = append(deps, gpuPrev)
				}
			}
			nt := out.Add(t.Resource, t.Kind, fmt.Sprintf("img%d:%s", ir.Index, t.Label), t.Cost, deps...)
			idMap[t.ID] = nt
			if t.Resource == sim.ResGPU {
				gpuPrev = nt
			}
		}
	}
	return out
}

// dispatchMap precomputes, in one pass over the timeline, each GPU
// task's effective dispatch: the ID of the latest CPU-lane task
// submitted before it (-1 if none). Tasks are in submission order, so a
// running "last CPU task" suffices; the old per-task rescan was O(n²).
func dispatchMap(tl *sim.Timeline) map[int]int {
	m := make(map[int]int)
	last := -1
	for _, t := range tl.Tasks() {
		switch t.Resource {
		case sim.ResCPU:
			last = t.ID
		case sim.ResGPU:
			m[t.ID] = last
		}
	}
	return m
}
