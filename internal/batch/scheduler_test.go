package batch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"hetjpeg/internal/core"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
)

// mixedCorpus builds a small batch spanning sizes and all subsamplings,
// with one image clearly larger than the rest (the straggler the band
// scheduler exists for).
func mixedCorpus(t testing.TB) [][]byte {
	t.Helper()
	type shape struct {
		w, h   int
		sub    jfif.Subsampling
		detail float64
	}
	shapes := []shape{
		{320, 240, jfif.Sub420, 0.3},
		{512, 384, jfif.Sub422, 0.6},
		{256, 256, jfif.Sub444, 0.8},
		{960, 720, jfif.Sub420, 0.5}, // straggler
		{400, 304, jfif.Sub422, 0.2},
		{320, 240, jfif.Sub444, 0.9},
	}
	var out [][]byte
	for i, s := range shapes {
		items, err := imagegen.SizeSweep(s.sub, s.detail, [][2]int{{s.w, s.h}}, int64(5100+i))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, items[0].Data)
	}
	return out
}

// The band scheduler must be indistinguishable from the per-image pool
// in everything but wall-clock: byte-identical pixels, identical
// virtual times and scheduling statistics — across every mode, several
// worker counts and mixed image sizes.
func TestSchedulerIdentityAcrossModesAndWorkers(t *testing.T) {
	spec := platform.GTX560()
	model, err := perfmodel.TrainQuick(spec)
	if err != nil {
		t.Fatal(err)
	}
	datas := mixedCorpus(t)
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	modes := append([]core.Mode{core.ModeAuto}, core.AllModes()...)
	for _, mode := range modes {
		ref, err := Decode(datas, Options{
			Spec: spec, Model: model, Mode: mode,
			Scheduler: SchedulerPerImage, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Failed != 0 {
			t.Fatalf("%v: reference pool failed %d images", mode, ref.Failed)
		}
		for _, w := range workerCounts {
			t.Run(fmt.Sprintf("%v/workers%d", mode, w), func(t *testing.T) {
				got, err := Decode(datas, Options{
					Spec: spec, Model: model, Mode: mode,
					Scheduler: SchedulerBands, Workers: w,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got.Failed != 0 {
					t.Fatalf("band scheduler failed %d images", got.Failed)
				}
				if got.SerialNs != ref.SerialNs || got.PipelinedNs != ref.PipelinedNs {
					t.Errorf("virtual times differ: bands (%.1f, %.1f) vs pool (%.1f, %.1f)",
						got.SerialNs, got.PipelinedNs, ref.SerialNs, ref.PipelinedNs)
				}
				for i := range datas {
					g, r := got.Images[i], ref.Images[i]
					if g.Res.Stats != r.Res.Stats {
						t.Errorf("image %d stats differ: %+v vs %+v", i, g.Res.Stats, r.Res.Stats)
					}
					if !bytes.Equal(g.Res.Image.Pix, r.Res.Image.Pix) {
						t.Errorf("image %d pixels differ between schedulers", i)
					}
				}
			})
		}
	}
}

// Mid-flight cancellation plus a corrupt image, on the band scheduler
// with more workers than cores: the stress test CI runs under -race.
// Every slot must resolve (result or error), the corrupt image must not
// poison its neighbors, and cancellation must propagate to images whose
// bands are already queued.
func TestBandSchedulerStressCancellation(t *testing.T) {
	spec := platform.GTX560()
	datas := mixedCorpus(t)
	datas = append(datas, mixedCorpus(t)...)
	corrupt := 3
	datas[corrupt] = []byte{0xFF, 0xD8, 0x00, 0x01} // SOI then garbage

	ctx, cancel := context.WithCancel(context.Background())
	ex, err := NewExecutor(Options{Spec: spec, Workers: 4, MaxInFlight: 3})
	if err != nil {
		t.Fatal(err)
	}
	var submitted atomic.Int64
	go func() {
		defer ex.Close()
		for i, d := range datas {
			if err := ex.Submit(ctx, i, d); err != nil {
				return
			}
			submitted.Add(1)
		}
	}()

	resolved := make(map[int]bool)
	n := 0
	for ir := range ex.Results() {
		if resolved[ir.Index] {
			t.Fatalf("image %d delivered twice", ir.Index)
		}
		resolved[ir.Index] = true
		n++
		if n == 2 {
			cancel() // mid-flight: bands of later images are in the deques
		}
		switch {
		case ir.Index == corrupt:
			if ir.Err == nil {
				t.Error("corrupt image decoded successfully")
			}
		case ir.Err != nil:
			if !errors.Is(ir.Err, context.Canceled) {
				t.Errorf("image %d: unexpected error %v", ir.Index, ir.Err)
			}
		default:
			if ir.Res == nil || len(ir.Res.Image.Pix) == 0 {
				t.Errorf("image %d: empty result", ir.Index)
			}
			ir.Res.Release()
		}
	}
	if int64(n) != submitted.Load() {
		t.Fatalf("resolved %d of %d submitted images", n, submitted.Load())
	}
	cancel()
}

// The executor must also survive a full batch of failures (every image
// corrupt) without stalling the pipeline accounting.
func TestBandSchedulerAllCorrupt(t *testing.T) {
	spec := platform.GT430()
	datas := [][]byte{{0x00}, {0xFF, 0xD8}, nil, {0x42, 0x42, 0x42}}
	res, err := Decode(datas, Options{Spec: spec, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != len(datas) {
		t.Fatalf("Failed = %d, want %d", res.Failed, len(datas))
	}
}

// Zero-value Options must be self-describing: ModeAuto resolves to PPS
// with a model and pipelined GPU without one.
func TestModeAutoResolution(t *testing.T) {
	spec := platform.GTX560()
	model, err := perfmodel.TrainQuick(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m := (Options{}).mode(); m != core.ModePipelinedGPU {
		t.Errorf("auto without model = %v, want pipeline", m)
	}
	if m := (Options{Model: model}).mode(); m != core.ModePPS {
		t.Errorf("auto with model = %v, want pps", m)
	}
	if m := (Options{Mode: core.ModeSequential, Model: model}).mode(); m != core.ModeSequential {
		t.Errorf("explicit mode overridden to %v", m)
	}
}

// Calibrator invariants: band sizing honors the one-band-per-worker
// shredding bound and the in-flight target stays within its clamps as
// observations move.
func TestCalibratorBounds(t *testing.T) {
	spec := platform.GTX560()
	items, err := imagegen.SizeSweep(jfif.Sub420, 0.5, [][2]int{{640, 480}}, 9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Prepare(items[0].Data, core.Options{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	f := p.Frame()

	var c calibrator
	// Cold: some sane size in [1, MCURows].
	if br := c.bandRows(f, 4); br < 1 || br > f.MCURows {
		t.Fatalf("cold bandRows = %d", br)
	}
	// A very slow back phase wants tiny bands.
	c.backPerMCU.At(f.Scale).Observe(1e6)
	if br := c.bandRows(f, 4); br != 1 {
		t.Errorf("slow back phase bandRows = %d, want 1", br)
	}
	// A very fast back phase wants coarse bands, but a lone image must
	// still split across all workers.
	c = calibrator{}
	c.backPerMCU.At(f.Scale).Observe(1)
	workers := 4
	lim := (f.MCURows + workers - 1) / workers
	if br := c.bandRows(f, workers); br != lim {
		t.Errorf("fast back phase bandRows = %d, want worker cap %d", br, lim)
	}
	for _, entNs := range []float64{1, 1e3, 1e6} {
		c.entPerMCU.Observe(entNs)
		got := c.inflightTarget(8, 10)
		if got < minInflight || got > 10 {
			t.Errorf("inflightTarget(ent=%g) = %d out of bounds", entNs, got)
		}
	}
}
