package batch

// Lifecycle-contract coverage for the Executor: Submit racing Close
// must never panic (no send on a closed channel — ErrClosed instead),
// a caller that abandons Results must have a no-leak escape hatch
// (Stop), and the non-blocking TrySubmitScaled admission path must shed
// honestly when the scheduler is saturated. CI runs these under -race
// explicitly.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetjpeg/internal/core"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/platform"
)

func executorOpts(sched Scheduler, workers, maxInflight int) Options {
	return Options{
		Spec:        platform.GTX560(),
		Mode:        core.ModePipelinedGPU,
		Workers:     workers,
		Scheduler:   sched,
		MaxInFlight: maxInflight,
	}
}

func TestSubmitAfterCloseReturnsErrClosed(t *testing.T) {
	for _, sched := range []Scheduler{SchedulerBands, SchedulerPerImage} {
		ex, err := NewExecutor(executorOpts(sched, 2, 0))
		if err != nil {
			t.Fatal(err)
		}
		ex.Close()
		if err := ex.Submit(context.Background(), 0, corpus(t, 1)[0]); !errors.Is(err, ErrClosed) {
			t.Errorf("scheduler %d: Submit after Close: got %v, want ErrClosed", sched, err)
		}
		if err := ex.TrySubmitScaled(context.Background(), 1, corpus(t, 1)[0], jpegcodec.Scale1); !errors.Is(err, ErrClosed) {
			t.Errorf("scheduler %d: TrySubmit after Close: got %v, want ErrClosed", sched, err)
		}
		for range ex.Results() {
			t.Error("unexpected result from empty executor")
		}
	}
}

// TestSubmitRacesClose hammers the Submit/Close race: every Submit must
// either be admitted (and its result delivered exactly once before
// Results closes) or return ErrClosed — never panic, never vanish.
func TestSubmitRacesClose(t *testing.T) {
	data := corpus(t, 1)[0]
	for _, sched := range []Scheduler{SchedulerBands, SchedulerPerImage} {
		for round := 0; round < 4; round++ {
			ex, err := NewExecutor(executorOpts(sched, 2, 0))
			if err != nil {
				t.Fatal(err)
			}
			const submitters = 8
			var admitted, refused atomic.Int64
			var wg sync.WaitGroup
			start := make(chan struct{})
			for g := 0; g < submitters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					<-start
					err := ex.Submit(context.Background(), g, data)
					switch {
					case err == nil:
						admitted.Add(1)
					case errors.Is(err, ErrClosed):
						refused.Add(1)
					default:
						t.Errorf("unexpected Submit error: %v", err)
					}
				}(g)
			}
			delivered := make(chan int)
			go func() {
				n := 0
				for range ex.Results() {
					n++
				}
				delivered <- n
			}()
			close(start)
			// No sleep: Close lands while some submits are mid-flight.
			ex.Close()
			wg.Wait()
			got := <-delivered
			if int64(got) != admitted.Load() {
				t.Fatalf("scheduler %d: %d submits admitted but %d results delivered", sched, admitted.Load(), got)
			}
			if admitted.Load()+refused.Load() != submitters {
				t.Fatalf("scheduler %d: %d admitted + %d refused != %d submitters", sched, admitted.Load(), refused.Load(), submitters)
			}
		}
	}
}

// TestStopReleasesAbandonedResults abandons Results entirely: without
// Stop the workers would park forever on the results send; with it they
// must all exit (no goroutine leak) and Results must still close.
func TestStopReleasesAbandonedResults(t *testing.T) {
	datas := corpus(t, 6)
	for _, sched := range []Scheduler{SchedulerBands, SchedulerPerImage} {
		before := runtime.NumGoroutine()
		ex, err := NewExecutor(executorOpts(sched, 2, 3))
		if err != nil {
			t.Fatal(err)
		}
		// Submit from a goroutine: with nobody reading Results the
		// pipeline clogs, so later Submits block — exactly the state an
		// abandoning caller leaves behind. Stop must unblock them (they
		// return ErrClosed) and drain the rest.
		ctx := context.Background()
		submitsDone := make(chan struct{})
		go func() {
			defer close(submitsDone)
			for i, d := range datas {
				if err := ex.Submit(ctx, i, d); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("submit %d: %v", i, err)
				}
			}
		}()
		// Deliberately never read Results; give some decodes time to
		// land in the results buffer before abandoning.
		time.Sleep(100 * time.Millisecond)
		ex.Stop()
		select {
		case <-submitsDone:
		case <-time.After(30 * time.Second):
			t.Fatalf("scheduler %d: Submit still blocked after Stop", sched)
		}
		// Results must still close so a late reader cannot hang.
		select {
		case _, ok := <-waitClosed(ex.Results()):
			if ok {
				t.Fatal("waitClosed misbehaved")
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("scheduler %d: Results did not close after Stop", sched)
		}
		// All worker goroutines must exit. Allow the runtime a moment to
		// retire them before declaring a leak.
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			runtime.Gosched()
			time.Sleep(10 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > before {
			t.Errorf("scheduler %d: %d goroutines before, %d after Stop (leak)", sched, before, n)
		}
	}
}

// waitClosed adapts "channel closed" into a selectable event: the
// returned channel closes once every pending result has been discarded
// and the executor closed its Results channel.
func waitClosed(results <-chan ImageResult) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		for range results {
			// Discard: Stop may still deliver a few racing results.
		}
		close(done)
	}()
	return done
}

// TestTrySubmitShedsWhenSaturated clogs the pipeline (no Results
// reader, 1 worker) and asserts the non-blocking path starts refusing
// with ErrBusy instead of blocking — the admission behavior a shedding
// front end depends on.
func TestTrySubmitShedsWhenSaturated(t *testing.T) {
	data := corpus(t, 1)[0]
	ex, err := NewExecutor(executorOpts(SchedulerBands, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Stop()
	ctx := context.Background()
	sawBusy := false
	for i := 0; i < 200 && !sawBusy; i++ {
		err := ex.TrySubmitScaled(ctx, i, data, jpegcodec.Scale1)
		switch {
		case err == nil:
			// Accepted: the in-flight budget had room.
		case errors.Is(err, ErrBusy):
			sawBusy = true
		default:
			t.Fatalf("TrySubmitScaled: %v", err)
		}
	}
	if !sawBusy {
		t.Fatal("TrySubmitScaled never shed on a clogged 1-worker executor")
	}
	if err := ex.TrySubmitScaled(ctx, 0, data, jpegcodec.Scale(3)); !errors.Is(err, jpegcodec.ErrUnsupportedScale) {
		t.Errorf("bad scale: got %v, want ErrUnsupportedScale", err)
	}
}

// TestQueueStatsCalibrates decodes a small batch and checks the
// introspection snapshot: rates seeded by real observations, occupancy
// back to zero once drained — the inputs a service needs for honest
// Retry-After arithmetic.
func TestQueueStatsCalibrates(t *testing.T) {
	datas := corpus(t, 4)
	ex, err := NewExecutor(executorOpts(SchedulerBands, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if s := ex.QueueStats(); s.Target < minInflight {
		t.Errorf("cold target %d below minInflight", s.Target)
	}
	ctx := context.Background()
	go func() {
		for i, d := range datas {
			if err := ex.Submit(ctx, i, d); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}
		ex.Close()
	}()
	for ir := range ex.Results() {
		if ir.Err != nil {
			t.Errorf("image %d: %v", ir.Index, ir.Err)
		}
		if ir.Res != nil {
			ir.Res.Release()
		}
	}
	s := ex.QueueStats()
	if s.InFlight != 0 || s.Queued != 0 {
		t.Errorf("drained executor reports occupancy %+v", s)
	}
	if s.EntropyNsPerMCU <= 0 || s.BackNsPerMCU <= 0 || s.BytesPerMCU <= 0 {
		t.Errorf("calibrated rates not observed: %+v", s)
	}
	// Per-image scheduler has no calibrator: stats must be zero, not junk.
	exP, err := NewExecutor(executorOpts(SchedulerPerImage, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	exP.Close()
	if s := exP.QueueStats(); s != (QueueStats{}) {
		t.Errorf("per-image QueueStats = %+v, want zero", s)
	}
	for range exP.Results() {
	}
}
