package batch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/platform"
)

// TestInvalidScaleIsConfigError pins the contract that a bad
// Options.Scale fails the batch up front (like a missing Spec), rather
// than surfacing as per-image decode failures.
func TestInvalidScaleIsConfigError(t *testing.T) {
	_, err := Decode([][]byte{{0xFF}}, Options{Spec: platform.GTX560(), Scale: 3})
	if !errors.Is(err, jpegcodec.ErrUnsupportedScale) {
		t.Fatalf("err = %v, want ErrUnsupportedScale", err)
	}
	if _, err := NewExecutor(Options{Spec: platform.GTX560(), Scale: 5}); !errors.Is(err, jpegcodec.ErrUnsupportedScale) {
		t.Fatalf("NewExecutor err = %v, want ErrUnsupportedScale", err)
	}
}

// TestMixedScaleExecutor streams the same images at different scales
// through one executor (both schedulers) and asserts every result is
// byte-identical to its scale's scalar reference — the mixed
// thumbnail/full traffic the per-scale calibrator exists for.
func TestMixedScaleExecutor(t *testing.T) {
	items, err := imagegen.SizeSweep(jfif.Sub420, 0.5, [][2]int{{200, 152}, {97, 75}}, 31)
	if err != nil {
		t.Fatal(err)
	}
	scales := []jpegcodec.Scale{jpegcodec.Scale1, jpegcodec.Scale8, jpegcodec.Scale2, jpegcodec.Scale4}
	type submission struct {
		data  []byte
		scale jpegcodec.Scale
	}
	var subs []submission
	var refs []*jpegcodec.RGBImage
	for round := 0; round < 2; round++ {
		for i, it := range items {
			sc := scales[(round*len(items)+i)%len(scales)]
			subs = append(subs, submission{it.Data, sc})
			ref, err := jpegcodec.DecodeScalarScaled(it.Data, sc)
			if err != nil {
				t.Fatal(err)
			}
			refs = append(refs, ref)
		}
	}
	for _, sched := range []Scheduler{SchedulerBands, SchedulerPerImage} {
		ex, err := NewExecutor(Options{Spec: platform.GTX560(), Workers: 3, Scheduler: sched})
		if err != nil {
			t.Fatal(err)
		}
		// Bad per-submit scale fails fast without consuming a slot.
		if err := ex.SubmitScaled(context.Background(), 99, subs[0].data, 7); !errors.Is(err, jpegcodec.ErrUnsupportedScale) {
			t.Fatalf("SubmitScaled(7) err = %v", err)
		}
		go func() {
			for i, s := range subs {
				if err := ex.SubmitScaled(context.Background(), i, s.data, s.scale); err != nil {
					t.Error(err)
					break
				}
			}
			ex.Close()
		}()
		got := make([]*ImageResult, len(subs))
		for ir := range ex.Results() {
			ir := ir
			got[ir.Index] = &ir
		}
		for i := range subs {
			name := fmt.Sprintf("sched%d image %d scale %v", sched, i, subs[i].scale)
			if got[i] == nil || got[i].Err != nil {
				t.Fatalf("%s: missing or failed: %+v", name, got[i])
			}
			if !bytes.Equal(got[i].Res.Image.Pix, refs[i].Pix) {
				t.Errorf("%s: pixels differ from scalar scaled reference", name)
			}
			got[i].Res.Release()
		}
	}
	for _, r := range refs {
		r.Release()
	}
}
