// Package sim provides the deterministic virtual-time substrate of the
// reproduction: a discrete-event timeline onto which decoder executions
// record their operations (Huffman chunks, dispatches, transfers, kernels,
// CPU tiles). Resources execute their tasks serially in submission order;
// a task additionally waits for its dependencies. The resulting schedule
// replaces the paper's hardware timestamp counters and OpenCL event
// profiler, making every figure reproducible on any host.
package sim

import (
	"fmt"
	"sort"
)

// Standard resource names used by the decoder executions.
const (
	ResCPU = "cpu"       // the host thread running Huffman + CPU tiles
	ResGPU = "gpu.queue" // the device's in-order command queue (kernels + DMA)
)

// Kind classifies tasks for breakdown reports (Figure 9).
type Kind int

const (
	KindHuffman Kind = iota
	KindDispatch
	KindHostToDevice
	KindIDCT
	KindUpsample
	KindColor
	KindMergedKernel
	KindDeviceToHost
	KindCPUParallel
	KindOther
)

var kindNames = map[Kind]string{
	KindHuffman:      "Huffman",
	KindDispatch:     "Dispatch",
	KindHostToDevice: "HostToDevice",
	KindIDCT:         "IDCT",
	KindUpsample:     "Upsampling",
	KindColor:        "ColorConversion",
	KindMergedKernel: "MergedKernel",
	KindDeviceToHost: "DeviceToHost",
	KindCPUParallel:  "CPUParallel",
	KindOther:        "Other",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Task is one scheduled operation on the timeline.
type Task struct {
	ID       int
	Label    string
	Resource string
	Kind     Kind
	Cost     float64 // virtual nanoseconds
	Start    float64
	End      float64
	deps     []*Task
}

// Timeline accumulates tasks and computes their schedule incrementally.
type Timeline struct {
	tasks     []*Task
	resources map[string]float64 // next free time per resource
}

// New returns an empty timeline at virtual time zero.
func New() *Timeline {
	return &Timeline{resources: make(map[string]float64)}
}

// Add schedules a task on resource with the given cost after all deps have
// finished, and returns it. Tasks on the same resource run in submission
// order (an in-order queue), which models both a single CPU control thread
// and an in-order OpenCL command queue.
func (tl *Timeline) Add(resource string, kind Kind, label string, cost float64, deps ...*Task) *Task {
	if cost < 0 {
		cost = 0
	}
	start := tl.resources[resource]
	for _, d := range deps {
		if d == nil {
			continue
		}
		if d.End > start {
			start = d.End
		}
	}
	t := &Task{
		ID:       len(tl.tasks),
		Label:    label,
		Resource: resource,
		Kind:     kind,
		Cost:     cost,
		Start:    start,
		End:      start + cost,
		deps:     deps,
	}
	tl.resources[resource] = t.End
	tl.tasks = append(tl.tasks, t)
	return t
}

// Makespan returns the end time of the last task.
func (tl *Timeline) Makespan() float64 {
	var m float64
	for _, t := range tl.tasks {
		if t.End > m {
			m = t.End
		}
	}
	return m
}

// ResourceEnd returns the time at which a resource becomes idle.
func (tl *Timeline) ResourceEnd(resource string) float64 { return tl.resources[resource] }

// Tasks returns the scheduled tasks in submission order.
func (tl *Timeline) Tasks() []*Task { return tl.tasks }

// TotalByKind sums task costs per kind (the stacked bars of Figure 9).
func (tl *Timeline) TotalByKind() map[Kind]float64 {
	out := make(map[Kind]float64)
	for _, t := range tl.tasks {
		out[t.Kind] += t.Cost
	}
	return out
}

// BusyTime returns the total busy time of one resource.
func (tl *Timeline) BusyTime(resource string) float64 {
	var s float64
	for _, t := range tl.tasks {
		if t.Resource == resource {
			s += t.Cost
		}
	}
	return s
}

// KindTotal returns the total cost of tasks of one kind.
func (tl *Timeline) KindTotal(k Kind) float64 {
	var s float64
	for _, t := range tl.tasks {
		if t.Kind == k {
			s += t.Cost
		}
	}
	return s
}

// Breakdown is a sorted (kind, total) listing for reports.
type Breakdown struct {
	Kind  Kind
	Total float64
}

// SortedBreakdown returns per-kind totals sorted by kind.
func (tl *Timeline) SortedBreakdown() []Breakdown {
	m := tl.TotalByKind()
	out := make([]Breakdown, 0, len(m))
	for k, v := range m {
		out = append(out, Breakdown{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Validate checks the structural invariants of the schedule: no task
// starts before a dependency ends, and tasks on one resource do not
// overlap. It returns the first violation found.
func (tl *Timeline) Validate() error {
	lastEnd := make(map[string]float64)
	byRes := make(map[string][]*Task)
	for _, t := range tl.tasks {
		for _, d := range t.deps {
			if d != nil && t.Start < d.End {
				return fmt.Errorf("sim: task %d (%s) starts %.1f before dep %d ends %.1f",
					t.ID, t.Label, t.Start, d.ID, d.End)
			}
		}
		if t.End < t.Start {
			return fmt.Errorf("sim: task %d ends before it starts", t.ID)
		}
		if t.Start < lastEnd[t.Resource] {
			return fmt.Errorf("sim: task %d overlaps predecessor on %s", t.ID, t.Resource)
		}
		lastEnd[t.Resource] = t.End
		byRes[t.Resource] = append(byRes[t.Resource], t)
	}
	return nil
}
