package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSerialResource(t *testing.T) {
	tl := New()
	a := tl.Add(ResCPU, KindHuffman, "a", 10)
	b := tl.Add(ResCPU, KindHuffman, "b", 5)
	if a.Start != 0 || a.End != 10 {
		t.Fatalf("a scheduled [%v,%v)", a.Start, a.End)
	}
	if b.Start != 10 || b.End != 15 {
		t.Fatalf("b scheduled [%v,%v), want [10,15)", b.Start, b.End)
	}
	if tl.Makespan() != 15 {
		t.Fatalf("makespan %v want 15", tl.Makespan())
	}
}

func TestCrossResourceDependency(t *testing.T) {
	tl := New()
	huff := tl.Add(ResCPU, KindHuffman, "huff", 100)
	disp := tl.Add(ResCPU, KindDispatch, "disp", 10)
	h2d := tl.Add(ResGPU, KindHostToDevice, "h2d", 20, disp)
	k := tl.Add(ResGPU, KindIDCT, "k", 50, h2d)
	if h2d.Start != disp.End {
		t.Fatalf("h2d starts %v want %v", h2d.Start, disp.End)
	}
	if k.Start != h2d.End {
		t.Fatalf("k starts %v want %v", k.Start, h2d.End)
	}
	// CPU can continue while GPU works.
	more := tl.Add(ResCPU, KindHuffman, "more", 30)
	if more.Start != disp.End {
		t.Fatalf("cpu continuation starts %v want %v", more.Start, disp.End)
	}
	_ = huff
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapModel(t *testing.T) {
	// Pipelined pattern: gpu chunks hide behind cpu chunks when gpu is
	// faster.
	tl := New()
	var prevDisp *Task
	for i := 0; i < 4; i++ {
		tl.Add(ResCPU, KindHuffman, "h", 100)
		prevDisp = tl.Add(ResCPU, KindDispatch, "d", 5)
		tl.Add(ResGPU, KindMergedKernel, "k", 40, prevDisp)
	}
	// Last GPU task ends shortly after last dispatch; total dominated by
	// CPU: 4*(100+5) + 40 = 460.
	if got := tl.Makespan(); got != 460 {
		t.Fatalf("makespan %v want 460", got)
	}
}

func TestBreakdownAndBusy(t *testing.T) {
	tl := New()
	tl.Add(ResCPU, KindHuffman, "h", 7)
	tl.Add(ResCPU, KindHuffman, "h", 3)
	tl.Add(ResGPU, KindIDCT, "k", 11)
	bd := tl.TotalByKind()
	if bd[KindHuffman] != 10 || bd[KindIDCT] != 11 {
		t.Fatalf("breakdown %v", bd)
	}
	if tl.BusyTime(ResCPU) != 10 || tl.BusyTime(ResGPU) != 11 {
		t.Fatalf("busy cpu=%v gpu=%v", tl.BusyTime(ResCPU), tl.BusyTime(ResGPU))
	}
	if tl.KindTotal(KindHuffman) != 10 {
		t.Fatalf("KindTotal=%v", tl.KindTotal(KindHuffman))
	}
	sb := tl.SortedBreakdown()
	if len(sb) != 2 || sb[0].Kind != KindHuffman {
		t.Fatalf("sorted breakdown %v", sb)
	}
}

func TestNegativeCostClamped(t *testing.T) {
	tl := New()
	task := tl.Add(ResCPU, KindOther, "neg", -5)
	if task.Cost != 0 || task.End != task.Start {
		t.Fatalf("negative cost not clamped: %+v", task)
	}
}

func TestValidateQuick(t *testing.T) {
	// Random DAGs scheduled by the timeline always validate.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := New()
		var tasks []*Task
		for i := 0; i < 50; i++ {
			res := ResCPU
			if rng.Intn(2) == 1 {
				res = ResGPU
			}
			var deps []*Task
			for d := 0; d < rng.Intn(3) && len(tasks) > 0; d++ {
				deps = append(deps, tasks[rng.Intn(len(tasks))])
			}
			tasks = append(tasks, tl.Add(res, Kind(rng.Intn(9)), "t", float64(rng.Intn(100)), deps...))
		}
		return tl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if KindHuffman.String() != "Huffman" {
		t.Fatalf("got %q", KindHuffman.String())
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatalf("got %q", Kind(99).String())
	}
}

func TestGanttRendering(t *testing.T) {
	tl := New()
	tl.Add(ResCPU, KindHuffman, "h", 100)
	d := tl.Add(ResCPU, KindDispatch, "d", 10)
	tl.Add(ResGPU, KindMergedKernel, "k", 60, d)
	out := tl.Gantt(40)
	for _, want := range []string{"cpu", "gpu.queue", "H", "M", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt output missing %q:\n%s", want, out)
		}
	}
	// Empty timeline renders gracefully.
	if out := New().Gantt(40); !strings.Contains(out, "empty") {
		t.Errorf("empty timeline: %q", out)
	}
}
