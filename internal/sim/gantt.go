package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders the timeline as a fixed-width ASCII chart, one lane per
// resource, for inspecting schedules (cmd/jpegdec -gantt). Each cell
// covers makespan/width nanoseconds; the densest-kind initial fills it.
func (tl *Timeline) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	span := tl.Makespan()
	if span <= 0 || len(tl.tasks) == 0 {
		return "(empty timeline)\n"
	}

	resources := make([]string, 0, len(tl.resources))
	for r := range tl.resources {
		resources = append(resources, r)
	}
	sort.Strings(resources)

	glyph := map[Kind]byte{
		KindHuffman:      'H',
		KindDispatch:     'd',
		KindHostToDevice: '>',
		KindIDCT:         'I',
		KindUpsample:     'U',
		KindColor:        'C',
		KindMergedKernel: 'M',
		KindDeviceToHost: '<',
		KindCPUParallel:  'P',
		KindOther:        '?',
	}

	var b strings.Builder
	fmt.Fprintf(&b, "virtual makespan %.3f ms; one column = %.1f us\n",
		span/1e6, span/float64(width)/1e3)
	for _, res := range resources {
		// Per-cell dominant kind by covered time.
		cells := make([]float64, width)
		kinds := make([]map[Kind]float64, width)
		for i := range kinds {
			kinds[i] = map[Kind]float64{}
		}
		for _, t := range tl.tasks {
			if t.Resource != res || t.Cost == 0 {
				continue
			}
			c0 := int(t.Start / span * float64(width))
			c1 := int(t.End / span * float64(width))
			if c1 >= width {
				c1 = width - 1
			}
			for c := c0; c <= c1; c++ {
				lo := float64(c) / float64(width) * span
				hi := float64(c+1) / float64(width) * span
				covered := minf(t.End, hi) - maxf(t.Start, lo)
				if covered > 0 {
					cells[c] += covered
					kinds[c][t.Kind] += covered
				}
			}
		}
		row := make([]byte, width)
		for c := range row {
			if cells[c] <= 0 {
				row[c] = '.'
				continue
			}
			bestKind, bestCov := KindOther, 0.0
			for k, cov := range kinds[c] {
				if cov > bestCov {
					bestKind, bestCov = k, cov
				}
			}
			g, ok := glyph[bestKind]
			if !ok {
				g = '?'
			}
			row[c] = g
		}
		fmt.Fprintf(&b, "%-10s |%s|\n", res, row)
	}
	b.WriteString("legend: H huffman, d dispatch, > h2d, I idct, U upsample, C color, M merged, < d2h, . idle\n")
	return b.String()
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
