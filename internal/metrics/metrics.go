// Package metrics is a stdlib-only Prometheus client: counters, gauges
// and fixed-bucket histograms (all with optional labels, all also
// available func-backed over existing atomics) collected into a
// Registry that renders the Prometheus text exposition format
// (version 0.0.4) on an http.Handler.
//
// It exists so cmd/imaged can expose a scrapeable /metrics endpoint
// without pulling a dependency into a module that is deliberately
// stdlib-only. The surface is the small subset the service needs, with
// the properties a scraper relies on:
//
//   - output is deterministic: families sorted by name, series sorted
//     by label values, histogram buckets cumulative and in order;
//   - metric and label names are validated at registration (panic on
//     programmer error, like prometheus/client_golang);
//   - collection is cheap and lock-light: counters and histograms are
//     atomics, func-backed collectors read their source at scrape time.
//
// ParseText is the matching validator/parser: tests use it to prove the
// endpoint's output parses and to pin the metric catalog against a
// golden file without pinning timing-dependent sample values.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter is a monotonically increasing counter.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n (unsigned by construction — counters only go up).
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram of float64 observations.
// Buckets are cumulative upper bounds; an implicit +Inf bucket catches
// the rest, as the Prometheus format requires.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sumBit atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram buckets not strictly increasing at %v", buckets[i]))
		}
	}
	bounds := append([]float64(nil), buckets...)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBit.Load()
		if h.sumBit.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Sum and Count return the accumulated totals.
func (h *Histogram) Sum() float64  { return math.Float64frombits(h.sumBit.Load()) }
func (h *Histogram) Count() uint64 { return h.count.Load() }

// DurationBuckets is a general-purpose latency bucket ladder in
// seconds, 1ms to 10s.
var DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// kind is the TYPE a family renders as.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// series is one labeled instance within a family.
type series struct {
	labelValues []string
	counter     *Counter
	counterFn   func() uint64
	gauge       *Gauge
	gaugeFn     func() float64
	hist        *Histogram
}

// family is one named metric with its help, type and series.
type family struct {
	name       string
	help       string
	kind       kind
	labelNames []string
	buckets    []float64

	mu       sync.Mutex
	series   []*series
	byLabels map[string]*series
}

// Registry collects families and renders the exposition format.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help string, k kind, labelNames []string, buckets []float64) *family {
	if !nameRe.MatchString(name) {
		panic("metrics: invalid metric name " + name)
	}
	for _, l := range labelNames {
		if !labelRe.MatchString(l) || strings.HasPrefix(l, "__") {
			panic("metrics: invalid label name " + l)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("metrics: duplicate registration of " + name)
	}
	f := &family{
		name:       name,
		help:       help,
		kind:       k,
		labelNames: append([]string(nil), labelNames...),
		buckets:    buckets,
		byLabels:   make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func (f *family) with(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labelNames), len(labelValues)))
	}
	sig := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s := f.byLabels[sig]; s != nil {
		return s
	}
	s := &series{labelValues: append([]string(nil), labelValues...)}
	switch f.kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = newHistogram(f.buckets)
	}
	f.byLabels[sig] = s
	f.series = append(f.series, s)
	return s
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).with(nil).counter
}

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time — the bridge to counters that already live in another
// subsystem's atomics (the admission gate, the cache).
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64) {
	s := r.register(name, help, kindCounter, nil, nil).with(nil)
	s.counter, s.counterFn = nil, fn
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).with(nil).gauge
}

// NewGaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	s := r.register(name, help, kindGauge, nil, nil).with(nil)
	s.gauge, s.gaugeFn = nil, fn
}

// NewHistogram registers an unlabeled histogram with the given
// cumulative upper bounds (strictly increasing; +Inf implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, append([]float64(nil), buckets...)).with(nil).hist
}

// CounterVec is a family of counters partitioned by labels.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labelNames, nil)}
}

// With returns (creating on first use) the counter for the label values.
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.with(labelValues).counter }

// CounterFuncVec adds a func-backed series per label set.
type CounterFuncVec struct{ f *family }

// NewCounterFuncVec registers a labeled counter family whose series are
// each read from their own func at scrape time.
func (r *Registry) NewCounterFuncVec(name, help string, labelNames ...string) *CounterFuncVec {
	return &CounterFuncVec{r.register(name, help, kindCounter, labelNames, nil)}
}

// Bind attaches fn as the series for the label values.
func (v *CounterFuncVec) Bind(fn func() uint64, labelValues ...string) {
	s := v.f.with(labelValues)
	s.counter, s.counterFn = nil, fn
}

// GaugeFuncVec adds a func-backed gauge series per label set.
type GaugeFuncVec struct{ f *family }

// NewGaugeFuncVec registers a labeled gauge family whose series are
// each read from their own func at scrape time.
func (r *Registry) NewGaugeFuncVec(name, help string, labelNames ...string) *GaugeFuncVec {
	return &GaugeFuncVec{r.register(name, help, kindGauge, labelNames, nil)}
}

// Bind attaches fn as the series for the label values.
func (v *GaugeFuncVec) Bind(fn func() float64, labelValues ...string) {
	s := v.f.with(labelValues)
	s.gauge, s.gaugeFn = nil, fn
}

// GaugeVec is a family of gauges partitioned by labels.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labelNames, nil)}
}

// With returns (creating on first use) the gauge for the label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.with(labelValues).gauge }

// HistogramVec is a family of histograms partitioned by labels.
type HistogramVec struct{ f *family }

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labelNames, append([]float64(nil), buckets...))}
}

// With returns (creating on first use) the histogram for the label
// values. Pre-create every expected label set at startup so the
// exposed catalog is complete before traffic arrives.
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.with(labelValues).hist }

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(s)
}

// labelString renders {k="v",...}; extra appends one more pair (le for
// histogram buckets). Empty label sets render as no braces at all.
func labelString(names, values []string, extraName, extraValue string) string {
	var parts []string
	for i, n := range names {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, n, escapeLabel(values[i])))
	}
	if extraName != "" {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, extraName, extraValue))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteTo renders the registry in the text exposition format:
// deterministic order (families by name, series by label values), HELP
// and TYPE headers, cumulative histogram buckets with +Inf, _sum and
// _count.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		sers := append([]*series(nil), f.series...)
		f.mu.Unlock()
		sort.Slice(sers, func(i, j int) bool {
			return strings.Join(sers[i].labelValues, "\x00") < strings.Join(sers[j].labelValues, "\x00")
		})
		for _, s := range sers {
			ls := labelString(f.labelNames, s.labelValues, "", "")
			switch f.kind {
			case kindCounter:
				v := s.counterFn
				var n uint64
				if v != nil {
					n = v()
				} else {
					n = s.counter.Value()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, formatValue(float64(n)))
			case kindGauge:
				var v float64
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				} else {
					v = s.gauge.Value()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, formatValue(v))
			case kindHistogram:
				h := s.hist
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelString(f.labelNames, s.labelValues, "le", formatValue(bound)), cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(f.labelNames, s.labelValues, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, ls, formatValue(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, ls, h.Count())
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Handler serves the registry as a scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}
