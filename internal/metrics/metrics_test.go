package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.String()
}

// parse renders the registry and round-trips it through the validator —
// every test doubles as a format-validity check.
func parse(t *testing.T, r *Registry) map[string]Family {
	t.Helper()
	fams, err := ParseText(strings.NewReader(render(t, r)))
	if err != nil {
		t.Fatalf("registry output does not parse: %v\n%s", err, render(t, r))
	}
	out := make(map[string]Family, len(fams))
	for _, f := range fams {
		out[f.Name] = f
	}
	return out
}

func TestCounterGaugeRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Requests served.")
	g := r.NewGauge("queue_depth", "Current queue depth.")
	c.Inc()
	c.Add(41)
	g.Set(3.5)

	fams := parse(t, r)
	if f := fams["requests_total"]; f.Type != "counter" || f.Help != "Requests served." || f.Samples[0].Value != 42 {
		t.Errorf("counter family = %+v", f)
	}
	if f := fams["queue_depth"]; f.Type != "gauge" || f.Samples[0].Value != 3.5 {
		t.Errorf("gauge family = %+v", f)
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Errorf("gauge after Set(-1) = %v", g.Value())
	}
}

func TestFuncBackedCollectors(t *testing.T) {
	r := NewRegistry()
	n := uint64(7)
	v := 2.25
	r.NewCounterFunc("external_total", "Counter read from elsewhere.", func() uint64 { return n })
	r.NewGaugeFunc("external_value", "Gauge read from elsewhere.", func() float64 { return v })
	vec := r.NewCounterFuncVec("external_events_total", "Labeled func counters.", "kind")
	a, b := uint64(1), uint64(2)
	vec.Bind(func() uint64 { return a }, "alpha")
	vec.Bind(func() uint64 { return b }, "beta")

	fams := parse(t, r)
	if fams["external_total"].Samples[0].Value != 7 || fams["external_value"].Samples[0].Value != 2.25 {
		t.Errorf("func-backed values wrong: %+v", fams)
	}
	// Scrape-time reads: mutate the sources, re-render.
	n, v, a = 8, 9.5, 10
	fams = parse(t, r)
	if fams["external_total"].Samples[0].Value != 8 || fams["external_value"].Samples[0].Value != 9.5 {
		t.Errorf("func-backed collectors cached their first read")
	}
	evs := fams["external_events_total"].Samples
	if len(evs) != 2 || evs[0].Labels["kind"] != "alpha" || evs[0].Value != 10 || evs[1].Value != 2 {
		t.Errorf("labeled func counters = %+v", evs)
	}
}

func TestVecSeriesIdentityAndOrder(t *testing.T) {
	r := NewRegistry()
	vec := r.NewCounterVec("ops_total", "Ops by kind.", "kind")
	if vec.With("read") != vec.With("read") {
		t.Error("same labels returned different series")
	}
	vec.With("write").Add(2)
	vec.With("read").Inc()
	gv := r.NewGaugeVec("temp", "Labeled gauge.", "zone")
	gv.With("b").Set(2)
	gv.With("a").Set(1)

	out := render(t, r)
	// Series sorted by label value regardless of creation order.
	if strings.Index(out, `ops_total{kind="read"}`) > strings.Index(out, `ops_total{kind="write"}`) {
		t.Errorf("counter series not sorted:\n%s", out)
	}
	if strings.Index(out, `temp{zone="a"}`) > strings.Index(out, `temp{zone="b"}`) {
		t.Errorf("gauge series not sorted:\n%s", out)
	}
	// Families sorted by name, deterministically.
	if out != render(t, r) {
		t.Error("output not deterministic")
	}
	if strings.Index(out, "# TYPE ops_total") > strings.Index(out, "# TYPE temp") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 3} {
		h.Observe(v)
	}
	if h.Count() != 6 || math.Abs(h.Sum()-5.565) > 1e-9 {
		t.Errorf("count %d sum %v, want 6 / 5.565", h.Count(), h.Sum())
	}
	fams := parse(t, r) // validator enforces cumulative + +Inf == _count
	var got []float64
	for _, s := range fams["latency_seconds"].Samples {
		if s.Name == "latency_seconds_bucket" {
			got = append(got, s.Value)
		}
	}
	want := []float64{2, 3, 4, 6} // le=0.01, 0.1, 1, +Inf (boundary 0.01 counts in its bucket)
	if len(got) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHistogramVecPerLabel(t *testing.T) {
	r := NewRegistry()
	vec := r.NewHistogramVec("decode_seconds", "Decode latency by scale.", []float64{0.01, 0.1}, "scale")
	for _, s := range []string{"1", "1/2", "1/4", "1/8"} {
		vec.With(s) // pre-created: catalog complete before traffic
	}
	vec.With("1/2").Observe(0.05)
	fams := parse(t, r)
	f := fams["decode_seconds"]
	counts := map[string]float64{}
	for _, s := range f.Samples {
		if s.Name == "decode_seconds_count" {
			counts[s.Labels["scale"]] = s.Value
		}
	}
	if len(counts) != 4 || counts["1/2"] != 1 || counts["1"] != 0 {
		t.Errorf("per-scale counts = %v", counts)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	vec := r.NewGaugeVec("weird", `Help with \ backslash
and newline.`, "path")
	vec.With(`a"b\c` + "\n" + `d`).Set(1)
	fams := parse(t, r)
	s := fams["weird"].Samples[0]
	if s.Labels["path"] != `a"b\c`+"\n"+`d` {
		t.Errorf("label round-trip = %q", s.Labels["path"])
	}
	if !strings.Contains(render(t, r), `\n`) {
		t.Error("newline not escaped in output")
	}
}

func TestSpecialValues(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFunc("inf_value", "An infinity.", func() float64 { return math.Inf(1) })
	out := render(t, r)
	if !strings.Contains(out, "inf_value +Inf") {
		t.Errorf("infinity rendered wrong:\n%s", out)
	}
	fams := parse(t, r)
	if !math.IsInf(fams["inf_value"].Samples[0].Value, 1) {
		t.Error("infinity did not round-trip")
	}
}

func TestRegistrationPanics(t *testing.T) {
	for name, f := range map[string]func(*Registry){
		"bad metric name":   func(r *Registry) { r.NewCounter("bad-name", "") },
		"bad label name":    func(r *Registry) { r.NewCounterVec("ok_total", "", "bad-label") },
		"reserved label":    func(r *Registry) { r.NewCounterVec("ok_total", "", "__name__") },
		"duplicate family":  func(r *Registry) { r.NewCounter("twice", ""); r.NewGauge("twice", "") },
		"wrong label count": func(r *Registry) { r.NewCounterVec("v_total", "", "a", "b").With("only-one") },
		"unsorted buckets":  func(r *Registry) { r.NewHistogram("h", "", []float64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f(NewRegistry())
		}()
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	h := r.NewHistogram("h_seconds", "", DurationBuckets)
	vec := r.NewCounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i%7) * 0.001)
				vec.With([]string{"a", "b"}[g%2]).Inc()
			}
		}(g)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("lost updates: counter %d histogram %d", c.Value(), h.Count())
	}
	if vec.With("a").Value()+vec.With("b").Value() != 8000 {
		t.Error("lost labeled updates")
	}
	parse(t, r)
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "X.").Inc()
	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if _, err := ParseText(rr.Body); err != nil {
		t.Errorf("handler output invalid: %v", err)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for name, in := range map[string]string{
		"type after samples":  "a_total 1\n# TYPE a_total counter\n",
		"duplicate type":      "# TYPE a counter\n# TYPE a counter\n",
		"unknown type":        "# TYPE a widget\n",
		"bad sample name":     "9metric 1\n",
		"bad value":           "a_total one\n",
		"two values":          "a_total 1 2 3\n",
		"unterminated labels": "a_total{k=\"v\" 1\n",
		"unquoted label":      "a_total{k=v} 1\n",
		"duplicate label":     "a_total{k=\"1\",k=\"2\"} 1\n",
		"bad escape":          `a_total{k="\q"} 1` + "\n",
		"junk after label":    "a_total{k=\"v\"x} 1\n",
		"histogram no inf":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram shrinks":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf not count":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"bare histogram":      "# TYPE h histogram\nh 3\n",
		"missing sum":         "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
	} {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, in)
		}
	}
	// And the shapes that must stay legal.
	for name, in := range map[string]string{
		"plain comment":   "# just a note\na_total 1\n",
		"untyped sample":  "free_form 1\n",
		"special values":  "g +Inf\nh -Inf\nn NaN\n",
		"blank lines":     "\n\na_total 1\n\n",
		"trailing \\r":    "a_total 1\r\n",
		"empty label set": "a_total{} 1\n",
	} {
		if _, err := ParseText(strings.NewReader(in)); err != nil {
			t.Errorf("%s: rejected: %v", name, err)
		}
	}
}
