package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family: its HELP/TYPE headers and
// samples, in exposition order.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// LabelSignature renders a sample's label set canonically (sorted,
// k="v" joined by commas) — what the golden test pins.
func (s Sample) LabelSignature() string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, s.Labels[k])
	}
	return strings.Join(parts, ",")
}

// ParseText parses and validates Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers precede their samples, names and
// labels are well-formed, values parse, histograms carry cumulative
// non-decreasing buckets ending in a +Inf bucket that equals _count.
// It returns the families in input order.
func ParseText(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var fams []Family
	byName := map[string]*Family{}
	typed := map[string]bool{}
	sampled := map[string]bool{}
	line := 0

	familyOf := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name {
				if f, ok := byName[base]; ok && f.Type == "histogram" {
					return base
				}
			}
		}
		return name
	}
	ensure := func(name string) *Family {
		if f, ok := byName[name]; ok {
			return f
		}
		fams = append(fams, Family{Name: name})
		f := &fams[len(fams)-1]
		byName[name] = f
		return f
	}

	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				// Other comments are legal and ignored.
				continue
			}
			name := fields[2]
			if !nameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", line, name)
			}
			f := ensure(name)
			if fields[1] == "HELP" {
				if len(fields) == 4 {
					f.Help = fields[3]
				}
				continue
			}
			if typed[name] {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", line, name)
			}
			if sampled[name] {
				return nil, fmt.Errorf("line %d: TYPE for %q after its samples", line, name)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: TYPE without a type", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", line, fields[3])
			}
			typed[name] = true
			f.Type = fields[3]
			continue
		}

		s, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		fam := familyOf(s.Name)
		f := ensure(fam)
		sampled[fam] = true
		if f.Type == "histogram" && s.Name == fam {
			return nil, fmt.Errorf("line %d: bare sample %q for histogram family", line, s.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for i := range fams {
		if err := validateFamily(&fams[i]); err != nil {
			return nil, err
		}
	}
	return fams, nil
}

// parseSample parses `name{k="v",...} value` (timestamps rejected: this
// exporter never emits them).
func parseSample(text string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := text
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", text)
	}
	s.Name = rest[:i]
	if !nameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", text)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("expected exactly one value in %q", text)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

func parseLabels(body string, out map[string]string) error {
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return fmt.Errorf("label without value in %q", body)
		}
		name := body[:eq]
		if !labelRe.MatchString(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := out[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		body = body[eq+1:]
		if len(body) == 0 || body[0] != '"' {
			return fmt.Errorf("unquoted label value for %q", name)
		}
		var val strings.Builder
		j := 1
		for ; j < len(body); j++ {
			c := body[j]
			if c == '\\' && j+1 < len(body) {
				j++
				switch body[j] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(body[j])
				default:
					return fmt.Errorf("bad escape \\%c in label %q", body[j], name)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if j >= len(body) {
			return fmt.Errorf("unterminated label value for %q", name)
		}
		out[name] = val.String()
		body = body[j+1:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
		} else if len(body) > 0 {
			return fmt.Errorf("junk after label %q", name)
		}
	}
	return nil
}

// validateFamily enforces per-type sample shape, most importantly the
// histogram contract: cumulative non-decreasing buckets per series, a
// +Inf bucket present and equal to that series' _count.
func validateFamily(f *Family) error {
	if f.Type != "histogram" {
		return nil
	}
	type hseries struct {
		buckets []Sample
		count   *Sample
		sum     bool
	}
	bySig := map[string]*hseries{}
	order := []string{}
	get := func(s Sample) *hseries {
		labels := make(map[string]string, len(s.Labels))
		for k, v := range s.Labels {
			if k != "le" {
				labels[k] = v
			}
		}
		sig := Sample{Labels: labels}.LabelSignature()
		h := bySig[sig]
		if h == nil {
			h = &hseries{}
			bySig[sig] = h
			order = append(order, sig)
		}
		return h
	}
	for i := range f.Samples {
		s := f.Samples[i]
		switch s.Name {
		case f.Name + "_bucket":
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("%s: bucket sample without le label", f.Name)
			}
			get(s).buckets = append(get(s).buckets, s)
		case f.Name + "_sum":
			get(s).sum = true
		case f.Name + "_count":
			c := s
			get(s).count = &c
		default:
			return fmt.Errorf("%s: unexpected sample %q in histogram family", f.Name, s.Name)
		}
	}
	for _, sig := range order {
		h := bySig[sig]
		if len(h.buckets) == 0 || h.count == nil || !h.sum {
			return fmt.Errorf("%s{%s}: histogram series missing buckets, _sum or _count", f.Name, sig)
		}
		prevBound := math.Inf(-1)
		prevCum := -1.0
		sawInf := false
		for _, b := range h.buckets {
			bound, err := parseValue(b.Labels["le"])
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, b.Labels["le"])
			}
			if bound <= prevBound {
				return fmt.Errorf("%s: bucket bounds not increasing at le=%q", f.Name, b.Labels["le"])
			}
			if b.Value < prevCum {
				return fmt.Errorf("%s: buckets not cumulative at le=%q", f.Name, b.Labels["le"])
			}
			prevBound, prevCum = bound, b.Value
			if math.IsInf(bound, 1) {
				sawInf = true
				if b.Value != h.count.Value {
					return fmt.Errorf("%s: +Inf bucket %v != _count %v", f.Name, b.Value, h.count.Value)
				}
			}
		}
		if !sawInf {
			return fmt.Errorf("%s: histogram series without +Inf bucket", f.Name)
		}
	}
	return nil
}
