package partition

import (
	"testing"

	"hetjpeg/internal/mathx"
	"hetjpeg/internal/perfmodel"
)

// syntheticModel builds a SubModel with known linear behavior:
//
//	PCPU(w, x)  = cpuRate * w * x
//	PGPU(w, g)  = gpuRate * w * g + gpuFixed
//	TDisp(w, g) = dispFixed
//	THuff/px(d) = huffRate * d
func syntheticModel(cpuRate, gpuRate, gpuFixed, dispFixed, huffRate float64) *perfmodel.SubModel {
	// Poly2 degree 2, graded by h-power: [1, w, w^2, h, wh, h^2].
	pcpu := mathx.Poly2{Deg: 2, Coef: []float64{0, 0, 0, 0, cpuRate, 0}}
	pgpu := mathx.Poly2{Deg: 2, Coef: []float64{gpuFixed, 0, 0, 0, gpuRate, 0}}
	disp := mathx.Poly2{Deg: 2, Coef: []float64{dispFixed, 0, 0, 0, 0, 0}}
	return &perfmodel.SubModel{
		HuffPerPixel: mathx.Poly1{Coef: []float64{0, huffRate}},
		PCPU:         pcpu,
		PCPUScalar:   pcpu,
		PGPU:         pgpu,
		TDisp:        disp,
	}
}

func TestSolveSPSBalancesEqualRates(t *testing.T) {
	// Equal per-row rates, no fixed costs: the balanced split is 50/50.
	m := syntheticModel(1.0, 1.0, 0, 0, 1.0)
	in := Inputs{W: 1000, H: 800, D: 0.2, MCURowPix: 8, Model: m}
	x := SolveSPS(in)
	if got := x * in.MCURowPix; got < 360 || got > 440 {
		t.Fatalf("CPU rows %d px, want ~400", got)
	}
}

func TestSolveSPSFasterGPUGetsMore(t *testing.T) {
	// GPU 3x the CPU rate: x/(h-x) balances when x = h/4.
	m := syntheticModel(1.0, 1.0/3.0, 0, 0, 1.0)
	in := Inputs{W: 1000, H: 800, D: 0.2, MCURowPix: 8, Model: m}
	x := SolveSPS(in)
	px := x * in.MCURowPix
	if px < 160 || px > 240 {
		t.Fatalf("CPU share %d px, want ~200 (quarter)", px)
	}
}

func TestSolveSPSSlowGPUFavorsCPU(t *testing.T) {
	// GPU slower than CPU (GT 430 situation): CPU keeps the majority.
	m := syntheticModel(1.0, 2.0, 50000, 3000, 1.0)
	in := Inputs{W: 1000, H: 800, D: 0.2, MCURowPix: 8, Model: m}
	x := SolveSPS(in)
	px := x * in.MCURowPix
	if px <= 400 {
		t.Fatalf("CPU share %d px should exceed half with a slow GPU", px)
	}
	if px >= 800 {
		t.Fatal("CPU share should not be everything: the GPU still helps")
	}
}

func TestSolvePPSShiftsWorkToGPU(t *testing.T) {
	// PPS hides Huffman behind GPU work, so the CPU share shrinks vs SPS.
	m := syntheticModel(1.0, 0.5, 0, 0, 2.0)
	in := Inputs{W: 1000, H: 800, D: 0.2, MCURowPix: 8, Model: m, ChunkRows: 4}
	sps := SolveSPS(in)
	pps := SolvePPS(in)
	if pps >= sps {
		t.Fatalf("PPS CPU share (%d rows) should be below SPS share (%d rows)", pps, sps)
	}
}

func TestSolveBoundsClamped(t *testing.T) {
	// Extremely fast GPU: everything goes to the device (x=0). Extremely
	// slow: everything stays on the CPU (x=H/MCURowPix).
	fast := syntheticModel(1.0, 1e-6, 0, 0, 1.0)
	in := Inputs{W: 500, H: 400, D: 0.1, MCURowPix: 8, Model: fast}
	if x := SolveSPS(in); x != 0 {
		t.Fatalf("fast GPU: CPU rows %d want 0", x)
	}
	slow := syntheticModel(1e-6, 10.0, 1e9, 0, 1.0)
	in.Model = slow
	if x := SolveSPS(in); x != 50 {
		t.Fatalf("slow GPU: CPU rows %d want all (50)", x)
	}
}

func TestRoundToMCU(t *testing.T) {
	in := Inputs{H: 100, MCURowPix: 16}
	if r := in.roundToMCU(24); r != 2 { // 24/16 = 1.5 -> 2
		t.Fatalf("round 24px -> %d rows, want 2", r)
	}
	if r := in.roundToMCU(-5); r != 0 {
		t.Fatalf("negative clamps to 0, got %d", r)
	}
	if r := in.roundToMCU(1e9); r != 7 { // ceil(100/16) = 7
		t.Fatalf("overflow clamps to 7, got %d", r)
	}
}

func TestRepartitionRespondsToPressure(t *testing.T) {
	m := syntheticModel(1.0, 0.5, 0, 0, 2.0)
	in := Inputs{W: 1000, H: 800, D: 0.2, MCURowPix: 8, Model: m, ChunkRows: 4}
	base := Repartition(in, 400, 0.2, 0)
	// In-flight GPU work (prevGPUNs > 0) delays the device, so more rows
	// move to the CPU.
	loaded := Repartition(in, 400, 0.2, 2e5)
	if loaded < base {
		t.Fatalf("GPU backlog should increase CPU share: %d < %d", loaded, base)
	}
	// A denser remainder (d' > d) means more Huffman time on the CPU
	// path; under Equation (16) the CPU keeps less of the parallel work.
	denser := Repartition(in, 400, 0.4, 0)
	if denser > base {
		t.Fatalf("denser remainder should not grow the CPU share: %d > %d", denser, base)
	}
}

func TestCorrectedDensity(t *testing.T) {
	// Remaining time share 0.6 vs height share 0.5: remainder denser.
	if d := CorrectedDensity(0.2, 0.6, 0.5); d <= 0.2 {
		t.Fatalf("density %v should increase", d)
	}
	if d := CorrectedDensity(0.2, 0.3, 0.5); d >= 0.2 {
		t.Fatalf("density %v should decrease", d)
	}
	if d := CorrectedDensity(0.2, 0.5, 0); d != 0.2 {
		t.Fatalf("degenerate ratio must return input, got %v", d)
	}
}
