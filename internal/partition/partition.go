// Package partition implements the paper's dynamic partitioning schemes
// (Section 5.2): the image is split horizontally so that the bottom x
// pixel rows go to the CPU (SIMD) and the top h-x rows to the GPU, with x
// chosen so both finish together. The balance functions of Equations
// (10), (13), (15) and (16) are solved at run time with Newton's method
// over the fitted performance polynomials; the result is rounded to whole
// MCU rows (libjpeg-turbo decodes in MCU units).
package partition

import (
	"hetjpeg/internal/mathx"
	"hetjpeg/internal/perfmodel"
)

// Inputs collects everything the balance equations need.
type Inputs struct {
	W, H      int     // coded image dimensions in pixels
	D         float64 // entropy density, bytes/pixel (Equation 3)
	MCURowPix int     // coded pixel rows per MCU row (8 or 16)
	Model     *perfmodel.SubModel
	ChunkRows int // pipelining chunk size in MCU rows (PPS)
	// Scale is the decode-to-scale denominator (0 or 1 = full size).
	// The balance equations keep working in coded pixel rows — Huffman
	// time is scale-invariant — but the parallel-phase polynomials
	// (PCPU, PGPU, TDisp) are evaluated at the scaled geometry, where a
	// 1/s decode does roughly 1/s² of the back-phase work. The fitted
	// forms were trained on full decodes of varied sizes, so evaluating
	// them at (W/s, rows/s) reuses the fit's own size dependence.
	Scale int
}

func (in Inputs) wf() float64 { return float64(in.W) }

// sf returns the scale denominator as a float (>= 1).
func (in Inputs) sf() float64 {
	if in.Scale > 1 {
		return float64(in.Scale)
	}
	return 1
}

// evalGuard evaluates a fitted bivariate phase polynomial at (w, rows)
// while enforcing the physical boundary condition the regression cannot
// represent: zero rows of work take zero time. Below a small floor the
// polynomial is replaced by a linear ramp from zero to its value at the
// floor; this keeps the Newton balance functions well-behaved when one
// side's share approaches zero (evaluating the raw polynomial at
// near-zero heights is an extrapolation far outside the training
// manifold — the hazard Section 5.1 warns about).
type phasePoly interface {
	Eval(w, h float64) float64
	DerivH(w, h float64) float64
}

func (in Inputs) evalGuard(p phasePoly, rows float64) float64 {
	s := in.sf()
	floor := 2 * float64(in.MCURowPix)
	if rows <= 0 {
		return 0
	}
	if rows < floor {
		v := p.Eval(in.wf()/s, floor/s)
		if v < 0 {
			v = 0
		}
		return v * rows / floor
	}
	v := p.Eval(in.wf()/s, rows/s)
	if v < 0 {
		v = 0
	}
	return v
}

func (in Inputs) derivGuard(p phasePoly, rows float64) float64 {
	s := in.sf()
	floor := 2 * float64(in.MCURowPix)
	if rows <= 0 {
		return 0
	}
	if rows < floor {
		v := p.Eval(in.wf()/s, floor/s)
		if v < 0 {
			v = 0
		}
		return v / floor
	}
	// d/d(rows) of p(w/s, rows/s) — the chain rule divides by s.
	return p.DerivH(in.wf()/s, rows/s) / s
}

// roundToMCU rounds x (CPU pixel rows) to a whole number of MCU rows,
// clamped to [0, H].
func (in Inputs) roundToMCU(x float64) int {
	m := float64(in.MCURowPix)
	r := int(x/m + 0.5)
	if r < 0 {
		r = 0
	}
	maxRows := in.H / in.MCURowPix // partial bottom MCU row stays with the CPU side implicitly
	if in.H%in.MCURowPix != 0 {
		maxRows++
	}
	if r > maxRows {
		r = maxRows
	}
	return r
}

// SolveSPS returns the number of CPU MCU rows balancing Equation (10):
//
//	f(x) = Tdisp(w, h-x) + PCPU(w, x) - PGPU(w, h-x)
func SolveSPS(in Inputs) int {
	h := float64(in.H)
	m := in.Model
	f := func(x float64) float64 {
		return in.evalGuard(m.TDisp, h-x) + in.evalGuard(m.PCPU, x) - in.evalGuard(m.PGPU, h-x)
	}
	fp := func(x float64) float64 {
		return -in.derivGuard(m.TDisp, h-x) + in.derivGuard(m.PCPU, x) + in.derivGuard(m.PGPU, h-x)
	}
	x := mathx.Newton(f, fp, h/2, 0, h, 40, 1)
	return in.roundToMCU(x)
}

// SolvePPS returns the number of CPU MCU rows balancing Equation (15),
// which accounts for pipelined GPU chunks: the GPU starts after the first
// chunk's Huffman data arrives, so the CPU side carries the Huffman time
// of everything after that first chunk.
//
//	f(x) = THuff(w, h-c, d) + PCPU(w, x) + Tdisp(w, h-x) - PGPU(w, h-x)
func SolvePPS(in Inputs) int {
	w, h := in.wf(), float64(in.H)
	m := in.Model
	c := float64(in.ChunkRows * in.MCURowPix)
	if c > h {
		c = h
	}
	huffRest := m.THuff(w, h-c, in.D)
	f := func(x float64) float64 {
		return huffRest + in.evalGuard(m.PCPU, x) + in.evalGuard(m.TDisp, h-x) - in.evalGuard(m.PGPU, h-x)
	}
	fp := func(x float64) float64 {
		return in.derivGuard(m.PCPU, x) - in.derivGuard(m.TDisp, h-x) + in.derivGuard(m.PGPU, h-x)
	}
	x := mathx.Newton(f, fp, h/4, 0, h, 40, 1)
	return in.roundToMCU(x)
}

// Repartition implements Equation (16): before the last GPU chunk is
// dispatched, the split is recomputed over the remaining unprocessed
// region of hPrime pixel rows using the corrected density dPrime
// (Equation 17) and the estimated remaining time of in-flight GPU work.
// It returns the new number of CPU MCU rows taken from the bottom of the
// remaining region.
func Repartition(in Inputs, hPrime int, dPrime float64, prevGPUNs float64) int {
	w := in.wf()
	hp := float64(hPrime)
	m := in.Model
	f := func(x float64) float64 {
		return in.evalGuard(m.TDisp, hp-x) + m.THuff(w, hp, dPrime) + in.evalGuard(m.PCPU, x) -
			in.evalGuard(m.PGPU, hp-x) - prevGPUNs
	}
	fp := func(x float64) float64 {
		return -in.derivGuard(m.TDisp, hp-x) + in.derivGuard(m.PCPU, x) + in.derivGuard(m.PGPU, hp-x)
	}
	x := mathx.Newton(f, fp, hp/2, 0, hp, 40, 1)
	r := int(x/float64(in.MCURowPix) + 0.5)
	if r < 0 {
		r = 0
	}
	if max := (hPrime + in.MCURowPix - 1) / in.MCURowPix; r > max {
		r = max
	}
	return r
}

// CorrectedDensity implements Equation (17): when the measured Huffman
// time of the processed prefix lags or leads the model's estimate, the
// density of the remaining region is scaled by the ratio of remaining
// time share to remaining height share.
func CorrectedDensity(d float64, remainingHuffRatio, remainingHeightRatio float64) float64 {
	if remainingHeightRatio <= 0 {
		return d
	}
	return d * remainingHuffRatio / remainingHeightRatio
}
