package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrapCheck guards the typed-sentinel contract: ErrUnsupported,
// ErrUnsupportedScale and ErrPartialData must survive errors.Is through
// every layer (jpegcodec → core → batch → webserver; ErrPartialData
// additionally rides *alongside* a usable result on the salvage path,
// where losing the sentinel would turn "degraded but displayable" into
// "corrupt"), so an error value may only be folded into a new error
// with %w. Formatting an error-typed argument
// with %v/%s/%q re-stringifies it and silently breaks errors.Is; so does
// interpolating err.Error().
var ErrWrapCheck = &Analyzer{
	Name: "errwrapcheck",
	Doc:  "errors must be wrapped with %w, not re-stringified with %v/%s or err.Error()",
	Run:  runErrWrapCheck,
}

func runErrWrapCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if calleeName(pass.Info, call) != "fmt.Errorf" || len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true // non-constant format: nothing to line verbs up against
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			verbs, ok := formatVerbs(format)
			if !ok {
				return true // indexed arguments: bail rather than misattribute
			}
			for _, v := range verbs {
				argIdx := 1 + v.arg
				if argIdx >= len(call.Args) {
					break
				}
				arg := call.Args[argIdx]
				if v.verb == 'w' || v.verb == 'T' || v.verb == 'p' {
					continue
				}
				tv, ok := pass.Info.Types[arg]
				if !ok || !implementsError(tv.Type) {
					continue
				}
				pass.Reportf(arg.Pos(), "error %s formatted with %%%c; wrap it with %%w so errors.Is keeps working across layers",
					describeErrArg(pass, arg), v.verb)
			}
			// err.Error() interpolated under any verb is the same
			// re-stringification with extra steps.
			for _, arg := range call.Args[1:] {
				if c, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Error" && len(c.Args) == 0 {
						if tv, ok := pass.Info.Types[sel.X]; ok && implementsError(tv.Type) {
							pass.Reportf(arg.Pos(), "err.Error() interpolated into fmt.Errorf re-stringifies the error; pass the error itself with %%w")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// describeErrArg names the argument in the diagnostic; the typed
// sentinels get called out explicitly since they are the contract.
func describeErrArg(pass *Pass, arg ast.Expr) string {
	var obj types.Object
	switch a := ast.Unparen(arg).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[a]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[a.Sel]
	}
	if obj != nil {
		if strings.HasPrefix(obj.Name(), "Err") {
			return "sentinel " + obj.Name()
		}
		return obj.Name()
	}
	return "value"
}

type verbAt struct {
	verb byte
	arg  int // operand index consumed by this verb
}

// formatVerbs maps each format verb to the operand index it consumes,
// accounting for `*` width/precision operands. ok is false when the
// format uses explicit argument indexes (%[n]v), which this checker
// does not model.
func formatVerbs(format string) (verbs []verbAt, ok bool) {
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				arg++
				i++
				continue
			}
			if c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' || c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		verbs = append(verbs, verbAt{verb: format[i], arg: arg})
		arg++
	}
	return verbs, true
}
