package lint

// Codegen audit: parse the Go compiler's bounds-check-elimination and
// escape-analysis diagnostics, attribute each site to its enclosing
// function, and diff the aggregate against a committed baseline. The
// hot loops in this repo (AAN IDCT, bitstream refill, Huffman walk,
// color convert) were hand-shaped so the compiler proves their index
// expressions in bounds and keeps their scratch on the stack; a NEW
// bounds check or heap escape in one of them is a silent performance
// regression that go test cannot see. cmd/hetaudit runs
//
//	go build -gcflags='<pkg>=-d=ssa/check_bce/debug=1' <pkg>   (BCE)
//	go build -gcflags='<pkg>=-m' <pkg>                         (escape)
//
// and feeds the stderr through this file. Baselines are keyed
// (file, function, kind) with a count — line numbers shift on every
// edit, but a function either keeps its checks eliminated or it does
// not — so unrelated edits never churn the baseline.

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// AuditLine is one compiler diagnostic: a bounds check the SSA pass
// could not eliminate, or a value escape analysis sent to the heap.
type AuditLine struct {
	File string // path as printed by the compiler (repo-relative)
	Line int
	Col  int
	Kind string // "IsInBounds", "IsSliceInBounds", "moved-to-heap", "escapes-to-heap"
}

// diagRE matches the `file:line:col: message` shape of compiler
// diagnostics. The message part is classified by the callers.
var diagRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// ParseBCE extracts unproven bounds checks from
// `-d=ssa/check_bce/debug=1` output. Lines that are not
// "Found Is(Slice)?InBounds" diagnostics are ignored.
func ParseBCE(output string) []AuditLine {
	var out []AuditLine
	sc := bufio.NewScanner(strings.NewReader(output))
	for sc.Scan() {
		m := diagRE.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		var kind string
		switch {
		case strings.HasPrefix(m[4], "Found IsSliceInBounds"):
			kind = "IsSliceInBounds"
		case strings.HasPrefix(m[4], "Found IsInBounds"):
			kind = "IsInBounds"
		default:
			continue
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		out = append(out, AuditLine{File: m[1], Line: line, Col: col, Kind: kind})
	}
	return out
}

// ParseEscape extracts heap escapes from `-m` output. Inlining notes
// and the (good) "does not escape" lines are ignored.
func ParseEscape(output string) []AuditLine {
	var out []AuditLine
	sc := bufio.NewScanner(strings.NewReader(output))
	for sc.Scan() {
		m := diagRE.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		var kind string
		switch {
		case strings.HasPrefix(m[4], "moved to heap:"):
			kind = "moved-to-heap"
		case strings.HasSuffix(m[4], "escapes to heap") && !strings.Contains(m[4], "does not escape"):
			kind = "escapes-to-heap"
		default:
			continue
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		out = append(out, AuditLine{File: m[1], Line: line, Col: col, Kind: kind})
	}
	return out
}

// AuditKey identifies one class of codegen site stably across edits.
type AuditKey struct {
	File string // repo-relative path
	Func string // enclosing function ("Recv.Method" or "Func"); "<file>" outside any function
	Kind string
}

func (k AuditKey) String() string { return k.File + " " + k.Func + " " + k.Kind }

// funcSpan is one function's position extent within a file.
type funcSpan struct {
	name       string
	start, end int // line numbers, inclusive
}

// fileFuncs parses path and returns the line spans of its top-level
// functions, receiver-qualified for methods.
func fileFuncs(path string) ([]funcSpan, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var spans []funcSpan
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) == 1 {
			name = recvTypeName(fd.Recv.List[0].Type) + "." + name
		}
		spans = append(spans, funcSpan{
			name:  name,
			start: fset.Position(fd.Pos()).Line,
			end:   fset.Position(fd.End()).Line,
		})
	}
	return spans, nil
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return "?"
}

// Summarize attributes each diagnostic to its enclosing function and
// aggregates counts per (file, function, kind). root is the directory
// the compiler paths are relative to (the repo root).
func Summarize(root string, lines []AuditLine) (map[AuditKey]int, error) {
	spanCache := map[string][]funcSpan{}
	counts := map[AuditKey]int{}
	for _, l := range lines {
		spans, ok := spanCache[l.File]
		if !ok {
			var err error
			spans, err = fileFuncs(filepath.Join(root, l.File))
			if err != nil {
				return nil, fmt.Errorf("hetaudit: attributing %s: %w", l.File, err)
			}
			spanCache[l.File] = spans
		}
		fn := "<file>"
		for _, s := range spans {
			if l.Line >= s.start && l.Line <= s.end {
				fn = s.name
				break
			}
		}
		counts[AuditKey{File: l.File, Func: fn, Kind: l.Kind}]++
	}
	return counts, nil
}

// FormatBaseline renders counts as the committed baseline text:
// sorted, one "file func kind count" per line, with a header comment
// explaining how to regenerate it.
func FormatBaseline(header string, counts map[AuditKey]int) string {
	keys := make([]AuditKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", header)
	b.WriteString("# Regenerate with: make lint-baseline (runs hetaudit -bless).\n")
	b.WriteString("# Format: file function kind count\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %s %s %d\n", k.File, k.Func, k.Kind, counts[k])
	}
	return b.String()
}

// ParseBaseline reads a baseline written by FormatBaseline.
func ParseBaseline(text string) (map[AuditKey]int, error) {
	counts := map[AuditKey]int{}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("baseline line %d: want 4 fields, got %d", lineno, len(f))
		}
		n, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("baseline line %d: bad count %q", lineno, f[3])
		}
		counts[AuditKey{File: f[0], Func: f[1], Kind: f[2]}] = n
	}
	return counts, nil
}

// DiffBaseline compares the current audit against the committed
// baseline. Regressions (new sites, or more sites in a known
// function) fail the gate; improvements (sites that disappeared) are
// reported so the baseline can be tightened with -bless.
func DiffBaseline(baseline, current map[AuditKey]int) (regressions, improvements []string) {
	keys := map[AuditKey]bool{}
	for k := range baseline {
		keys[k] = true
	}
	for k := range current {
		keys[k] = true
	}
	sorted := make([]AuditKey, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].String() < sorted[j].String() })
	for _, k := range sorted {
		was, now := baseline[k], current[k]
		switch {
		case now > was:
			regressions = append(regressions,
				fmt.Sprintf("%s: %s in %s: %d -> %d", k.File, k.Kind, k.Func, was, now))
		case now < was:
			improvements = append(improvements,
				fmt.Sprintf("%s: %s in %s: %d -> %d", k.File, k.Kind, k.Func, was, now))
		}
	}
	return regressions, improvements
}

// WriteRawAudit saves the raw compiler output next to the repo root
// for human inspection (gitignored; the baselines are the record).
func WriteRawAudit(path, output string) error {
	return os.WriteFile(path, []byte(output), 0o644)
}
