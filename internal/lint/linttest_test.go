package lint

// Fixture-driven analyzer tests, analysistest-style: each package under
// testdata/src/ is type-checked and analyzed, and its diagnostics are
// matched against `// want "regexp"` comments on the lines where they
// must appear. Every diagnostic must be expected and every expectation
// must fire, so the fixtures pin both the true positives and the
// false-positive guards.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantQuotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantEntry struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// runFixture loads testdata/src/<name>, runs the analyzers over it, and
// diffs the diagnostics against the fixture's want comments.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	wants := map[string][]*wantEntry{} // "file:line" -> expectations
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantQuotedRE.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], &wantEntry{re: re, raw: m[1]})
				}
			}
		}
	}
	pkg, err := TypecheckFiles("", "fixture/"+name, fset, files)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, func(d Diagnostic) {
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s: %s", key, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched %q", key, w.raw)
			}
		}
	}
}

func TestPoolCheckSlabFixture(t *testing.T)   { runFixture(t, "poolslab", PoolCheck) }
func TestPoolCheckResultFixture(t *testing.T) { runFixture(t, "poolresult", PoolCheck) }
func TestErrWrapCheckFixture(t *testing.T)    { runFixture(t, "errwrap", ErrWrapCheck) }
func TestCtxLoopCheckFixture(t *testing.T)    { runFixture(t, "ctxloop", CtxLoopCheck) }
