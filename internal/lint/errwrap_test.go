package lint

import (
	"reflect"
	"testing"
)

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verbAt
		ok     bool
	}{
		{"plain text", nil, true},
		{"a %v b", []verbAt{{'v', 0}}, true},
		{"%v %w", []verbAt{{'v', 0}, {'w', 1}}, true},
		{"%s%s", []verbAt{{'s', 0}, {'s', 1}}, true},
		// A * width consumes an operand before the verb's own.
		{"row %*d: %w", []verbAt{{'d', 1}, {'w', 2}}, true},
		{"%.*f %v", []verbAt{{'f', 1}, {'v', 2}}, true},
		// %% is a literal, not a verb, and consumes nothing.
		{"100%% done: %w", []verbAt{{'w', 0}}, true},
		// Flags and width/precision digits stick to their verb.
		{"%+08.3f %q", []verbAt{{'f', 0}, {'q', 1}}, true},
		// Explicit argument indexes: bail rather than misattribute.
		{"twice: %[1]v %[1]v", nil, false},
	}
	for _, c := range cases {
		got, ok := formatVerbs(c.format)
		if ok != c.ok {
			t.Errorf("formatVerbs(%q): ok=%v, want %v", c.format, ok, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("formatVerbs(%q):\n got %+v\nwant %+v", c.format, got, c.want)
		}
	}
}
