package lint

import (
	"go/ast"
	"go/types"
)

// CtxLoopCheck guards the cancellation contract Prepared.EntropyDecode
// established (PR 3): a function that accepts a context.Context and
// loops over data-sized work — MCU rows, bands, scans, images — must
// observe ctx inside the loop, either by polling ctx.Err()/ctx.Done() or
// by passing ctx to a callee that does. Otherwise a cancelled batch
// keeps burning CPU until the loop drains on its own.
//
// Exemptions (the false-positive guards):
//   - loops whose trip count is bounded by a compile-time constant
//     (`for i := 0; i < 4; i++`, range over an array) are not data-sized;
//   - loops whose body makes no function calls finish in bounded time;
//   - a deliberate non-polling loop can be annotated `//hetlint:nopoll`
//     with a justification.
var CtxLoopCheck = &Analyzer{
	Name: "ctxloopcheck",
	Doc:  "loops in context-accepting functions must poll ctx or pass it on",
	Run:  runCtxLoopCheck,
}

func runCtxLoopCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			ctxObjs := ctxParams(pass, fd.Type)
			checkCtxLoops(pass, fd.Body, ctxObjs)
			return false // checkCtxLoops recurses into nested literals itself
		})
	}
	return nil
}

// ctxParams collects the non-blank context.Context parameters of a
// function type.
func ctxParams(pass *Pass, ft *ast.FuncType) []types.Object {
	var objs []types.Object
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := pass.Info.Defs[name]; obj != nil && isContextType(obj.Type()) {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// checkCtxLoops walks one function body. Nested function literals
// inherit the enclosing context objects (a closure capturing ctx is
// bound by the same contract) plus any of their own.
func checkCtxLoops(pass *Pass, body *ast.BlockStmt, ctxObjs []types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCtxLoops(pass, n.Body, append(ctxParams(pass, n.Type), ctxObjs...))
			return false
		case *ast.ForStmt:
			if len(ctxObjs) > 0 {
				checkOneLoop(pass, n, n.Body, ctxObjs, constBoundFor(pass, n))
			}
		case *ast.RangeStmt:
			if len(ctxObjs) > 0 {
				checkOneLoop(pass, n, n.Body, ctxObjs, constBoundRange(pass, n))
			}
		}
		return true
	})
}

func checkOneLoop(pass *Pass, loop ast.Node, body *ast.BlockStmt, ctxObjs []types.Object, constBound bool) {
	if constBound || pass.Annotated(loop, "nopoll") {
		return
	}
	for _, obj := range ctxObjs {
		if usesObject(pass.Info, body, obj) {
			return // polls ctx.Err()/Done() or passes ctx to a callee
		}
	}
	if !bodyHasCalls(pass, body) {
		return // pure arithmetic loop: bounded work per element
	}
	pass.Reportf(loop.Pos(), "loop in a context-accepting function neither polls ctx nor passes it to a callee; a cancelled decode keeps running until the loop drains (annotate //hetlint:nopoll if deliberate)")
}

// bodyHasCalls reports whether the loop body calls any non-builtin
// function (conversions and len/cap-style builtins do not count).
func bodyHasCalls(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, ok := pass.Info.Uses[id].(*types.Builtin); ok {
				return true
			}
		}
		found = true
		return false
	})
	return found
}

// constBoundFor reports whether the for loop's condition compares
// against a compile-time constant (`i < 8`, `i <= workers` is not).
func constBoundFor(pass *Pass, s *ast.ForStmt) bool {
	b, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	return isConstExpr(pass, b.X) || isConstExpr(pass, b.Y)
}

// constBoundRange reports whether the range expression has a
// compile-time-constant extent: an array, a pointer to array, or a
// constant integer (range-over-int).
func constBoundRange(pass *Pass, s *ast.RangeStmt) bool {
	tv, ok := pass.Info.Types[s.X]
	if !ok {
		return false
	}
	if tv.Value != nil {
		return true
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, isArray := t.Underlying().(*types.Array)
	return isArray
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}
