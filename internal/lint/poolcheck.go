package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolCheck enforces the slab-pool discipline the PR 1 allocation win
// (15.9 MB/op → 0.46 MB/op) depends on:
//
//   - a slice obtained from pool.Slab.Get must be Put back on every
//     return path of the acquiring function, unless the acquisition is
//     annotated `//hetlint:transfer` to document that ownership is
//     handed to the caller or a longer-lived structure;
//   - a Get whose result immediately escapes (returned, stored in a
//     struct, passed to a callee) is a handoff and must carry the same
//     annotation;
//   - a slab must not be used after it was Put;
//   - in cmd/ and examples/ binaries (package main), a *hetjpeg.Result
//     obtained from Decode must be Released on every path, and a batch
//     loop that reads ImageResult.Res must Release it.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "pool.Slab.Get/Put pairing, use-after-Put, and Result.Release coverage",
	Run:  runPoolCheck,
}

func runPoolCheck(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(fn ast.Node, body *ast.BlockStmt) {
			checkFuncPools(pass, body)
		})
		if pass.Pkg.Name() == "main" {
			checkBatchRangeLoops(pass, f)
		}
	}
	return nil
}

// tracked is one acquisition of a pooled value in a function.
type tracked struct {
	obj    types.Object // the local the pooled value is bound to
	errObj types.Object // error bound in the same assignment, if any
	acq    ast.Stmt     // the acquiring statement
	what   string       // "slab" or "decode result"
}

// isSlabGet reports whether call is (*pool.Slab[T]).Get.
func isSlabGet(info *types.Info, call *ast.CallExpr) bool {
	return methodCall(info, call, "Get", isSlabType) != nil
}

// releasesObj reports whether n contains a release of obj outside nested
// function literals: pool.Put(obj), obj.Release(), or a deferred closure
// doing either.
func releasesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false // a non-deferred closure is an escape, not a release
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if methodCall(info, call, "Put", isSlabType) != nil &&
			len(call.Args) > 0 && isObjIdent(info, call.Args[0], obj) {
			found = true
			return false
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" &&
			isObjIdent(info, sel.X, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isObjIdent(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && (info.Uses[id] == obj || info.Defs[id] == obj)
}

// checkFuncPools runs the acquisition/release analysis over one function
// body (nested function literals are separate scopes).
func checkFuncPools(pass *Pass, body *ast.BlockStmt) {
	var tracks []*tracked

	// Find acquisitions. A Get (or, in package main, a call returning
	// *core.Result) bound to a local starts tracking; a Get whose result
	// is used any other way is an immediate handoff needing annotation.
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			if tr := trackedFromAssign(pass, n, call, n.Lhs); tr != nil {
				tracks = append(tracks, tr)
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 1 {
					continue
				}
				call, ok := vs.Values[0].(*ast.CallExpr)
				if !ok {
					continue
				}
				var lhs []ast.Expr
				for _, name := range vs.Names {
					lhs = append(lhs, name)
				}
				if tr := trackedFromAssign(pass, n, call, lhs); tr != nil {
					tracks = append(tracks, tr)
				}
			}
		}
	})

	// Gets not bound to a local are handoffs at birth.
	inspectShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSlabGet(pass.Info, call) {
			return
		}
		if acquiredBySomeTrack(tracks, call) {
			return
		}
		if !pass.Annotated(call, "transfer") {
			pass.Reportf(call.Pos(), "result of pool Get is handed off directly; annotate the handoff with //hetlint:transfer (or bind it and Put it on every path)")
		}
	})

	for _, tr := range tracks {
		if pass.Annotated(tr.acq, "transfer") {
			continue
		}
		if pos, escaped := escapeUse(pass, body, tr); escaped {
			pass.Reportf(pos, "%s %s escapes this function without a //hetlint:transfer annotation on its acquisition (line %d)",
				tr.what, tr.obj.Name(), pass.Fset.Position(tr.acq.Pos()).Line)
			continue
		}
		ev := &evaluator{pass: pass, tr: tr}
		out, terminated := ev.evalStmts(body.List, state{}, nil, nil)
		if !terminated && out.mayLeak {
			ev.leak(body.End())
		}
		if len(ev.leaks) > 0 {
			pos := pass.Fset.Position(ev.leaks[0])
			pass.Reportf(tr.acq.Pos(), "%s %s is not released on every path: a path reaches %s:%d without %s",
				tr.what, tr.obj.Name(), pos.Filename, pos.Line, releaseVerb(tr.what))
		}
		checkUseAfterRelease(pass, body, tr)
	}
}

func releaseVerb(what string) string {
	if what == "slab" {
		return "Put"
	}
	return "Release"
}

// trackedFromAssign starts tracking when one LHS of `lhs = call` binds a
// pooled value to a local variable.
func trackedFromAssign(pass *Pass, stmt ast.Stmt, call *ast.CallExpr, lhs []ast.Expr) *tracked {
	slab := isSlabGet(pass.Info, call)
	var obj, errObj types.Object
	what := ""
	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		o := pass.Info.Defs[id]
		if o == nil {
			o = pass.Info.Uses[id]
		}
		if o == nil {
			continue
		}
		v, ok := o.(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil || v.Parent() == pass.Pkg.Scope() {
			continue // only locals are trackable
		}
		switch {
		case slab && len(lhs) == 1:
			obj, what = o, "slab"
		case pass.Pkg.Name() == "main" && isResultPtr(o.Type()):
			obj, what = o, "decode result"
		case implementsError(o.Type()):
			errObj = o
		}
	}
	if obj == nil {
		return nil
	}
	return &tracked{obj: obj, errObj: errObj, acq: stmt, what: what}
}

func acquiredBySomeTrack(tracks []*tracked, call *ast.CallExpr) bool {
	for _, tr := range tracks {
		found := false
		ast.Inspect(tr.acq, func(n ast.Node) bool {
			if n == ast.Node(call) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// inspectShallow walks the statement subtree without descending into
// nested function literals (their bodies are separate scopes).
func inspectShallow(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// escapeUse scans for uses that hand the tracked value beyond this
// function: returning it, storing it anywhere but back into itself,
// passing it to a callee (other than its release), sending it, taking
// its address, or capturing it in a non-deferred closure.
func escapeUse(pass *Pass, body *ast.BlockStmt, tr *tracked) (token.Pos, bool) {
	parents := buildParents(body)
	var escapePos token.Pos
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			// A closure touching the value: fine when it is the body of a
			// defer that releases it, an escape otherwise.
			if usesObject(pass.Info, lit, tr.obj) {
				if d, ok := parents[lit].(*ast.CallExpr); ok {
					if ds, ok := parents[d].(*ast.DeferStmt); ok && releasesObj(pass.Info, ds.Call.Fun, tr.obj) {
						return false
					}
				}
				escapePos, found = lit.Pos(), true
			}
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || !(pass.Info.Uses[id] == tr.obj) {
			return true
		}
		if pos, esc := classifyUse(pass, parents, id, tr); esc {
			escapePos, found = pos, true
		}
		return true
	})
	return escapePos, found
}

// classifyUse decides whether one identifier use escapes.
func classifyUse(pass *Pass, parents map[ast.Node]ast.Node, id *ast.Ident, tr *tracked) (token.Pos, bool) {
	parent := parents[id]
	for {
		if p, ok := parent.(*ast.ParenExpr); ok {
			parent = parents[p]
			continue
		}
		break
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.BinaryExpr,
		*ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
		*ast.ExprStmt, *ast.IncDecStmt, *ast.StarExpr:
		return 0, false
	case *ast.RangeStmt:
		return 0, false // ranging over the value reads it
	case *ast.CallExpr:
		// Argument (or callee) position. Its own release and builtins
		// that only read are fine; any other callee takes ownership.
		if releasesObj(pass.Info, p, tr.obj) {
			return 0, false
		}
		if id2, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
			if b, ok := pass.Info.Uses[id2].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "clear", "copy", "min", "max", "print", "println":
					return 0, false
				}
			}
			if tv, ok := pass.Info.Types[p.Fun]; ok && tv.IsType() {
				return 0, false // conversion keeps the same backing store... but flags nothing new
			}
		}
		if p.Fun == ast.Expr(id) {
			return 0, false // calling the value (not possible for slabs/results)
		}
		return id.Pos(), true
	case *ast.ReturnStmt:
		return id.Pos(), true
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt:
		return id.Pos(), true
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return id.Pos(), true
		}
		return 0, false
	case *ast.AssignStmt:
		// LHS use (write) is fine. RHS: fine only when assigned back to
		// the tracked variable itself (v = v[:0] style re-slicing).
		for i, r := range p.Rhs {
			if containsNode(r, id) {
				if i < len(p.Lhs) && isObjIdent(pass.Info, p.Lhs[i], tr.obj) {
					return 0, false
				}
				if len(p.Lhs) == 1 && isObjIdent(pass.Info, p.Lhs[0], tr.obj) {
					return 0, false
				}
				return id.Pos(), true
			}
		}
		return 0, false
	case *ast.ValueSpec:
		for _, v := range p.Values {
			if containsNode(v, id) {
				return id.Pos(), true
			}
		}
		return 0, false
	}
	return 0, false
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// ---- must-release path analysis ----

// state is the per-path dataflow fact: mayLeak is true when some path
// reaching this point holds the pooled value unreleased.
type state struct{ mayLeak bool }

func merge(a, b state) state { return state{mayLeak: a.mayLeak || b.mayLeak} }

type evaluator struct {
	pass  *Pass
	tr    *tracked
	leaks []token.Pos
}

func (e *evaluator) leak(pos token.Pos) { e.leaks = append(e.leaks, pos) }

// evalStmts walks a statement list, threading the leak state through
// every path. brk and cont collect the states of break/continue edges of
// the innermost enclosing loop or switch. It returns the fallthrough
// state and whether every path terminated (returned, exited, panicked).
func (e *evaluator) evalStmts(stmts []ast.Stmt, st state, brk, cont *[]state) (state, bool) {
	for _, s := range stmts {
		var terminated bool
		st, terminated = e.evalStmt(s, st, brk, cont)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (e *evaluator) evalStmt(s ast.Stmt, st state, brk, cont *[]state) (state, bool) {
	info := e.pass.Info
	switch s := s.(type) {
	case *ast.ExprStmt:
		if releasesObj(info, s, e.tr.obj) {
			return state{}, false
		}
		if isNoReturnCall(info, s.X) {
			return st, true
		}
		return st, false
	case *ast.DeferStmt:
		// A deferred release covers every later exit of the function.
		if releasesObj(info, s.Call, e.tr.obj) || releasesObj(info, s.Call.Fun, e.tr.obj) {
			return state{}, false
		}
		return st, false
	case *ast.ReturnStmt:
		if st.mayLeak {
			e.leak(s.Pos())
		}
		return st, true
	case *ast.AssignStmt:
		if ast.Stmt(s) == e.tr.acq {
			return state{mayLeak: true}, false
		}
		if releasesObj(info, s, e.tr.obj) {
			return state{}, false
		}
		// Overwriting the variable with an unrelated value ends tracking
		// (re-slicing v = v[:n] keeps it).
		for i, l := range s.Lhs {
			if isObjIdent(info, l, e.tr.obj) {
				if i < len(s.Rhs) && usesObject(info, s.Rhs[i], e.tr.obj) {
					continue
				}
				if len(s.Rhs) == 1 && usesObject(info, s.Rhs[0], e.tr.obj) {
					continue
				}
				return state{}, false
			}
		}
		return st, false
	case *ast.DeclStmt:
		if ast.Stmt(s) == e.tr.acq {
			return state{mayLeak: true}, false
		}
		return st, false
	case *ast.BlockStmt:
		return e.evalStmts(s.List, st, brk, cont)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = e.evalStmt(s.Init, st, brk, cont)
		}
		thenSt, elseSt := st, st
		// `res, err := Decode(...)` binds err alongside the result: on
		// the err != nil branch the result is nil, nothing to release.
		if e.tr.errObj != nil {
			if condObjCmpNil(info, s.Cond, e.tr.errObj, token.NEQ) {
				thenSt = state{}
			}
			if condObjCmpNil(info, s.Cond, e.tr.errObj, token.EQL) {
				elseSt = state{}
			}
		}
		tOut, tTerm := e.evalStmt(s.Body, thenSt, brk, cont)
		eOut, eTerm := elseSt, false
		if s.Else != nil {
			eOut, eTerm = e.evalStmt(s.Else, elseSt, brk, cont)
		}
		switch {
		case tTerm && eTerm:
			return st, true
		case tTerm:
			return eOut, false
		case eTerm:
			return tOut, false
		default:
			return merge(tOut, eOut), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = e.evalStmt(s.Init, st, brk, cont)
		}
		var myBrk, myCont []state
		bodyOut, _ := e.evalStmts(s.Body.List, st, &myBrk, &myCont)
		out := merge(st, bodyOut)
		for _, b := range myBrk {
			out = merge(out, b)
		}
		for _, c := range myCont {
			out = merge(out, c)
		}
		return out, false
	case *ast.RangeStmt:
		var myBrk, myCont []state
		bodyOut, _ := e.evalStmts(s.Body.List, st, &myBrk, &myCont)
		out := merge(st, bodyOut)
		for _, b := range myBrk {
			out = merge(out, b)
		}
		for _, c := range myCont {
			out = merge(out, c)
		}
		return out, false
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if brk != nil {
				*brk = append(*brk, st)
			}
		case token.CONTINUE:
			if cont != nil {
				*cont = append(*cont, st)
			}
		}
		return st, true
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var bodyList []ast.Stmt
		var initStmt ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			bodyList, initStmt = sw.Body.List, sw.Init
		case *ast.TypeSwitchStmt:
			bodyList, initStmt = sw.Body.List, sw.Init
		}
		if initStmt != nil {
			st, _ = e.evalStmt(initStmt, st, brk, cont)
		}
		// break inside a case exits the switch, so collect into the
		// switch's own outs; continue still belongs to the loop.
		var outs []state
		var myBrk []state
		hasDefault := false
		for _, c := range bodyList {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			cOut, cTerm := e.evalStmts(cc.Body, st, &myBrk, cont)
			if !cTerm {
				outs = append(outs, cOut)
			}
		}
		outs = append(outs, myBrk...)
		if !hasDefault {
			outs = append(outs, st)
		}
		if len(outs) == 0 {
			return st, true
		}
		out := outs[0]
		for _, o := range outs[1:] {
			out = merge(out, o)
		}
		return out, false
	case *ast.SelectStmt:
		var outs []state
		var myBrk []state
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			cOut, cTerm := e.evalStmts(cc.Body, st, &myBrk, cont)
			if !cTerm {
				outs = append(outs, cOut)
			}
		}
		outs = append(outs, myBrk...)
		if len(outs) == 0 {
			return st, true
		}
		out := outs[0]
		for _, o := range outs[1:] {
			out = merge(out, o)
		}
		return out, false
	case *ast.LabeledStmt:
		return e.evalStmt(s.Stmt, st, brk, cont)
	case *ast.GoStmt:
		return st, false
	default:
		return st, false
	}
}

// condObjCmpNil matches `obj <op> nil` and `nil <op> obj`.
func condObjCmpNil(info *types.Info, cond ast.Expr, obj types.Object, op token.Token) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return false
	}
	return (isObjIdent(info, b.X, obj) && isNilExpr(info, b.Y)) ||
		(isObjIdent(info, b.Y, obj) && isNilExpr(info, b.X))
}

// checkUseAfterRelease flags uses of a slab after a non-deferred Put in
// the same statement list — the "no use of a slice after it is Put"
// rule. The same-block restriction keeps branch-local releases (release
// in one arm, use in the other) from false-positive matching.
func checkUseAfterRelease(pass *Pass, body *ast.BlockStmt, tr *tracked) {
	inspectShallow(body, func(n ast.Node) {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return
		}
		released := false
		for _, s := range block.List {
			if released {
				if id := firstUse(pass, s, tr.obj); id != nil {
					pass.Reportf(id.Pos(), "%s %s is used after it was released back to the pool", tr.what, tr.obj.Name())
					released = false // one report per release site
					continue
				}
			}
			switch {
			case isReleaseStmt(pass, s, tr.obj):
				released = true
			case reassigns(pass, s, tr.obj):
				released = false
			}
		}
	})
}

// isReleaseStmt matches a direct (non-deferred) top-level release.
func isReleaseStmt(pass *Pass, s ast.Stmt, obj types.Object) bool {
	es, ok := s.(*ast.ExprStmt)
	return ok && releasesObj(pass.Info, es, obj)
}

func reassigns(pass *Pass, s ast.Stmt, obj types.Object) bool {
	as, ok := s.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, l := range as.Lhs {
		if isObjIdent(pass.Info, l, obj) {
			return true
		}
	}
	return false
}

func firstUse(pass *Pass, s ast.Stmt, obj types.Object) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(s, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = id
			return false
		}
		return true
	})
	return found
}

// checkBatchRangeLoops enforces Release coverage for batch results in
// binaries: a range body that reads ImageResult.Res must Release it (or
// carry //hetlint:transfer when the results outlive the loop).
func checkBatchRangeLoops(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		id, ok := rng.Value.(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil || !isImageResult(obj.Type()) {
			return true
		}
		readsRes, releases := false, false
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Res" && isObjIdent(pass.Info, sel.X, obj) {
				readsRes = true
			}
			if sel.Sel.Name == "Release" {
				if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok &&
					inner.Sel.Name == "Res" && isObjIdent(pass.Info, inner.X, obj) {
					releases = true
				}
			}
			return true
		})
		if readsRes && !releases && !pass.Annotated(rng, "transfer") {
			pass.Reportf(rng.Pos(), "batch loop reads %s.Res but never calls %s.Res.Release(); release each image or annotate the handoff with //hetlint:transfer", id.Name, id.Name)
		}
		return true
	})
}
