package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseBCE(t *testing.T) {
	output := `# hetjpeg/internal/dct
internal/dct/aan.go:34:17: Found IsSliceInBounds
internal/dct/aan.go:51:9: Found IsInBounds
internal/dct/aan.go:52:9: some unrelated diagnostic
not a diagnostic line
internal/bitstream/bitstream.go:88:3: Found IsInBounds
`
	got := ParseBCE(output)
	want := []AuditLine{
		{File: "internal/dct/aan.go", Line: 34, Col: 17, Kind: "IsSliceInBounds"},
		{File: "internal/dct/aan.go", Line: 51, Col: 9, Kind: "IsInBounds"},
		{File: "internal/bitstream/bitstream.go", Line: 88, Col: 3, Kind: "IsInBounds"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseBCE:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseEscape(t *testing.T) {
	output := `internal/huffman/huffman.go:10:6: can inline New
internal/huffman/huffman.go:22:14: inlining call to makeNode
internal/huffman/huffman.go:30:7: h does not escape
internal/huffman/huffman.go:41:2: moved to heap: scratch
internal/huffman/huffman.go:55:9: &Node{...} escapes to heap
`
	got := ParseEscape(output)
	want := []AuditLine{
		{File: "internal/huffman/huffman.go", Line: 41, Col: 2, Kind: "moved-to-heap"},
		{File: "internal/huffman/huffman.go", Line: 55, Col: 9, Kind: "escapes-to-heap"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseEscape:\n got %+v\nwant %+v", got, want)
	}
}

func TestSummarizeAttributesFunctions(t *testing.T) {
	root := t.TempDir()
	src := `package p

var global = make([]int, 4)

func Alpha(s []int) int {
	return s[3]
}

type T struct{ buf []byte }

func (t *T) Beta(i int) byte {
	return t.buf[i]
}
`
	if err := os.MkdirAll(filepath.Join(root, "pkg"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "pkg", "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	counts, err := Summarize(root, []AuditLine{
		{File: "pkg/p.go", Line: 6, Kind: "IsInBounds"},      // inside Alpha
		{File: "pkg/p.go", Line: 6, Kind: "IsInBounds"},      // again: counts aggregate
		{File: "pkg/p.go", Line: 12, Kind: "IsInBounds"},     // inside (*T).Beta
		{File: "pkg/p.go", Line: 3, Kind: "escapes-to-heap"}, // package-level var
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[AuditKey]int{
		{File: "pkg/p.go", Func: "Alpha", Kind: "IsInBounds"}:       2,
		{File: "pkg/p.go", Func: "T.Beta", Kind: "IsInBounds"}:      1,
		{File: "pkg/p.go", Func: "<file>", Kind: "escapes-to-heap"}: 1,
	}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("Summarize:\n got %+v\nwant %+v", counts, want)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	counts := map[AuditKey]int{
		{File: "a/b.go", Func: "F", Kind: "IsInBounds"}:      3,
		{File: "a/b.go", Func: "T.M", Kind: "moved-to-heap"}: 1,
		{File: "z/y.go", Func: "<file>", Kind: "IsInBounds"}: 2,
	}
	text := FormatBaseline("test baseline", counts)
	if !strings.HasPrefix(text, "# test baseline\n") {
		t.Errorf("missing header:\n%s", text)
	}
	back, err := ParseBaseline(text)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, counts) {
		t.Errorf("round trip:\n got %+v\nwant %+v", back, counts)
	}
}

func TestParseBaselineRejectsMalformed(t *testing.T) {
	if _, err := ParseBaseline("a b c\n"); err == nil {
		t.Error("want error for 3-field line")
	}
	if _, err := ParseBaseline("a b c notanumber\n"); err == nil {
		t.Error("want error for non-numeric count")
	}
}

func TestDiffBaseline(t *testing.T) {
	baseline := map[AuditKey]int{
		{File: "a.go", Func: "F", Kind: "IsInBounds"}:    2,
		{File: "a.go", Func: "G", Kind: "IsInBounds"}:    1,
		{File: "b.go", Func: "H", Kind: "moved-to-heap"}: 1,
	}
	current := map[AuditKey]int{
		{File: "a.go", Func: "F", Kind: "IsInBounds"}: 3, // regression: count grew
		{File: "a.go", Func: "G", Kind: "IsInBounds"}: 1, // unchanged
		// b.go H disappeared: improvement
		{File: "c.go", Func: "N", Kind: "IsSliceInBounds"}: 1, // regression: new site
	}
	regressions, improvements := DiffBaseline(baseline, current)
	if len(regressions) != 2 {
		t.Errorf("want 2 regressions, got %v", regressions)
	}
	if len(improvements) != 1 {
		t.Errorf("want 1 improvement, got %v", improvements)
	}
	for _, r := range regressions {
		if !strings.Contains(r, "->") {
			t.Errorf("regression line missing transition: %q", r)
		}
	}
}
