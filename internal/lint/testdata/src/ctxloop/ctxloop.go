// Fixture for ctxloopcheck: a context-accepting function that loops
// over data-sized work must observe ctx inside the loop. The ok*
// functions are the false-positive guards: polling, passing ctx on,
// constant trip counts, call-free bodies and the //hetlint:nopoll
// annotation.
package ctxloop

import "context"

func work(p []byte) {}

func workCtx(ctx context.Context, p []byte) {}

// drainNoPoll loops over rows without ever consulting ctx.
func drainNoPoll(ctx context.Context, rows [][]byte) {
	for _, r := range rows { // want "neither polls ctx nor passes it to a callee"
		work(r)
	}
}

// countNoPoll is the three-clause variant with a data-sized bound.
func countNoPoll(ctx context.Context, rows [][]byte) {
	for i := 0; i < len(rows); i++ { // want "neither polls ctx nor passes it to a callee"
		work(rows[i])
	}
}

// okPolls checks ctx.Err each iteration — the EntropyDecode contract.
func okPolls(ctx context.Context, rows [][]byte) error {
	for _, r := range rows {
		if err := ctx.Err(); err != nil {
			return err
		}
		work(r)
	}
	return nil
}

// okPasses hands ctx to the callee, which owns the polling.
func okPasses(ctx context.Context, rows [][]byte) {
	for _, r := range rows {
		workCtx(ctx, r)
	}
}

// okConstBound runs a compile-time-constant trip count: not data-sized.
func okConstBound(ctx context.Context, rows [][]byte) {
	for i := 0; i < 8; i++ {
		work(rows[0])
	}
}

// okNoCalls is pure arithmetic: bounded work per element, nothing to
// cancel mid-flight.
func okNoCalls(ctx context.Context, bits []int) int {
	total := 0
	for _, b := range bits {
		total += b
	}
	return total
}

// okAnnotated documents a deliberate non-polling loop.
func okAnnotated(ctx context.Context, rows [][]byte) {
	//hetlint:nopoll bounded by the scan count, microseconds total
	for _, r := range rows {
		work(r)
	}
}

// nestedLit: a closure inherits the enclosing function's ctx
// obligation — goroutine bodies are where these loops usually hide.
func nestedLit(ctx context.Context, rows [][]byte) {
	fn := func() {
		for _, r := range rows { // want "neither polls ctx nor passes it to a callee"
			work(r)
		}
	}
	fn()
}
