// Fixture for errwrapcheck: error values folded into fmt.Errorf must
// use %w so errors.Is survives the wrap; %v/%s/%q re-stringify, and so
// does interpolating err.Error(). The ok* functions guard %w, %T, the
// * width operand and the literal %% escape.
package errwrap

import (
	"errors"
	"fmt"

	"hetjpeg"
)

var errLocal = errors.New("local")

// restringify loses the wrapped error's identity.
func restringify(err error) error {
	return fmt.Errorf("decode failed: %v", err) // want "error err formatted with %v; wrap it with %w"
}

// restringifySentinel loses the typed sentinel the layers above match
// with errors.Is — the exact bug class this analyzer exists for.
func restringifySentinel() error {
	return fmt.Errorf("scan rejected: %s", hetjpeg.ErrUnsupported) // want "error sentinel ErrUnsupported formatted with %s"
}

// stringifyMethod is the same re-stringification with extra steps.
func stringifyMethod(err error) error {
	return fmt.Errorf("decode failed: %s", err.Error()) // want "interpolated into fmt.Errorf re-stringifies"
}

// okWrap is the contract being enforced.
func okWrap(err error) error {
	return fmt.Errorf("decode failed: %w", err)
}

// okType prints only the dynamic type, which does not pretend to keep
// the error chain.
func okType(err error) error {
	return fmt.Errorf("unexpected error type %T: %w", err, errLocal)
}

// okStarWidth exercises the * width operand: the error is still
// consumed by the %w verb, two operands later.
func okStarWidth(width, n int, err error) error {
	return fmt.Errorf("row %*d: %w", width, n, err)
}

// okPercentEscape exercises the literal %% escape before the verb.
func okPercentEscape(err error) error {
	return fmt.Errorf("100%% huffman: %w", err)
}

// okIndexedBails uses explicit argument indexes, which the checker
// deliberately does not model — it must stay silent, not guess.
func okIndexedBails(err error) error {
	return fmt.Errorf("twice: %[1]v %[1]v", err)
}

// okNonError formats a plain value with %v.
func okNonError(n int) error {
	return fmt.Errorf("bad scale %v", n)
}

// restringifyPartial loses ErrPartialData, the salvage-path sentinel
// that must ride alongside a usable result through every layer.
func restringifyPartial() error {
	return fmt.Errorf("image %d: %v", 3, hetjpeg.ErrPartialData) // want "error sentinel ErrPartialData formatted with %v"
}

// okWrapPartial is the salvage-path contract: the batch layer wraps the
// partial-data error without breaking errors.Is above it.
func okWrapPartial() error {
	return fmt.Errorf("image %d: %w", 3, hetjpeg.ErrPartialData)
}
