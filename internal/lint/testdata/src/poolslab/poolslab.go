// Fixture for poolcheck's slab discipline: Get/Put pairing on all
// paths, the //hetlint:transfer handoff annotation, escape detection
// and use-after-Put. The ok* functions are the false-positive guards.
package poolslab

import "hetjpeg/internal/pool"

var slabs pool.Slab[byte]

var sink []byte

func store(b []byte) { sink = b }

// leakPlain drops the slab on the floor.
func leakPlain(n int) int {
	s := slabs.Get(n) // want "slab s is not released on every path"
	return len(s)
}

// leakOneBranch puts the slab back on the success path only.
func leakOneBranch(n int, fail bool) int {
	s := slabs.Get(n) // want "slab s is not released on every path"
	if fail {
		return 0
	}
	v := int(s[0])
	slabs.Put(s)
	return v
}

// okDefer releases via defer — the common shape must stay clean.
func okDefer(n int) byte {
	s := slabs.Get(n)
	defer slabs.Put(s)
	s[0] = 1
	return s[0]
}

// okAllPaths releases explicitly on both arms.
func okAllPaths(n int, fail bool) int {
	s := slabs.Get(n)
	if fail {
		slabs.Put(s)
		return 0
	}
	v := int(s[0])
	slabs.Put(s)
	return v
}

// okTransfer hands a fresh slab to the caller; the annotation
// documents the ownership move.
func okTransfer(n int) []byte {
	//hetlint:transfer the caller puts it back
	return slabs.Get(n)
}

// escapeReturn returns a bound slab without documenting the handoff.
func escapeReturn(n int) []byte {
	s := slabs.Get(n)
	s[0] = 1
	return s // want "slab s escapes this function without a //hetlint:transfer annotation"
}

// okBoundTransfer annotates the acquisition of a slab that escapes.
func okBoundTransfer(n int) []byte {
	s := slabs.Get(n) //hetlint:transfer stored in the frame; Frame.Release puts it back
	s[0] = 1
	return s
}

// useAfterPut reads the slice after it went back to the pool.
func useAfterPut(n int) byte {
	s := slabs.Get(n)
	b := s[0]
	slabs.Put(s)
	b += s[0] // want "slab s is used after it was released back to the pool"
	return b
}

// handoffDirect passes an unbound Get straight to a callee.
func handoffDirect(n int) {
	store(slabs.Get(n)) // want "result of pool Get is handed off directly"
}

// okHandoffAnnotated is the same shape with the handoff documented.
func okHandoffAnnotated(n int) {
	store(slabs.Get(n)) //hetlint:transfer the sink owns it
}
