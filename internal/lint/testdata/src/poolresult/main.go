// Fixture for poolcheck's binary-side rules: a *hetjpeg.Result decoded
// in package main must be Released on every path, and a batch loop
// that reads ImageResult.Res must release each image. The ok*
// functions guard the legitimate shapes (defer, explicit release,
// error-only early return — the result is nil on the error path).
package main

import (
	"fmt"

	"hetjpeg"
)

// leakResult reads the result and returns without releasing it.
func leakResult(data []byte, opts hetjpeg.Options) error {
	res, err := hetjpeg.Decode(data, opts) // want "decode result res is not released on every path"
	if err != nil {
		return err
	}
	fmt.Println(res.TotalNs)
	return nil
}

// okDeferred releases via defer after the error check.
func okDeferred(data []byte, opts hetjpeg.Options) error {
	res, err := hetjpeg.Decode(data, opts)
	if err != nil {
		return err
	}
	defer res.Release()
	fmt.Println(res.Image.W)
	return nil
}

// okExplicit releases once the virtual time is read; the early return
// on the error path carries no live result.
func okExplicit(data []byte, opts hetjpeg.Options) (float64, error) {
	res, err := hetjpeg.Decode(data, opts)
	if err != nil {
		return 0, err
	}
	ns := res.TotalNs
	res.Release()
	return ns, nil
}

// leakBatchLoop reads each image's result and never releases it.
func leakBatchLoop(datas [][]byte, opts hetjpeg.BatchOptions) {
	res, err := hetjpeg.DecodeBatch(datas, opts)
	if err != nil {
		return
	}
	for _, ir := range res.Images { // want "batch loop reads ir.Res but never calls ir.Res.Release"
		if ir.Err != nil {
			continue
		}
		fmt.Println(ir.Res.TotalNs)
	}
}

// okBatchLoop releases every successful image.
func okBatchLoop(datas [][]byte, opts hetjpeg.BatchOptions) {
	res, err := hetjpeg.DecodeBatch(datas, opts)
	if err != nil {
		return
	}
	for _, ir := range res.Images {
		if ir.Err != nil {
			continue
		}
		fmt.Println(ir.Res.TotalNs)
		ir.Res.Release()
	}
}

// okBatchTransfer keeps the results alive past the loop and documents
// the handoff on the loop itself.
func okBatchTransfer(datas [][]byte, opts hetjpeg.BatchOptions) []*hetjpeg.Result {
	res, err := hetjpeg.DecodeBatch(datas, opts)
	if err != nil {
		return nil
	}
	var keep []*hetjpeg.Result
	//hetlint:transfer the gallery cache owns the results now
	for _, ir := range res.Images {
		if ir.Err == nil {
			keep = append(keep, ir.Res)
		}
	}
	return keep
}

func main() {}
