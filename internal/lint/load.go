package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// exportLookup resolves import paths to compiler export data recorded by
// `go list -export`. It implements the lookup contract of
// importer.ForCompiler's "gc" importer.
type exportLookup struct {
	exports map[string]string // import path -> export file
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok || file == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// goList runs `go list -export -deps -json` over patterns in dir and
// returns the decoded package stream.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %w", patterns, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// LoadPackages loads the packages matching patterns (resolved by the go
// tool relative to dir; "" means the current directory), parses their
// sources with comments and type-checks them against the compiler's
// export data for every dependency. Dependency-only packages are loaded
// for their types but not returned for analysis.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", (&exportLookup{exports: exports}).lookup)

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typecheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles, p.ImportMap)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// importMapper applies go list's ImportMap (vendoring renames) in front
// of the export-data importer.
type importMapper struct {
	imp types.Importer
	m   map[string]string
}

func (im *importMapper) Import(path string) (*types.Package, error) {
	if mapped, ok := im.m[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return im.imp.Import(path)
}

// typecheck parses and type-checks one package from source.
func typecheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string, importMap map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &importMapper{imp: imp, m: importMap},
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// TypecheckFiles type-checks an in-memory set of already-parsed files as
// one package, resolving imports through export data listed from dir.
// The linttest fixture harness uses it to check testdata packages that
// `go list` cannot see.
func TypecheckFiles(dir, pkgPath string, fset *token.FileSet, files []*ast.File) (*Package, error) {
	// Collect the fixture's imports and ask the go tool for their export
	// data (plus transitive deps, via -deps).
	seen := map[string]bool{}
	var patterns []string
	for _, f := range files {
		for _, spec := range f.Imports {
			path := spec.Path.Value
			path = path[1 : len(path)-1] // unquote
			if path == "unsafe" || seen[path] {
				continue
			}
			seen[path] = true
			patterns = append(patterns, path)
		}
	}
	exports := make(map[string]string)
	if len(patterns) > 0 {
		listed, err := goList(dir, patterns...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", (&exportLookup{exports: exports}).lookup)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: &importMapper{imp: imp}}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
