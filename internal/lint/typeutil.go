package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// namedWithSuffix reports whether t (after stripping pointers and type
// arguments) is the named type pkgSuffix.name — e.g.
// ("internal/pool", "Slab") matches hetjpeg/internal/pool.Slab[T].
// Matching on a path suffix keeps the analyzers working when the module
// is analyzed under a different module path (the linttest fixtures).
func namedWithSuffix(t types.Type, pkgSuffix, name string) bool {
	for {
		t = types.Unalias(t) // hetjpeg.Result = core.Result materializes as an alias
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}

func isSlabType(t types.Type) bool { return namedWithSuffix(t, "internal/pool", "Slab") }

// isResultPtr reports whether t is *core.Result (re-exported as
// hetjpeg.Result), the pooled decode result whose Release hands the
// pixel and coefficient slabs back.
func isResultPtr(t types.Type) bool {
	if _, ok := types.Unalias(t).(*types.Pointer); !ok {
		return false
	}
	return namedWithSuffix(t, "internal/core", "Result")
}

// isImageResult reports whether t is batch.ImageResult, one image of a
// batch whose Res field is a pooled *core.Result.
func isImageResult(t types.Type) bool {
	return namedWithSuffix(t, "internal/batch", "ImageResult")
}

func isContextType(t types.Type) bool { return namedWithSuffix(t, "context", "Context") }

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// methodCall returns the method selection of call when call is
// `recv.name(...)` and recvPred accepts the receiver type, else nil.
func methodCall(info *types.Info, call *ast.CallExpr, name string, recvPred func(types.Type) bool) *types.Selection {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal || s.Obj().Name() != name {
		return nil
	}
	if !recvPred(s.Recv()) {
		return nil
	}
	return s
}

// calleeName returns "pkg.Func" for a package-level call, "T.Method" for
// a method call, or "".
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			if obj.Pkg() != nil {
				return obj.Pkg().Name() + "." + obj.Name()
			}
			return obj.Name()
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				t := sig.Recv().Type()
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if n, ok := t.(*types.Named); ok {
					return n.Obj().Name() + "." + obj.Name()
				}
				return obj.Name()
			}
			if obj.Pkg() != nil {
				return obj.Pkg().Name() + "." + obj.Name()
			}
		}
	}
	return ""
}

// noReturnCalls never return control to the caller: a leak "after" one
// is unreachable, so path analysis treats them as clean exits.
var noReturnCalls = map[string]bool{
	"os.Exit":         true,
	"log.Fatal":       true,
	"log.Fatalf":      true,
	"log.Fatalln":     true,
	"log.Panic":       true,
	"log.Panicf":      true,
	"log.Panicln":     true,
	"Logger.Fatal":    true,
	"Logger.Fatalf":   true,
	"Logger.Fatalln":  true,
	"Logger.Panic":    true,
	"Logger.Panicf":   true,
	"Logger.Panicln":  true,
	"runtime.Goexit":  true,
	"testing.T.Fatal": true,
}

func isNoReturnCall(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, ok := info.Uses[id].(*types.Builtin); ok && obj.Name() == "panic" {
			return true
		}
	}
	return noReturnCalls[calleeName(info, call)]
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// usesObject reports whether any identifier in the subtree rooted at n
// resolves to obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// funcBodies visits every function body in the file exactly once:
// FuncDecl bodies and FuncLit bodies each count as one function scope.
func funcBodies(f *ast.File, visit func(fn ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n, n.Body)
			}
		case *ast.FuncLit:
			visit(n, n.Body)
		}
		return true
	})
}
