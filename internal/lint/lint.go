// Package lint is hetjpeg's project-specific static-analysis suite: the
// analyzers behind `make lint` that guard the invariants the compiler
// cannot see and the benchmarks only catch after a bisect.
//
//   - poolcheck: every pool.Slab.Get is paired with a Put on all return
//     paths of the same function or explicitly handed off with a
//     `//hetlint:transfer` annotation; decode Results obtained in cmd/
//     and examples/ mains are Released on every path; no slab is used
//     after it was Put.
//   - errwrapcheck: errors crossing package boundaries wrap the typed
//     sentinels (ErrUnsupported, ErrUnsupportedScale) with %w — never a
//     re-stringifying %v/%s or err.Error() — so errors.Is keeps working
//     through the batch and webserver layers.
//   - ctxloopcheck: a function that accepts a context.Context and loops
//     over data-sized work (MCU rows, bands, scans, images) must poll
//     ctx inside the loop or pass it to a callee, the cancellation
//     contract Prepared.EntropyDecode established.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is built on the standard library only — the build
// environment is offline, so x/tools cannot be vendored. Swapping the
// analyzers onto the real analysis.Analyzer API later is mechanical: the
// Run functions only consume Fset/Files/Pkg/Info and call Reportf.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check, shaped like analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer, shaped
// like analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
	// annotations maps "filename:line" to the set of //hetlint:<tag>
	// annotation tags written on that line.
	annotations map[string]map[string]bool
}

// NewPass builds a Pass over a type-checked package. report receives
// every diagnostic the analyzer emits.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	p := &Pass{
		Analyzer:    a,
		Fset:        fset,
		Files:       files,
		Pkg:         pkg,
		Info:        info,
		report:      report,
		annotations: make(map[string]map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "hetlint:") {
					continue
				}
				tag := strings.Fields(strings.TrimPrefix(text, "hetlint:"))
				if len(tag) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if p.annotations[key] == nil {
					p.annotations[key] = make(map[string]bool)
				}
				p.annotations[key][tag[0]] = true
			}
		}
	}
	return p
}

// Reportf emits a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Annotated reports whether a `//hetlint:<tag>` annotation is written on
// the node's line or the line directly above it — the two places a
// documented handoff annotation may sit:
//
//	buf := slabs.Get(n) //hetlint:transfer owner is the ring buffer
//
//	//hetlint:transfer the caller releases via Result.Release
//	return slabs.Get(n)
func (p *Pass) Annotated(n ast.Node, tag string) bool {
	pos := p.Fset.Position(n.Pos())
	for _, line := range []int{pos.Line, pos.Line - 1} {
		key := fmt.Sprintf("%s:%d", pos.Filename, line)
		if p.annotations[key][tag] {
			return true
		}
	}
	return false
}

// Analyzers returns the suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{PoolCheck, ErrWrapCheck, CtxLoopCheck}
}

// RunAnalyzers runs every analyzer over a loaded package and returns the
// findings sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, func(d Diagnostic) {
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Pos.Column < diags[j].Pos.Column
	})
	return diags, nil
}
