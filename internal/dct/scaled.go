package dct

// Scaled inverse transforms for decode-to-scale: an 8x8 coefficient
// block is reconstructed directly at 4x4 (scale 1/2), 2x2 (1/4) or 1x1
// (1/8) resolution by applying the true N-point inverse DCT to the
// top-left NxN coefficient corner (the higher frequencies cannot be
// represented at the reduced resolution and are discarded). Every
// routine fuses dequantization and writes level-shifted, clamped bytes
// straight into the destination plane, mirroring the full-size fast
// paths in sparse.go.
//
// The normalization keeps the DC interpretation of the full transform:
// the 1x1 and 2x2 kernels reconstruct a DC-only block to exactly
// descale(dc, 3) + 128 — the 1x1 kernel IS the per-block DC mean
// (property-tested) — and the 4x4 kernel matches it to within its
// fixed-point rounding. InverseScaledRef in reference.go is the float
// oracle the integer kernels are property-tested against (within +-1 of
// rounding); all execution paths (CPU bands, simulated GPU kernels)
// call these same routines, so scaled output stays byte-identical
// across every decoder mode.

// Fixed-point constants for the 4-point pass, scaled by 2^constBits.
//
//	c4 = cos(pi/4)  = 1/sqrt2 (also the C(0) normalization)
//	c1 = cos(pi/8), c3 = cos(3pi/8)
const (
	fixS0_707107 = 5793 // 0.707107 * 2^13
	fixS0_923880 = 7568 // 0.923880 * 2^13
	fixS0_382683 = 3135 // 0.382683 * 2^13
)

// Shifts for the two 4-point passes. Each 1-D pass carries a factor of
// 1/2 beyond the 2^constBits constant scaling; the column pass keeps
// pass1Bits of headroom exactly like the full-size transform.
const (
	scaledPass1Shift = constBits - pass1Bits + 1 // column pass: 2^pass1Bits * (1/2) * value
	scaledFinalShift = constBits + pass1Bits + 1 // row pass: back to samples
)

func descale64(x int64, n uint) int32 {
	return int32((x + (1 << (n - 1))) >> n)
}

// InverseIntScaled1x1Bytes reconstructs a block at 1/8 scale: the single
// output sample is the block's DC mean. dc is the dequantized DC
// coefficient; dst[0] receives the sample.
func InverseIntScaled1x1Bytes(dc int32, dst []byte) {
	dst[0] = byte(clampSample(descale(dc, 3) + 128))
}

// InverseIntScaled2x2DequantBytes reconstructs a block at 1/4 scale from
// the dequantized top-left 2x2 coefficients. The 2-point basis is exact
// in integer arithmetic: out[y][x] = (F00 +-F01 +-F10 +-F11)/8.
func InverseIntScaled2x2DequantBytes(blk []int32, q *[BlockSize]int32, dst []byte, stride int) {
	f00 := blk[0] * q[0]
	f01 := blk[1] * q[1]
	f10 := blk[8] * q[8]
	f11 := blk[9] * q[9]
	s0 := f00 + f10 // row sums of the vertical 2-point pass
	s1 := f00 - f10
	d0 := f01 + f11
	d1 := f01 - f11
	r0 := dst[:2:2]
	r1 := dst[stride : stride+2 : stride+2]
	r0[0] = byte(clampSample(descale(s0+d0, 3) + 128))
	r0[1] = byte(clampSample(descale(s0-d0, 3) + 128))
	r1[0] = byte(clampSample(descale(s1+d1, 3) + 128))
	r1[1] = byte(clampSample(descale(s1-d1, 3) + 128))
}

// scaled4Column runs the 4-point column pass for column c (0..3) over
// the dequantized coefficients f0..f3 (rows 0..3 of that column),
// writing the four intermediate values into ws[c], ws[c+4], ws[c+8],
// ws[c+12] at 2^pass1Bits scaling. Accumulation is int64: dequantized
// coefficients reach 2^19 and the 13-bit constants would overflow the
// int32 product for hostile streams.
func scaled4Column(f0, f1, f2, f3 int64, ws *[16]int32, c int) {
	ePlus := (f0 + f2) * fixS0_707107
	eMinus := (f0 - f2) * fixS0_707107
	o0 := f1*fixS0_923880 + f3*fixS0_382683
	o1 := f1*fixS0_382683 - f3*fixS0_923880
	ws[c] = descale64(ePlus+o0, scaledPass1Shift)
	ws[c+4] = descale64(eMinus+o1, scaledPass1Shift)
	ws[c+8] = descale64(eMinus-o1, scaledPass1Shift)
	ws[c+12] = descale64(ePlus-o0, scaledPass1Shift)
}

// InverseIntScaled4x4DequantBytes reconstructs a block at 1/2 scale from
// the dequantized top-left 4x4 coefficients: a 4-point column pass into
// a 16-entry workspace, then a 4-point row pass writing clamped bytes.
func InverseIntScaled4x4DequantBytes(blk []int32, q *[BlockSize]int32, dst []byte, stride int) {
	var ws [16]int32
	for c := 0; c < 4; c++ {
		f1 := blk[c+8] * q[c+8]
		f2 := blk[c+16] * q[c+16]
		f3 := blk[c+24] * q[c+24]
		f0 := blk[c] * q[c]
		if f1|f2|f3 == 0 {
			// All-AC-zero column shortcut: the butterflies collapse to the
			// same expression with zeros substituted, so output matches
			// the general path exactly.
			v := descale64(int64(f0)*fixS0_707107, scaledPass1Shift)
			ws[c] = v
			ws[c+4] = v
			ws[c+8] = v
			ws[c+12] = v
			continue
		}
		scaled4Column(int64(f0), int64(f1), int64(f2), int64(f3), &ws, c)
	}
	for r := 0; r < 4; r++ {
		w := ws[r*4 : r*4+4 : r*4+4]
		ePlus := int64(w[0]+w[2]) * fixS0_707107
		eMinus := int64(w[0]-w[2]) * fixS0_707107
		o0 := int64(w[1])*fixS0_923880 + int64(w[3])*fixS0_382683
		o1 := int64(w[1])*fixS0_382683 - int64(w[3])*fixS0_923880
		out := dst[r*stride : r*stride+4 : r*stride+4]
		out[0] = byte(clampSample(descale64(ePlus+o0, scaledFinalShift) + 128))
		out[1] = byte(clampSample(descale64(eMinus+o1, scaledFinalShift) + 128))
		out[2] = byte(clampSample(descale64(eMinus-o1, scaledFinalShift) + 128))
		out[3] = byte(clampSample(descale64(ePlus-o0, scaledFinalShift) + 128))
	}
}

// InverseIntScaledDCBytes reconstructs a DC-only block at blockPix 4, 2
// or 1: every scaled sample is flat, computed with exactly the
// arithmetic the general scaled kernel of that size produces when all
// AC terms are zero — the 4-point cascade rounds twice through the
// fixed-point constants, while the 2-point and 1-point forms are the
// exact DC mean — so the NZ-watermark dispatch can never change output
// bytes (property-tested).
func InverseIntScaledDCBytes(dc int32, blockPix int, dst []byte, stride int) {
	var v byte
	if blockPix == 4 {
		col := descale64(int64(dc)*fixS0_707107, scaledPass1Shift)
		v = byte(clampSample(descale64(int64(col)*fixS0_707107, scaledFinalShift) + 128))
	} else {
		v = byte(clampSample(descale(dc, 3) + 128))
	}
	for y := 0; y < blockPix; y++ {
		row := dst[y*stride : y*stride+blockPix : y*stride+blockPix]
		for x := range row {
			row[x] = v
		}
	}
}

// Approximate arithmetic operation counts of the scaled kernels per
// block (dequant + passes + stores); the device cost models scale the
// full-size kernel cost by these.
const (
	OpsPerBlockScaled4 = 4*10 + 4*10 + 16*2 // two 4-point passes + stores
	OpsPerBlockScaled2 = 4 + 8 + 4*2        // dequant + exact butterflies
	OpsPerBlockScaled1 = 4
)

// ScaledOpsPerBlock returns the approximate per-block cost of the
// scaled inverse transform for a given output block size (8 returns the
// full-size OpsPerBlockInt).
func ScaledOpsPerBlock(blockPix int) float64 {
	switch blockPix {
	case 4:
		return OpsPerBlockScaled4
	case 2:
		return OpsPerBlockScaled2
	case 1:
		return OpsPerBlockScaled1
	default:
		return OpsPerBlockInt
	}
}
