package dct

import (
	"math"
	"math/rand"
	"testing"
)

// scaledRefBytes runs dequant + InverseScaledRef + round/clamp — the
// float oracle pipeline for the integer scaled kernels.
func scaledRefBytes(blk []int32, q *[BlockSize]int32, n int, dst []byte, stride int) {
	var in [BlockSize]float64
	for i := 0; i < BlockSize; i++ {
		in[i] = float64(blk[i] * q[i])
	}
	out := make([]float64, n*n)
	InverseScaledRef(&in, n, out)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			v := math.Round(out[y*n+x])
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			dst[y*stride+x] = byte(v)
		}
	}
}

// scaledTolerance bounds the integer kernels' divergence from the float
// oracle: one gray level of final-descale rounding plus the 13-bit
// constant quantization of the 4-point passes (documented bound; the
// 2x2 and 1x1 kernels are exact up to rounding).
const scaledTolerance = 1

// realisticBlock draws quantized coefficients and quantizers in the
// range a standards-conforming encoder produces (dequantized values
// within ~2^13), the domain the fixed-point error bound holds over.
func realisticBlock(rng *rand.Rand) ([BlockSize]int32, [BlockSize]int32) {
	var blk, q [BlockSize]int32
	for i := range q {
		q[i] = int32(1 + rng.Intn(64))
	}
	nz := 1 + rng.Intn(BlockSize)
	for j := 0; j < nz; j++ {
		i := rng.Intn(BlockSize)
		blk[i] = int32(rng.Intn(2*1023+1) - 1023)
		if mag := blk[i] * q[i]; mag > 8191 || mag < -8191 {
			blk[i] = 8191 / q[i]
		}
	}
	return blk, q
}

func assertScaledClose(t *testing.T, trial, n int, got, want []byte, stride int) {
	t.Helper()
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			d := int(got[y*stride+x]) - int(want[y*stride+x])
			if d < 0 {
				d = -d
			}
			if d > scaledTolerance {
				t.Fatalf("trial %d %dx%d: sample (%d,%d) = %d, float reference %d (tolerance %d)",
					trial, n, n, y, x, got[y*stride+x], want[y*stride+x], scaledTolerance)
			}
		}
	}
}

func TestInverseIntScaled4x4MatchesFloatReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const stride = 11
	got := make([]byte, 4*stride)
	want := make([]byte, 4*stride)
	for trial := 0; trial < 2000; trial++ {
		blk, q := realisticBlock(rng)
		scaledRefBytes(blk[:], &q, 4, want, stride)
		InverseIntScaled4x4DequantBytes(blk[:], &q, got, stride)
		assertScaledClose(t, trial, 4, got, want, stride)
	}
}

func TestInverseIntScaled2x2MatchesFloatReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const stride = 9
	got := make([]byte, 2*stride)
	want := make([]byte, 2*stride)
	for trial := 0; trial < 2000; trial++ {
		blk, q := realisticBlock(rng)
		scaledRefBytes(blk[:], &q, 2, want, stride)
		InverseIntScaled2x2DequantBytes(blk[:], &q, got, stride)
		assertScaledClose(t, trial, 2, got, want, stride)
	}
}

// TestInverseIntScaled1x1IsDCMean asserts the 1/8-scale kernel computes
// exactly the per-block DC mean: round-half-up of the dequantized DC
// over 8, level-shifted and clamped.
func TestInverseIntScaled1x1IsDCMean(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	var dst [1]byte
	for trial := 0; trial < 5000; trial++ {
		dc := int32(rng.Intn(1<<20) - 1<<19)
		InverseIntScaled1x1Bytes(dc, dst[:])
		want := (dc + 4) >> 3
		want += 128
		if want < 0 {
			want = 0
		}
		if want > 255 {
			want = 255
		}
		if int32(dst[0]) != want {
			t.Fatalf("dc %d: got %d, want DC mean %d", dc, dst[0], want)
		}
	}
}

// TestScaledDCDispatchConsistent asserts the flat DC fast path produces
// exactly the bytes the general scaled kernel produces for a DC-only
// block at every block size — the NZ-watermark dispatch must never
// change output.
func TestScaledDCDispatchConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	const stride = 13
	got := make([]byte, 4*stride)
	want := make([]byte, 4*stride)
	for trial := 0; trial < 3000; trial++ {
		q := randQuant(rng)
		var blk [BlockSize]int32
		switch trial % 4 {
		case 0:
			blk[0] = int32(rng.Intn(2048)) - 1024
		case 1:
			blk[0] = 2047
		case 2:
			blk[0] = -2048
		default:
			blk[0] = int32(rng.Intn(64)) - 32
		}
		dc := blk[0] * q[0]

		InverseIntScaled4x4DequantBytes(blk[:], &q, want, stride)
		InverseIntScaledDCBytes(dc, 4, got, stride)
		assertScaledClose(t, trial, 4, got, want, stride)
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				if got[y*stride+x] != want[y*stride+x] {
					t.Fatalf("trial %d 4x4 DC dispatch: (%d,%d) %d != %d", trial, y, x, got[y*stride+x], want[y*stride+x])
				}
			}
		}

		InverseIntScaled2x2DequantBytes(blk[:], &q, want, stride)
		InverseIntScaledDCBytes(dc, 2, got, stride)
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				if got[y*stride+x] != want[y*stride+x] {
					t.Fatalf("trial %d 2x2 DC dispatch: (%d,%d) %d != %d", trial, y, x, got[y*stride+x], want[y*stride+x])
				}
			}
		}

		InverseIntScaled1x1Bytes(dc, want)
		InverseIntScaledDCBytes(dc, 1, got, stride)
		if got[0] != want[0] {
			t.Fatalf("trial %d 1x1 DC dispatch: %d != %d", trial, got[0], want[0])
		}
	}
}
