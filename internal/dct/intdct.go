// Package dct implements the 8x8 forward and inverse discrete cosine
// transforms used by JPEG: an accurate integer implementation (the
// "islow" algorithm, used as the canonical bit-exact path for every
// decoder mode in this repository), a naive float reference for testing,
// and float AAN variants for ablation studies.
package dct

// BlockSize is the number of samples/coefficients in one JPEG block.
const BlockSize = 64

const (
	constBits = 13
	pass1Bits = 2

	fix0_298631336 = 2446
	fix0_390180644 = 3196
	fix0_541196100 = 4433
	fix0_765366865 = 6270
	fix0_899976223 = 7373
	fix1_175875602 = 9633
	fix1_501321110 = 12299
	fix1_847759065 = 15137
	fix1_961570560 = 16069
	fix2_053119869 = 16819
	fix2_562915447 = 20995
	fix3_072711026 = 25172
)

func descale(x int32, n uint) int32 {
	return (x + (1 << (n - 1))) >> n
}

// ForwardInt computes the forward DCT of the 8x8 block in row-major order.
// Input samples must be level-shifted (centered on zero, range roughly
// [-128,127]); output coefficients are scaled by 8 (as in libjpeg's
// jfdctint), which the caller compensates in the quantization step.
func ForwardInt(block *[BlockSize]int32) {
	// Pass 1: rows.
	for i := 0; i < 8; i++ {
		b := block[i*8 : i*8+8 : i*8+8]
		tmp0 := b[0] + b[7]
		tmp7 := b[0] - b[7]
		tmp1 := b[1] + b[6]
		tmp6 := b[1] - b[6]
		tmp2 := b[2] + b[5]
		tmp5 := b[2] - b[5]
		tmp3 := b[3] + b[4]
		tmp4 := b[3] - b[4]

		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2

		b[0] = (tmp10 + tmp11) << pass1Bits
		b[4] = (tmp10 - tmp11) << pass1Bits

		z1 := (tmp12 + tmp13) * fix0_541196100
		b[2] = descale(z1+tmp13*fix0_765366865, constBits-pass1Bits)
		b[6] = descale(z1-tmp12*fix1_847759065, constBits-pass1Bits)

		z1 = tmp4 + tmp7
		z2 := tmp5 + tmp6
		z3 := tmp4 + tmp6
		z4 := tmp5 + tmp7
		z5 := (z3 + z4) * fix1_175875602

		tmp4 *= fix0_298631336
		tmp5 *= fix2_053119869
		tmp6 *= fix3_072711026
		tmp7 *= fix1_501321110
		z1 *= -fix0_899976223
		z2 *= -fix2_562915447
		z3 = z3*-fix1_961570560 + z5
		z4 = z4*-fix0_390180644 + z5

		b[7] = descale(tmp4+z1+z3, constBits-pass1Bits)
		b[5] = descale(tmp5+z2+z4, constBits-pass1Bits)
		b[3] = descale(tmp6+z2+z3, constBits-pass1Bits)
		b[1] = descale(tmp7+z1+z4, constBits-pass1Bits)
	}

	// Pass 2: columns.
	for i := 0; i < 8; i++ {
		c := block[i:]
		tmp0 := c[0] + c[56]
		tmp7 := c[0] - c[56]
		tmp1 := c[8] + c[48]
		tmp6 := c[8] - c[48]
		tmp2 := c[16] + c[40]
		tmp5 := c[16] - c[40]
		tmp3 := c[24] + c[32]
		tmp4 := c[24] - c[32]

		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2

		c[0] = descale(tmp10+tmp11, pass1Bits)
		c[32] = descale(tmp10-tmp11, pass1Bits)

		z1 := (tmp12 + tmp13) * fix0_541196100
		c[16] = descale(z1+tmp13*fix0_765366865, constBits+pass1Bits)
		c[48] = descale(z1-tmp12*fix1_847759065, constBits+pass1Bits)

		z1 = tmp4 + tmp7
		z2 := tmp5 + tmp6
		z3 := tmp4 + tmp6
		z4 := tmp5 + tmp7
		z5 := (z3 + z4) * fix1_175875602

		tmp4 *= fix0_298631336
		tmp5 *= fix2_053119869
		tmp6 *= fix3_072711026
		tmp7 *= fix1_501321110
		z1 *= -fix0_899976223
		z2 *= -fix2_562915447
		z3 = z3*-fix1_961570560 + z5
		z4 = z4*-fix0_390180644 + z5

		c[56] = descale(tmp4+z1+z3, constBits+pass1Bits)
		c[40] = descale(tmp5+z2+z4, constBits+pass1Bits)
		c[24] = descale(tmp6+z2+z3, constBits+pass1Bits)
		c[8] = descale(tmp7+z1+z4, constBits+pass1Bits)
	}
}

// InverseInt computes the inverse DCT of dequantized coefficients coef
// (row-major, natural order) and writes level-shifted, clamped samples
// into out (values 0..255 stored as int32). This is the canonical
// transform: every decoder mode (sequential, SIMD analog, GPU kernels)
// must produce output identical to it.
func InverseInt(coef *[BlockSize]int32, out *[BlockSize]int32) {
	var ws [BlockSize]int32 // workspace after column pass
	var col [8]int32
	for c := 0; c < 8; c++ {
		for k := 0; k < 8; k++ {
			col[k] = coef[c+8*k]
		}
		InverseIntColumn(&col, ws[:], c)
	}
	var row [8]int32
	for r := 0; r < 8; r++ {
		InverseIntRow(ws[:], r, &row)
		copy(out[r*8:r*8+8], row[:])
	}
}

func clampSample(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// OpsPerBlockInt is the approximate arithmetic operation count of
// InverseInt for one block; the device cost models use it.
const OpsPerBlockInt = 16*29 + 64*2
