package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlock(rng *rand.Rand) [BlockSize]int32 {
	var b [BlockSize]int32
	for i := range b {
		b[i] = int32(rng.Intn(256)) - 128
	}
	return b
}

func TestForwardIntMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		in := randBlock(rng)
		var fin [BlockSize]float64
		for i, v := range in {
			fin[i] = float64(v)
		}
		var want [BlockSize]float64
		ForwardRef(&fin, &want)

		got := in
		ForwardInt(&got)
		for i := range got {
			// ForwardInt output is scaled by 8.
			g := float64(got[i]) / 8
			if math.Abs(g-want[i]) > 1.0 {
				t.Fatalf("trial %d coef %d: int=%v ref=%v", trial, i, g, want[i])
			}
		}
	}
}

func TestInverseIntMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		// Generate coefficients from a real sample block so ranges are
		// representative.
		samples := randBlock(rng)
		var fin [BlockSize]float64
		for i, v := range samples {
			fin[i] = float64(v)
		}
		var coefF [BlockSize]float64
		ForwardRef(&fin, &coefF)
		var coef [BlockSize]int32
		for i, v := range coefF {
			coef[i] = int32(math.Round(v))
		}

		var want [BlockSize]float64
		var coefF2 [BlockSize]float64
		for i, v := range coef {
			coefF2[i] = float64(v)
		}
		InverseRef(&coefF2, &want)

		var got [BlockSize]int32
		InverseInt(&coef, &got)
		for i := range got {
			w := want[i]
			if w < 0 {
				w = 0
			}
			if w > 255 {
				w = 255
			}
			if math.Abs(float64(got[i])-w) > 1.5 {
				t.Fatalf("trial %d sample %d: int=%d ref=%v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRoundTripIntDCT(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		in := randBlock(rng)
		coef := in
		ForwardInt(&coef)
		// Undo the x8 scaling with rounding.
		for i := range coef {
			if coef[i] >= 0 {
				coef[i] = (coef[i] + 4) >> 3
			} else {
				coef[i] = -((-coef[i] + 4) >> 3)
			}
		}
		var out [BlockSize]int32
		InverseInt(&coef, &out)
		for i := range out {
			orig := in[i] + 128
			if d := out[i] - orig; d < -2 || d > 2 {
				t.Fatalf("trial %d sample %d: round trip %d -> %d", trial, i, orig, out[i])
			}
		}
	}
}

func TestInverseIntDCOnly(t *testing.T) {
	// A pure DC block must reconstruct to a flat field (the column-pass
	// shortcut path).
	var coef [BlockSize]int32
	coef[0] = 80 // DC
	var out [BlockSize]int32
	InverseInt(&coef, &out)
	want := out[0]
	for i, v := range out {
		if v != want {
			t.Fatalf("sample %d: %d != %d (not flat)", i, v, want)
		}
	}
	// Expected value: DC/8 + 128 = 10 + 128.
	if want != 138 {
		t.Fatalf("flat value %d want 138", want)
	}
}

func TestInverseIntClamps(t *testing.T) {
	var coef [BlockSize]int32
	coef[0] = 3000 // far beyond sample range
	var out [BlockSize]int32
	InverseInt(&coef, &out)
	for i, v := range out {
		if v != 255 {
			t.Fatalf("sample %d: %d want 255 (clamp)", i, v)
		}
	}
	coef[0] = -3000
	InverseInt(&coef, &out)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("sample %d: %d want 0 (clamp)", i, v)
		}
	}
}

func TestLinearityQuick(t *testing.T) {
	// IDCT(a) + IDCT(b) ≈ IDCT(a+b) - 128 within rounding noise for
	// small coefficients (clamping avoided).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b, sum [BlockSize]int32
		for i := range a {
			a[i] = int32(rng.Intn(17)) - 8
			b[i] = int32(rng.Intn(17)) - 8
			sum[i] = a[i] + b[i]
		}
		a[0] += 256 // keep outputs near mid-range
		sum[0] += 256
		var oa, ob, os [BlockSize]int32
		InverseInt(&a, &oa)
		InverseInt(&b, &ob)
		InverseInt(&sum, &os)
		for i := range os {
			approx := oa[i] + ob[i] - 128
			if d := os[i] - approx; d < -3 || d > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAANForwardMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scales := AANScales()
	for trial := 0; trial < 100; trial++ {
		in := randBlock(rng)
		var fin, want [BlockSize]float64
		for i, v := range in {
			fin[i] = float64(v)
		}
		ForwardRef(&fin, &want)
		got := fin
		ForwardAAN(&got)
		for i := range got {
			g := got[i] * scales[i]
			if math.Abs(g-want[i]) > 0.01 {
				t.Fatalf("trial %d coef %d: aan=%v ref=%v", trial, i, g, want[i])
			}
		}
	}
}

func TestAANInverseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	scales := AANInverseScales()
	for trial := 0; trial < 100; trial++ {
		samples := randBlock(rng)
		var fin, coefF [BlockSize]float64
		for i, v := range samples {
			fin[i] = float64(v)
		}
		ForwardRef(&fin, &coefF)

		var want [BlockSize]float64
		InverseRef(&coefF, &want)

		scaled := coefF
		for i := range scaled {
			scaled[i] *= scales[i]
		}
		var out [BlockSize]int32
		InverseAANSamples(&scaled, &out)
		for i := range out {
			w := math.Max(0, math.Min(255, want[i]))
			if math.Abs(float64(out[i])-w) > 1.0 {
				t.Fatalf("trial %d sample %d: aan=%d ref=%v", trial, i, out[i], want[i])
			}
		}
	}
}

func TestReferenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randBlock(rng)
	var fin, coef, back [BlockSize]float64
	for i, v := range in {
		fin[i] = float64(v)
	}
	ForwardRef(&fin, &coef)
	InverseRef(&coef, &back)
	for i := range back {
		if math.Abs(back[i]-(fin[i]+128)) > 1e-9 {
			t.Fatalf("sample %d: %v -> %v", i, fin[i]+128, back[i])
		}
	}
}

func BenchmarkInverseInt(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randBlock(rng)
	ForwardInt(&in)
	for i := range in {
		in[i] /= 8
	}
	var out [BlockSize]int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InverseInt(&in, &out)
	}
}

func BenchmarkForwardInt(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := randBlock(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := base
		ForwardInt(&blk)
	}
}
