package dct

import "math"

// The AAN (Arai, Agui, Nakajima 1988) scaled DCT, referenced by the paper
// as libjpeg-turbo's transform family. The fast path trades 1-D transform
// multiplies for a per-coefficient scale that is folded into the
// (de)quantization tables. These float variants are provided for the
// ablation benchmarks comparing transform families; the codec's canonical
// path remains the integer islow transform.

// AANScales returns the 64 multiplicative factors that must be folded into
// the output of ForwardAAN to obtain true DCT coefficients (the encoder
// folds them into its quantization divisors).
func AANScales() *[BlockSize]float64 {
	var aanScaleFactor = [8]float64{
		1.0, 1.387039845, 1.306562965, 1.175875602,
		1.0, 0.785694958, 0.541196100, 0.275899379,
	}
	var s [BlockSize]float64
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			s[v*8+u] = 1 / (aanScaleFactor[v] * aanScaleFactor[u] * 8.0)
		}
	}
	return &s
}

// ForwardAAN computes the scaled forward DCT in place. The output must be
// multiplied by AANScales element-wise to obtain true DCT coefficients.
func ForwardAAN(b *[BlockSize]float64) {
	// Pass over rows, then columns.
	for i := 0; i < 8; i++ {
		aanForward1D(b[i*8:i*8+8:i*8+8], 1)
	}
	for i := 0; i < 8; i++ {
		aanForward1D(b[i:], 8)
	}
}

func aanForward1D(d []float64, stride int) {
	at := func(i int) float64 { return d[i*stride] }
	set := func(i int, v float64) { d[i*stride] = v }

	tmp0 := at(0) + at(7)
	tmp7 := at(0) - at(7)
	tmp1 := at(1) + at(6)
	tmp6 := at(1) - at(6)
	tmp2 := at(2) + at(5)
	tmp5 := at(2) - at(5)
	tmp3 := at(3) + at(4)
	tmp4 := at(3) - at(4)

	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2

	set(0, tmp10+tmp11)
	set(4, tmp10-tmp11)

	z1 := (tmp12 + tmp13) * 0.707106781
	set(2, tmp13+z1)
	set(6, tmp13-z1)

	tmp10 = tmp4 + tmp5
	tmp11 = tmp5 + tmp6
	tmp12 = tmp6 + tmp7

	z5 := (tmp10 - tmp12) * 0.382683433
	z2 := 0.541196100*tmp10 + z5
	z4 := 1.306562965*tmp12 + z5
	z3 := tmp11 * 0.707106781

	z11 := tmp7 + z3
	z13 := tmp7 - z3

	set(5, z13+z2)
	set(3, z13-z2)
	set(1, z11+z4)
	set(7, z11-z4)
}

// AANInverseScales returns the factors folded into dequantized
// coefficients before InverseAAN (aanScale[u]*aanScale[v], without the /8
// that InverseAANSamples applies at the end).
func AANInverseScales() *[BlockSize]float64 {
	var aanScaleFactor = [8]float64{
		1.0, 1.387039845, 1.306562965, 1.175875602,
		1.0, 0.785694958, 0.541196100, 0.275899379,
	}
	var s [BlockSize]float64
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			s[v*8+u] = aanScaleFactor[v] * aanScaleFactor[u]
		}
	}
	return &s
}

// InverseAAN computes the scaled inverse DCT in place. Input coefficients
// must already include the AANInverseScales dequantization folding; output
// is in sample space scaled by 8, level-shift not applied.
func InverseAAN(b *[BlockSize]float64) {
	for i := 0; i < 8; i++ {
		aanInverse1D(b[i:], 8)
	}
	for i := 0; i < 8; i++ {
		aanInverse1D(b[i*8:i*8+8:i*8+8], 1)
	}
}

func aanInverse1D(d []float64, stride int) {
	at := func(i int) float64 { return d[i*stride] }
	set := func(i int, v float64) { d[i*stride] = v }

	tmp0 := at(0)
	tmp1 := at(2)
	tmp2 := at(4)
	tmp3 := at(6)

	tmp10 := tmp0 + tmp2
	tmp11 := tmp0 - tmp2
	tmp13 := tmp1 + tmp3
	tmp12 := (tmp1-tmp3)*1.414213562 - tmp13

	tmp0 = tmp10 + tmp13
	tmp3 = tmp10 - tmp13
	tmp1 = tmp11 + tmp12
	tmp2 = tmp11 - tmp12

	tmp4 := at(1)
	tmp5 := at(3)
	tmp6 := at(5)
	tmp7 := at(7)

	z13 := tmp6 + tmp5
	z10 := tmp6 - tmp5
	z11 := tmp4 + tmp7
	z12 := tmp4 - tmp7

	tmp7 = z11 + z13
	tmp11 = (z11 - z13) * 1.414213562

	z5 := (z10 + z12) * 1.847759065
	tmp10 = 1.082392200*z12 - z5
	tmp12 = -2.613125930*z10 + z5

	tmp6 = tmp12 - tmp7
	tmp5 = tmp11 - tmp6
	tmp4 = tmp10 + tmp5

	set(0, tmp0+tmp7)
	set(7, tmp0-tmp7)
	set(1, tmp1+tmp6)
	set(6, tmp1-tmp6)
	set(2, tmp2+tmp5)
	set(5, tmp2-tmp5)
	set(4, tmp3+tmp4)
	set(3, tmp3-tmp4)
}

// InverseAANSamples runs InverseAAN then level-shifts and clamps to byte
// range, scaling by 1/8 (the remaining AAN factor for the 2-D transform).
func InverseAANSamples(b *[BlockSize]float64, out *[BlockSize]int32) {
	InverseAAN(b)
	for i, v := range b {
		s := int32(math.Round(v/8)) + 128
		out[i] = clampSample(s)
	}
}
