package dct

import (
	"math/rand"
	"testing"
)

// referenceBytes runs the canonical dequant + InverseInt + byte-store
// pipeline the fast paths must match bit for bit.
func referenceBytes(blk []int32, q *[BlockSize]int32, dst []byte, stride int) {
	var in, out [BlockSize]int32
	for i := 0; i < BlockSize; i++ {
		in[i] = blk[i] * q[i]
	}
	InverseInt(&in, &out)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			dst[y*stride+x] = byte(out[y*8+x])
		}
	}
}

func randQuant(rng *rand.Rand) [BlockSize]int32 {
	var q [BlockSize]int32
	for i := range q {
		q[i] = int32(1 + rng.Intn(255))
	}
	return q
}

// sparseBlock builds a block whose nonzero coefficients all sit at
// zigzag indices <= maxK, with representative magnitudes.
func sparseBlock(rng *rand.Rand, maxK int) [BlockSize]int32 {
	zig := [...]int{0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5}
	var b [BlockSize]int32
	for k := 0; k <= maxK && k < len(zig); k++ {
		if k > 0 && rng.Intn(3) == 0 {
			continue // leave some zeros inside the sparse region
		}
		b[zig[k]] = int32(rng.Intn(255)) - 127
	}
	return b
}

func assertBlockEqual(t *testing.T, trial int, name string, got, want []byte, stride int) {
	t.Helper()
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if got[y*stride+x] != want[y*stride+x] {
				t.Fatalf("trial %d %s: sample (%d,%d) = %d, want %d",
					trial, name, y, x, got[y*stride+x], want[y*stride+x])
			}
		}
	}
}

func TestInverseIntDCBytesMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	const stride = 24
	want := make([]byte, 8*stride)
	got := make([]byte, 8*stride)
	for trial := 0; trial < 500; trial++ {
		q := randQuant(rng)
		var blk [BlockSize]int32
		// Include extreme DCs that exercise clamping and int32 overflow
		// behavior (which must match the dense path exactly).
		switch trial % 4 {
		case 0:
			blk[0] = int32(rng.Intn(2048)) - 1024
		case 1:
			blk[0] = 2047
		case 2:
			blk[0] = -2048
		default:
			blk[0] = int32(rng.Intn(64)) - 32
		}
		referenceBytes(blk[:], &q, want, stride)
		InverseIntDCBytes(blk[0]*q[0], got, stride)
		assertBlockEqual(t, trial, "dc-only", got, want, stride)
	}
}

func TestInverseInt4x4DequantBytesMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	const stride = 16
	want := make([]byte, 8*stride)
	got := make([]byte, 8*stride)
	for trial := 0; trial < 1000; trial++ {
		q := randQuant(rng)
		blk := sparseBlock(rng, SparseCutoff4x4)
		referenceBytes(blk[:], &q, want, stride)
		InverseInt4x4DequantBytes(blk[:], &q, got, stride)
		assertBlockEqual(t, trial, "4x4-sparse", got, want, stride)
	}
}

func TestInverseIntDequantBytesMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	const stride = 8
	want := make([]byte, 64)
	got := make([]byte, 64)
	for trial := 0; trial < 1000; trial++ {
		q := randQuant(rng)
		var blk [BlockSize]int32
		for i := range blk {
			if rng.Intn(2) == 0 {
				blk[i] = int32(rng.Intn(511)) - 255
			}
		}
		referenceBytes(blk[:], &q, want, stride)
		InverseIntDequantBytes(blk[:], &q, got, stride)
		assertBlockEqual(t, trial, "dense", got, want, stride)
	}
}

func TestInverseIntRowBytesMatchesRow(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 500; trial++ {
		var ws [BlockSize]int32
		for i := range ws {
			ws[i] = int32(rng.Intn(1<<20)) - 1<<19
		}
		for r := 0; r < 8; r++ {
			var want [8]int32
			InverseIntRow(ws[:], r, &want)
			var got [8]byte
			InverseIntRowBytes(ws[:], r, got[:])
			for x := 0; x < 8; x++ {
				if got[x] != byte(want[x]) {
					t.Fatalf("trial %d row %d x %d: %d != %d", trial, r, x, got[x], want[x])
				}
			}
		}
	}
}

func BenchmarkInverseIntDequantBytes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := randQuant(rng)
	var blk [BlockSize]int32
	for i := range blk {
		blk[i] = int32(rng.Intn(64)) - 32
	}
	dst := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InverseIntDequantBytes(blk[:], &q, dst, 8)
	}
}

func BenchmarkInverseInt4x4DequantBytes(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	q := randQuant(rng)
	blk := sparseBlock(rng, SparseCutoff4x4)
	dst := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InverseInt4x4DequantBytes(blk[:], &q, dst, 8)
	}
}

func BenchmarkInverseIntDCBytes(b *testing.B) {
	dst := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		InverseIntDCBytes(517, dst, 8)
	}
}
