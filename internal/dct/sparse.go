package dct

// Sparse inverse-transform fast paths for the CPU hot path. Entropy
// decoding records, per block, the last nonzero zigzag index; the decoder
// dispatches here so DC-only blocks (flat fields) and blocks whose
// coefficients fit the top-left 4x4 corner (zigzag index <= 9) skip most
// of the full transform. Every routine fuses dequantization and writes
// clamped bytes straight into the destination plane (stride-separated
// rows), eliminating the separate dequant pass and the [64]int32
// out-buffer + byte-copy loop of the naive pipeline.
//
// All paths compute with exactly the arithmetic of InverseInt (same
// fixed-point constants, same descale rounding, same evaluation of the
// shared subexpressions with zeros substituted), so output is
// byte-identical to the canonical transform — asserted by property tests
// across random sparse blocks and enforced end-to-end by the cross-mode
// decoder tests.

// InverseIntDCBytes reconstructs a DC-only block: every sample is the
// level-shifted, clamped DC term. dc is the dequantized DC coefficient.
func InverseIntDCBytes(dc int32, dst []byte, stride int) {
	// Column pass shortcut value dc<<pass1Bits, sent through the row pass
	// with all other terms zero: descale((dc<<pass1Bits)<<constBits, final).
	v := byte(clampSample(descale((dc<<pass1Bits)<<constBits, constBits+pass1Bits+3) + 128))
	for y := 0; y < 8; y++ {
		row := dst[y*stride : y*stride+8 : y*stride+8]
		row[0], row[1], row[2], row[3] = v, v, v, v
		row[4], row[5], row[6], row[7] = v, v, v, v
	}
}

// InverseIntDequantBytes is the full dequantize + inverse transform,
// writing clamped samples directly into dst rows of the given stride.
// blk holds the quantized coefficients in natural order, q the
// quantization table.
func InverseIntDequantBytes(blk []int32, q *[BlockSize]int32, dst []byte, stride int) {
	blk = blk[:64:64]
	var ws [BlockSize]int32
	var col [8]int32
	for c := 0; c < 8; c++ {
		// All-AC-zero shortcut on the quantized coefficients (quant
		// factors never turn zero into nonzero).
		if blk[c+8]|blk[c+16]|blk[c+24]|blk[c+32]|blk[c+40]|blk[c+48]|blk[c+56] == 0 {
			dc := (blk[c] * q[c]) << pass1Bits
			ws[c] = dc
			ws[c+8] = dc
			ws[c+16] = dc
			ws[c+24] = dc
			ws[c+32] = dc
			ws[c+40] = dc
			ws[c+48] = dc
			ws[c+56] = dc
			continue
		}
		for k := 0; k < 8; k++ {
			col[k] = blk[c+8*k] * q[c+8*k]
		}
		InverseIntColumn(&col, ws[:], c)
	}
	for r := 0; r < 8; r++ {
		InverseIntRowBytes(ws[:], r, dst[r*stride:r*stride+8:r*stride+8])
	}
}

// InverseInt4x4DequantBytes transforms a block whose nonzero coefficients
// all lie in the top-left 4x4 corner (true whenever the last nonzero
// zigzag index is <= 9): the column pass runs over four short columns and
// the row pass drops the four always-zero high-frequency terms.
func InverseInt4x4DequantBytes(blk []int32, q *[BlockSize]int32, dst []byte, stride int) {
	var ws [BlockSize]int32 // columns 4..7 stay zero
	var col [8]int32        // rows 4..7 stay zero
	for c := 0; c < 4; c++ {
		c1 := blk[c+8] * q[c+8]
		c2 := blk[c+16] * q[c+16]
		c3 := blk[c+24] * q[c+24]
		if c1|c2|c3 == 0 {
			dc := (blk[c] * q[c]) << pass1Bits
			ws[c] = dc
			ws[c+8] = dc
			ws[c+16] = dc
			ws[c+24] = dc
			ws[c+32] = dc
			ws[c+40] = dc
			ws[c+48] = dc
			ws[c+56] = dc
			continue
		}
		col[0] = blk[c] * q[c]
		col[1] = c1
		col[2] = c2
		col[3] = c3
		InverseIntColumn(&col, ws[:], c)
	}
	for r := 0; r < 8; r++ {
		inverseIntRow4Bytes(ws[:], r, dst[r*stride:r*stride+8:r*stride+8])
	}
}

// InverseIntRowBytes is the row pass of the inverse transform writing
// level-shifted, clamped bytes (the plane's final samples) instead of
// int32s — identical arithmetic to InverseIntRow.
func InverseIntRowBytes(ws []int32, r int, out []byte) {
	w := ws[r*8 : r*8+8 : r*8+8]

	z2 := w[2]
	z3 := w[6]
	z1 := (z2 + z3) * fix0_541196100
	tmp2 := z1 - z3*fix1_847759065
	tmp3 := z1 + z2*fix0_765366865

	tmp0 := (w[0] + w[4]) << constBits
	tmp1 := (w[0] - w[4]) << constBits

	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2

	t0 := w[7]
	t1 := w[5]
	t2 := w[3]
	t3 := w[1]
	z1 = t0 + t3
	z2 = t1 + t2
	z3 = t0 + t2
	z4 := t1 + t3
	z5 := (z3 + z4) * fix1_175875602

	t0 *= fix0_298631336
	t1 *= fix2_053119869
	t2 *= fix3_072711026
	t3 *= fix1_501321110
	z1 *= -fix0_899976223
	z2 *= -fix2_562915447
	z3 = z3*-fix1_961570560 + z5
	z4 = z4*-fix0_390180644 + z5

	t0 += z1 + z3
	t1 += z2 + z4
	t2 += z2 + z3
	t3 += z1 + z4

	const finalBits = constBits + pass1Bits + 3
	out[0] = byte(clampSample(descale(tmp10+t3, finalBits) + 128))
	out[7] = byte(clampSample(descale(tmp10-t3, finalBits) + 128))
	out[1] = byte(clampSample(descale(tmp11+t2, finalBits) + 128))
	out[6] = byte(clampSample(descale(tmp11-t2, finalBits) + 128))
	out[2] = byte(clampSample(descale(tmp12+t1, finalBits) + 128))
	out[5] = byte(clampSample(descale(tmp12-t1, finalBits) + 128))
	out[3] = byte(clampSample(descale(tmp13+t0, finalBits) + 128))
	out[4] = byte(clampSample(descale(tmp13-t0, finalBits) + 128))
}

// inverseIntRow4Bytes is InverseIntRowBytes with w[4..7] == 0 substituted
// (the workspace columns a 4x4-sparse block never populates).
func inverseIntRow4Bytes(ws []int32, r int, out []byte) {
	w := ws[r*8 : r*8+4 : r*8+4]

	// z3 = w[6] = 0.
	z2 := w[2]
	z1 := z2 * fix0_541196100
	tmp2 := z1
	tmp3 := z1 + z2*fix0_765366865

	// w[4] = 0.
	tmp0 := w[0] << constBits
	tmp1 := tmp0

	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2

	// t0 = w[7] = 0, t1 = w[5] = 0.
	t2 := w[3]
	t3 := w[1]
	z1 = t3
	z2 = t2
	z3 := t2
	z4 := t3
	z5 := (z3 + z4) * fix1_175875602

	t2 *= fix3_072711026
	t3 *= fix1_501321110
	z1 *= -fix0_899976223
	z2 *= -fix2_562915447
	z3 = z3*-fix1_961570560 + z5
	z4 = z4*-fix0_390180644 + z5

	t0 := z1 + z3
	t1 := z2 + z4
	t2 += z2 + z3
	t3 += z1 + z4

	const finalBits = constBits + pass1Bits + 3
	out[0] = byte(clampSample(descale(tmp10+t3, finalBits) + 128))
	out[7] = byte(clampSample(descale(tmp10-t3, finalBits) + 128))
	out[1] = byte(clampSample(descale(tmp11+t2, finalBits) + 128))
	out[6] = byte(clampSample(descale(tmp11-t2, finalBits) + 128))
	out[2] = byte(clampSample(descale(tmp12+t1, finalBits) + 128))
	out[5] = byte(clampSample(descale(tmp12-t1, finalBits) + 128))
	out[3] = byte(clampSample(descale(tmp13+t0, finalBits) + 128))
	out[4] = byte(clampSample(descale(tmp13-t0, finalBits) + 128))
}

// SparseCutoff4x4 is the largest last-nonzero zigzag index for which the
// 4x4 fast path applies: zigzag indices 0..9 all map inside the top-left
// 4x4 corner, index 10 is the first outside it.
const SparseCutoff4x4 = 9
