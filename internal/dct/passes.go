package dct

// The inverse transform exposed as separate column and row passes. The
// paper's GPU IDCT kernel (Section 4.1) assigns one work-item per column
// for the column pass, shares the intermediate through local memory, and
// runs the row pass per row. Exposing the passes lets the simulated
// kernels use the *same arithmetic* as the CPU paths, keeping every
// decoder mode bit-exact.

// InverseIntColumn performs the column pass for one column c (0..7).
// col holds the 8 dequantized coefficients of that column, top to bottom;
// the intermediate result is written to ws[c+8k] (the shared workspace,
// local memory on the simulated device).
func InverseIntColumn(col *[8]int32, ws []int32, c int) {
	// All-AC-zero shortcut, identical to libjpeg's.
	if col[1] == 0 && col[2] == 0 && col[3] == 0 && col[4] == 0 &&
		col[5] == 0 && col[6] == 0 && col[7] == 0 {
		dc := col[0] << pass1Bits
		for k := 0; k < 8; k++ {
			ws[c+8*k] = dc
		}
		return
	}

	z2 := col[2]
	z3 := col[6]
	z1 := (z2 + z3) * fix0_541196100
	tmp2 := z1 - z3*fix1_847759065
	tmp3 := z1 + z2*fix0_765366865

	z2 = col[0]
	z3 = col[4]
	tmp0 := (z2 + z3) << constBits
	tmp1 := (z2 - z3) << constBits

	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2

	t0 := col[7]
	t1 := col[5]
	t2 := col[3]
	t3 := col[1]
	z1 = t0 + t3
	z2 = t1 + t2
	z3 = t0 + t2
	z4 := t1 + t3
	z5 := (z3 + z4) * fix1_175875602

	t0 *= fix0_298631336
	t1 *= fix2_053119869
	t2 *= fix3_072711026
	t3 *= fix1_501321110
	z1 *= -fix0_899976223
	z2 *= -fix2_562915447
	z3 = z3*-fix1_961570560 + z5
	z4 = z4*-fix0_390180644 + z5

	t0 += z1 + z3
	t1 += z2 + z4
	t2 += z2 + z3
	t3 += z1 + z4

	ws[c] = descale(tmp10+t3, constBits-pass1Bits)
	ws[c+56] = descale(tmp10-t3, constBits-pass1Bits)
	ws[c+8] = descale(tmp11+t2, constBits-pass1Bits)
	ws[c+48] = descale(tmp11-t2, constBits-pass1Bits)
	ws[c+16] = descale(tmp12+t1, constBits-pass1Bits)
	ws[c+40] = descale(tmp12-t1, constBits-pass1Bits)
	ws[c+24] = descale(tmp13+t0, constBits-pass1Bits)
	ws[c+32] = descale(tmp13-t0, constBits-pass1Bits)
}

// InverseIntRow performs the row pass for row r (0..7) of the workspace,
// writing 8 level-shifted, clamped samples (0..255) into out.
func InverseIntRow(ws []int32, r int, out *[8]int32) {
	w := ws[r*8 : r*8+8 : r*8+8]

	z2 := w[2]
	z3 := w[6]
	z1 := (z2 + z3) * fix0_541196100
	tmp2 := z1 - z3*fix1_847759065
	tmp3 := z1 + z2*fix0_765366865

	tmp0 := (w[0] + w[4]) << constBits
	tmp1 := (w[0] - w[4]) << constBits

	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2

	t0 := w[7]
	t1 := w[5]
	t2 := w[3]
	t3 := w[1]
	z1 = t0 + t3
	z2 = t1 + t2
	z3 = t0 + t2
	z4 := t1 + t3
	z5 := (z3 + z4) * fix1_175875602

	t0 *= fix0_298631336
	t1 *= fix2_053119869
	t2 *= fix3_072711026
	t3 *= fix1_501321110
	z1 *= -fix0_899976223
	z2 *= -fix2_562915447
	z3 = z3*-fix1_961570560 + z5
	z4 = z4*-fix0_390180644 + z5

	t0 += z1 + z3
	t1 += z2 + z4
	t2 += z2 + z3
	t3 += z1 + z4

	const finalBits = constBits + pass1Bits + 3
	out[0] = clampSample(descale(tmp10+t3, finalBits) + 128)
	out[7] = clampSample(descale(tmp10-t3, finalBits) + 128)
	out[1] = clampSample(descale(tmp11+t2, finalBits) + 128)
	out[6] = clampSample(descale(tmp11-t2, finalBits) + 128)
	out[2] = clampSample(descale(tmp12+t1, finalBits) + 128)
	out[5] = clampSample(descale(tmp12-t1, finalBits) + 128)
	out[3] = clampSample(descale(tmp13+t0, finalBits) + 128)
	out[4] = clampSample(descale(tmp13-t0, finalBits) + 128)
}
