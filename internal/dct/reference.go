package dct

import "math"

// ForwardRef computes the textbook O(N^4) forward 2-D DCT-II of an 8x8
// block of level-shifted samples. It is the correctness oracle for the
// fast transforms. Output uses the JPEG convention (no extra x8 scaling).
func ForwardRef(in *[BlockSize]float64, out *[BlockSize]float64) {
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			var sum float64
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					sum += in[y*8+x] *
						math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) *
						math.Cos(float64(2*y+1)*float64(v)*math.Pi/16)
				}
			}
			cu, cv := 1.0, 1.0
			if u == 0 {
				cu = 1 / math.Sqrt2
			}
			if v == 0 {
				cv = 1 / math.Sqrt2
			}
			out[v*8+u] = 0.25 * cu * cv * sum
		}
	}
}

// InverseScaledRef computes the textbook N-point inverse 2-D DCT of the
// top-left NxN corner of an 8x8 coefficient block (N in {1, 2, 4}): the
// scaled reconstruction the integer scaled kernels approximate. Output
// is an NxN block of level-shifted (but unclamped) samples. The
// normalization matches InverseRef exactly at the DC term, so a DC-only
// block reconstructs to its DC mean at every N.
func InverseScaledRef(in *[BlockSize]float64, n int, out []float64) {
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			var sum float64
			for v := 0; v < n; v++ {
				for u := 0; u < n; u++ {
					cu, cv := 1.0, 1.0
					if u == 0 {
						cu = 1 / math.Sqrt2
					}
					if v == 0 {
						cv = 1 / math.Sqrt2
					}
					sum += cu * cv * in[v*8+u] *
						math.Cos(float64(2*x+1)*float64(u)*math.Pi/float64(2*n)) *
						math.Cos(float64(2*y+1)*float64(v)*math.Pi/float64(2*n))
				}
			}
			out[y*n+x] = 0.25*sum + 128
		}
	}
}

// InverseRef computes the textbook inverse 2-D DCT (Equations (1)-(2) of
// the paper, applied in both dimensions) of an 8x8 coefficient block.
// Output samples are level-shifted back to [0,255] but not clamped.
func InverseRef(in *[BlockSize]float64, out *[BlockSize]float64) {
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var sum float64
			for v := 0; v < 8; v++ {
				for u := 0; u < 8; u++ {
					cu, cv := 1.0, 1.0
					if u == 0 {
						cu = 1 / math.Sqrt2
					}
					if v == 0 {
						cv = 1 / math.Sqrt2
					}
					sum += cu * cv * in[v*8+u] *
						math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) *
						math.Cos(float64(2*y+1)*float64(v)*math.Pi/16)
				}
			}
			out[y*8+x] = 0.25*sum + 128
		}
	}
}
