// Package transcode implements the decode → scale → re-encode pipeline
// as a first-class workload: the gallery server's other half, where
// decoded images are not displayed but re-emitted as smaller or
// re-formatted JPEGs. It composes the decode-to-scale machinery with
// the encoder (always with optimal Huffman tables on output) and adds
// the one piece neither side has alone: a coefficient-domain fast path
// for 1/8 thumbnails, where a baseline input decodes through DC-only
// storage — no pixel-domain IDCT ever runs — and the result re-encodes
// bit-identically to the general pixel path.
package transcode

import (
	"errors"
	"fmt"
	"time"

	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/perfmodel"
)

// ErrBadOptions marks a transcode refused for invalid knobs (quality
// out of range, unknown script, script without progressive). Check it
// with errors.Is; frontends map it to a 400-class refusal, distinct
// from a corrupt input stream.
var ErrBadOptions = errors.New("transcode: invalid options")

// Options configures one transcode.
type Options struct {
	// Scale decodes the input directly at 1/2, 1/4 or 1/8 of its coded
	// resolution before re-encoding (zero value: full size).
	Scale jpegcodec.Scale
	// Quality is the output quality factor, 1..100. Zero means 75.
	Quality int
	// Progressive emits a multi-scan SOF2 output stream.
	Progressive bool
	// Script names the progressive scan script from the jpegcodec
	// table ("default", "spectral", "multiband", "deepsa"; "" means
	// default). Setting it without Progressive is refused.
	Script string
	// Subsampling selects the output chroma layout (default 4:4:4).
	Subsampling jfif.Subsampling
	// Workers bounds intra-image parallelism of the decode back phase
	// and the encoder forward pass. 0 or 1 runs sequentially; output
	// bytes are identical for every worker count.
	Workers int
}

// Validate checks the knobs without touching any input bytes. All
// violations wrap ErrBadOptions.
func (o *Options) Validate() error {
	if err := o.Scale.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadOptions, err)
	}
	if o.Quality < 0 || o.Quality > 100 {
		return fmt.Errorf("%w: quality %d outside 1..100", ErrBadOptions, o.Quality)
	}
	if o.Script != "" && !o.Progressive {
		return fmt.Errorf("%w: script %q requires progressive output", ErrBadOptions, o.Script)
	}
	if _, ok := jpegcodec.ScriptByName(o.Script); !ok {
		return fmt.Errorf("%w: unknown script %q (want one of %v)", ErrBadOptions, o.Script, jpegcodec.ScriptNames())
	}
	return nil
}

// Class returns the perfmodel rate class this transcode is billed
// under. Output always uses optimal Huffman tables, so non-progressive
// transcodes are EncodeOptimized.
func (o *Options) Class() perfmodel.EncodeClass {
	return perfmodel.ClassFor(o.Progressive, true)
}

// Result is one finished transcode.
type Result struct {
	// Data is the re-encoded JPEG stream.
	Data []byte
	// W, H are the output dimensions.
	W, H int
	// FastPath reports that the decode side ran the coefficient-domain
	// DC-only path (baseline input at 1/8): no pixel-domain IDCT
	// executed. The output bytes are identical either way.
	FastPath bool
	// DecodeNs and EncodeNs are the wall-clock cost of the two stages.
	DecodeNs, EncodeNs int64
	// MCUs is the output MCU count under the output subsampling — the
	// denominator of the ns/MCU encode rate observation.
	MCUs int
	// Class is the encode rate class the EncodeNs observation belongs to.
	Class perfmodel.EncodeClass
}

// encodeOptions lowers the transcode knobs onto the encoder.
func (o *Options) encodeOptions() jpegcodec.EncodeOptions {
	eo := jpegcodec.EncodeOptions{
		Quality:         o.Quality,
		Subsampling:     o.Subsampling,
		OptimizeHuffman: true,
		Progressive:     o.Progressive,
		Workers:         o.Workers,
	}
	if o.Progressive {
		// Validate() pinned the name to the table already.
		eo.Script, _ = jpegcodec.ScriptByName(o.Script)
	}
	return eo
}

// outputMCUs counts output MCUs for a w×h image under o's subsampling.
func (o *Options) outputMCUs(w, h int) int {
	mcuW, mcuH := o.Subsampling.MCUPixels()
	return ((w + mcuW - 1) / mcuW) * ((h + mcuH - 1) / mcuH)
}

// EncodeImage runs the re-encode stage over an already-decoded image:
// the shared second half of every transcode front end (the one-shot
// path here, the batch pipeline, imaged's /transcode handler). fastPath
// and decodeNs describe the decode stage the caller ran.
func EncodeImage(img *jpegcodec.RGBImage, opts Options, fastPath bool, decodeNs int64) (*Result, error) {
	t0 := time.Now()
	data, err := jpegcodec.Encode(img, opts.encodeOptions())
	if err != nil {
		return nil, err
	}
	return &Result{
		Data:     data,
		W:        img.W,
		H:        img.H,
		FastPath: fastPath,
		DecodeNs: decodeNs,
		EncodeNs: time.Since(t0).Nanoseconds(),
		MCUs:     opts.outputMCUs(img.W, img.H),
		Class:    opts.Class(),
	}, nil
}

// Transcode is the one-shot path: scalar decode at scale (DC-only
// coefficient storage when the input allows it), then re-encode.
func Transcode(data []byte, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	img, fast, err := decodeScaled(data, opts.Scale, opts.Workers)
	if err != nil {
		return nil, err
	}
	decNs := time.Since(t0).Nanoseconds()
	defer img.Release()
	return EncodeImage(img, opts, fast, decNs)
}

// decodeScaled is DecodeScalarScaled plus the two things the transcode
// front ends need from the frame before it is released: whether the
// coefficient-domain DC-only path ran, and a Workers-banded back phase.
func decodeScaled(data []byte, scale jpegcodec.Scale, workers int) (*jpegcodec.RGBImage, bool, error) {
	f, ed, err := jpegcodec.PrepareDecodeScaled(data, scale)
	if err != nil {
		return nil, false, err
	}
	fast := f.DCOnly()
	if err := ed.DecodeAll(); err != nil {
		f.Release()
		return nil, false, err
	}
	out := jpegcodec.NewRGBImage(f.OutW, f.OutH)
	jpegcodec.ParallelPhaseScalarWorkers(f, 0, f.MCURows, out, workers)
	f.Release()
	return out, fast, nil
}

// NaiveThumbnail is the reference the fast path is benchmarked against:
// decode at full resolution, box-average down by opts.Scale in the
// pixel domain, re-encode. It is what a decoder without decode-to-scale
// must do for a thumbnail, and the cost the coefficient-domain path
// avoids. Output dimensions match Transcode at the same scale; pixel
// values differ (box average versus scaled IDCT), which is why the
// conformance suite compares the two in PSNR, not bytes.
func NaiveThumbnail(data []byte, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	full, err := jpegcodec.DecodeScalar(data)
	if err != nil {
		return nil, err
	}
	s := opts.Scale.Denominator()
	img := boxDownsample(full, s)
	if img != full {
		full.Release()
	}
	decNs := time.Since(t0).Nanoseconds()
	defer img.Release()
	return EncodeImage(img, opts, false, decNs)
}

// boxDownsample shrinks src by the integer factor s with a clamped box
// average (edge boxes cover whatever pixels exist). s == 1 returns src.
func boxDownsample(src *jpegcodec.RGBImage, s int) *jpegcodec.RGBImage {
	if s <= 1 {
		return src
	}
	ow := (src.W + s - 1) / s
	oh := (src.H + s - 1) / s
	out := jpegcodec.NewRGBImage(ow, oh)
	for oy := 0; oy < oh; oy++ {
		y0 := oy * s
		y1 := y0 + s
		if y1 > src.H {
			y1 = src.H
		}
		for ox := 0; ox < ow; ox++ {
			x0 := ox * s
			x1 := x0 + s
			if x1 > src.W {
				x1 = src.W
			}
			var rs, gs, bs, n int
			for y := y0; y < y1; y++ {
				row := src.Pix[(y*src.W+x0)*3 : (y*src.W+x1)*3]
				for i := 0; i < len(row); i += 3 {
					rs += int(row[i])
					gs += int(row[i+1])
					bs += int(row[i+2])
					n++
				}
			}
			out.Set(ox, oy, byte((rs+n/2)/n), byte((gs+n/2)/n), byte((bs+n/2)/n))
		}
	}
	return out
}
