package transcode

import (
	"errors"
	"testing"

	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
)

// FuzzTranscode drives the whole decode → scale → re-encode pipeline
// with arbitrary input bytes and arbitrary knob values. The contract
// under fuzz: never panic; invalid knobs fail with ErrBadOptions
// before touching the input; and when a transcode succeeds, its output
// must be a well-formed JPEG that re-decodes cleanly at the advertised
// geometry.
func FuzzTranscode(f *testing.F) {
	valid := testJPEG(f, 97, 75, jpegcodec.EncodeOptions{Quality: 85, Subsampling: jfif.Sub422})
	prog := testJPEG(f, 64, 48, jpegcodec.EncodeOptions{Quality: 80, Progressive: true})
	f.Add(valid, uint8(8), 80, false, uint8(0), uint8(0), uint8(2))
	f.Add(valid, uint8(1), 0, true, uint8(1), uint8(2), uint8(1))
	f.Add(prog, uint8(2), 95, true, uint8(3), uint8(1), uint8(4))
	f.Add([]byte("\xFF\xD8not a jpeg"), uint8(4), 50, false, uint8(0), uint8(0), uint8(0))
	f.Add(valid[:40], uint8(8), 200, false, uint8(9), uint8(7), uint8(255))

	scales := []jpegcodec.Scale{jpegcodec.Scale1, jpegcodec.Scale2, jpegcodec.Scale4, jpegcodec.Scale8}
	subs := []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420}
	// One slot past the table so the fuzzer also drives unknown-script
	// validation.
	scripts := append(append([]string{}, jpegcodec.ScriptNames()...), "no-such-script")

	f.Fuzz(func(t *testing.T, data []byte, scaleSel uint8, quality int, progressive bool, scriptSel, subSel, workers uint8) {
		opts := Options{
			Scale:       scales[int(scaleSel)%len(scales)],
			Quality:     quality,
			Progressive: progressive,
			Script:      scripts[int(scriptSel)%len(scripts)],
			Subsampling: subs[int(subSel)%len(subs)],
			Workers:     int(workers % 9),
		}
		if !progressive && scriptSel%2 == 0 {
			opts.Script = ""
		}
		res, err := Transcode(data, opts)
		if opts.Validate() != nil {
			if !errors.Is(err, ErrBadOptions) {
				t.Fatalf("invalid options %+v: err = %v, want ErrBadOptions", opts, err)
			}
			return
		}
		if err != nil {
			// Typed decode failure (corrupt/unsupported input): fine, as
			// long as no result leaks alongside it.
			if res != nil {
				t.Fatalf("error %v returned alongside a result", err)
			}
			return
		}
		out, err := jpegcodec.DecodeScalar(res.Data)
		if err != nil {
			t.Fatalf("transcoded output does not re-decode: %v", err)
		}
		if out.W != res.W || out.H != res.H {
			t.Fatalf("output decodes to %dx%d, result says %dx%d", out.W, out.H, res.W, res.H)
		}
		out.Release()
	})
}
