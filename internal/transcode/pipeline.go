package transcode

import (
	"context"
	"sync"
	"time"

	"hetjpeg/internal/batch"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/perfmodel"
)

// Rates is the concurrency-safe wrapper around the perfmodel encode
// rate classes: many transcode handlers observe into it while the
// admission path reads it for Retry-After pricing.
type Rates struct {
	mu sync.Mutex
	r  perfmodel.EncodeRates
}

// ObserveResult folds a finished transcode's encode cost into its
// class's ns/MCU estimate.
func (r *Rates) ObserveResult(res *Result) {
	if res == nil || res.MCUs <= 0 || res.EncodeNs <= 0 {
		return
	}
	r.mu.Lock()
	r.r.At(res.Class).Observe(float64(res.EncodeNs) / float64(res.MCUs))
	r.mu.Unlock()
}

// Value returns the current ns/MCU estimate for a class (0 when
// unseeded).
func (r *Rates) Value(c perfmodel.EncodeClass) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.At(c).Value()
}

// Max returns the largest estimate across classes — the conservative
// number for pricing mixed traffic.
func (r *Rates) Max() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.Max()
}

// Calibrate seeds every class by encoding one small synthetic image
// under it, so Retry-After pricing has a defensible number before the
// first real request instead of a cold zero. Observed traffic then
// corrects the seed through the EWMA. The calibration image is a
// 128x128 diagonal gradient — cheap, but with enough AC energy that
// the measured ns/MCU is not a best-case outlier.
func (r *Rates) Calibrate() {
	img := jpegcodec.NewRGBImage(128, 128)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			img.Set(x, y, byte(x*2), byte(y*2), byte((x+y)&0xFF))
		}
	}
	defer img.Release()
	for _, opts := range []Options{
		{Progressive: false}, // EncodeOptimized (optimal Huffman is always on)
		{Progressive: true},  // EncodeProgressive
	} {
		t0 := time.Now()
		if _, err := jpegcodec.Encode(img, opts.encodeOptions()); err != nil {
			continue
		}
		ns := time.Since(t0).Nanoseconds()
		mcus := opts.outputMCUs(img.W, img.H)
		r.mu.Lock()
		r.r.At(opts.Class()).Seed(float64(ns) / float64(mcus))
		r.mu.Unlock()
	}
}

// Pipeline routes the decode stage of transcodes through a shared
// batch executor — the work-stealing band scheduler (or the per-image
// pool) decodes many in-flight inputs concurrently — and runs the
// re-encode stage on the submitting goroutine. It is the batch mirror
// of the one-shot Transcode and feeds the same Rates.
type Pipeline struct {
	ex *batch.Executor

	mu      sync.Mutex
	next    int
	waiters map[int]chan batch.ImageResult
	done    chan struct{}

	// Rates learns the ns/MCU encode cost per rate class from every
	// transcode the pipeline completes.
	Rates Rates
}

// NewPipeline starts a pipeline over a fresh executor with the given
// batch options.
func NewPipeline(opts batch.Options) (*Pipeline, error) {
	ex, err := batch.NewExecutor(opts)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		ex:      ex,
		waiters: make(map[int]chan batch.ImageResult),
		done:    make(chan struct{}),
	}
	go p.route()
	return p, nil
}

// route fans the executor's completion-order results back out to the
// per-call waiter channels (the dispatcher pattern from imaged). A
// result without a waiter belongs to a call that already gave up on a
// submission error; its buffers are recycled rather than leaked.
func (p *Pipeline) route() {
	defer close(p.done)
	for ir := range p.ex.Results() {
		p.mu.Lock()
		ch := p.waiters[ir.Index]
		delete(p.waiters, ir.Index)
		p.mu.Unlock()
		if ch == nil {
			if ir.Res != nil {
				ir.Res.Release()
			}
			continue
		}
		ch <- ir // buffered; routing never blocks on a caller
	}
}

// Transcode decodes data at opts.Scale through the executor, then
// re-encodes with the transcode knobs. ctx bounds the decode stage
// (it flows into the entropy and back phases).
func (p *Pipeline) Transcode(ctx context.Context, data []byte, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()

	ch := make(chan batch.ImageResult, 1)
	p.mu.Lock()
	idx := p.next
	p.next++
	p.waiters[idx] = ch
	p.mu.Unlock()
	if err := p.ex.SubmitScaled(ctx, idx, data, opts.Scale); err != nil {
		p.mu.Lock()
		delete(p.waiters, idx)
		p.mu.Unlock()
		return nil, err
	}
	ir := <-ch
	if ir.Err != nil {
		if ir.Res != nil {
			ir.Res.Release()
		}
		return nil, ir.Err
	}
	decNs := time.Since(t0).Nanoseconds()
	defer ir.Res.Release()

	res, err := EncodeImage(ir.Res.Image, opts, ir.Res.Frame.DCOnly(), decNs)
	if err != nil {
		return nil, err
	}
	p.Rates.ObserveResult(res)
	return res, nil
}

// Close shuts the executor down and waits for the routing loop to
// drain. Call only once no Transcode call can still submit.
func (p *Pipeline) Close() {
	p.ex.Close()
	<-p.done
}
