package transcode

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"hetjpeg/internal/batch"
	"hetjpeg/internal/core"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
)

// testJPEG encodes a synthetic detail image so decode inputs carry real
// AC energy (flat inputs would make every path look DC-only).
func testJPEG(t testing.TB, w, h int, opts jpegcodec.EncodeOptions) []byte {
	t.Helper()
	img := jpegcodec.NewRGBImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := byte((x*2654435761 + y*40503) >> 3)
			img.Set(x, y, v, v^0x5A, byte(x*y))
		}
	}
	defer img.Release()
	data, err := jpegcodec.Encode(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"zero value", Options{}, true},
		{"full knobs", Options{Scale: jpegcodec.Scale8, Quality: 90, Progressive: true, Script: "deepsa", Workers: 4}, true},
		{"empty script non-progressive", Options{Quality: 75}, true},
		{"quality too high", Options{Quality: 101}, false},
		{"quality negative", Options{Quality: -1}, false},
		{"unknown script", Options{Progressive: true, Script: "nope"}, false},
		{"script without progressive", Options{Script: "spectral"}, false},
		{"bad scale", Options{Scale: jpegcodec.Scale(3)}, false},
	}
	for _, c := range cases {
		err := c.opts.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok {
			if err == nil {
				t.Errorf("%s: validated; want error", c.name)
			} else if !errors.Is(err, ErrBadOptions) {
				t.Errorf("%s: error %v does not wrap ErrBadOptions", c.name, err)
			}
		}
	}
}

func TestTranscodeRoundTrip(t *testing.T) {
	src := testJPEG(t, 97, 75, jpegcodec.EncodeOptions{Quality: 90, Subsampling: jfif.Sub422})
	for _, c := range []struct {
		name  string
		opts  Options
		wantW int
		wantH int
	}{
		{"full size", Options{Quality: 85}, 97, 75},
		{"half", Options{Scale: jpegcodec.Scale2, Quality: 85}, 49, 38},
		{"eighth", Options{Scale: jpegcodec.Scale8, Quality: 85}, 13, 10},
		{"progressive", Options{Progressive: true, Script: "multiband"}, 97, 75},
	} {
		res, err := Transcode(src, c.opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.W != c.wantW || res.H != c.wantH {
			t.Errorf("%s: output %dx%d, want %dx%d", c.name, res.W, res.H, c.wantW, c.wantH)
		}
		out, err := jpegcodec.DecodeScalar(res.Data)
		if err != nil {
			t.Fatalf("%s: output does not re-decode: %v", c.name, err)
		}
		if out.W != c.wantW || out.H != c.wantH {
			t.Errorf("%s: re-decoded %dx%d, want %dx%d", c.name, out.W, out.H, c.wantW, c.wantH)
		}
		out.Release()
		if res.MCUs <= 0 || res.EncodeNs < 0 {
			t.Errorf("%s: bad accounting MCUs=%d EncodeNs=%d", c.name, res.MCUs, res.EncodeNs)
		}
		if want := c.opts.Class(); res.Class != want {
			t.Errorf("%s: class %v, want %v", c.name, res.Class, want)
		}
	}
}

// TestFastPathFlag pins when the coefficient-domain path runs: baseline
// input at 1/8 yes, progressive input at 1/8 no (progressive refinement
// needs full coefficient storage), baseline at other scales no.
func TestFastPathFlag(t *testing.T) {
	base := testJPEG(t, 160, 128, jpegcodec.EncodeOptions{Quality: 90})
	prog := testJPEG(t, 160, 128, jpegcodec.EncodeOptions{Quality: 90, Progressive: true})

	cases := []struct {
		name string
		src  []byte
		opts Options
		want bool
	}{
		{"baseline 1/8", base, Options{Scale: jpegcodec.Scale8}, true},
		{"baseline 1/4", base, Options{Scale: jpegcodec.Scale4}, false},
		{"baseline full", base, Options{}, false},
		{"progressive 1/8", prog, Options{Scale: jpegcodec.Scale8}, false},
	}
	for _, c := range cases {
		res, err := Transcode(c.src, c.opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.FastPath != c.want {
			t.Errorf("%s: FastPath=%v, want %v", c.name, res.FastPath, c.want)
		}
	}
}

// TestWorkerCountByteIdentity pins the encoder-and-decoder banding
// guarantee at the transcode level: every worker count emits the same
// bytes.
func TestWorkerCountByteIdentity(t *testing.T) {
	src := testJPEG(t, 97, 75, jpegcodec.EncodeOptions{Quality: 90, Subsampling: jfif.Sub420})
	opts := Options{Scale: jpegcodec.Scale2, Quality: 80, Subsampling: jfif.Sub420}
	ref, err := Transcode(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 1; workers <= 8; workers++ {
		o := opts
		o.Workers = workers
		res, err := Transcode(src, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(res.Data, ref.Data) {
			t.Errorf("workers=%d: output differs from sequential reference", workers)
		}
	}
}

func TestTranscodeErrors(t *testing.T) {
	if _, err := Transcode([]byte("not a jpeg"), Options{}); err == nil {
		t.Error("garbage input transcoded; want error")
	}
	if _, err := Transcode(nil, Options{Quality: 9000}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("bad quality: error %v does not wrap ErrBadOptions", err)
	}
}

func TestNaiveThumbnailMatchesGeometry(t *testing.T) {
	src := testJPEG(t, 97, 75, jpegcodec.EncodeOptions{Quality: 90})
	opts := Options{Scale: jpegcodec.Scale8, Quality: 85}
	naive, err := NaiveThumbnail(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Transcode(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if naive.W != fast.W || naive.H != fast.H {
		t.Errorf("naive %dx%d, fast path %dx%d; want identical geometry", naive.W, naive.H, fast.W, fast.H)
	}
	if naive.FastPath {
		t.Error("naive path reported FastPath")
	}
	// Full-size "thumbnail": the box filter degenerates to identity and
	// must not release the decoded image twice.
	full, err := NaiveThumbnail(src, Options{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	if full.W != 97 || full.H != 75 {
		t.Errorf("scale-1 naive output %dx%d, want 97x75", full.W, full.H)
	}
}

func pipelineOptions(sched batch.Scheduler, workers int) batch.Options {
	return batch.Options{
		Spec:      platform.ByName("GTX 560"),
		Mode:      core.ModePipelinedGPU,
		Workers:   workers,
		Scheduler: sched,
	}
}

// TestPipelineMatchesOneShot pins the tentpole's cross-engine
// guarantee: the batch pipeline (both schedulers) emits byte-identical
// transcodes to the one-shot scalar path.
func TestPipelineMatchesOneShot(t *testing.T) {
	srcs := [][]byte{
		testJPEG(t, 97, 75, jpegcodec.EncodeOptions{Quality: 90, Subsampling: jfif.Sub420}),
		testJPEG(t, 160, 128, jpegcodec.EncodeOptions{Quality: 85}),
	}
	opts := Options{Scale: jpegcodec.Scale8, Quality: 80}
	var refs [][]byte
	for _, src := range srcs {
		res, err := Transcode(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, res.Data)
	}
	for _, sched := range []batch.Scheduler{batch.SchedulerBands, batch.SchedulerPerImage} {
		p, err := NewPipeline(pipelineOptions(sched, 2))
		if err != nil {
			t.Fatal(err)
		}
		for i, src := range srcs {
			res, err := p.Transcode(context.Background(), src, opts)
			if err != nil {
				t.Fatalf("scheduler %v image %d: %v", sched, i, err)
			}
			if !bytes.Equal(res.Data, refs[i]) {
				t.Errorf("scheduler %v image %d: pipeline output differs from one-shot", sched, i)
			}
			if !res.FastPath {
				t.Errorf("scheduler %v image %d: baseline 1/8 did not take the fast path", sched, i)
			}
		}
		if p.Rates.Value(perfmodel.EncodeOptimized) <= 0 {
			t.Errorf("scheduler %v: pipeline did not observe encode rates", sched)
		}
		p.Close()
	}
}

func TestPipelineErrorPaths(t *testing.T) {
	p, err := NewPipeline(pipelineOptions(batch.SchedulerBands, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Transcode(context.Background(), []byte("junk"), Options{}); err == nil {
		t.Error("garbage input transcoded through pipeline; want error")
	}
	if _, err := p.Transcode(context.Background(), nil, Options{Script: "x"}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("bad options: %v does not wrap ErrBadOptions", err)
	}
}

func TestRates(t *testing.T) {
	var r Rates
	if r.Max() != 0 {
		t.Errorf("zero-value Max = %v, want 0", r.Max())
	}
	r.ObserveResult(&Result{EncodeNs: 1000, MCUs: 10, Class: perfmodel.EncodeOptimized})
	if v := r.Value(perfmodel.EncodeOptimized); v != 100 {
		t.Errorf("observed rate = %v, want 100", v)
	}
	// Degenerate observations are dropped, not folded in as zeros.
	r.ObserveResult(nil)
	r.ObserveResult(&Result{EncodeNs: 0, MCUs: 10})
	r.ObserveResult(&Result{EncodeNs: 10, MCUs: 0})
	if v := r.Value(perfmodel.EncodeOptimized); v != 100 {
		t.Errorf("rate after degenerate observations = %v, want 100", v)
	}

	var seeded Rates
	seeded.Calibrate()
	if seeded.Value(perfmodel.EncodeOptimized) <= 0 || seeded.Value(perfmodel.EncodeProgressive) <= 0 {
		t.Error("Calibrate left encode classes unseeded")
	}
}
