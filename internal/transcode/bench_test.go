package transcode

import (
	"testing"

	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
)

// Transcode benchmarks: the BENCH_7.json trajectory (`make
// bench-transcode`). The headline comparison is ThumbFastPath vs
// ThumbNaive on the same input and output geometry — the
// coefficient-domain DC-only thumbnail against the naive full decode +
// box downsample + encode, which the fast path must beat by ≥3×. The
// remaining rows track the pixel-path transcode per output flavor.

// benchInput builds the 2048×1536 4:2:0 bench-corpus geometry used by
// the decode trajectories — a photo-like generated scene (the hash
// fixture testJPEG emits is pure noise, which inflates the shared
// entropy stage and hides the back-phase difference under test) — as a
// baseline stream so the 1/8 path rides DC-only storage.
func benchInput(b *testing.B) []byte {
	img := imagegen.Generate(imagegen.Scene{Seed: 7300, Detail: 0.4}, 2048, 1536)
	data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{Quality: 85, Subsampling: jfif.Sub420})
	if err != nil {
		b.Fatal(err)
	}
	return data
}

func benchTranscode(b *testing.B, data []byte, opts Options, fn func([]byte, Options) (*Result, error)) {
	res, err := fn(data, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(res.W * res.H * 3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(data, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranscodeThumbFastPath is the DC-only 1/8 thumbnail: no
// pixel-domain IDCT runs on the decode side.
func BenchmarkTranscodeThumbFastPath(b *testing.B) {
	benchTranscode(b, benchInput(b), Options{Scale: jpegcodec.Scale8, Quality: 80}, Transcode)
}

// BenchmarkTranscodeThumbNaive is the same thumbnail by brute force:
// full-size decode, pixel-domain 8× box downsample, encode.
func BenchmarkTranscodeThumbNaive(b *testing.B) {
	benchTranscode(b, benchInput(b), Options{Scale: jpegcodec.Scale8, Quality: 80}, NaiveThumbnail)
}

// BenchmarkTranscodeHalf is the pixel path at 1/2 with chroma
// downsampling on the output.
func BenchmarkTranscodeHalf(b *testing.B) {
	benchTranscode(b, benchInput(b), Options{Scale: jpegcodec.Scale2, Quality: 85, Subsampling: jfif.Sub420}, Transcode)
}

// BenchmarkTranscodeFull is the full-size re-encode (quality change
// only) — decode and encode both at full geometry.
func BenchmarkTranscodeFull(b *testing.B) {
	benchTranscode(b, benchInput(b), Options{Quality: 75, Subsampling: jfif.Sub420}, Transcode)
}

// BenchmarkTranscodeProgressiveOut emits a progressive stream at 1/2:
// the multi-scan encoder under the spectral-selection script.
func BenchmarkTranscodeProgressiveOut(b *testing.B) {
	benchTranscode(b, benchInput(b), Options{Scale: jpegcodec.Scale2, Quality: 85, Progressive: true, Script: "spectral"}, Transcode)
}
