package harness

import (
	"testing"

	"hetjpeg/internal/core"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
	"hetjpeg/internal/sim"
)

// These tests pin the calibrated cost model to the measured anchors the
// paper reports in Section 6.1 for a 2048x2048 4:2:2 image. Bands are
// deliberately loose: the goal is the paper's qualitative landscape (who
// wins, by roughly what factor), not its exact numbers.

func fig9Data(t testing.TB) []byte {
	t.Helper()
	items, err := imagegen.SizeSweep(jfif.Sub422, 0.6, [][2]int{{2048, 2048}}, 9)
	if err != nil {
		t.Fatal(err)
	}
	return items[0].Data
}

func decodeV(t testing.TB, data []byte, mode core.Mode, spec *platform.Spec, model *perfmodel.Model) *core.Result {
	t.Helper()
	res, err := core.Decode(data, core.Options{Mode: mode, Spec: spec, Model: model, VirtualOnly: true})
	if err != nil {
		t.Fatalf("%v on %s: %v", mode, spec.Name, err)
	}
	return res
}

func TestCalibrationSIMDvsSequential(t *testing.T) {
	data := fig9Data(t)
	for _, spec := range platform.All() {
		seq := decodeV(t, data, core.ModeSequential, spec, nil)
		simd := decodeV(t, data, core.ModeSIMD, spec, nil)
		ratio := seq.TotalNs / simd.TotalNs
		t.Logf("%s: sequential/SIMD = %.2f (huff share of SIMD: %.0f%%)",
			spec.Name, ratio, 100*simd.HuffNs/simd.TotalNs)
		// Paper: "the SIMD-version decodes an image twice as fast as the
		// sequential version on an Intel i7".
		if ratio < 1.6 || ratio > 2.6 {
			t.Errorf("%s: sequential/SIMD ratio %.2f outside [1.6, 2.6]", spec.Name, ratio)
		}
	}
}

func TestCalibrationFigure9Anchors(t *testing.T) {
	data := fig9Data(t)

	type anchor struct {
		spec          *platform.Spec
		kernelVsSIMD  [2]float64 // kernel-only speedup over SIMD parallel phase
		gpuParVsSIMD  [2]float64 // incl. transfers
		totalVsSIMD   [2]float64 // whole GPU-mode total vs SIMD total
		wantGPUSlower bool
	}
	anchors := []anchor{
		// Paper: GT 430 GPU mode 23% *slower* than SIMD overall.
		{platform.GT430(), [2]float64{0.5, 1.6}, [2]float64{0.3, 1.0}, [2]float64{1.05, 1.5}, true},
		// Paper: kernels 10x faster than SIMD parallel phase, 2.6x with
		// transfers.
		{platform.GTX560(), [2]float64{7, 13}, [2]float64{2.0, 3.4}, [2]float64{0.55, 0.8}, false},
		// Paper: 13.7x kernels, 4.3x with transfers.
		{platform.GTX680(), [2]float64{10, 18}, [2]float64{3.2, 5.6}, [2]float64{0.5, 0.75}, false},
	}
	for _, a := range anchors {
		simd := decodeV(t, data, core.ModeSIMD, a.spec, nil)
		gpu := decodeV(t, data, core.ModeGPU, a.spec, nil)

		simdParallel := simd.TotalNs - simd.HuffNs
		bd := gpu.Timeline.TotalByKind()
		kernelNs := bd[sim.KindIDCT] + bd[sim.KindUpsample] + bd[sim.KindColor] + bd[sim.KindMergedKernel]
		gpuParallel := kernelNs + bd[sim.KindHostToDevice] + bd[sim.KindDeviceToHost] + bd[sim.KindDispatch]

		kRatio := simdParallel / kernelNs
		pRatio := simdParallel / gpuParallel
		tRatio := gpu.TotalNs / simd.TotalNs
		t.Logf("%s: kernel %.1fx, +transfers %.1fx, GPU-mode total %.2fx SIMD total",
			a.spec.Name, kRatio, pRatio, tRatio)

		if kRatio < a.kernelVsSIMD[0] || kRatio > a.kernelVsSIMD[1] {
			t.Errorf("%s: kernel-only ratio %.2f outside %v", a.spec.Name, kRatio, a.kernelVsSIMD)
		}
		if pRatio < a.gpuParVsSIMD[0] || pRatio > a.gpuParVsSIMD[1] {
			t.Errorf("%s: with-transfer ratio %.2f outside %v", a.spec.Name, pRatio, a.gpuParVsSIMD)
		}
		if a.wantGPUSlower {
			if tRatio < a.totalVsSIMD[0] || tRatio > a.totalVsSIMD[1] {
				t.Errorf("%s: GPU-mode total %.2fx SIMD outside %v (want slower)", a.spec.Name, tRatio, a.totalVsSIMD)
			}
		} else if tRatio < a.totalVsSIMD[0] || tRatio > a.totalVsSIMD[1] {
			t.Errorf("%s: GPU-mode total %.2fx SIMD outside %v", a.spec.Name, tRatio, a.totalVsSIMD)
		}
	}
}

func TestCalibrationModeOrdering(t *testing.T) {
	// On every machine: PPS >= SPS and PPS >= Pipeline >= GPU (within a
	// small tolerance), as in Tables 2 and 3.
	data := fig9Data(t)
	for _, spec := range platform.All() {
		model, err := perfmodel.TrainQuick(spec)
		if err != nil {
			t.Fatal(err)
		}
		speedup := func(mode core.Mode) float64 {
			simd := decodeV(t, data, core.ModeSIMD, spec, model)
			res := decodeV(t, data, mode, spec, model)
			return simd.TotalNs / res.TotalNs
		}
		gpu := speedup(core.ModeGPU)
		pipe := speedup(core.ModePipelinedGPU)
		sps := speedup(core.ModeSPS)
		pps := speedup(core.ModePPS)
		t.Logf("%s: gpu=%.2f pipeline=%.2f sps=%.2f pps=%.2f", spec.Name, gpu, pipe, sps, pps)
		const tol = 0.97
		if pipe < gpu*tol {
			t.Errorf("%s: pipeline (%.2f) slower than GPU (%.2f)", spec.Name, pipe, gpu)
		}
		if pps < pipe*tol {
			t.Errorf("%s: PPS (%.2f) slower than pipeline (%.2f)", spec.Name, pps, pipe)
		}
		if pps < sps*tol {
			t.Errorf("%s: PPS (%.2f) slower than SPS (%.2f)", spec.Name, pps, sps)
		}
		if sps < 1.0 {
			t.Errorf("%s: SPS (%.2f) failed to beat SIMD", spec.Name, sps)
		}
	}
}
