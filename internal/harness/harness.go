// Package harness regenerates every table and figure of the paper's
// evaluation (Section 6) from the reproduction: breakdowns, speedup
// sweeps, Amdahl-bound comparisons and load-balance measurements. Each
// experiment returns structured rows and can render itself as text, so
// cmd/experiments and the benchmark suite share one implementation.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hetjpeg/internal/core"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/mathx"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
	"hetjpeg/internal/sim"
)

// decodeVirtual runs a virtual-only decode and returns the result.
func decodeVirtual(data []byte, mode core.Mode, spec *platform.Spec, model *perfmodel.Model) (*core.Result, error) {
	return core.Decode(data, core.Options{
		Mode:        mode,
		Spec:        spec,
		Model:       model,
		VirtualOnly: true,
	})
}

// Mean and CV of a sample.
func meanCV(xs []float64) (mean, cv float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 || mean == 0 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	return mean, 100 * sd / mean
}

// ---------------------------------------------------------------------
// Table 1

// Table1Text renders the hardware specification table.
func Table1Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-16s %-16s %-16s\n", "Machine name", "GT 430", "GTX 560", "GTX 680")
	specs := platform.All()
	row := func(name string, f func(*platform.Spec) string) {
		fmt.Fprintf(&b, "%-22s %-16s %-16s %-16s\n", name, f(specs[0]), f(specs[1]), f(specs[2]))
	}
	row("CPU model", func(s *platform.Spec) string { return s.CPUModel })
	row("CPU frequency", func(s *platform.Spec) string { return fmt.Sprintf("%.1f GHz", s.CPUFreqGHz) })
	row("No. of CPU cores", func(s *platform.Spec) string { return fmt.Sprint(s.CPUCores) })
	row("GPU model", func(s *platform.Spec) string { return s.GPUModel })
	row("GPU core frequency", func(s *platform.Spec) string { return fmt.Sprintf("%d MHz", s.GPUCoreMHz) })
	row("No. of GPU cores", func(s *platform.Spec) string { return fmt.Sprint(s.GPUCores) })
	row("GPU memory size", func(s *platform.Spec) string { return fmt.Sprintf("%d MB", s.GPUMemMB) })
	row("Compute Capability", func(s *platform.Spec) string { return s.ComputeCap })
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 6: parallel phase scales linearly with pixels.

// Fig6Point is one measurement of the parallel phase.
type Fig6Point struct {
	Pixels int
	Sub    jfif.Subsampling
	SIMDNs float64
	GPUNs  float64
}

// Fig6Result carries the sweep and linearity fits.
type Fig6Result struct {
	Machine  string
	Points   []Fig6Point
	R2SIMD   float64
	R2GPU    float64
	SlopeTag string
}

// Figure6 measures the SIMD and GPU parallel-phase times over a size
// sweep for both subsamplings on one machine. Linearity is fitted per
// subsampling (the paper plots separate 4:2:2 and 4:4:4 series); the
// reported R² is the weaker of the two.
func Figure6(spec *platform.Spec, sizes [][2]int) (*Fig6Result, error) {
	res := &Fig6Result{Machine: spec.Name, R2SIMD: 1, R2GPU: 1}
	for _, sub := range []jfif.Subsampling{jfif.Sub422, jfif.Sub444} {
		items, err := imagegen.SizeSweep(sub, 0.6, sizes, 21)
		if err != nil {
			return nil, err
		}
		var xs, ysS, ysG []float64
		for _, it := range items {
			p, err := perfmodel.SummarizeItem(it)
			if err != nil {
				return nil, err
			}
			m := perfmodel.MeasureParallel(spec, p)
			res.Points = append(res.Points, Fig6Point{
				Pixels: it.W * it.H,
				Sub:    sub,
				SIMDNs: m.PCPU,
				GPUNs:  m.PGPU,
			})
			xs = append(xs, float64(it.W*it.H))
			ysS = append(ysS, m.PCPU)
			ysG = append(ysG, m.PGPU)
		}
		if r := linearR2(xs, ysS); r < res.R2SIMD {
			res.R2SIMD = r
		}
		if r := linearR2(xs, ysG); r < res.R2GPU {
			res.R2GPU = r
		}
	}
	return res, nil
}

func linearR2(xs, ys []float64) float64 {
	p, err := mathx.FitPoly1(xs, ys, 1)
	if err != nil {
		return 0
	}
	pred := make([]float64, len(xs))
	for i, x := range xs {
		pred[i] = p.Eval(x)
	}
	return mathx.RSquared(pred, ys)
}

// Text renders the figure as a table.
func (r *Fig6Result) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — parallel phase vs pixels on %s (R² SIMD=%.4f, GPU=%.4f)\n", r.Machine, r.R2SIMD, r.R2GPU)
	fmt.Fprintf(&b, "%10s %8s %12s %12s\n", "pixels", "sub", "SIMD ms", "GPU ms")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10d %8s %12.2f %12.2f\n", p.Pixels, p.Sub, p.SIMDNs/1e6, p.GPUNs/1e6)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 7: Huffman rate vs entropy density.

// Fig7Point is one image's Huffman decoding rate.
type Fig7Point struct {
	Density   float64
	NsPerPix  float64
	Sub       jfif.Subsampling
	PixelSize int
}

// Fig7Result carries the scatter and its linear fit quality.
type Fig7Result struct {
	Machine string
	Points  []Fig7Point
	R2      float64
	Slope   float64 // ns/pixel per (byte/pixel)
}

// Figure7 sweeps texture detail to produce the density-vs-rate scatter.
func Figure7(spec *platform.Spec, sub jfif.Subsampling) (*Fig7Result, error) {
	res := &Fig7Result{Machine: spec.Name}
	var xs, ys []float64
	for _, detail := range []float64{0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9, 1.0} {
		items, err := imagegen.SizeSweep(sub, detail, [][2]int{{320, 240}, {512, 512}, {800, 600}}, 33)
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			p, err := perfmodel.SummarizeItem(it)
			if err != nil {
				return nil, err
			}
			m := perfmodel.MeasureParallel(spec, p)
			nsPerPix := m.THuff / float64(it.W*it.H)
			res.Points = append(res.Points, Fig7Point{
				Density:   it.Density,
				NsPerPix:  nsPerPix,
				Sub:       sub,
				PixelSize: it.W * it.H,
			})
			xs = append(xs, it.Density)
			ys = append(ys, nsPerPix)
		}
	}
	res.R2 = linearR2(xs, ys)
	if p, err := mathx.FitPoly1(xs, ys, 1); err == nil {
		res.Slope = p.Coef[1]
	}
	return res, nil
}

// Text renders the scatter.
func (r *Fig7Result) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — Huffman rate vs entropy density on %s (R²=%.4f, slope=%.2f ns/px per B/px)\n",
		r.Machine, r.R2, r.Slope)
	fmt.Fprintf(&b, "%12s %14s %10s\n", "density B/px", "huffman ns/px", "pixels")
	pts := append([]Fig7Point(nil), r.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Density < pts[j].Density })
	for _, p := range pts {
		fmt.Fprintf(&b, "%12.4f %14.3f %10d\n", p.Density, p.NsPerPix, p.PixelSize)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 9: execution-time breakdown, 2048x2048, 4:2:2.

// Fig9Column is one stacked bar.
type Fig9Column struct {
	Machine    string
	Mode       core.Mode
	Breakdown  map[sim.Kind]float64
	TotalNs    float64
	VsSIMDNorm float64 // total normalized to the machine's SIMD total
}

// Figure9 decodes one 2048x2048 4:2:2 image in CPU, SIMD and GPU modes on
// every machine.
func Figure9(size int) ([]Fig9Column, error) {
	if size == 0 {
		size = 2048
	}
	items, err := imagegen.SizeSweep(jfif.Sub422, 0.6, [][2]int{{size, size}}, 9)
	if err != nil {
		return nil, err
	}
	data := items[0].Data
	var cols []Fig9Column
	for _, spec := range platform.All() {
		var simdTotal float64
		for _, mode := range []core.Mode{core.ModeSequential, core.ModeSIMD, core.ModeGPU} {
			res, err := decodeVirtual(data, mode, spec, nil)
			if err != nil {
				return nil, err
			}
			if mode == core.ModeSIMD {
				simdTotal = res.TotalNs
			}
			cols = append(cols, Fig9Column{
				Machine:   spec.Name,
				Mode:      mode,
				Breakdown: res.Timeline.TotalByKind(),
				TotalNs:   res.TotalNs,
			})
		}
		for i := len(cols) - 3; i < len(cols); i++ {
			cols[i].VsSIMDNorm = cols[i].TotalNs / simdTotal
		}
	}
	return cols, nil
}

// Fig9Text renders the breakdown columns.
func Fig9Text(cols []Fig9Column) string {
	var b strings.Builder
	b.WriteString("Figure 9 — decoding time breakdown, 2048x2048 4:2:2, normalized to SIMD\n")
	for _, c := range cols {
		fmt.Fprintf(&b, "%-8s %-10s total %8.2f ms (%.2fx SIMD)\n", c.Machine, c.Mode, c.TotalNs/1e6, c.VsSIMDNorm)
		kinds := make([]sim.Kind, 0, len(c.Breakdown))
		for k := range c.Breakdown {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		for _, k := range kinds {
			fmt.Fprintf(&b, "    %-16s %10.2f ms\n", k, c.Breakdown[k]/1e6)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Tables 2 & 3 and Figure 10: speedups over SIMD.

// SpeedupCell is one (machine, mode) aggregate.
type SpeedupCell struct {
	Machine string
	Mode    core.Mode
	Mean    float64
	CV      float64 // percent
}

// SpeedupTable computes mean speedup over SIMD per machine and mode for a
// corpus of one subsampling (Tables 2 and 3).
func SpeedupTable(sub jfif.Subsampling, corpus []imagegen.Item, models map[string]*perfmodel.Model) ([]SpeedupCell, error) {
	modes := []core.Mode{core.ModeGPU, core.ModePipelinedGPU, core.ModeSPS, core.ModePPS}
	var cells []SpeedupCell
	for _, spec := range platform.All() {
		model := models[spec.Name]
		samples := make(map[core.Mode][]float64)
		for _, it := range corpus {
			simdRes, err := decodeVirtual(it.Data, core.ModeSIMD, spec, model)
			if err != nil {
				return nil, err
			}
			for _, mode := range modes {
				res, err := decodeVirtual(it.Data, mode, spec, model)
				if err != nil {
					return nil, fmt.Errorf("%s %v %s: %w", spec.Name, mode, it.Name, err)
				}
				samples[mode] = append(samples[mode], simdRes.TotalNs/res.TotalNs)
			}
		}
		for _, mode := range modes {
			mean, cv := meanCV(samples[mode])
			cells = append(cells, SpeedupCell{Machine: spec.Name, Mode: mode, Mean: mean, CV: cv})
		}
	}
	return cells, nil
}

// SpeedupTableText renders a Table 2/3 style grid.
func SpeedupTableText(title string, cells []SpeedupCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-10s %-14s %-14s %-14s\n", title, "Mode", "GT 430", "GTX 560", "GTX 680")
	byMode := map[core.Mode]map[string]SpeedupCell{}
	for _, c := range cells {
		if byMode[c.Mode] == nil {
			byMode[c.Mode] = map[string]SpeedupCell{}
		}
		byMode[c.Mode][c.Machine] = c
	}
	for _, mode := range []core.Mode{core.ModeGPU, core.ModePipelinedGPU, core.ModeSPS, core.ModePPS} {
		fmt.Fprintf(&b, "%-10s", mode)
		for _, m := range []string{"GT 430", "GTX 560", "GTX 680"} {
			c := byMode[mode][m]
			fmt.Fprintf(&b, " %5.2f±%5.2f%% ", c.Mean, c.CV)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig10Point is one (pixels, mode) speedup sample.
type Fig10Point struct {
	Machine string
	Mode    core.Mode
	Pixels  int
	Speedup float64
}

// Figure10 sweeps image size and reports per-mode speedup over SIMD.
func Figure10(sub jfif.Subsampling, sizes [][2]int, models map[string]*perfmodel.Model) ([]Fig10Point, error) {
	items, err := imagegen.SizeSweep(sub, 0.6, sizes, 55)
	if err != nil {
		return nil, err
	}
	modes := []core.Mode{core.ModeGPU, core.ModePipelinedGPU, core.ModeSPS, core.ModePPS}
	var pts []Fig10Point
	for _, spec := range platform.All() {
		model := models[spec.Name]
		for _, it := range items {
			simdRes, err := decodeVirtual(it.Data, core.ModeSIMD, spec, model)
			if err != nil {
				return nil, err
			}
			for _, mode := range modes {
				res, err := decodeVirtual(it.Data, mode, spec, model)
				if err != nil {
					return nil, err
				}
				pts = append(pts, Fig10Point{
					Machine: spec.Name,
					Mode:    mode,
					Pixels:  it.W * it.H,
					Speedup: simdRes.TotalNs / res.TotalNs,
				})
			}
		}
	}
	return pts, nil
}

// Fig10Text renders the sweep.
func Fig10Text(pts []Fig10Point) string {
	var b strings.Builder
	b.WriteString("Figure 10 — speedup over SIMD vs image size\n")
	fmt.Fprintf(&b, "%-8s %-10s %10s %8s\n", "machine", "mode", "pixels", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-8s %-10s %10d %8.2f\n", p.Machine, p.Mode, p.Pixels, p.Speedup)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 11: percent of the theoretically attainable speedup.

// Fig11Point is one image's share of the Amdahl bound.
type Fig11Point struct {
	Pixels     int
	PPSSpeedup float64
	MaxSpeedup float64 // T_total(SIMD) / T_huff (Equation 19)
	Percent    float64
}

// Figure11 measures PPS against the attainable bound on one machine.
func Figure11(spec *platform.Spec, sub jfif.Subsampling, sizes [][2]int, model *perfmodel.Model) ([]Fig11Point, error) {
	items, err := imagegen.SizeSweep(sub, 0.6, sizes, 71)
	if err != nil {
		return nil, err
	}
	var pts []Fig11Point
	for _, it := range items {
		simdRes, err := decodeVirtual(it.Data, core.ModeSIMD, spec, model)
		if err != nil {
			return nil, err
		}
		ppsRes, err := decodeVirtual(it.Data, core.ModePPS, spec, model)
		if err != nil {
			return nil, err
		}
		speedup := simdRes.TotalNs / ppsRes.TotalNs
		maxSp := simdRes.TotalNs / simdRes.HuffNs
		pts = append(pts, Fig11Point{
			Pixels:     it.W * it.H,
			PPSSpeedup: speedup,
			MaxSpeedup: maxSp,
			Percent:    100 * speedup / maxSp,
		})
	}
	return pts, nil
}

// Fig11Text renders the bound comparison.
func Fig11Text(machine string, pts []Fig11Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11 — PPS vs attainable speedup on %s\n", machine)
	fmt.Fprintf(&b, "%10s %10s %10s %10s\n", "pixels", "PPS", "max", "percent")
	var mean float64
	for _, p := range pts {
		fmt.Fprintf(&b, "%10d %10.2f %10.2f %9.1f%%\n", p.Pixels, p.PPSSpeedup, p.MaxSpeedup, p.Percent)
		mean += p.Percent
	}
	if len(pts) > 0 {
		fmt.Fprintf(&b, "mean achievement: %.1f%%\n", mean/float64(len(pts)))
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 12: CPU/GPU balance during the parallel part.

// Fig12Point is one image's CPU and GPU busy time under a partitioned
// mode (entropy decoding excluded, as in the paper).
type Fig12Point struct {
	Machine string
	Mode    core.Mode
	Pixels  int
	CPUNs   float64
	GPUNs   float64
}

// Figure12 measures parallel-part balance for SPS and PPS.
func Figure12(sub jfif.Subsampling, sizes [][2]int, models map[string]*perfmodel.Model) ([]Fig12Point, error) {
	items, err := imagegen.SizeSweep(sub, 0.6, sizes, 83)
	if err != nil {
		return nil, err
	}
	var pts []Fig12Point
	for _, spec := range platform.All() {
		model := models[spec.Name]
		for _, mode := range []core.Mode{core.ModeSPS, core.ModePPS} {
			for _, it := range items {
				res, err := decodeVirtual(it.Data, mode, spec, model)
				if err != nil {
					return nil, err
				}
				// The paper's accounting: for SPS, CPU time omits all
				// entropy decoding (it precedes the parallel part); for
				// PPS only the first chunk's entropy decode is omitted —
				// the rest overlaps the GPU and counts as CPU-side work
				// of the parallel phase.
				cpu, gpu := 0.0, 0.0
				firstDispatchSeen := false
				var huffAfterFirstChunk float64
				for _, t := range res.Timeline.Tasks() {
					switch {
					case t.Resource == sim.ResGPU:
						gpu += t.Cost
					case t.Kind == sim.KindHuffman:
						if firstDispatchSeen {
							huffAfterFirstChunk += t.Cost
						}
					default:
						if t.Kind == sim.KindDispatch {
							firstDispatchSeen = true
						}
						cpu += t.Cost
					}
				}
				if mode == core.ModePPS {
					cpu += huffAfterFirstChunk
				}
				pts = append(pts, Fig12Point{
					Machine: spec.Name,
					Mode:    mode,
					Pixels:  it.W * it.H,
					CPUNs:   cpu,
					GPUNs:   gpu,
				})
			}
		}
	}
	return pts, nil
}

// Fig12Text renders the balance table.
func Fig12Text(pts []Fig12Point) string {
	var b strings.Builder
	b.WriteString("Figure 12 — CPU vs GPU time during parallel execution\n")
	fmt.Fprintf(&b, "%-8s %-6s %10s %10s %10s %9s\n", "machine", "mode", "pixels", "CPU ms", "GPU ms", "imbalance")
	for _, p := range pts {
		imb := 0.0
		if m := math.Max(p.CPUNs, p.GPUNs); m > 0 {
			imb = 100 * math.Abs(p.CPUNs-p.GPUNs) / m
		}
		fmt.Fprintf(&b, "%-8s %-6s %10d %10.2f %10.2f %8.1f%%\n",
			p.Machine, p.Mode, p.Pixels, p.CPUNs/1e6, p.GPUNs/1e6, imb)
	}
	return b.String()
}
