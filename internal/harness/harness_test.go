package harness

import (
	"strings"
	"testing"

	"hetjpeg/internal/core"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
)

var testSizes = [][2]int{{320, 240}, {640, 480}, {1024, 768}, {1536, 1152}}

func allQuickModels(t testing.TB) map[string]*perfmodel.Model {
	t.Helper()
	ms := map[string]*perfmodel.Model{}
	for _, spec := range platform.All() {
		m, err := perfmodel.TrainQuick(spec)
		if err != nil {
			t.Fatal(err)
		}
		ms[spec.Name] = m
	}
	return ms
}

func TestTable1TextMatchesPaper(t *testing.T) {
	txt := Table1Text()
	for _, want := range []string{
		"Intel i7-2600k", "Intel i7-3770k",
		"NVIDIA GT 430", "NVIDIA GTX 560Ti", "NVIDIA GTX 680",
		"96", "384", "1536", "2.1", "3.0",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table 1 text missing %q", want)
		}
	}
}

func TestFigure6Linearity(t *testing.T) {
	r, err := Figure6(platform.GTX560(), testSizes)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "the parallel phase scales linearly with respect to image
	// size" — acceptance band from DESIGN.md is R² > 0.98.
	if r.R2SIMD < 0.98 {
		t.Errorf("SIMD parallel phase R²=%.4f < 0.98", r.R2SIMD)
	}
	if r.R2GPU < 0.98 {
		t.Errorf("GPU parallel phase R²=%.4f < 0.98", r.R2GPU)
	}
	if len(r.Points) != 2*len(testSizes) {
		t.Fatalf("%d points want %d", len(r.Points), 2*len(testSizes))
	}
	if !strings.Contains(r.Text(), "Figure 6") {
		t.Error("text rendering broken")
	}
}

func TestFigure7Linearity(t *testing.T) {
	r, err := Figure7(platform.GTX560(), jfif.Sub422)
	if err != nil {
		t.Fatal(err)
	}
	if r.R2 < 0.9 {
		t.Errorf("Huffman rate vs density R²=%.4f < 0.9", r.R2)
	}
	if r.Slope <= 0 {
		t.Errorf("slope %.3f must be positive (denser images decode slower)", r.Slope)
	}
	if !strings.Contains(r.Text(), "Figure 7") {
		t.Error("text rendering broken")
	}
}

func TestFigure9Shape(t *testing.T) {
	cols, err := Figure9(1024) // smaller image for test speed; shape holds
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 9 {
		t.Fatalf("%d columns want 9 (3 machines x 3 modes)", len(cols))
	}
	byKey := map[string]Fig9Column{}
	for _, c := range cols {
		byKey[c.Machine+"/"+c.Mode.String()] = c
	}
	// Sequential is the slowest everywhere; GPU mode beats SIMD only on
	// the two big GPUs.
	for _, m := range []string{"GT 430", "GTX 560", "GTX 680"} {
		if byKey[m+"/sequential"].VsSIMDNorm <= 1.5 {
			t.Errorf("%s: sequential %.2fx SIMD, want ~2x", m, byKey[m+"/sequential"].VsSIMDNorm)
		}
	}
	if byKey["GT 430/gpu"].VsSIMDNorm <= 1.0 {
		t.Errorf("GT 430 GPU mode should be slower than SIMD, got %.2fx", byKey["GT 430/gpu"].VsSIMDNorm)
	}
	for _, m := range []string{"GTX 560", "GTX 680"} {
		if byKey[m+"/gpu"].VsSIMDNorm >= 1.0 {
			t.Errorf("%s GPU mode should beat SIMD, got %.2fx", m, byKey[m+"/gpu"].VsSIMDNorm)
		}
	}
	if !strings.Contains(Fig9Text(cols), "Figure 9") {
		t.Error("text rendering broken")
	}
}

func TestSpeedupTableShape(t *testing.T) {
	ms := allQuickModels(t)
	corpus, err := imagegen.Build(imagegen.CorpusOptions{
		Widths:   []int{320, 832},
		Heights:  []int{256, 640},
		Details:  []float64{0.2, 0.8},
		Sub:      jfif.Sub422,
		Quality:  85,
		SeedBase: 4242,
	})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := SpeedupTable(jfif.Sub422, corpus, ms)
	if err != nil {
		t.Fatal(err)
	}
	get := func(machine string, mode core.Mode) float64 {
		for _, c := range cells {
			if c.Machine == machine && c.Mode == mode {
				return c.Mean
			}
		}
		t.Fatalf("missing cell %s/%v", machine, mode)
		return 0
	}
	const tol = 0.97
	for _, m := range []string{"GT 430", "GTX 560", "GTX 680"} {
		gpu := get(m, core.ModeGPU)
		pipe := get(m, core.ModePipelinedGPU)
		sps := get(m, core.ModeSPS)
		pps := get(m, core.ModePPS)
		t.Logf("%s: gpu=%.2f pipe=%.2f sps=%.2f pps=%.2f", m, gpu, pipe, sps, pps)
		// Table 2's invariants: PPS wins; SPS and PPS always beat SIMD;
		// pipelining beats plain GPU mode.
		if pps < sps*tol || pps < pipe*tol {
			t.Errorf("%s: PPS (%.2f) is not the best mode (sps %.2f, pipe %.2f)", m, pps, sps, pipe)
		}
		if sps < 1.0 || pps < 1.0 {
			t.Errorf("%s: partitioned schemes below SIMD (sps %.2f, pps %.2f)", m, sps, pps)
		}
		if pipe < gpu*tol {
			t.Errorf("%s: pipeline (%.2f) below GPU mode (%.2f)", m, pipe, gpu)
		}
	}
	// GT 430's GPU mode loses to SIMD (the machine that motivates
	// partitioning).
	if g := get("GT 430", core.ModeGPU); g >= 1.0 {
		t.Errorf("GT 430 GPU mode %.2f should be < 1", g)
	}
	// Faster GPUs see larger PPS speedups.
	if !(get("GT 430", core.ModePPS) < get("GTX 560", core.ModePPS)) {
		t.Error("PPS speedup should grow with GPU tier (430 vs 560)")
	}
	txt := SpeedupTableText("Table 2", cells)
	if !strings.Contains(txt, "pps") || !strings.Contains(txt, "GT 430") {
		t.Error("table text rendering broken")
	}
}

func TestFigure10SpeedupGrowsWithSize(t *testing.T) {
	ms := allQuickModels(t)
	pts, err := Figure10(jfif.Sub444, testSizes, ms)
	if err != nil {
		t.Fatal(err)
	}
	// On the GTX 680, PPS speedup at the largest size should exceed the
	// smallest size (Figure 10's rising curves).
	var small, large float64
	minPix, maxPix := 1<<62, 0
	for _, p := range pts {
		if p.Pixels < minPix {
			minPix = p.Pixels
		}
		if p.Pixels > maxPix {
			maxPix = p.Pixels
		}
	}
	for _, p := range pts {
		if p.Machine == "GTX 680" && p.Mode == core.ModePPS {
			if p.Pixels == minPix {
				small = p.Speedup
			}
			if p.Pixels == maxPix {
				large = p.Speedup
			}
		}
	}
	if large <= small {
		t.Errorf("PPS speedup should rise with size: %.2f at %d px vs %.2f at %d px",
			small, minPix, large, maxPix)
	}
}

func TestFigure11AmdahlBand(t *testing.T) {
	ms := allQuickModels(t)
	pts, err := Figure11(platform.GTX680(), jfif.Sub444, testSizes, ms["GTX 680"])
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, p := range pts {
		if p.Percent > 100.5 {
			t.Errorf("achievement %.1f%% exceeds the Amdahl bound", p.Percent)
		}
		mean += p.Percent
	}
	mean /= float64(len(pts))
	t.Logf("mean achievement %.1f%% of the attainable speedup", mean)
	// DESIGN.md acceptance: mean >= 80% (paper: 88% avg, 95% peak).
	if mean < 80 {
		t.Errorf("mean achievement %.1f%% below the 80%% acceptance band", mean)
	}
}

func TestFigure12Balance(t *testing.T) {
	ms := allQuickModels(t)
	pts, err := Figure12(jfif.Sub444, testSizes, ms)
	if err != nil {
		t.Fatal(err)
	}
	// Median imbalance across two-sided schedules should be modest.
	var imbalances []float64
	for _, p := range pts {
		if p.CPUNs == 0 || p.GPUNs == 0 {
			continue // one-sided schedule: nothing to balance
		}
		m := p.CPUNs
		if p.GPUNs > m {
			m = p.GPUNs
		}
		d := p.CPUNs - p.GPUNs
		if d < 0 {
			d = -d
		}
		imbalances = append(imbalances, d/m)
	}
	if len(imbalances) == 0 {
		t.Skip("no two-sided schedules in this sweep")
	}
	var sum float64
	for _, v := range imbalances {
		sum += v
	}
	t.Logf("mean imbalance %.1f%% over %d two-sided schedules", 100*sum/float64(len(imbalances)), len(imbalances))
	if mean := sum / float64(len(imbalances)); mean > 0.35 {
		t.Errorf("mean CPU/GPU imbalance %.0f%% too high for balanced partitioning", 100*mean)
	}
	if !strings.Contains(Fig12Text(pts), "Figure 12") {
		t.Error("text rendering broken")
	}
}
