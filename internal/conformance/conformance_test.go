package conformance

import (
	"bytes"
	"fmt"
	"image"
	"image/jpeg"
	"strings"
	"sync"
	"testing"

	"hetjpeg/internal/batch"
	"hetjpeg/internal/core"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
)

// corpusSizes exercise partial MCUs on both axes (97 = 6×16+1,
// 75 = 4×16+11) alongside an aligned size.
var corpusSizes = [][2]int{{97, 75}, {160, 128}}

var (
	corpusOnce  sync.Once
	corpusItems []imagegen.Item
	corpusErr   error
)

// corpus returns the deterministic conformance corpus: baseline items
// over every subsampling (with and without restart intervals) plus the
// full progressive variant grid.
func corpus(t *testing.T) []imagegen.Item {
	t.Helper()
	corpusOnce.Do(func() {
		for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
			for _, ri := range []int{0, 5} {
				for si, wh := range corpusSizes {
					for di, detail := range []float64{0.2, 0.85} {
						img := imagegen.Generate(imagegen.Scene{
							Seed:   9000 + int64(int(sub)*100+ri*10+si*2+di),
							Detail: detail,
						}, wh[0], wh[1])
						data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{
							Quality:         85,
							Subsampling:     sub,
							RestartInterval: ri,
						})
						if err != nil {
							corpusErr = err
							return
						}
						corpusItems = append(corpusItems, imagegen.Item{
							Name:            fmt.Sprintf("base-%s-rst%d-d%.2f-%dx%d", sub, ri, detail, wh[0], wh[1]),
							Data:            data,
							W:               wh[0],
							H:               wh[1],
							Sub:             sub,
							Detail:          detail,
							RestartInterval: ri,
						})
					}
				}
			}
		}
		prog, err := imagegen.BuildProgressive(corpusSizes, []float64{0.3, 0.9}, 41000)
		if err != nil {
			corpusErr = err
			return
		}
		corpusItems = append(corpusItems, prog...)
	})
	if corpusErr != nil {
		t.Fatalf("building corpus: %v", corpusErr)
	}
	return corpusItems
}

// decodeFrames runs the single-threaded reference decode keeping the
// frame (sample planes) alive for plane-level comparison.
func decodeFrames(t *testing.T, it imagegen.Item) (*jpegcodec.Frame, *jpegcodec.RGBImage) {
	t.Helper()
	f, ed, err := jpegcodec.PrepareDecode(it.Data)
	if err != nil {
		t.Fatalf("%s: parse: %v", it.Name, err)
	}
	if err := ed.DecodeAll(); err != nil {
		t.Fatalf("%s: entropy decode: %v", it.Name, err)
	}
	out := jpegcodec.NewRGBImage(f.Img.Width, f.Img.Height)
	jpegcodec.ParallelPhaseScalar(f, 0, f.MCURows, out)
	return f, out
}

// planeDiff compares one component plane against a stdlib plane,
// returning the max absolute difference, the number of differing
// samples and a short sample of differing coordinates.
func planeDiff(ours []byte, stride int, theirs []byte, theirStride, w, h int) (maxd, count int, where string) {
	var locs []string
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := int(ours[y*stride+x]) - int(theirs[y*theirStride+x])
			if d < 0 {
				d = -d
			}
			if d > 0 {
				count++
				if d > maxd {
					maxd = d
				}
				if len(locs) < 5 {
					locs = append(locs, fmt.Sprintf("(%d,%d):%d vs %d", x, y, ours[y*stride+x], theirs[y*theirStride+x]))
				}
			}
		}
	}
	return maxd, count, strings.Join(locs, " ")
}

// stdlibComparable reports whether image/jpeg agrees with T.81 about
// the fixture's restart-marker placement (see the package comment).
func stdlibComparable(it imagegen.Item) bool {
	return !(it.Progressive && it.RestartInterval > 0 && it.Sub != jfif.Sub444)
}

// stdlibTolerance is the documented bound on per-sample divergence from
// image/jpeg: entropy decoding is exact on both sides, so the only
// difference is integer IDCT rounding (±1), for baseline and
// progressive alike.
const stdlibTolerance = 1

// TestConformanceStdlibDifferential decodes every corpus file with both
// hetjpeg and image/jpeg and compares the reconstructed YCbCr planes.
func TestConformanceStdlibDifferential(t *testing.T) {
	for _, it := range corpus(t) {
		it := it
		t.Run(it.Name, func(t *testing.T) {
			if !stdlibComparable(it) {
				t.Skipf("restart intervals in subsampled non-interleaved scans: image/jpeg counts frame MCUs, T.81 counts data units")
			}
			f, out := decodeFrames(t, it)
			defer f.Release()
			defer out.Release()

			std, err := jpeg.Decode(bytes.NewReader(it.Data))
			if err != nil {
				t.Fatalf("image/jpeg rejects fixture: %v", err)
			}
			ycc, ok := std.(*image.YCbCr)
			if !ok {
				t.Fatalf("image/jpeg returned %T, want *image.YCbCr", std)
			}

			names := []string{"Y", "Cb", "Cr"}
			theirs := [][]byte{ycc.Y, ycc.Cb, ycc.Cr}
			strides := []int{ycc.YStride, ycc.CStride, ycc.CStride}
			for c := range f.Planes {
				p := f.Planes[c]
				maxd, count, where := planeDiff(f.Samples[c], p.PlaneW(), theirs[c], strides[c], p.CompW, p.CompH)
				if maxd > stdlibTolerance {
					t.Errorf("%s plane: %d samples differ, max |diff| = %d (tolerance %d); first: %s",
						names[c], count, maxd, stdlibTolerance, where)
				}
			}
		})
	}
}

var conformSpec = platform.ByName("GTX 560")

var (
	modelOnce sync.Once
	model     *perfmodel.Model
	modelErr  error
)

func trainedModel(t *testing.T) *perfmodel.Model {
	t.Helper()
	// TrainQuick fits the same regression on a reduced grid — the SPS/PPS
	// split decisions differ slightly from the full fit, but every split
	// must produce identical pixels anyway, which is the property under test.
	modelOnce.Do(func() { model, modelErr = perfmodel.TrainQuick(conformSpec) })
	if modelErr != nil {
		t.Fatalf("training model: %v", modelErr)
	}
	return model
}

// TestConformanceModesIdentical decodes every corpus file under all six
// execution modes (several CPU worker counts for the CPU-tile modes)
// and asserts the RGB output is byte-identical to the scalar reference.
func TestConformanceModesIdentical(t *testing.T) {
	m := trainedModel(t)
	for _, it := range corpus(t) {
		it := it
		t.Run(it.Name, func(t *testing.T) {
			_, ref := decodeFrames(t, it)
			defer ref.Release()
			for _, mode := range core.AllModes() {
				for _, cw := range []int{0, 3} {
					res, err := core.Decode(it.Data, core.Options{
						Mode:       mode,
						Spec:       conformSpec,
						Model:      m,
						CPUWorkers: cw,
					})
					if err != nil {
						t.Fatalf("mode %v workers %d: %v", mode, cw, err)
					}
					if !bytes.Equal(res.Image.Pix, ref.Pix) {
						t.Errorf("mode %v workers %d: pixels differ from scalar reference%s",
							mode, cw, firstPixelDiff(res.Image, ref))
					}
					if res.Stats.EntropyScans > 1 != it.Progressive {
						t.Errorf("mode %v: EntropyScans = %d, progressive = %v", mode, res.Stats.EntropyScans, it.Progressive)
					}
					res.Release()
				}
			}
		})
	}
}

// TestConformanceSchedulersWorkers decodes the whole corpus as batches
// through both wall-clock schedulers at worker counts 1..8 and asserts
// every image is byte-identical to the scalar reference.
func TestConformanceSchedulersWorkers(t *testing.T) {
	items := corpus(t)
	datas := make([][]byte, len(items))
	refs := make([]*jpegcodec.RGBImage, len(items))
	for i, it := range items {
		datas[i] = it.Data
		_, refs[i] = decodeFrames(t, it)
	}
	workerCounts := []int{1, 2, 3, 5, 8}
	if testing.Short() {
		workerCounts = []int{1, 4}
	}
	for _, sched := range []batch.Scheduler{batch.SchedulerBands, batch.SchedulerPerImage} {
		for _, workers := range workerCounts {
			name := fmt.Sprintf("sched%d-w%d", sched, workers)
			res, err := batch.Decode(datas, batch.Options{
				Spec:      conformSpec,
				Workers:   workers,
				Scheduler: sched,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i, ir := range res.Images {
				if ir.Err != nil {
					t.Errorf("%s: image %s failed: %v", name, items[i].Name, ir.Err)
					continue
				}
				if !bytes.Equal(ir.Res.Image.Pix, refs[i].Pix) {
					t.Errorf("%s: image %s differs from scalar reference%s",
						name, items[i].Name, firstPixelDiff(ir.Res.Image, refs[i]))
				}
				ir.Res.Release()
			}
		}
	}
}

// firstPixelDiff renders a short report of the first differing pixels.
func firstPixelDiff(got, want *jpegcodec.RGBImage) string {
	if got.W != want.W || got.H != want.H {
		return fmt.Sprintf(" (dimensions %dx%d vs %dx%d)", got.W, got.H, want.W, want.H)
	}
	var locs []string
	for y := 0; y < got.H && len(locs) < 5; y++ {
		for x := 0; x < got.W && len(locs) < 5; x++ {
			gr, gg, gb := got.At(x, y)
			wr, wg, wb := want.At(x, y)
			if gr != wr || gg != wg || gb != wb {
				locs = append(locs, fmt.Sprintf("(%d,%d): got %d,%d,%d want %d,%d,%d", x, y, gr, gg, gb, wr, wg, wb))
			}
		}
	}
	if locs == nil {
		return ""
	}
	return "; first: " + strings.Join(locs, " ")
}
