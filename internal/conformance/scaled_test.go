package conformance

import (
	"bytes"
	"fmt"
	"testing"

	"hetjpeg/internal/batch"
	"hetjpeg/internal/core"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jpegcodec"
)

// Scaled conformance: decode-to-scale output must be byte-identical to
// the scalar scaled reference (DecodeScalarScaled) across every
// execution mode, both batch schedulers and all worker counts, for the
// full baseline + progressive corpus. Scale 1 rides along to pin the
// scaled plumbing's identity with the original full-size path.

var conformScales = []jpegcodec.Scale{jpegcodec.Scale1, jpegcodec.Scale2, jpegcodec.Scale4, jpegcodec.Scale8}

// scaledRef decodes one corpus item with the single-threaded scalar
// scaled reference.
func scaledRef(t *testing.T, it imagegen.Item, scale jpegcodec.Scale) *jpegcodec.RGBImage {
	t.Helper()
	img, err := jpegcodec.DecodeScalarScaled(it.Data, scale)
	if err != nil {
		t.Fatalf("%s scale %v: scalar reference: %v", it.Name, scale, err)
	}
	return img
}

// TestConformanceScaledModesIdentical decodes every corpus file at
// every scale under all six execution modes (and several CPU worker
// counts) and asserts the RGB output is byte-identical to the scalar
// scaled reference.
func TestConformanceScaledModesIdentical(t *testing.T) {
	m := trainedModel(t)
	scales := conformScales
	workerCounts := []int{0, 3}
	if testing.Short() {
		scales = []jpegcodec.Scale{jpegcodec.Scale2, jpegcodec.Scale8}
		workerCounts = []int{0}
	}
	for _, it := range corpus(t) {
		it := it
		t.Run(it.Name, func(t *testing.T) {
			for _, scale := range scales {
				ref := scaledRef(t, it, scale)
				for _, mode := range core.AllModes() {
					for _, cw := range workerCounts {
						res, err := core.Decode(it.Data, core.Options{
							Mode:       mode,
							Spec:       conformSpec,
							Model:      m,
							CPUWorkers: cw,
							Scale:      scale,
						})
						if err != nil {
							t.Fatalf("scale %v mode %v workers %d: %v", scale, mode, cw, err)
						}
						if !bytes.Equal(res.Image.Pix, ref.Pix) {
							t.Errorf("scale %v mode %v workers %d: pixels differ from scalar scaled reference%s",
								scale, mode, cw, firstPixelDiff(res.Image, ref))
						}
						if res.Stats.Scale != scale.Denominator() {
							t.Errorf("scale %v mode %v: Stats.Scale = %d", scale, mode, res.Stats.Scale)
						}
						res.Release()
					}
				}
				ref.Release()
			}
		})
	}
}

// TestConformanceScaledSchedulersWorkers decodes the whole corpus as
// batches at every scale through both wall-clock schedulers and worker
// counts 1-8, asserting every image matches the scalar scaled
// reference.
func TestConformanceScaledSchedulersWorkers(t *testing.T) {
	items := corpus(t)
	datas := make([][]byte, len(items))
	for i, it := range items {
		datas[i] = it.Data
	}
	scales := conformScales
	workerCounts := []int{1, 2, 3, 5, 8}
	if testing.Short() {
		scales = []jpegcodec.Scale{jpegcodec.Scale8}
		workerCounts = []int{1, 4}
	}
	for _, scale := range scales {
		refs := make([]*jpegcodec.RGBImage, len(items))
		for i, it := range items {
			refs[i] = scaledRef(t, it, scale)
		}
		for _, sched := range []batch.Scheduler{batch.SchedulerBands, batch.SchedulerPerImage} {
			for _, workers := range workerCounts {
				name := fmt.Sprintf("scale%v-sched%d-w%d", scale, sched, workers)
				res, err := batch.Decode(datas, batch.Options{
					Spec:      conformSpec,
					Workers:   workers,
					Scheduler: sched,
					Scale:     scale,
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for i, ir := range res.Images {
					if ir.Err != nil {
						t.Errorf("%s: image %s failed: %v", name, items[i].Name, ir.Err)
						continue
					}
					if !bytes.Equal(ir.Res.Image.Pix, refs[i].Pix) {
						t.Errorf("%s: image %s differs from scalar scaled reference%s",
							name, items[i].Name, firstPixelDiff(ir.Res.Image, refs[i]))
					}
					ir.Res.Release()
				}
			}
		}
		for _, r := range refs {
			r.Release()
		}
	}
}
