package conformance

import (
	"bytes"
	"fmt"
	"image/jpeg"
	"math"
	"testing"

	"hetjpeg/internal/batch"
	"hetjpeg/internal/core"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/transcode"
)

// Transcode conformance: the decode → scale → re-encode pipeline is
// gated three ways. Distortion: encoder-alone and full-transcode round
// trips must hold the committed per-quality PSNR / max-error floors
// (the encoder side decoded with Go's image/jpeg, so the floors also
// prove stdlib interoperability of optimized-Huffman and progressive
// output). Exactness: the coefficient-domain DC-only fast path must
// re-encode bit-identically to the pixel round trip at 1/8. Identity:
// transcoding through the batch pipeline must produce the same bytes
// as the one-shot path for both schedulers, worker counts 1-8 and
// every execution mode.

// rgbDistortion compares two same-geometry RGB images: PSNR over all
// channels (+Inf when identical) and the worst single-channel error.
func rgbDistortion(a, b *jpegcodec.RGBImage) (psnr float64, maxErr int) {
	var sq float64
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
		sq += float64(d * d)
	}
	if sq == 0 {
		return math.Inf(1), 0
	}
	mse := sq / float64(len(a.Pix))
	return 10 * math.Log10(255*255/mse), maxErr
}

// stdlibRGB decodes a JPEG stream with Go's image/jpeg and flattens it
// to RGB through the stdlib's own color conversion.
func stdlibRGB(t *testing.T, data []byte) *jpegcodec.RGBImage {
	t.Helper()
	std, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("image/jpeg rejects our encoder's output: %v", err)
	}
	b := std.Bounds()
	out := jpegcodec.NewRGBImage(b.Dx(), b.Dy())
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			r, g, bb, _ := std.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out.Set(x, y, byte(r>>8), byte(g>>8), byte(bb>>8))
		}
	}
	return out
}

// qualityFloor is a committed distortion bound for one quality factor:
// PSNR must not drop below minPSNR dB and no channel of any pixel may
// be off by more than maxErr. Lowering a floor to make a change pass
// is a quality regression by definition.
type qualityFloor struct {
	minPSNR float64
	maxErr  int
}

// encoderFloors bound the encoder-alone round trip (our encoder, Go's
// image/jpeg decoder, detail-0.5 synthetic scene). The measured values
// on the committed encoder are ~3 dB above each floor.
var encoderFloors = map[int]qualityFloor{
	50: {minPSNR: 33.0, maxErr: 28},
	75: {minPSNR: 34.5, maxErr: 24},
	90: {minPSNR: 36.5, maxErr: 20},
	95: {minPSNR: 39.0, maxErr: 16},
}

// TestConformanceEncoderRoundTrip encodes a synthetic scene at each
// committed quality — baseline 4:4:4, baseline 4:2:0 and progressive —
// decodes the stream with Go's image/jpeg, and holds the per-quality
// distortion floors against the pre-encode pixels.
func TestConformanceEncoderRoundTrip(t *testing.T) {
	src := imagegen.Generate(imagegen.Scene{Seed: 7100, Detail: 0.5}, 160, 128)
	variants := []struct {
		name string
		opts jpegcodec.EncodeOptions
	}{
		{"baseline-444", jpegcodec.EncodeOptions{Subsampling: jfif.Sub444, OptimizeHuffman: true}},
		{"baseline-420", jpegcodec.EncodeOptions{Subsampling: jfif.Sub420, OptimizeHuffman: true}},
		{"progressive-444", jpegcodec.EncodeOptions{Subsampling: jfif.Sub444, Progressive: true}},
	}
	for _, q := range []int{50, 75, 90, 95} {
		floor := encoderFloors[q]
		for _, v := range variants {
			t.Run(fmt.Sprintf("q%d-%s", q, v.name), func(t *testing.T) {
				opts := v.opts
				opts.Quality = q
				data, err := jpegcodec.Encode(src, opts)
				if err != nil {
					t.Fatal(err)
				}
				got := stdlibRGB(t, data)
				defer got.Release()
				psnr, maxErr := rgbDistortion(src, got)
				t.Logf("q=%d %s: PSNR %.2f dB, max error %d, %d bytes", q, v.name, psnr, maxErr, len(data))
				if psnr < floor.minPSNR {
					t.Errorf("PSNR %.2f dB below committed floor %.1f", psnr, floor.minPSNR)
				}
				if maxErr > floor.maxErr {
					t.Errorf("max channel error %d above committed bound %d", maxErr, floor.maxErr)
				}
			})
		}
	}
}

// transcodeFloors bound the full-size pixel-path transcode round trip
// (decode → re-encode at quality q → decode again, both decodes ours),
// measured against the decoded input pixels. At q ≥ the input's own
// quality (90) the re-encode is nearly idempotent — requantizing
// already-quantized coefficients — so those floors sit much higher
// than the encoder-alone ones.
var transcodeFloors = map[int]qualityFloor{
	50: {minPSNR: 34.5, maxErr: 26},
	75: {minPSNR: 36.5, maxErr: 22},
	90: {minPSNR: 47.0, maxErr: 8},
	95: {minPSNR: 47.0, maxErr: 9},
}

// TestConformanceTranscodeDistortionFloors runs the full-size pixel
// path at every committed quality and holds the round-trip floors.
func TestConformanceTranscodeDistortionFloors(t *testing.T) {
	src := imagegen.Generate(imagegen.Scene{Seed: 7200, Detail: 0.5}, 160, 128)
	input, err := jpegcodec.Encode(src, jpegcodec.EncodeOptions{Quality: 90, Subsampling: jfif.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := jpegcodec.DecodeScalar(input)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Release()

	for _, q := range []int{50, 75, 90, 95} {
		floor := transcodeFloors[q]
		t.Run(fmt.Sprintf("q%d", q), func(t *testing.T) {
			res, err := transcode.Transcode(input, transcode.Options{Quality: q})
			if err != nil {
				t.Fatal(err)
			}
			if res.FastPath {
				t.Error("full-size transcode claimed the DC-only fast path")
			}
			out, err := jpegcodec.DecodeScalar(res.Data)
			if err != nil {
				t.Fatalf("transcoded output does not decode: %v", err)
			}
			defer out.Release()
			psnr, maxErr := rgbDistortion(orig, out)
			t.Logf("q=%d: PSNR %.2f dB, max error %d, %d -> %d bytes", q, psnr, maxErr, len(input), len(res.Data))
			if psnr < floor.minPSNR {
				t.Errorf("PSNR %.2f dB below committed floor %.1f", psnr, floor.minPSNR)
			}
			if maxErr > floor.maxErr {
				t.Errorf("max channel error %d above committed bound %d", maxErr, floor.maxErr)
			}
		})
	}
}

// TestConformanceTranscodeFastPathExact pins the coefficient-domain
// guarantee: for every baseline corpus item, the 1/8 transcode must
// report the DC-only fast path and its output bytes must be identical
// to explicitly decoding the scaled pixels with the scalar reference
// and running them through the same encoder — no distortion tolerance,
// a single differing byte is a bug.
func TestConformanceTranscodeFastPathExact(t *testing.T) {
	opts := transcode.Options{Scale: jpegcodec.Scale8, Quality: 85}
	for _, it := range corpus(t) {
		it := it
		t.Run(it.Name, func(t *testing.T) {
			res, err := transcode.Transcode(it.Data, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.FastPath != !it.Progressive {
				t.Errorf("FastPath = %v for progressive=%v input", res.FastPath, it.Progressive)
			}
			ref := scaledRef(t, it, jpegcodec.Scale8)
			defer ref.Release()
			want, err := transcode.EncodeImage(ref, opts, false, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(res.Data, want.Data) {
				t.Errorf("1/8 transcode differs from the pixel round trip (%d vs %d bytes)", len(res.Data), len(want.Data))
			}
		})
	}
}

// transcodeIdentityOpts is the option grid for the byte-identity
// matrix: the DC fast path, a pixel path with chroma downsampling, and
// a progressive multi-scan output.
var transcodeIdentityOpts = []transcode.Options{
	{Scale: jpegcodec.Scale8, Quality: 75},
	{Scale: jpegcodec.Scale2, Quality: 90, Subsampling: jfif.Sub420},
	{Quality: 85, Progressive: true, Script: "spectral"},
}

// TestConformanceTranscodeSchedulersWorkers transcodes a corpus subset
// through the batch pipeline under both wall-clock schedulers and
// worker counts 1-8, asserting every output is byte-identical to the
// one-shot path.
func TestConformanceTranscodeSchedulersWorkers(t *testing.T) {
	items := corpus(t)
	// Every 3rd item keeps baseline × progressive × subsampling variety
	// without running the full corpus through each pipeline config.
	var subset []imagegen.Item
	for i := 0; i < len(items); i += 3 {
		subset = append(subset, items[i])
	}
	workerCounts := []int{1, 2, 3, 5, 8}
	if testing.Short() {
		workerCounts = []int{1, 4}
	}
	for oi, opts := range transcodeIdentityOpts {
		refs := make([][]byte, len(subset))
		for i, it := range subset {
			res, err := transcode.Transcode(it.Data, opts)
			if err != nil {
				t.Fatalf("opts %d: one-shot %s: %v", oi, it.Name, err)
			}
			refs[i] = res.Data
		}
		for _, sched := range []batch.Scheduler{batch.SchedulerBands, batch.SchedulerPerImage} {
			for _, workers := range workerCounts {
				name := fmt.Sprintf("opts%d-sched%d-w%d", oi, sched, workers)
				p, err := transcode.NewPipeline(batch.Options{
					Spec:      conformSpec,
					Workers:   workers,
					Scheduler: sched,
					Scale:     opts.Scale,
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				popts := opts
				popts.Workers = workers
				for i, it := range subset {
					res, err := p.Transcode(t.Context(), it.Data, popts)
					if err != nil {
						t.Errorf("%s: %s: %v", name, it.Name, err)
						continue
					}
					if !bytes.Equal(res.Data, refs[i]) {
						t.Errorf("%s: %s differs from the one-shot transcode", name, it.Name)
					}
				}
				p.Close()
			}
		}
	}
}

// TestConformanceTranscodeModesIdentical runs the pipeline under every
// execution mode (the scheduler above pins the wall-clock engines; this
// pins the per-image decode kernels) and asserts byte identity with the
// one-shot path on the DC fast-path options.
func TestConformanceTranscodeModesIdentical(t *testing.T) {
	m := trainedModel(t)
	items := corpus(t)
	subset := []imagegen.Item{items[0], items[len(items)-1]}
	opts := transcodeIdentityOpts[0]
	refs := make([][]byte, len(subset))
	for i, it := range subset {
		res, err := transcode.Transcode(it.Data, opts)
		if err != nil {
			t.Fatalf("one-shot %s: %v", it.Name, err)
		}
		refs[i] = res.Data
	}
	for _, mode := range core.AllModes() {
		p, err := transcode.NewPipeline(batch.Options{
			Spec:    conformSpec,
			Model:   m,
			Mode:    mode,
			Workers: 2,
			Scale:   opts.Scale,
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for i, it := range subset {
			res, err := p.Transcode(t.Context(), it.Data, opts)
			if err != nil {
				t.Errorf("mode %v: %s: %v", mode, it.Name, err)
				continue
			}
			if !bytes.Equal(res.Data, refs[i]) {
				t.Errorf("mode %v: %s differs from the one-shot transcode", mode, it.Name)
			}
		}
		p.Close()
	}
}
