package conformance

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"hetjpeg/internal/batch"
	"hetjpeg/internal/core"
	"hetjpeg/internal/faultgen"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
)

// The fault-injection gate: systematically corrupted streams must never
// panic, strict-mode behavior must be unchanged (an error, exactly as
// before), and salvage mode must recover what the committed per-fixture
// floors promise — with every execution mode and both batch schedulers
// producing byte-identical salvaged pixels.
//
// The invariant linking the two modes is deliberately one-directional:
// a strict error implies an impaired (or failed) salvage, and a clean
// salvage implies a clean strict decode with identical pixels. The
// converse does not hold — salvage's resynchronization cross-checks
// restart-marker numbering that strict decoding trusts, so salvage can
// flag corruption strict mode silently mangles through.

// faultFixture is one stream the fault families are applied to.
type faultFixture struct {
	name string
	data []byte
	// truncFloor is the committed minimum recovered-MCU fraction for
	// truncations in the last quarter of the stream.
	truncFloor float64
}

var (
	faultOnce     sync.Once
	faultFixtures []faultFixture
	faultErr      error
)

// fixtures builds the fault corpus: baseline with and without restart
// markers plus progressive with both, small enough that the every-byte
// truncation sweep stays fast.
func fixtures(t *testing.T) []faultFixture {
	t.Helper()
	faultOnce.Do(func() {
		type cfg struct {
			name        string
			sub         jfif.Subsampling
			ri          int
			progressive bool
			truncFloor  float64
		}
		// The floors are measured minima minus slack: regressions that
		// lose recovery show up as a floor breach, improvements don't.
		// Measured minima on the deterministic fixtures: 0.633, 0.658,
		// 1.000, 1.000 (the progressive DC scan sits early in the
		// stream, so late cuts cost refinement only).
		for _, c := range []cfg{
			{"base-rst4", jfif.Sub420, 4, false, 0.55},
			{"base-norst", jfif.Sub444, 0, false, 0.55},
			{"prog-rst4", jfif.Sub420, 4, true, 0.95},
			{"prog-norst", jfif.Sub422, 0, true, 0.95},
		} {
			img := imagegen.Generate(imagegen.Scene{Seed: 8200 + int64(c.ri), Detail: 0.6}, 96, 80)
			data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{
				Quality:         85,
				Subsampling:     c.sub,
				RestartInterval: c.ri,
				Progressive:     c.progressive,
			})
			img.Release()
			if err != nil {
				faultErr = err
				return
			}
			faultFixtures = append(faultFixtures, faultFixture{
				name: c.name, data: data, truncFloor: c.truncFloor,
			})
		}
	})
	if faultErr != nil {
		t.Fatalf("building fault fixtures: %v", faultErr)
	}
	return faultFixtures
}

// checkReport asserts the structural invariants of a salvage report.
func checkReport(t *testing.T, name string, rep *jpegcodec.SalvageReport) {
	t.Helper()
	if rep == nil {
		return
	}
	covered := 0
	prevEnd := -1
	for _, d := range rep.Damaged {
		if d.NumMCU <= 0 || d.FirstMCU < 0 || d.FirstMCU+d.NumMCU > rep.TotalMCUs {
			t.Fatalf("%s: bad damaged region %+v (total %d)", name, d, rep.TotalMCUs)
		}
		if d.FirstMCU <= prevEnd {
			t.Fatalf("%s: damaged regions unsorted or overlapping at %+v", name, d)
		}
		prevEnd = d.FirstMCU + d.NumMCU - 1
		covered += d.NumMCU
	}
	if rep.RecoveredMCUs+covered != rep.TotalMCUs {
		t.Fatalf("%s: recovered %d + damaged %d != total %d",
			name, rep.RecoveredMCUs, covered, rep.TotalMCUs)
	}
	if rep.Impaired() {
		if len(rep.Errors) == 0 {
			t.Fatalf("%s: impaired report with no recorded errors", name)
		}
		if !errors.Is(rep.Err(), jpegcodec.ErrPartialData) {
			t.Fatalf("%s: report error does not wrap ErrPartialData: %v", name, rep.Err())
		}
	}
}

// salvageOutcome decodes one corrupted variant in both modes and
// asserts the cross-mode invariant. It returns the salvage image (nil
// if nothing was salvageable) and report; the caller releases the
// image.
func salvageOutcome(t *testing.T, name string, data []byte) (*jpegcodec.RGBImage, *jpegcodec.SalvageReport) {
	t.Helper()
	strictImg, strictErr := jpegcodec.DecodeScalar(data)
	img, rep, err := jpegcodec.DecodeScalarSalvage(data)
	checkReport(t, name, rep)
	if img != nil && rep == nil {
		// Salvage saw a clean stream: strict must agree, byte for byte.
		if strictErr != nil {
			t.Fatalf("%s: salvage clean but strict failed: %v", name, strictErr)
		}
		if !bytes.Equal(img.Pix, strictImg.Pix) {
			t.Fatalf("%s: clean salvage pixels differ from strict", name)
		}
	}
	if strictErr != nil && img != nil && !rep.Impaired() {
		t.Fatalf("%s: strict failed (%v) but salvage reports an unimpaired decode", name, strictErr)
	}
	if err != nil && img != nil && !errors.Is(err, jpegcodec.ErrPartialData) {
		t.Fatalf("%s: salvage returned image with non-partial error: %v", name, err)
	}
	if strictImg != nil {
		strictImg.Release()
	}
	return img, rep
}

// TestFaultTruncationSweep truncates each fixture at every byte (a
// stride in -short mode) and asserts: no panic, the salvage invariants,
// recovery monotonic in the cut point, and the committed floor for cuts
// in the last quarter of the stream.
func TestFaultTruncationSweep(t *testing.T) {
	stride := 1
	if testing.Short() {
		stride = 17
	}
	for _, fx := range fixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			spans := faultgen.EntropySpans(fx.data)
			lastSpanEnd := spans[len(spans)-1].End
			prevRecovered := 0
			minLate := 1.0
			for _, f := range faultgen.Truncations(fx.data, 2, stride) {
				img, rep := salvageOutcome(t, f.Name, f.Data)
				if img != nil && rep == nil {
					// A cut past the last entropy byte only loses trailer
					// markers; the decode is legitimately clean (recovery
					// 1.0, trivially monotonic — truncation cuts only grow).
					if len(f.Data) < lastSpanEnd {
						t.Fatalf("%s: mid-entropy truncation salvaged as clean", f.Name)
					}
					img.Release()
					continue
				}
				recovered, total := 0, 0
				if img != nil {
					recovered, total = rep.RecoveredMCUs, rep.TotalMCUs
					img.Release()
				}
				if recovered < prevRecovered {
					t.Fatalf("%s: recovery not monotonic: %d MCUs after %d at the previous cut",
						f.Name, recovered, prevRecovered)
				}
				prevRecovered = recovered
				if total > 0 && len(f.Data) >= len(fx.data)*3/4 {
					if frac := float64(recovered) / float64(total); frac < minLate {
						minLate = frac
					}
				}
			}
			t.Logf("%s: min late-cut recovery %.3f (floor %.2f)", fx.name, minLate, fx.truncFloor)
			if minLate < fx.truncFloor {
				t.Errorf("%s: late-cut recovery %.3f below committed floor %.2f",
					fx.name, minLate, fx.truncFloor)
			}
		})
	}
}

// TestFaultBitFlips flips bits at deterministic positions inside every
// entropy span and asserts the no-panic and cross-mode invariants.
func TestFaultBitFlips(t *testing.T) {
	n := 48
	if testing.Short() {
		n = 12
	}
	for _, fx := range fixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			spans := faultgen.EntropySpans(fx.data)
			if len(spans) == 0 {
				t.Fatalf("no entropy spans found")
			}
			for si, span := range spans {
				for _, f := range faultgen.BitFlips(fx.data, span, n/len(spans)+1, uint64(si)*977+13) {
					name := fmt.Sprintf("span%d-%s", si, f.Name)
					img, _ := salvageOutcome(t, name, f.Data)
					if img != nil {
						img.Release()
					}
				}
			}
		})
	}
}

// TestFaultRSTMutations drops, duplicates and renumbers every restart
// marker. These are structural faults salvage must always produce an
// image for: the entropy bytes themselves are intact.
func TestFaultRSTMutations(t *testing.T) {
	for _, fx := range fixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			var faults []faultgen.Fault
			for _, span := range faultgen.EntropySpans(fx.data) {
				faults = append(faults, faultgen.RSTMutations(fx.data, span)...)
			}
			if len(faults) == 0 {
				t.Skipf("fixture has no restart markers")
			}
			for _, f := range faults {
				img, rep := salvageOutcome(t, f.Name, f.Data)
				if img == nil {
					t.Fatalf("%s: salvage produced no image for a marker-structure fault", f.Name)
				}
				if rep != nil && rep.TotalMCUs > 0 && rep.RecoveredMCUs*2 < rep.TotalMCUs {
					t.Errorf("%s: a single marker fault lost %d of %d MCUs",
						f.Name, rep.TotalMCUs-rep.RecoveredMCUs, rep.TotalMCUs)
				}
				img.Release()
			}
		})
	}
}

// TestFaultLengthCorruptions corrupts the container's marker segment
// lengths. These may be beyond salvage (no decodable frame); the gate
// is no panic plus the cross-mode invariants.
func TestFaultLengthCorruptions(t *testing.T) {
	for _, fx := range fixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			for _, f := range faultgen.LengthCorruptions(fx.data) {
				img, _ := salvageOutcome(t, f.Name, f.Data)
				if img != nil {
					img.Release()
				}
			}
		})
	}
}

// modeIdentityFaults picks one representative of each fault family per
// fixture for the expensive all-modes sweep.
func modeIdentityFaults(fx faultFixture) []faultgen.Fault {
	spans := faultgen.EntropySpans(fx.data)
	if len(spans) == 0 {
		return nil
	}
	span := spans[0]
	cut := span.Start + (span.End-span.Start)*2/3
	faults := []faultgen.Fault{
		{Name: "trunc-twothirds", Data: fx.data[:cut]},
	}
	faults = append(faults, faultgen.BitFlips(fx.data, span, 2, 4242)...)
	if rst := faultgen.RSTMutations(fx.data, span); len(rst) > 0 {
		faults = append(faults, rst[0], rst[1])
	}
	return faults
}

// TestFaultModeIdentity decodes corrupted variants through every
// execution mode and both batch schedulers and asserts pixels and
// salvage reports are identical to the scalar salvage reference —
// salvage decisions live in the sequential entropy stage, so no mode
// may diverge.
func TestFaultModeIdentity(t *testing.T) {
	m := trainedModel(t)
	for _, fx := range fixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			for _, f := range modeIdentityFaults(fx) {
				ref, refRep, refErr := jpegcodec.DecodeScalarSalvage(f.Data)
				if ref == nil {
					continue // nothing salvageable: nothing to compare
				}
				for _, mode := range core.AllModes() {
					res, err := core.Decode(f.Data, core.Options{
						Mode: mode, Spec: conformSpec, Model: m, Salvage: true,
					})
					if res == nil {
						t.Fatalf("%s mode %v: salvage decode failed entirely: %v", f.Name, mode, err)
					}
					if (err != nil) != (refErr != nil) {
						t.Fatalf("%s mode %v: error presence %v, reference %v", f.Name, mode, err, refErr)
					}
					if err != nil && !errors.Is(err, jpegcodec.ErrPartialData) {
						t.Fatalf("%s mode %v: error does not wrap ErrPartialData: %v", f.Name, mode, err)
					}
					if !bytes.Equal(res.Image.Pix, ref.Pix) {
						t.Errorf("%s mode %v: salvaged pixels differ from scalar reference%s",
							f.Name, mode, firstPixelDiff(res.Image, ref))
					}
					compareReports(t, fmt.Sprintf("%s mode %v", f.Name, mode), res.Salvage, refRep)
					res.Release()
				}
				for _, sched := range []batch.Scheduler{batch.SchedulerBands, batch.SchedulerPerImage} {
					for _, workers := range []int{1, 4} {
						name := fmt.Sprintf("%s sched%d-w%d", f.Name, sched, workers)
						bres, err := batch.Decode([][]byte{f.Data, fx.data, f.Data}, batch.Options{
							Spec: conformSpec, Workers: workers, Scheduler: sched, Salvage: true,
						})
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						for i, ir := range bres.Images {
							if ir.Res == nil {
								t.Fatalf("%s image %d: no result: %v", name, i, ir.Err)
							}
							want := ref
							if i == 1 {
								if ir.Err != nil {
									t.Fatalf("%s: clean sibling image reported error: %v", name, ir.Err)
								}
								ir.Res.Release()
								continue
							}
							if (ir.Err != nil) != (refErr != nil) {
								t.Fatalf("%s image %d: error presence %v, reference %v", name, i, ir.Err, refErr)
							}
							if !bytes.Equal(ir.Res.Image.Pix, want.Pix) {
								t.Errorf("%s image %d: salvaged pixels differ from scalar reference%s",
									name, i, firstPixelDiff(ir.Res.Image, want))
							}
							compareReports(t, fmt.Sprintf("%s image %d", name, i), ir.Res.Salvage, refRep)
							ir.Res.Release()
						}
						if refErr != nil && bres.Salvaged != 2 {
							t.Errorf("%s: Salvaged = %d, want 2", name, bres.Salvaged)
						}
					}
				}
				ref.Release()
			}
		})
	}
}

// compareReports asserts two salvage reports describe the same damage.
func compareReports(t *testing.T, name string, got, want *jpegcodec.SalvageReport) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: salvage report presence %v, reference %v", name, got != nil, want != nil)
	}
	if got == nil {
		return
	}
	if got.TotalMCUs != want.TotalMCUs || got.RecoveredMCUs != want.RecoveredMCUs ||
		got.Resyncs != want.Resyncs || !reflect.DeepEqual(got.Damaged, want.Damaged) {
		t.Errorf("%s: salvage report differs: got {total %d recovered %d resyncs %d damaged %v}, want {total %d recovered %d resyncs %d damaged %v}",
			name, got.TotalMCUs, got.RecoveredMCUs, got.Resyncs, got.Damaged,
			want.TotalMCUs, want.RecoveredMCUs, want.Resyncs, want.Damaged)
	}
}
