// Package conformance is the decoder's differential conformance
// harness. Its tests decode a deterministic generated corpus — baseline
// and progressive, every subsampling, restart intervals, all scan
// scripts — through every execution mode and both batch schedulers at
// worker counts 1..8, asserting byte-identical RGB output across all of
// them, and compare the reconstructed YCbCr sample planes against Go's
// standard library image/jpeg decoder.
//
// Tolerances, and why they are what they are:
//
//   - Within hetjpeg (modes × schedulers × worker counts): exact. Every
//     configuration consumes the same whole-image coefficient buffer and
//     the same kernels, so a single differing byte is a bug.
//   - Against image/jpeg, baseline and progressive: max ±1 per YCbCr
//     sample. Entropy decoding is exact in both decoders (quantized
//     coefficients are integers); the difference is the two codebases'
//     integer IDCT rounding, each conformant to the T.81 accuracy
//     requirements. Comparison happens on the sample planes, before
//     upsampling and color conversion, because image/jpeg returns
//     subsampled YCbCr and applies no chroma interpolation — RGB-level
//     comparison would measure upsampling-filter choice, not decoding.
//   - Progressive fixtures that combine chroma subsampling with restart
//     intervals are excluded from the stdlib comparison only: T.81
//     A.2.2 counts the restart interval in data units for
//     non-interleaved scans (one block each, as libjpeg implements),
//     while image/jpeg counts padded frame MCUs, so the two decoders
//     disagree about where RSTn markers fall whenever a scan component
//     has more than one block per frame MCU. For 4:4:4 the two units
//     coincide and the comparison runs.
package conformance
