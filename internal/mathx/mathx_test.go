package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: y = 2 + 3x.
	a := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	b := []float64{2, 5, 8, 11}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("x=%v want [2 3]", x)
	}
}

func TestLeastSquaresMinimizesResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, n := 40, 4
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.NormFloat64()
		}
		b[i] = rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	resid := func(x []float64) float64 {
		var s float64
		for i := range a {
			var p float64
			for j := range x {
				p += a[i][j] * x[j]
			}
			d := p - b[i]
			s += d * d
		}
		return s
	}
	base := resid(x)
	// Perturbing the solution must not reduce the residual.
	for trial := 0; trial < 50; trial++ {
		y := append([]float64(nil), x...)
		y[rng.Intn(n)] += rng.NormFloat64() * 0.1
		if resid(y) < base-1e-9 {
			t.Fatalf("perturbation improved residual: %v < %v", resid(y), base)
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system accepted")
	}
	if _, err := LeastSquares([][]float64{{1}, {1}}, []float64{1}); err == nil {
		t.Error("rhs size mismatch accepted")
	}
}

func TestPoly1FitEvalDeriv(t *testing.T) {
	// y = 1 - 2x + 0.5x^3
	truth := Poly1{Coef: []float64{1, -2, 0, 0.5}}
	var xs, ys []float64
	for x := -3.0; x <= 3.0; x += 0.25 {
		xs = append(xs, x)
		ys = append(ys, truth.Eval(x))
	}
	p, err := FitPoly1(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range truth.Coef {
		if math.Abs(p.Coef[i]-c) > 1e-8 {
			t.Fatalf("coef %d: %v want %v", i, p.Coef[i], c)
		}
	}
	// Derivative: -2 + 1.5x^2.
	if d := p.Deriv(2); math.Abs(d-4) > 1e-8 {
		t.Fatalf("deriv(2)=%v want 4", d)
	}
}

func TestFitPoly1AICPrefersTrueDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := Poly1{Coef: []float64{3, 1.5}} // linear
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 10
		xs = append(xs, x)
		ys = append(ys, truth.Eval(x)+rng.NormFloat64()*0.01)
	}
	p, err := FitPoly1AIC(xs, ys, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degree() > 3 {
		t.Fatalf("AIC chose degree %d for linear data", p.Degree())
	}
	if math.Abs(p.Eval(5)-truth.Eval(5)) > 0.05 {
		t.Fatalf("prediction off: %v vs %v", p.Eval(5), truth.Eval(5))
	}
}

func TestPoly2FitEval(t *testing.T) {
	// z = 2 + w + 3h + 0.5wh
	truthEval := func(w, h float64) float64 { return 2 + w + 3*h + 0.5*w*h }
	var ws, hs, zs []float64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		w, h := rng.Float64()*10, rng.Float64()*10
		ws = append(ws, w)
		hs = append(hs, h)
		zs = append(zs, truthEval(w, h))
	}
	p, err := FitPoly2(ws, hs, zs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		w, h := rng.Float64()*10, rng.Float64()*10
		if math.Abs(p.Eval(w, h)-truthEval(w, h)) > 1e-6 {
			t.Fatalf("eval(%v,%v)=%v want %v", w, h, p.Eval(w, h), truthEval(w, h))
		}
	}
}

func TestPoly2DerivH(t *testing.T) {
	// z = w^2 + 4h^2 + wh: dz/dh = 8h + w.
	var ws, hs, zs []float64
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 60; i++ {
		w, h := rng.Float64()*5, rng.Float64()*5
		ws = append(ws, w)
		hs = append(hs, h)
		zs = append(zs, w*w+4*h*h+w*h)
	}
	p, err := FitPoly2(ws, hs, zs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		w, h := rng.Float64()*5, rng.Float64()*5
		want := 8*h + w
		if got := p.DerivH(w, h); math.Abs(got-want) > 1e-6 {
			t.Fatalf("derivH(%v,%v)=%v want %v", w, h, got, want)
		}
	}
}

func TestPoly2DerivHMatchesNumeric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		deg := 1 + rng.Intn(4)
		p := Poly2{Deg: deg, Coef: make([]float64, NumTerms2(deg))}
		for i := range p.Coef {
			p.Coef[i] = rng.NormFloat64()
		}
		w := rng.Float64() * 3
		h := 1 + rng.Float64()*3
		const eps = 1e-6
		num := (p.Eval(w, h+eps) - p.Eval(w, h-eps)) / (2 * eps)
		return math.Abs(num-p.DerivH(w, h)) < 1e-3*(1+math.Abs(num))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHornerEquivalence(t *testing.T) {
	// Eval (nested Horner) must equal the naive power-sum form.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		deg := 1 + rng.Intn(5)
		p := Poly2{Deg: deg, Coef: make([]float64, NumTerms2(deg))}
		for i := range p.Coef {
			p.Coef[i] = rng.NormFloat64()
		}
		w := rng.Float64() * 4
		h := rng.Float64() * 4
		var naive float64
		idx := 0
		for j := 0; j <= deg; j++ {
			for i := 0; i+j <= deg; i++ {
				naive += p.Coef[idx] * math.Pow(w, float64(i)) * math.Pow(h, float64(j))
				idx++
			}
		}
		return math.Abs(naive-p.Eval(w, h)) < 1e-9*(1+math.Abs(naive))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewtonFindsRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x - 9 }
	fp := func(x float64) float64 { return 2 * x }
	root := Newton(f, fp, 1, 0, 10, 50, 1e-9)
	if math.Abs(root-3) > 1e-6 {
		t.Fatalf("root=%v want 3", root)
	}
}

func TestNewtonBisectionFallback(t *testing.T) {
	// Flat derivative near start; bisection must still converge.
	f := func(x float64) float64 { return math.Tanh(x-5) + 0.5 }
	fp := func(x float64) float64 { s := math.Cosh(x - 5); return 1 / (s * s) }
	root := Newton(f, fp, 0.01, 0, 10, 80, 1e-9)
	want := 5 + math.Atanh(-0.5)
	if math.Abs(root-want) > 1e-4 {
		t.Fatalf("root=%v want %v", root, want)
	}
}

func TestNewtonSaturatesWithoutSignChange(t *testing.T) {
	// f > 0 everywhere: the nearer-to-zero endpoint is returned.
	f := func(x float64) float64 { return x + 10 }
	fp := func(x float64) float64 { return 1 }
	if got := Newton(f, fp, 5, 0, 10, 50, 1e-9); got != 0 {
		t.Fatalf("got %v want 0 (lo endpoint closer to root)", got)
	}
	g := func(x float64) float64 { return -x - 10 }
	if got := Newton(g, fp, 5, 0, 10, 50, 1e-9); got != 0 {
		t.Fatalf("got %v want 0", got)
	}
}

func TestAICPenalizesParameters(t *testing.T) {
	// Equal RSS: more parameters must yield larger (worse) AIC.
	if AIC(100, 2, 50) >= AIC(100, 8, 50) {
		t.Fatal("AIC does not penalize parameter count")
	}
	// Lower RSS wins at equal parameter count.
	if AIC(100, 3, 10) >= AIC(100, 3, 100) {
		t.Fatal("AIC does not reward fit quality")
	}
}

func TestRSquared(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	if r := RSquared(obs, obs); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect fit R²=%v", r)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r := RSquared(mean, obs); math.Abs(r) > 1e-12 {
		t.Fatalf("mean predictor R²=%v want 0", r)
	}
}
