// Package mathx provides the numerical tools behind the performance
// model: linear least squares via Householder QR, univariate and
// bivariate polynomial regression with Horner-form evaluation, Akaike
// information criterion model selection, and a guarded Newton root
// solver for the run-time partitioning equations.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// LeastSquares solves min ||A x - b||_2 for x using Householder QR with
// column pivoting disabled (design matrices here are well conditioned
// after column scaling). A is row-major: len(A) rows, each of width n.
func LeastSquares(a [][]float64, b []float64) ([]float64, error) {
	m := len(a)
	if m == 0 {
		return nil, errors.New("mathx: empty system")
	}
	n := len(a[0])
	if m < n {
		return nil, fmt.Errorf("mathx: underdetermined system (%d rows, %d cols)", m, n)
	}
	if len(b) != m {
		return nil, fmt.Errorf("mathx: rhs size %d != %d rows", len(b), m)
	}
	// Column scaling improves conditioning for polynomial bases.
	scale := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += a[i][j] * a[i][j]
		}
		s = math.Sqrt(s)
		if s == 0 {
			s = 1
		}
		scale[j] = s
	}
	// Working copies.
	r := make([][]float64, m)
	for i := range r {
		r[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			r[i][j] = a[i][j] / scale[j]
		}
	}
	qtb := append([]float64(nil), b...)

	for k := 0; k < n; k++ {
		// Householder vector for column k.
		var norm float64
		for i := k; i < m; i++ {
			norm += r[i][k] * r[i][k]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, errors.New("mathx: rank-deficient design matrix")
		}
		if r[k][k] > 0 {
			norm = -norm
		}
		v := make([]float64, m-k)
		for i := k; i < m; i++ {
			v[i-k] = r[i][k]
		}
		v[0] -= norm
		var vv float64
		for _, x := range v {
			vv += x * x
		}
		if vv == 0 {
			return nil, errors.New("mathx: degenerate Householder step")
		}
		// Apply to R.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * r[i][j]
			}
			f := 2 * dot / vv
			for i := k; i < m; i++ {
				r[i][j] -= f * v[i-k]
			}
		}
		// Apply to b.
		var dot float64
		for i := k; i < m; i++ {
			dot += v[i-k] * qtb[i]
		}
		f := 2 * dot / vv
		for i := k; i < m; i++ {
			qtb[i] -= f * v[i-k]
		}
	}

	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= r[i][j] * x[j]
		}
		if r[i][i] == 0 {
			return nil, errors.New("mathx: singular R")
		}
		x[i] = s / r[i][i]
	}
	for j := range x {
		x[j] /= scale[j]
	}
	return x, nil
}

// RSS computes the residual sum of squares of prediction pred vs observed.
func RSS(pred, obs []float64) float64 {
	var s float64
	for i := range pred {
		d := pred[i] - obs[i]
		s += d * d
	}
	return s
}

// AIC computes the Akaike information criterion for a least-squares fit
// with n observations, k parameters and residual sum of squares rss
// (Gaussian likelihood form), with the small-sample correction (AICc).
// The correction matters here: training grids are modest, and without it
// the degree selection overfits scatter, producing polynomials that
// swing wildly just outside the training range (the hazard the paper
// notes in Section 5.1).
func AIC(n, k int, rss float64) float64 {
	if rss <= 0 {
		rss = 1e-300
	}
	aic := float64(n)*math.Log(rss/float64(n)) + 2*float64(k)
	if n-k-1 > 0 {
		aic += 2 * float64(k) * float64(k+1) / float64(n-k-1)
	} else {
		// Too few samples for the correction: disqualify this fit.
		aic = math.Inf(1)
	}
	return aic
}

// RSquared returns the coefficient of determination of pred vs obs.
func RSquared(pred, obs []float64) float64 {
	var mean float64
	for _, y := range obs {
		mean += y
	}
	mean /= float64(len(obs))
	var tot float64
	for _, y := range obs {
		d := y - mean
		tot += d * d
	}
	if tot == 0 {
		return 1
	}
	return 1 - RSS(pred, obs)/tot
}
