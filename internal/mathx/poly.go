package mathx

import (
	"errors"
	"fmt"
)

// Poly1 is a univariate polynomial c0 + c1 x + ... evaluated in Horner
// form (the paper rearranges all run-time polynomials this way, Section
// 5.1).
type Poly1 struct {
	Coef []float64 `json:"coef"`
}

// Eval evaluates the polynomial at x.
func (p Poly1) Eval(x float64) float64 {
	var acc float64
	for i := len(p.Coef) - 1; i >= 0; i-- {
		acc = acc*x + p.Coef[i]
	}
	return acc
}

// Deriv evaluates the first derivative at x.
func (p Poly1) Deriv(x float64) float64 {
	var acc float64
	for i := len(p.Coef) - 1; i >= 1; i-- {
		acc = acc*x + float64(i)*p.Coef[i]
	}
	return acc
}

// Degree returns the polynomial degree.
func (p Poly1) Degree() int { return len(p.Coef) - 1 }

// FitPoly1 fits a degree-deg polynomial to (xs, ys) by least squares.
func FitPoly1(xs, ys []float64, deg int) (Poly1, error) {
	if len(xs) != len(ys) {
		return Poly1{}, errors.New("mathx: mismatched sample slices")
	}
	if len(xs) < deg+1 {
		return Poly1{}, fmt.Errorf("mathx: %d samples cannot fit degree %d", len(xs), deg)
	}
	a := make([][]float64, len(xs))
	for i, x := range xs {
		row := make([]float64, deg+1)
		v := 1.0
		for j := 0; j <= deg; j++ {
			row[j] = v
			v *= x
		}
		a[i] = row
	}
	coef, err := LeastSquares(a, ys)
	if err != nil {
		return Poly1{}, err
	}
	return Poly1{Coef: coef}, nil
}

// FitPoly1AIC fits polynomials of degree 1..maxDeg and returns the one
// minimizing AIC (the paper's model selection, degree up to 7).
func FitPoly1AIC(xs, ys []float64, maxDeg int) (Poly1, error) {
	var best Poly1
	bestAIC := 0.0
	found := false
	for deg := 1; deg <= maxDeg; deg++ {
		p, err := FitPoly1(xs, ys, deg)
		if err != nil {
			continue
		}
		pred := make([]float64, len(xs))
		for i, x := range xs {
			pred[i] = p.Eval(x)
		}
		aic := AIC(len(xs), deg+1, RSS(pred, ys))
		if !found || aic < bestAIC {
			best, bestAIC, found = p, aic, true
		}
	}
	if !found {
		return Poly1{}, errors.New("mathx: no degree could be fitted")
	}
	return best, nil
}

// Poly2 is a bivariate polynomial over (w, h) with terms w^i h^j for
// i+j <= Degree, stored in graded order. Evaluation nests Horner in h
// with inner Horner polynomials in w.
type Poly2 struct {
	Deg  int       `json:"deg"`
	Coef []float64 `json:"coef"` // indexed by TermIndex
}

// NumTerms2 returns the number of terms of a bivariate polynomial of
// total degree deg.
func NumTerms2(deg int) int { return (deg + 1) * (deg + 2) / 2 }

// termIndex maps exponents (i, j), i+j <= deg, to a linear index grouped
// by j (power of h) then i.
func termIndex(deg, i, j int) int {
	// Terms with h-power < j: sum_{t<j} (deg - t + 1)
	idx := 0
	for t := 0; t < j; t++ {
		idx += deg - t + 1
	}
	return idx + i
}

// Eval evaluates the polynomial at (w, h) via nested Horner.
func (p Poly2) Eval(w, h float64) float64 {
	var acc float64
	for j := p.Deg; j >= 0; j-- {
		// Inner polynomial in w of degree p.Deg-j.
		var inner float64
		for i := p.Deg - j; i >= 0; i-- {
			inner = inner*w + p.Coef[termIndex(p.Deg, i, j)]
		}
		acc = acc*h + inner
	}
	return acc
}

// DerivH evaluates the partial derivative with respect to h at (w, h) —
// the f'(x) Newton's method needs (Section 5.2, Equation 11).
func (p Poly2) DerivH(w, h float64) float64 {
	var acc float64
	for j := p.Deg; j >= 1; j-- {
		var inner float64
		for i := p.Deg - j; i >= 0; i-- {
			inner = inner*w + p.Coef[termIndex(p.Deg, i, j)]
		}
		acc = acc*h + float64(j)*inner
	}
	return acc
}

// FitPoly2 fits a total-degree-deg bivariate polynomial to samples
// (ws[i], hs[i]) -> ys[i].
func FitPoly2(ws, hs, ys []float64, deg int) (Poly2, error) {
	if len(ws) != len(hs) || len(ws) != len(ys) {
		return Poly2{}, errors.New("mathx: mismatched sample slices")
	}
	n := NumTerms2(deg)
	if len(ws) < n {
		return Poly2{}, fmt.Errorf("mathx: %d samples cannot fit %d terms", len(ws), n)
	}
	a := make([][]float64, len(ws))
	for s := range ws {
		row := make([]float64, n)
		for j := 0; j <= deg; j++ {
			hv := powf(hs[s], j)
			for i := 0; i+j <= deg; i++ {
				row[termIndex(deg, i, j)] = powf(ws[s], i) * hv
			}
		}
		a[s] = row
	}
	coef, err := LeastSquares(a, ys)
	if err != nil {
		return Poly2{}, err
	}
	return Poly2{Deg: deg, Coef: coef}, nil
}

// FitPoly2AIC fits total degrees 1..maxDeg and returns the AIC-best.
func FitPoly2AIC(ws, hs, ys []float64, maxDeg int) (Poly2, error) {
	var best Poly2
	bestAIC := 0.0
	found := false
	for deg := 1; deg <= maxDeg; deg++ {
		p, err := FitPoly2(ws, hs, ys, deg)
		if err != nil {
			continue
		}
		pred := make([]float64, len(ws))
		for i := range ws {
			pred[i] = p.Eval(ws[i], hs[i])
		}
		aic := AIC(len(ws), NumTerms2(deg), RSS(pred, ys))
		if !found || aic < bestAIC {
			best, bestAIC, found = p, aic, true
		}
	}
	if !found {
		return Poly2{}, errors.New("mathx: no bivariate degree could be fitted")
	}
	return best, nil
}

func powf(x float64, n int) float64 {
	v := 1.0
	for ; n > 0; n-- {
		v *= x
	}
	return v
}
