package mathx

// Newton finds a root of f in [lo, hi] by Newton's method (Equation 11 of
// the paper) guarded by bisection: steps leaving the bracket, or taken
// with a vanishing derivative, fall back to bisecting the current
// bracket. f must satisfy sign(f(lo)) != sign(f(hi)) for the guarantee to
// hold; otherwise the nearer endpoint is returned.
func Newton(f, fprime func(float64) float64, x0, lo, hi float64, maxIter int, tol float64) float64 {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo
	}
	if fhi == 0 {
		return hi
	}
	if (flo > 0) == (fhi > 0) {
		// No sign change: the balance point is outside the feasible
		// range; saturate to whichever endpoint is closer to zero.
		if abs(flo) < abs(fhi) {
			return lo
		}
		return hi
	}
	x := x0
	if x < lo || x > hi {
		x = (lo + hi) / 2
	}
	for i := 0; i < maxIter; i++ {
		fx := f(x)
		if abs(fx) <= tol {
			return x
		}
		// Maintain the bracket.
		if (fx > 0) == (flo > 0) {
			lo, flo = x, fx
		} else {
			hi, fhi = x, fx
		}
		d := fprime(x)
		var next float64
		if d != 0 {
			next = x - fx/d
		}
		if d == 0 || next <= lo || next >= hi {
			next = (lo + hi) / 2 // bisection fallback
		}
		if abs(next-x) <= tol {
			return next
		}
		x = next
	}
	return x
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
