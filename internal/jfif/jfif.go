// Package jfif parses and writes the JPEG interchange format container:
// marker segments, frame and scan headers, quantization and Huffman table
// definitions, and restart intervals. Baseline sequential DCT (SOF0/SOF1)
// and progressive DCT (SOF2: spectral selection and successive
// approximation across multiple scans) with 8-bit precision are
// supported.
package jfif

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hetjpeg/internal/huffman"
)

// ErrUnsupported marks streams that are structurally valid JPEG but use
// a feature outside this decoder's scope (12-bit precision, arithmetic
// coding, hierarchical frames, exotic sampling layouts). Callers
// distinguish it from corruption with errors.Is: a service can answer
// "unsupported media" instead of "bad request".
var ErrUnsupported = errors.New("unsupported JPEG feature")

// unsupportedf wraps ErrUnsupported with detail, keeping errors.Is intact.
func unsupportedf(format string, args ...any) error {
	return fmt.Errorf("jfif: %w: "+format, append([]any{ErrUnsupported}, args...)...)
}

// Marker codes (second byte after 0xFF).
const (
	MarkerSOI  = 0xD8
	MarkerEOI  = 0xD9
	MarkerSOF0 = 0xC0
	MarkerSOF1 = 0xC1
	MarkerSOF2 = 0xC2
	MarkerDHT  = 0xC4
	MarkerDQT  = 0xDB
	MarkerDRI  = 0xDD
	MarkerSOS  = 0xDA
	MarkerAPP0 = 0xE0
	MarkerAPP1 = 0xE1
	MarkerCOM  = 0xFE
	MarkerRST0 = 0xD0
)

// maxScans bounds the scan count of a progressive stream. A complete
// scan script needs at most 1 DC first + 13 DC refinements plus, per
// component, an AC first and 13 refinements per spectral band; 256 is
// far above any real encoder and keeps hostile inputs from queuing
// unbounded scan work.
const maxScans = 256

// ZigZag maps zig-zag index -> natural (row-major) index.
var ZigZag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// Natural maps natural index -> zig-zag index (inverse of ZigZag).
var Natural [64]int

func init() {
	for z, n := range ZigZag {
		Natural[n] = z
	}
}

// StdLuminanceQuant is ITU-T T.81 Table K.1 in natural order.
var StdLuminanceQuant = [64]uint16{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// StdChrominanceQuant is ITU-T T.81 Table K.2 in natural order.
var StdChrominanceQuant = [64]uint16{
	17, 18, 24, 47, 99, 99, 99, 99,
	18, 21, 26, 66, 99, 99, 99, 99,
	24, 26, 56, 99, 99, 99, 99, 99,
	47, 66, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
}

// ScaleQuantTable applies libjpeg's linear quality scaling (quality 1..100)
// to a base table, clamping entries to [1,255] for baseline compatibility.
func ScaleQuantTable(base *[64]uint16, quality int) [64]uint16 {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int
	if quality < 50 {
		scale = 5000 / quality
	} else {
		scale = 200 - quality*2
	}
	var out [64]uint16
	for i, v := range base {
		q := (int(v)*scale + 50) / 100
		if q < 1 {
			q = 1
		}
		if q > 255 {
			q = 255
		}
		out[i] = uint16(q)
	}
	return out
}

// Subsampling identifies the chroma layout of a 3-component image.
type Subsampling int

const (
	// Sub444 samples chroma at full resolution.
	Sub444 Subsampling = iota
	// Sub422 halves chroma horizontally (h2v1); the paper's main case.
	Sub422
	// Sub420 halves chroma in both directions (h2v2).
	Sub420
	// SubGray is a single-component (luminance only) image.
	SubGray
)

// String implements fmt.Stringer.
func (s Subsampling) String() string {
	switch s {
	case Sub444:
		return "4:4:4"
	case Sub422:
		return "4:2:2"
	case Sub420:
		return "4:2:0"
	case SubGray:
		return "gray"
	default:
		return fmt.Sprintf("Subsampling(%d)", int(s))
	}
}

// Factors returns the luma sampling factors (h, v) relative to chroma.
func (s Subsampling) Factors() (h, v int) {
	switch s {
	case Sub422:
		return 2, 1
	case Sub420:
		return 2, 2
	default:
		return 1, 1
	}
}

// MCUPixels returns the MCU dimensions in luma pixels.
func (s Subsampling) MCUPixels() (w, h int) {
	fh, fv := s.Factors()
	return 8 * fh, 8 * fv
}

// Component describes one color component from the frame header.
type Component struct {
	ID       byte
	H, V     int // sampling factors
	QuantSel int // quantization table selector
	DCSel    int // DC Huffman table selector (from SOS)
	ACSel    int // AC Huffman table selector (from SOS)
}

// ScanComponent names one component's share of a progressive scan, with
// the Huffman tables that were in effect when the scan header was
// parsed (tables may be redefined between scans, so they are resolved
// per scan, not per image).
type ScanComponent struct {
	CompIdx int // index into Image.Components
	DC, AC  *huffman.Table
}

// Scan is one entropy-coded scan of a progressive image: the spectral
// band [Ss, Se], the successive-approximation bit positions Ah (high,
// 0 for a first scan) and Al (low), and the scan's entropy bytes with
// RSTn markers left inline.
type Scan struct {
	Comps           []ScanComponent
	Ss, Se, Ah, Al  int
	RestartInterval int // DRI value in effect for this scan
	Data            []byte
}

// Interleaved reports whether the scan walks the padded MCU grid (more
// than one component) rather than a single component's own block grid.
func (s *Scan) Interleaved() bool { return len(s.Comps) > 1 }

// Image is the parsed structural view of a JPEG file. Baseline images
// have one entropy segment (EntropyData); progressive images carry one
// Scan per SOS marker instead.
type Image struct {
	Width, Height   int
	Components      []Component
	Quant           [4]*[64]uint16 // indexed by table selector, zigzag order undone (natural order)
	DCTables        [4]*huffman.Table
	ACTables        [4]*huffman.Table
	RestartInterval int
	EntropyData     []byte // baseline: the entropy-coded segment (between SOS header and EOI)
	Progressive     bool   // frame came from SOF2
	Scans           []Scan // progressive: one entry per SOS
	FileSize        int    // total size of the JPEG stream in bytes
}

// Subsampling classifies the component layout.
func (im *Image) Subsampling() (Subsampling, error) {
	if len(im.Components) == 1 {
		return SubGray, nil
	}
	if len(im.Components) != 3 {
		return 0, unsupportedf("component count %d", len(im.Components))
	}
	y, cb, cr := im.Components[0], im.Components[1], im.Components[2]
	if cb.H != 1 || cb.V != 1 || cr.H != 1 || cr.V != 1 {
		return 0, unsupportedf("chroma sampling factors other than 1x1")
	}
	switch {
	case y.H == 1 && y.V == 1:
		return Sub444, nil
	case y.H == 2 && y.V == 1:
		return Sub422, nil
	case y.H == 2 && y.V == 2:
		return Sub420, nil
	}
	return 0, unsupportedf("luma sampling %dx%d", y.H, y.V)
}

// EntropyDensity returns the paper's entropy-density estimate d =
// FileSize / (Width*Height) in bytes per pixel (Equation 3).
func (im *Image) EntropyDensity() float64 {
	if im.Width == 0 || im.Height == 0 {
		return 0
	}
	return float64(im.FileSize) / float64(im.Width*im.Height)
}

// Parse reads a baseline or progressive JPEG stream into an Image. The
// entropy-coded segments are referenced, not copied.
func Parse(data []byte) (*Image, error) {
	im, err := parse(data)
	if err != nil {
		return nil, err
	}
	return im, nil
}

// ParseSalvage parses tolerantly: when the container is damaged after a
// decodable prefix (a progressive stream truncated between or inside
// scans, a corrupt marker-segment length after the first scan), it
// returns both the partial Image and the parse error so the caller can
// decode what survived. Baseline streams are already tolerant of
// anything past the SOS header (Parse succeeds on them), so partial
// images arise only for progressive streams with at least one parsed
// scan. ErrUnsupported remains fatal — the stream is intact, merely out
// of scope — and unsalvageable failures return (nil, err) exactly like
// Parse.
func ParseSalvage(data []byte) (*Image, error) {
	im, err := parse(data)
	if err == nil {
		return im, nil
	}
	if errors.Is(err, ErrUnsupported) {
		return nil, err
	}
	if im != nil && im.Progressive && len(im.Scans) > 0 {
		return im, err
	}
	return nil, err
}

// parse is the marker-loop core shared by Parse and ParseSalvage: on
// error it returns the partially-populated Image alongside the error so
// the salvage path can judge whether anything decodable survived.
func parse(data []byte) (*Image, error) {
	if len(data) < 4 || data[0] != 0xFF || data[1] != MarkerSOI {
		return nil, errors.New("jfif: missing SOI marker")
	}
	im := &Image{FileSize: len(data)}
	pos := 2
	for {
		if pos+2 > len(data) {
			return im, errors.New("jfif: truncated stream")
		}
		if data[pos] != 0xFF {
			return im, fmt.Errorf("jfif: expected marker at offset %d, found %#02x", pos, data[pos])
		}
		marker := data[pos+1]
		pos += 2
		if marker == MarkerEOI {
			if im.Progressive && len(im.Scans) > 0 {
				return im, nil
			}
			return im, errors.New("jfif: EOI before SOS")
		}
		if pos+2 > len(data) {
			return im, errors.New("jfif: truncated stream")
		}
		segLen := int(binary.BigEndian.Uint16(data[pos:])) // includes the two length bytes
		if segLen < 2 || pos+segLen > len(data) {
			return im, fmt.Errorf("jfif: bad segment length %d for marker %#02x", segLen, marker)
		}
		seg := data[pos+2 : pos+segLen]
		pos += segLen

		switch marker {
		case MarkerSOF0, MarkerSOF1, MarkerSOF2:
			if im.Components != nil {
				return im, errors.New("jfif: multiple frame headers")
			}
			if err := im.parseSOF(seg); err != nil {
				return im, err
			}
			im.Progressive = marker == MarkerSOF2
		case 0xC3, 0xC5, 0xC6, 0xC7, 0xC9, 0xCA, 0xCB, 0xCD, 0xCE, 0xCF:
			return im, unsupportedf("frame type SOF%d (only baseline SOF0/SOF1 and progressive SOF2 are decoded)", marker-MarkerSOF0)
		case MarkerDQT:
			if err := im.parseDQT(seg); err != nil {
				return im, err
			}
		case MarkerDHT:
			if err := im.parseDHT(seg); err != nil {
				return im, err
			}
		case MarkerDRI:
			if len(seg) != 2 {
				return im, errors.New("jfif: bad DRI length")
			}
			im.RestartInterval = int(binary.BigEndian.Uint16(seg))
		case MarkerSOS:
			if !im.Progressive {
				if err := im.parseSOS(seg); err != nil {
					return im, err
				}
				// Entropy data runs to EOI; find the final FFD9.
				end := len(data)
				if end >= 2 && data[end-1] == MarkerEOI && data[end-2] == 0xFF {
					end -= 2
				}
				im.EntropyData = data[pos:end]
				return im, nil
			}
			sc, err := im.parseProgressiveSOS(seg)
			if err != nil {
				return im, err
			}
			if len(im.Scans) >= maxScans {
				return im, fmt.Errorf("jfif: more than %d scans", maxScans)
			}
			// The scan's entropy bytes run to the next non-RST marker
			// (RSTn markers stay inline; the bit reader consumes them).
			end := entropyEnd(data, pos)
			sc.Data = data[pos:end]
			im.Scans = append(im.Scans, sc)
			pos = end
		default:
			// APPn/COM and friends: skip.
		}
	}
}

// entropyEnd scans forward from pos for the first marker that is not
// byte stuffing (FF00) and not a restart marker (FFD0-FFD7) — the end
// of one scan's entropy-coded segment. Running off the end of data
// returns len(data); the caller's marker loop reports truncation.
func entropyEnd(data []byte, pos int) int {
	for i := pos; i+1 < len(data); i++ {
		if data[i] != 0xFF {
			continue
		}
		b := data[i+1]
		if b == 0x00 {
			i++ // stuffed data byte
			continue
		}
		if b >= 0xD0 && b <= 0xD7 {
			i++ // restart marker, part of the entropy stream
			continue
		}
		return i
	}
	return len(data)
}

func (im *Image) parseSOF(seg []byte) error {
	if len(seg) < 6 {
		return errors.New("jfif: short SOF")
	}
	if seg[0] != 8 {
		return unsupportedf("%d-bit sample precision", seg[0])
	}
	im.Height = int(binary.BigEndian.Uint16(seg[1:]))
	im.Width = int(binary.BigEndian.Uint16(seg[3:]))
	n := int(seg[5])
	if len(seg) < 6+3*n {
		return errors.New("jfif: short SOF component list")
	}
	if n != 1 && n != 3 {
		return unsupportedf("component count %d", n)
	}
	im.Components = make([]Component, n)
	for i := 0; i < n; i++ {
		c := seg[6+3*i : 9+3*i]
		im.Components[i] = Component{
			ID:       c[0],
			H:        int(c[1] >> 4),
			V:        int(c[1] & 0xF),
			QuantSel: int(c[2]),
		}
		if im.Components[i].QuantSel > 3 {
			return errors.New("jfif: quant selector out of range")
		}
	}
	return nil
}

func (im *Image) parseDQT(seg []byte) error {
	for len(seg) > 0 {
		pq := seg[0] >> 4
		tq := int(seg[0] & 0xF)
		if tq > 3 {
			return errors.New("jfif: DQT selector out of range")
		}
		if pq != 0 {
			return unsupportedf("16-bit quantization tables")
		}
		if len(seg) < 65 {
			return errors.New("jfif: short DQT")
		}
		var tbl [64]uint16
		for z := 0; z < 64; z++ {
			tbl[ZigZag[z]] = uint16(seg[1+z])
		}
		im.Quant[tq] = &tbl
		seg = seg[65:]
	}
	return nil
}

func (im *Image) parseDHT(seg []byte) error {
	for len(seg) > 0 {
		if len(seg) < 17 {
			return errors.New("jfif: short DHT")
		}
		class := seg[0] >> 4
		sel := int(seg[0] & 0xF)
		if sel > 3 || class > 1 {
			return errors.New("jfif: DHT selector/class out of range")
		}
		var spec huffman.Spec
		total := 0
		for i := 0; i < 16; i++ {
			spec.Counts[i] = seg[1+i]
			total += int(seg[1+i])
		}
		if len(seg) < 17+total {
			return errors.New("jfif: short DHT values")
		}
		spec.Values = append([]byte(nil), seg[17:17+total]...)
		tbl, err := huffman.New(spec)
		if err != nil {
			return err
		}
		if class == 0 {
			im.DCTables[sel] = tbl
		} else {
			im.ACTables[sel] = tbl
		}
		seg = seg[17+total:]
	}
	return nil
}

func (im *Image) parseSOS(seg []byte) error {
	if len(seg) < 1 {
		return errors.New("jfif: short SOS")
	}
	n := int(seg[0])
	if n != len(im.Components) {
		return fmt.Errorf("jfif: SOS has %d components, SOF has %d", n, len(im.Components))
	}
	if len(seg) < 1+2*n+3 {
		return errors.New("jfif: short SOS body")
	}
	for i := 0; i < n; i++ {
		id := seg[1+2*i]
		sel := seg[2+2*i]
		// T.81 B.2.3: table selectors are 2-bit (0..3); larger values
		// would index past the four-table arrays.
		if sel>>4 > 3 || sel&0xF > 3 {
			return fmt.Errorf("jfif: SOS table selectors %d/%d out of range", sel>>4, sel&0xF)
		}
		found := false
		for j := range im.Components {
			if im.Components[j].ID == id {
				im.Components[j].DCSel = int(sel >> 4)
				im.Components[j].ACSel = int(sel & 0xF)
				found = true
			}
		}
		if !found {
			return fmt.Errorf("jfif: SOS references unknown component %d", id)
		}
	}
	return nil
}

// parseProgressiveSOS reads one scan header of a progressive image,
// resolving the Huffman tables in effect right now (DHT segments between
// scans redefine selectors). Validation follows T.81 G.1: a DC scan
// (Ss=0) covers only coefficient 0 and may interleave components; an AC
// scan covers a band [Ss, Se] of a single component; refinement scans
// shave exactly one bit (Ah = Al+1).
func (im *Image) parseProgressiveSOS(seg []byte) (Scan, error) {
	if im.Components == nil {
		return Scan{}, errors.New("jfif: SOS before SOF")
	}
	if len(seg) < 1 {
		return Scan{}, errors.New("jfif: short SOS")
	}
	n := int(seg[0])
	if n < 1 || n > len(im.Components) {
		return Scan{}, fmt.Errorf("jfif: scan has %d components, frame has %d", n, len(im.Components))
	}
	if len(seg) < 1+2*n+3 {
		return Scan{}, errors.New("jfif: short SOS body")
	}
	sc := Scan{
		Ss:              int(seg[1+2*n]),
		Se:              int(seg[2+2*n]),
		Ah:              int(seg[3+2*n] >> 4),
		Al:              int(seg[3+2*n] & 0xF),
		RestartInterval: im.RestartInterval,
	}
	switch {
	case sc.Ss == 0 && sc.Se != 0:
		return Scan{}, fmt.Errorf("jfif: DC scan with Se=%d", sc.Se)
	case sc.Ss > 63 || sc.Se > 63 || sc.Se < sc.Ss:
		return Scan{}, fmt.Errorf("jfif: bad spectral selection [%d, %d]", sc.Ss, sc.Se)
	case sc.Ss > 0 && n != 1:
		return Scan{}, fmt.Errorf("jfif: AC scan interleaves %d components", n)
	case sc.Al > 13 || (sc.Ah != 0 && sc.Ah != sc.Al+1):
		return Scan{}, fmt.Errorf("jfif: bad successive approximation Ah=%d Al=%d", sc.Ah, sc.Al)
	}
	for i := 0; i < n; i++ {
		id := seg[1+2*i]
		sel := seg[2+2*i]
		idx := -1
		for j := range im.Components {
			if im.Components[j].ID == id {
				idx = j
			}
		}
		if idx < 0 {
			return Scan{}, fmt.Errorf("jfif: SOS references unknown component %d", id)
		}
		for _, prev := range sc.Comps {
			if prev.CompIdx == idx {
				return Scan{}, fmt.Errorf("jfif: component %d repeated in scan", id)
			}
		}
		scc := ScanComponent{CompIdx: idx}
		if sc.Ss == 0 && sc.Ah == 0 {
			if sel>>4 > 3 {
				return Scan{}, fmt.Errorf("jfif: DC table selector %d out of range", sel>>4)
			}
			scc.DC = im.DCTables[sel>>4]
			if scc.DC == nil {
				return Scan{}, fmt.Errorf("jfif: scan uses undefined DC table %d", sel>>4)
			}
		}
		if sc.Ss > 0 {
			if sel&0xF > 3 {
				return Scan{}, fmt.Errorf("jfif: AC table selector %d out of range", sel&0xF)
			}
			scc.AC = im.ACTables[sel&0xF]
			if scc.AC == nil {
				return Scan{}, fmt.Errorf("jfif: scan uses undefined AC table %d", sel&0xF)
			}
		}
		sc.Comps = append(sc.Comps, scc)
	}
	return sc, nil
}
