// Package jfif parses and writes the JPEG interchange format container:
// marker segments, frame and scan headers, quantization and Huffman table
// definitions, and restart intervals. Only baseline sequential DCT
// (SOF0) with 8-bit precision is supported, matching the paper's scope.
package jfif

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hetjpeg/internal/huffman"
)

// Marker codes (second byte after 0xFF).
const (
	MarkerSOI  = 0xD8
	MarkerEOI  = 0xD9
	MarkerSOF0 = 0xC0
	MarkerSOF1 = 0xC1
	MarkerSOF2 = 0xC2
	MarkerDHT  = 0xC4
	MarkerDQT  = 0xDB
	MarkerDRI  = 0xDD
	MarkerSOS  = 0xDA
	MarkerAPP0 = 0xE0
	MarkerAPP1 = 0xE1
	MarkerCOM  = 0xFE
	MarkerRST0 = 0xD0
)

// ZigZag maps zig-zag index -> natural (row-major) index.
var ZigZag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// Natural maps natural index -> zig-zag index (inverse of ZigZag).
var Natural [64]int

func init() {
	for z, n := range ZigZag {
		Natural[n] = z
	}
}

// StdLuminanceQuant is ITU-T T.81 Table K.1 in natural order.
var StdLuminanceQuant = [64]uint16{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// StdChrominanceQuant is ITU-T T.81 Table K.2 in natural order.
var StdChrominanceQuant = [64]uint16{
	17, 18, 24, 47, 99, 99, 99, 99,
	18, 21, 26, 66, 99, 99, 99, 99,
	24, 26, 56, 99, 99, 99, 99, 99,
	47, 66, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
}

// ScaleQuantTable applies libjpeg's linear quality scaling (quality 1..100)
// to a base table, clamping entries to [1,255] for baseline compatibility.
func ScaleQuantTable(base *[64]uint16, quality int) [64]uint16 {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int
	if quality < 50 {
		scale = 5000 / quality
	} else {
		scale = 200 - quality*2
	}
	var out [64]uint16
	for i, v := range base {
		q := (int(v)*scale + 50) / 100
		if q < 1 {
			q = 1
		}
		if q > 255 {
			q = 255
		}
		out[i] = uint16(q)
	}
	return out
}

// Subsampling identifies the chroma layout of a 3-component image.
type Subsampling int

const (
	// Sub444 samples chroma at full resolution.
	Sub444 Subsampling = iota
	// Sub422 halves chroma horizontally (h2v1); the paper's main case.
	Sub422
	// Sub420 halves chroma in both directions (h2v2).
	Sub420
	// SubGray is a single-component (luminance only) image.
	SubGray
)

// String implements fmt.Stringer.
func (s Subsampling) String() string {
	switch s {
	case Sub444:
		return "4:4:4"
	case Sub422:
		return "4:2:2"
	case Sub420:
		return "4:2:0"
	case SubGray:
		return "gray"
	default:
		return fmt.Sprintf("Subsampling(%d)", int(s))
	}
}

// Factors returns the luma sampling factors (h, v) relative to chroma.
func (s Subsampling) Factors() (h, v int) {
	switch s {
	case Sub422:
		return 2, 1
	case Sub420:
		return 2, 2
	default:
		return 1, 1
	}
}

// MCUPixels returns the MCU dimensions in luma pixels.
func (s Subsampling) MCUPixels() (w, h int) {
	fh, fv := s.Factors()
	return 8 * fh, 8 * fv
}

// Component describes one color component from the frame header.
type Component struct {
	ID       byte
	H, V     int // sampling factors
	QuantSel int // quantization table selector
	DCSel    int // DC Huffman table selector (from SOS)
	ACSel    int // AC Huffman table selector (from SOS)
}

// Image is the parsed structural view of a baseline JPEG file.
type Image struct {
	Width, Height   int
	Components      []Component
	Quant           [4]*[64]uint16 // indexed by table selector, zigzag order undone (natural order)
	DCTables        [4]*huffman.Table
	ACTables        [4]*huffman.Table
	RestartInterval int
	EntropyData     []byte // the entropy-coded segment (between SOS header and EOI)
	FileSize        int    // total size of the JPEG stream in bytes
}

// Subsampling classifies the component layout.
func (im *Image) Subsampling() (Subsampling, error) {
	if len(im.Components) == 1 {
		return SubGray, nil
	}
	if len(im.Components) != 3 {
		return 0, fmt.Errorf("jfif: unsupported component count %d", len(im.Components))
	}
	y, cb, cr := im.Components[0], im.Components[1], im.Components[2]
	if cb.H != 1 || cb.V != 1 || cr.H != 1 || cr.V != 1 {
		return 0, errors.New("jfif: chroma sampling factors must be 1x1")
	}
	switch {
	case y.H == 1 && y.V == 1:
		return Sub444, nil
	case y.H == 2 && y.V == 1:
		return Sub422, nil
	case y.H == 2 && y.V == 2:
		return Sub420, nil
	}
	return 0, fmt.Errorf("jfif: unsupported luma sampling %dx%d", y.H, y.V)
}

// EntropyDensity returns the paper's entropy-density estimate d =
// FileSize / (Width*Height) in bytes per pixel (Equation 3).
func (im *Image) EntropyDensity() float64 {
	if im.Width == 0 || im.Height == 0 {
		return 0
	}
	return float64(im.FileSize) / float64(im.Width*im.Height)
}

// Parse reads a baseline JPEG stream into an Image. The entropy-coded
// segment is referenced, not copied.
func Parse(data []byte) (*Image, error) {
	if len(data) < 4 || data[0] != 0xFF || data[1] != MarkerSOI {
		return nil, errors.New("jfif: missing SOI marker")
	}
	im := &Image{FileSize: len(data)}
	pos := 2
	for {
		if pos+4 > len(data) {
			return nil, errors.New("jfif: truncated stream")
		}
		if data[pos] != 0xFF {
			return nil, fmt.Errorf("jfif: expected marker at offset %d, found %#02x", pos, data[pos])
		}
		marker := data[pos+1]
		pos += 2
		if marker == MarkerEOI {
			return nil, errors.New("jfif: EOI before SOS")
		}
		segLen := int(binary.BigEndian.Uint16(data[pos:])) // includes the two length bytes
		if segLen < 2 || pos+segLen > len(data) {
			return nil, fmt.Errorf("jfif: bad segment length %d for marker %#02x", segLen, marker)
		}
		seg := data[pos+2 : pos+segLen]
		pos += segLen

		switch marker {
		case MarkerSOF0, MarkerSOF1:
			if err := im.parseSOF(seg); err != nil {
				return nil, err
			}
		case MarkerSOF2:
			return nil, errors.New("jfif: progressive JPEG not supported")
		case MarkerDQT:
			if err := im.parseDQT(seg); err != nil {
				return nil, err
			}
		case MarkerDHT:
			if err := im.parseDHT(seg); err != nil {
				return nil, err
			}
		case MarkerDRI:
			if len(seg) != 2 {
				return nil, errors.New("jfif: bad DRI length")
			}
			im.RestartInterval = int(binary.BigEndian.Uint16(seg))
		case MarkerSOS:
			if err := im.parseSOS(seg); err != nil {
				return nil, err
			}
			// Entropy data runs to EOI; find the final FFD9.
			end := len(data)
			if end >= 2 && data[end-1] == MarkerEOI && data[end-2] == 0xFF {
				end -= 2
			}
			im.EntropyData = data[pos:end]
			return im, nil
		default:
			// APPn/COM and friends: skip.
		}
	}
}

func (im *Image) parseSOF(seg []byte) error {
	if len(seg) < 6 {
		return errors.New("jfif: short SOF")
	}
	if seg[0] != 8 {
		return fmt.Errorf("jfif: %d-bit precision not supported", seg[0])
	}
	im.Height = int(binary.BigEndian.Uint16(seg[1:]))
	im.Width = int(binary.BigEndian.Uint16(seg[3:]))
	n := int(seg[5])
	if len(seg) < 6+3*n {
		return errors.New("jfif: short SOF component list")
	}
	if n != 1 && n != 3 {
		return fmt.Errorf("jfif: unsupported component count %d", n)
	}
	im.Components = make([]Component, n)
	for i := 0; i < n; i++ {
		c := seg[6+3*i : 9+3*i]
		im.Components[i] = Component{
			ID:       c[0],
			H:        int(c[1] >> 4),
			V:        int(c[1] & 0xF),
			QuantSel: int(c[2]),
		}
		if im.Components[i].QuantSel > 3 {
			return errors.New("jfif: quant selector out of range")
		}
	}
	return nil
}

func (im *Image) parseDQT(seg []byte) error {
	for len(seg) > 0 {
		pq := seg[0] >> 4
		tq := int(seg[0] & 0xF)
		if tq > 3 {
			return errors.New("jfif: DQT selector out of range")
		}
		if pq != 0 {
			return errors.New("jfif: 16-bit quant tables not supported in baseline")
		}
		if len(seg) < 65 {
			return errors.New("jfif: short DQT")
		}
		var tbl [64]uint16
		for z := 0; z < 64; z++ {
			tbl[ZigZag[z]] = uint16(seg[1+z])
		}
		im.Quant[tq] = &tbl
		seg = seg[65:]
	}
	return nil
}

func (im *Image) parseDHT(seg []byte) error {
	for len(seg) > 0 {
		if len(seg) < 17 {
			return errors.New("jfif: short DHT")
		}
		class := seg[0] >> 4
		sel := int(seg[0] & 0xF)
		if sel > 3 || class > 1 {
			return errors.New("jfif: DHT selector/class out of range")
		}
		var spec huffman.Spec
		total := 0
		for i := 0; i < 16; i++ {
			spec.Counts[i] = seg[1+i]
			total += int(seg[1+i])
		}
		if len(seg) < 17+total {
			return errors.New("jfif: short DHT values")
		}
		spec.Values = append([]byte(nil), seg[17:17+total]...)
		tbl, err := huffman.New(spec)
		if err != nil {
			return err
		}
		if class == 0 {
			im.DCTables[sel] = tbl
		} else {
			im.ACTables[sel] = tbl
		}
		seg = seg[17+total:]
	}
	return nil
}

func (im *Image) parseSOS(seg []byte) error {
	if len(seg) < 1 {
		return errors.New("jfif: short SOS")
	}
	n := int(seg[0])
	if n != len(im.Components) {
		return fmt.Errorf("jfif: SOS has %d components, SOF has %d", n, len(im.Components))
	}
	if len(seg) < 1+2*n+3 {
		return errors.New("jfif: short SOS body")
	}
	for i := 0; i < n; i++ {
		id := seg[1+2*i]
		sel := seg[2+2*i]
		found := false
		for j := range im.Components {
			if im.Components[j].ID == id {
				im.Components[j].DCSel = int(sel >> 4)
				im.Components[j].ACSel = int(sel & 0xF)
				found = true
			}
		}
		if !found {
			return fmt.Errorf("jfif: SOS references unknown component %d", id)
		}
	}
	return nil
}
