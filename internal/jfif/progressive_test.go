package jfif

import (
	"errors"
	"testing"

	"hetjpeg/internal/huffman"
)

// buildProgressiveStream assembles a minimal two-scan progressive file
// by hand: SOF2, one DC scan, a DHT redefinition, one AC scan.
func buildProgressiveStream(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	w.WriteAPP0()
	q := ScaleQuantTable(&StdLuminanceQuant, 85)
	w.WriteDQT(0, &q)
	comps := []Component{{ID: 1, H: 1, V: 1, QuantSel: 0}}
	w.WriteSOF2(24, 16, comps)
	w.WriteDHT(0, 0, huffman.StdDCLuminance)
	// DC scan: category 0 (zero diff) for all six blocks. The std DC
	// code for symbol 0 is 2 bits (00); 6 blocks = 12 bits = 2 bytes.
	w.WriteProgressiveSOS(comps, 0, 0, 0, 1, []byte{0x00, 0x00})
	w.WriteDHT(1, 0, huffman.StdACLuminance)
	// AC scan: EOB (symbol 0x00, code 1010) per block = 24 bits.
	w.WriteProgressiveSOS(comps, 1, 63, 0, 1, []byte{0xAA, 0xAA, 0xAA})
	return w.Finish()
}

func TestParseProgressiveScans(t *testing.T) {
	im, err := Parse(buildProgressiveStream(t))
	if err != nil {
		t.Fatal(err)
	}
	if !im.Progressive {
		t.Fatal("Progressive not set")
	}
	if len(im.Scans) != 2 {
		t.Fatalf("got %d scans, want 2", len(im.Scans))
	}
	dc, ac := im.Scans[0], im.Scans[1]
	if dc.Ss != 0 || dc.Se != 0 || dc.Ah != 0 || dc.Al != 1 {
		t.Errorf("DC scan header = %+v", dc)
	}
	if dc.Comps[0].DC == nil {
		t.Error("DC scan did not resolve its Huffman table")
	}
	if ac.Ss != 1 || ac.Se != 63 || ac.Al != 1 {
		t.Errorf("AC scan header = %+v", ac)
	}
	if ac.Comps[0].AC == nil {
		t.Error("AC scan did not resolve its Huffman table (defined between scans)")
	}
	if len(dc.Data) != 2 || len(ac.Data) != 3 {
		t.Errorf("scan data lengths = %d, %d", len(dc.Data), len(ac.Data))
	}
}

func TestParseProgressiveRejectsBadScans(t *testing.T) {
	base := buildProgressiveStream(t)
	// Find the second SOS and corrupt its spectral selection to an
	// interleaved AC shape is impossible with one component; instead
	// flip Se below Ss.
	im, err := Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	_ = im
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated-mid-scan", func(b []byte) []byte { return b[:len(b)-4] }},
		{"no-EOI", func(b []byte) []byte { return b[:len(b)-2] }},
	}
	for _, tc := range cases {
		data := tc.mut(append([]byte(nil), base...))
		if _, err := Parse(data); err == nil {
			t.Errorf("%s: parsed without error", tc.name)
		}
	}
}

func TestErrUnsupportedTyped(t *testing.T) {
	// SOF3 (lossless sequential) must surface as ErrUnsupported.
	data := []byte{0xFF, MarkerSOI, 0xFF, 0xC3, 0x00, 0x08, 8, 0, 16, 0, 16, 1}
	_, err := Parse(data)
	if err == nil {
		t.Fatal("SOF3 parsed")
	}
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("SOF3 error %v is not ErrUnsupported", err)
	}

	// A corrupt stream must NOT be ErrUnsupported.
	_, err = Parse([]byte{0xFF, MarkerSOI, 0x00, 0x01})
	if err == nil {
		t.Fatal("garbage parsed")
	}
	if errors.Is(err, ErrUnsupported) {
		t.Errorf("corruption error %v wrongly marked ErrUnsupported", err)
	}

	// 12-bit precision SOF0.
	payload := []byte{12, 0, 16, 0, 16, 1, 1, 0x11, 0}
	data = append([]byte{0xFF, MarkerSOI, 0xFF, MarkerSOF0, 0x00, byte(len(payload) + 2)}, payload...)
	_, err = Parse(data)
	if err == nil || !errors.Is(err, ErrUnsupported) {
		t.Errorf("12-bit precision error %v is not ErrUnsupported", err)
	}
}
