package jfif

import (
	"bytes"
	"encoding/binary"
	"testing"

	"hetjpeg/internal/huffman"
)

func buildMinimalJPEG(t *testing.T, width, height int, hs, vs int) []byte {
	t.Helper()
	w := NewWriter()
	w.WriteAPP0()
	q := ScaleQuantTable(&StdLuminanceQuant, 75)
	w.WriteDQT(0, &q)
	comps := []Component{
		{ID: 1, H: hs, V: vs, QuantSel: 0, DCSel: 0, ACSel: 0},
		{ID: 2, H: 1, V: 1, QuantSel: 0, DCSel: 0, ACSel: 0},
		{ID: 3, H: 1, V: 1, QuantSel: 0, DCSel: 0, ACSel: 0},
	}
	w.WriteSOF0(width, height, comps)
	w.WriteDHT(0, 0, huffman.StdDCLuminance)
	w.WriteDHT(1, 0, huffman.StdACLuminance)
	w.WriteSOS(comps, []byte{0xAB, 0xCD})
	return w.Finish()
}

func TestParseWriterRoundTrip(t *testing.T) {
	data := buildMinimalJPEG(t, 123, 77, 2, 1)
	im, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if im.Width != 123 || im.Height != 77 {
		t.Fatalf("dims %dx%d", im.Width, im.Height)
	}
	if len(im.Components) != 3 {
		t.Fatalf("%d components", len(im.Components))
	}
	sub, err := im.Subsampling()
	if err != nil {
		t.Fatal(err)
	}
	if sub != Sub422 {
		t.Fatalf("subsampling %v want 4:2:2", sub)
	}
	if !bytes.Equal(im.EntropyData, []byte{0xAB, 0xCD}) {
		t.Fatalf("entropy data %x", im.EntropyData)
	}
	if im.Quant[0] == nil || im.DCTables[0] == nil || im.ACTables[0] == nil {
		t.Fatal("tables not parsed")
	}
	if im.FileSize != len(data) {
		t.Fatalf("FileSize %d want %d", im.FileSize, len(data))
	}
}

func TestSubsamplingClassification(t *testing.T) {
	cases := []struct {
		hs, vs int
		want   Subsampling
	}{
		{1, 1, Sub444}, {2, 1, Sub422}, {2, 2, Sub420},
	}
	for _, c := range cases {
		data := buildMinimalJPEG(t, 64, 64, c.hs, c.vs)
		im, err := Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := im.Subsampling()
		if err != nil {
			t.Fatal(err)
		}
		if sub != c.want {
			t.Errorf("h=%d v=%d: got %v want %v", c.hs, c.vs, sub, c.want)
		}
	}
}

func TestSubsamplingGeometry(t *testing.T) {
	if w, h := Sub422.MCUPixels(); w != 16 || h != 8 {
		t.Fatalf("4:2:2 MCU %dx%d", w, h)
	}
	if w, h := Sub420.MCUPixels(); w != 16 || h != 16 {
		t.Fatalf("4:2:0 MCU %dx%d", w, h)
	}
	if w, h := Sub444.MCUPixels(); w != 8 || h != 8 {
		t.Fatalf("4:4:4 MCU %dx%d", w, h)
	}
	if Sub422.String() != "4:2:2" || SubGray.String() != "gray" {
		t.Fatal("Stringer wrong")
	}
}

func TestZigZagIsPermutation(t *testing.T) {
	seen := map[int]bool{}
	for _, v := range ZigZag {
		if v < 0 || v > 63 || seen[v] {
			t.Fatalf("bad zigzag entry %d", v)
		}
		seen[v] = true
	}
	for n, z := range Natural {
		if ZigZag[z] != n {
			t.Fatalf("Natural inverse broken at %d", n)
		}
	}
	// First few entries of the standard order.
	want := []int{0, 1, 8, 16, 9, 2}
	for i, v := range want {
		if ZigZag[i] != v {
			t.Fatalf("ZigZag[%d]=%d want %d", i, ZigZag[i], v)
		}
	}
}

func TestQuantQualityScaling(t *testing.T) {
	q50 := ScaleQuantTable(&StdLuminanceQuant, 50)
	for i := range q50 {
		if q50[i] != StdLuminanceQuant[i] {
			t.Fatalf("quality 50 must be the base table (entry %d: %d vs %d)", i, q50[i], StdLuminanceQuant[i])
		}
	}
	q95 := ScaleQuantTable(&StdLuminanceQuant, 95)
	q10 := ScaleQuantTable(&StdLuminanceQuant, 10)
	for i := range q95 {
		if q95[i] > q50[i] {
			t.Fatal("higher quality must not increase quantization")
		}
		if q10[i] < q50[i] {
			t.Fatal("lower quality must not decrease quantization")
		}
		if q95[i] < 1 || q10[i] > 255 {
			t.Fatal("clamping violated")
		}
	}
}

func TestParseRejectsProgressive(t *testing.T) {
	data := buildMinimalJPEG(t, 32, 32, 1, 1)
	// Rewrite the SOF0 marker to SOF2.
	idx := bytes.Index(data, []byte{0xFF, MarkerSOF0})
	if idx < 0 {
		t.Fatal("no SOF0 in fixture")
	}
	data[idx+1] = MarkerSOF2
	if _, err := Parse(data); err == nil {
		t.Fatal("progressive stream accepted")
	}
}

func TestParseRejectsBadSegmentLength(t *testing.T) {
	data := buildMinimalJPEG(t, 32, 32, 1, 1)
	idx := bytes.Index(data, []byte{0xFF, MarkerDQT})
	if idx < 0 {
		t.Fatal("no DQT")
	}
	binary.BigEndian.PutUint16(data[idx+2:], 60000)
	if _, err := Parse(data); err == nil {
		t.Fatal("oversized segment accepted")
	}
}

func TestParseDRI(t *testing.T) {
	w := NewWriter()
	w.WriteAPP0()
	q := ScaleQuantTable(&StdLuminanceQuant, 75)
	w.WriteDQT(0, &q)
	comps := []Component{{ID: 1, H: 1, V: 1}}
	w.WriteSOF0(16, 16, comps)
	w.WriteDHT(0, 0, huffman.StdDCLuminance)
	w.WriteDHT(1, 0, huffman.StdACLuminance)
	w.WriteDRI(5)
	w.WriteSOS(comps, nil)
	im, err := Parse(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if im.RestartInterval != 5 {
		t.Fatalf("RestartInterval=%d want 5", im.RestartInterval)
	}
	if sub, _ := im.Subsampling(); sub != SubGray {
		t.Fatalf("single component should classify gray, got %v", sub)
	}
}

func TestEntropyDensity(t *testing.T) {
	im := &Image{Width: 100, Height: 50, FileSize: 1000}
	if d := im.EntropyDensity(); d != 0.2 {
		t.Fatalf("density %v want 0.2", d)
	}
	im.Width = 0
	if d := im.EntropyDensity(); d != 0 {
		t.Fatalf("degenerate density %v want 0", d)
	}
}
