package jfif

import (
	"bytes"
	"encoding/binary"

	"hetjpeg/internal/huffman"
)

// Writer assembles a baseline JPEG stream segment by segment.
type Writer struct {
	buf bytes.Buffer
}

// NewWriter returns a Writer with the SOI marker already emitted.
func NewWriter() *Writer {
	w := &Writer{}
	w.buf.Write([]byte{0xFF, MarkerSOI})
	return w
}

func (w *Writer) segment(marker byte, payload []byte) {
	w.buf.Write([]byte{0xFF, marker})
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(payload)+2))
	w.buf.Write(l[:])
	w.buf.Write(payload)
}

// WriteAPP0 emits a minimal JFIF APP0 segment.
func (w *Writer) WriteAPP0() {
	w.segment(MarkerAPP0, []byte{
		'J', 'F', 'I', 'F', 0,
		1, 1, // version 1.1
		0,    // aspect ratio units: none
		0, 1, // x density
		0, 1, // y density
		0, 0, // no thumbnail
	})
}

// WriteDQT emits one quantization table (8-bit precision) from natural
// order, converting to zig-zag on the wire.
func (w *Writer) WriteDQT(sel int, tbl *[64]uint16) {
	payload := make([]byte, 65)
	payload[0] = byte(sel)
	for z := 0; z < 64; z++ {
		payload[1+z] = byte(tbl[ZigZag[z]])
	}
	w.segment(MarkerDQT, payload)
}

// WriteSOF0 emits the baseline frame header.
func (w *Writer) WriteSOF0(width, height int, comps []Component) {
	payload := make([]byte, 6+3*len(comps))
	payload[0] = 8 // precision
	binary.BigEndian.PutUint16(payload[1:], uint16(height))
	binary.BigEndian.PutUint16(payload[3:], uint16(width))
	payload[5] = byte(len(comps))
	for i, c := range comps {
		payload[6+3*i] = c.ID
		payload[7+3*i] = byte(c.H<<4 | c.V)
		payload[8+3*i] = byte(c.QuantSel)
	}
	w.segment(MarkerSOF0, payload)
}

// WriteDHT emits one Huffman table definition. class 0 = DC, 1 = AC.
func (w *Writer) WriteDHT(class, sel int, spec huffman.Spec) {
	payload := make([]byte, 17+len(spec.Values))
	payload[0] = byte(class<<4 | sel)
	copy(payload[1:17], spec.Counts[:])
	copy(payload[17:], spec.Values)
	w.segment(MarkerDHT, payload)
}

// WriteDRI emits a restart-interval definition.
func (w *Writer) WriteDRI(interval int) {
	var payload [2]byte
	binary.BigEndian.PutUint16(payload[:], uint16(interval))
	w.segment(MarkerDRI, payload[:])
}

// WriteSOF2 emits the progressive frame header (same layout as SOF0,
// different marker).
func (w *Writer) WriteSOF2(width, height int, comps []Component) {
	payload := make([]byte, 6+3*len(comps))
	payload[0] = 8 // precision
	binary.BigEndian.PutUint16(payload[1:], uint16(height))
	binary.BigEndian.PutUint16(payload[3:], uint16(width))
	payload[5] = byte(len(comps))
	for i, c := range comps {
		payload[6+3*i] = c.ID
		payload[7+3*i] = byte(c.H<<4 | c.V)
		payload[8+3*i] = byte(c.QuantSel)
	}
	w.segment(MarkerSOF2, payload)
}

// WriteProgressiveSOS emits one progressive scan header (spectral band
// [ss, se], successive approximation ah/al) followed by its
// entropy-coded data. Each Component contributes its ID and table
// selectors.
func (w *Writer) WriteProgressiveSOS(comps []Component, ss, se, ah, al int, entropy []byte) {
	payload := make([]byte, 1+2*len(comps)+3)
	payload[0] = byte(len(comps))
	for i, c := range comps {
		payload[1+2*i] = c.ID
		payload[2+2*i] = byte(c.DCSel<<4 | c.ACSel)
	}
	payload[len(payload)-3] = byte(ss)
	payload[len(payload)-2] = byte(se)
	payload[len(payload)-1] = byte(ah<<4 | al)
	w.segment(MarkerSOS, payload)
	w.buf.Write(entropy)
}

// WriteSOS emits the scan header followed by the entropy-coded data.
func (w *Writer) WriteSOS(comps []Component, entropy []byte) {
	payload := make([]byte, 1+2*len(comps)+3)
	payload[0] = byte(len(comps))
	for i, c := range comps {
		payload[1+2*i] = c.ID
		payload[2+2*i] = byte(c.DCSel<<4 | c.ACSel)
	}
	payload[len(payload)-3] = 0  // spectral start
	payload[len(payload)-2] = 63 // spectral end
	payload[len(payload)-1] = 0  // successive approximation
	w.segment(MarkerSOS, payload)
	w.buf.Write(entropy)
}

// Finish emits EOI and returns the complete stream.
func (w *Writer) Finish() []byte {
	w.buf.Write([]byte{0xFF, MarkerEOI})
	return w.buf.Bytes()
}
