package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
)

// The batch executor runs Decode from many goroutines at once. Under
// -race this test proves the decoder, the slab pools and the perfmodel
// cache are safe for that: every mode, several goroutines per mode,
// shared spec and model, bit-identical pixels throughout.
func TestDecodeConcurrentAllModes(t *testing.T) {
	spec := platform.GTX560()
	model, err := perfmodel.TrainQuick(spec)
	if err != nil {
		t.Fatal(err)
	}
	items, err := imagegen.SizeSweep(jfif.Sub420, 0.5, [][2]int{{320, 240}}, 41)
	if err != nil {
		t.Fatal(err)
	}
	data := items[0].Data
	ref, err := Decode(data, Options{Mode: ModeSequential, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}

	const perMode = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(AllModes())*perMode)
	for _, mode := range AllModes() {
		for g := 0; g < perMode; g++ {
			wg.Add(1)
			go func(mode Mode) {
				defer wg.Done()
				res, err := Decode(data, Options{Mode: mode, Spec: spec, Model: model})
				if err != nil {
					errs <- fmt.Errorf("%v: %w", mode, err)
					return
				}
				if !bytes.Equal(res.Image.Pix, ref.Image.Pix) {
					errs <- fmt.Errorf("%v: pixels differ under concurrency", mode)
					return
				}
				// Recycle buffers so pooled-slab reuse is itself exercised
				// concurrently.
				res.Release()
			}(mode)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Released buffers must come back from the pool zeroed and usable: a
// decode after Release produces the same pixels as a fresh one, and a
// VirtualOnly decode (which promises a zeroed image) stays zeroed even
// when its buffers are recycled from a real decode's dirty slabs.
func TestReleaseRecyclesSafely(t *testing.T) {
	spec := platform.GTX680()
	items, err := imagegen.SizeSweep(jfif.Sub422, 0.7, [][2]int{{256, 192}}, 42)
	if err != nil {
		t.Fatal(err)
	}
	data := items[0].Data
	ref, err := Decode(data, Options{Mode: ModeSequential, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	refPix := bytes.Clone(ref.Image.Pix)
	ref.Release()
	if ref.Image.Pix != nil || ref.Frame.Coeff[0] != nil {
		t.Fatal("Release left buffers attached")
	}

	again, err := Decode(data, Options{Mode: ModeGPU, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Image.Pix, refPix) {
		t.Fatal("decode into recycled slabs differs")
	}
	again.Release()

	virt, err := Decode(data, Options{Mode: ModeSIMD, Spec: spec, VirtualOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range virt.Image.Pix {
		if p != 0 {
			t.Fatalf("VirtualOnly image dirty at byte %d (recycled slab not zeroed)", i)
		}
	}
}
