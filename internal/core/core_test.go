package core

import (
	"bytes"
	"image"
	stdjpeg "image/jpeg"
	"testing"

	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
)

func encodeTest(t *testing.T, w, h int, sub jfif.Subsampling, detail float64) []byte {
	t.Helper()
	items, err := imagegen.SizeSweep(sub, detail, [][2]int{{w, h}}, 42)
	if err != nil {
		t.Fatal(err)
	}
	return items[0].Data
}

func quickModel(t testing.TB, spec *platform.Spec) *perfmodel.Model {
	t.Helper()
	m, err := perfmodel.TrainQuick(spec)
	if err != nil {
		t.Fatalf("TrainQuick: %v", err)
	}
	return m
}

func TestAllModesBitExact(t *testing.T) {
	spec := platform.GTX560()
	model := quickModel(t, spec)
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		for _, dim := range [][2]int{{160, 120}, {333, 257}, {512, 384}} {
			data := encodeTest(t, dim[0], dim[1], sub, 0.7)
			ref, err := Decode(data, Options{Mode: ModeSequential, Spec: spec})
			if err != nil {
				t.Fatalf("%v %v sequential: %v", sub, dim, err)
			}
			for _, mode := range AllModes()[1:] {
				res, err := Decode(data, Options{Mode: mode, Spec: spec, Model: model})
				if err != nil {
					t.Fatalf("%v %v %v: %v", sub, dim, mode, err)
				}
				if !bytes.Equal(ref.Image.Pix, res.Image.Pix) {
					diff := 0
					first := -1
					for i := range ref.Image.Pix {
						if ref.Image.Pix[i] != res.Image.Pix[i] {
							diff++
							if first < 0 {
								first = i
							}
						}
					}
					t.Errorf("%v %v %v: %d/%d bytes differ (first at %d, pixel (%d,%d)); stats=%+v",
						sub, dim, mode, diff, len(ref.Image.Pix), first,
						(first/3)%dim[0], (first/3)/dim[0], res.Stats)
				}
			}
		}
	}
}

func TestAllModesBitExactGrayscale(t *testing.T) {
	spec := platform.GTX680()
	model := quickModel(t, spec)
	gray := image.NewGray(image.Rect(0, 0, 130, 94))
	for i := range gray.Pix {
		gray.Pix[i] = byte((i*13 + i/130*7) % 256)
	}
	var buf bytes.Buffer
	if err := stdjpeg.Encode(&buf, gray, &stdjpeg.Options{Quality: 88}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	ref, err := Decode(data, Options{Mode: ModeSequential, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range AllModes()[1:] {
		res, err := Decode(data, Options{Mode: mode, Spec: spec, Model: model})
		if err != nil {
			t.Fatalf("gray %v: %v", mode, err)
		}
		if !bytes.Equal(ref.Image.Pix, res.Image.Pix) {
			t.Errorf("gray %v: pixels differ", mode)
		}
	}
}

func TestSplitKernelsBitExact(t *testing.T) {
	spec := platform.GTX560()
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		data := encodeTest(t, 200, 144, sub, 0.8)
		ref, err := Decode(data, Options{Mode: ModeSequential, Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Decode(data, Options{Mode: ModeGPU, Spec: spec, SplitKernels: true})
		if err != nil {
			t.Fatalf("%v split: %v", sub, err)
		}
		if !bytes.Equal(ref.Image.Pix, res.Image.Pix) {
			t.Errorf("%v: split kernels change pixels", sub)
		}
	}
}

func TestTimelinesValid(t *testing.T) {
	spec := platform.GT430()
	model := quickModel(t, spec)
	data := encodeTest(t, 256, 256, jfif.Sub422, 0.5)
	for _, mode := range AllModes() {
		res, err := Decode(data, Options{Mode: mode, Spec: spec, Model: model})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := res.Timeline.Validate(); err != nil {
			t.Errorf("%v: invalid timeline: %v", mode, err)
		}
		if res.TotalNs <= 0 {
			t.Errorf("%v: non-positive makespan", mode)
		}
		if res.HuffNs <= 0 || res.HuffNs > res.TotalNs {
			t.Errorf("%v: HuffNs %v outside (0, %v]", mode, res.HuffNs, res.TotalNs)
		}
	}
}

func TestChunkingSmallImage(t *testing.T) {
	// Images smaller than one chunk degenerate to a single kernel
	// invocation (Section 6.2).
	spec := platform.GTX560()
	data := encodeTest(t, 64, 48, jfif.Sub422, 0.5)
	res, err := Decode(data, Options{Mode: ModePipelinedGPU, Spec: spec, ChunkRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Chunks != 1 {
		t.Errorf("Chunks=%d want 1", res.Stats.Chunks)
	}
}

func TestPartitionAssignsWorkToBothSides(t *testing.T) {
	// On the mid-range machine a large detailed image should use both
	// CPU and GPU under SPS.
	spec := platform.GT430()
	model := quickModel(t, spec)
	data := encodeTest(t, 768, 768, jfif.Sub422, 0.8)
	res, err := Decode(data, Options{Mode: ModeSPS, Spec: spec, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.GPUMCURows == 0 {
		t.Error("SPS sent nothing to the GPU")
	}
	if res.Stats.CPUMCURows == 0 {
		t.Error("SPS on a weak GPU should keep CPU work")
	}
	t.Logf("GT430 SPS split: gpu=%d cpu=%d of %d", res.Stats.GPUMCURows, res.Stats.CPUMCURows, res.Stats.MCURows)
}
