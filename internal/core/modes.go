package core

import (
	"fmt"
	"sync"

	"hetjpeg/internal/gpusim"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/kernels"
	"hetjpeg/internal/partition"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/sim"
)

// runCPUOnly executes the sequential or SIMD decoder: Huffman then the
// whole-image CPU parallel phase.
func (st *decodeState) runCPUOnly(simd bool) error {
	if !st.virtual() {
		jpegcodec.ParallelPhaseScalarWorkers(st.f, 0, st.f.MCURows, st.out, st.opts.CPUWorkers)
	}

	tl := sim.New()
	st.addHuffTasks(tl, 0, st.f.MCURows)
	addWholeImageCPUTasks(tl, st.f, st.opts.Spec, simd)
	st.res.Timeline = tl
	st.res.Stats.CPUMCURows = st.f.MCURows
	return nil
}

// runGPU executes the GPU-only modes: the whole parallel phase on the
// device, either after full Huffman decoding (Figure 5a) or pipelined
// with it in chunks (Figure 5b).
func (st *decodeState) runGPU(pipelined bool) error {
	f := st.f
	var chunks []*gpuChunk
	if pipelined {
		chunks = st.makeChunks(f.MCURows, st.chunkRows(), f.OutH)
	} else {
		chunks = st.makeChunks(f.MCURows, f.MCURows, f.OutH)
	}
	if st.virtual() {
		st.fillChunkPlans(chunks)
	} else {
		dev := gpusim.NewWithWorkers(st.opts.Spec, st.opts.DeviceWorkers)
		eng := kernels.NewEngine(dev, f, !st.opts.SplitKernels)
		st.runChunksOnDevice(eng, chunks)
		eng.Release()
	}

	tl := sim.New()
	if st.progressive() {
		// Multi-scan entropy must complete before any chunk's
		// coefficients are final: Huffman is a serial prefix, and the
		// pipelined mode degrades to chunked dispatches after it.
		st.addHuffTasks(tl, 0, f.MCURows)
		for _, ck := range chunks {
			st.addGPUChunkTasks(tl, ck)
		}
	} else {
		for _, ck := range chunks {
			st.addHuffTasks(tl, ck.m0, ck.m1)
			st.addGPUChunkTasks(tl, ck)
		}
	}
	st.res.Timeline = tl
	st.res.Stats.GPUMCURows = f.MCURows
	st.res.Stats.Chunks = len(chunks)
	return nil
}

// subModel selects the fitted model for the frame's subsampling;
// grayscale frames borrow the 4:4:4 model (no chroma work, so the CPU
// share is conservatively overestimated).
func (st *decodeState) subModel() (*perfmodel.SubModel, error) {
	if st.opts.Model == nil {
		return nil, fmt.Errorf("core: mode %v requires Options.Model (run perfmodel.Train)", st.opts.Mode)
	}
	sub := st.f.Sub
	if sub == jfif.SubGray {
		sub = jfif.Sub444
	}
	sm := st.opts.Model.ForSub(sub)
	if sm == nil {
		return nil, fmt.Errorf("core: model has no fit for %v", sub)
	}
	return sm, nil
}

// runPartitioned executes SPS (pps=false) and PPS (pps=true).
func (st *decodeState) runPartitioned(pps bool) error {
	f := st.f
	sm, err := st.subModel()
	if err != nil {
		return err
	}
	in := partition.Inputs{
		W:         f.Img.Width,
		H:         f.Img.Height,
		D:         st.d,
		MCURowPix: f.MCUHeight,
		Model:     sm,
		ChunkRows: st.chunkRows(),
		// The balance equations keep working in coded pixel rows (the
		// entropy side is scale-invariant), but the parallel-phase
		// polynomials are evaluated at the scaled output geometry, where
		// the back-phase work actually happens.
		Scale: f.Scale,
	}

	var xMCU int // CPU MCU rows
	if pps {
		xMCU = partition.SolvePPS(in)
	} else {
		xMCU = partition.SolveSPS(in)
	}
	if xMCU > f.MCURows {
		xMCU = f.MCURows
	}
	s := f.MCURows - xMCU // GPU gets the top s MCU rows

	if s <= 0 {
		// The model assigns everything to the CPU (possible on machines
		// where the GPU never pays off for this image size).
		if err := st.runCPUOnly(true); err != nil {
			return err
		}
		st.res.Stats.Chunks = 0
		return nil
	}

	// Build the device chunk list. The PPS re-partition corrects the
	// split from Huffman times observed while earlier chunks run on the
	// device; a progressive image finishes all its entropy before the
	// first dispatch, so there is nothing mid-flight to correct.
	var chunks []*gpuChunk
	if pps {
		chunks = st.makeChunks(s, st.chunkRows(), gpuRowBound(f, s, true))
		if len(chunks) >= 2 && !st.progressive() {
			s = st.repartition(in, sm, chunks, s)
			chunks = st.makeChunks(s, st.chunkRows(), gpuRowBound(f, s, true))
		}
	} else {
		chunks = st.makeChunks(s, s, gpuRowBound(f, s, true))
	}

	tile := st.newCPUTile(s)

	// Real execution: device chunks run concurrently with the CPU tile.
	if st.virtual() {
		st.fillChunkPlans(chunks)
	} else {
		dev := gpusim.NewWithWorkers(st.opts.Spec, st.opts.DeviceWorkers)
		eng := kernels.NewEngine(dev, f, !st.opts.SplitKernels)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.runChunksOnDevice(eng, chunks)
		}()
		tile.exec(f, st.out)
		wg.Wait()
		eng.Release()
	}

	// Virtual timeline: the CPU decodes entropy for the GPU chunks (and
	// dispatches them) first, then its own region's entropy, then its
	// SIMD tile. SPS decodes all entropy before the single dispatch;
	// progressive images do the same under PPS, since every scan must
	// land before the first chunk's coefficients are final.
	tl := sim.New()
	if pps && !st.progressive() {
		for _, ck := range chunks {
			st.addHuffTasks(tl, ck.m0, ck.m1)
			st.addGPUChunkTasks(tl, ck)
		}
		st.addHuffTasks(tl, s, f.MCURows)
	} else {
		st.addHuffTasks(tl, 0, f.MCURows)
		for _, ck := range chunks {
			st.addGPUChunkTasks(tl, ck)
		}
	}
	tile.addTasks(tl, f, st.opts.Spec, true)
	st.res.Timeline = tl
	st.res.Stats.GPUMCURows = s
	st.res.Stats.CPUMCURows = f.MCURows - s
	st.res.Stats.Chunks = len(chunks)
	return nil
}

// repartition implements the Equation (16)/(17) correction: before the
// last GPU chunk is dispatched, the split is recomputed from the actual
// Huffman times observed so far and the estimated remaining device work.
// It returns the corrected GPU MCU-row count.
func (st *decodeState) repartition(in partition.Inputs, sm *perfmodel.SubModel, chunks []*gpuChunk, s int) int {
	f := st.f
	spec := st.opts.Spec

	// Virtual walk of the schedule up to (excluding) the last chunk.
	cpuNow, gpuEnd := 0.0, 0.0
	for _, ck := range chunks[:len(chunks)-1] {
		for m := ck.m0; m < ck.m1; m++ {
			cpuNow += st.rowCost[m]
		}
		cpuNow += spec.DispatchNs(f.CoeffBytes(ck.m0, ck.m1))
		start := gpuEnd
		if cpuNow > start {
			start = cpuNow
		}
		var kns float64
		for _, r := range kernels.CostPlan(spec, f, ck.m0, ck.m1, ck.y0, ck.y1, !st.opts.SplitKernels) {
			kns += r.Ns
		}
		gpuEnd = start + kns
	}
	last := chunks[len(chunks)-1]
	mLast0 := last.m0

	// Equation (17): corrected density of the remaining region.
	estTotal := sm.THuff(float64(f.Img.Width), float64(f.Img.Height), st.d)
	var actualSoFar float64
	for m := 0; m < mLast0; m++ {
		actualSoFar += st.rowCost[m]
	}
	remTime := estTotal - actualSoFar
	if remTime < 1 {
		remTime = 1
	}
	remTimeRatio := remTime / estTotal
	remHeightRatio := float64(f.Img.Height-mLast0*f.MCUHeight) / float64(f.Img.Height)
	dPrime := partition.CorrectedDensity(st.d, remTimeRatio, remHeightRatio)

	// Equation (16): re-solve over the unprocessed region.
	hPrime := f.Img.Height - mLast0*f.MCUHeight
	prevGPUNs := gpuEnd - cpuNow
	if prevGPUNs < 0 {
		prevGPUNs = 0
	}
	xPrime := partition.Repartition(in, hPrime, dPrime, prevGPUNs)

	remRows := f.MCURows - mLast0
	sNew := mLast0 + (remRows - xPrime)
	if sNew < mLast0 {
		sNew = mLast0
	}
	if sNew > f.MCURows {
		sNew = f.MCURows
	}
	if sNew != s {
		st.res.Stats.Repartitioned = true
		st.res.Stats.RepartitionDeltaRows = s - sNew
	}
	return sNew
}
