package core

// Regression coverage for cancellation latency: EntropyDecode promises
// to poll its context every pollRows (32) MCU rows, so a cancelled
// request must abandon a large image within that bound — not decode to
// completion first. The imaged service's deadline propagation (503 on
// timeout without burning the rest of the decode) depends on this.

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/platform"
)

// entropyPollRows mirrors the pollRows constant in EntropyDecode; if
// the pipeline changes its polling cadence this test's bound moves with
// the failure message, not silently.
const entropyPollRows = 32

// pollCountCtx implements context.Context with an Err that flips to
// Canceled on its Nth call — a deterministic way to cancel "mid-decode"
// at an exact poll, independent of machine speed.
type pollCountCtx struct {
	context.Context
	polls     atomic.Int64
	cancelAt  int64
	cancelled atomic.Bool
}

func (c *pollCountCtx) Err() error {
	if c.polls.Add(1) >= c.cancelAt {
		c.cancelled.Store(true)
		return context.Canceled
	}
	return nil
}

func largeFixture(t *testing.T, w, h int) []byte {
	t.Helper()
	items, err := imagegen.SizeSweep(jfif.Sub422, 0.9, [][2]int{{w, h}}, 977)
	if err != nil {
		t.Fatal(err)
	}
	return items[0].Data
}

func TestEntropyDecodeCancelsWithinPollBound(t *testing.T) {
	data := largeFixture(t, 1024, 2048)
	p, err := Prepare(data, Options{Spec: platform.GTX560(), Mode: ModePipelinedGPU})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	total := p.st.ed.TotalRows()
	if total < 8*entropyPollRows {
		t.Fatalf("fixture too small for the bound: %d MCU rows", total)
	}

	const cancelAtPoll = 3
	ctx := &pollCountCtx{Context: context.Background(), cancelAt: cancelAtPoll}
	if err := p.EntropyDecode(ctx); err != context.Canceled {
		t.Fatalf("EntropyDecode = %v, want context.Canceled", err)
	}
	// Cancellation surfaced on poll N: at most N-1 batches of pollRows
	// rows were decoded before it, and none after.
	rows := p.st.ed.Row()
	if maxRows := (cancelAtPoll - 1) * entropyPollRows; rows > maxRows {
		t.Errorf("decoded %d MCU rows after cancelling at poll %d, want <= %d: the poll cadence regressed past %d rows",
			rows, cancelAtPoll, maxRows, entropyPollRows)
	}
	if rows >= total {
		t.Errorf("cancelled decode ran to completion (%d/%d rows)", rows, total)
	}
}

// TestEntropyDecodeCancelLatency measures the wall-clock bound: cancel
// a large in-progress decode and require EntropyDecode to return well
// before it could have finished the image. The fixture is sized so the
// full decode takes many polling intervals; the latency budget is
// generous (it only has to beat "decoded the whole rest of the image").
func TestEntropyDecodeCancelLatency(t *testing.T) {
	data := largeFixture(t, 2048, 2048)

	// Baseline: how long the full entropy stage takes uncancelled.
	warm, err := Prepare(data, Options{Spec: platform.GTX560(), Mode: ModePipelinedGPU})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := warm.EntropyDecode(context.Background()); err != nil {
		t.Fatal(err)
	}
	full := time.Since(t0)
	warm.Release()
	if full < 2*time.Millisecond {
		t.Skipf("full entropy decode only %v on this machine: no room to observe a mid-decode cancel", full)
	}

	p, err := Prepare(data, Options{Spec: platform.GTX560(), Mode: ModePipelinedGPU})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.EntropyDecode(ctx) }()
	// Let the decode get well into the stream, then pull the plug.
	time.Sleep(full / 4)
	cancelled := time.Now()
	cancel()
	err = <-done
	latency := time.Since(cancelled)

	if err == nil {
		// The decode beat the cancel on this run (fast machine): the
		// bounded-rows test above still pins the contract.
		t.Skipf("decode finished in under %v, cancel landed too late", full/4)
	}
	if err != context.Canceled {
		t.Fatalf("EntropyDecode = %v, want context.Canceled", err)
	}
	// The abort must cost at most a few polling intervals, far under
	// finishing the remaining ~3/4 of the image. half the full decode is
	// a loose, machine-independent ceiling.
	if latency > full/2+10*time.Millisecond {
		t.Errorf("cancellation latency %v on a %v decode: poll cadence no longer bounds the abort", latency, full)
	}
}
