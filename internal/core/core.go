// Package core implements the heterogeneous JPEG decoder of the paper:
// six execution modes (sequential, SIMD, GPU, pipelined GPU, SPS, PPS)
// over the re-engineered whole-image-buffer codec, the simulated OpenCL
// device, the fitted performance model and the dynamic partitioning
// schemes. Every mode produces bit-identical pixels; modes differ in how
// work is scheduled, which the per-decode virtual timeline records.
package core

import (
	"fmt"

	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/kernels"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
	"hetjpeg/internal/sim"
)

// Mode selects the execution strategy (the six decoders of Section 6,
// plus the ModeAuto sentinel that picks one).
type Mode int

const (
	// ModeAuto, the zero value, resolves to ModePPS when a performance
	// model is available and ModePipelinedGPU otherwise, so a zero-value
	// Options is self-describing ("best schedule I can run").
	ModeAuto Mode = iota
	// ModeSequential is the libjpeg-style single-threaded scalar decoder.
	ModeSequential
	// ModeSIMD is the libjpeg-turbo analog: same schedule as sequential
	// with the fast CPU parallel phase. It is the paper's baseline.
	ModeSIMD
	// ModeGPU runs the whole parallel phase on the device after full
	// Huffman decoding (Figure 5a).
	ModeGPU
	// ModePipelinedGPU overlaps chunked Huffman decoding with device
	// execution (Figure 5b, Section 4.5).
	ModePipelinedGPU
	// ModeSPS is the simple partitioning scheme (Section 5.2.1).
	ModeSPS
	// ModePPS is the pipelined partitioning scheme with re-partitioning
	// (Section 5.2.2).
	ModePPS
)

var modeNames = map[Mode]string{
	ModeAuto:         "auto",
	ModeSequential:   "sequential",
	ModeSIMD:         "simd",
	ModeGPU:          "gpu",
	ModePipelinedGPU: "pipeline",
	ModeSPS:          "sps",
	ModePPS:          "pps",
}

// Resolve maps ModeAuto to the concrete mode the decoder would pick
// given model availability; concrete modes resolve to themselves.
func (m Mode) Resolve(model *perfmodel.Model) Mode {
	if m != ModeAuto {
		return m
	}
	if model != nil {
		return ModePPS
	}
	return ModePipelinedGPU
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	if n, ok := modeNames[m]; ok {
		return n
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// AllModes lists the six modes in the paper's order.
func AllModes() []Mode {
	return []Mode{ModeSequential, ModeSIMD, ModeGPU, ModePipelinedGPU, ModeSPS, ModePPS}
}

// Options configures a decode.
type Options struct {
	Mode Mode
	// Spec is the simulated machine; required.
	Spec *platform.Spec
	// Model is the fitted performance model; required for SPS and PPS.
	Model *perfmodel.Model
	// ChunkRows overrides the pipelining chunk size (MCU rows).
	ChunkRows int
	// SplitKernels disables the Section 4.4 kernel merging (ablation).
	SplitKernels bool
	// VirtualOnly skips the real pixel work and fills the timeline from
	// the analytic cost plan (identical to executed costs; asserted by
	// tests). The returned Image is zeroed. Large experiment sweeps use
	// it to evaluate schedules cheaply.
	VirtualOnly bool
	// CPUWorkers sets the intra-image worker pool for the CPU parallel
	// phase of the sequential/SIMD modes (the paper's CPU-side band
	// decomposition). 0 or 1 runs the fused single-threaded pipeline;
	// output is byte-identical either way. It affects host wall-clock
	// only — the virtual timeline models the single-core schedule.
	CPUWorkers int
	// DeviceWorkers bounds the host goroutines simulating one decode's
	// device (kernel work-groups). 0 means GOMAXPROCS. Batch decoding
	// splits a shared budget across concurrent images so N in-flight
	// decodes do not contend on N×GOMAXPROCS device workers. Virtual
	// costs and pixels are unaffected; only host wall-clock changes.
	DeviceWorkers int
	// Scale selects decode-to-scale (1/2, 1/4, 1/8): the back phase
	// reconstructs directly at the reduced resolution through scaled
	// IDCT kernels, in every mode. The zero value decodes full size;
	// invalid values fail with jpegcodec.ErrUnsupportedScale.
	Scale jpegcodec.Scale
	// Salvage switches the entropy stage into error-resilient mode: an
	// entropy error resynchronizes at the next restart marker (zeroing
	// the lost MCUs) instead of failing the decode. An impaired decode
	// returns BOTH a usable Result (Result.Salvage describes the damage)
	// and an error wrapping jpegcodec.ErrPartialData. Salvage lives
	// entirely in the sequential entropy stage, so every mode and
	// scheduler still produces byte-identical pixels. On a clean stream
	// behavior is exactly strict mode.
	Salvage bool
}

// Stats reports scheduling decisions.
type Stats struct {
	MCURows       int
	GPUMCURows    int // MCU rows processed by the device
	CPUMCURows    int // MCU rows processed by the CPU tile
	Chunks        int
	Repartitioned bool
	// RepartitionDeltaRows is the signed MCU-row change of the CPU share
	// made by the Equation (16) re-partitioning step.
	RepartitionDeltaRows int
	// EntropyScans counts the entropy-coded scans: 1 for baseline,
	// the scan-script length for progressive images.
	EntropyScans int
	// Scale is the decode scale denominator that ran (1, 2, 4 or 8).
	Scale int
}

// Result is a finished decode.
type Result struct {
	Image    *jpegcodec.RGBImage
	Frame    *jpegcodec.Frame
	Timeline *sim.Timeline
	// TotalNs is the virtual makespan of the schedule.
	TotalNs float64
	// HuffNs is the total virtual Huffman time (the Amdahl bound's
	// denominator, Figure 11).
	HuffNs float64
	Stats  Stats
	// Salvage is non-nil iff Options.Salvage was set and the stream was
	// impaired: the decode absorbed entropy errors and the report lists
	// what was lost. A salvaged decode's pixels are fully usable.
	Salvage *jpegcodec.SalvageReport
}

// Release returns the decode's large buffers (coefficients, sample
// planes, RGB pixels) to the codec's slab pools and nils Image.Pix,
// Frame.Coeff and Frame.Samples. Call it only when the result's pixels
// are no longer needed — a long-running service does so after encoding
// its response, keeping steady-state allocation flat. Releasing is
// optional; an unreleased result is simply garbage-collected.
func (r *Result) Release() {
	if r.Frame != nil {
		r.Frame.Release()
	}
	if r.Image != nil {
		r.Image.Release()
	}
}

// Decode decompresses a baseline JPEG stream under the given mode.
// With Options.Salvage set, an impaired-but-decodable stream returns
// BOTH a usable *Result and an error wrapping jpegcodec.ErrPartialData
// (Result.Salvage holds the report); callers must check the Result
// before treating the error as fatal.
func Decode(data []byte, opts Options) (*Result, error) {
	p, err := Prepare(data, opts)
	if err != nil {
		return nil, err
	}
	// Entropy decoding is strictly sequential (variable-length codes);
	// every mode performs it on the CPU. Real decode happens up front;
	// the virtual timeline places the per-row costs according to the
	// mode's schedule.
	if err := p.EntropyDecode(nil); err != nil {
		p.Release() // corrupt stream: hand the slabs back to the pools
		return nil, err
	}
	res, err := p.finish(false)
	if err != nil {
		p.Release()
		return nil, err
	}
	return res, res.Salvage.Err()
}

// decodeState carries one decode through its mode runner.
type decodeState struct {
	opts Options
	f    *jpegcodec.Frame
	ed   *jpegcodec.EntropyDecoder
	out  *jpegcodec.RGBImage
	d    float64 // entropy density

	// skipReal suppresses the real pixel work of the mode runners (an
	// external band scheduler owns it) while still building the mode's
	// exact virtual timeline and stats — the analytic cost plans are
	// identical to executed costs (asserted by tests), so the result is
	// indistinguishable from an executed decode except that out is
	// filled by the external scheduler rather than the runner.
	skipReal bool

	rowCost []float64 // virtual huffman ns per MCU row
	res     Result
}

// virtual reports whether the mode runners should skip real pixel work:
// either the caller asked for a virtual-only decode, or an external
// scheduler executes the back phase.
func (st *decodeState) virtual() bool { return st.opts.VirtualOnly || st.skipReal }

// progressive reports whether the frame is multi-scan. Progressive
// coefficients are final only after the last scan, so the virtual
// schedules treat the whole entropy stage as a serial prefix: no device
// chunk may overlap Huffman work, and the PPS mid-decode re-partition
// (which corrects the split while entropy and device work overlap) does
// not apply. The back phase itself is unchanged.
func (st *decodeState) progressive() bool { return st.f.Img.Progressive }

func (st *decodeState) huffTotal() float64 {
	var s float64
	for _, c := range st.rowCost {
		s += c
	}
	return s
}

func (st *decodeState) chunkRows() int {
	if st.opts.ChunkRows > 0 {
		return st.opts.ChunkRows
	}
	if st.opts.Model != nil && st.opts.Model.ChunkRows > 0 {
		return st.opts.Model.ChunkRows
	}
	return st.opts.Spec.DefaultChunkRows
}

// blocksPerMCURow counts coefficient blocks per MCU row.
func blocksPerMCURow(f *jpegcodec.Frame) int {
	n := 0
	for _, c := range f.Img.Components {
		n += c.H * c.V
	}
	return n * f.MCUsPerRow
}

// regionBlocks counts coefficient blocks in MCU rows [m0, m1).
func regionBlocks(f *jpegcodec.Frame, m0, m1 int) int {
	n := 0
	for _, p := range f.Planes {
		n += (m1 - m0) * p.V * p.BlocksPerRow
	}
	return n
}

// gpuRowBound maps a GPU-side chunk boundary at MCU row m to the output
// pixel row where its color conversion stops. Interior 4:2:0 boundaries
// shift up one row: that output row's vertical filter needs the next
// chunk's chroma samples, so it is deferred to the consumer of the
// boundary (the next chunk or the CPU tile). Units are output rows
// (MCUOutH per MCU row), so the rule holds at every decode scale.
func gpuRowBound(f *jpegcodec.Frame, m int, isEnd bool) int {
	if m <= 0 {
		return 0
	}
	if m >= f.MCURows {
		return f.OutH
	}
	y := m * f.MCUOutH
	if f.Sub == jfif.Sub420 {
		y--
	}
	_ = isEnd
	if y > f.OutH {
		y = f.OutH
	}
	return y
}

// addHuffTasks appends per-MCU-row Huffman tasks for rows [m0, m1) on the
// CPU resource and returns the last task (or nil).
func (st *decodeState) addHuffTasks(tl *sim.Timeline, m0, m1 int) *sim.Task {
	var last *sim.Task
	for m := m0; m < m1; m++ {
		last = tl.Add(sim.ResCPU, sim.KindHuffman, fmt.Sprintf("huff row %d", m), st.rowCost[m])
	}
	return last
}

// addGPUChunkTasks appends dispatch (CPU) and the executed device records
// (GPU queue) for one chunk. The first device record depends on the
// dispatch.
func (st *decodeState) addGPUChunkTasks(tl *sim.Timeline, ck *gpuChunk) {
	disp := tl.Add(sim.ResCPU, sim.KindDispatch, fmt.Sprintf("dispatch[%d,%d)", ck.m0, ck.m1),
		st.opts.Spec.DispatchNs(st.f.CoeffBytes(ck.m0, ck.m1)))
	dep := disp
	for _, r := range ck.recs {
		dep = tl.Add(sim.ResGPU, r.Kind, r.Label, r.Ns, dep)
	}
}

// gpuChunk is one unit of device work.
type gpuChunk struct {
	m0, m1 int
	y0, y1 int
	recs   []kernels.CostRecord
}

// runChunksOnDevice executes the chunks in order on the simulated device,
// recording their cost records. It runs in a separate goroutine in the
// partitioned modes so host wall-clock time also overlaps.
func (st *decodeState) runChunksOnDevice(eng *kernels.Engine, chunks []*gpuChunk) {
	for _, ck := range chunks {
		ck.recs = eng.DecodeChunk(ck.m0, ck.m1, ck.y0, ck.y1, st.out)
	}
}

// makeChunks slices GPU MCU rows [0, s) into pipeline chunks of size c,
// assigning 4:2:0-aware pixel-row bounds. yEnd is the pixel row where the
// GPU region's conversion must stop (the CPU tile owns rows beyond it).
func (st *decodeState) makeChunks(s, c int, yEnd int) []*gpuChunk {
	var chunks []*gpuChunk
	for m0 := 0; m0 < s; m0 += c {
		m1 := m0 + c
		if m1 > s {
			m1 = s
		}
		y0 := gpuRowBound(st.f, m0, false)
		var y1 int
		if m1 == s {
			y1 = yEnd
		} else {
			y1 = gpuRowBound(st.f, m1, false)
		}
		chunks = append(chunks, &gpuChunk{m0: m0, m1: m1, y0: y0, y1: y1})
	}
	return chunks
}

// fillChunkPlans populates chunk cost records from the analytic plan
// without executing kernels (VirtualOnly decodes).
func (st *decodeState) fillChunkPlans(chunks []*gpuChunk) {
	for _, ck := range chunks {
		ck.recs = kernels.CostPlan(st.opts.Spec, st.f, ck.m0, ck.m1, ck.y0, ck.y1, !st.opts.SplitKernels)
	}
}
