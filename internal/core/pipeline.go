package core

import (
	"context"
	"errors"
	"fmt"

	"hetjpeg/internal/jpegcodec"
)

// Prepared is a decode split open at the paper's pipeline boundary: the
// strictly sequential entropy stage on one side and the data-parallel
// back phase on the other. The batch band scheduler drives the two
// stages itself — entropy decoding several images in flight while a
// shared worker pool executes back-phase bands from all of them — so it
// needs the pieces of Decode as separate steps:
//
//	p, _ := core.Prepare(data, opts)       // parse + allocate (cheap)
//	_ = p.EntropyDecode(ctx)               // stage 1: serial Huffman
//	res, _ := p.FinishVirtual()            // the mode's virtual schedule
//	bp := jpegcodec.PlanBands(p.Frame(), ...)
//	... execute bands into p.Output() on any pool ...
//
// Decode itself is Prepare + EntropyDecode + an executing finish.
type Prepared struct {
	st          *decodeState
	entropyDone bool
	finished    bool
}

// Prepare parses the stream, allocates the whole-image buffers and
// resolves ModeAuto. No entropy decoding happens yet.
func Prepare(data []byte, opts Options) (*Prepared, error) {
	if opts.Spec == nil {
		return nil, errors.New("core: Options.Spec is required")
	}
	opts.Mode = opts.Mode.Resolve(opts.Model)
	var (
		f   *jpegcodec.Frame
		ed  *jpegcodec.EntropyDecoder
		err error
	)
	if opts.Salvage {
		f, ed, err = jpegcodec.PrepareDecodeSalvageScaled(data, opts.Scale)
	} else {
		f, ed, err = jpegcodec.PrepareDecodeScaled(data, opts.Scale)
	}
	if err != nil {
		return nil, err
	}
	st := &decodeState{
		opts: opts,
		f:    f,
		ed:   ed,
		out:  jpegcodec.NewRGBImage(f.OutW, f.OutH),
		d:    f.Img.EntropyDensity(),
	}
	return &Prepared{st: st}, nil
}

// Frame exposes the parsed frame (geometry, coefficient buffers).
func (p *Prepared) Frame() *jpegcodec.Frame { return p.st.f }

// Output exposes the whole-image RGB buffer external band executors
// write into; it becomes Result.Image after FinishVirtual.
func (p *Prepared) Output() *jpegcodec.RGBImage { return p.st.out }

// Mode returns the resolved execution mode.
func (p *Prepared) Mode() Mode { return p.st.opts.Mode }

// EntropyDecode runs stage 1: sequential Huffman decoding of the whole
// image into the coefficient buffer, recording per-row bit counts and
// their virtual costs. ctx (may be nil) is polled every few MCU rows so
// a cancelled batch abandons a large image mid-stream.
func (p *Prepared) EntropyDecode(ctx context.Context) error {
	if p.entropyDone {
		return nil
	}
	st := p.st
	// 32 MCU rows ≈ a few hundred microseconds of entropy work between
	// cancellation checks.
	const pollRows = 32
	for !st.ed.Done() {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if _, err := st.ed.DecodeRows(pollRows); err != nil {
			return err
		}
	}
	st.rowCost = make([]float64, st.f.MCURows)
	blocksPerRow := blocksPerMCURow(st.f)
	//hetlint:nopoll one polynomial evaluation per MCU row, microseconds for the whole image
	for i, bits := range st.ed.BitsPerRow {
		st.rowCost[i] = st.opts.Spec.HuffmanNs(bits, blocksPerRow)
	}
	p.entropyDone = true
	return nil
}

// FinishVirtual builds the resolved mode's virtual timeline, statistics
// and result without executing the back phase: the caller owns the real
// pixel work (band tasks into Output). Timeline, stats and virtual
// times are identical to an executing Decode of the same mode — the
// analytic cost plans match executed kernel costs exactly.
func (p *Prepared) FinishVirtual() (*Result, error) { return p.finish(true) }

func (p *Prepared) finish(skipReal bool) (*Result, error) {
	if !p.entropyDone {
		return nil, errors.New("core: finish before EntropyDecode")
	}
	if p.finished {
		return nil, errors.New("core: decode already finished")
	}
	p.finished = true
	st := p.st
	st.skipReal = skipReal
	var err error
	switch st.opts.Mode {
	case ModeSequential:
		err = st.runCPUOnly(false)
	case ModeSIMD:
		err = st.runCPUOnly(true)
	case ModeGPU:
		err = st.runGPU(false)
	case ModePipelinedGPU:
		err = st.runGPU(true)
	case ModeSPS:
		err = st.runPartitioned(false)
	case ModePPS:
		err = st.runPartitioned(true)
	default:
		err = fmt.Errorf("core: unknown mode %v", st.opts.Mode)
	}
	if err != nil {
		return nil, err
	}
	st.res.Image = st.out
	st.res.Frame = st.f
	st.res.Stats.MCURows = st.f.MCURows
	st.res.Stats.Scale = st.f.Scale
	st.res.Stats.EntropyScans = 1
	if st.f.Img.Progressive {
		st.res.Stats.EntropyScans = len(st.f.Img.Scans)
	}
	st.res.HuffNs = st.huffTotal()
	st.res.TotalNs = st.res.Timeline.Makespan()
	if rep := st.ed.SalvageReport(); rep.Impaired() {
		st.res.Salvage = rep
	}
	return &st.res, nil
}

// Release returns the prepared decode's buffers (coefficients, sample
// planes, RGB pixels) to the slab pools — the abandon path for a decode
// that failed or was cancelled before its result was handed out. Do not
// call it after the result's Image left the scheduler.
func (p *Prepared) Release() {
	p.st.f.Release()
	p.st.out.Release()
}
