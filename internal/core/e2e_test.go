package core

import (
	"bytes"
	"testing"

	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/platform"
	"hetjpeg/internal/sim"
)

// End-to-end behaviors across the full heterogeneous stack.

func TestRestartIntervalStreamAllModes(t *testing.T) {
	spec := platform.GTX560()
	model := quickModel(t, spec)
	img := imagegen.Generate(imagegen.Scene{Seed: 21, Detail: 0.7}, 320, 256)
	data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{
		Quality:         85,
		Subsampling:     jfif.Sub422,
		RestartInterval: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Decode(data, Options{Mode: ModeSequential, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range AllModes()[1:] {
		res, err := Decode(data, Options{Mode: mode, Spec: spec, Model: model})
		if err != nil {
			t.Fatalf("%v with restarts: %v", mode, err)
		}
		if !bytes.Equal(ref.Image.Pix, res.Image.Pix) {
			t.Errorf("%v: restart-interval stream decodes differently", mode)
		}
	}
}

func TestOptimizedHuffmanStreamAllModes(t *testing.T) {
	spec := platform.GTX680()
	model := quickModel(t, spec)
	img := imagegen.Generate(imagegen.Scene{Seed: 22, Detail: 0.5}, 200, 280)
	data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{
		Quality:         80,
		Subsampling:     jfif.Sub420,
		OptimizeHuffman: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Decode(data, Options{Mode: ModeSequential, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range AllModes()[1:] {
		res, err := Decode(data, Options{Mode: mode, Spec: spec, Model: model})
		if err != nil {
			t.Fatalf("%v optimized tables: %v", mode, err)
		}
		if !bytes.Equal(ref.Image.Pix, res.Image.Pix) {
			t.Errorf("%v: optimized-table stream decodes differently", mode)
		}
	}
}

func TestVirtualOnlyMatchesExecutedTimeline(t *testing.T) {
	spec := platform.GTX560()
	model := quickModel(t, spec)
	data := encodeTest(t, 400, 304, jfif.Sub422, 0.6)
	for _, mode := range AllModes() {
		real, err := Decode(data, Options{Mode: mode, Spec: spec, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		virt, err := Decode(data, Options{Mode: mode, Spec: spec, Model: model, VirtualOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if rel := (real.TotalNs - virt.TotalNs) / real.TotalNs; rel > 1e-9 || rel < -1e-9 {
			t.Errorf("%v: virtual-only makespan %.3f != executed %.3f", mode, virt.TotalNs, real.TotalNs)
		}
		if real.Stats != virt.Stats {
			t.Errorf("%v: stats differ: %+v vs %+v", mode, real.Stats, virt.Stats)
		}
	}
}

func TestPPSRepartitionOnSkewedImage(t *testing.T) {
	// A top-smooth/bottom-dense image: the uniform-density assumption
	// underestimates the remainder, and the correction should move rows.
	spec := platform.GTX560()
	model := quickModel(t, spec)
	img := imagegen.GenerateGradientDetail(31, 1024, 1024, 0.0, 1.0)
	data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{Quality: 85, Subsampling: jfif.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(data, Options{Mode: ModePPS, Spec: spec, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Chunks < 2 {
		t.Skip("image too small for repartitioning on this configuration")
	}
	t.Logf("repartitioned=%v delta=%d gpu=%d cpu=%d",
		res.Stats.Repartitioned, res.Stats.RepartitionDeltaRows,
		res.Stats.GPUMCURows, res.Stats.CPUMCURows)
	// Bit-exactness still holds after repartitioning.
	ref, err := Decode(data, Options{Mode: ModeSequential, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref.Image.Pix, res.Image.Pix) {
		t.Error("repartitioned decode altered pixels")
	}
}

func TestSchedulesAreDeterministic(t *testing.T) {
	spec := platform.GT430()
	model := quickModel(t, spec)
	data := encodeTest(t, 512, 384, jfif.Sub444, 0.8)
	for _, mode := range []Mode{ModePipelinedGPU, ModeSPS, ModePPS} {
		a, err := Decode(data, Options{Mode: mode, Spec: spec, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Decode(data, Options{Mode: mode, Spec: spec, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		if a.TotalNs != b.TotalNs || a.Stats != b.Stats {
			t.Errorf("%v: schedule not deterministic (%v/%v vs %v/%v)",
				mode, a.TotalNs, a.Stats, b.TotalNs, b.Stats)
		}
	}
}

func TestTimelineBreakdownCoversAllWork(t *testing.T) {
	// Every mode's timeline must contain Huffman work equal to the
	// image's total entropy cost, regardless of how it is scheduled.
	spec := platform.GTX680()
	model := quickModel(t, spec)
	data := encodeTest(t, 300, 300, jfif.Sub422, 0.6)
	var huffTotals []float64
	for _, mode := range AllModes() {
		res, err := Decode(data, Options{Mode: mode, Spec: spec, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		huffTotals = append(huffTotals, res.Timeline.KindTotal(sim.KindHuffman))
	}
	for i := 1; i < len(huffTotals); i++ {
		if d := huffTotals[i] - huffTotals[0]; d > 1 || d < -1 {
			t.Errorf("mode %v: huffman total %.1f differs from sequential %.1f",
				AllModes()[i], huffTotals[i], huffTotals[0])
		}
	}
}

func TestTinyImagesAllModes(t *testing.T) {
	// Degenerate dimensions exercise every boundary: 1-pixel rows,
	// single MCU, partial MCUs in both axes.
	spec := platform.GTX560()
	model := quickModel(t, spec)
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		for _, dim := range [][2]int{{1, 1}, {8, 8}, {16, 16}, {17, 1}, {1, 17}, {15, 31}} {
			data := encodeTest(t, dim[0], dim[1], sub, 0.5)
			ref, err := Decode(data, Options{Mode: ModeSequential, Spec: spec})
			if err != nil {
				t.Fatalf("%v %v sequential: %v", sub, dim, err)
			}
			for _, mode := range AllModes()[1:] {
				res, err := Decode(data, Options{Mode: mode, Spec: spec, Model: model})
				if err != nil {
					t.Fatalf("%v %v %v: %v", sub, dim, mode, err)
				}
				if !bytes.Equal(ref.Image.Pix, res.Image.Pix) {
					t.Errorf("%v %v %v: pixels differ", sub, dim, mode)
				}
			}
		}
	}
}

func TestSplitKernelsAllPartitionedModes(t *testing.T) {
	spec := platform.GTX560()
	model := quickModel(t, spec)
	data := encodeTest(t, 384, 288, jfif.Sub420, 0.7)
	ref, err := Decode(data, Options{Mode: ModeSequential, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModePipelinedGPU, ModeSPS, ModePPS} {
		res, err := Decode(data, Options{Mode: mode, Spec: spec, Model: model, SplitKernels: true})
		if err != nil {
			t.Fatalf("%v split: %v", mode, err)
		}
		if !bytes.Equal(ref.Image.Pix, res.Image.Pix) {
			t.Errorf("%v split kernels: pixels differ", mode)
		}
	}
}
