package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
)

// TestScaledModesIdenticalQuick decodes one fixture per subsampling
// through every mode at every scale and asserts byte-identity with the
// scalar scaled reference (the conformance harness runs the full
// corpus; this is the fast in-package gate).
func TestScaledModesIdenticalQuick(t *testing.T) {
	spec := platform.ByName("GTX 560")
	model, err := perfmodel.TrainQuick(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		items, err := imagegen.SizeSweep(sub, 0.6, [][2]int{{161, 117}}, 23)
		if err != nil {
			t.Fatal(err)
		}
		data := items[0].Data
		for _, scale := range []jpegcodec.Scale{jpegcodec.Scale1, jpegcodec.Scale2, jpegcodec.Scale4, jpegcodec.Scale8} {
			ref, err := jpegcodec.DecodeScalarScaled(data, scale)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range AllModes() {
				name := fmt.Sprintf("%v-scale%v-%v", sub, scale, mode)
				res, err := Decode(data, Options{
					Mode: mode, Spec: spec, Model: model, Scale: scale, CPUWorkers: 3,
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if res.Image.W != ref.W || res.Image.H != ref.H {
					t.Fatalf("%s: dimensions %dx%d, want %dx%d", name, res.Image.W, res.Image.H, ref.W, ref.H)
				}
				if !bytes.Equal(res.Image.Pix, ref.Pix) {
					t.Errorf("%s: pixels differ from scalar scaled reference", name)
				}
				if res.Stats.Scale != scale.Denominator() {
					t.Errorf("%s: Stats.Scale = %d, want %d", name, res.Stats.Scale, scale.Denominator())
				}
				res.Release()
			}
			ref.Release()
		}
	}
}

// TestScaledVirtualMatchesExecuted asserts a VirtualOnly scaled decode
// produces the same virtual timeline totals as the executing decode —
// the analytic scaled cost plans must match executed kernel costs.
func TestScaledVirtualMatchesExecuted(t *testing.T) {
	spec := platform.ByName("GT 430")
	items, err := imagegen.SizeSweep(jfif.Sub420, 0.5, [][2]int{{200, 152}}, 29)
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []jpegcodec.Scale{jpegcodec.Scale2, jpegcodec.Scale8} {
		for _, mode := range []Mode{ModeGPU, ModePipelinedGPU} {
			real, err := Decode(items[0].Data, Options{Mode: mode, Spec: spec, Scale: scale})
			if err != nil {
				t.Fatal(err)
			}
			virt, err := Decode(items[0].Data, Options{Mode: mode, Spec: spec, Scale: scale, VirtualOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			if d := real.TotalNs - virt.TotalNs; d > 1e-6*(1+real.TotalNs) || d < -1e-6*(1+real.TotalNs) {
				t.Errorf("scale %v mode %v: executed %.3f ns vs virtual %.3f ns", scale, mode, real.TotalNs, virt.TotalNs)
			}
			real.Release()
			virt.Release()
		}
	}
}

// TestScaledInvalidScaleSentinel pins the typed error through the core
// API.
func TestScaledInvalidScaleSentinel(t *testing.T) {
	spec := platform.ByName("GTX 560")
	_, err := Decode([]byte("not a jpeg"), Options{Mode: ModeSequential, Spec: spec, Scale: 3})
	if !errors.Is(err, jpegcodec.ErrUnsupportedScale) {
		t.Fatalf("err = %v, want ErrUnsupportedScale", err)
	}
}
