package core

import (
	"hetjpeg/internal/dct"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/platform"
	"hetjpeg/internal/sim"
)

// idctCostFactor scales the per-block CPU IDCT cost for decode-to-scale:
// the scaled transforms do a fraction of the full kernel's arithmetic
// (the same ratio the device cost model uses).
func idctCostFactor(f *jpegcodec.Frame) float64 {
	bp := f.BlockPixels()
	if bp == 8 {
		return 1
	}
	return dct.ScaledOpsPerBlock(bp) / dct.ScaledOpsPerBlock(8)
}

// cpuTile describes the CPU share of a partitioned decode: MCU rows
// [s, MCURows) plus the pixel rows it color-converts (which start one row
// early for 4:2:0, taking over the boundary row the GPU cannot finish).
type cpuTile struct {
	s      int // first CPU MCU row
	yStart int // first pixel row the CPU converts
}

// newCPUTile computes the tile for a split at MCU row s.
func (st *decodeState) newCPUTile(s int) cpuTile {
	return cpuTile{s: s, yStart: gpuRowBound(st.f, s, true)}
}

// empty reports whether the CPU share is empty.
func (t cpuTile) empty(f *jpegcodec.Frame) bool { return t.s >= f.MCURows }

// exec runs the tile's real work: IDCT of its MCU rows (plus the one
// block-row halo above that the 4:2:0 vertical filter needs), then
// upsampling and color conversion of its pixel rows.
func (t cpuTile) exec(f *jpegcodec.Frame, out *jpegcodec.RGBImage) {
	if t.empty(f) {
		return
	}
	for c := range f.Planes {
		jpegcodec.IDCTRange(f, c, t.s, f.MCURows)
	}
	if f.Sub == jfif.Sub420 && t.s > 0 {
		// Halo: the boundary pixel row 16s-1 reads luma block row 2s-1
		// and chroma block rows s-1, all inside the GPU's MCU rows.
		jpegcodec.IDCTBlockRows(f, 0, 2*t.s-1, 2*t.s)
		for c := 1; c < len(f.Planes); c++ {
			jpegcodec.IDCTBlockRows(f, c, t.s-1, t.s)
		}
	}
	jpegcodec.ColorConvertRange(f, t.yStart, f.OutH, out)
}

// addTasks appends the tile's virtual stage costs (SIMD path) to the CPU
// resource: IDCT, upsampling and color conversion as separate tasks so
// breakdown figures can attribute them.
func (t cpuTile) addTasks(tl *sim.Timeline, f *jpegcodec.Frame, spec *platform.Spec, simd bool) {
	if t.empty(f) {
		return
	}
	c := spec.CPUScalar
	if simd {
		c = spec.CPUSIMD
	}
	blocks := regionBlocks(f, t.s, f.MCURows)
	if f.Sub == jfif.Sub420 && t.s > 0 {
		blocks += f.Planes[0].BlocksPerRow + 2*f.Planes[1].BlocksPerRow
	}
	rows := f.OutH - t.yStart
	pixels := rows * f.OutW
	tl.Add(sim.ResCPU, sim.KindIDCT, "cpu idct", float64(blocks)*c.IDCTNsPerBlock*idctCostFactor(f))
	if f.Sub == jfif.Sub422 || f.Sub == jfif.Sub420 {
		tl.Add(sim.ResCPU, sim.KindUpsample, "cpu upsample", float64(pixels)*c.UpsampleNsPerPix)
	}
	tl.Add(sim.ResCPU, sim.KindColor, "cpu color",
		float64(pixels)*(c.ColorNsPerPix+c.StoreNsPerPix)+float64(rows)*c.RowOverheadNsPerY)
}

// addWholeImageCPUTasks appends stage tasks for the full-image CPU
// parallel phase (sequential and SIMD modes).
func addWholeImageCPUTasks(tl *sim.Timeline, f *jpegcodec.Frame, spec *platform.Spec, simd bool) {
	c := spec.CPUScalar
	if simd {
		c = spec.CPUSIMD
	}
	blocks := regionBlocks(f, 0, f.MCURows)
	rows := f.OutH
	pixels := rows * f.OutW
	tl.Add(sim.ResCPU, sim.KindIDCT, "cpu idct", float64(blocks)*c.IDCTNsPerBlock*idctCostFactor(f))
	if f.Sub == jfif.Sub422 || f.Sub == jfif.Sub420 {
		tl.Add(sim.ResCPU, sim.KindUpsample, "cpu upsample", float64(pixels)*c.UpsampleNsPerPix)
	}
	tl.Add(sim.ResCPU, sim.KindColor, "cpu color",
		float64(pixels)*(c.ColorNsPerPix+c.StoreNsPerPix)+float64(rows)*c.RowOverheadNsPerY)
}
