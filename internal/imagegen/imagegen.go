// Package imagegen synthesizes photographic-texture test images with
// controllable detail, substituting for the paper's training corpus (12
// benchmark images + 7 photographs, cropped to 4449 sizes) and test
// corpus (14 + 3, cropped to 3597 sizes). The generator spans the same
// parameter space the performance model consumes: image width, height,
// and entropy density (bytes of compressed data per pixel), the latter
// controlled by the amount of high-frequency texture.
package imagegen

import (
	"fmt"

	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
)

// Scene parameterizes one synthetic photograph.
type Scene struct {
	Seed int64
	// Detail in [0,1] scales high-frequency texture amplitude: 0 yields
	// smooth gradients (sparse entropy), 1 yields dense texture.
	Detail float64
}

// hash64 is a SplitMix64-style avalanche over lattice coordinates.
func hash64(x, y int64, seed int64) uint64 {
	z := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ uint64(seed)*0x165667B19E3779F9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// latticeValue returns a deterministic value in [0,1) at a lattice point.
func latticeValue(x, y int64, seed int64) float64 {
	return float64(hash64(x, y, seed)>>11) / float64(1<<53)
}

// valueNoise samples smooth value noise at (x, y) with cell size `cell`.
func valueNoise(x, y float64, cell float64, seed int64) float64 {
	gx, gy := x/cell, y/cell
	x0, y0 := int64(gx), int64(gy)
	fx, fy := gx-float64(x0), gy-float64(y0)
	// Smoothstep interpolation weights.
	sx := fx * fx * (3 - 2*fx)
	sy := fy * fy * (3 - 2*fy)
	v00 := latticeValue(x0, y0, seed)
	v10 := latticeValue(x0+1, y0, seed)
	v01 := latticeValue(x0, y0+1, seed)
	v11 := latticeValue(x0+1, y0+1, seed)
	top := v00 + (v10-v00)*sx
	bot := v01 + (v11-v01)*sx
	return top + (bot-top)*sy
}

// Generate renders a w x h RGB image for the scene. The composition is a
// smooth multi-octave base (low entropy) plus detail-scaled fine octaves
// and per-pixel grain (high entropy).
func Generate(sc Scene, w, h int) *jpegcodec.RGBImage {
	img := jpegcodec.NewRGBImage(w, h)
	d := sc.Detail
	if d < 0 {
		d = 0
	}
	if d > 1 {
		d = 1
	}
	for y := 0; y < h; y++ {
		fy := float64(y)
		row := img.Pix[y*w*3 : (y+1)*w*3]
		for x := 0; x < w; x++ {
			fx := float64(x)
			// Smooth base: two large octaves.
			base := 0.6*valueNoise(fx, fy, 96, sc.Seed) + 0.4*valueNoise(fx, fy, 33, sc.Seed+1)
			// Detail octaves.
			det := 0.5*valueNoise(fx, fy, 9, sc.Seed+2) +
				0.3*valueNoise(fx, fy, 3.2, sc.Seed+3) +
				0.2*latticeValue(int64(x), int64(y), sc.Seed+4) // grain
			luma := 255 * (0.25 + 0.5*base + d*0.45*(det-0.5))
			// Chroma varies smoothly with a small detail component.
			cb := 0.5*valueNoise(fx, fy, 71, sc.Seed+5) + d*0.15*(valueNoise(fx, fy, 7, sc.Seed+6)-0.5)
			cr := 0.5*valueNoise(fx, fy, 59, sc.Seed+7) + d*0.15*(valueNoise(fx, fy, 11, sc.Seed+8)-0.5)
			r := clampF(luma + 180*(cr-0.25))
			g := clampF(luma - 90*(cr-0.25) - 60*(cb-0.25))
			b := clampF(luma + 200*(cb-0.25))
			row[x*3], row[x*3+1], row[x*3+2] = r, g, b
		}
	}
	return img
}

func clampF(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// Item is one corpus entry: an encoded JPEG plus its descriptors.
type Item struct {
	Name    string
	Data    []byte
	W, H    int
	Sub     jfif.Subsampling
	Detail  float64
	Density float64 // bytes per pixel (Equation 3)
	// Progressive marks a multi-scan (SOF2) fixture.
	Progressive bool
	// RestartInterval is the fixture's DRI value (0 when absent).
	RestartInterval int
}

// CorpusOptions controls corpus generation.
type CorpusOptions struct {
	// Widths and Heights form the crop grid (the paper crops baseline
	// images to every combination up to 25 MP).
	Widths  []int
	Heights []int
	// Details are the texture levels, spanning the entropy-density range.
	Details []float64
	// Sub is the chroma subsampling for every item.
	Sub jfif.Subsampling
	// Quality is the encoder quality (default 85).
	Quality int
	// SeedBase separates training scenes from test scenes.
	SeedBase int64
}

// DefaultTraining returns a compact training corpus covering the model's
// input ranges; cmd/profile can request denser grids.
func DefaultTraining(sub jfif.Subsampling) CorpusOptions {
	return CorpusOptions{
		Widths:   []int{64, 256, 512, 1024, 1600, 2304},
		Heights:  []int{64, 256, 512, 1024, 1600, 2304},
		Details:  []float64{0.05, 0.35, 0.7, 1.0},
		Sub:      sub,
		Quality:  85,
		SeedBase: 1000,
	}
}

// DefaultTest returns the evaluation corpus; scenes are disjoint from the
// training corpus (different seeds), as in the paper.
func DefaultTest(sub jfif.Subsampling) CorpusOptions {
	return CorpusOptions{
		Widths:   []int{96, 256, 448, 640, 896, 1152},
		Heights:  []int{96, 256, 448, 640, 896, 1152},
		Details:  []float64{0.1, 0.5, 0.9},
		Sub:      sub,
		Quality:  85,
		SeedBase: 77000,
	}
}

// Build renders and encodes the corpus.
func Build(opts CorpusOptions) ([]Item, error) {
	if opts.Quality == 0 {
		opts.Quality = 85
	}
	var items []Item
	scene := 0
	for _, detail := range opts.Details {
		for wi, w := range opts.Widths {
			for hi, h := range opts.Heights {
				// Vary the scene with the grid position so corpora are
				// not crops of a single texture.
				sc := Scene{Seed: opts.SeedBase + int64(scene*131+wi*17+hi), Detail: detail}
				img := Generate(sc, w, h)
				data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{
					Quality:     opts.Quality,
					Subsampling: opts.Sub,
				})
				if err != nil {
					return nil, fmt.Errorf("imagegen: encode %dx%d: %w", w, h, err)
				}
				items = append(items, Item{
					Name:    fmt.Sprintf("%s-d%.2f-%dx%d", opts.Sub, detail, w, h),
					Data:    data,
					W:       w,
					H:       h,
					Sub:     opts.Sub,
					Detail:  detail,
					Density: float64(len(data)) / float64(w*h),
				})
			}
		}
		scene++
	}
	return items, nil
}

// ProgressiveVariant is one point of the progressive fixture space: a
// scan script paired with a chroma layout and restart interval.
type ProgressiveVariant struct {
	Name            string
	Sub             jfif.Subsampling
	Script          []jpegcodec.ScanSpec
	RestartInterval int
}

// ProgressiveVariants spans the progressive decode paths
// deterministically: the three chroma layouts under the libjpeg-style
// default script (spectral selection + successive approximation), the
// spectral-selection-only script, a multi-band script with EOB runs
// over mostly-zero high bands, a deep successive-approximation script
// (maximal refinement coverage), and restart-interval variants of both
// interleaved-DC and AC scans. Every script is resolved through the
// encoder's named script table (jpegcodec.ScriptByName), so fixtures
// can never drift from what the public encoder emits for that name.
func ProgressiveVariants() []ProgressiveVariant {
	script := func(name string) []jpegcodec.ScanSpec {
		sc, ok := jpegcodec.ScriptByName(name)
		if !ok {
			panic(fmt.Sprintf("imagegen: script %q missing from the jpegcodec table", name))
		}
		return sc
	}
	return []ProgressiveVariant{
		{Name: "default-444", Sub: jfif.Sub444, Script: script("default")},
		{Name: "default-422", Sub: jfif.Sub422, Script: script("default")},
		{Name: "default-420", Sub: jfif.Sub420, Script: script("default")},
		{Name: "spectral-444", Sub: jfif.Sub444, Script: script("spectral")},
		{Name: "spectral-420", Sub: jfif.Sub420, Script: script("spectral")},
		{Name: "multiband-444", Sub: jfif.Sub444, Script: script("multiband")},
		{Name: "multiband-422", Sub: jfif.Sub422, Script: script("multiband")},
		{Name: "deepsa-444", Sub: jfif.Sub444, Script: script("deepsa")},
		{Name: "deepsa-420", Sub: jfif.Sub420, Script: script("deepsa")},
		{Name: "default-444-rst3", Sub: jfif.Sub444, Script: script("default"), RestartInterval: 3},
		{Name: "spectral-444-rst7", Sub: jfif.Sub444, Script: script("spectral"), RestartInterval: 7},
		{Name: "spectral-420-rst4", Sub: jfif.Sub420, Script: script("spectral"), RestartInterval: 4},
	}
}

// BuildProgressive renders and encodes the progressive fixture corpus:
// every variant at every (size, detail) grid point, with a distinct
// deterministic scene per item.
func BuildProgressive(sizes [][2]int, details []float64, seedBase int64) ([]Item, error) {
	var items []Item
	for vi, v := range ProgressiveVariants() {
		for si, wh := range sizes {
			for di, detail := range details {
				sc := Scene{Seed: seedBase + int64(vi*1009+si*89+di), Detail: detail}
				img := Generate(sc, wh[0], wh[1])
				data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{
					Quality:         85,
					Subsampling:     v.Sub,
					Progressive:     true,
					Script:          v.Script,
					RestartInterval: v.RestartInterval,
				})
				if err != nil {
					return nil, fmt.Errorf("imagegen: progressive %s %dx%d: %w", v.Name, wh[0], wh[1], err)
				}
				items = append(items, Item{
					Name:            fmt.Sprintf("prog-%s-d%.2f-%dx%d", v.Name, detail, wh[0], wh[1]),
					Data:            data,
					W:               wh[0],
					H:               wh[1],
					Sub:             v.Sub,
					Detail:          detail,
					Density:         float64(len(data)) / float64(wh[0]*wh[1]),
					Progressive:     true,
					RestartInterval: v.RestartInterval,
				})
			}
		}
	}
	return items, nil
}

// SizeSweep builds a corpus of a single detail level across a size sweep,
// used by the figure benchmarks that plot against pixel count.
func SizeSweep(sub jfif.Subsampling, detail float64, sizes [][2]int, seed int64) ([]Item, error) {
	var items []Item
	for _, wh := range sizes {
		img := Generate(Scene{Seed: seed, Detail: detail}, wh[0], wh[1])
		data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{Quality: 85, Subsampling: sub})
		if err != nil {
			return nil, err
		}
		items = append(items, Item{
			Name:    fmt.Sprintf("%s-sweep-%dx%d", sub, wh[0], wh[1]),
			Data:    data,
			W:       wh[0],
			H:       wh[1],
			Sub:     sub,
			Detail:  detail,
			Density: float64(len(data)) / float64(wh[0]*wh[1]),
		})
	}
	return items, nil
}

// GenerateGradientDetail renders an image whose texture detail ramps from
// topDetail at the first row to bottomDetail at the last. The resulting
// JPEG has a vertically skewed entropy distribution, the situation the
// PPS re-partitioning step (Equations 16-17) is designed to correct.
func GenerateGradientDetail(seed int64, w, h int, topDetail, bottomDetail float64) *jpegcodec.RGBImage {
	img := jpegcodec.NewRGBImage(w, h)
	for y := 0; y < h; y++ {
		t := float64(y) / float64(maxInt(1, h-1))
		d := topDetail + (bottomDetail-topDetail)*t
		fy := float64(y)
		row := img.Pix[y*w*3 : (y+1)*w*3]
		for x := 0; x < w; x++ {
			fx := float64(x)
			base := 0.6*valueNoise(fx, fy, 96, seed) + 0.4*valueNoise(fx, fy, 33, seed+1)
			det := 0.5*valueNoise(fx, fy, 9, seed+2) +
				0.3*valueNoise(fx, fy, 3.2, seed+3) +
				0.2*latticeValue(int64(x), int64(y), seed+4)
			luma := 255 * (0.25 + 0.5*base + d*0.45*(det-0.5))
			cb := 0.5 * valueNoise(fx, fy, 71, seed+5)
			cr := 0.5 * valueNoise(fx, fy, 59, seed+7)
			row[x*3] = clampF(luma + 180*(cr-0.25))
			row[x*3+1] = clampF(luma - 90*(cr-0.25) - 60*(cb-0.25))
			row[x*3+2] = clampF(luma + 200*(cb-0.25))
		}
	}
	return img
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
