package imagegen

import (
	"testing"

	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Scene{Seed: 5, Detail: 0.5}, 64, 48)
	b := Generate(Scene{Seed: 5, Detail: 0.5}, 64, 48)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("generator is not deterministic")
		}
	}
	c := Generate(Scene{Seed: 6, Detail: 0.5}, 64, 48)
	same := true
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}

func TestDetailControlsDensity(t *testing.T) {
	// Higher detail must produce a denser entropy-coded stream.
	var last float64 = -1
	for _, d := range []float64{0.0, 0.4, 0.8} {
		img := Generate(Scene{Seed: 9, Detail: d}, 256, 256)
		data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{Quality: 85, Subsampling: jfif.Sub422})
		if err != nil {
			t.Fatal(err)
		}
		density := float64(len(data)) / (256 * 256)
		if density <= last {
			t.Fatalf("detail %v: density %.4f did not increase (prev %.4f)", d, density, last)
		}
		last = density
	}
	if last < 0.08 {
		t.Fatalf("max density %.4f too low to span the model range", last)
	}
}

func TestBuildCorpus(t *testing.T) {
	items, err := Build(CorpusOptions{
		Widths:   []int{64, 96},
		Heights:  []int{64},
		Details:  []float64{0.2, 0.9},
		Sub:      jfif.Sub444,
		SeedBase: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("%d items want 4", len(items))
	}
	for _, it := range items {
		if _, err := jpegcodec.DecodeScalar(it.Data); err != nil {
			t.Fatalf("%s does not decode: %v", it.Name, err)
		}
		if it.Density <= 0 {
			t.Fatalf("%s: density %v", it.Name, it.Density)
		}
	}
}

func TestTrainTestCorporaDisjointSeeds(t *testing.T) {
	tr := DefaultTraining(jfif.Sub422)
	te := DefaultTest(jfif.Sub422)
	if tr.SeedBase == te.SeedBase {
		t.Fatal("training and test corpora share scene seeds")
	}
}

func TestGradientDetailSkewsEntropy(t *testing.T) {
	img := GenerateGradientDetail(3, 512, 512, 0.0, 1.0)
	data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{Quality: 85, Subsampling: jfif.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	f, ed, err := jpegcodec.PrepareDecode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	n := f.MCURows
	var top, bottom int64
	for i, b := range ed.BitsPerRow {
		if i < n/3 {
			top += b
		}
		if i >= 2*n/3 {
			bottom += b
		}
	}
	if bottom < 2*top {
		t.Fatalf("bottom third (%d bits) should be much denser than top (%d bits)", bottom, top)
	}
}

func TestSizeSweep(t *testing.T) {
	items, err := SizeSweep(jfif.Sub420, 0.5, [][2]int{{64, 64}, {128, 96}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[1].W != 128 || items[1].H != 96 {
		t.Fatalf("sweep items wrong: %+v", items)
	}
}
