// Package huffman implements JPEG baseline Huffman coding: canonical code
// construction from BITS/HUFFVAL (ITU-T T.81 Annex C), encoding, and a fast
// two-level lookup decoder.
package huffman

import (
	"errors"
	"fmt"

	"hetjpeg/internal/bitstream"
)

// MaxCodeLength is the longest Huffman code permitted by JPEG baseline.
const MaxCodeLength = 16

// lookupBits is the width of the first-level decode table. Codes no longer
// than lookupBits decode with a single peek; longer codes fall back to the
// canonical MINCODE/MAXCODE walk.
const lookupBits = 9

// Spec holds a table in the JPEG interchange format: Counts[i] is the
// number of codes of length i+1, and Values lists the symbols in order of
// increasing code length.
type Spec struct {
	Counts [MaxCodeLength]byte
	Values []byte
}

// Validate checks the structural constraints of a table spec.
func (s *Spec) Validate() error {
	total := 0
	code := 0
	for i, c := range s.Counts {
		code <<= 1
		total += int(c)
		code += int(c)
		if code > 1<<(i+1) {
			return fmt.Errorf("huffman: over-subscribed code lengths at length %d", i+1)
		}
	}
	if total != len(s.Values) {
		return fmt.Errorf("huffman: counts sum %d != %d values", total, len(s.Values))
	}
	if total == 0 {
		return errors.New("huffman: empty table")
	}
	if total > 256 {
		return fmt.Errorf("huffman: %d symbols exceeds 256", total)
	}
	return nil
}

// Table is a compiled Huffman table supporting both encode and decode.
type Table struct {
	spec Spec

	// Encoder side: code and size per symbol.
	codes [256]uint32
	sizes [256]uint8

	// Decoder side: canonical ranges plus an accelerated lookup table.
	minCode  [MaxCodeLength + 1]int32
	maxCode  [MaxCodeLength + 1]int32 // -1 when no codes of that length
	valPtr   [MaxCodeLength + 1]int32
	values   []byte
	lookup   [1 << lookupBits]uint16 // (size<<8)|symbol, 0 means invalid
	maxLen   uint
	numCodes int
}

// New compiles a Spec into a Table.
func New(spec Spec) (*Table, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := &Table{spec: spec}
	t.values = append([]byte(nil), spec.Values...)

	// Generate canonical code sizes and codes (Annex C figures C.1-C.3).
	var huffSize []uint8
	for l := 1; l <= MaxCodeLength; l++ {
		for i := 0; i < int(spec.Counts[l-1]); i++ {
			huffSize = append(huffSize, uint8(l))
		}
	}
	t.numCodes = len(huffSize)
	var huffCode []uint32
	code := uint32(0)
	si := huffSize[0]
	for k := 0; k < len(huffSize); {
		for k < len(huffSize) && huffSize[k] == si {
			huffCode = append(huffCode, code)
			code++
			k++
		}
		code <<= 1
		si++
	}

	// Encoder tables indexed by symbol.
	for k, sym := range spec.Values {
		t.codes[sym] = huffCode[k]
		t.sizes[sym] = huffSize[k]
	}

	// Decoder canonical ranges.
	k := int32(0)
	for l := 1; l <= MaxCodeLength; l++ {
		if spec.Counts[l-1] == 0 {
			t.maxCode[l] = -1
			continue
		}
		t.valPtr[l] = k
		t.minCode[l] = int32(huffCode[k])
		k += int32(spec.Counts[l-1])
		t.maxCode[l] = int32(huffCode[k-1])
		t.maxLen = uint(l)
	}

	// First-level lookup: every code of length ≤ lookupBits fills all
	// entries sharing its prefix.
	for kk, sym := range spec.Values {
		size := uint(huffSize[kk])
		if size > lookupBits {
			continue
		}
		c := huffCode[kk] << (lookupBits - size)
		n := uint32(1) << (lookupBits - size)
		for i := uint32(0); i < n; i++ {
			t.lookup[c+i] = uint16(size)<<8 | uint16(sym)
		}
	}
	return t, nil
}

// Spec returns a copy of the interchange-format spec for this table.
func (t *Table) Spec() Spec {
	return Spec{Counts: t.spec.Counts, Values: append([]byte(nil), t.spec.Values...)}
}

// NumCodes returns the number of symbols in the table.
func (t *Table) NumCodes() int { return t.numCodes }

// Code returns the code and bit size for a symbol. size==0 means the symbol
// is not in the table.
func (t *Table) Code(sym byte) (code uint32, size uint8) {
	return t.codes[sym], t.sizes[sym]
}

// Encode appends the code for sym to w.
func (t *Table) Encode(w *bitstream.Writer, sym byte) error {
	size := t.sizes[sym]
	if size == 0 {
		return fmt.Errorf("huffman: symbol %#02x not in table", sym)
	}
	w.WriteBits(t.codes[sym], uint(size))
	return nil
}

// Decode reads one symbol from r.
func (t *Table) Decode(r *bitstream.Reader) (byte, error) {
	// Fast path: refill once to >= 32 bits (one code plus its appended
	// magnitude bits), then decode with an unchecked peek against the
	// flat table. Near the end of input fewer bits may remain buffered;
	// any still-decodable short code falls through to the slow path.
	if r.Fill32() || r.Bits() >= lookupBits {
		e := t.lookup[r.MustPeek(lookupBits)]
		if e != 0 {
			r.Consume(uint(e >> 8))
			return byte(e), nil
		}
	}
	// Slow path: canonical walk, one bit at a time.
	code := int32(0)
	for l := uint(1); l <= t.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | int32(b)
		if t.maxCode[l] >= 0 && code <= t.maxCode[l] {
			return t.values[t.valPtr[l]+code-t.minCode[l]], nil
		}
	}
	return 0, fmt.Errorf("huffman: invalid code prefix %#x", code)
}

// BuildFromFrequencies constructs an optimal-length-limited Spec from symbol
// frequencies using the JPEG Annex K.2 procedure (as in libjpeg's
// jpeg_gen_optimal_table). Symbols with zero frequency are omitted.
func BuildFromFrequencies(freq [256]int64) (Spec, error) {
	// Local copies; reserve one code point (symbol 256) so no code is all
	// ones, per the JPEG convention.
	var f [257]int64
	for i, v := range freq {
		if v < 0 {
			return Spec{}, fmt.Errorf("huffman: negative frequency for symbol %d", i)
		}
		f[i] = v
	}
	f[256] = 1
	var codesize [257]int
	var others [257]int
	for i := range others {
		others[i] = -1
	}

	for {
		// Find least and second-least frequent nonzero entries.
		c1, c2 := -1, -1
		var v1, v2 int64 = 1 << 62, 1 << 62
		for i := 0; i <= 256; i++ {
			if f[i] == 0 {
				continue
			}
			if f[i] <= v1 {
				c2, v2 = c1, v1
				c1, v1 = i, f[i]
			} else if f[i] <= v2 {
				c2, v2 = i, f[i]
			}
		}
		if c2 < 0 {
			break // only one tree left
		}
		f[c1] += f[c2]
		f[c2] = 0
		codesize[c1]++
		for others[c1] >= 0 {
			c1 = others[c1]
			codesize[c1]++
		}
		others[c1] = c2
		codesize[c2]++
		for others[c2] >= 0 {
			c2 = others[c2]
			codesize[c2]++
		}
	}

	var bits [33]int
	for i := 0; i <= 256; i++ {
		if codesize[i] > 0 {
			if codesize[i] > 32 {
				return Spec{}, errors.New("huffman: code length overflow")
			}
			bits[codesize[i]]++
		}
	}
	// Limit code lengths to 16 (Annex K.2 adjustment).
	for l := 32; l > 16; l-- {
		for bits[l] > 0 {
			j := l - 2
			for bits[j] == 0 {
				j--
			}
			bits[l] -= 2
			bits[l-1]++
			bits[j+1] += 2
			bits[j]--
		}
	}
	// Remove the reserved code point from the longest nonzero length.
	l := 16
	for l > 0 && bits[l] == 0 {
		l--
	}
	if l == 0 {
		return Spec{}, errors.New("huffman: no symbols")
	}
	bits[l]--

	var spec Spec
	for i := 1; i <= 16; i++ {
		spec.Counts[i-1] = byte(bits[i])
	}
	// Values sorted by code length then symbol value.
	for size := 1; size <= 32; size++ {
		for i := 0; i < 256; i++ {
			if codesize[i] == size {
				spec.Values = append(spec.Values, byte(i))
			}
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}
