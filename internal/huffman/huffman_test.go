package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetjpeg/internal/bitstream"
)

func mustTable(t *testing.T, spec Spec) *Table {
	t.Helper()
	tbl, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tbl
}

func TestStdTablesCompile(t *testing.T) {
	for _, spec := range []Spec{StdDCLuminance, StdDCChrominance, StdACLuminance, StdACChrominance} {
		tbl := mustTable(t, spec)
		if tbl.NumCodes() != len(spec.Values) {
			t.Fatalf("NumCodes=%d want %d", tbl.NumCodes(), len(spec.Values))
		}
	}
}

func TestEncodeDecodeAllSymbols(t *testing.T) {
	for name, spec := range map[string]Spec{
		"dcl": StdDCLuminance, "dcc": StdDCChrominance,
		"acl": StdACLuminance, "acc": StdACChrominance,
	} {
		tbl := mustTable(t, spec)
		w := bitstream.NewWriter()
		for _, sym := range spec.Values {
			if err := tbl.Encode(w, sym); err != nil {
				t.Fatalf("%s encode %#x: %v", name, sym, err)
			}
		}
		r := bitstream.NewReader(w.Flush())
		for _, want := range spec.Values {
			got, err := tbl.Decode(r)
			if err != nil {
				t.Fatalf("%s decode: %v", name, err)
			}
			if got != want {
				t.Fatalf("%s: got %#x want %#x", name, got, want)
			}
		}
	}
}

func TestCanonicalCodesArePrefixFree(t *testing.T) {
	tbl := mustTable(t, StdACLuminance)
	type cw struct {
		code uint32
		size uint8
	}
	var codes []cw
	for _, sym := range StdACLuminance.Values {
		c, s := tbl.Code(sym)
		codes = append(codes, cw{c, s})
	}
	for i, a := range codes {
		for j, b := range codes {
			if i == j {
				continue
			}
			// A prefix relation exists if the shorter code equals the
			// high bits of the longer one.
			if a.size <= b.size && b.code>>(b.size-a.size) == a.code {
				t.Fatalf("code %d is a prefix of code %d", i, j)
			}
		}
	}
}

func TestBuildFromFrequencies(t *testing.T) {
	var freq [256]int64
	freq[0] = 1000
	freq[1] = 500
	freq[2] = 250
	freq[3] = 125
	freq[7] = 60
	freq[255] = 1
	spec, err := BuildFromFrequencies(freq)
	if err != nil {
		t.Fatalf("BuildFromFrequencies: %v", err)
	}
	tbl := mustTable(t, spec)
	// The most frequent symbol must not have a longer code than the
	// least frequent one.
	_, s0 := tbl.Code(0)
	_, s255 := tbl.Code(255)
	if s0 == 0 || s255 == 0 {
		t.Fatal("symbols missing from optimal table")
	}
	if s0 > s255 {
		t.Fatalf("frequent symbol got longer code (%d) than rare (%d)", s0, s255)
	}
	// Round trip.
	w := bitstream.NewWriter()
	seq := []byte{0, 1, 2, 3, 7, 255, 0, 0, 1}
	for _, sym := range seq {
		if err := tbl.Encode(w, sym); err != nil {
			t.Fatal(err)
		}
	}
	r := bitstream.NewReader(w.Flush())
	for _, want := range seq {
		got, err := tbl.Decode(r)
		if err != nil || got != want {
			t.Fatalf("got %d,%v want %d", got, err, want)
		}
	}
}

func TestBuildFromFrequenciesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var freq [256]int64
		nsym := 2 + rng.Intn(120)
		var present []byte
		for i := 0; i < nsym; i++ {
			s := byte(rng.Intn(256))
			freq[s] += int64(1 + rng.Intn(10000))
			present = append(present, s)
		}
		spec, err := BuildFromFrequencies(freq)
		if err != nil {
			return false
		}
		tbl, err := New(spec)
		if err != nil {
			return false
		}
		// Encode+decode a random sequence of present symbols.
		w := bitstream.NewWriter()
		var seq []byte
		for i := 0; i < 300; i++ {
			s := present[rng.Intn(len(present))]
			seq = append(seq, s)
			if err := tbl.Encode(w, s); err != nil {
				return false
			}
		}
		r := bitstream.NewReader(w.Flush())
		for _, want := range seq {
			got, err := tbl.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	// Over-subscribed: two codes of length 1 plus one of length 2.
	bad := Spec{Counts: [16]byte{2, 1}, Values: []byte{1, 2, 3}}
	if err := bad.Validate(); err == nil {
		t.Fatal("over-subscribed spec accepted")
	}
	// Count/value mismatch.
	bad = Spec{Counts: [16]byte{1}, Values: []byte{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched spec accepted")
	}
	// Empty.
	bad = Spec{}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestDecodeLongCodes(t *testing.T) {
	// The AC tables contain 16-bit codes, longer than the lookup table
	// width; ensure the slow path decodes them.
	tbl := mustTable(t, StdACLuminance)
	long := StdACLuminance.Values[len(StdACLuminance.Values)-1] // longest code symbol
	w := bitstream.NewWriter()
	for i := 0; i < 5; i++ {
		if err := tbl.Encode(w, long); err != nil {
			t.Fatal(err)
		}
	}
	r := bitstream.NewReader(w.Flush())
	for i := 0; i < 5; i++ {
		got, err := tbl.Decode(r)
		if err != nil || got != long {
			t.Fatalf("long code decode: got %#x err=%v want %#x", got, err, long)
		}
	}
}

func BenchmarkDecodeACLuminance(b *testing.B) {
	tbl, _ := New(StdACLuminance)
	rng := rand.New(rand.NewSource(1))
	w := bitstream.NewWriter()
	n := 4096
	for i := 0; i < n; i++ {
		sym := StdACLuminance.Values[rng.Intn(len(StdACLuminance.Values))]
		_ = tbl.Encode(w, sym)
	}
	data := w.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitstream.NewReader(data)
		for j := 0; j < n; j++ {
			if _, err := tbl.Decode(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
