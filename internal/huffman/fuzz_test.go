package huffman

import (
	"errors"
	"testing"

	"hetjpeg/internal/bitstream"
)

// FuzzDecodeArbitraryBits feeds arbitrary bytes to the LUT decoder with
// both standard JPEG tables: every outcome must be a decoded symbol the
// table actually contains or a clean error — never a panic or an
// out-of-table symbol.
func FuzzDecodeArbitraryBits(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0x00, 0xFF, 0xD0, 0x12})
	f.Add([]byte{0xAB, 0xCD, 0xEF, 0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		for _, spec := range []Spec{StdDCLuminance, StdACLuminance, StdDCChrominance, StdACChrominance} {
			tab, err := New(spec)
			if err != nil {
				t.Fatal(err)
			}
			in := map[byte]bool{}
			for _, s := range spec.Values {
				in[s] = true
			}
			r := bitstream.NewReader(data)
			for i := 0; i < 10000; i++ {
				sym, err := tab.Decode(r)
				if err != nil {
					if !errors.Is(err, bitstream.ErrUnexpectedEOF) {
						var em bitstream.ErrMarker
						if !errors.As(err, &em) && err.Error() == "" {
							t.Fatalf("unclassified error: %v", err)
						}
					}
					return
				}
				if !in[sym] {
					t.Fatalf("decoded symbol %#02x not in table", sym)
				}
			}
		}
	})
}

// FuzzEncodeDecodeRoundTrip encodes the input bytes as symbols of an
// optimal table built from their frequencies, then decodes them back.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Add([]byte{0, 0, 0, 1, 2, 3, 0xFF, 0xFE})
	f.Add([]byte{42})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) == 0 || len(payload) > 8192 {
			return
		}
		var freq [256]int64
		for _, b := range payload {
			freq[b]++
		}
		spec, err := BuildFromFrequencies(freq)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		w := bitstream.NewWriter()
		for _, b := range payload {
			if err := tab.Encode(w, b); err != nil {
				t.Fatal(err)
			}
		}
		r := bitstream.NewReader(w.Flush())
		for i, want := range payload {
			got, err := tab.Decode(r)
			if err != nil {
				t.Fatalf("symbol %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("symbol %d: %#02x != %#02x", i, got, want)
			}
		}
	})
}
