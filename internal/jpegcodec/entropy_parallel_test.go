package jpegcodec

import (
	"testing"

	"hetjpeg/internal/jfif"
)

func restartFixture(t testing.TB, w, h, ri int, sub jfif.Subsampling) []byte {
	t.Helper()
	img := makeTestImage(w, h, 19)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: sub, RestartInterval: ri})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestParallelRestartMatchesSequential(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		for _, ri := range []int{1, 3, 7, 100} {
			data := restartFixture(t, 180, 140, ri, sub)

			fSeq, edSeq, err := PrepareDecode(data)
			if err != nil {
				t.Fatal(err)
			}
			if err := edSeq.DecodeAll(); err != nil {
				t.Fatal(err)
			}

			fPar, _, err := PrepareDecode(data)
			if err != nil {
				t.Fatal(err)
			}
			bits, err := DecodeAllParallelRestart(fPar, 8)
			if err != nil {
				t.Fatalf("%v ri=%d: %v", sub, ri, err)
			}

			for c := range fSeq.Coeff {
				for i := range fSeq.Coeff[c] {
					if fSeq.Coeff[c][i] != fPar.Coeff[c][i] {
						t.Fatalf("%v ri=%d: coefficient %d/%d differs", sub, ri, c, i)
					}
				}
			}
			// Per-row bit accounting must agree (restart markers and
			// byte-alignment padding are excluded from both counts'
			// comparison tolerance: padding bits differ by < 8 per
			// segment boundary row).
			if len(bits) != len(edSeq.BitsPerRow) {
				t.Fatalf("row count %d vs %d", len(bits), len(edSeq.BitsPerRow))
			}
			// Sequential accounting charges each restart marker (16
			// bits) plus byte-alignment padding (<8 bits) to the row
			// containing it; the parallel decoder never sees them. Allow
			// 24 bits per segment boundary that can fall in a row.
			boundaries := fSeq.MCUsPerRow/ri + 2
			for i := range bits {
				d := bits[i] - edSeq.BitsPerRow[i]
				if d < 0 {
					d = -d
				}
				if d > int64(24*boundaries) {
					t.Errorf("%v ri=%d row %d: bits %d vs %d", sub, ri, i, bits[i], edSeq.BitsPerRow[i])
				}
			}
		}
	}
}

func TestParallelRestartRejectsPlainStream(t *testing.T) {
	img := makeTestImage(64, 48, 2)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := PrepareDecode(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeAllParallelRestart(f, 4); err == nil {
		t.Fatal("stream without DRI accepted")
	}
}

func TestParallelRestartSingleWorker(t *testing.T) {
	data := restartFixture(t, 96, 96, 4, jfif.Sub422)
	fA, _, err := PrepareDecode(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeAllParallelRestart(fA, 1); err != nil {
		t.Fatal(err)
	}
	out := NewRGBImage(fA.Img.Width, fA.Img.Height)
	ParallelPhaseScalar(fA, 0, fA.MCURows, out)

	ref, err := DecodeScalar(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Pix {
		if ref.Pix[i] != out.Pix[i] {
			t.Fatal("single-worker parallel decode differs from scalar")
		}
	}
}

func zeroCoeff(f *Frame) {
	for c := range f.Coeff {
		for i := range f.Coeff[c] {
			f.Coeff[c][i] = 0
		}
	}
}

func BenchmarkEntropySequential(b *testing.B) {
	data := restartFixture(b, 1024, 1024, 16, jfif.Sub422)
	f, _, err := PrepareDecode(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zeroCoeff(f)
		ed := NewEntropyDecoder(f)
		if err := ed.DecodeAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEntropyParallelRestart(b *testing.B) {
	data := restartFixture(b, 1024, 1024, 16, jfif.Sub422)
	f, _, err := PrepareDecode(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zeroCoeff(f)
		if _, err := DecodeAllParallelRestart(f, 8); err != nil {
			b.Fatal(err)
		}
	}
}
