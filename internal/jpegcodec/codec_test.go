package jpegcodec

import (
	"bytes"
	"image"
	stdjpeg "image/jpeg"
	"math"
	"math/rand"
	"testing"

	"hetjpeg/internal/jfif"
)

// makeTestImage builds a deterministic smooth photographic-ish RGB image
// (gradients plus low-frequency waves). Chroma varies slowly, so
// subsampling loss stays small and fidelity checks are meaningful.
func makeTestImage(w, h int, seed int64) *RGBImage {
	img := NewRGBImage(w, h)
	s := float64(seed%7 + 1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x), float64(y)
			r := byte(128 + 80*math.Sin(fx/17/s) + 40*math.Sin(fy/23))
			g := byte(128 + 70*math.Sin((fx+fy)/29) + 30*math.Cos(fy/13/s))
			b := byte(128 + 90*math.Cos(fx/31) + 20*math.Sin(fy/7))
			img.Set(x, y, r, g, b)
		}
	}
	return img
}

// makeNoisyImage builds a high-entropy image (per-pixel noise) for tests
// exercising the entropy coder; fidelity comparisons do not use it.
func makeNoisyImage(w, h int, seed int64) *RGBImage {
	rng := rand.New(rand.NewSource(seed))
	img := NewRGBImage(w, h)
	for i := range img.Pix {
		img.Pix[i] = byte(rng.Intn(256))
	}
	return img
}

// meanAbsErr compares our RGBImage with a stdlib-decoded image.
func meanAbsErr(t *testing.T, a *RGBImage, b image.Image) float64 {
	t.Helper()
	bounds := b.Bounds()
	if bounds.Dx() != a.W || bounds.Dy() != a.H {
		t.Fatalf("dimension mismatch: %dx%d vs %dx%d", a.W, a.H, bounds.Dx(), bounds.Dy())
	}
	var sum float64
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			r0, g0, b0 := a.At(x, y)
			r1, g1, b1, _ := b.At(bounds.Min.X+x, bounds.Min.Y+y).RGBA()
			sum += math.Abs(float64(r0) - float64(r1>>8))
			sum += math.Abs(float64(g0) - float64(g1>>8))
			sum += math.Abs(float64(b0) - float64(b1>>8))
		}
	}
	return sum / float64(a.W*a.H*3)
}

func TestEncodeDecodableByStdlib(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		for _, dim := range [][2]int{{64, 64}, {17, 23}, {128, 48}, {33, 1}, {1, 33}} {
			img := makeTestImage(dim[0], dim[1], 42)
			data, err := Encode(img, EncodeOptions{Quality: 90, Subsampling: sub})
			if err != nil {
				t.Fatalf("%v %v: Encode: %v", sub, dim, err)
			}
			decoded, err := stdjpeg.Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%v %v: stdlib decode: %v", sub, dim, err)
			}
			if mae := meanAbsErr(t, img, decoded); mae > 6 {
				t.Errorf("%v %v: mean abs error vs stdlib %f too high", sub, dim, mae)
			}
		}
	}
}

func TestDecodeScalarMatchesStdlibOnOwnOutput(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		img := makeTestImage(97, 61, 7)
		data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: sub})
		if err != nil {
			t.Fatalf("%v: Encode: %v", sub, err)
		}
		ours, err := DecodeScalar(data)
		if err != nil {
			t.Fatalf("%v: DecodeScalar: %v", sub, err)
		}
		std, err := stdjpeg.Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%v: stdlib: %v", sub, err)
		}
		// Different IDCT/upsampling rounding: stay within a small mean
		// error and a moderate max error.
		if mae := meanAbsErr(t, ours, std); mae > 2.0 {
			t.Errorf("%v: mean abs error vs stdlib = %f", sub, mae)
		}
	}
}

func TestDecodeScalarRoundTripQuality(t *testing.T) {
	// Encode at high quality and verify our decoder reconstructs close
	// to the original pixels.
	img := makeTestImage(128, 96, 9)
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		data, err := Encode(img, EncodeOptions{Quality: 95, Subsampling: sub})
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecodeScalar(data)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range img.Pix {
			d := float64(img.Pix[i]) - float64(out.Pix[i])
			sum += d * d
		}
		rmse := math.Sqrt(sum / float64(len(img.Pix)))
		if rmse > 12 {
			t.Errorf("%v: RMSE %f too high for q95", sub, rmse)
		}
	}
}

func TestDecodeStdlibEncoderOutput(t *testing.T) {
	// stdlib encodes 4:2:0; our decoder must handle it.
	img := makeTestImage(90, 70, 3)
	rgba := image.NewRGBA(image.Rect(0, 0, img.W, img.H))
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			r, g, b := img.At(x, y)
			i := rgba.PixOffset(x, y)
			rgba.Pix[i], rgba.Pix[i+1], rgba.Pix[i+2], rgba.Pix[i+3] = r, g, b, 255
		}
	}
	var buf bytes.Buffer
	if err := stdjpeg.Encode(&buf, rgba, &stdjpeg.Options{Quality: 90}); err != nil {
		t.Fatal(err)
	}
	ours, err := DecodeScalar(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding stdlib output: %v", err)
	}
	std, err := stdjpeg.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if mae := meanAbsErr(t, ours, std); mae > 2.0 {
		t.Errorf("mean abs error vs stdlib = %f", mae)
	}
}

func TestRestartIntervals(t *testing.T) {
	img := makeTestImage(160, 120, 5)
	plain, err := Encode(img, EncodeOptions{Quality: 80, Subsampling: jfif.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	rst, err := Encode(img, EncodeOptions{Quality: 80, Subsampling: jfif.Sub422, RestartInterval: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := DecodeScalar(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeScalar(rst)
	if err != nil {
		t.Fatalf("decode with restarts: %v", err)
	}
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Error("restart-interval stream decodes differently")
	}
	// stdlib agrees too.
	if _, err := stdjpeg.Decode(bytes.NewReader(rst)); err != nil {
		t.Fatalf("stdlib rejects restart stream: %v", err)
	}
}

func TestOptimizedHuffmanSmallerAndIdentical(t *testing.T) {
	img := makeTestImage(200, 150, 8)
	std, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub422, OptimizeHuffman: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt) >= len(std) {
		t.Errorf("optimized stream (%d bytes) not smaller than standard (%d bytes)", len(opt), len(std))
	}
	a, err := DecodeScalar(std)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeScalar(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Error("optimized-table stream decodes to different pixels")
	}
}

func TestChunkedEntropyDecodeMatchesFull(t *testing.T) {
	img := makeTestImage(128, 128, 11)
	data, err := Encode(img, EncodeOptions{Quality: 80, Subsampling: jfif.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	// Full decode.
	fFull, edFull, err := PrepareDecode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := edFull.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	// Chunked decode, 3 rows at a time.
	fChunk, edChunk, err := PrepareDecode(data)
	if err != nil {
		t.Fatal(err)
	}
	for !edChunk.Done() {
		if _, err := edChunk.DecodeRows(3); err != nil {
			t.Fatal(err)
		}
	}
	for c := range fFull.Coeff {
		for i := range fFull.Coeff[c] {
			if fFull.Coeff[c][i] != fChunk.Coeff[c][i] {
				t.Fatalf("component %d coefficient %d differs", c, i)
			}
		}
	}
	// Bit accounting must cover the whole entropy segment.
	if len(edChunk.BitsPerRow) != fChunk.MCURows {
		t.Fatalf("BitsPerRow has %d entries want %d", len(edChunk.BitsPerRow), fChunk.MCURows)
	}
	var total int64
	for _, b := range edChunk.BitsPerRow {
		if b <= 0 {
			t.Fatal("non-positive bits for an MCU row")
		}
		total += b
	}
	if total > int64(len(fChunk.Img.EntropyData))*8 {
		t.Fatalf("accounted bits %d exceed segment size %d bits", total, len(fChunk.Img.EntropyData)*8)
	}
}

func TestEntropyDensity(t *testing.T) {
	img := makeTestImage(64, 64, 2)
	data, err := Encode(img, EncodeOptions{Quality: 75, Subsampling: jfif.Sub444})
	if err != nil {
		t.Fatal(err)
	}
	im, err := jfif.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	d := im.EntropyDensity()
	if d <= 0 || d > 8 {
		t.Fatalf("implausible entropy density %f", d)
	}
}

func TestGrayscaleDecode(t *testing.T) {
	// stdlib can encode grayscale; verify our decoder path.
	gray := image.NewGray(image.Rect(0, 0, 40, 30))
	for i := range gray.Pix {
		gray.Pix[i] = byte(i * 7 % 256)
	}
	var buf bytes.Buffer
	if err := stdjpeg.Encode(&buf, gray, &stdjpeg.Options{Quality: 90}); err != nil {
		t.Fatal(err)
	}
	ours, err := DecodeScalar(buf.Bytes())
	if err != nil {
		t.Fatalf("grayscale decode: %v", err)
	}
	std, err := stdjpeg.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if mae := meanAbsErr(t, ours, std); mae > 1.5 {
		t.Errorf("grayscale mean abs error = %f", mae)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0xFF},
		{0x00, 0x01, 0x02},
		{0xFF, 0xD8},             // SOI only
		{0xFF, 0xD8, 0xFF, 0xD9}, // SOI+EOI, no scan
	}
	for i, c := range cases {
		if _, err := jfif.Parse(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestFrameGeometry(t *testing.T) {
	img := makeTestImage(100, 50, 1)
	data, err := Encode(img, EncodeOptions{Quality: 75, Subsampling: jfif.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := PrepareDecode(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.MCUWidth != 16 || f.MCUHeight != 8 {
		t.Fatalf("MCU = %dx%d want 16x8", f.MCUWidth, f.MCUHeight)
	}
	if f.MCUsPerRow != 7 { // ceil(100/16)
		t.Fatalf("MCUsPerRow=%d want 7", f.MCUsPerRow)
	}
	if f.MCURows != 7 { // ceil(50/8)
		t.Fatalf("MCURows=%d want 7", f.MCURows)
	}
	if got := f.Planes[0].BlocksPerRow; got != 14 {
		t.Fatalf("luma BlocksPerRow=%d want 14", got)
	}
	if got := f.Planes[1].BlocksPerRow; got != 7 {
		t.Fatalf("chroma BlocksPerRow=%d want 7", got)
	}
	// Transfer sizing sanity: one MCU row = 14 luma + 7 Cb + 7 Cr blocks,
	// 64 coefficients each, 2 bytes per coefficient on the wire.
	if b := f.CoeffBytes(0, 1); b != (14+7+7)*64*2 {
		t.Fatalf("CoeffBytes(0,1)=%d want %d", b, (14+7+7)*64*2)
	}
	r0, r1 := f.PixelRows(6, 7)
	if r0 != 48 || r1 != 50 {
		t.Fatalf("PixelRows(6,7)=(%d,%d) want (48,50)", r0, r1)
	}
}

func BenchmarkEncode1MP(b *testing.B) {
	img := makeTestImage(1024, 1024, 1)
	b.SetBytes(int64(len(img.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub422}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeScalar1MP(b *testing.B) {
	img := makeTestImage(1024, 1024, 1)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub422})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(img.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeScalar(data); err != nil {
			b.Fatal(err)
		}
	}
}
