package jpegcodec

import (
	"errors"
	"fmt"
)

// Scale selects decode-to-scale: the image is reconstructed directly at
// a fraction of its coded resolution by scaled inverse transforms
// (8x8 -> 4x4 -> 2x2 -> DC-only 1x1), never by decoding full-size and
// shrinking. The zero value means full size, so existing Options values
// keep their meaning.
type Scale int

// The supported scale denominators.
const (
	Scale1 Scale = 1 // full size (the zero value also means full size)
	Scale2 Scale = 2 // 1/2 on each axis
	Scale4 Scale = 4 // 1/4
	Scale8 Scale = 8 // 1/8: DC-only reconstruction
)

// ErrUnsupportedScale marks a decode request whose Scale is not one of
// {1, 1/2, 1/4, 1/8}. Check it with errors.Is; it is a caller-parameter
// error (the stream itself is not inspected), distinct from
// jfif.ErrUnsupported which marks streams using out-of-scope features.
var ErrUnsupportedScale = errors.New("jpegcodec: unsupported scale")

// Denominator returns the scale's denominator, mapping the zero value
// to 1. The result is meaningful only for valid scales.
func (s Scale) Denominator() int {
	if s == 0 {
		return 1
	}
	return int(s)
}

// Validate checks that s is one of the supported scales, returning an
// ErrUnsupportedScale-wrapping error otherwise.
func (s Scale) Validate() error {
	switch s {
	case 0, Scale1, Scale2, Scale4, Scale8:
		return nil
	}
	return fmt.Errorf("%w: %d (want 1, 2, 4 or 8)", ErrUnsupportedScale, int(s))
}

// String formats the scale as its conventional fraction ("1", "1/2",
// "1/4", "1/8").
func (s Scale) String() string {
	if d := s.Denominator(); d == 1 {
		return "1"
	}
	return fmt.Sprintf("1/%d", int(s))
}

// ParseScale maps a scale name to its Scale; ok is false for unknown
// names. Accepted spellings are the fractions "1", "1/2", "1/4", "1/8"
// and the bare denominators "2", "4", "8"; the empty string parses as
// full size. Frontends (CLI flag, webserver query parameter) parse with
// this so the name set has one authoritative site.
func ParseScale(name string) (Scale, bool) {
	switch name {
	case "", "1", "1/1":
		return Scale1, true
	case "2", "1/2":
		return Scale2, true
	case "4", "1/4":
		return Scale4, true
	case "8", "1/8":
		return Scale8, true
	}
	return Scale1, false
}
