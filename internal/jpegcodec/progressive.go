package jpegcodec

import (
	"errors"
	"fmt"

	"hetjpeg/internal/bitstream"
	"hetjpeg/internal/jfif"
)

// This file implements progressive (SOF2) entropy decoding: the multiple
// scans of a progressive stream — DC first and refinement, AC spectral
// bands with EOB run-lengths, successive-approximation refinement — all
// accumulate into the same whole-image coefficient buffer the baseline
// decoder fills in one pass. The back phase (dequant+IDCT, upsampling,
// color conversion) is completely unchanged: once the last scan lands,
// a progressive Frame is indistinguishable from a baseline one, so every
// execution mode and both batch schedulers run progressive images
// through the very same BandPlan machinery and produce identical pixels.
//
// Sparsity bookkeeping rides along: Frame.NZ starts at 1 (DC-only) and
// grows monotonically as scans append coefficients — refinement never
// zeroes a coefficient, so the per-block maximum zigzag index only ever
// increases and the sparse IDCT fast paths keep firing on smooth blocks
// even for progressive input.

// progDecoder walks the scans of a progressive image. It is driven
// row-at-a-time (MCU rows for interleaved scans, block rows for
// single-component scans) so the pipelined callers keep their
// cancellation-poll granularity, and it attributes the entropy bits of
// every row to the covering luma MCU row so the virtual cost model and
// the PPS equations see the same per-row distribution as baseline.
type progDecoder struct {
	f       *Frame
	coeff   [][]int32 // f.Coeff, or private slabs in discard mode
	rowBits []int64   // entropy bits per luma MCU row, summed over scans

	scanIdx int

	// Current scan state.
	sc               *jfif.Scan
	r                *bitstream.Reader
	dc               []int32 // DC predictors, one per scan component
	eobrun           int     // remaining blocks of the pending EOB run
	row              int     // next row of the current scan
	rows             int     // total rows of the current scan
	col              int     // next unit within the current row (salvage resume cursor)
	wb, hb           int     // single-component scans: the component's own block grid
	mcusSinceRestart int
	prevBits         int64 // bit position after the previous row

	// Salvage mode (see EntropyDecoder): scan errors resync at the next
	// restart marker within the scan, or abandon the scan — prior-scan
	// coefficients stay, so only lost first-DC coverage is damage.
	salvage      bool
	report       *SalvageReport
	restartsSeen int
	byteBase     int // offset of r's window within sc.Data after a resync
}

func newProgDecoder(f *Frame, discard bool) *progDecoder {
	d := &progDecoder{
		f:       f,
		coeff:   f.Coeff,
		rowBits: make([]int64, f.MCURows),
	}
	if discard {
		// Geometry-only frames (profiling) have no pooled buffers, but
		// refinement scans must read back what earlier scans wrote, so a
		// discard-mode progressive decode still needs whole-image
		// coefficients; plain allocations keep the pools out of it.
		d.coeff = make([][]int32, len(f.Planes))
		for c := range f.Planes {
			d.coeff[c] = make([]int32, f.Planes[c].Blocks()*64)
		}
	}
	for c := range f.NZ {
		if f.NZ[c] == nil {
			continue
		}
		for i := range f.NZ[c] {
			f.NZ[c][i] = 1 // DC-only until an AC scan says otherwise
		}
	}
	return d
}

// Done reports whether every scan has been decoded.
func (d *progDecoder) Done() bool { return d.scanIdx >= len(d.f.Img.Scans) }

// block returns the 64-coefficient natural-order slice of block (bx, by)
// of component c.
func (d *progDecoder) block(c, bx, by int) []int32 {
	p := d.f.Planes[c]
	idx := (by*p.BlocksPerRow + bx) * 64
	return d.coeff[c][idx : idx+64 : idx+64]
}

// setNZ raises the sparsity watermark of block (bx, by) of component c
// to zigzag index k.
func (d *progDecoder) setNZ(c, bx, by, k int) {
	nz := d.f.NZ[c]
	if nz == nil {
		return
	}
	bi := by*d.f.Planes[c].BlocksPerRow + bx
	if int(nz[bi]) < k+1 {
		nz[bi] = uint8(k + 1)
	}
}

// beginScan initializes the state of scan scanIdx.
func (d *progDecoder) beginScan() error {
	sc := &d.f.Img.Scans[d.scanIdx]
	d.sc = sc
	d.r = bitstream.NewReader(sc.Data)
	d.dc = make([]int32, len(sc.Comps))
	d.eobrun = 0
	d.row = 0
	d.col = 0
	d.mcusSinceRestart = 0
	d.prevBits = 0
	d.restartsSeen = 0
	d.byteBase = 0
	if sc.Interleaved() {
		d.rows = d.f.MCURows
	} else {
		// A single-component scan walks the component's own block grid
		// (T.81 A.2.2), not the MCU-padded one.
		p := d.f.Planes[sc.Comps[0].CompIdx]
		d.wb = (p.CompW + 7) / 8
		d.hb = (p.CompH + 7) / 8
		d.rows = d.hb
	}
	if d.rows == 0 {
		return errors.New("jpegcodec: empty scan geometry")
	}
	return nil
}

// bitPos returns the current scan reader's consumed-bit count within
// the whole scan (byteBase re-anchors after a salvage resync).
func (d *progDecoder) bitPos() int64 {
	return int64(d.byteBase+d.r.BytePos())*8 - int64(d.r.BitsBuffered())
}

// skipsScan reports whether scan i's entropy data can go unread: a
// 1/8-scale reconstruction uses only the DC coefficient, and AC scans
// (Ss >= 1, single-component by parse validation) never touch it, so a
// DC-only decode skips their payload entirely — typically the large
// majority of a progressive stream's entropy bits. DC scans (first and
// refinement) still run. Skipped scans contribute no bits to the cost
// model, matching the work actually done.
func (d *progDecoder) skipsScan(i int) bool {
	return d.f.BlockPixels() == 1 && d.f.Img.Scans[i].Ss > 0
}

// DecodeRows decodes up to n rows of scan work, crossing scan
// boundaries as needed, and returns the number of rows decoded.
func (d *progDecoder) DecodeRows(n int) (int, error) {
	decoded := 0
	for ; n > 0 && !d.Done(); n-- {
		if d.sc == nil {
			for !d.Done() && d.skipsScan(d.scanIdx) {
				d.scanIdx++
			}
			if d.Done() {
				break
			}
			if err := d.beginScan(); err != nil {
				if d.salvage {
					// The scan is structurally unusable; skip it. Later
					// scans still decode on their own readers.
					d.report.record(d.scanIdx, fmt.Errorf("jpegcodec: scan %d: %w", d.scanIdx, err))
					d.scanIdx++
					d.sc = nil
					continue
				}
				return decoded, fmt.Errorf("jpegcodec: scan %d: %w", d.scanIdx, err)
			}
		}
		if err := d.decodeScanRow(); err != nil {
			if d.salvage {
				d.salvageScanError(err)
				decoded++
				continue
			}
			return decoded, fmt.Errorf("jpegcodec: scan %d row %d: %w", d.scanIdx, d.row, err)
		}
		// Attribute the row's bits to its covering luma MCU row.
		m := d.row
		if !d.sc.Interleaved() {
			m = d.row / d.f.Img.Components[d.sc.Comps[0].CompIdx].V
		}
		if m >= len(d.rowBits) {
			m = len(d.rowBits) - 1
		}
		pos := d.bitPos()
		d.rowBits[m] += pos - d.prevBits
		d.prevBits = pos
		d.row++
		decoded++
		if d.row >= d.rows {
			d.scanIdx++
			d.sc = nil
		}
	}
	return decoded, nil
}

// restartIfDue consumes an RSTn marker when the scan's restart interval
// expires, resetting DC predictors and any pending EOB run.
func (d *progDecoder) restartIfDue() error {
	ri := d.sc.RestartInterval
	if ri <= 0 || d.mcusSinceRestart != ri {
		return nil
	}
	mk, err := d.r.SkipRestartMarker()
	if err != nil {
		return err
	}
	if d.salvage && int(mk-0xD0) != d.restartsSeen%8 {
		// Salvage-only check (see the baseline decoder): out-of-sequence
		// restart numbers mean dropped/duplicated markers; resync.
		return fmt.Errorf("restart marker %#02x out of sequence (want RST%d)", mk, d.restartsSeen%8)
	}
	d.restartsSeen++
	for i := range d.dc {
		d.dc[i] = 0
	}
	d.eobrun = 0
	d.mcusSinceRestart = 0
	return nil
}

// decodeScanRow decodes row d.row of the current scan.
func (d *progDecoder) decodeScanRow() error {
	sc := d.sc
	f := d.f
	if sc.Interleaved() {
		// Interleaved scans exist only for DC bands (parse enforces
		// single-component AC scans); walk the padded MCU grid. d.col is
		// the salvage resume cursor (0 on the strict path).
		m := d.row
		for ; d.col < f.MCUsPerRow; d.col++ {
			mx := d.col
			if err := d.restartIfDue(); err != nil {
				return err
			}
			if err := d.checkExhausted(); err != nil {
				return err
			}
			for si, scc := range sc.Comps {
				comp := f.Img.Components[scc.CompIdx]
				for v := 0; v < comp.V; v++ {
					for h := 0; h < comp.H; h++ {
						blk := d.block(scc.CompIdx, mx*comp.H+h, m*comp.V+v)
						if err := d.decodeDC(blk, si); err != nil {
							return err
						}
					}
				}
			}
			d.mcusSinceRestart++
		}
		d.col = 0
		return nil
	}
	ci := sc.Comps[0].CompIdx
	by := d.row
	for ; d.col < d.wb; d.col++ {
		bx := d.col
		if err := d.restartIfDue(); err != nil {
			return err
		}
		if err := d.checkExhausted(); err != nil {
			return err
		}
		blk := d.block(ci, bx, by)
		var err error
		if sc.Ss == 0 {
			err = d.decodeDC(blk, 0)
		} else if sc.Ah == 0 {
			err = d.decodeACFirst(blk, bx, by)
		} else {
			err = d.decodeACRefine(blk, bx, by)
		}
		if err != nil {
			return err
		}
		d.mcusSinceRestart++
	}
	d.col = 0
	return nil
}

// checkExhausted is the salvage-only padding guard (see the baseline
// decoder): real bits ran out at a pending marker with units still owed
// before the next restart. A pending EOB run exempts the check — the
// covered blocks legitimately consume no bits, so a scan's last data
// byte can run dry well before its restart marker is due.
func (d *progDecoder) checkExhausted() error {
	if d.salvage && d.eobrun == 0 && d.r.Marker() != 0 && d.r.BitsBuffered() == 0 {
		return fmt.Errorf("entropy data exhausted at marker %#02x (unit %d of restart interval)", d.r.Marker(), d.mcusSinceRestart)
	}
	return nil
}

// salvageScanError absorbs an entropy error in the current scan: record
// it, then try an intra-scan resync at the next restart marker (same
// marker-number arithmetic as the baseline decoder, in scan units —
// MCUs for interleaved scans, blocks for single-component ones). When
// no usable marker exists the rest of the scan is abandoned; later
// scans still decode. Coefficients are never zeroed — prior-scan values
// are the best available — so only lost first-DC coverage counts as
// damage.
func (d *progDecoder) salvageScanError(err error) {
	sc := d.sc
	d.report.record(d.scanIdx, fmt.Errorf("jpegcodec: scan %d row %d: %w", d.scanIdx, d.row, err))
	unitsPerRow := d.f.MCUsPerRow
	if !sc.Interleaved() {
		unitsPerRow = d.wb
	}
	totalUnits := unitsPerRow * d.rows
	errUnit := d.row*unitsPerRow + d.col
	if ri := sc.RestartInterval; ri > 0 {
		data := sc.Data
		for i := d.byteBase + d.r.BytePos(); i+1 < len(data); {
			if data[i] != 0xFF {
				i++
				continue
			}
			mk := data[i+1]
			if mk == 0x00 { // byte stuffing
				i += 2
				continue
			}
			if mk == 0xFF { // fill byte
				i++
				continue
			}
			if mk < 0xD0 || mk > 0xD7 {
				break // non-restart marker: nothing further in this scan
			}
			dskip := (int(mk-0xD0) - d.restartsSeen%8 + 8) % 8
			cand := (d.restartsSeen + dskip + 1) * ri
			if dskip > maxResyncSkip || cand <= errUnit {
				i += 2
				continue
			}
			if cand >= totalUnits {
				break
			}
			d.addDCDamage(errUnit, cand, totalUnits)
			d.r.Reset(data[i+2:])
			d.byteBase = i + 2
			for j := range d.dc {
				d.dc[j] = 0
			}
			d.eobrun = 0
			d.mcusSinceRestart = 0
			d.restartsSeen += dskip + 1
			d.report.Resyncs++
			d.row = cand / unitsPerRow
			d.col = cand % unitsPerRow
			d.prevBits = d.bitPos()
			return
		}
	}
	d.addDCDamage(errUnit, totalUnits, totalUnits)
	d.scanIdx++
	d.sc = nil
	d.col = 0
}

// addDCDamage records scan units [fromUnit, toUnit) as damaged when the
// current scan is a first DC scan — blocks that never receive their DC
// render flat. AC and refinement losses keep prior-scan coefficients
// and merely cap quality, so they are not damage. Interleaved units are
// MCUs directly; single-component block units map proportionally onto
// the MCU raster.
func (d *progDecoder) addDCDamage(fromUnit, toUnit, totalUnits int) {
	sc := d.sc
	if sc.Ss != 0 || sc.Ah != 0 {
		return
	}
	if sc.Interleaved() {
		d.report.addDamage(fromUnit, toUnit-fromUnit)
		return
	}
	totalMCU := d.f.MCUsPerRow * d.f.MCURows
	first := fromUnit * totalMCU / totalUnits
	end := (toUnit*totalMCU + totalUnits - 1) / totalUnits
	if end > totalMCU {
		end = totalMCU
	}
	d.report.addDamage(first, end-first)
}

// decodeDC handles both DC passes of scan component si: the first scan
// decodes a Huffman-coded difference and stores it shifted left by Al;
// refinement scans append one raw bit at bit position Al.
func (d *progDecoder) decodeDC(blk []int32, si int) error {
	sc := d.sc
	if sc.Ah != 0 {
		bit, err := d.r.ReadBit()
		if err != nil {
			return err
		}
		if bit != 0 {
			blk[0] |= 1 << uint(sc.Al)
		}
		return nil
	}
	t, err := sc.Comps[si].DC.Decode(d.r)
	if err != nil {
		return err
	}
	if t > 15 {
		return fmt.Errorf("bad DC category %d", t)
	}
	diff := int32(0)
	if t > 0 {
		bits, err := d.r.ReadBits(uint(t))
		if err != nil {
			return err
		}
		diff = extend(bits, uint(t))
	}
	d.dc[si] += diff
	blk[0] = d.dc[si] << uint(sc.Al)
	return nil
}

// decodeACFirst decodes one block of an AC first scan (Ah = 0): plain
// run-length coding within the band [Ss, Se], except that an s=0 symbol
// with r < 15 starts an EOB run of 2^r plus r appended bits, covering
// this block and the next eobrun-1 blocks of the scan.
func (d *progDecoder) decodeACFirst(blk []int32, bx, by int) error {
	if d.eobrun > 0 {
		d.eobrun--
		return nil
	}
	sc := d.sc
	ac := sc.Comps[0].AC
	ci := sc.Comps[0].CompIdx
	for k := sc.Ss; k <= sc.Se; {
		rs, err := ac.Decode(d.r)
		if err != nil {
			return err
		}
		r := int(rs >> 4)
		s := uint(rs & 0xF)
		if s == 0 {
			if r == 15 { // ZRL: sixteen zeros
				k += 16
				continue
			}
			d.eobrun = 1 << uint(r)
			if r > 0 {
				bits, err := d.r.ReadBits(uint(r))
				if err != nil {
					return err
				}
				d.eobrun += int(bits)
			}
			d.eobrun-- // this block is the first of the run
			return nil
		}
		k += r
		if k > sc.Se {
			return fmt.Errorf("AC run overflows band (k=%d, Se=%d)", k, sc.Se)
		}
		bits, err := d.r.ReadBits(s)
		if err != nil {
			return err
		}
		blk[jfif.ZigZag[k]] = extend(bits, s) << uint(sc.Al)
		d.setNZ(ci, bx, by, k)
		k++
	}
	return nil
}

// decodeACRefine decodes one block of an AC refinement scan (Ah = Al+1):
// every coefficient that is already nonzero receives a correction bit;
// newly nonzero coefficients arrive as ±1 at bit position Al, with zero
// runs counting only zero-history positions. An EOB run still refines
// the nonzero coefficients of the blocks it covers.
func (d *progDecoder) decodeACRefine(blk []int32, bx, by int) error {
	sc := d.sc
	ac := sc.Comps[0].AC
	ci := sc.Comps[0].CompIdx
	delta := int32(1) << uint(sc.Al)
	k := sc.Ss
	if d.eobrun == 0 {
	scan:
		for ; k <= sc.Se; k++ {
			rs, err := ac.Decode(d.r)
			if err != nil {
				return err
			}
			r := int(rs >> 4)
			s := rs & 0xF
			newval := int32(0)
			switch s {
			case 0:
				if r != 15 {
					d.eobrun = 1 << uint(r)
					if r > 0 {
						bits, err := d.r.ReadBits(uint(r))
						if err != nil {
							return err
						}
						d.eobrun += int(bits)
					}
					break scan
				}
				// ZRL: skip 16 zero-history positions.
			case 1:
				bit, err := d.r.ReadBit()
				if err != nil {
					return err
				}
				if bit != 0 {
					newval = delta
				} else {
					newval = -delta
				}
			default:
				return fmt.Errorf("bad refinement magnitude %d", s)
			}
			k, err = d.refineNonZeroes(blk, k, sc.Se, r, delta)
			if err != nil {
				return err
			}
			if k > sc.Se {
				return fmt.Errorf("refinement run overflows band (k=%d)", k)
			}
			if newval != 0 {
				blk[jfif.ZigZag[k]] = newval
				d.setNZ(ci, bx, by, k)
			}
		}
	}
	if d.eobrun > 0 {
		d.eobrun--
		if _, err := d.refineNonZeroes(blk, k, sc.Se, -1, delta); err != nil {
			return err
		}
	}
	return nil
}

// refineNonZeroes walks zigzag positions [k, se], reading one correction
// bit for every coefficient with nonzero history and skipping nz
// zero-history positions (nz < 0 means unbounded — the EOB-run case).
// It returns the position of the nz+1'th zero-history coefficient (the
// landing slot of a newly nonzero value), or se+1.
func (d *progDecoder) refineNonZeroes(blk []int32, k, se, nz int, delta int32) (int, error) {
	for ; k <= se; k++ {
		u := jfif.ZigZag[k]
		if blk[u] == 0 {
			if nz == 0 {
				break
			}
			nz--
			continue
		}
		bit, err := d.r.ReadBit()
		if err != nil {
			return k, err
		}
		if bit == 0 {
			continue
		}
		// Append the bit toward larger magnitude: the sign is already
		// settled, so a set correction bit moves the value away from zero.
		if blk[u] >= 0 {
			blk[u] += delta
		} else {
			blk[u] -= delta
		}
	}
	return k, nil
}
