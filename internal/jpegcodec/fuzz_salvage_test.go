package jpegcodec

import (
	"errors"
	"testing"

	"hetjpeg/internal/faultgen"
	"hetjpeg/internal/jfif"
)

// FuzzSalvageDecode fuzzes the salvage path: any input must decode,
// partially decode with a structurally sound report, or fail with an
// error — never panic. Seeds are the fault-injection families
// (truncations, entropy bit flips, restart-marker mutations, corrupted
// segment lengths) over baseline and progressive fixtures, so mutation
// starts from the corruption shapes the resync machinery actually
// handles rather than from random bytes.
func FuzzSalvageDecode(f *testing.F) {
	img := testImage(40, 24, 7)
	for _, progressive := range []bool{false, true} {
		for _, ri := range []int{0, 3} {
			data, err := Encode(img, EncodeOptions{
				Quality: 80, Subsampling: jfif.Sub420,
				Progressive: progressive, RestartInterval: ri,
			})
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
			for _, ft := range faultgen.Truncations(data, len(data)/3, len(data)/7+1) {
				f.Add(ft.Data)
			}
			for _, span := range faultgen.EntropySpans(data) {
				for _, ft := range faultgen.BitFlips(data, span, 4, 99) {
					f.Add(ft.Data)
				}
				for _, ft := range faultgen.RSTMutations(data, span) {
					f.Add(ft.Data)
				}
			}
			for _, ft := range faultgen.LengthCorruptions(data) {
				f.Add(ft.Data)
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := jfif.ParseSalvage(data)
		if err != nil && im == nil {
			return
		}
		if im.Width*im.Height > 1<<20 {
			// Mutated dimension fields can demand GB-sized coefficient
			// buffers; decoding correctness is covered below that size.
			return
		}
		out, rep, err := DecodeScalarSalvage(data)
		if out == nil {
			return
		}
		defer out.Release()
		if rep == nil {
			return // clean decode
		}
		// The report must stay structurally sound under arbitrary
		// corruption: coverage accounting exact, regions sorted and
		// disjoint, and the error chain anchored at ErrPartialData.
		covered, prevEnd := 0, -1
		for _, d := range rep.Damaged {
			if d.NumMCU <= 0 || d.FirstMCU < 0 || d.FirstMCU+d.NumMCU > rep.TotalMCUs {
				t.Fatalf("bad damaged region %+v (total %d)", d, rep.TotalMCUs)
			}
			if d.FirstMCU <= prevEnd {
				t.Fatalf("damaged regions unsorted/overlapping at %+v", d)
			}
			prevEnd = d.FirstMCU + d.NumMCU - 1
			covered += d.NumMCU
		}
		if rep.RecoveredMCUs+covered != rep.TotalMCUs {
			t.Fatalf("recovered %d + damaged %d != total %d", rep.RecoveredMCUs, covered, rep.TotalMCUs)
		}
		if !rep.Impaired() {
			t.Fatal("non-nil report from DecodeScalarSalvage must be impaired")
		}
		if !errors.Is(err, ErrPartialData) {
			t.Fatalf("impaired decode error %v does not wrap ErrPartialData", err)
		}
	})
}
