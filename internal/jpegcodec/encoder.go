package jpegcodec

import (
	"fmt"
	"sync"

	"hetjpeg/internal/bitstream"
	"hetjpeg/internal/color"
	"hetjpeg/internal/dct"
	"hetjpeg/internal/huffman"
	"hetjpeg/internal/jfif"
)

// EncodeOptions controls the baseline JPEG encoder.
type EncodeOptions struct {
	// Quality is the libjpeg-style quality factor, 1..100. Zero means 75.
	Quality int
	// Subsampling selects the chroma layout (default Sub444).
	Subsampling jfif.Subsampling
	// RestartInterval, when > 0, inserts RSTn markers every that many MCUs.
	RestartInterval int
	// OptimizeHuffman builds image-specific optimal Huffman tables with a
	// second statistics pass instead of using the Annex K defaults.
	OptimizeHuffman bool
	// Progressive emits a multi-scan SOF2 stream following Script
	// (default: ScriptDefault). Progressive scans always use per-scan
	// optimal Huffman tables, so OptimizeHuffman is implied.
	Progressive bool
	// Script is the progressive scan script; ignored unless Progressive.
	Script []ScanSpec
	// Workers bounds the forward pass's parallelism: color conversion,
	// chroma downsampling, padding, forward DCT and quantization run as
	// contiguous row bands across this many goroutines (the mirror of
	// the decoder's MCU-row band decomposition). 0 or 1 runs
	// sequentially. Output is byte-identical for every worker count —
	// bands write disjoint regions and the entropy pass stays
	// sequential.
	Workers int
}

func (o *EncodeOptions) withDefaults() EncodeOptions {
	out := *o
	if out.Quality == 0 {
		out.Quality = 75
	}
	return out
}

// Encode compresses an RGB image into a baseline JPEG stream.
func Encode(img *RGBImage, opts EncodeOptions) ([]byte, error) {
	opts = opts.withDefaults()
	if img.W <= 0 || img.H <= 0 {
		return nil, fmt.Errorf("jpegcodec: bad dimensions %dx%d", img.W, img.H)
	}
	if img.W >= 1<<16 || img.H >= 1<<16 {
		return nil, fmt.Errorf("jpegcodec: dimensions %dx%d exceed JPEG limits", img.W, img.H)
	}
	if opts.Subsampling == jfif.SubGray {
		return nil, fmt.Errorf("jpegcodec: grayscale encoding not supported (decode-only)")
	}

	lumaQ := jfif.ScaleQuantTable(&jfif.StdLuminanceQuant, opts.Quality)
	chromaQ := jfif.ScaleQuantTable(&jfif.StdChrominanceQuant, opts.Quality)

	hs, vs := opts.Subsampling.Factors()
	comps := []jfif.Component{
		{ID: 1, H: hs, V: vs, QuantSel: 0, DCSel: 0, ACSel: 0},
		{ID: 2, H: 1, V: 1, QuantSel: 1, DCSel: 1, ACSel: 1},
		{ID: 3, H: 1, V: 1, QuantSel: 1, DCSel: 1, ACSel: 1},
	}

	planes, infos, releasePlanes := buildEncodePlanes(img, opts.Subsampling, opts.Workers)

	// Quantized coefficients per component, blocks in raster order, in
	// pooled whole-image slabs (the encode-side mirror of Frame.Coeff).
	quants := [3]*[64]uint16{&lumaQ, &chromaQ, &chromaQ}
	coeffs := make([][]int32, 3)
	for ci := range planes {
		c := getCoeffSlab(infos[ci].Blocks() * 64)
		forwardComponent(planes[ci], infos[ci], quants[ci], c, opts.Workers)
		coeffs[ci] = c
	}
	// The sample planes are consumed by the forward pass; only the
	// coefficients feed entropy encoding.
	releasePlanes()
	defer func() {
		for _, c := range coeffs {
			putCoeffSlab(c)
		}
	}()

	mcuW, mcuH := opts.Subsampling.MCUPixels()
	mcusPerRow := (img.W + mcuW - 1) / mcuW
	mcuRows := (img.H + mcuH - 1) / mcuH

	if opts.Progressive {
		return encodeProgressive(img, opts, comps, coeffs, infos, &lumaQ, &chromaQ, mcusPerRow, mcuRows)
	}

	dcTabs := [2]huffman.Spec{huffman.StdDCLuminance, huffman.StdDCChrominance}
	acTabs := [2]huffman.Spec{huffman.StdACLuminance, huffman.StdACChrominance}
	if opts.OptimizeHuffman {
		var dcFreq, acFreq [2][256]int64
		countPass := &freqCounter{dc: &dcFreq, ac: &acFreq}
		if err := encodeScan(countPass, comps, coeffs, infos, mcusPerRow, mcuRows, opts.RestartInterval); err != nil {
			return nil, err
		}
		for i := 0; i < 2; i++ {
			spec, err := huffman.BuildFromFrequencies(dcFreq[i])
			if err != nil {
				return nil, fmt.Errorf("jpegcodec: optimal DC table %d: %w", i, err)
			}
			dcTabs[i] = spec
			spec, err = huffman.BuildFromFrequencies(acFreq[i])
			if err != nil {
				return nil, fmt.Errorf("jpegcodec: optimal AC table %d: %w", i, err)
			}
			acTabs[i] = spec
		}
	}

	var tabs tableSet
	for i := 0; i < 2; i++ {
		var err error
		if tabs.dc[i], err = huffman.New(dcTabs[i]); err != nil {
			return nil, err
		}
		if tabs.ac[i], err = huffman.New(acTabs[i]); err != nil {
			return nil, err
		}
	}

	emit := &bitEmitter{w: newEntropyWriter(infos), tabs: &tabs}
	if err := encodeScan(emit, comps, coeffs, infos, mcusPerRow, mcuRows, opts.RestartInterval); err != nil {
		return nil, err
	}
	entropy := emit.w.Flush()

	jw := jfif.NewWriter()
	jw.WriteAPP0()
	jw.WriteDQT(0, &lumaQ)
	jw.WriteDQT(1, &chromaQ)
	jw.WriteSOF0(img.W, img.H, comps)
	jw.WriteDHT(0, 0, dcTabs[0])
	jw.WriteDHT(1, 0, acTabs[0])
	jw.WriteDHT(0, 1, dcTabs[1])
	jw.WriteDHT(1, 1, acTabs[1])
	if opts.RestartInterval > 0 {
		jw.WriteDRI(opts.RestartInterval)
	}
	// WriteSOS copies the entropy bytes into the container, so the
	// pooled emission buffer goes straight back.
	jw.WriteSOS(comps, entropy)
	putByteSlab(entropy)
	return jw.Finish(), nil
}

// newEntropyWriter returns a bit writer appending into a pooled slab
// sized for a typical photographic scan (~2 bytes per 8x8 block at
// quality 75-90); the writer regrows past it and Flush hands the final
// buffer back for recycling.
func newEntropyWriter(infos [3]PlaneInfo) *bitstream.Writer {
	blocks := 0
	for _, info := range infos {
		blocks += info.Blocks()
	}
	return bitstream.NewWriterBuf(getByteSlab(blocks * 2))
}

// parallelRowBands splits [0, n) into contiguous chunks across at most
// `workers` goroutines. fn writes only its own [lo, hi) range, so the
// result is byte-identical for every worker count; workers <= 1 runs
// inline.
func parallelRowBands(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// buildEncodePlanes converts to YCbCr, downsamples chroma, and pads each
// plane to its MCU-aligned geometry with edge replication. All planes —
// intermediates and the returned ones — live in pooled slabs; the
// intermediates go back to the pool before return, and the release
// closure recycles the three final planes once the forward pass has
// consumed them.
func buildEncodePlanes(img *RGBImage, sub jfif.Subsampling, workers int) ([3][]byte, [3]PlaneInfo, func()) {
	w, h := img.W, img.H
	yP := getByteSlab(w * h)
	cbP := getByteSlab(w * h)
	crP := getByteSlab(w * h)
	parallelRowBands(h, workers, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			px := y * w * 3
			for i := y * w; i < (y+1)*w; i, px = i+1, px+3 {
				yP[i], cbP[i], crP[i] = color.RGBToYCbCr(img.Pix[px], img.Pix[px+1], img.Pix[px+2])
			}
		}
	})

	hs, vs := sub.Factors()
	mcuW, mcuH := sub.MCUPixels()
	mcusPerRow := (w + mcuW - 1) / mcuW
	mcuRows := (h + mcuH - 1) / mcuH

	var infos [3]PlaneInfo
	infos[0] = PlaneInfo{CompW: w, CompH: h, BlocksPerRow: mcusPerRow * hs, BlockRows: mcuRows * vs, H: hs, V: vs}
	cw := (w + hs - 1) / hs
	ch := (h + vs - 1) / vs
	infos[1] = PlaneInfo{CompW: cw, CompH: ch, BlocksPerRow: mcusPerRow, BlockRows: mcuRows, H: 1, V: 1}
	infos[2] = infos[1]

	// Downsample chroma. cb2/cr2 alias cbP/crP at 4:4:4 and are fresh
	// pooled slabs otherwise.
	var cb2, cr2 []byte
	switch sub {
	case jfif.Sub444:
		cb2, cr2 = cbP, crP
	case jfif.Sub422:
		cb2 = getByteSlab(cw * ch)
		cr2 = getByteSlab(cw * ch)
		parallelRowBands(h, workers, func(lo, hi int) {
			// Per-band scratch for padding odd-width rows to the
			// downsampler's even input length.
			scratch := getByteSlab(2 * cw)
			for y := lo; y < hi; y++ {
				in := padRowInto(scratch, cbP[y*w:y*w+w])
				color.DownsampleRowsH2V1(in, cb2[y*cw:y*cw+cw])
				in = padRowInto(scratch, crP[y*w:y*w+w])
				color.DownsampleRowsH2V1(in, cr2[y*cw:y*cw+cw])
			}
			putByteSlab(scratch)
		})
	case jfif.Sub420:
		evenW, evenH := 2*cw, 2*ch
		cbe := padPlaneSlab(cbP, w, h, evenW, evenH, workers)
		cre := padPlaneSlab(crP, w, h, evenW, evenH, workers)
		cb2 = getByteSlab(cw * ch)
		cr2 = getByteSlab(cw * ch)
		color.DownsampleH2V2(cbe, evenW, evenH, cb2)
		color.DownsampleH2V2(cre, evenW, evenH, cr2)
		putByteSlab(cbe)
		putByteSlab(cre)
	}

	var planes [3][]byte
	planes[0] = padPlaneSlab(yP, w, h, infos[0].PlaneW(), infos[0].PlaneH(), workers)
	planes[1] = padPlaneSlab(cb2, cw, ch, infos[1].PlaneW(), infos[1].PlaneH(), workers)
	planes[2] = padPlaneSlab(cr2, cw, ch, infos[2].PlaneW(), infos[2].PlaneH(), workers)

	putByteSlab(yP)
	putByteSlab(cbP)
	putByteSlab(crP)
	if sub != jfif.Sub444 {
		putByteSlab(cb2)
		putByteSlab(cr2)
	}
	release := func() {
		for _, p := range planes {
			putByteSlab(p)
		}
	}
	return planes, infos, release
}

// padRowInto copies row into dst, replicating the last sample to fill
// the tail. Rows already long enough pass through without a copy.
func padRowInto(dst, row []byte) []byte {
	if len(row) >= len(dst) {
		return row[:len(dst)]
	}
	copy(dst, row)
	last := row[len(row)-1]
	for i := len(row); i < len(dst); i++ {
		dst[i] = last
	}
	return dst
}

// padPlaneSlab expands a w×h plane to pw×ph by edge replication into a
// fresh pooled slab (always a copy, so the caller's release accounting
// never depends on whether padding happened).
func padPlaneSlab(p []byte, w, h, pw, ph, workers int) []byte {
	out := getByteSlab(pw * ph)
	parallelRowBands(ph, workers, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			sy := y
			if sy >= h {
				sy = h - 1
			}
			dst := out[y*pw : y*pw+pw]
			src := p[sy*w : sy*w+w]
			copy(dst, src)
			last := src[w-1]
			for x := w; x < pw; x++ {
				dst[x] = last
			}
		}
	})
	return out
}

// forwardComponent runs level shift, forward DCT and quantization over
// every block of a padded plane, writing quantized coefficients into
// out (len info.Blocks()*64). Block rows fan out as contiguous bands;
// each band owns disjoint output blocks, so results match the
// sequential pass bit for bit.
func forwardComponent(plane []byte, info PlaneInfo, quant *[64]uint16, out []int32, workers int) {
	pw := info.PlaneW()
	parallelRowBands(info.BlockRows, workers, func(lo, hi int) {
		var blk [64]int32
		for by := lo; by < hi; by++ {
			for bx := 0; bx < info.BlocksPerRow; bx++ {
				for y := 0; y < 8; y++ {
					base := (by*8+y)*pw + bx*8
					for x := 0; x < 8; x++ {
						blk[y*8+x] = int32(plane[base+x]) - 128
					}
				}
				dct.ForwardInt(&blk)
				dst := out[(by*info.BlocksPerRow+bx)*64:]
				for i := 0; i < 64; i++ {
					// ForwardInt output is scaled by 8.
					d := int32(quant[i]) * 8
					v := blk[i]
					if v >= 0 {
						dst[i] = (v + d/2) / d
					} else {
						dst[i] = -((-v + d/2) / d)
					}
				}
			}
		}
	})
}

// scanEmitter abstracts the two encoder passes: statistics gathering and
// actual bit emission.
type scanEmitter interface {
	emitDC(tab int, sym byte, bits uint32, n uint)
	emitAC(tab int, sym byte, bits uint32, n uint)
	restart(i int)
}

type tableSet struct {
	dc [2]*huffman.Table
	ac [2]*huffman.Table
}

type bitEmitter struct {
	w    *bitstream.Writer
	tabs *tableSet
}

func (e *bitEmitter) emitDC(tab int, sym byte, bits uint32, n uint) {
	_ = e.tabs.dc[tab].Encode(e.w, sym)
	e.w.WriteBits(bits, n)
}

func (e *bitEmitter) emitAC(tab int, sym byte, bits uint32, n uint) {
	_ = e.tabs.ac[tab].Encode(e.w, sym)
	e.w.WriteBits(bits, n)
}

func (e *bitEmitter) restart(i int) {
	e.w.WriteRestartMarker(i)
}

type freqCounter struct {
	dc *[2][256]int64
	ac *[2][256]int64
}

func (c *freqCounter) emitDC(tab int, sym byte, bits uint32, n uint) { c.dc[tab][sym]++ }
func (c *freqCounter) emitAC(tab int, sym byte, bits uint32, n uint) { c.ac[tab][sym]++ }
func (c *freqCounter) restart(i int)                                 {}

// encodeScan walks MCUs in scan order, entropy-encoding every block.
func encodeScan(em scanEmitter, comps []jfif.Component, coeffs [][]int32, infos [3]PlaneInfo, mcusPerRow, mcuRows, restartInterval int) error {
	var dcPred [3]int32
	mcuCount := 0
	rstIdx := 0
	for my := 0; my < mcuRows; my++ {
		for mx := 0; mx < mcusPerRow; mx++ {
			if restartInterval > 0 && mcuCount == restartInterval {
				em.restart(rstIdx)
				rstIdx = (rstIdx + 1) & 7
				mcuCount = 0
				dcPred = [3]int32{}
			}
			for ci, comp := range comps {
				tabDC := comp.DCSel
				tabAC := comp.ACSel
				info := infos[ci]
				for v := 0; v < comp.V; v++ {
					for h := 0; h < comp.H; h++ {
						bx := mx*comp.H + h
						by := my*comp.V + v
						blk := coeffs[ci][(by*info.BlocksPerRow+bx)*64:]
						encodeBlock(em, blk[:64], tabDC, tabAC, &dcPred[ci])
					}
				}
			}
			mcuCount++
		}
	}
	return nil
}

func encodeBlock(em scanEmitter, blk []int32, tabDC, tabAC int, pred *int32) {
	diff := blk[0] - *pred
	*pred = blk[0]
	cat, bits := magnitude(diff)
	em.emitDC(tabDC, byte(cat), bits, cat)

	run := 0
	for k := 1; k < 64; k++ {
		v := blk[jfif.ZigZag[k]]
		if v == 0 {
			run++
			continue
		}
		for run > 15 {
			em.emitAC(tabAC, 0xF0, 0, 0) // ZRL
			run -= 16
		}
		cat, bits := magnitude(v)
		em.emitAC(tabAC, byte(run<<4)|byte(cat), bits, cat)
		run = 0
	}
	if run > 0 {
		em.emitAC(tabAC, 0x00, 0, 0) // EOB
	}
}

// magnitude returns the category (bit length) and the encoded magnitude
// bits for a coefficient value per T.81 F.1.2.1.
func magnitude(v int32) (uint, uint32) {
	a := v
	if a < 0 {
		a = -a
	}
	cat := uint(0)
	for a > 0 {
		cat++
		a >>= 1
	}
	if v < 0 {
		return cat, uint32(v + (1 << cat) - 1)
	}
	return cat, uint32(v)
}
