package jpegcodec

import (
	"fmt"

	"hetjpeg/internal/bitstream"
	"hetjpeg/internal/color"
	"hetjpeg/internal/dct"
	"hetjpeg/internal/huffman"
	"hetjpeg/internal/jfif"
)

// EncodeOptions controls the baseline JPEG encoder.
type EncodeOptions struct {
	// Quality is the libjpeg-style quality factor, 1..100. Zero means 75.
	Quality int
	// Subsampling selects the chroma layout (default Sub444).
	Subsampling jfif.Subsampling
	// RestartInterval, when > 0, inserts RSTn markers every that many MCUs.
	RestartInterval int
	// OptimizeHuffman builds image-specific optimal Huffman tables with a
	// second statistics pass instead of using the Annex K defaults.
	OptimizeHuffman bool
	// Progressive emits a multi-scan SOF2 stream following Script
	// (default: ScriptDefault). Progressive scans always use per-scan
	// optimal Huffman tables, so OptimizeHuffman is implied.
	Progressive bool
	// Script is the progressive scan script; ignored unless Progressive.
	Script []ScanSpec
}

func (o *EncodeOptions) withDefaults() EncodeOptions {
	out := *o
	if out.Quality == 0 {
		out.Quality = 75
	}
	return out
}

// Encode compresses an RGB image into a baseline JPEG stream.
func Encode(img *RGBImage, opts EncodeOptions) ([]byte, error) {
	opts = opts.withDefaults()
	if img.W <= 0 || img.H <= 0 {
		return nil, fmt.Errorf("jpegcodec: bad dimensions %dx%d", img.W, img.H)
	}
	if img.W >= 1<<16 || img.H >= 1<<16 {
		return nil, fmt.Errorf("jpegcodec: dimensions %dx%d exceed JPEG limits", img.W, img.H)
	}
	if opts.Subsampling == jfif.SubGray {
		return nil, fmt.Errorf("jpegcodec: grayscale encoding not supported (decode-only)")
	}

	lumaQ := jfif.ScaleQuantTable(&jfif.StdLuminanceQuant, opts.Quality)
	chromaQ := jfif.ScaleQuantTable(&jfif.StdChrominanceQuant, opts.Quality)

	hs, vs := opts.Subsampling.Factors()
	comps := []jfif.Component{
		{ID: 1, H: hs, V: vs, QuantSel: 0, DCSel: 0, ACSel: 0},
		{ID: 2, H: 1, V: 1, QuantSel: 1, DCSel: 1, ACSel: 1},
		{ID: 3, H: 1, V: 1, QuantSel: 1, DCSel: 1, ACSel: 1},
	}

	planes, infos := buildEncodePlanes(img, opts.Subsampling)

	// Quantized coefficients per component, blocks in raster order.
	quants := [3]*[64]uint16{&lumaQ, &chromaQ, &chromaQ}
	coeffs := make([][]int32, 3)
	for ci := range planes {
		coeffs[ci] = forwardComponent(planes[ci], infos[ci], quants[ci])
	}

	mcuW, mcuH := opts.Subsampling.MCUPixels()
	mcusPerRow := (img.W + mcuW - 1) / mcuW
	mcuRows := (img.H + mcuH - 1) / mcuH

	if opts.Progressive {
		return encodeProgressive(img, opts, comps, coeffs, infos, &lumaQ, &chromaQ, mcusPerRow, mcuRows)
	}

	dcTabs := [2]huffman.Spec{huffman.StdDCLuminance, huffman.StdDCChrominance}
	acTabs := [2]huffman.Spec{huffman.StdACLuminance, huffman.StdACChrominance}
	if opts.OptimizeHuffman {
		var dcFreq, acFreq [2][256]int64
		countPass := &freqCounter{dc: &dcFreq, ac: &acFreq}
		if err := encodeScan(countPass, comps, coeffs, infos, mcusPerRow, mcuRows, opts.RestartInterval); err != nil {
			return nil, err
		}
		for i := 0; i < 2; i++ {
			spec, err := huffman.BuildFromFrequencies(dcFreq[i])
			if err != nil {
				return nil, fmt.Errorf("jpegcodec: optimal DC table %d: %w", i, err)
			}
			dcTabs[i] = spec
			spec, err = huffman.BuildFromFrequencies(acFreq[i])
			if err != nil {
				return nil, fmt.Errorf("jpegcodec: optimal AC table %d: %w", i, err)
			}
			acTabs[i] = spec
		}
	}

	var tabs tableSet
	for i := 0; i < 2; i++ {
		var err error
		if tabs.dc[i], err = huffman.New(dcTabs[i]); err != nil {
			return nil, err
		}
		if tabs.ac[i], err = huffman.New(acTabs[i]); err != nil {
			return nil, err
		}
	}

	emit := &bitEmitter{w: bitstream.NewWriter(), tabs: &tabs}
	if err := encodeScan(emit, comps, coeffs, infos, mcusPerRow, mcuRows, opts.RestartInterval); err != nil {
		return nil, err
	}
	entropy := emit.w.Flush()

	jw := jfif.NewWriter()
	jw.WriteAPP0()
	jw.WriteDQT(0, &lumaQ)
	jw.WriteDQT(1, &chromaQ)
	jw.WriteSOF0(img.W, img.H, comps)
	jw.WriteDHT(0, 0, dcTabs[0])
	jw.WriteDHT(1, 0, acTabs[0])
	jw.WriteDHT(0, 1, dcTabs[1])
	jw.WriteDHT(1, 1, acTabs[1])
	if opts.RestartInterval > 0 {
		jw.WriteDRI(opts.RestartInterval)
	}
	jw.WriteSOS(comps, entropy)
	return jw.Finish(), nil
}

// buildEncodePlanes converts to YCbCr, downsamples chroma, and pads each
// plane to its MCU-aligned geometry with edge replication.
func buildEncodePlanes(img *RGBImage, sub jfif.Subsampling) ([3][]byte, [3]PlaneInfo) {
	w, h := img.W, img.H
	yP := make([]byte, w*h)
	cbP := make([]byte, w*h)
	crP := make([]byte, w*h)
	for i, px := 0, 0; i < w*h; i, px = i+1, px+3 {
		yP[i], cbP[i], crP[i] = color.RGBToYCbCr(img.Pix[px], img.Pix[px+1], img.Pix[px+2])
	}

	hs, vs := sub.Factors()
	mcuW, mcuH := sub.MCUPixels()
	mcusPerRow := (w + mcuW - 1) / mcuW
	mcuRows := (h + mcuH - 1) / mcuH

	var infos [3]PlaneInfo
	infos[0] = PlaneInfo{CompW: w, CompH: h, BlocksPerRow: mcusPerRow * hs, BlockRows: mcuRows * vs, H: hs, V: vs}
	cw := (w + hs - 1) / hs
	ch := (h + vs - 1) / vs
	infos[1] = PlaneInfo{CompW: cw, CompH: ch, BlocksPerRow: mcusPerRow, BlockRows: mcuRows, H: 1, V: 1}
	infos[2] = infos[1]

	// Downsample chroma.
	var cb2, cr2 []byte
	switch sub {
	case jfif.Sub444:
		cb2, cr2 = cbP, crP
	case jfif.Sub422:
		cb2 = make([]byte, cw*ch)
		cr2 = make([]byte, cw*ch)
		for y := 0; y < h; y++ {
			in := padRow(cbP[y*w:y*w+w], 2*cw)
			color.DownsampleRowsH2V1(in, cb2[y*cw:y*cw+cw])
			in = padRow(crP[y*w:y*w+w], 2*cw)
			color.DownsampleRowsH2V1(in, cr2[y*cw:y*cw+cw])
		}
	case jfif.Sub420:
		evenW, evenH := 2*cw, 2*ch
		cbe := padPlane(cbP, w, h, evenW, evenH)
		cre := padPlane(crP, w, h, evenW, evenH)
		cb2 = make([]byte, cw*ch)
		cr2 = make([]byte, cw*ch)
		color.DownsampleH2V2(cbe, evenW, evenH, cb2)
		color.DownsampleH2V2(cre, evenW, evenH, cr2)
	}

	var planes [3][]byte
	planes[0] = padPlane(yP, w, h, infos[0].PlaneW(), infos[0].PlaneH())
	planes[1] = padPlane(cb2, cw, ch, infos[1].PlaneW(), infos[1].PlaneH())
	planes[2] = padPlane(cr2, cw, ch, infos[2].PlaneW(), infos[2].PlaneH())
	return planes, infos
}

// padRow returns row extended to length n by replicating the last sample.
func padRow(row []byte, n int) []byte {
	if len(row) >= n {
		return row[:n]
	}
	out := make([]byte, n)
	copy(out, row)
	last := row[len(row)-1]
	for i := len(row); i < n; i++ {
		out[i] = last
	}
	return out
}

// padPlane expands a w×h plane to pw×ph by edge replication.
func padPlane(p []byte, w, h, pw, ph int) []byte {
	if w == pw && h == ph {
		return p
	}
	out := make([]byte, pw*ph)
	for y := 0; y < ph; y++ {
		sy := y
		if sy >= h {
			sy = h - 1
		}
		dst := out[y*pw : y*pw+pw]
		src := p[sy*w : sy*w+w]
		copy(dst, src)
		last := src[w-1]
		for x := w; x < pw; x++ {
			dst[x] = last
		}
	}
	return out
}

// forwardComponent runs level shift, forward DCT and quantization over
// every block of a padded plane.
func forwardComponent(plane []byte, info PlaneInfo, quant *[64]uint16) []int32 {
	pw := info.PlaneW()
	out := make([]int32, info.Blocks()*64)
	var blk [64]int32
	for by := 0; by < info.BlockRows; by++ {
		for bx := 0; bx < info.BlocksPerRow; bx++ {
			for y := 0; y < 8; y++ {
				base := (by*8+y)*pw + bx*8
				for x := 0; x < 8; x++ {
					blk[y*8+x] = int32(plane[base+x]) - 128
				}
			}
			dct.ForwardInt(&blk)
			dst := out[(by*info.BlocksPerRow+bx)*64:]
			for i := 0; i < 64; i++ {
				// ForwardInt output is scaled by 8.
				d := int32(quant[i]) * 8
				v := blk[i]
				if v >= 0 {
					dst[i] = (v + d/2) / d
				} else {
					dst[i] = -((-v + d/2) / d)
				}
			}
		}
	}
	return out
}

// scanEmitter abstracts the two encoder passes: statistics gathering and
// actual bit emission.
type scanEmitter interface {
	emitDC(tab int, sym byte, bits uint32, n uint)
	emitAC(tab int, sym byte, bits uint32, n uint)
	restart(i int)
}

type tableSet struct {
	dc [2]*huffman.Table
	ac [2]*huffman.Table
}

type bitEmitter struct {
	w    *bitstream.Writer
	tabs *tableSet
}

func (e *bitEmitter) emitDC(tab int, sym byte, bits uint32, n uint) {
	_ = e.tabs.dc[tab].Encode(e.w, sym)
	e.w.WriteBits(bits, n)
}

func (e *bitEmitter) emitAC(tab int, sym byte, bits uint32, n uint) {
	_ = e.tabs.ac[tab].Encode(e.w, sym)
	e.w.WriteBits(bits, n)
}

func (e *bitEmitter) restart(i int) {
	e.w.WriteRestartMarker(i)
}

type freqCounter struct {
	dc *[2][256]int64
	ac *[2][256]int64
}

func (c *freqCounter) emitDC(tab int, sym byte, bits uint32, n uint) { c.dc[tab][sym]++ }
func (c *freqCounter) emitAC(tab int, sym byte, bits uint32, n uint) { c.ac[tab][sym]++ }
func (c *freqCounter) restart(i int)                                 {}

// encodeScan walks MCUs in scan order, entropy-encoding every block.
func encodeScan(em scanEmitter, comps []jfif.Component, coeffs [][]int32, infos [3]PlaneInfo, mcusPerRow, mcuRows, restartInterval int) error {
	var dcPred [3]int32
	mcuCount := 0
	rstIdx := 0
	for my := 0; my < mcuRows; my++ {
		for mx := 0; mx < mcusPerRow; mx++ {
			if restartInterval > 0 && mcuCount == restartInterval {
				em.restart(rstIdx)
				rstIdx = (rstIdx + 1) & 7
				mcuCount = 0
				dcPred = [3]int32{}
			}
			for ci, comp := range comps {
				tabDC := comp.DCSel
				tabAC := comp.ACSel
				info := infos[ci]
				for v := 0; v < comp.V; v++ {
					for h := 0; h < comp.H; h++ {
						bx := mx*comp.H + h
						by := my*comp.V + v
						blk := coeffs[ci][(by*info.BlocksPerRow+bx)*64:]
						encodeBlock(em, blk[:64], tabDC, tabAC, &dcPred[ci])
					}
				}
			}
			mcuCount++
		}
	}
	return nil
}

func encodeBlock(em scanEmitter, blk []int32, tabDC, tabAC int, pred *int32) {
	diff := blk[0] - *pred
	*pred = blk[0]
	cat, bits := magnitude(diff)
	em.emitDC(tabDC, byte(cat), bits, cat)

	run := 0
	for k := 1; k < 64; k++ {
		v := blk[jfif.ZigZag[k]]
		if v == 0 {
			run++
			continue
		}
		for run > 15 {
			em.emitAC(tabAC, 0xF0, 0, 0) // ZRL
			run -= 16
		}
		cat, bits := magnitude(v)
		em.emitAC(tabAC, byte(run<<4)|byte(cat), bits, cat)
		run = 0
	}
	if run > 0 {
		em.emitAC(tabAC, 0x00, 0, 0) // EOB
	}
}

// magnitude returns the category (bit length) and the encoded magnitude
// bits for a coefficient value per T.81 F.1.2.1.
func magnitude(v int32) (uint, uint32) {
	a := v
	if a < 0 {
		a = -a
	}
	cat := uint(0)
	for a > 0 {
		cat++
		a >>= 1
	}
	if v < 0 {
		return cat, uint32(v + (1 << cat) - 1)
	}
	return cat, uint32(v)
}
