package jpegcodec

import (
	"testing"

	"hetjpeg/internal/jfif"
)

// FuzzScaledDecode fuzzes decode-to-scale end to end: any input at any
// scale must either decode or fail with an error — panics and runaway
// allocations are bugs. The scale byte is fuzzed alongside the stream,
// so invalid scales must keep returning the typed ErrUnsupportedScale
// sentinel (never reaching the parser) while valid ones exercise the
// DC-only entropy path, the scaled IDCT dispatch and the scaled 4:2:0
// seam geometry. Seeds cover every subsampling, baseline and
// progressive, with and without restart markers, plus truncations.
func FuzzScaledDecode(f *testing.F) {
	img := testImage(40, 24, 6)
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		for _, progressive := range []bool{false, true} {
			for _, ri := range []int{0, 3} {
				data, err := Encode(img, EncodeOptions{
					Quality: 80, Subsampling: sub,
					Progressive: progressive, RestartInterval: ri,
				})
				if err != nil {
					f.Fatal(err)
				}
				for _, s := range []byte{1, 2, 4, 8} {
					f.Add(s, data)
				}
				f.Add(byte(8), data[:len(data)*2/3])
				f.Add(byte(3), data) // invalid scale seed
			}
		}
	}
	f.Fuzz(func(t *testing.T, scaleByte byte, data []byte) {
		scale := Scale(scaleByte)
		if scale.Validate() != nil {
			// Invalid scales must fail with the sentinel before any
			// stream work, for any input bytes.
			if _, _, err := PrepareDecodeScaled(data, scale); err == nil {
				t.Fatalf("scale %d: invalid scale accepted", scaleByte)
			}
			return
		}
		im, err := jfif.Parse(data)
		if err != nil {
			return
		}
		if im.Width*im.Height > 1<<20 {
			// Mutated dimension fields can demand GB-sized buffers;
			// decoding correctness is covered below that size.
			return
		}
		fr, ed, err := PrepareDecodeScaled(data, scale)
		if err != nil {
			return
		}
		defer fr.Release()
		if err := ed.DecodeAll(); err != nil {
			return
		}
		out := NewRGBImage(fr.OutW, fr.OutH)
		defer out.Release()
		ParallelPhaseScalar(fr, 0, fr.MCURows, out)
	})
}
