package jpegcodec

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hetjpeg/internal/jfif"
)

var allScales = []Scale{Scale1, Scale2, Scale4, Scale8}

func encodeFixture(t testing.TB, w, h int, sub jfif.Subsampling, seed int64, opts ...func(*EncodeOptions)) []byte {
	t.Helper()
	img := makeTestImage(w, h, seed)
	eo := EncodeOptions{Quality: 85, Subsampling: sub}
	for _, o := range opts {
		o(&eo)
	}
	data, err := Encode(img, eo)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestScaledGeometry pins the output dimensions: ceil(coded/scale) on
// both axes, including sizes with partial MCUs.
func TestScaledGeometry(t *testing.T) {
	data := encodeFixture(t, 97, 75, jfif.Sub420, 3)
	want := map[Scale][2]int{
		Scale1: {97, 75}, Scale2: {49, 38}, Scale4: {25, 19}, Scale8: {13, 10},
	}
	for _, s := range allScales {
		img, err := DecodeScalarScaled(data, s)
		if err != nil {
			t.Fatalf("scale %v: %v", s, err)
		}
		if img.W != want[s][0] || img.H != want[s][1] {
			t.Errorf("scale %v: got %dx%d, want %dx%d", s, img.W, img.H, want[s][0], want[s][1])
		}
		img.Release()
	}
}

// TestScaleValidation pins the typed sentinel: every invalid scale
// fails with ErrUnsupportedScale before any stream work, and the parser
// accepts exactly the documented spellings.
func TestScaleValidation(t *testing.T) {
	data := encodeFixture(t, 32, 32, jfif.Sub444, 1)
	for _, bad := range []Scale{-1, 3, 5, 6, 7, 9, 16, 64} {
		if _, _, err := PrepareDecodeScaled(data, bad); !errors.Is(err, ErrUnsupportedScale) {
			t.Errorf("scale %d: err = %v, want ErrUnsupportedScale", bad, err)
		}
		if _, err := DecodeScalarScaled(data, bad); !errors.Is(err, ErrUnsupportedScale) {
			t.Errorf("DecodeScalarScaled(%d): err = %v, want ErrUnsupportedScale", bad, err)
		}
	}
	parses := map[string]struct {
		s  Scale
		ok bool
	}{
		"":    {Scale1, true},
		"1":   {Scale1, true},
		"1/1": {Scale1, true},
		"1/2": {Scale2, true},
		"2":   {Scale2, true},
		"1/4": {Scale4, true},
		"4":   {Scale4, true},
		"1/8": {Scale8, true},
		"8":   {Scale8, true},
		"3":   {0, false},
		"1/3": {0, false},
		"0.5": {0, false},
		"x":   {0, false},
	}
	for in, want := range parses {
		s, ok := ParseScale(in)
		if ok != want.ok || (ok && s != want.s) {
			t.Errorf("ParseScale(%q) = %v, %v; want %v, %v", in, s, ok, want.s, want.ok)
		}
	}
}

// TestScale8EqualsDCMean asserts the 1/8-scale plane samples are
// exactly the per-block DC mean (round-half-up of the dequantized DC
// over 8, level-shifted, clamped) — for baseline DC-only frames and for
// progressive frames, whose coefficient storage stays full.
func TestScale8EqualsDCMean(t *testing.T) {
	for _, progressive := range []bool{false, true} {
		for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
			name := fmt.Sprintf("%v-prog=%v", sub, progressive)
			data := encodeFixture(t, 97, 75, sub, 7, func(eo *EncodeOptions) { eo.Progressive = progressive })

			// Full-resolution decode supplies the reference DC coefficients.
			full, edFull, err := PrepareDecode(data)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := edFull.DecodeAll(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}

			f, ed, err := PrepareDecodeScaled(data, Scale8)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := ed.DecodeAll(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out := NewRGBImage(f.OutW, f.OutH)
			ParallelPhaseScalar(f, 0, f.MCURows, out)

			for c := range f.Planes {
				p := f.Planes[c]
				q := full.QuantInt(c)
				pw := p.PlaneW()
				for by := 0; by < p.BlockRows; by++ {
					for bx := 0; bx < p.BlocksPerRow; bx++ {
						dc := full.Block(c, bx, by)[0] * q[0]
						want := (dc + 4) >> 3
						want += 128
						if want < 0 {
							want = 0
						}
						if want > 255 {
							want = 255
						}
						got := int32(f.Samples[c][by*pw+bx])
						if got != want {
							t.Fatalf("%s: component %d block (%d,%d): sample %d, DC mean %d",
								name, c, bx, by, got, want)
						}
					}
				}
			}
			out.Release()
			f.Release()
			full.Release()
		}
	}
}

// boxDownsample averages s x s windows of the padded full-resolution
// plane (the reference "decode full then shrink" pipeline).
func boxDownsample(plane []byte, pw int, s, ow, oh int) []byte {
	out := make([]byte, ow*oh)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			sum := 0
			for dy := 0; dy < s; dy++ {
				for dx := 0; dx < s; dx++ {
					sum += int(plane[(y*s+dy)*pw+x*s+dx])
				}
			}
			out[y*ow+x] = byte((sum + s*s/2) / (s * s))
		}
	}
	return out
}

// Documented tolerances of scaled reconstruction against full decode +
// box downsampling, measured on the luma plane of a quality-85 fixture
// carrying a uniform +-24-level high-frequency noise overlay — the
// worst case for a scaled IDCT, since it keeps only the top-left NxN
// frequencies while a box filter folds every frequency in. Smooth
// content (the plain makeTestImage scene) stays within max 2 / mean
// 0.4; the bounds below hold for the noise overlay.
const (
	boxTolMax  = 24  // per-sample bound under the +-24 noise overlay
	boxTolMean = 4.0 // mean absolute error bound
)

// makeBusyImage overlays hash-driven high-frequency texture on the
// smooth test scene, so the box-downsample bound is measured on content
// with real energy in the frequencies the scaled IDCT discards.
func makeBusyImage(w, h int, seed int64) *RGBImage {
	img := makeTestImage(w, h, seed)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			z := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ uint64(seed)
			z ^= z >> 29
			z *= 0xBF58476D1CE4E5B9
			z ^= z >> 32
			n := int(z%49) - 24
			i := (y*w + x) * 3
			for k := 0; k < 3; k++ {
				v := int(img.Pix[i+k]) + n
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				img.Pix[i+k] = byte(v)
			}
		}
	}
	return img
}

// TestScaledVsBoxDownsample bounds the divergence of 1/2- and 1/4-scale
// luma planes from full decode + box downsample.
func TestScaledVsBoxDownsample(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub420} {
		busy := makeBusyImage(160, 128, 11)
		data, err := Encode(busy, EncodeOptions{Quality: 85, Subsampling: sub})
		if err != nil {
			t.Fatal(err)
		}
		full, ed, err := PrepareDecode(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := ed.DecodeAll(); err != nil {
			t.Fatal(err)
		}
		outFull := NewRGBImage(full.Img.Width, full.Img.Height)
		ParallelPhaseScalar(full, 0, full.MCURows, outFull)

		for _, s := range []Scale{Scale2, Scale4} {
			f, eds, err := PrepareDecodeScaled(data, s)
			if err != nil {
				t.Fatal(err)
			}
			if err := eds.DecodeAll(); err != nil {
				t.Fatal(err)
			}
			out := NewRGBImage(f.OutW, f.OutH)
			ParallelPhaseScalar(f, 0, f.MCURows, out)

			den := s.Denominator()
			p := f.Planes[0]
			ow := (full.Planes[0].CompW + den - 1) / den
			oh := (full.Planes[0].CompH + den - 1) / den
			ref := boxDownsample(full.Samples[0], full.Planes[0].PlaneW(), den, ow, oh)
			pw := p.PlaneW()
			maxd, sum, n := 0, 0, 0
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					d := int(f.Samples[0][y*pw+x]) - int(ref[y*ow+x])
					if d < 0 {
						d = -d
					}
					if d > maxd {
						maxd = d
					}
					sum += d
					n++
				}
			}
			mean := float64(sum) / float64(n)
			t.Logf("%v scale %v: luma vs box downsample max |diff| = %d, mean = %.3f", sub, s, maxd, mean)
			if maxd > boxTolMax {
				t.Errorf("%v scale %v: max |diff| = %d exceeds documented bound %d", sub, s, maxd, boxTolMax)
			}
			if mean > boxTolMean {
				t.Errorf("%v scale %v: mean |diff| = %.3f exceeds documented bound %.1f", sub, s, mean, boxTolMean)
			}
			out.Release()
			f.Release()
		}
		outFull.Release()
		full.Release()
	}
}

// TestScaledWorkerIdentity asserts the intra-image worker pool and the
// band plan produce byte-identical scaled output to the sequential
// fused pipeline at every scale and subsampling (including the 4:2:0
// seam deferral at reduced geometry).
func TestScaledWorkerIdentity(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		data := encodeFixture(t, 113, 97, sub, 5)
		for _, s := range allScales {
			f, ed, err := PrepareDecodeScaled(data, s)
			if err != nil {
				t.Fatal(err)
			}
			if err := ed.DecodeAll(); err != nil {
				t.Fatal(err)
			}
			ref := NewRGBImage(f.OutW, f.OutH)
			ParallelPhaseScalar(f, 0, f.MCURows, ref)

			for _, workers := range []int{2, 3, 5} {
				got := NewRGBImage(f.OutW, f.OutH)
				ParallelPhaseScalarWorkers(f, 0, f.MCURows, got, workers)
				if !bytes.Equal(got.Pix, ref.Pix) {
					t.Fatalf("%v scale %v workers %d: pixels differ from sequential", sub, s, workers)
				}
				got.Release()
			}
			for _, bandRows := range []int{1, 2, 3} {
				got := NewRGBImage(f.OutW, f.OutH)
				bp := PlanBands(f, 0, f.MCURows, bandRows)
				var cs ConvertScratch
				for i := 0; i < bp.Bands(); i++ {
					bp.ExecBand(i, got, &cs)
				}
				bp.FinishSeams(got, &cs)
				if !bytes.Equal(got.Pix, ref.Pix) {
					t.Fatalf("%v scale %v bandRows %d: band plan differs from sequential", sub, s, bandRows)
				}
				got.Release()
			}
			ref.Release()
			f.Release()
		}
	}
}

// TestScaledRestartParallelEntropy asserts the restart-parallel entropy
// decoder fills the DC-only coefficient buffer identically to the
// sequential decoder.
func TestScaledRestartParallelEntropy(t *testing.T) {
	data := encodeFixture(t, 96, 80, jfif.Sub420, 9, func(eo *EncodeOptions) { eo.RestartInterval = 4 })
	fSeq, ed, err := PrepareDecodeScaled(data, Scale8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	fPar, _, err := PrepareDecodeScaled(data, Scale8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeAllParallelRestart(fPar, 4); err != nil {
		t.Fatal(err)
	}
	for c := range fSeq.Coeff {
		if !int32SlicesEqual(fSeq.Coeff[c], fPar.Coeff[c]) {
			t.Fatalf("component %d: parallel restart DC coefficients differ", c)
		}
	}
	fSeq.Release()
	fPar.Release()
}

func int32SlicesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestScale8ProgressiveSkipsACScans pins the DC-only scan-skip: a
// progressive 1/8-scale decode reads none of the AC scans' entropy
// bits (its bit accounting covers only the DC scans), while its output
// still matches the full decode's DC coefficients exactly (covered by
// TestScale8EqualsDCMean).
func TestScale8ProgressiveSkipsACScans(t *testing.T) {
	data := encodeFixture(t, 160, 128, jfif.Sub420, 13, func(eo *EncodeOptions) { eo.Progressive = true })
	full, edFull, err := PrepareDecode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := edFull.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	f, ed, err := PrepareDecodeScaled(data, Scale8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	fullBits, dcBits := edFull.EntropyBitsTotal(), ed.EntropyBitsTotal()
	if dcBits <= 0 {
		t.Fatalf("DC-only decode consumed %d bits", dcBits)
	}
	// The AC scans dominate a progressive stream; skipping them must
	// shed the large majority of the entropy work.
	if dcBits*2 > fullBits {
		t.Errorf("1/8 progressive decode consumed %d of %d entropy bits; want < half", dcBits, fullBits)
	}
	f.Release()
	full.Release()
}

// TestTruncatedStreamsAtEveryScale feeds progressively truncated valid
// streams to the scaled decoder; every prefix at every scale must
// either decode or fail cleanly, never panic.
func TestTruncatedStreamsAtEveryScale(t *testing.T) {
	for _, progressive := range []bool{false, true} {
		data := encodeFixture(t, 64, 48, jfif.Sub420, 4, func(eo *EncodeOptions) { eo.Progressive = progressive })
		for _, s := range allScales {
			for cut := 0; cut < len(data); cut += 11 {
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("prog=%v scale %v: panic at truncation %d: %v", progressive, s, cut, r)
						}
					}()
					img, err := DecodeScalarScaled(data[:cut], s)
					if err == nil {
						img.Release()
					}
				}()
			}
		}
	}
}
