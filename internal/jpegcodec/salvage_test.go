package jpegcodec

import (
	"bytes"
	"errors"
	"testing"

	"hetjpeg/internal/jfif"
)

// Unit tests for the salvage layer: report bookkeeping, clean-stream
// equivalence with strict mode, and recovery behavior under truncation
// and restart-marker damage. The cross-mode/scheduler identity of
// salvaged output is asserted by the fault-injection conformance
// harness (internal/conformance).

func checkReportInvariants(t *testing.T, rep *SalvageReport) {
	t.Helper()
	if rep == nil {
		return
	}
	if rep.RecoveredMCUs+rep.DamagedMCUs() != rep.TotalMCUs {
		t.Fatalf("recovered %d + damaged %d != total %d",
			rep.RecoveredMCUs, rep.DamagedMCUs(), rep.TotalMCUs)
	}
	prevEnd := -1
	for _, dr := range rep.Damaged {
		if dr.NumMCU <= 0 {
			t.Fatalf("empty damaged region %+v", dr)
		}
		if dr.FirstMCU <= prevEnd {
			t.Fatalf("damaged regions not sorted/disjoint: %+v", rep.Damaged)
		}
		if dr.FirstMCU+dr.NumMCU > rep.TotalMCUs {
			t.Fatalf("damaged region %+v exceeds total %d", dr, rep.TotalMCUs)
		}
		prevEnd = dr.FirstMCU + dr.NumMCU
	}
	if rep.Impaired() {
		if len(rep.Errors) == 0 {
			t.Fatal("impaired report with no recorded errors")
		}
		if !errors.Is(rep.Err(), ErrPartialData) {
			t.Fatalf("errors.Is(rep.Err(), ErrPartialData) = false: %v", rep.Err())
		}
	} else if rep.Err() != nil {
		t.Fatalf("clean report returned error %v", rep.Err())
	}
}

func TestAddDamageMerge(t *testing.T) {
	rep := NewSalvageReport(100)
	rep.addDamage(50, 10) // [50,60)
	rep.addDamage(10, 5)  // out-of-order earlier region
	rep.addDamage(58, 7)  // overlaps [50,60) -> [50,65)
	rep.addDamage(15, 3)  // touches [10,15) -> [10,18)
	rep.addDamage(52, 3)  // fully inside
	want := []DamagedRegion{{10, 8}, {50, 15}}
	if len(rep.Damaged) != len(want) {
		t.Fatalf("Damaged = %+v, want %+v", rep.Damaged, want)
	}
	for i := range want {
		if rep.Damaged[i] != want[i] {
			t.Fatalf("Damaged = %+v, want %+v", rep.Damaged, want)
		}
	}
	if rep.RecoveredMCUs != 100-23 {
		t.Fatalf("RecoveredMCUs = %d, want %d", rep.RecoveredMCUs, 100-23)
	}
}

// TestSalvageCleanStreamIdentical: on an undamaged stream, salvage mode
// must take exactly the strict path — byte-identical pixels, nil report.
func TestSalvageCleanStreamIdentical(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		for _, ri := range []int{0, 4} {
			for _, prog := range []bool{false, true} {
				img := testImage(121, 87, 11)
				data, err := Encode(img, EncodeOptions{Quality: 80, Subsampling: sub, RestartInterval: ri, Progressive: prog})
				if err != nil {
					t.Fatal(err)
				}
				ref, err := DecodeScalar(data)
				if err != nil {
					t.Fatal(err)
				}
				got, rep, serr := DecodeScalarSalvage(data)
				if serr != nil || rep != nil {
					t.Fatalf("%v/ri%d/prog=%v: clean stream salvage: rep=%v err=%v", sub, ri, prog, rep, serr)
				}
				if !bytes.Equal(ref.Pix, got.Pix) {
					t.Fatalf("%v/ri%d/prog=%v: salvage pixels differ from strict on clean stream", sub, ri, prog)
				}
			}
		}
	}
}

// TestSalvageTruncatedBaselineMonotonic truncates a restart-interval
// baseline stream at every 7th byte: salvage must always yield an image
// plus ErrPartialData, strict must fail, and the recovered-MCU count
// must be non-decreasing in the cut point.
func TestSalvageTruncatedBaselineMonotonic(t *testing.T) {
	img := testImage(160, 128, 3)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub420, RestartInterval: 4})
	if err != nil {
		t.Fatal(err)
	}
	im, err := jfif.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	entStart := bytes.Index(data, im.EntropyData)
	if entStart < 0 {
		t.Fatal("entropy data not found in stream")
	}
	prevRecovered := -1
	for cut := entStart + 1; cut < len(data)-2; cut += 7 {
		trunc := data[:cut]
		if _, err := DecodeScalar(trunc); err == nil {
			t.Fatalf("cut %d: strict decode of truncated stream succeeded", cut)
		}
		got, rep, serr := DecodeScalarSalvage(trunc)
		if got == nil {
			t.Fatalf("cut %d: salvage returned no image: %v", cut, serr)
		}
		if rep == nil || !errors.Is(serr, ErrPartialData) {
			t.Fatalf("cut %d: salvage of truncated stream not impaired (rep=%v err=%v)", cut, rep, serr)
		}
		checkReportInvariants(t, rep)
		if rep.RecoveredMCUs < prevRecovered {
			t.Fatalf("cut %d: recovered %d < %d at earlier cut — not monotonic", cut, rep.RecoveredMCUs, prevRecovered)
		}
		prevRecovered = rep.RecoveredMCUs
	}
	if prevRecovered <= 0 {
		t.Fatal("no MCUs ever recovered from truncated streams")
	}
}

// TestSalvageTruncatedNoRestart: without restart markers nothing after
// the error is recoverable — tail loss, but still image + report.
func TestSalvageTruncatedNoRestart(t *testing.T) {
	img := testImage(97, 75, 5)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	trunc := data[:len(data)/2]
	got, rep, serr := DecodeScalarSalvage(trunc)
	if got == nil || rep == nil || !errors.Is(serr, ErrPartialData) {
		t.Fatalf("salvage of half stream: img=%v rep=%v err=%v", got != nil, rep, serr)
	}
	checkReportInvariants(t, rep)
	if rep.Resyncs != 0 {
		t.Fatalf("Resyncs = %d without restart markers", rep.Resyncs)
	}
	if rep.RecoveredMCUs == 0 || rep.RecoveredMCUs == rep.TotalMCUs {
		t.Fatalf("RecoveredMCUs = %d of %d, want a proper partial recovery", rep.RecoveredMCUs, rep.TotalMCUs)
	}
	// The damage must be one suffix region.
	if len(rep.Damaged) != 1 || rep.Damaged[0].FirstMCU+rep.Damaged[0].NumMCU != rep.TotalMCUs {
		t.Fatalf("Damaged = %+v, want one suffix region", rep.Damaged)
	}
}

// mutateRestartMarker finds the n'th RSTn marker in the entropy segment
// and applies f to the stream copy at its offset.
func mutateRestartMarker(t *testing.T, data []byte, skip int, f func(data []byte, i int) []byte) []byte {
	t.Helper()
	im, err := jfif.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	entStart := bytes.Index(data, im.EntropyData)
	seen := 0
	for i := entStart; i+1 < entStart+len(im.EntropyData); i++ {
		if data[i] != 0xFF {
			continue
		}
		b := data[i+1]
		if b == 0x00 {
			i++
			continue
		}
		if b >= 0xD0 && b <= 0xD7 {
			if seen == skip {
				out := append([]byte(nil), data...)
				return f(out, i)
			}
			seen++
			i++
		}
	}
	t.Fatalf("restart marker %d not found", skip)
	return nil
}

// TestSalvageDroppedRestartMarker removes one RSTn: the decoder loses at
// most the two adjacent intervals and resyncs via marker numbering.
func TestSalvageDroppedRestartMarker(t *testing.T) {
	img := testImage(160, 128, 9)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub420, RestartInterval: 4})
	if err != nil {
		t.Fatal(err)
	}
	mut := mutateRestartMarker(t, data, 3, func(d []byte, i int) []byte {
		return append(d[:i:i], d[i+2:]...)
	})
	got, rep, serr := DecodeScalarSalvage(mut)
	if got == nil || rep == nil || !errors.Is(serr, ErrPartialData) {
		t.Fatalf("dropped-RST salvage: img=%v rep=%v err=%v", got != nil, rep, serr)
	}
	checkReportInvariants(t, rep)
	if lost := rep.TotalMCUs - rep.RecoveredMCUs; lost > 3*4 {
		t.Fatalf("dropped restart marker lost %d MCUs, want <= 3 intervals", lost)
	}
	if rep.Resyncs == 0 {
		t.Fatal("dropped restart marker recovered without a resync")
	}
}

// TestSalvageDuplicatedRestartMarker duplicates one RSTn: the repeated
// marker number is out of sequence, detected, and resynced past.
func TestSalvageDuplicatedRestartMarker(t *testing.T) {
	img := testImage(160, 128, 9)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub420, RestartInterval: 4})
	if err != nil {
		t.Fatal(err)
	}
	mut := mutateRestartMarker(t, data, 3, func(d []byte, i int) []byte {
		dup := []byte{d[i], d[i+1]}
		return append(d[:i+2:i+2], append(dup, d[i+2:]...)...)
	})
	got, rep, serr := DecodeScalarSalvage(mut)
	if got == nil {
		t.Fatalf("duplicated-RST salvage returned no image: %v", serr)
	}
	if rep == nil || !errors.Is(serr, ErrPartialData) {
		t.Fatalf("duplicated RST went undetected (rep=%v err=%v)", rep, serr)
	}
	checkReportInvariants(t, rep)
	if lost := rep.TotalMCUs - rep.RecoveredMCUs; lost > 3*4 {
		t.Fatalf("duplicated restart marker lost %d MCUs, want <= 3 intervals", lost)
	}
}

// TestSalvageProgressiveTruncation cuts a progressive stream mid-scan:
// completed scans survive, the partial scan salvages or abandons, and
// the result is image + report, never a bare failure.
func TestSalvageProgressiveTruncation(t *testing.T) {
	img := testImage(121, 87, 13)
	for _, ri := range []int{0, 4} {
		data, err := Encode(img, EncodeOptions{Quality: 80, Subsampling: jfif.Sub420, Progressive: true, RestartInterval: ri})
		if err != nil {
			t.Fatal(err)
		}
		im, err := jfif.Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		// Cut inside the middle scan's data.
		mid := im.Scans[len(im.Scans)/2]
		off := bytes.Index(data, mid.Data)
		if off < 0 || len(mid.Data) < 4 {
			t.Fatalf("ri%d: cannot locate middle scan", ri)
		}
		trunc := data[:off+len(mid.Data)/2]
		got, rep, serr := DecodeScalarSalvage(trunc)
		if got == nil || rep == nil || !errors.Is(serr, ErrPartialData) {
			t.Fatalf("ri%d: progressive salvage: img=%v rep=%v err=%v", ri, got != nil, rep, serr)
		}
		checkReportInvariants(t, rep)
		// The DC scan completed before the cut, so most coverage remains.
		if rep.RecoveredMCUs == 0 {
			t.Fatalf("ri%d: progressive salvage recovered nothing", ri)
		}
		// The container-level truncation error is recorded at scan -1.
		foundParse := false
		for _, se := range rep.Errors {
			if se.Scan == -1 {
				foundParse = true
			}
		}
		if !foundParse {
			t.Fatalf("ri%d: no container-level error recorded: %+v", ri, rep.Errors)
		}
	}
}

// TestParallelRestartSalvage: the per-segment salvage variant of the
// parallel restart decoder. Clean streams produce exactly the strict
// sequential coefficients; gutting one segment's data damages only that
// segment while its siblings decode intact.
func TestParallelRestartSalvage(t *testing.T) {
	img := testImage(160, 128, 17)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub420, RestartInterval: 4})
	if err != nil {
		t.Fatal(err)
	}
	decodeCoeff := func(d []byte, parallel bool) (*Frame, *SalvageReport) {
		t.Helper()
		f, ed, err := PrepareDecode(d)
		if err != nil {
			t.Fatal(err)
		}
		if !parallel {
			if err := ed.DecodeAll(); err != nil {
				t.Fatal(err)
			}
			return f, nil
		}
		_, rep, err := DecodeAllParallelRestartSalvage(f, 4)
		if err != nil {
			t.Fatal(err)
		}
		return f, rep
	}

	ref, _ := decodeCoeff(data, false)
	got, rep := decodeCoeff(data, true)
	if rep.Impaired() {
		t.Fatalf("clean stream impaired: %v", rep.Err())
	}
	for c := range ref.Coeff {
		if !equalInt32(ref.Coeff[c], got.Coeff[c]) {
			t.Fatalf("clean parallel salvage coefficients differ (component %d)", c)
		}
	}

	// Gut the third restart segment: delete its bytes, keep both markers.
	im, err := jfif.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	entStart := bytes.Index(data, im.EntropyData)
	var marks []int
	for i := entStart; i+1 < entStart+len(im.EntropyData); i++ {
		if data[i] == 0xFF {
			if data[i+1] == 0x00 {
				i++
			} else if data[i+1] >= 0xD0 && data[i+1] <= 0xD7 {
				marks = append(marks, i)
				i++
			}
		}
	}
	if len(marks) < 4 {
		t.Fatalf("only %d restart markers", len(marks))
	}
	mut := append([]byte(nil), data[:marks[2]+2]...)
	mut = append(mut, data[marks[3]:]...)

	dmg, rep := decodeCoeff(mut, true)
	if !rep.Impaired() {
		t.Fatal("gutted segment not reported")
	}
	checkReportInvariants(t, rep)
	if len(rep.Damaged) != 1 || rep.Damaged[0].FirstMCU != 3*4 || rep.Damaged[0].NumMCU != 4 {
		t.Fatalf("Damaged = %+v, want exactly segment 3 (MCUs 12-15)", rep.Damaged)
	}
	// Every MCU outside the gutted segment matches the clean decode.
	for c, comp := range ref.Img.Components {
		p := ref.Planes[c]
		cs := 64
		if ref.DCOnly() {
			cs = 1
		}
		for u := 0; u < rep.TotalMCUs; u++ {
			if u >= 12 && u < 16 {
				continue
			}
			my, mx := u/ref.MCUsPerRow, u%ref.MCUsPerRow
			for v := 0; v < comp.V; v++ {
				for h := 0; h < comp.H; h++ {
					bi := ((my*comp.V+v)*p.BlocksPerRow + mx*comp.H + h) * cs
					if !equalInt32(ref.Coeff[c][bi:bi+cs], dmg.Coeff[c][bi:bi+cs]) {
						t.Fatalf("sibling MCU %d component %d corrupted by segment salvage", u, c)
					}
				}
			}
		}
	}
}

// TestSalvageUnsupportedStillFatal: ErrUnsupported is out of scope, not
// corruption; salvage must not mask it.
func TestSalvageUnsupportedStillFatal(t *testing.T) {
	img := testImage(64, 48, 1)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub444})
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte{0xFF, 0xC0})
	if i < 0 {
		t.Fatal("no SOF0")
	}
	data[i+4] = 12 // 12-bit precision
	_, rep, serr := DecodeScalarSalvage(data)
	if rep != nil || !errors.Is(serr, jfif.ErrUnsupported) {
		t.Fatalf("salvage of unsupported stream: rep=%v err=%v, want fatal ErrUnsupported", rep, serr)
	}
}
