package jpegcodec

import (
	"fmt"
	"testing"

	"hetjpeg/internal/jfif"
)

// Single-image scalar decode benchmarks: the CPU hot path this library's
// partitioning story leans on. BenchmarkDecodeScalar is the headline
// number tracked in BENCH_*.json across PRs.

func scalarFixture(b *testing.B, w, h int, sub jfif.Subsampling, ri int) []byte {
	b.Helper()
	img := makeTestImage(w, h, 23)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: sub, RestartInterval: ri})
	if err != nil {
		b.Fatal(err)
	}
	return data
}

func benchDecodeScalar(b *testing.B, w, h int, sub jfif.Subsampling) {
	data := scalarFixture(b, w, h, sub, 0)
	b.SetBytes(int64(w * h * 3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, err := DecodeScalar(data)
		if err != nil {
			b.Fatal(err)
		}
		img.Release()
	}
}

func BenchmarkDecodeScalar(b *testing.B) {
	benchDecodeScalar(b, 1024, 1024, jfif.Sub422)
}

func BenchmarkDecodeScalarSub(b *testing.B) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		b.Run(sub.String(), func(b *testing.B) {
			benchDecodeScalar(b, 1024, 768, sub)
		})
	}
}

func BenchmarkDecodeScalarSize(b *testing.B) {
	for _, wh := range [][2]int{{512, 512}, {2048, 1536}} {
		b.Run(fmt.Sprintf("%dx%d", wh[0], wh[1]), func(b *testing.B) {
			benchDecodeScalar(b, wh[0], wh[1], jfif.Sub422)
		})
	}
}

// BenchmarkParallelPhaseScalarWorkers measures the intra-image worker
// pool over MCU-row bands (wall-clock; output stays byte-identical).
func BenchmarkParallelPhaseScalarWorkers(b *testing.B) {
	data := scalarFixture(b, 2048, 1536, jfif.Sub420, 0)
	f, ed, err := PrepareDecode(data)
	if err != nil {
		b.Fatal(err)
	}
	if err := ed.DecodeAll(); err != nil {
		b.Fatal(err)
	}
	out := NewRGBImage(f.Img.Width, f.Img.Height)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.SetBytes(int64(f.Img.Width * f.Img.Height * 3))
			for i := 0; i < b.N; i++ {
				ParallelPhaseScalarWorkers(f, 0, f.MCURows, out, workers)
			}
		})
	}
}

// BenchmarkParallelPhaseScalar isolates the dequant+IDCT+upsample+color
// stage (no entropy decode) — the part the paper offloads to devices.
func BenchmarkParallelPhaseScalar(b *testing.B) {
	data := scalarFixture(b, 1024, 1024, jfif.Sub422, 0)
	f, ed, err := PrepareDecode(data)
	if err != nil {
		b.Fatal(err)
	}
	if err := ed.DecodeAll(); err != nil {
		b.Fatal(err)
	}
	out := NewRGBImage(f.Img.Width, f.Img.Height)
	b.SetBytes(int64(f.Img.Width * f.Img.Height * 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelPhaseScalar(f, 0, f.MCURows, out)
	}
}
