// Package jpegcodec implements the baseline JPEG encoder and the
// re-engineered decoder core of the paper's Section 3: a whole-image
// coefficient buffer below the traditional MCU-row machinery, so that
// entropy decoding (sequential, CPU-only) is decoupled from the
// data-parallel stages (dequantization, IDCT, upsampling, color
// conversion) that heterogeneous schedulers distribute freely.
package jpegcodec

import (
	"fmt"

	"hetjpeg/internal/dct"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/pool"
)

// Slab pools for the large per-decode buffers (whole-image coefficients,
// sample planes, interleaved RGB output), so steady-state batch decoding
// stays allocation-flat. Reused slabs come back zeroed (entropy decoding
// writes only the nonzero coefficients, and VirtualOnly decodes promise
// a zeroed image).
var (
	coeffPool pool.Slab[int32] // whole-image coefficient slabs
	bytePool  pool.Slab[byte]  // sample planes and RGB pixels
)

//hetlint:transfer ownership moves to the Frame/RGBImage; Frame.Release / RGBImage.Release put it back
func getCoeffSlab(n int) []int32 { return coeffPool.Get(n) }
func putCoeffSlab(s []int32)     { coeffPool.Put(s) }

//hetlint:transfer ownership moves to the Frame/RGBImage; Frame.Release / RGBImage.Release put it back
func getByteSlab(n int) []byte { return bytePool.Get(n) }
func putByteSlab(s []byte)     { bytePool.Put(s) }

// PlaneInfo describes the padded sample geometry of one component.
type PlaneInfo struct {
	// CompW, CompH are the unpadded component dimensions in coded
	// (full-resolution) samples — the block-grid semantics entropy
	// decoding works in, independent of the decode scale.
	CompW, CompH int
	// BlocksPerRow, BlockRows are the padded block-grid dimensions;
	// padding aligns every component to whole MCUs.
	BlocksPerRow, BlockRows int
	// H, V are the component's sampling factors.
	H, V int
	// BlockPix is the reconstructed samples per block edge: 8 for a
	// full-size decode, 4/2/1 under decode-to-scale. The zero value
	// means 8, so hand-built PlaneInfo literals keep working.
	BlockPix int
}

// blockPix maps the zero value to the full-size block edge.
func (p PlaneInfo) blockPix() int {
	if p.BlockPix == 0 {
		return 8
	}
	return p.BlockPix
}

// PlaneW returns the padded plane width in reconstructed samples.
func (p PlaneInfo) PlaneW() int { return p.BlocksPerRow * p.blockPix() }

// PlaneH returns the padded plane height in reconstructed samples.
func (p PlaneInfo) PlaneH() int { return p.BlockRows * p.blockPix() }

// Blocks returns the total number of 8x8 blocks in the plane.
func (p PlaneInfo) Blocks() int { return p.BlocksPerRow * p.BlockRows }

// Frame is the whole-image decode state: parsed structure, the quantized
// coefficient buffer filled by entropy decoding, and the sample planes
// filled by the parallel phase.
type Frame struct {
	Img *jfif.Image
	Sub jfif.Subsampling

	// MCU grid (coded, full-resolution geometry: entropy decoding and
	// scheduling always work in coded MCU rows regardless of scale).
	MCUWidth, MCUHeight int // in coded luma pixels
	MCUsPerRow, MCURows int

	// Scale is the decode-to-scale denominator (1, 2, 4 or 8); the
	// back phase reconstructs directly at the reduced resolution.
	Scale int
	// BlockPix is the reconstructed samples per block edge (8/Scale).
	BlockPix int
	// OutW, OutH are the reconstructed output dimensions:
	// ceil(Width/Scale) x ceil(Height/Scale).
	OutW, OutH int
	// MCUOutH is the reconstructed pixel rows per MCU row
	// (MCUHeight/Scale) — the unit all back-phase pixel-row math uses.
	MCUOutH int
	// CoeffStride is the int32 slots per block in Coeff: 64 normally, 1
	// for DC-only frames (baseline Scale8 decodes store and read only
	// the DC coefficient, collapsing the buffer 64x).
	CoeffStride int

	Planes []PlaneInfo

	// Coeff holds quantized DCT coefficients per component, blocks in
	// raster order, 64 int32 per block in natural (row-major) order.
	// This is the paper's whole-image input buffer: large contiguous
	// transfers to an accelerator need no re-layout.
	Coeff [][]int32

	// Samples holds the reconstructed (post-IDCT) planes, padded
	// geometry, one byte per sample.
	Samples [][]byte

	// NZ records per-block sparsity per component, blocks in raster
	// order: 0 means unknown (the IDCT falls back to the dense kernel),
	// v > 0 means the last nonzero coefficient of the block sits at
	// zigzag index v-1. Entropy decoding fills it for free; the IDCT
	// dispatches DC-only and 4x4-sparse fast paths on it.
	NZ [][]uint8

	// quantInt caches the per-component quantization tables widened to
	// int32, the form every IDCT kernel consumes.
	quantInt [][dct.BlockSize]int32
}

// NewFrameGeometry builds only the geometric view of a parsed image,
// without allocating the whole-image coefficient and sample buffers.
// Profiling uses it to summarize large corpora cheaply.
func NewFrameGeometry(im *jfif.Image) (*Frame, error) {
	f, err := newFrame(im, false, Scale1)
	return f, err
}

// NewFrame builds the decode state for a parsed image at full size.
func NewFrame(im *jfif.Image) (*Frame, error) {
	return newFrame(im, true, Scale1)
}

// NewFrameScaled builds the decode state for a parsed image at the
// given decode scale: sample planes and the output geometry shrink by
// the scale denominator, and baseline Scale8 frames collapse the
// coefficient buffer to DC-only storage.
func NewFrameScaled(im *jfif.Image, scale Scale) (*Frame, error) {
	return newFrame(im, true, scale)
}

func newFrame(im *jfif.Image, alloc bool, scale Scale) (*Frame, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	sub, err := im.Subsampling()
	if err != nil {
		return nil, err
	}
	if im.Width <= 0 || im.Height <= 0 {
		return nil, fmt.Errorf("jpegcodec: bad dimensions %dx%d", im.Width, im.Height)
	}
	f := &Frame{Img: im, Sub: sub}
	f.MCUWidth, f.MCUHeight = sub.MCUPixels()
	f.MCUsPerRow = (im.Width + f.MCUWidth - 1) / f.MCUWidth
	f.MCURows = (im.Height + f.MCUHeight - 1) / f.MCUHeight

	f.Scale = scale.Denominator()
	f.BlockPix = 8 / f.Scale
	f.OutW = (im.Width + f.Scale - 1) / f.Scale
	f.OutH = (im.Height + f.Scale - 1) / f.Scale
	f.MCUOutH = f.MCUHeight / f.Scale
	// Baseline DC-only decodes never revisit AC coefficients, so one
	// int32 per block suffices; progressive refinement scans read back
	// earlier coefficients and keep the full layout at every scale.
	f.CoeffStride = 64
	if f.Scale == 8 && !im.Progressive {
		f.CoeffStride = 1
	}

	f.Planes = make([]PlaneInfo, len(im.Components))
	f.Coeff = make([][]int32, len(im.Components))
	f.Samples = make([][]byte, len(im.Components))
	f.NZ = make([][]uint8, len(im.Components))
	f.quantInt = make([][dct.BlockSize]int32, len(im.Components))
	hMax, vMax := 1, 1
	for _, c := range im.Components {
		if c.H > hMax {
			hMax = c.H
		}
		if c.V > vMax {
			vMax = c.V
		}
	}
	for i, c := range im.Components {
		p := PlaneInfo{
			CompW:        (im.Width*c.H + hMax - 1) / hMax,
			CompH:        (im.Height*c.V + vMax - 1) / vMax,
			BlocksPerRow: f.MCUsPerRow * c.H,
			BlockRows:    f.MCURows * c.V,
			H:            c.H,
			V:            c.V,
			BlockPix:     f.BlockPix,
		}
		f.Planes[i] = p
		if q := im.Quant[c.QuantSel]; q != nil {
			for k, v := range q {
				f.quantInt[i][k] = int32(v)
			}
		}
		if alloc {
			f.Coeff[i] = getCoeffSlab(p.Blocks() * f.CoeffStride)
			f.Samples[i] = getByteSlab(p.PlaneW() * p.PlaneH())
			if f.CoeffStride == 64 {
				// DC-only frames skip the sparsity watermark: every block
				// is DC-only by construction.
				f.NZ[i] = getByteSlab(p.Blocks())
			}
		}
	}
	return f, nil
}

// QuantInt returns component c's quantization table widened to int32.
func (f *Frame) QuantInt(c int) *[dct.BlockSize]int32 { return &f.quantInt[c] }

// coeffStride maps a zero value (hand-built frames in tests) to the
// full 64-coefficient layout.
func (f *Frame) coeffStride() int {
	if f.CoeffStride == 0 {
		return 64
	}
	return f.CoeffStride
}

// DCOnly reports whether the frame stores only DC coefficients
// (baseline 1/8-scale decodes).
func (f *Frame) DCOnly() bool { return f.coeffStride() == 1 }

// CoeffPerBlock returns the int32 slots per block in Coeff (64, or 1
// for DC-only frames), mapping the zero value to 64. Consumers outside
// the package (device kernels, cost plans) use it so the defaulting
// rule has one authoritative site.
func (f *Frame) CoeffPerBlock() int { return f.coeffStride() }

// BlockPixels returns the reconstructed samples per block edge (8 at
// full size; 4, 2 or 1 under decode-to-scale), mapping the zero value
// to 8.
func (f *Frame) BlockPixels() int {
	if f.BlockPix == 0 {
		return 8
	}
	return f.BlockPix
}

// OutDims returns the reconstructed output dimensions, mapping the
// zero value to the coded size.
func (f *Frame) OutDims() (w, h int) { return f.outW(), f.outH() }

// Block returns the coefficient slice of block (bx, by) of component c:
// 64 natural-order coefficients normally, a single DC slot for DC-only
// frames.
func (f *Frame) Block(c, bx, by int) []int32 {
	p := f.Planes[c]
	cs := f.coeffStride()
	idx := (by*p.BlocksPerRow + bx) * cs
	return f.Coeff[c][idx : idx+cs : idx+cs]
}

// CoeffRows returns the coefficient slice covering MCU rows [m0, m1) of
// component c — the unit the scheduler transfers to a device.
func (f *Frame) CoeffRows(c, m0, m1 int) []int32 {
	p := f.Planes[c]
	cs := f.coeffStride()
	b0 := m0 * p.V * p.BlocksPerRow * cs
	b1 := m1 * p.V * p.BlocksPerRow * cs
	return f.Coeff[c][b0:b1]
}

// CoeffBytes returns the byte size of the coefficient data for MCU rows
// [m0, m1) across all components (what a host→device transfer moves; the
// wire format is int16 per coefficient, as in the paper's short buffers —
// DC-only frames move a single int16 per block).
func (f *Frame) CoeffBytes(m0, m1 int) int {
	n := 0
	cs := f.coeffStride()
	for c := range f.Planes {
		p := f.Planes[c]
		n += (m1 - m0) * p.V * p.BlocksPerRow * cs * 2
	}
	return n
}

// outH maps the zero value (hand-built frames) to the coded height.
func (f *Frame) outH() int {
	if f.OutH == 0 {
		return f.Img.Height
	}
	return f.OutH
}

// outW maps the zero value to the coded width.
func (f *Frame) outW() int {
	if f.OutW == 0 {
		return f.Img.Width
	}
	return f.OutW
}

// mcuOutH maps the zero value to the coded MCU height.
func (f *Frame) mcuOutH() int {
	if f.MCUOutH == 0 {
		return f.MCUHeight
	}
	return f.MCUOutH
}

// RGBBytes returns the byte size of the interleaved RGB output for MCU
// rows [m0, m1) (device→host transfer size, at the output scale).
func (f *Frame) RGBBytes(m0, m1 int) int {
	r0, r1 := f.PixelRows(m0, m1)
	return (r1 - r0) * f.outW() * 3
}

// PixelRows maps MCU row range [m0, m1) to output pixel rows, clamped
// to the output height. At full size these are coded luma rows; under
// decode-to-scale they are scaled rows (MCUOutH per MCU row).
func (f *Frame) PixelRows(m0, m1 int) (int, int) {
	mh, oh := f.mcuOutH(), f.outH()
	r0 := m0 * mh
	r1 := m1 * mh
	if r1 > oh {
		r1 = oh
	}
	if r0 > oh {
		r0 = oh
	}
	return r0, r1
}

// TotalBlocks returns the number of 8x8 blocks across all components.
func (f *Frame) TotalBlocks() int {
	n := 0
	for _, p := range f.Planes {
		n += p.Blocks()
	}
	return n
}

// Release returns the frame's coefficient and sample slabs to the
// decoder's buffer pools. The frame's geometry stays valid, but Coeff
// and Samples become nil: call it only once the pixels (or coefficients)
// are no longer needed. Releasing is optional — an unreleased frame is
// simply garbage-collected.
func (f *Frame) Release() {
	for i := range f.Coeff {
		if f.Coeff[i] != nil {
			putCoeffSlab(f.Coeff[i])
			f.Coeff[i] = nil
		}
	}
	for i := range f.Samples {
		if f.Samples[i] != nil {
			putByteSlab(f.Samples[i])
			f.Samples[i] = nil
		}
	}
	for i := range f.NZ {
		if f.NZ[i] != nil {
			putByteSlab(f.NZ[i])
			f.NZ[i] = nil
		}
	}
}

// RGBImage is a decoded image: interleaved 8-bit RGB.
type RGBImage struct {
	W, H int
	Pix  []byte // len = W*H*3
}

// NewRGBImage allocates a w×h RGB image, reusing a pooled pixel buffer
// when one is available.
func NewRGBImage(w, h int) *RGBImage {
	return &RGBImage{W: w, H: h, Pix: getByteSlab(w * h * 3)}
}

// Release returns the image's pixel buffer to the decoder's buffer pool
// and nils Pix. Call it only once the pixels are no longer needed;
// releasing is optional.
func (im *RGBImage) Release() {
	if im.Pix != nil {
		putByteSlab(im.Pix)
		im.Pix = nil
	}
}

// At returns the pixel at (x, y).
func (im *RGBImage) At(x, y int) (r, g, b byte) {
	i := (y*im.W + x) * 3
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set writes the pixel at (x, y).
func (im *RGBImage) Set(x, y int, r, g, b byte) {
	i := (y*im.W + x) * 3
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}
