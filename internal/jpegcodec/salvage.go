package jpegcodec

import (
	"errors"
	"fmt"

	"hetjpeg/internal/jfif"
)

// Error-resilient decoding: the salvage layer. In strict mode (the
// default) any entropy error — a bad Huffman code, a coefficient run
// overflowing its block, an unexpected marker or end of input — aborts
// the decode. In salvage mode the entropy decoders instead resynchronize
// at the next restart marker (libjpeg's recovery discipline: the marker
// number, modulo 8, says how many restart intervals were lost), zero the
// MCUs the error swallowed, reset the DC predictors and EOB runs per
// T.81, and keep decoding — accumulating what happened in a
// SalvageReport so the caller gets a partial image *and* a precise
// account of what is missing, instead of nothing.
//
// Because every execution mode and both batch schedulers consume the
// coefficient state this one sequential decoder produces, salvage
// decisions made here yield byte-identical pixels everywhere; the
// fault-injection conformance harness asserts it.

// ErrPartialData marks a salvaged decode: pixels were produced, but
// part of the stream was lost to corruption or truncation. It is
// returned *alongside* a usable image (Decode gives both a Result and
// an error wrapping this sentinel). Check it with errors.Is to
// distinguish "degraded but displayable" from a total failure.
var ErrPartialData = errors.New("jpegcodec: partial image data")

// maxResyncSkip bounds how many restart intervals a resync may assume
// were lost when interpreting a found marker's number: the modulo-8
// numbering cannot distinguish a marker d intervals ahead from one 8-d
// intervals behind, so skips beyond this are treated as stale or
// duplicated markers and scanned past (losing at most one extra
// interval) rather than trusted.
const maxResyncSkip = 4

// DamagedRegion is one contiguous run of MCUs (raster order) whose
// coefficients were lost and zeroed — rendered as flat mid-gray.
type DamagedRegion struct {
	FirstMCU int
	NumMCU   int
}

// ScanError records one absorbed error. Scan is the entropy scan it
// occurred in: 0 for a baseline stream, the scan index for progressive
// streams, and -1 for a container-level (parse) error such as a
// truncated marker segment after the first decodable scan.
type ScanError struct {
	Scan int
	Err  error
}

// SalvageReport accounts for a salvage-mode decode. A report with no
// recorded errors means the stream decoded cleanly (Impaired reports
// false and the decode output is byte-identical to strict mode).
type SalvageReport struct {
	// TotalMCUs is the image's MCU count; RecoveredMCUs is how many
	// carry decoded (rather than zeroed or DC-missing) coefficients.
	TotalMCUs     int
	RecoveredMCUs int
	// Resyncs counts successful restart-marker resynchronizations.
	Resyncs int
	// Damaged lists the lost MCU runs, ascending and non-overlapping.
	// Progressive refinement losses do not appear here (prior-scan
	// coefficients are kept); only lost first-DC coverage counts.
	Damaged []DamagedRegion
	// Errors lists every absorbed error in the order encountered.
	Errors []ScanError

	firstErr error
}

// NewSalvageReport returns a clean report for an image of totalMCUs.
func NewSalvageReport(totalMCUs int) *SalvageReport {
	return &SalvageReport{TotalMCUs: totalMCUs, RecoveredMCUs: totalMCUs}
}

// Impaired reports whether any error was absorbed. When false, the
// decode took exactly the strict path and the output is identical.
func (r *SalvageReport) Impaired() bool { return r != nil && r.firstErr != nil }

// Err returns the ErrPartialData error summarizing the report, wrapping
// the first underlying error so errors.Is sees both sentinels; nil when
// the decode was clean.
func (r *SalvageReport) Err() error {
	if !r.Impaired() {
		return nil
	}
	return fmt.Errorf("%w: recovered %d of %d MCUs (%d resyncs): %w",
		ErrPartialData, r.RecoveredMCUs, r.TotalMCUs, r.Resyncs, r.firstErr)
}

// record absorbs one error into the report.
func (r *SalvageReport) record(scan int, err error) {
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.Errors = append(r.Errors, ScanError{Scan: scan, Err: err})
}

// addDamage marks MCUs [first, first+n) lost, keeping Damaged sorted,
// disjoint and merged (progressive scans can damage an earlier region
// after a later one, so insertion order is arbitrary) and RecoveredMCUs
// consistent with the merged coverage.
func (r *SalvageReport) addDamage(first, n int) {
	if n <= 0 {
		return
	}
	merged := make([]DamagedRegion, 0, len(r.Damaged)+1)
	appendRegion := func(a, b int) {
		if k := len(merged); k > 0 {
			prev := &merged[k-1]
			if a <= prev.FirstMCU+prev.NumMCU {
				if b > prev.FirstMCU+prev.NumMCU {
					prev.NumMCU = b - prev.FirstMCU
				}
				return
			}
		}
		merged = append(merged, DamagedRegion{FirstMCU: a, NumMCU: b - a})
	}
	placed := false
	for _, dr := range r.Damaged {
		if !placed && first < dr.FirstMCU {
			appendRegion(first, first+n)
			placed = true
		}
		appendRegion(dr.FirstMCU, dr.FirstMCU+dr.NumMCU)
	}
	if !placed {
		appendRegion(first, first+n)
	}
	r.Damaged = merged
	covered := 0
	for _, dr := range merged {
		covered += dr.NumMCU
	}
	r.RecoveredMCUs = r.TotalMCUs - covered
}

// DamagedMCUs returns the total MCU count across damaged regions.
func (r *SalvageReport) DamagedMCUs() int {
	s := 0
	for _, d := range r.Damaged {
		s += d.NumMCU
	}
	return s
}

// PrepareDecodeSalvage is PrepareDecode with salvage enabled: the
// returned EntropyDecoder absorbs entropy errors by restart-marker
// resynchronization instead of failing, and its SalvageReport()
// describes what was lost. Errors that leave nothing decodable (no
// frame header, missing tables, unsupported features) still fail.
func PrepareDecodeSalvage(data []byte) (*Frame, *EntropyDecoder, error) {
	return PrepareDecodeSalvageScaled(data, Scale1)
}

// PrepareDecodeSalvageScaled is PrepareDecodeSalvage at a decode scale.
// A structurally damaged container (truncated mid-scan, corrupt segment
// length after the first decodable scan) yields a decoder over the
// salvageable prefix with the parse error pre-recorded in its report.
func PrepareDecodeSalvageScaled(data []byte, scale Scale) (*Frame, *EntropyDecoder, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	im, perr := jfif.ParseSalvage(data)
	if im == nil {
		return nil, nil, perr
	}
	for _, c := range im.Components {
		if im.Quant[c.QuantSel] == nil {
			return nil, nil, fmt.Errorf("jpegcodec: missing quant table %d", c.QuantSel)
		}
	}
	f, err := NewFrameScaled(im, scale)
	if err != nil {
		return nil, nil, err
	}
	ed := NewEntropyDecoder(f)
	rep := NewSalvageReport(f.MCUsPerRow * f.MCURows)
	if perr != nil {
		rep.record(-1, perr)
	}
	ed.EnableSalvage(rep)
	return f, ed, nil
}

// DecodeScalarSalvage is the scalar reference decoder in salvage mode —
// the ground truth the fault-injection harness compares every mode and
// scheduler against. It returns the decoded image plus a non-nil report
// and an ErrPartialData error when the stream was impaired; a clean
// stream returns (image, nil, nil) with pixels identical to
// DecodeScalar. A stream with nothing salvageable returns a plain
// error.
func DecodeScalarSalvage(data []byte) (*RGBImage, *SalvageReport, error) {
	f, ed, err := PrepareDecodeSalvage(data)
	if err != nil {
		return nil, nil, err
	}
	if err := ed.DecodeAll(); err != nil {
		// Salvage-mode entropy decoding absorbs entropy errors; anything
		// surfacing here is unexpected and fatal.
		return nil, nil, err
	}
	out := NewRGBImage(f.OutW, f.OutH)
	ParallelPhaseScalar(f, 0, f.MCURows, out)
	rep := ed.SalvageReport()
	if !rep.Impaired() {
		return out, nil, nil
	}
	return out, rep, rep.Err()
}
