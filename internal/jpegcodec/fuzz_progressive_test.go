package jpegcodec

import (
	"testing"

	"hetjpeg/internal/jfif"
)

// FuzzProgressiveDecode fuzzes the progressive scan parser and the
// EOBRUN/successive-approximation decode paths end to end: any input
// must either decode or fail with an error — panics and runaway
// allocations are bugs. Seeds are generated progressive fixtures (every
// script shape, subsampled and not, with and without restart markers)
// plus truncations, so mutation starts from deep inside the scan
// machinery rather than from random bytes that die in the marker loop.
func FuzzProgressiveDecode(f *testing.F) {
	img := testImage(40, 24, 5)
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub420} {
		for _, script := range progScripts {
			for _, ri := range []int{0, 2} {
				data, err := Encode(img, EncodeOptions{
					Quality: 80, Subsampling: sub, Progressive: true,
					Script: script, RestartInterval: ri,
				})
				if err != nil {
					f.Fatal(err)
				}
				f.Add(data)
				f.Add(data[:len(data)*2/3])
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := jfif.Parse(data)
		if err != nil {
			return
		}
		if im.Width*im.Height > 1<<20 {
			// Mutated dimension fields can demand GB-sized coefficient
			// buffers; decoding correctness is covered below that size.
			return
		}
		fr, ed, err := PrepareDecode(data)
		if err != nil {
			return
		}
		defer fr.Release()
		if err := ed.DecodeAll(); err != nil {
			return
		}
		out := NewRGBImage(fr.Img.Width, fr.Img.Height)
		defer out.Release()
		ParallelPhaseScalar(fr, 0, fr.MCURows, out)
	})
}
