package jpegcodec

import "hetjpeg/internal/jfif"

// This file exposes the fused back phase (dequant+IDCT, upsample, color
// conversion) at MCU-row-band granularity for external schedulers: the
// batch band scheduler pulls bands from many in-flight images through one
// shared worker pool, so a large image's tail is spread across idle
// workers instead of pinning one. ParallelPhaseScalarWorkers is the
// single-image specialization (one band per worker).
//
// A band executes independently of every other band of the same plan:
// it transforms its own MCU rows and color-converts only the pixel rows
// whose inputs are fully inside the band. For 4:2:0 the two pixel rows
// at each interior band boundary read chroma from both sides of the
// seam; they are deferred to FinishSeams, which runs once after every
// band of the image completed. Output is byte-identical to the
// sequential fused pipeline for any band decomposition.

// ConvertScratch is a reusable per-goroutine scratch for the chroma
// upsampling rows of the fused pipeline. A worker keeps one across
// bands of any number of frames; it grows to the widest frame seen and
// allocates nothing once warm. The zero value is ready to use.
type ConvertScratch struct {
	cs convertScratch
}

// ensure grows the scratch to frame f's chroma row width.
func (s *ConvertScratch) ensure(f *Frame) {
	if len(f.Planes) < 3 || f.Sub == jfif.Sub444 {
		return
	}
	cpw := f.Planes[1].PlaneW()
	if len(s.cs.cbUp) < 2*cpw {
		s.cs.cbUp = make([]byte, 2*cpw)
		s.cs.crUp = make([]byte, 2*cpw)
	}
	if f.Sub == jfif.Sub420 && len(s.cs.blend) < cpw {
		s.cs.blend = make([]int, cpw)
	}
}

// BandPlan is a decomposition of the back phase of MCU rows [m0, m1)
// into contiguous MCU-row bands, each an independently executable task.
type BandPlan struct {
	f      *Frame
	starts []int // band boundaries: band i covers MCU rows [starts[i], starts[i+1])
	r0, r1 int   // pixel rows covered by the plan
}

// PlanBands slices MCU rows [m0, m1) of f into bands of bandRows MCU
// rows (the last band may be short). bandRows < 1 is treated as 1.
func PlanBands(f *Frame, m0, m1, bandRows int) *BandPlan {
	if bandRows < 1 {
		bandRows = 1
	}
	bp := &BandPlan{f: f}
	bp.r0, bp.r1 = f.PixelRows(m0, m1)
	for m := m0; m < m1; m += bandRows {
		bp.starts = append(bp.starts, m)
	}
	bp.starts = append(bp.starts, m1)
	return bp
}

// planBandsN slices MCU rows [m0, m1) into exactly n equal-share bands
// (the ParallelPhaseScalarWorkers decomposition). n must be in [1, m1-m0].
func planBandsN(f *Frame, m0, m1, n int) *BandPlan {
	bp := &BandPlan{f: f}
	bp.r0, bp.r1 = f.PixelRows(m0, m1)
	rows := m1 - m0
	bp.starts = make([]int, n+1)
	for i := 0; i <= n; i++ {
		bp.starts[i] = m0 + rows*i/n
	}
	return bp
}

// Bands returns the number of bands in the plan.
func (bp *BandPlan) Bands() int { return len(bp.starts) - 1 }

// BandMCURows returns the number of MCU rows band i covers (the unit the
// batch scheduler's online calibration normalizes measured times by).
func (bp *BandPlan) BandMCURows(i int) int { return bp.starts[i+1] - bp.starts[i] }

// NeedsSeams reports whether FinishSeams has pixel rows to convert: only
// 4:2:0 plans with interior boundaries defer seam rows.
func (bp *BandPlan) NeedsSeams() bool {
	return bp.f.Sub == jfif.Sub420 && bp.Bands() > 1
}

// ExecBand runs band i's share of the fused pipeline into out: IDCT of
// its MCU rows, then upsampling + color conversion of the pixel rows
// whose inputs lie entirely within rows reconstructed by this band (the
// per-row deferral of the fused pipeline, plus the 4:2:0 seam deferral
// at band boundaries). Bands of one plan may run concurrently: each
// writes disjoint plane and pixel regions.
func (bp *BandPlan) ExecBand(i int, out *RGBImage, s *ConvertScratch) {
	f := bp.f
	a, b := bp.starts[i], bp.starts[i+1]
	s.ensure(f)
	lo, _ := f.PixelRows(a, b)
	if f.Sub == jfif.Sub420 && i > 0 {
		// The boundary row below the seam (owned here by the bound
		// shift) and the one above both read the previous band's chroma:
		// both become seam rows. Units are output rows, so the same rule
		// holds at every decode scale.
		lo = a*f.mcuOutH() + 1
	}
	hi := bp.r1
	if i < bp.Bands()-1 {
		hi = bandBound(f, b)
	}
	y := lo
	for m := a; m < b; m++ {
		for c := range f.Planes {
			IDCTRange(f, c, m, m+1)
		}
		yEnd := hi
		if m+1 < b {
			if e := bandBound(f, m+1); e < yEnd {
				yEnd = e
			}
		}
		if yEnd < y {
			yEnd = y
		}
		colorConvertRange(f, y, yEnd, out, &s.cs)
		y = yEnd
	}
}

// FinishSeams converts the deferred 4:2:0 seam rows (two pixel rows per
// interior band boundary, whose vertical chroma filter reads both
// sides). It must run after every band of the plan completed; for other
// subsamplings it is a no-op.
func (bp *BandPlan) FinishSeams(out *RGBImage, s *ConvertScratch) {
	f := bp.f
	if f.Sub != jfif.Sub420 {
		return
	}
	s.ensure(f)
	for i := 1; i < bp.Bands(); i++ {
		a := bp.starts[i]
		lo := a*f.mcuOutH() - 1
		hi := a*f.mcuOutH() + 1
		if lo < bp.r0 {
			lo = bp.r0
		}
		if hi > bp.r1 {
			hi = bp.r1
		}
		if lo < hi {
			colorConvertRange(f, lo, hi, out, &s.cs)
		}
	}
}
