package jpegcodec

import (
	"errors"
	"fmt"

	"hetjpeg/internal/bitstream"
	"hetjpeg/internal/huffman"
	"hetjpeg/internal/jfif"
)

// EntropyDecoder performs sequential Huffman decoding of a frame's
// entropy-coded segment into the whole-image coefficient buffer. It is
// chunk-oriented: callers decode a number of MCU rows at a time (the
// pipelined schedulers of Sections 4.5/5.2 interleave these chunks with
// device work) and can query the exact number of entropy bits each MCU
// row consumed (PPS re-partitioning, Equations 16-17).
//
// Progressive frames decode through the same interface: DecodeRows then
// measures scan rows (a progressive image traverses its coefficient
// buffer once per scan), and BitsPerRow aggregates every scan's bits
// onto the covering luma MCU rows once decoding completes, so the cost
// model sees the same per-row shape either way. The one semantic
// difference callers must respect: progressive coefficients are final
// only when Done reports true — no back-phase work may start earlier.
type EntropyDecoder struct {
	f   *Frame
	r   *bitstream.Reader
	dc  []int32 // DC predictor per component
	row int     // next MCU row to decode
	col int     // next MCU within the current row (salvage resume cursor)

	prog *progDecoder // non-nil for progressive frames

	// Salvage mode: entropy errors resynchronize at the next restart
	// marker (zeroing the lost MCUs) instead of aborting, accumulating
	// into report. restartsSeen tracks consumed restart markers so a
	// found marker's modulo-8 number resolves to an absolute position;
	// byteBase is the offset of r's current data window within
	// Img.EntropyData after a resync re-anchors the reader.
	salvage      bool
	report       *SalvageReport
	restartsSeen int
	byteBase     int

	discard bool
	// dcOnly (baseline 1/8-scale frames) keeps only DC coefficients:
	// AC symbols are still Huffman-decoded to advance the bitstream, but
	// their value bits are skipped without EXTEND, de-zigzag stores or
	// NZ bookkeeping — the whole-image coefficient buffer collapses to
	// one int32 per block and entropy decoding sheds its store traffic.
	dcOnly  bool
	scratch [64]int32

	mcusSinceRestart int

	// BitsPerRow[i] is the number of entropy bits MCU row i consumed.
	BitsPerRow []int64
	// BlocksPerRow is the number of coefficient blocks per MCU row.
	blocksPerMCURow int
}

// NewEntropyDecoder prepares chunked entropy decoding for f.
func NewEntropyDecoder(f *Frame) *EntropyDecoder {
	return newEntropyDecoder(f, false)
}

// NewEntropyDecoderDiscard prepares a decode pass that discards the
// coefficients, recording only per-row bit counts. f may come from
// NewFrameGeometry (no buffers). Profiling uses this to measure entropy
// density distribution without whole-image allocations (progressive
// refinement needs read-back, so progressive discard decodes still
// allocate plain coefficient buffers internally).
func NewEntropyDecoderDiscard(f *Frame) *EntropyDecoder {
	return newEntropyDecoder(f, true)
}

func newEntropyDecoder(f *Frame, discard bool) *EntropyDecoder {
	blocks := 0
	for _, c := range f.Img.Components {
		blocks += c.H * c.V
	}
	d := &EntropyDecoder{
		f:               f,
		r:               bitstream.NewReader(f.Img.EntropyData),
		dc:              make([]int32, len(f.Img.Components)),
		BitsPerRow:      make([]int64, 0, f.MCURows),
		blocksPerMCURow: blocks * f.MCUsPerRow,
		discard:         discard,
		dcOnly:          f.DCOnly(),
	}
	if f.Img.Progressive {
		d.prog = newProgDecoder(f, discard)
	}
	return d
}

// EnableSalvage switches the decoder into salvage mode: entropy errors
// resynchronize at the next restart marker and accumulate into rep
// instead of aborting. Must be called before the first DecodeRows. On a
// clean stream the decode path is bit-for-bit the strict one and rep
// stays unimpaired.
func (d *EntropyDecoder) EnableSalvage(rep *SalvageReport) {
	d.salvage = true
	d.report = rep
	if d.prog != nil {
		d.prog.salvage = true
		d.prog.report = rep
	}
}

// SalvageReport returns the report EnableSalvage installed (nil in
// strict mode).
func (d *EntropyDecoder) SalvageReport() *SalvageReport { return d.report }

// Row returns the next MCU row index to be decoded (baseline only; a
// progressive decode reports the current scan's row).
func (d *EntropyDecoder) Row() int {
	if d.prog != nil {
		return d.prog.row
	}
	return d.row
}

// Done reports whether the whole image has been entropy decoded.
func (d *EntropyDecoder) Done() bool {
	if d.prog != nil {
		return d.prog.Done()
	}
	return d.row >= d.f.MCURows
}

// TotalRows returns the number of MCU rows in the image.
func (d *EntropyDecoder) TotalRows() int { return d.f.MCURows }

// bitPos returns the reader's position in bits within the full entropy
// segment, net of buffered bits (byteBase re-anchors after a salvage
// resync so positions stay monotone across Reader resets).
func (d *EntropyDecoder) bitPos() int64 {
	return int64(d.byteBase+d.r.BytePos())*8 - int64(d.r.BitsBuffered())
}

// DecodeRows entropy-decodes n rows of work into the coefficient
// buffer, returning the number of rows actually decoded. Baseline rows
// are MCU rows; progressive rows are scan rows (so the pipelined
// callers keep their cancellation-poll granularity across scans).
func (d *EntropyDecoder) DecodeRows(n int) (int, error) {
	if d.prog != nil {
		decoded, err := d.prog.DecodeRows(n)
		if err != nil {
			return decoded, err
		}
		if d.prog.Done() && len(d.BitsPerRow) == 0 {
			// All scans landed: publish the per-MCU-row aggregate.
			d.BitsPerRow = d.prog.rowBits
		}
		return decoded, nil
	}
	decoded := 0
	for ; n > 0 && d.row < d.f.MCURows; n-- {
		start := d.bitPos()
		if err := d.decodeMCURow(d.row); err != nil {
			if d.salvage {
				d.salvageResync(err, start)
				decoded++
				continue
			}
			return decoded, fmt.Errorf("jpegcodec: entropy decode of MCU row %d: %w", d.row, err)
		}
		d.BitsPerRow = append(d.BitsPerRow, d.bitPos()-start)
		d.row++
		d.col = 0
		decoded++
	}
	return decoded, nil
}

// DecodeAll decodes every remaining row of work.
func (d *EntropyDecoder) DecodeAll() error {
	for !d.Done() {
		if _, err := d.DecodeRows(d.f.MCURows); err != nil {
			return err
		}
	}
	return nil
}

func (d *EntropyDecoder) decodeMCURow(m int) error {
	f := d.f
	im := f.Img
	ri := im.RestartInterval
	// d.col is the resume cursor: 0 on the strict path (and after every
	// completed row), the failing MCU's column after a salvage resync
	// lands mid-row.
	for ; d.col < f.MCUsPerRow; d.col++ {
		mx := d.col
		if ri > 0 && d.mcusSinceRestart == ri {
			mk, err := d.r.SkipRestartMarker()
			if err != nil {
				return err
			}
			if d.salvage && int(mk-0xD0) != d.restartsSeen%8 {
				// Salvage-only check: an out-of-sequence restart number
				// means markers were dropped or duplicated; resync rather
				// than decode a misaligned interval. Strict mode keeps
				// its historical behavior (any RSTn accepted).
				return fmt.Errorf("restart marker %#02x out of sequence (want RST%d)", mk, d.restartsSeen%8)
			}
			d.restartsSeen++
			for i := range d.dc {
				d.dc[i] = 0
			}
			d.mcusSinceRestart = 0
		}
		if d.salvage && d.r.Marker() != 0 && d.r.BitsBuffered() == 0 {
			// Salvage-only check: real bits ran out at a pending marker
			// with MCUs still owed before the next restart — everything
			// further would decode synthetic zero padding.
			return fmt.Errorf("entropy data exhausted at marker %#02x (MCU %d of restart interval)", d.r.Marker(), d.mcusSinceRestart)
		}
		for ci, comp := range im.Components {
			dcTab := im.DCTables[comp.DCSel]
			acTab := im.ACTables[comp.ACSel]
			if dcTab == nil || acTab == nil {
				return errors.New("missing Huffman table")
			}
			for v := 0; v < comp.V; v++ {
				for h := 0; h < comp.H; h++ {
					var blk []int32
					if d.discard {
						d.scratch = [64]int32{}
						blk = d.scratch[:]
					} else {
						blk = f.Block(ci, mx*comp.H+h, m*comp.V+v)
					}
					maxK, err := d.decodeBlock(blk, ci, dcTab, acTab)
					if err != nil {
						return err
					}
					if !d.discard && f.NZ[ci] != nil {
						bi := (m*comp.V+v)*f.Planes[ci].BlocksPerRow + mx*comp.H + h
						f.NZ[ci][bi] = uint8(maxK + 1)
					}
				}
			}
		}
		d.mcusSinceRestart++
	}
	return nil
}

// decodeBlock reads one 8x8 block: DC difference then AC run-lengths,
// writing coefficients in natural order (de-zigzagged). It returns the
// zigzag index of the last coefficient it wrote (0 for a DC-only block),
// the sparsity summary the IDCT dispatcher keys on.
func (d *EntropyDecoder) decodeBlock(blk []int32, comp int, dcTab, acTab *huffman.Table) (int, error) {
	// DC coefficient.
	t, err := dcTab.Decode(d.r)
	if err != nil {
		return 0, err
	}
	if t > 15 {
		return 0, fmt.Errorf("bad DC category %d", t)
	}
	diff := int32(0)
	if t > 0 {
		bits, err := d.r.ReadBits(uint(t))
		if err != nil {
			return 0, err
		}
		diff = extend(bits, uint(t))
	}
	d.dc[comp] += diff
	blk[0] = d.dc[comp]

	if d.dcOnly {
		return 0, d.skipACs(acTab)
	}

	// AC coefficients.
	maxK := 0
	for k := 1; k < 64; {
		rs, err := acTab.Decode(d.r)
		if err != nil {
			return maxK, err
		}
		r := int(rs >> 4)
		s := uint(rs & 0xF)
		if s == 0 {
			if r == 15 { // ZRL: sixteen zeros
				k += 16
				continue
			}
			break // EOB
		}
		k += r
		if k > 63 {
			return maxK, fmt.Errorf("AC run overflows block (k=%d)", k)
		}
		bits, err := d.r.ReadBits(s)
		if err != nil {
			return maxK, err
		}
		blk[jfif.ZigZag[k]] = extend(bits, s)
		maxK = k
		k++
	}
	return maxK, nil
}

// skipACs walks one block's AC symbols without materializing the
// coefficients: Huffman symbols are decoded and value bits consumed
// (the bitstream position must advance exactly as in the storing path)
// but EXTEND and the coefficient stores are skipped. Run/length errors
// are still reported so corrupt streams fail identically at any scale.
func (d *EntropyDecoder) skipACs(acTab *huffman.Table) error {
	for k := 1; k < 64; {
		rs, err := acTab.Decode(d.r)
		if err != nil {
			return err
		}
		r := int(rs >> 4)
		s := uint(rs & 0xF)
		if s == 0 {
			if r == 15 { // ZRL: sixteen zeros
				k += 16
				continue
			}
			return nil // EOB
		}
		k += r
		if k > 63 {
			return fmt.Errorf("AC run overflows block (k=%d)", k)
		}
		if _, err := d.r.ReadBits(s); err != nil {
			return err
		}
		k++
	}
	return nil
}

// extend implements the EXTEND procedure of T.81 F.2.2.1: map a magnitude
// category value to its signed coefficient.
func extend(v uint32, t uint) int32 {
	if v < 1<<(t-1) {
		return int32(v) - int32(1<<t) + 1
	}
	return int32(v)
}

// salvageResync absorbs a baseline entropy error: record it, then scan
// the raw entropy bytes ahead for a restart marker whose modulo-8
// number resolves (against restartsSeen) to an MCU position past the
// error, zero the MCUs in between, and re-anchor the reader after the
// marker with DC predictors reset per T.81. Without a usable marker the
// remaining MCUs are zeroed and the decode completes as a tail loss.
// rowStart is the bit position where the failed row began (bit
// accounting for the cost model).
func (d *EntropyDecoder) salvageResync(err error, rowStart int64) {
	f := d.f
	total := f.MCUsPerRow * f.MCURows
	errMCU := d.row*f.MCUsPerRow + d.col
	d.report.record(0, fmt.Errorf("jpegcodec: entropy decode of MCU row %d: %w", d.row, err))
	if ri := f.Img.RestartInterval; ri > 0 {
		data := f.Img.EntropyData
		for i := d.byteBase + d.r.BytePos(); i+1 < len(data); {
			if data[i] != 0xFF {
				i++
				continue
			}
			mk := data[i+1]
			if mk == 0x00 { // byte stuffing: entropy data
				i += 2
				continue
			}
			if mk == 0xFF { // fill byte; the marker may start here
				i++
				continue
			}
			if mk < 0xD0 || mk > 0xD7 {
				break // a non-restart marker ends the scan: tail loss
			}
			// dskip = how many whole restart intervals the marker number
			// says were lost (0 = the very next expected marker).
			dskip := (int(mk-0xD0) - d.restartsSeen%8 + 8) % 8
			cand := (d.restartsSeen + dskip + 1) * ri
			if dskip > maxResyncSkip || cand <= errMCU {
				i += 2 // stale, duplicated, or behind the error: keep scanning
				continue
			}
			if cand >= total {
				break // claims a position past the image: tail loss
			}
			d.zeroMCUs(errMCU, cand-errMCU)
			d.r.Reset(data[i+2:])
			d.byteBase = i + 2
			for j := range d.dc {
				d.dc[j] = 0
			}
			d.mcusSinceRestart = 0
			d.restartsSeen += dskip + 1
			d.report.Resyncs++
			newRow := cand / f.MCUsPerRow
			d.fillRowBits(newRow, rowStart)
			d.row = newRow
			d.col = cand % f.MCUsPerRow
			return
		}
	}
	d.zeroMCUs(errMCU, total-errMCU)
	d.fillRowBits(f.MCURows, rowStart)
	d.row = f.MCURows
	d.col = 0
}

// fillRowBits keeps the len(BitsPerRow) == row invariant across a
// resync that jumps rows: the failed row absorbs the bits consumed and
// skipped during the jump, the fully-lost rows in between cost zero.
// A resync landing within the current row appends nothing (the row's
// entry lands when it eventually completes).
func (d *EntropyDecoder) fillRowBits(newRow int, rowStart int64) {
	if newRow <= d.row {
		return
	}
	d.BitsPerRow = append(d.BitsPerRow, d.bitPos()-rowStart)
	for r := d.row + 1; r < newRow; r++ {
		d.BitsPerRow = append(d.BitsPerRow, 0)
	}
}

// zeroMCUs clears the coefficients and sparsity watermarks of MCUs
// [first, first+n) in raster order and records them as damaged. Pooled
// slabs arrive zeroed, but the failing MCU may be partially written and
// a resync can land on MCUs decoded from misinterpreted bits, so the
// whole damaged span is cleared explicitly. NZ drops to 1 (DC-only,
// DC = 0) so the flat fast path renders damaged blocks as mid-gray.
func (d *EntropyDecoder) zeroMCUs(first, n int) {
	d.report.addDamage(first, n)
	if d.discard {
		return
	}
	f := d.f
	for u := first; u < first+n; u++ {
		m := u / f.MCUsPerRow
		mx := u % f.MCUsPerRow
		for ci, comp := range f.Img.Components {
			for v := 0; v < comp.V; v++ {
				for h := 0; h < comp.H; h++ {
					blk := f.Block(ci, mx*comp.H+h, m*comp.V+v)
					for j := range blk {
						blk[j] = 0
					}
					if f.NZ[ci] != nil {
						bi := (m*comp.V+v)*f.Planes[ci].BlocksPerRow + mx*comp.H + h
						f.NZ[ci][bi] = 1
					}
				}
			}
		}
	}
}

// EntropyBitsTotal returns the total entropy bits consumed so far.
func (d *EntropyDecoder) EntropyBitsTotal() int64 {
	var s int64
	for _, b := range d.BitsPerRow {
		s += b
	}
	return s
}
