package jpegcodec

import (
	"errors"
	"fmt"

	"hetjpeg/internal/bitstream"
	"hetjpeg/internal/huffman"
	"hetjpeg/internal/jfif"
)

// EntropyDecoder performs sequential Huffman decoding of a frame's
// entropy-coded segment into the whole-image coefficient buffer. It is
// chunk-oriented: callers decode a number of MCU rows at a time (the
// pipelined schedulers of Sections 4.5/5.2 interleave these chunks with
// device work) and can query the exact number of entropy bits each MCU
// row consumed (PPS re-partitioning, Equations 16-17).
type EntropyDecoder struct {
	f   *Frame
	r   *bitstream.Reader
	dc  []int32 // DC predictor per component
	row int     // next MCU row to decode

	discard bool
	scratch [64]int32

	mcusSinceRestart int

	// BitsPerRow[i] is the number of entropy bits MCU row i consumed.
	BitsPerRow []int64
	// BlocksPerRow is the number of coefficient blocks per MCU row.
	blocksPerMCURow int
}

// NewEntropyDecoder prepares chunked entropy decoding for f.
func NewEntropyDecoder(f *Frame) *EntropyDecoder {
	blocks := 0
	for _, c := range f.Img.Components {
		blocks += c.H * c.V
	}
	return &EntropyDecoder{
		f:               f,
		r:               bitstream.NewReader(f.Img.EntropyData),
		dc:              make([]int32, len(f.Img.Components)),
		BitsPerRow:      make([]int64, 0, f.MCURows),
		blocksPerMCURow: blocks * f.MCUsPerRow,
	}
}

// NewEntropyDecoderDiscard prepares a decode pass that discards the
// coefficients, recording only per-row bit counts. f may come from
// NewFrameGeometry (no buffers). Profiling uses this to measure entropy
// density distribution without whole-image allocations.
func NewEntropyDecoderDiscard(f *Frame) *EntropyDecoder {
	d := NewEntropyDecoder(f)
	d.discard = true
	return d
}

// Row returns the next MCU row index to be decoded.
func (d *EntropyDecoder) Row() int { return d.row }

// Done reports whether the whole image has been entropy decoded.
func (d *EntropyDecoder) Done() bool { return d.row >= d.f.MCURows }

// TotalRows returns the number of MCU rows in the image.
func (d *EntropyDecoder) TotalRows() int { return d.f.MCURows }

// bitPos returns the reader's position in bits, net of buffered bits.
func (d *EntropyDecoder) bitPos() int64 {
	return int64(d.r.BytePos())*8 - int64(d.r.BitsBuffered())
}

// DecodeRows entropy-decodes MCU rows [row, row+n) into the coefficient
// buffer, returning the number of rows actually decoded.
func (d *EntropyDecoder) DecodeRows(n int) (int, error) {
	decoded := 0
	for ; n > 0 && d.row < d.f.MCURows; n-- {
		start := d.bitPos()
		if err := d.decodeMCURow(d.row); err != nil {
			return decoded, fmt.Errorf("jpegcodec: entropy decode of MCU row %d: %w", d.row, err)
		}
		d.BitsPerRow = append(d.BitsPerRow, d.bitPos()-start)
		d.row++
		decoded++
	}
	return decoded, nil
}

// DecodeAll decodes every remaining MCU row.
func (d *EntropyDecoder) DecodeAll() error {
	_, err := d.DecodeRows(d.f.MCURows - d.row)
	return err
}

func (d *EntropyDecoder) decodeMCURow(m int) error {
	f := d.f
	im := f.Img
	ri := im.RestartInterval
	for mx := 0; mx < f.MCUsPerRow; mx++ {
		if ri > 0 && d.mcusSinceRestart == ri {
			if _, err := d.r.SkipRestartMarker(); err != nil {
				return err
			}
			for i := range d.dc {
				d.dc[i] = 0
			}
			d.mcusSinceRestart = 0
		}
		for ci, comp := range im.Components {
			dcTab := im.DCTables[comp.DCSel]
			acTab := im.ACTables[comp.ACSel]
			if dcTab == nil || acTab == nil {
				return errors.New("missing Huffman table")
			}
			for v := 0; v < comp.V; v++ {
				for h := 0; h < comp.H; h++ {
					var blk []int32
					if d.discard {
						d.scratch = [64]int32{}
						blk = d.scratch[:]
					} else {
						blk = f.Block(ci, mx*comp.H+h, m*comp.V+v)
					}
					maxK, err := d.decodeBlock(blk, ci, dcTab, acTab)
					if err != nil {
						return err
					}
					if !d.discard && f.NZ[ci] != nil {
						bi := (m*comp.V+v)*f.Planes[ci].BlocksPerRow + mx*comp.H + h
						f.NZ[ci][bi] = uint8(maxK + 1)
					}
				}
			}
		}
		d.mcusSinceRestart++
	}
	return nil
}

// decodeBlock reads one 8x8 block: DC difference then AC run-lengths,
// writing coefficients in natural order (de-zigzagged). It returns the
// zigzag index of the last coefficient it wrote (0 for a DC-only block),
// the sparsity summary the IDCT dispatcher keys on.
func (d *EntropyDecoder) decodeBlock(blk []int32, comp int, dcTab, acTab *huffman.Table) (int, error) {
	// DC coefficient.
	t, err := dcTab.Decode(d.r)
	if err != nil {
		return 0, err
	}
	if t > 15 {
		return 0, fmt.Errorf("bad DC category %d", t)
	}
	diff := int32(0)
	if t > 0 {
		bits, err := d.r.ReadBits(uint(t))
		if err != nil {
			return 0, err
		}
		diff = extend(bits, uint(t))
	}
	d.dc[comp] += diff
	blk[0] = d.dc[comp]

	// AC coefficients.
	maxK := 0
	for k := 1; k < 64; {
		rs, err := acTab.Decode(d.r)
		if err != nil {
			return maxK, err
		}
		r := int(rs >> 4)
		s := uint(rs & 0xF)
		if s == 0 {
			if r == 15 { // ZRL: sixteen zeros
				k += 16
				continue
			}
			break // EOB
		}
		k += r
		if k > 63 {
			return maxK, fmt.Errorf("AC run overflows block (k=%d)", k)
		}
		bits, err := d.r.ReadBits(s)
		if err != nil {
			return maxK, err
		}
		blk[jfif.ZigZag[k]] = extend(bits, s)
		maxK = k
		k++
	}
	return maxK, nil
}

// extend implements the EXTEND procedure of T.81 F.2.2.1: map a magnitude
// category value to its signed coefficient.
func extend(v uint32, t uint) int32 {
	if v < 1<<(t-1) {
		return int32(v) - int32(1<<t) + 1
	}
	return int32(v)
}

// EntropyBitsTotal returns the total entropy bits consumed so far.
func (d *EntropyDecoder) EntropyBitsTotal() int64 {
	var s int64
	for _, b := range d.BitsPerRow {
		s += b
	}
	return s
}
