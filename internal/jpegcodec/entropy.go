package jpegcodec

import (
	"errors"
	"fmt"

	"hetjpeg/internal/bitstream"
	"hetjpeg/internal/huffman"
	"hetjpeg/internal/jfif"
)

// EntropyDecoder performs sequential Huffman decoding of a frame's
// entropy-coded segment into the whole-image coefficient buffer. It is
// chunk-oriented: callers decode a number of MCU rows at a time (the
// pipelined schedulers of Sections 4.5/5.2 interleave these chunks with
// device work) and can query the exact number of entropy bits each MCU
// row consumed (PPS re-partitioning, Equations 16-17).
//
// Progressive frames decode through the same interface: DecodeRows then
// measures scan rows (a progressive image traverses its coefficient
// buffer once per scan), and BitsPerRow aggregates every scan's bits
// onto the covering luma MCU rows once decoding completes, so the cost
// model sees the same per-row shape either way. The one semantic
// difference callers must respect: progressive coefficients are final
// only when Done reports true — no back-phase work may start earlier.
type EntropyDecoder struct {
	f   *Frame
	r   *bitstream.Reader
	dc  []int32 // DC predictor per component
	row int     // next MCU row to decode

	prog *progDecoder // non-nil for progressive frames

	discard bool
	// dcOnly (baseline 1/8-scale frames) keeps only DC coefficients:
	// AC symbols are still Huffman-decoded to advance the bitstream, but
	// their value bits are skipped without EXTEND, de-zigzag stores or
	// NZ bookkeeping — the whole-image coefficient buffer collapses to
	// one int32 per block and entropy decoding sheds its store traffic.
	dcOnly  bool
	scratch [64]int32

	mcusSinceRestart int

	// BitsPerRow[i] is the number of entropy bits MCU row i consumed.
	BitsPerRow []int64
	// BlocksPerRow is the number of coefficient blocks per MCU row.
	blocksPerMCURow int
}

// NewEntropyDecoder prepares chunked entropy decoding for f.
func NewEntropyDecoder(f *Frame) *EntropyDecoder {
	return newEntropyDecoder(f, false)
}

// NewEntropyDecoderDiscard prepares a decode pass that discards the
// coefficients, recording only per-row bit counts. f may come from
// NewFrameGeometry (no buffers). Profiling uses this to measure entropy
// density distribution without whole-image allocations (progressive
// refinement needs read-back, so progressive discard decodes still
// allocate plain coefficient buffers internally).
func NewEntropyDecoderDiscard(f *Frame) *EntropyDecoder {
	return newEntropyDecoder(f, true)
}

func newEntropyDecoder(f *Frame, discard bool) *EntropyDecoder {
	blocks := 0
	for _, c := range f.Img.Components {
		blocks += c.H * c.V
	}
	d := &EntropyDecoder{
		f:               f,
		r:               bitstream.NewReader(f.Img.EntropyData),
		dc:              make([]int32, len(f.Img.Components)),
		BitsPerRow:      make([]int64, 0, f.MCURows),
		blocksPerMCURow: blocks * f.MCUsPerRow,
		discard:         discard,
		dcOnly:          f.DCOnly(),
	}
	if f.Img.Progressive {
		d.prog = newProgDecoder(f, discard)
	}
	return d
}

// Row returns the next MCU row index to be decoded (baseline only; a
// progressive decode reports the current scan's row).
func (d *EntropyDecoder) Row() int {
	if d.prog != nil {
		return d.prog.row
	}
	return d.row
}

// Done reports whether the whole image has been entropy decoded.
func (d *EntropyDecoder) Done() bool {
	if d.prog != nil {
		return d.prog.Done()
	}
	return d.row >= d.f.MCURows
}

// TotalRows returns the number of MCU rows in the image.
func (d *EntropyDecoder) TotalRows() int { return d.f.MCURows }

// bitPos returns the reader's position in bits, net of buffered bits.
func (d *EntropyDecoder) bitPos() int64 {
	return int64(d.r.BytePos())*8 - int64(d.r.BitsBuffered())
}

// DecodeRows entropy-decodes n rows of work into the coefficient
// buffer, returning the number of rows actually decoded. Baseline rows
// are MCU rows; progressive rows are scan rows (so the pipelined
// callers keep their cancellation-poll granularity across scans).
func (d *EntropyDecoder) DecodeRows(n int) (int, error) {
	if d.prog != nil {
		decoded, err := d.prog.DecodeRows(n)
		if err != nil {
			return decoded, err
		}
		if d.prog.Done() && len(d.BitsPerRow) == 0 {
			// All scans landed: publish the per-MCU-row aggregate.
			d.BitsPerRow = d.prog.rowBits
		}
		return decoded, nil
	}
	decoded := 0
	for ; n > 0 && d.row < d.f.MCURows; n-- {
		start := d.bitPos()
		if err := d.decodeMCURow(d.row); err != nil {
			return decoded, fmt.Errorf("jpegcodec: entropy decode of MCU row %d: %w", d.row, err)
		}
		d.BitsPerRow = append(d.BitsPerRow, d.bitPos()-start)
		d.row++
		decoded++
	}
	return decoded, nil
}

// DecodeAll decodes every remaining row of work.
func (d *EntropyDecoder) DecodeAll() error {
	for !d.Done() {
		if _, err := d.DecodeRows(d.f.MCURows); err != nil {
			return err
		}
	}
	return nil
}

func (d *EntropyDecoder) decodeMCURow(m int) error {
	f := d.f
	im := f.Img
	ri := im.RestartInterval
	for mx := 0; mx < f.MCUsPerRow; mx++ {
		if ri > 0 && d.mcusSinceRestart == ri {
			if _, err := d.r.SkipRestartMarker(); err != nil {
				return err
			}
			for i := range d.dc {
				d.dc[i] = 0
			}
			d.mcusSinceRestart = 0
		}
		for ci, comp := range im.Components {
			dcTab := im.DCTables[comp.DCSel]
			acTab := im.ACTables[comp.ACSel]
			if dcTab == nil || acTab == nil {
				return errors.New("missing Huffman table")
			}
			for v := 0; v < comp.V; v++ {
				for h := 0; h < comp.H; h++ {
					var blk []int32
					if d.discard {
						d.scratch = [64]int32{}
						blk = d.scratch[:]
					} else {
						blk = f.Block(ci, mx*comp.H+h, m*comp.V+v)
					}
					maxK, err := d.decodeBlock(blk, ci, dcTab, acTab)
					if err != nil {
						return err
					}
					if !d.discard && f.NZ[ci] != nil {
						bi := (m*comp.V+v)*f.Planes[ci].BlocksPerRow + mx*comp.H + h
						f.NZ[ci][bi] = uint8(maxK + 1)
					}
				}
			}
		}
		d.mcusSinceRestart++
	}
	return nil
}

// decodeBlock reads one 8x8 block: DC difference then AC run-lengths,
// writing coefficients in natural order (de-zigzagged). It returns the
// zigzag index of the last coefficient it wrote (0 for a DC-only block),
// the sparsity summary the IDCT dispatcher keys on.
func (d *EntropyDecoder) decodeBlock(blk []int32, comp int, dcTab, acTab *huffman.Table) (int, error) {
	// DC coefficient.
	t, err := dcTab.Decode(d.r)
	if err != nil {
		return 0, err
	}
	if t > 15 {
		return 0, fmt.Errorf("bad DC category %d", t)
	}
	diff := int32(0)
	if t > 0 {
		bits, err := d.r.ReadBits(uint(t))
		if err != nil {
			return 0, err
		}
		diff = extend(bits, uint(t))
	}
	d.dc[comp] += diff
	blk[0] = d.dc[comp]

	if d.dcOnly {
		return 0, d.skipACs(acTab)
	}

	// AC coefficients.
	maxK := 0
	for k := 1; k < 64; {
		rs, err := acTab.Decode(d.r)
		if err != nil {
			return maxK, err
		}
		r := int(rs >> 4)
		s := uint(rs & 0xF)
		if s == 0 {
			if r == 15 { // ZRL: sixteen zeros
				k += 16
				continue
			}
			break // EOB
		}
		k += r
		if k > 63 {
			return maxK, fmt.Errorf("AC run overflows block (k=%d)", k)
		}
		bits, err := d.r.ReadBits(s)
		if err != nil {
			return maxK, err
		}
		blk[jfif.ZigZag[k]] = extend(bits, s)
		maxK = k
		k++
	}
	return maxK, nil
}

// skipACs walks one block's AC symbols without materializing the
// coefficients: Huffman symbols are decoded and value bits consumed
// (the bitstream position must advance exactly as in the storing path)
// but EXTEND and the coefficient stores are skipped. Run/length errors
// are still reported so corrupt streams fail identically at any scale.
func (d *EntropyDecoder) skipACs(acTab *huffman.Table) error {
	for k := 1; k < 64; {
		rs, err := acTab.Decode(d.r)
		if err != nil {
			return err
		}
		r := int(rs >> 4)
		s := uint(rs & 0xF)
		if s == 0 {
			if r == 15 { // ZRL: sixteen zeros
				k += 16
				continue
			}
			return nil // EOB
		}
		k += r
		if k > 63 {
			return fmt.Errorf("AC run overflows block (k=%d)", k)
		}
		if _, err := d.r.ReadBits(s); err != nil {
			return err
		}
		k++
	}
	return nil
}

// extend implements the EXTEND procedure of T.81 F.2.2.1: map a magnitude
// category value to its signed coefficient.
func extend(v uint32, t uint) int32 {
	if v < 1<<(t-1) {
		return int32(v) - int32(1<<t) + 1
	}
	return int32(v)
}

// EntropyBitsTotal returns the total entropy bits consumed so far.
func (d *EntropyDecoder) EntropyBitsTotal() int64 {
	var s int64
	for _, b := range d.BitsPerRow {
		s += b
	}
	return s
}
