package jpegcodec

import (
	"fmt"
	"sync"

	"hetjpeg/internal/bitstream"
	"hetjpeg/internal/huffman"
	"hetjpeg/internal/jfif"
)

// Parallel entropy decoding across restart intervals. The paper treats
// Huffman decoding as strictly sequential because baseline JPEG gives no
// codeword boundaries — but when the encoder emitted restart markers
// (DRI), every restart segment starts byte-aligned with reset DC
// predictors and can be decoded independently (the direction of Klein &
// Wiseman [12], which the paper cites as inapplicable only because the
// JPEG standard does not *mandate* such markers). This is an extension
// beyond the paper: it lifts the Amdahl ceiling that its Figure 11
// measures against, at the cost of requiring cooperative encoders.

// restartSegment is one independently decodable run of MCUs.
type restartSegment struct {
	data     []byte // entropy bytes, marker excluded
	firstMCU int    // global index of its first MCU
	numMCU   int
}

// splitRestartSegments scans the entropy-coded data for RSTn markers.
// Inside entropy data, 0xFF is always followed by 0x00 (stuffing) or a
// marker byte, so the scan is unambiguous.
func splitRestartSegments(f *Frame) ([]restartSegment, error) {
	if f.Img.Progressive {
		return nil, fmt.Errorf("jpegcodec: parallel restart decoding applies to baseline scans only")
	}
	ri := f.Img.RestartInterval
	if ri <= 0 {
		return nil, fmt.Errorf("jpegcodec: stream has no restart interval")
	}
	data := f.Img.EntropyData
	totalMCU := f.MCUsPerRow * f.MCURows
	var segs []restartSegment
	start := 0
	firstMCU := 0
	for i := 0; i+1 < len(data); i++ {
		if data[i] != 0xFF {
			continue
		}
		nxt := data[i+1]
		if nxt == 0x00 {
			i++ // stuffed byte
			continue
		}
		if nxt >= 0xD0 && nxt <= 0xD7 {
			segs = append(segs, restartSegment{
				data:     data[start:i],
				firstMCU: firstMCU,
				numMCU:   ri,
			})
			firstMCU += ri
			start = i + 2
			i++
		}
	}
	if firstMCU >= totalMCU {
		return nil, fmt.Errorf("jpegcodec: restart markers cover %d MCUs, image has %d", firstMCU, totalMCU)
	}
	segs = append(segs, restartSegment{
		data:     data[start:],
		firstMCU: firstMCU,
		numMCU:   totalMCU - firstMCU,
	})
	return segs, nil
}

// DecodeAllParallelRestart entropy-decodes the whole frame using up to
// `workers` goroutines, one restart segment at a time. It fills the same
// whole-image coefficient buffer and the same per-MCU-row bit accounting
// as the sequential decoder (bits of rows spanning segment boundaries
// are summed across segments). The result is bit-identical to
// EntropyDecoder.DecodeAll.
func DecodeAllParallelRestart(f *Frame, workers int) ([]int64, error) {
	segs, err := splitRestartSegments(f)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(segs) {
		workers = len(segs)
	}

	bitsPerRow := make([]int64, f.MCURows)
	var mu sync.Mutex // guards bitsPerRow merging

	type job struct{ seg restartSegment }
	jobs := make(chan job)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			local := make([]int64, f.MCURows)
			for j := range jobs {
				if err := decodeSegment(f, j.seg, local); err != nil {
					errs <- err
					return
				}
			}
			mu.Lock()
			for i, b := range local {
				bitsPerRow[i] += b
			}
			mu.Unlock()
		}()
	}
	for _, s := range segs {
		jobs <- job{s}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return bitsPerRow, nil
}

// decodeSegment decodes one restart segment's MCUs into the shared
// coefficient buffer (disjoint block ranges, so no synchronization is
// needed) and accumulates per-row bit counts into rowBits.
func decodeSegment(f *Frame, seg restartSegment, rowBits []int64) error {
	im := f.Img
	r := bitstream.NewReader(seg.data)
	dc := make([]int32, len(im.Components))
	tabs := make([]struct{ dc, ac *huffman.Table }, len(im.Components))
	for ci, comp := range im.Components {
		tabs[ci].dc = im.DCTables[comp.DCSel]
		tabs[ci].ac = im.ACTables[comp.ACSel]
		if tabs[ci].dc == nil || tabs[ci].ac == nil {
			return fmt.Errorf("jpegcodec: missing Huffman table for component %d", ci)
		}
	}
	d := &EntropyDecoder{f: f, r: r, dc: dc, dcOnly: f.DCOnly()}
	bitPos := func() int64 { return int64(r.BytePos())*8 - int64(r.BitsBuffered()) }

	for k := 0; k < seg.numMCU; k++ {
		mcu := seg.firstMCU + k
		my := mcu / f.MCUsPerRow
		mx := mcu % f.MCUsPerRow
		if my >= f.MCURows {
			return fmt.Errorf("jpegcodec: restart segment overruns image (MCU %d)", mcu)
		}
		start := bitPos()
		for ci, comp := range im.Components {
			for v := 0; v < comp.V; v++ {
				for h := 0; h < comp.H; h++ {
					blk := f.Block(ci, mx*comp.H+h, my*comp.V+v)
					maxK, err := d.decodeBlock(blk, ci, tabs[ci].dc, tabs[ci].ac)
					if err != nil {
						return fmt.Errorf("jpegcodec: segment MCU %d: %w", mcu, err)
					}
					if f.NZ[ci] != nil {
						// Disjoint block indices per segment: no races.
						bi := (my*comp.V+v)*f.Planes[ci].BlocksPerRow + mx*comp.H + h
						f.NZ[ci][bi] = uint8(maxK + 1)
					}
				}
			}
		}
		rowBits[my] += bitPos() - start
	}
	return nil
}

// HasRestartIntervals reports whether a parsed image can use the
// parallel restart decoder.
func HasRestartIntervals(im *jfif.Image) bool { return im.RestartInterval > 0 }

// splitRestartSegmentsSalvage is the marker-number-aware splitter: where
// the strict splitter assumes every marker ends exactly one restart
// interval, this one resolves each marker's modulo-8 number against the
// expected sequence, so dropped markers widen the preceding segment to
// the intervals it physically contains and duplicated markers collapse
// to nothing instead of shifting every later segment off position.
// Structural problems are recorded in rep rather than failing.
func splitRestartSegmentsSalvage(f *Frame, rep *SalvageReport) []restartSegment {
	ri := f.Img.RestartInterval
	data := f.Img.EntropyData
	totalMCU := f.MCUsPerRow * f.MCURows
	var segs []restartSegment
	start := 0
	intervals := 0 // restart intervals accounted for so far
	emit := func(end, span int) {
		firstMCU := intervals * ri
		if firstMCU >= totalMCU {
			rep.record(0, fmt.Errorf("jpegcodec: restart markers past the image (interval %d)", intervals))
			return
		}
		n := span * ri
		if firstMCU+n > totalMCU {
			n = totalMCU - firstMCU
		}
		segs = append(segs, restartSegment{data: data[start:end], firstMCU: firstMCU, numMCU: n})
		intervals += span
	}
	for i := 0; i+1 < len(data); i++ {
		if data[i] != 0xFF {
			continue
		}
		nxt := data[i+1]
		if nxt == 0x00 {
			i++
			continue
		}
		if nxt < 0xD0 || nxt > 0xD7 {
			continue
		}
		dskip := (int(nxt-0xD0) - intervals%8 + 8) % 8
		switch {
		case dskip <= maxResyncSkip:
			// This marker closes interval intervals+dskip: the blob holds
			// dskip+1 intervals' worth of data (dropped markers included).
			emit(i, dskip+1)
		case i == start:
			// Empty blob with a stale number: a duplicated marker; drop it.
		default:
			// Misnumbered marker after real data: trust stream order over
			// the number (decode errors surface in per-segment salvage).
			emit(i, 1)
		}
		start = i + 2
		i++
	}
	if intervals*ri < totalMCU {
		segs = append(segs, restartSegment{
			data:     data[start:],
			firstMCU: intervals * ri,
			numMCU:   totalMCU - intervals*ri,
		})
	}
	return segs
}

// DecodeAllParallelRestartSalvage is DecodeAllParallelRestart with
// per-segment salvage: a corrupt segment zeroes its own remaining MCUs
// and records the error instead of killing its siblings, so the decode
// always completes. The returned report is non-nil; its Err() is nil
// when every segment decoded cleanly.
func DecodeAllParallelRestartSalvage(f *Frame, workers int) ([]int64, *SalvageReport, error) {
	if f.Img.Progressive {
		return nil, nil, fmt.Errorf("jpegcodec: parallel restart decoding applies to baseline scans only")
	}
	if f.Img.RestartInterval <= 0 {
		return nil, nil, fmt.Errorf("jpegcodec: stream has no restart interval")
	}
	for ci, comp := range f.Img.Components {
		if f.Img.DCTables[comp.DCSel] == nil || f.Img.ACTables[comp.ACSel] == nil {
			return nil, nil, fmt.Errorf("jpegcodec: missing Huffman table for component %d", ci)
		}
	}
	rep := NewSalvageReport(f.MCUsPerRow * f.MCURows)
	segs := splitRestartSegmentsSalvage(f, rep)
	if workers < 1 {
		workers = 1
	}
	if workers > len(segs) {
		workers = len(segs)
	}

	bitsPerRow := make([]int64, f.MCURows)
	var mu sync.Mutex // guards bitsPerRow merging and rep

	jobs := make(chan restartSegment)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			local := make([]int64, f.MCURows)
			zero := &EntropyDecoder{f: f, report: rep}
			for seg := range jobs {
				if err := decodeSegment(f, seg, local); err != nil {
					// The segment's tail is lost; zero it (disjoint blocks,
					// so only the report needs the lock) and keep going.
					mu.Lock()
					rep.record(0, err)
					zero.zeroMCUs(seg.firstMCU, seg.numMCU)
					mu.Unlock()
				}
			}
			mu.Lock()
			for i, b := range local {
				bitsPerRow[i] += b
			}
			mu.Unlock()
		}()
	}
	for _, s := range segs {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	return bitsPerRow, rep, nil
}
