package jpegcodec

// The named progressive scan-script table. Every consumer that spells a
// script by name — the transcode knobs (?script=), cmd/jpegxc, the
// fixture generator in internal/imagegen — resolves it here, so the
// public encoder and the test fixtures cannot drift apart (the table is
// pinned by scripts_test.go).

// NamedScript pairs a scan script with its stable public name.
type NamedScript struct {
	// Name is the spelling frontends accept ("default", "spectral",
	// "multiband", "deepsa").
	Name string
	// Build returns a fresh copy of the script (scripts are mutable
	// slices; sharing one instance across encodes would invite aliasing
	// bugs).
	Build func() []ScanSpec
}

// Scripts returns the progressive scan-script table in its stable
// order. The first entry is the default script.
func Scripts() []NamedScript {
	return []NamedScript{
		{Name: "default", Build: ScriptDefault},
		{Name: "spectral", Build: ScriptSpectralOnly},
		{Name: "multiband", Build: ScriptMultiBand},
		{Name: "deepsa", Build: ScriptDeepSA},
	}
}

// ScriptByName resolves a script name from the table; ok is false for
// unknown names. The empty string resolves to the default script, so
// frontends can pass an unset knob straight through.
func ScriptByName(name string) ([]ScanSpec, bool) {
	if name == "" {
		return ScriptDefault(), true
	}
	for _, ns := range Scripts() {
		if ns.Name == name {
			return ns.Build(), true
		}
	}
	return nil, false
}

// ScriptNames returns the accepted script names in table order, for
// frontends composing "want one of ..." error messages.
func ScriptNames() []string {
	all := Scripts()
	names := make([]string, len(all))
	for i, ns := range all {
		names[i] = ns.Name
	}
	return names
}
