package jpegcodec

import (
	"fmt"
	"testing"

	"hetjpeg/internal/jfif"
)

// Scaled decode benchmarks: the decode-to-fit hot path. The headline
// trajectory (BENCH_4.json via `make bench-scale`) tracks the full
// pipeline — entropy decode plus scaled back phase — per scale on the
// bench-corpus geometry. The 1/8 path additionally exercises the
// DC-only entropy store elision, so its speedup over full decode
// reflects both the collapsed back phase and the cheaper stage 1.

func benchDecodeScaled(b *testing.B, w, h int, sub jfif.Subsampling, scale Scale) {
	data := scalarFixture(b, w, h, sub, 0)
	out, err := DecodeScalarScaled(data, scale)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(out.W * out.H * 3))
	out.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, err := DecodeScalarScaled(data, scale)
		if err != nil {
			b.Fatal(err)
		}
		img.Release()
	}
}

// BenchmarkDecodeScaled tracks decode-to-scale on the bench corpus
// geometry (2048x1536 4:2:0, quality 85). div1 is the full-size
// baseline the scaled rows are compared against.
func BenchmarkDecodeScaled(b *testing.B) {
	for _, scale := range []Scale{Scale1, Scale2, Scale4, Scale8} {
		b.Run(fmt.Sprintf("div%d", scale.Denominator()), func(b *testing.B) {
			benchDecodeScaled(b, 2048, 1536, jfif.Sub420, scale)
		})
	}
}

// BenchmarkDecodeScaledSub isolates the subsampling dimension at 1/8
// scale (DC-only storage and entropy store elision for all layouts).
func BenchmarkDecodeScaledSub(b *testing.B) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		b.Run(sub.String(), func(b *testing.B) {
			benchDecodeScaled(b, 1024, 768, sub, Scale8)
		})
	}
}
