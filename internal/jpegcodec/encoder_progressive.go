package jpegcodec

import (
	"fmt"

	"hetjpeg/internal/bitstream"
	"hetjpeg/internal/huffman"
	"hetjpeg/internal/jfif"
)

// Progressive (SOF2) encoding. The sole consumer is the test-fixture
// generator (internal/imagegen): the conformance corpus needs
// deterministic progressive streams covering scan scripts, successive
// approximation depths and restart intervals without shipping binary
// fixtures. Unlike baseline, progressive scans need image-specific
// Huffman tables (EOB-run symbols like 0xE0 are absent from the Annex K
// defaults), so every scan runs a statistics pass, builds optimal
// tables with huffman.BuildFromFrequencies, and emits its DHT segments
// right before its SOS — the same forced-optimization rule libjpeg
// applies in progressive mode.

// ScanSpec describes one scan of a progressive script: which components
// it covers (indices into the encoder's Y/Cb/Cr order), the spectral
// band [Ss, Se], and the successive-approximation bit positions Ah/Al.
type ScanSpec struct {
	Comps          []int
	Ss, Se, Ah, Al int
}

// ScriptSpectralOnly is the simplest complete progressive script:
// one interleaved DC scan, then each component's full AC band, with no
// successive approximation.
func ScriptSpectralOnly() []ScanSpec {
	return []ScanSpec{
		{Comps: []int{0, 1, 2}, Ss: 0, Se: 0},
		{Comps: []int{0}, Ss: 1, Se: 63},
		{Comps: []int{1}, Ss: 1, Se: 63},
		{Comps: []int{2}, Ss: 1, Se: 63},
	}
}

// ScriptDefault mirrors libjpeg's default progressive script for YCbCr:
// spectral selection and successive approximation interleaved so the
// image sharpens gradually.
func ScriptDefault() []ScanSpec {
	return []ScanSpec{
		{Comps: []int{0, 1, 2}, Ss: 0, Se: 0, Ah: 0, Al: 1},
		{Comps: []int{0}, Ss: 1, Se: 5, Ah: 0, Al: 2},
		{Comps: []int{1}, Ss: 1, Se: 63, Ah: 0, Al: 1},
		{Comps: []int{2}, Ss: 1, Se: 63, Ah: 0, Al: 1},
		{Comps: []int{0}, Ss: 6, Se: 63, Ah: 0, Al: 2},
		{Comps: []int{0}, Ss: 1, Se: 63, Ah: 2, Al: 1},
		{Comps: []int{0, 1, 2}, Ss: 0, Se: 0, Ah: 1, Al: 0},
		{Comps: []int{1}, Ss: 1, Se: 63, Ah: 1, Al: 0},
		{Comps: []int{2}, Ss: 1, Se: 63, Ah: 1, Al: 0},
		{Comps: []int{0}, Ss: 1, Se: 63, Ah: 1, Al: 0},
	}
}

// ScriptMultiBand splits each component's AC coefficients into three
// spectral bands with no successive approximation — exercises EOB runs
// over high-frequency bands that are mostly zero.
func ScriptMultiBand() []ScanSpec {
	s := []ScanSpec{{Comps: []int{0, 1, 2}, Ss: 0, Se: 0}}
	for c := 0; c < 3; c++ {
		s = append(s,
			ScanSpec{Comps: []int{c}, Ss: 1, Se: 5},
			ScanSpec{Comps: []int{c}, Ss: 6, Se: 20},
			ScanSpec{Comps: []int{c}, Ss: 21, Se: 63},
		)
	}
	return s
}

// ScriptDeepSA pushes successive approximation to depth 3 on every
// band — maximal refinement-scan coverage (many correction-bit and
// EOB-run refinement paths).
func ScriptDeepSA() []ScanSpec {
	s := []ScanSpec{
		{Comps: []int{0, 1, 2}, Ss: 0, Se: 0, Ah: 0, Al: 3},
		{Comps: []int{0, 1, 2}, Ss: 0, Se: 0, Ah: 3, Al: 2},
		{Comps: []int{0, 1, 2}, Ss: 0, Se: 0, Ah: 2, Al: 1},
		{Comps: []int{0, 1, 2}, Ss: 0, Se: 0, Ah: 1, Al: 0},
	}
	for c := 0; c < 3; c++ {
		s = append(s,
			ScanSpec{Comps: []int{c}, Ss: 1, Se: 63, Ah: 0, Al: 2},
			ScanSpec{Comps: []int{c}, Ss: 1, Se: 63, Ah: 2, Al: 1},
			ScanSpec{Comps: []int{c}, Ss: 1, Se: 63, Ah: 1, Al: 0},
		)
	}
	return s
}

// validateScript rejects scripts the decoder-side scan parser would
// refuse, with the ncomp components available.
func validateScript(script []ScanSpec, ncomp int) error {
	if len(script) == 0 {
		return fmt.Errorf("jpegcodec: empty progressive script")
	}
	for i, sc := range script {
		if len(sc.Comps) == 0 || len(sc.Comps) > ncomp {
			return fmt.Errorf("jpegcodec: scan %d has %d components", i, len(sc.Comps))
		}
		seen := map[int]bool{}
		for _, c := range sc.Comps {
			if c < 0 || c >= ncomp || seen[c] {
				return fmt.Errorf("jpegcodec: scan %d has bad component %d", i, c)
			}
			seen[c] = true
		}
		switch {
		case sc.Ss == 0 && sc.Se != 0:
			return fmt.Errorf("jpegcodec: scan %d: DC scan with Se=%d", i, sc.Se)
		case sc.Ss < 0 || sc.Se > 63 || sc.Se < sc.Ss:
			return fmt.Errorf("jpegcodec: scan %d: bad band [%d,%d]", i, sc.Ss, sc.Se)
		case sc.Ss > 0 && len(sc.Comps) != 1:
			return fmt.Errorf("jpegcodec: scan %d: interleaved AC scan", i)
		case sc.Al < 0 || sc.Al > 13 || (sc.Ah != 0 && sc.Ah != sc.Al+1):
			return fmt.Errorf("jpegcodec: scan %d: bad approximation Ah=%d Al=%d", i, sc.Ah, sc.Al)
		}
	}
	return nil
}

// progEmitter abstracts the two per-scan encoder passes: statistics
// gathering and actual bit emission. Slots 0..1 are DC table selectors,
// 2..3 are AC table selectors + 2.
type progEmitter interface {
	symbol(slot int, sym byte)
	bits(v uint32, n uint)
	restart(i int)
}

type progFreqCounter struct {
	freq [4][256]int64
}

func (c *progFreqCounter) symbol(slot int, sym byte) { c.freq[slot][sym]++ }
func (c *progFreqCounter) bits(v uint32, n uint)     {}
func (c *progFreqCounter) restart(i int)             {}

type progBitWriter struct {
	w    *bitstream.Writer
	tabs [4]*huffman.Table
}

func (e *progBitWriter) symbol(slot int, sym byte) { _ = e.tabs[slot].Encode(e.w, sym) }
func (e *progBitWriter) bits(v uint32, n uint)     { e.w.WriteBits(v, n) }
func (e *progBitWriter) restart(i int)             { e.w.WriteRestartMarker(i) }

// maxCorrBits bounds the buffered refinement correction bits before the
// pending EOB run is forced out (libjpeg's MAX_CORR_BITS safeguard).
const maxCorrBits = 1000

// progScanEnc encodes one scan; run executes one full pass over the
// scan's blocks against an emitter.
type progScanEnc struct {
	spec                ScanSpec
	comps               []jfif.Component
	coeffs              [][]int32
	infos               [3]PlaneInfo
	mcusPerRow, mcuRows int
	restartInterval     int

	// Pass state.
	dcPred   []int32
	eobrun   int
	pendBits []byte // correction bits owned by the pending EOB run
	curBits  []byte // correction bits of the block being encoded
}

func (e *progScanEnc) run(em progEmitter) {
	e.dcPred = make([]int32, len(e.spec.Comps))
	e.eobrun = 0
	e.pendBits = e.pendBits[:0]
	e.curBits = e.curBits[:0]

	count := 0
	rstIdx := 0
	unit := func() {
		if e.restartInterval > 0 && count == e.restartInterval {
			e.flushEOB(em)
			em.restart(rstIdx)
			rstIdx = (rstIdx + 1) & 7
			count = 0
			for i := range e.dcPred {
				e.dcPred[i] = 0
			}
		}
		count++
	}

	if len(e.spec.Comps) > 1 {
		// Interleaved DC scan over the padded MCU grid.
		for my := 0; my < e.mcuRows; my++ {
			for mx := 0; mx < e.mcusPerRow; mx++ {
				unit()
				for si, ci := range e.spec.Comps {
					comp := e.comps[ci]
					info := e.infos[ci]
					for v := 0; v < comp.V; v++ {
						for h := 0; h < comp.H; h++ {
							bx, by := mx*comp.H+h, my*comp.V+v
							blk := e.coeffs[ci][(by*info.BlocksPerRow+bx)*64:]
							e.encodeDC(em, blk[:64], si, ci)
						}
					}
				}
			}
		}
	} else {
		// Single-component scan over the component's own block grid.
		ci := e.spec.Comps[0]
		info := e.infos[ci]
		wb := (info.CompW + 7) / 8
		hb := (info.CompH + 7) / 8
		for by := 0; by < hb; by++ {
			for bx := 0; bx < wb; bx++ {
				unit()
				blk := e.coeffs[ci][(by*info.BlocksPerRow+bx)*64:]
				switch {
				case e.spec.Ss == 0:
					e.encodeDC(em, blk[:64], 0, ci)
				case e.spec.Ah == 0:
					e.encodeACFirst(em, blk[:64], ci)
				default:
					e.encodeACRefine(em, blk[:64], ci)
				}
			}
		}
	}
	e.flushEOB(em)
}

// dcSlot and acSlot map a component to its emitter table slot; Y owns
// selector 0, the chroma components share selector 1 (as in the
// baseline encoder).
func dcSlot(ci int) int { return min(ci, 1) }
func acSlot(ci int) int { return 2 + min(ci, 1) }

// encodeDC emits one block's DC pass: Huffman-coded shifted difference
// for a first scan (arithmetic shift, per T.81 G.1.2.1), one raw bit
// for a refinement scan.
func (e *progScanEnc) encodeDC(em progEmitter, blk []int32, si, ci int) {
	if e.spec.Ah != 0 {
		em.bits(uint32(blk[0]>>uint(e.spec.Al))&1, 1)
		return
	}
	t := blk[0] >> uint(e.spec.Al)
	diff := t - e.dcPred[si]
	e.dcPred[si] = t
	cat, bits := magnitude(diff)
	em.symbol(dcSlot(ci), byte(cat))
	em.bits(bits, cat)
}

// encodeACFirst emits one block of an AC first scan, accumulating EOB
// runs across blocks whose band is entirely zero at this bit depth.
func (e *progScanEnc) encodeACFirst(em progEmitter, blk []int32, ci int) {
	slot := acSlot(ci)
	al := uint(e.spec.Al)
	r := 0
	for k := e.spec.Ss; k <= e.spec.Se; k++ {
		v := blk[jfif.ZigZag[k]]
		// Point transform is sign-magnitude for AC (T.81 G.1.2.2).
		var t int32
		if v >= 0 {
			t = v >> al
		} else {
			t = -((-v) >> al)
		}
		if t == 0 {
			r++
			continue
		}
		e.flushEOB(em)
		for r > 15 {
			em.symbol(slot, 0xF0)
			r -= 16
		}
		cat, bits := magnitude(t)
		em.symbol(slot, byte(r<<4)|byte(cat))
		em.bits(bits, cat)
		r = 0
	}
	if r > 0 {
		e.eobrun++
		if e.eobrun == 0x7FFF {
			e.flushEOB(em)
		}
	}
}

// encodeACRefine emits one block of an AC refinement scan: correction
// bits for coefficients that were already nonzero, ±1 insertions for
// newly nonzero ones, with zero runs counting only zero-history
// positions (the mirror of decodeACRefine).
func (e *progScanEnc) encodeACRefine(em progEmitter, blk []int32, ci int) {
	slot := acSlot(ci)
	al := uint(e.spec.Al)

	var absv [64]int32
	eob := e.spec.Ss - 1 // index of the last newly nonzero coefficient
	for k := e.spec.Ss; k <= e.spec.Se; k++ {
		a := blk[jfif.ZigZag[k]]
		if a < 0 {
			a = -a
		}
		a >>= al
		absv[k] = a
		if a == 1 {
			eob = k
		}
	}

	r := 0
	for k := e.spec.Ss; k <= e.spec.Se; k++ {
		t := absv[k]
		if t == 0 {
			r++
			continue
		}
		for r > 15 && k <= eob {
			e.flushEOB(em)
			em.symbol(slot, 0xF0)
			r -= 16
			e.flushCur(em)
		}
		if t > 1 {
			// Previously nonzero: append its next magnitude bit.
			e.curBits = append(e.curBits, byte(t&1))
			continue
		}
		e.flushEOB(em)
		em.symbol(slot, byte(r<<4)|1)
		sign := uint32(1)
		if blk[jfif.ZigZag[k]] < 0 {
			sign = 0
		}
		em.bits(sign, 1)
		e.flushCur(em)
		r = 0
	}
	if r > 0 || len(e.curBits) > 0 {
		e.eobrun++
		e.pendBits = append(e.pendBits, e.curBits...)
		e.curBits = e.curBits[:0]
		if e.eobrun == 0x7FFF || len(e.pendBits) > maxCorrBits {
			e.flushEOB(em)
		}
	}
}

// flushEOB emits the pending EOB run symbol (with its extension bits)
// followed by the correction bits buffered under it.
func (e *progScanEnc) flushEOB(em progEmitter) {
	if e.eobrun > 0 {
		nbits := 0
		for v := e.eobrun >> 1; v > 0; v >>= 1 {
			nbits++
		}
		ci := e.spec.Comps[0]
		em.symbol(acSlot(ci), byte(nbits<<4))
		if nbits > 0 {
			em.bits(uint32(e.eobrun)&((1<<uint(nbits))-1), uint(nbits))
		}
		e.eobrun = 0
	}
	for _, b := range e.pendBits {
		em.bits(uint32(b), 1)
	}
	e.pendBits = e.pendBits[:0]
}

// flushCur emits the current block's buffered correction bits.
func (e *progScanEnc) flushCur(em progEmitter) {
	for _, b := range e.curBits {
		em.bits(uint32(b), 1)
	}
	e.curBits = e.curBits[:0]
}

// encodeProgressive assembles the SOF2 stream: frame-level segments,
// then per scan its optimal Huffman tables (DHT), scan header (SOS) and
// entropy bits.
func encodeProgressive(img *RGBImage, opts EncodeOptions, comps []jfif.Component,
	coeffs [][]int32, infos [3]PlaneInfo, lumaQ, chromaQ *[64]uint16,
	mcusPerRow, mcuRows int) ([]byte, error) {

	script := opts.Script
	if script == nil {
		script = ScriptDefault()
	}
	if err := validateScript(script, len(comps)); err != nil {
		return nil, err
	}

	jw := jfif.NewWriter()
	jw.WriteAPP0()
	jw.WriteDQT(0, lumaQ)
	jw.WriteDQT(1, chromaQ)
	jw.WriteSOF2(img.W, img.H, comps)
	if opts.RestartInterval > 0 {
		jw.WriteDRI(opts.RestartInterval)
	}

	// One pooled emission buffer serves every scan: WriteProgressiveSOS
	// copies the entropy bytes into the container, so the writer just
	// resets between scans and the (possibly regrown) slab is recycled
	// once at the end.
	ew := newEntropyWriter(infos)
	defer func() { putByteSlab(ew.Flush()) }()

	for i, spec := range script {
		enc := &progScanEnc{
			spec:            spec,
			comps:           comps,
			coeffs:          coeffs,
			infos:           infos,
			mcusPerRow:      mcusPerRow,
			mcuRows:         mcuRows,
			restartInterval: opts.RestartInterval,
		}

		// Pass 1: symbol statistics for this scan.
		counter := &progFreqCounter{}
		enc.run(counter)

		// Build and emit the tables the scan actually used.
		var tabs [4]*huffman.Table
		for slot := 0; slot < 4; slot++ {
			total := int64(0)
			for _, f := range counter.freq[slot] {
				total += f
			}
			if total == 0 {
				continue
			}
			spec2, err := huffman.BuildFromFrequencies(counter.freq[slot])
			if err != nil {
				return nil, fmt.Errorf("jpegcodec: scan %d table slot %d: %w", i, slot, err)
			}
			tab, err := huffman.New(spec2)
			if err != nil {
				return nil, err
			}
			tabs[slot] = tab
			jw.WriteDHT(slot/2, slot%2, spec2)
		}

		// Pass 2: real emission.
		ew.Reset()
		emit := &progBitWriter{w: ew, tabs: tabs}
		enc.run(emit)

		scanComps := make([]jfif.Component, len(spec.Comps))
		for j, ci := range spec.Comps {
			scanComps[j] = comps[ci]
		}
		jw.WriteProgressiveSOS(scanComps, spec.Ss, spec.Se, spec.Ah, spec.Al, emit.w.Flush())
	}
	return jw.Finish(), nil
}
